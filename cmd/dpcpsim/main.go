// Command dpcpsim simulates the DPCP-p runtime on a synthesized taskset
// (or the paper's Fig. 1 example) and prints an ASCII Gantt chart, the
// observed metrics, the analytic bounds, and the protocol invariant report.
//
//	dpcpsim -fig1                          the paper's Fig. 1 example
//	dpcpsim -util 6 -seed 3 -m 16          a synthesized taskset
//	dpcpsim -util 6 -no-ceiling            ablation: ceiling disabled
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/sim"
	"dpcpp/internal/taskgen"
)

func main() {
	var (
		fig1      = flag.Bool("fig1", false, "simulate the paper's Fig. 1 two-task example")
		m         = flag.Int("m", 8, "processors")
		util      = flag.Float64("util", 4, "total taskset utilization")
		seed      = flag.Int64("seed", 1, "generator seed")
		periods   = flag.Int64("hyper", 3, "horizon as a multiple of the longest period")
		noCeiling = flag.Bool("no-ceiling", false, "disable the priority-ceiling grant rule (ablation)")
		placement = flag.String("cs", "spread", "critical-section placement: spread, front, back")
		protocol  = flag.String("protocol", "dpcpp", "runtime protocol: dpcpp, spin, lpp")
		explain   = flag.Bool("explain", false, "print the per-term blocking breakdown of each task")
	)
	flag.Parse()

	var ts *model.Taskset
	var p *partition.Partition
	if *fig1 {
		ts, p = figure1()
	} else {
		scen := taskgen.Scenario{
			M:       *m,
			NumRes:  taskgen.IntRange{Lo: 2, Hi: 4},
			UAvg:    1.5,
			PAccess: 0.75,
			NReq:    taskgen.IntRange{Lo: 1, Hi: 10},
			CSLen:   taskgen.TimeRange{Lo: 15 * rt.Microsecond, Hi: 50 * rt.Microsecond},
		}
		g := taskgen.NewGenerator(scen)
		var err error
		ts, err = g.Taskset(rand.New(rand.NewSource(*seed)), *util)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := analysis.Test(analysis.DPCPpEP, ts, analysis.Options{})
		if !res.Schedulable {
			fmt.Printf("analysis verdict: UNSCHEDULABLE (%s); simulating anyway on the last partition\n", res.Reason)
		} else {
			fmt.Println("analysis verdict: schedulable")
			for _, t := range ts.ByPriorityDesc() {
				fmt.Printf("  task %d: m_i=%d, R=%s, D=%s\n", t.ID,
					res.Partition.NumProcs(t.ID), rt.FormatTime(res.WCRT[t.ID]), rt.FormatTime(t.Deadline))
			}
		}
		p = res.Partition
		if *explain {
			fmt.Println("\nblocking breakdown (Theorem 1 components at the fixed point):")
			for _, bd := range analysis.NewDPCPp(ts, analysis.DefaultPathCap, false).Explain(p) {
				fmt.Print(bd)
			}
		}
	}

	var horizon rt.Time
	for _, t := range ts.Tasks {
		if t.Period > horizon {
			horizon = t.Period
		}
	}
	horizon *= *periods

	cfg := sim.Config{
		Protocol:       parseProtocol(*protocol),
		Horizon:        horizon,
		Placement:      parsePlacement(*placement),
		CollectTrace:   true,
		DisableCeiling: *noCeiling,
	}
	s, err := sim.New(ts, p, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	metrics, err := s.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\nsimulated %s: %d jobs, %d global requests, %d deadline misses\n",
		rt.FormatTime(horizon), metrics.Jobs, metrics.Requests, metrics.DeadlineMisses)
	fmt.Printf("max request wait %s; max lower-priority blockers per request: %d\n",
		rt.FormatTime(metrics.MaxRequestWait), metrics.MaxLowPrioBlockers)
	for _, t := range ts.ByPriorityDesc() {
		fmt.Printf("  task %d: max observed response %s\n", t.ID,
			rt.FormatTime(metrics.MaxResponse[t.ID]))
	}

	if v := s.Violations(); len(v) > 0 {
		fmt.Printf("\nPROTOCOL INVARIANT VIOLATIONS (%d):\n", len(v))
		for _, msg := range v {
			fmt.Println(" ", msg)
		}
	} else {
		fmt.Println("\nall protocol invariants held (mutual exclusion, ceiling, agent priority, work conservation, Lemma 1)")
	}

	if *fig1 {
		fmt.Println()
		fmt.Print(sim.Gantt(s.Trace(), ts.NumProcs, 20*rt.Microsecond, rt.Microsecond))
	}
}

func parseProtocol(s string) sim.Protocol {
	switch s {
	case "spin":
		return sim.ProtocolSpin
	case "lpp":
		return sim.ProtocolLPP
	default:
		return sim.ProtocolDPCPp
	}
}

func parsePlacement(s string) sim.CSPlacement {
	switch s {
	case "front":
		return sim.FrontCS
	case "back":
		return sim.BackCS
	default:
		return sim.SpreadCS
	}
}

// figure1 reconstructs the Fig. 1(a) tasks with 1us as the unit time.
func figure1() (*model.Taskset, *partition.Partition) {
	ts := model.NewTaskset(4, 2)
	gi := model.NewTask(0, 40*rt.Microsecond, 40*rt.Microsecond)
	for _, c := range []rt.Time{2, 3, 2, 2, 4, 2, 2, 2} {
		gi.AddVertex(c * rt.Microsecond)
	}
	for _, e := range [][2]rt.VertexID{{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 5}, {2, 5}, {3, 6}, {4, 6}, {5, 7}, {6, 7}} {
		gi.AddEdge(e[0], e[1])
	}
	gi.AddRequest(1, 0, 1, 2*rt.Microsecond)
	gi.AddRequest(2, 1, 1, 2*rt.Microsecond)
	gi.AddRequest(3, 1, 1, 2*rt.Microsecond)
	ts.Add(gi)

	gj := model.NewTask(1, 30*rt.Microsecond, 30*rt.Microsecond)
	for _, c := range []rt.Time{1, 3, 3, 4, 4, 1} {
		gj.AddVertex(c * rt.Microsecond)
	}
	for _, e := range [][2]rt.VertexID{{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 5}, {2, 5}, {3, 5}, {4, 5}} {
		gj.AddEdge(e[0], e[1])
	}
	gj.AddRequest(2, 0, 1, 2*rt.Microsecond)
	ts.Add(gj)

	if err := ts.Finalize(); err != nil {
		panic(err)
	}
	p := partition.New(ts)
	p.Assign(0, 2)
	p.Assign(1, 2)
	p.PlaceResource(0, 1)
	return ts, p
}
