// Command schedlint is the multichecker for the repository's invariant
// suite: determinism (byte-identical serialized output), hotpath
// (zero-allocation analysis core), ctxflow (context threading on request
// paths), and lockcheck (mutex and atomic discipline). It exits 0 on a
// clean tree, 1 when findings exist, and 2 on load errors, so CI can use
// it as a hard gate:
//
//	schedlint ./...          # human-readable file:line:col findings
//	schedlint -json ./...    # machine-readable, for diffing runs
//
// See internal/lint/doc.go for the invariants and the //schedlint:
// annotation grammar (ignore escapes, hotpath seeds, deterministic
// package declarations).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpcpp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array of {file, line, col, analyzer, message}")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: schedlint [-json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "schedlint: %v\n", err)
		return 2
	}
	findings, err := lint.Run(prog, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "schedlint: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "schedlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "schedlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
