package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and chdirs into it, since run()
// loads packages relative to the working directory.
func writeModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmplint\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

const cleanSrc = `package clean

func Add(a, b int) int { return a + b }
`

// dirtySrc is the construct the CI self-test injects: an unsorted map
// range feeding serialized output.
const dirtySrc = `package dirty

import "fmt"

func Dump(m map[string]int) string {
	var out string
	for k, v := range m {
		out += fmt.Sprintf("%s=%d;", k, v)
	}
	return out
}
`

func TestRunClean(t *testing.T) {
	writeModule(t, map[string]string{"clean.go": cleanSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on a clean module, want 0\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout: %s", &stdout)
	}
}

func TestRunFindings(t *testing.T) {
	writeModule(t, map[string]string{"dirty.go": dirtySrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d with findings present, want 1\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "determinism: map iteration order reaches serialized output") {
		t.Errorf("finding not reported:\n%s", &stdout)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("missing stderr summary: %s", &stderr)
	}
}

func TestRunJSON(t *testing.T) {
	writeModule(t, map[string]string{"dirty.go": dirtySrc, "clean.go": strings.Replace(cleanSrc, "package clean", "package dirty", 1)})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, &stderr)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, &stdout)
	}
	if len(findings) != 1 || findings[0].Analyzer != "determinism" || findings[0].Line != 7 {
		t.Errorf("unexpected findings: %+v", findings)
	}
}

func TestRunJSONClean(t *testing.T) {
	writeModule(t, map[string]string{"clean.go": cleanSrc})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, &stderr)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output %q, want []", got)
	}
}

func TestRunLoadError(t *testing.T) {
	writeModule(t, map[string]string{"broken.go": "package broken\n\nfunc f() { return undefinedIdent }\n"})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d on a package that does not typecheck, want 2\nstderr: %s", code, &stderr)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d on a bad flag, want 2", code)
	}
}
