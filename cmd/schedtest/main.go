// Command schedtest regenerates the paper's evaluation artifacts and runs
// the differential soundness audit:
//
//	schedtest -fig 2a                  one Fig. 2 subplot (text + optional CSV)
//	schedtest -tables                  Tables 2 and 3 over the 216-scenario grid
//	schedtest -tables -scenarios 24    a deterministic subset of the grid
//	schedtest -ablation placement      WFD vs FFD resource placement
//	schedtest -audit -n 2000           adversarial fuzz + simulator cross-check
//
// Sample counts are configurable; the paper does not state its per-point
// taskset count, so -n controls the accuracy/runtime trade-off (under
// -audit, -n is the number of adversarial tasksets).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/audit"
	"dpcpp/internal/experiments"
	"dpcpp/internal/obs"
	"dpcpp/internal/partition"
	"dpcpp/internal/taskgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes one mode and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedtest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig       = fs.String("fig", "", "regenerate one Fig. 2 subplot: 2a, 2b, 2c or 2d")
		tables    = fs.Bool("tables", false, "regenerate Tables 2 and 3 over the scenario grid")
		scenarios = fs.Int("scenarios", 216, "number of grid scenarios to run (deterministic prefix)")
		n         = fs.Int("n", 25, "tasksets per utilization point (-audit: tasksets to fuzz)")
		seed      = fs.Int64("seed", 2020, "base seed")
		pathCap   = fs.Int("pathcap", analysis.DefaultPathCap, "EP path enumeration cap")
		csvPath   = fs.String("csv", "", "also write curve(s) as CSV to this file (or prefix for -tables)")
		ablation  = fs.String("ablation", "", "run an ablation: placement")
		methods   = fs.String("methods", "", "comma-separated method subset (default: all)")
		doAudit   = fs.Bool("audit", false, "run the differential soundness audit")
		budget    = fs.Duration("budget", 0, "audit time budget (0 = none)")
		report    = fs.String("report", "", "write the audit report as JSON to this file")
		fixtures  = fs.String("fixtures", "audit-fixtures", "directory for shrunken audit counterexamples")

		logLevel  = fs.String("log-level", "warn", "stderr log level: debug, info, warn, error")
		logFormat = fs.String("log-format", "text", "stderr log format: text or json")
		version   = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, "schedtest "+obs.BuildInfo().String())
		return 0
	}
	// Structured logs go to stderr only; every artifact (curves, tables,
	// audit verdicts) stays on stdout, byte-identical with logging off.
	logger, err := obs.NewLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	ms, err := parseMethods(*methods)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	tmpl := experiments.Campaign{
		TasksetsPerPoint: *n,
		Seed:             *seed,
		Options:          analysis.Options{PathCap: *pathCap},
		Methods:          ms,
	}

	mode := "usage"
	switch {
	case *doAudit:
		mode = "audit"
	case *fig != "":
		mode = "fig"
	case *tables:
		mode = "tables"
	case *ablation == "placement":
		mode = "ablation"
	}
	start := time.Now()
	logger.Info("schedtest run", "mode", mode, "n", *n, "seed", *seed, "pathcap", *pathCap)
	defer func() {
		logger.Info("schedtest done", "mode", mode, "elapsed", time.Since(start).String())
	}()

	switch mode {
	case "audit":
		return runAudit(audit.Config{
			Count:      *n,
			Seed:       *seed,
			Methods:    ms,
			TimeBudget: *budget,
			FixtureDir: *fixtures,
			PathCap:    *pathCap,
		}, *report, stdout, stderr)
	case "fig":
		return runFig(tmpl, *fig, *csvPath, stdout, stderr)
	case "tables":
		return runTables(tmpl, *scenarios, *csvPath, stdout, stderr)
	case "ablation":
		return runPlacementAblation(tmpl, stdout, stderr)
	default:
		fs.Usage()
		return 2
	}
}

func parseMethods(s string) ([]analysis.Method, error) {
	if s == "" {
		return analysis.Methods(), nil
	}
	var out []analysis.Method
	for _, part := range strings.Split(s, ",") {
		m := analysis.Method(strings.TrimSpace(part))
		found := false
		for _, known := range analysis.Methods() {
			if m == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown method %q; known: %v", m, analysis.Methods())
		}
		out = append(out, m)
	}
	return out, nil
}

// runAudit fuzzes adversarial tasksets and cross-checks every analysis
// against the simulator; see internal/audit for the invariants. Exit code 1
// signals at least one violation (each with a shrunken fixture on disk).
func runAudit(cfg audit.Config, reportPath string, stdout, stderr io.Writer) int {
	start := time.Now()
	rep, err := audit.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	certs := 0
	for _, c := range rep.Schedulable {
		certs += c
	}
	fmt.Fprintf(stdout, "audit: %d tasksets (%d generation failures, %d skipped) in %.1fs\n",
		rep.Generated, rep.GenFailures, rep.Skipped, time.Since(start).Seconds())
	fmt.Fprintf(stdout, "shapes: %v\n", rep.ByShape)
	fmt.Fprintf(stdout, "certified verdicts: %d (%v)\n", certs, rep.Schedulable)
	fmt.Fprintf(stdout, "simulator runs: %d, cross-checked tasksets: %d, delta patch chains: %d\n",
		rep.SimRuns, rep.CrossChecks, rep.DeltaChecks)
	if rep.TimedOut {
		fmt.Fprintln(stdout, "time budget exhausted before all tasksets ran")
	}
	if reportPath != "" {
		if err := writeJSON(reportPath, rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "wrote %s\n", reportPath)
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(stdout, "VIOLATIONS: %d\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintf(stdout, "  %s\n    fixture: %s\n", v, v.Fixture)
		}
		fmt.Fprintln(stdout, "each fixture is a shrunken reproduction; replay it with the")
		fmt.Fprintln(stdout, "internal/audit TestReplayFixtures harness after moving it into")
		fmt.Fprintln(stdout, "internal/audit/testdata/, and fix the underlying bug — never suppress it")
		return 1
	}
	fmt.Fprintln(stdout, "zero invariant violations")
	return 0
}

func writeJSON(path string, v interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func runFig(tmpl experiments.Campaign, sub, csvPath string, stdout, stderr io.Writer) int {
	scen, err := taskgen.Fig2Scenario(sub)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	tmpl.Scenario = scen
	curve, err := tmpl.Run()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "Fig. 2(%s): acceptance ratio vs normalized utilization\n", strings.TrimPrefix(sub, "2"))
	fmt.Fprint(stdout, experiments.FormatCurve(curve))
	return writeCSV(csvPath, curve, stderr)
}

func runTables(tmpl experiments.Campaign, limit int, csvPrefix string, stdout, stderr io.Writer) int {
	grid := taskgen.Grid()
	if limit < len(grid) {
		grid = grid[:limit]
	}
	fmt.Fprintf(stdout, "running %d scenarios x %d points x %d tasksets...\n",
		len(grid), len(taskgen.UtilizationPoints(grid[0].M)), tmpl.TasksetsPerPoint)
	// One shared worker pool drains the whole grid; scenarios finish in
	// work-pool order, so progress reports completion counts. Each
	// scenario's CSV is persisted the moment it completes (callbacks fire
	// once per scenario, for distinct files), so an interrupted multi-hour
	// sweep keeps every finished curve.
	var done atomic.Int64
	var csvErr atomic.Bool
	curves, err := experiments.RunGridProgress(tmpl, grid,
		func(i int, c *experiments.Curve) {
			if csvPrefix != "" {
				if writeCSV(fmt.Sprintf("%s_%s.csv", csvPrefix, grid[i].Name()), c, stderr) != 0 {
					csvErr.Store(true)
				}
			}
			fmt.Fprintf(stderr, "\r%d/%d %s", done.Add(1), len(grid), grid[i].Name())
		})
	fmt.Fprintln(stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// A failed per-scenario CSV write must not discard the sweep: print
	// the aggregate tables regardless, then exit nonzero.
	g := experiments.Aggregate(curves, tmpl.Methods)
	fmt.Fprint(stdout, experiments.FormatGrid(g))
	if csvErr.Load() {
		fmt.Fprintln(stderr, "one or more per-scenario CSV writes failed")
		return 1
	}
	return 0
}

func runPlacementAblation(tmpl experiments.Campaign, stdout, stderr io.Writer) int {
	scen, _ := taskgen.Fig2Scenario("2b") // heavy contention shows placement effects
	fmt.Fprintln(stdout, "ablation: WFD (Algorithm 2) vs FFD resource placement, scenario", scen.Name())
	for _, h := range []partition.PlacementHeuristic{partition.WFD, partition.FFD} {
		c := tmpl
		c.Scenario = scen
		c.Methods = []analysis.Method{analysis.DPCPpEP}
		c.Options.Placement = h
		curve, err := c.Run()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		name := "WFD"
		if h == partition.FFD {
			name = "FFD"
		}
		fmt.Fprintf(stdout, "--- %s: %d tasksets accepted over the sweep\n",
			name, curve.TotalAccepted(analysis.DPCPpEP))
		fmt.Fprint(stdout, experiments.FormatCurve(curve))
	}
	return 0
}

func writeCSV(path string, curve *experiments.Curve, stderr io.Writer) int {
	if path == "" {
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	if err := experiments.WriteCurveCSV(f, curve); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return 0
}
