// Command schedtest regenerates the paper's evaluation artifacts:
//
//	schedtest -fig 2a                  one Fig. 2 subplot (text + optional CSV)
//	schedtest -tables                  Tables 2 and 3 over the 216-scenario grid
//	schedtest -tables -scenarios 24    a deterministic subset of the grid
//	schedtest -ablation placement      WFD vs FFD resource placement
//
// Sample counts are configurable; the paper does not state its per-point
// taskset count, so -n controls the accuracy/runtime trade-off.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/partition"
	"dpcpp/internal/taskgen"
)

func main() {
	var (
		fig       = flag.String("fig", "", "regenerate one Fig. 2 subplot: 2a, 2b, 2c or 2d")
		tables    = flag.Bool("tables", false, "regenerate Tables 2 and 3 over the scenario grid")
		scenarios = flag.Int("scenarios", 216, "number of grid scenarios to run (deterministic prefix)")
		n         = flag.Int("n", 25, "tasksets per utilization point")
		seed      = flag.Int64("seed", 2020, "base seed")
		pathCap   = flag.Int("pathcap", analysis.DefaultPathCap, "EP path enumeration cap")
		csvPath   = flag.String("csv", "", "also write curve(s) as CSV to this file (or prefix for -tables)")
		ablation  = flag.String("ablation", "", "run an ablation: placement")
		methods   = flag.String("methods", "", "comma-separated method subset (default: all)")
	)
	flag.Parse()

	tmpl := experiments.Campaign{
		TasksetsPerPoint: *n,
		Seed:             *seed,
		Options:          analysis.Options{PathCap: *pathCap},
		Methods:          parseMethods(*methods),
	}

	switch {
	case *fig != "":
		runFig(tmpl, *fig, *csvPath)
	case *tables:
		runTables(tmpl, *scenarios, *csvPath)
	case *ablation == "placement":
		runPlacementAblation(tmpl)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseMethods(s string) []analysis.Method {
	if s == "" {
		return analysis.Methods()
	}
	var out []analysis.Method
	for _, part := range strings.Split(s, ",") {
		m := analysis.Method(strings.TrimSpace(part))
		found := false
		for _, known := range analysis.Methods() {
			if m == known {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown method %q; known: %v\n", m, analysis.Methods())
			os.Exit(2)
		}
		out = append(out, m)
	}
	return out
}

func runFig(tmpl experiments.Campaign, sub, csvPath string) {
	scen, err := taskgen.Fig2Scenario(sub)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tmpl.Scenario = scen
	curve, err := tmpl.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Fig. 2(%s): acceptance ratio vs normalized utilization\n", strings.TrimPrefix(sub, "2"))
	fmt.Print(experiments.FormatCurve(curve))
	writeCSV(csvPath, curve)
}

func runTables(tmpl experiments.Campaign, limit int, csvPrefix string) {
	grid := taskgen.Grid()
	if limit < len(grid) {
		grid = grid[:limit]
	}
	fmt.Printf("running %d scenarios x %d points x %d tasksets...\n",
		len(grid), len(taskgen.UtilizationPoints(grid[0].M)), tmpl.TasksetsPerPoint)
	// One shared worker pool drains the whole grid; scenarios finish in
	// work-pool order, so progress reports completion counts. Each
	// scenario's CSV is persisted the moment it completes (callbacks fire
	// once per scenario, for distinct files), so an interrupted multi-hour
	// sweep keeps every finished curve.
	var done atomic.Int64
	curves, err := experiments.RunGridProgress(tmpl, grid,
		func(i int, c *experiments.Curve) {
			if csvPrefix != "" {
				writeCSV(fmt.Sprintf("%s_%s.csv", csvPrefix, grid[i].Name()), c)
			}
			fmt.Fprintf(os.Stderr, "\r%d/%d %s", done.Add(1), len(grid), grid[i].Name())
		})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g := experiments.Aggregate(curves, tmpl.Methods)
	fmt.Print(experiments.FormatGrid(g))
}

func runPlacementAblation(tmpl experiments.Campaign) {
	scen, _ := taskgen.Fig2Scenario("2b") // heavy contention shows placement effects
	fmt.Println("ablation: WFD (Algorithm 2) vs FFD resource placement, scenario", scen.Name())
	for _, h := range []partition.PlacementHeuristic{partition.WFD, partition.FFD} {
		c := tmpl
		c.Scenario = scen
		c.Methods = []analysis.Method{analysis.DPCPpEP}
		c.Options.Placement = h
		curve, err := c.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		name := "WFD"
		if h == partition.FFD {
			name = "FFD"
		}
		fmt.Printf("--- %s: %d tasksets accepted over the sweep\n",
			name, curve.TotalAccepted(analysis.DPCPpEP))
		fmt.Print(experiments.FormatCurve(curve))
	}
}

func writeCSV(path string, curve *experiments.Curve) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := experiments.WriteCurveCSV(f, curve); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
