package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpcpp/internal/analysis"
	"dpcpp/internal/taskgen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestFig2aGolden pins the -fig output byte-for-byte: every seed is a pure
// function of (base seed, scenario, point, sample), so a reduced-sample run
// is fully deterministic across platforms and worker counts.
func TestFig2aGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig", "2a", "-n", "2", "-seed", "2020"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "fig2a_n2.golden")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-fig 2a output changed; run with -update if intended.\ngot:\n%s\nwant:\n%s",
			stdout.String(), string(want))
	}
}

// TestTablesShape checks the -tables mode over a deterministic 2-scenario
// prefix: both tables render with every method column, and the per-scenario
// CSVs carry the documented header and one row per utilization point.
func TestTablesShape(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "curves")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-tables", "-scenarios", "2", "-n", "2", "-csv", prefix},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"Table 2. Statistic for Dominance. (2 scenarios)",
		"Table 3. Statistic for Outperformance. (2 scenarios)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	for _, m := range analysis.Methods() {
		if !strings.Contains(out, string(m)) {
			t.Errorf("output lacks method %s", m)
		}
	}

	grid := taskgen.Grid()[:2]
	for _, scen := range grid {
		path := fmt.Sprintf("%s_%s.csv", prefix, scen.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("per-scenario CSV missing: %v", err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		wantHeader := []string{"utilization", "normalized", "tasksets"}
		for _, m := range analysis.Methods() {
			wantHeader = append(wantHeader, string(m))
		}
		if got := strings.Join(rows[0], ","); got != strings.Join(wantHeader, ",") {
			t.Errorf("%s: header %q, want %q", path, got, strings.Join(wantHeader, ","))
		}
		if wantRows := len(taskgen.UtilizationPoints(scen.M)) + 1; len(rows) != wantRows {
			t.Errorf("%s: %d rows, want %d", path, len(rows), wantRows)
		}
	}
}

// TestAuditMode smokes the -audit flag: a small run must complete cleanly,
// write a well-formed JSON report and exit 0 (zero violations).
func TestAuditMode(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-audit", "-n", "30", "-seed", "2020",
		"-report", report, "-fixtures", filepath.Join(dir, "fixtures")},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "zero invariant violations") {
		t.Errorf("missing clean verdict:\n%s", stdout.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Generated  int               `json:"generated"`
		Violations []json.RawMessage `json:"violations"`
		SimRuns    int64             `json:"sim_runs"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Generated != 30 || len(rep.Violations) != 0 || rep.SimRuns == 0 {
		t.Errorf("unexpected report: %s", data)
	}
}

// TestBadFlags: unknown methods and missing modes exit 2 without panicking.
func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-methods", "NOPE", "-fig", "2a"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown method: exit %d, want 2", code)
	}
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no mode: exit %d, want 2", code)
	}
	if code := run([]string{"-fig", "9z"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad subplot: exit %d, want 2", code)
	}
}
