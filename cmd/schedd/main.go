// Command schedd serves the schedulability engine over HTTP: a
// long-running daemon around internal/server with content-addressed result
// caching, request coalescing, bounded admission, and durable asynchronous
// sweep jobs.
//
//	schedd -addr :8080 -workers 0 -cache-size 4096 -max-body 8388608 \
//	       -store-dir /var/lib/schedd
//
//	curl -s localhost:8080/v1/analyze -d @request.json
//	curl -s 'localhost:8080/v1/grid?scenario=2a&n=25'
//	curl -s localhost:8080/v1/sweeps -d '{"scenarios":["2a","2b"],"n":25}'
//	curl -s localhost:8080/v1/sweeps/<id>
//	curl -s localhost:8080/v1/metrics
//
// With -store-dir set, analysis results persist in an on-disk
// content-addressed store (restarts keep the cache warm) and sweep jobs
// checkpoint per-point progress there; a restarted daemon resumes
// unfinished sweeps unless -resume=false. A failing store trips a circuit
// breaker (-store-breaker-threshold consecutive errors) and the daemon
// keeps serving from memory — degraded, not down; /healthz reports the
// state and -store-breaker-probe paces recovery probes.
//
// Time bounds: -read-timeout and -idle-timeout harden the listener against
// slow-loris clients, -write-deadline bounds each response write (streams
// re-arm it per line, so long curves still flow), and -request-timeout
// caps one request's analysis latency (0 = unbounded; requests can always
// set their own timeout_ms).
//
// Observability: structured logs go to stderr (-log-level, -log-format
// text|json), request latency / per-stage analysis histograms and every
// service counter are exported in Prometheus text format at GET /metrics,
// recent per-request trace spans at GET /v1/debug/traces (echoed as a
// Server-Timing header), the access log is sampled (-access-log-sample N
// logs every Nth request; 0 disables), and -pprof-addr serves
// net/http/pprof on a separate listener so profiling is never exposed on
// the service port. -version prints build info and exits.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// complete (bounded by -shutdown-timeout), new connections are refused,
// and sweep jobs checkpoint so nothing is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpcpp/internal/obs"
	"dpcpp/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is the testable entry point. When ready is non-nil it receives the
// bound listener address once the server accepts connections (tests bind
// -addr 127.0.0.1:0 and read the port from here).
func run(args []string, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 0, "concurrent analyses (0 = GOMAXPROCS)")
		cacheSize   = fs.Int("cache-size", server.DefaultCacheSize, "result cache capacity (entries)")
		maxBody     = fs.Int64("max-body", server.DefaultMaxBody, "request body limit (bytes)")
		maxQueue    = fs.Int("max-queue", 0, "admission queue bound in jobs (0 = max(1024*workers, 65536))")
		storeDir    = fs.String("store-dir", "", "persistent result store + sweep-job checkpoints (empty = in-memory only)")
		resume      = fs.Bool("resume", true, "resume unfinished checkpointed sweep jobs from -store-dir at startup")
		shutTimeout = fs.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown budget")

		reqTimeout    = fs.Duration("request-timeout", 0, "per-request analysis deadline; past it the request gets a structured 503 timeout (0 = unbounded)")
		readTimeout   = fs.Duration("read-timeout", time.Minute, "full-request read deadline (slow-loris protection)")
		idleTimeout   = fs.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection deadline")
		writeDeadline = fs.Duration("write-deadline", server.DefaultWriteDeadline, "per-write response deadline; NDJSON streams re-arm it per line")

		brThreshold = fs.Int("store-breaker-threshold", server.DefaultBreakerThreshold, "consecutive store failures that open the circuit breaker (degraded mode)")
		brProbe     = fs.Duration("store-breaker-probe", server.DefaultBreakerProbe, "recovery-probe interval while the store breaker is open")
		ckSync      = fs.Bool("checkpoint-sync", true, "fsync sweep-job checkpoint writes (cache entries never sync)")
		faultWrites = fs.Int("fault-writes", 0, "TESTING ONLY: fail the first N store writes with an injected I/O error")

		logLevel    = fs.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = fs.String("log-format", "text", "log format: text or json")
		accessEvery = fs.Int("access-log-sample", 0, "log every Nth request (0 = no access log)")
		traceBuffer = fs.Int("trace-buffer", server.DefaultTraceBuffer, "request-trace ring capacity behind GET /v1/debug/traces")
		pprofAddr   = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		version     = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stderr, "schedd "+obs.BuildInfo().String())
		return 0
	}
	logger, err := obs.NewLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	srv, err := server.New(server.Config{
		Workers:               *workers,
		CacheSize:             *cacheSize,
		MaxBody:               *maxBody,
		MaxQueue:              *maxQueue,
		RequestTimeout:        *reqTimeout,
		WriteDeadline:         *writeDeadline,
		StoreDir:              *storeDir,
		DisableResume:         !*resume,
		StoreBreakerThreshold: *brThreshold,
		StoreBreakerProbe:     *brProbe,
		DisableCheckpointSync: !*ckSync,
		FaultWrites:           *faultWrites,
		Logger:                logger,
		AccessLogEvery:        *accessEvery,
		TraceBuffer:           *traceBuffer,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer srv.Close()

	if *pprofAddr != "" {
		// pprof gets its own listener and mux: profiling endpoints never
		// share the service port, and nothing leaks via http.DefaultServeMux.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer pln.Close()
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", httppprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go http.Serve(pln, pm)
		logger.Info("pprof listening", "addr", pln.Addr().String())
	}
	hs := &http.Server{
		Handler: srv,
		// ReadTimeout bounds the whole request read; bodies are small
		// (taskset JSON), so a client that cannot finish one inside it is
		// stalling, not slow. WriteTimeout stays 0 on purpose: the per-write
		// deadlines set via http.ResponseController would be capped by it,
		// and NDJSON streams must be able to outlive any fixed total bound.
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       *idleTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	b := obs.BuildInfo()
	logger.Info("schedd listening",
		"addr", ln.Addr().String(),
		"workers", *workers,
		"store_dir", *storeDir,
		"version", b.Version,
		"revision", b.Revision,
		"go", b.GoVersion,
	)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, err)
		return 1
	case <-ctx.Done():
		stop()
		logger.Info("schedd shutting down", "budget", (*shutTimeout).String())
		sctx, cancel := context.WithTimeout(context.Background(), *shutTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, err)
			return 1
		}
		logger.Info("schedd stopped")
		return 0
	}
}
