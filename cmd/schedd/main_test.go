package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/server"
	"dpcpp/internal/taskgen"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stderr, nil); code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
}

// TestServeAndGracefulShutdown boots the real daemon on an ephemeral port,
// hits it over TCP and shuts it down with the signal production uses.
func TestServeAndGracefulShutdown(t *testing.T) {
	ready := make(chan string, 1)
	var stderr bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never came up; stderr: %s", stderr.String())
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body, err := os.ReadFile(filepath.Join("testdata", "fig2a_request.json"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post("http://"+addr+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var ar server.AnalyzeResponse
	err = json.NewDecoder(resp.Body).Decode(&ar)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(ar.Results) != 5 {
		t.Fatalf("analyze over TCP: status %d err %v results %d", resp.StatusCode, err, len(ar.Results))
	}

	// SIGTERM is what production sends; NotifyContext catches it in-process.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("shutdown exit %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("graceful shutdown hung; stderr: %s", stderr.String())
	}
}

// TestAnalyzeResponseGolden pins the served bytes for the checked-in
// fig2a fixture. The same pair drives the CI smoke job with curl + diff,
// so this test is the in-repo guarantee the smoke job's golden stays
// reachable.
func TestAnalyzeResponseGolden(t *testing.T) {
	body, err := os.ReadFile(filepath.Join("testdata", "fig2a_request.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}

	golden := filepath.Join("testdata", "fig2a_response.golden")
	if *update {
		if err := os.WriteFile(golden, w.Body.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Errorf("served response changed; run with -update if intended.\ngot:\n%s\nwant:\n%s",
			w.Body.String(), string(want))
	}
}

// TestSweepMatchesSchedtestGolden is the sweep-job acceptance test: a
// sweep submitted via POST /v1/sweeps covering Fig. 2(a) must produce
// curves byte-identical to the cmd/schedtest fig2a golden — the
// asynchronous job path, the streaming grid path and the CLI are all the
// same experiment.
func TestSweepMatchesSchedtestGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("..", "schedtest", "testdata", "fig2a_n2.golden"))
	if err != nil {
		t.Fatal(err)
	}

	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/sweeps",
		strings.NewReader(`{"scenarios":["2a"],"n":2,"seed":2020}`)))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", w.Code, w.Body.String())
	}
	var acc server.SweepAccepted
	if err := json.Unmarshal(w.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}

	var res server.SweepResults
	deadline := time.Now().Add(60 * time.Second)
	for {
		w = httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/sweeps/"+acc.ID+"/results", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("results: %d", w.Code)
		}
		if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		if res.State == "done" {
			break
		}
		if res.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("sweep never finished: state %q", res.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	scen, err := taskgen.Fig2Scenario("2a")
	if err != nil {
		t.Fatal(err)
	}
	scen = scen.DefaultStructure()
	curve := &experiments.Curve{Scenario: scen, Methods: analysis.Methods()}
	for pi, gp := range res.Scenarios[0].Points {
		pt := experiments.Point{
			Utilization: taskgen.UtilizationPoints(scen.M)[pi],
			Normalized:  taskgen.UtilizationPoints(scen.M)[pi] / float64(scen.M),
			Total:       gp.Total,
			Accepted:    make(map[analysis.Method]int),
		}
		for m, n := range gp.Accepted {
			pt.Accepted[analysis.Method(m)] = n
		}
		curve.Points = append(curve.Points, pt)
	}
	got := fmt.Sprintf("Fig. 2(a): acceptance ratio vs normalized utilization\n%s",
		experiments.FormatCurve(curve))
	if got != string(want) {
		t.Errorf("sweep job diverges from the schedtest golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestGridMatchesSchedtestGolden reconstructs the Fig. 2(a) acceptance
// table from the server's NDJSON stream and diffs the verdicts against the
// cmd/schedtest golden file: the service and the CLI must be the same
// experiment.
func TestGridMatchesSchedtestGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("..", "schedtest", "testdata", "fig2a_n2.golden"))
	if err != nil {
		t.Fatal(err)
	}

	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	req := httptest.NewRequest(http.MethodGet, "/v1/grid?scenario=2a&n=2&seed=2020", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}

	// Rebuild an experiments.Curve from the stream and render it with the
	// CLI's own formatter.
	scen, err := taskgen.Fig2Scenario("2a")
	if err != nil {
		t.Fatal(err)
	}
	scen = scen.DefaultStructure()
	curve := &experiments.Curve{Scenario: scen, Methods: analysis.Methods()}
	for _, u := range taskgen.UtilizationPoints(scen.M) {
		curve.Points = append(curve.Points, experiments.Point{
			Utilization: u,
			Normalized:  u / float64(scen.M),
			Accepted:    make(map[analysis.Method]int),
		})
	}
	sc := bufio.NewScanner(w.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawDone := false
	for sc.Scan() {
		var gd server.GridDone
		if json.Unmarshal(sc.Bytes(), &gd) == nil && gd.Done {
			sawDone = true
			continue
		}
		var gp server.GridPoint
		if err := json.Unmarshal(sc.Bytes(), &gp); err != nil {
			t.Fatalf("bad line %q: %v", sc.Bytes(), err)
		}
		pt := &curve.Points[gp.Point]
		pt.Total = gp.Total
		for m, n := range gp.Accepted {
			pt.Accepted[analysis.Method(m)] = n
		}
	}
	if !sawDone {
		t.Fatal("stream ended without a done line")
	}

	got := fmt.Sprintf("Fig. 2(a): acceptance ratio vs normalized utilization\n%s",
		experiments.FormatCurve(curve))
	if got != string(want) {
		t.Errorf("server grid diverges from the schedtest golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !strings.Contains(got, scen.Name()) {
		t.Errorf("scenario name missing from rendered table")
	}
}
