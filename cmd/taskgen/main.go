// Command taskgen synthesizes tasksets per the paper's Sec. VII-A recipe
// and emits them as JSON, for use by external tools or regression fixtures.
//
//	taskgen -util 8 -seed 7 -m 16 -pr 0.5 > taskset.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dpcpp/internal/rt"
	"dpcpp/internal/taskgen"
)

func main() {
	var (
		m     = flag.Int("m", 16, "processors")
		util  = flag.Float64("util", 8, "total utilization")
		seed  = flag.Int64("seed", 1, "seed")
		uavg  = flag.Float64("uavg", 1.5, "average task utilization")
		pr    = flag.Float64("pr", 0.5, "per-resource access probability")
		nrLo  = flag.Int("nr-lo", 4, "min shared resources")
		nrHi  = flag.Int("nr-hi", 8, "max shared resources")
		nLo   = flag.Int("n-lo", 1, "min requests per used resource")
		nHi   = flag.Int("n-hi", 50, "max requests per used resource")
		csLo  = flag.Int64("cs-lo-us", 50, "min critical section (us)")
		csHi  = flag.Int64("cs-hi-us", 100, "max critical section (us)")
		count = flag.Int("count", 1, "number of tasksets to emit (JSON lines)")
	)
	flag.Parse()

	scen := taskgen.Scenario{
		M:       *m,
		NumRes:  taskgen.IntRange{Lo: *nrLo, Hi: *nrHi},
		UAvg:    *uavg,
		PAccess: *pr,
		NReq:    taskgen.IntRange{Lo: *nLo, Hi: *nHi},
		CSLen:   taskgen.TimeRange{Lo: rt.Time(*csLo) * rt.Microsecond, Hi: rt.Time(*csHi) * rt.Microsecond},
	}
	g := taskgen.NewGenerator(scen)
	enc := json.NewEncoder(os.Stdout)
	for i := 0; i < *count; i++ {
		r := rand.New(rand.NewSource(*seed + int64(i)))
		ts, err := g.Taskset(r, *util)
		if err != nil {
			fmt.Fprintf(os.Stderr, "taskset %d: %v\n", i, err)
			os.Exit(1)
		}
		if err := enc.Encode(ts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
