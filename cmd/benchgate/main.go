// Command benchgate runs the pinned benchmark suite and gates it against
// a committed snapshot, making the repository's performance trajectory
// part of its test surface.
//
//	benchgate run -out BENCH_7.json [-bench regex] [-count 5] [-benchtime 100x]
//	benchgate compare -baseline BENCH_7.json -current new.json
//	benchgate gate -baseline BENCH_7.json -out new.json
//
// "run" executes `go test -run ^$ -bench <regex> -benchmem -count N` in
// the current module and writes the aggregated snapshot (median ns/op,
// minimum B/op and allocs/op per benchmark). "compare" gates one snapshot
// file against another. "gate" does both — CI's single step — exiting 1
// when any benchmark regresses beyond the thresholds (-time-threshold,
// -alloc-threshold, -alloc-slack; see internal/benchgate for semantics).
//
// Refreshing the committed snapshot after an intentional change:
//
//	go run ./cmd/benchgate run -out BENCH_<pr>.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"

	"dpcpp/internal/benchgate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// defaultBench pins the CI benchmark subset: the analysis hot path (the
// zero-allocation trajectory this gate exists for), the view enumeration
// engine under it, the instrumented variant that pins the per-stage
// observability overhead at zero extra allocations, and the incremental
// delta path whose cache-hit-territory latency POST /v1/analyze/delta
// claims. Fixed -benchtime iteration counts keep allocs/op deterministic.
const defaultBench = "BenchmarkAnalysisMethods|BenchmarkPathEnumeration|BenchmarkInstrumentedAnalysis|BenchmarkDeltaAnalyze"

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: benchgate run|compare|gate [flags]")
		return 2
	}
	mode := args[0]
	fs := flag.NewFlagSet("benchgate "+mode, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("out", "", "write the aggregated snapshot JSON here")
		baseline  = fs.String("baseline", "", "committed snapshot to gate against")
		current   = fs.String("current", "", "snapshot to gate (compare mode)")
		bench     = fs.String("bench", defaultBench, "benchmark regex passed to go test")
		count     = fs.Int("count", 5, "benchmark repetitions (median/min aggregated)")
		benchtime = fs.String("benchtime", "100x", "go test -benchtime value")
		pkg       = fs.String("pkg", ".", "package to benchmark")
		timeTh    = fs.Float64("time-threshold", 0.50, "allowed fractional ns/op growth")
		allocTh   = fs.Float64("alloc-threshold", 0.10, "allowed fractional allocs/op growth")
		slack     = fs.Int64("alloc-slack", 2, "absolute allocs/op slack on top of the threshold")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	th := benchgate.Thresholds{Time: *timeTh, Alloc: *allocTh, AllocSlack: *slack}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 1
	}
	switch mode {
	case "run":
		snap, err := runBenchmarks(*bench, *benchtime, *pkg, *count, stderr)
		if err != nil {
			return fail(err)
		}
		return writeSnapshot(snap, *out, stdout, stderr)
	case "compare":
		base, err := readSnapshot(*baseline)
		if err != nil {
			return fail(err)
		}
		cur, err := readSnapshot(*current)
		if err != nil {
			return fail(err)
		}
		return gate(base, cur, th, stdout, stderr)
	case "gate":
		base, err := readSnapshot(*baseline)
		if err != nil {
			return fail(err)
		}
		cur, err := runBenchmarks(*bench, *benchtime, *pkg, *count, stderr)
		if err != nil {
			return fail(err)
		}
		if code := writeSnapshot(cur, *out, stdout, stderr); code != 0 {
			return code
		}
		return gate(base, cur, th, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "benchgate: unknown mode %q (want run, compare or gate)\n", mode)
		return 2
	}
}

// runBenchmarks shells out to go test and parses the combined output.
// Benchmark progress streams to stderr so CI logs show liveness.
func runBenchmarks(bench, benchtime, pkg string, count int, stderr io.Writer) (*benchgate.Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", fmt.Sprint(count), pkg}
	fmt.Fprintf(stderr, "benchgate: go %s\n", args)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(&buf, stderr)
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	return benchgate.Parse(&buf)
}

func readSnapshot(path string) (*benchgate.Snapshot, error) {
	if path == "" {
		return nil, fmt.Errorf("missing snapshot path (-baseline/-current)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap benchgate.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return &snap, nil
}

func writeSnapshot(snap *benchgate.Snapshot, out string, stdout, stderr io.Writer) int {
	names := make([]string, 0, len(snap.Benchmarks))
	for name := range snap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := snap.Benchmarks[name]
		fmt.Fprintf(stdout, "%-60s %12.0f ns/op %10d B/op %8d allocs/op (%d runs)\n",
			name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Runs)
	}
	if out == "" {
		return 0
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 1
	}
	return 0
}

func gate(base, cur *benchgate.Snapshot, th benchgate.Thresholds, stdout, stderr io.Writer) int {
	regs := benchgate.Compare(base, cur, th)
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "benchgate: %d benchmarks within thresholds\n", len(base.Benchmarks))
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(stderr, "benchgate: REGRESSION %s\n", r)
	}
	return 1
}
