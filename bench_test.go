// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. VII), plus ablations for the design choices DESIGN.md calls out.
//
// Each figure benchmark runs a reduced-sample acceptance-ratio sweep of its
// scenario and reports the two summary metrics that define the figure's
// shape: the area under the DPCP-p-EP curve versus the best baseline, via
// custom benchmark metrics. The table benchmark sweeps a deterministic
// subset of the 216-scenario grid. Full-accuracy runs use cmd/schedtest.
package dpcpp

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/obs"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/sim"
	"dpcpp/internal/taskgen"
)

// benchCampaign keeps benchmark iterations affordable; cmd/schedtest runs
// the full-sample version.
func benchCampaign(scen taskgen.Scenario) experiments.Campaign {
	return experiments.Campaign{
		Scenario:         scen,
		TasksetsPerPoint: 4,
		Seed:             2020,
	}
}

func auc(c *experiments.Curve, m analysis.Method) float64 {
	total := 0.0
	for i := range c.Points {
		total += c.Ratio(m, i)
	}
	return total / float64(len(c.Points))
}

func benchmarkFig(b *testing.B, sub string) {
	scen, err := taskgen.Fig2Scenario(sub)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var curve *experiments.Curve
	for i := 0; i < b.N; i++ {
		curve, err = benchCampaign(scen).Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(auc(curve, analysis.DPCPpEP), "auc-dpcp-ep")
	b.ReportMetric(auc(curve, analysis.DPCPpEN), "auc-dpcp-en")
	b.ReportMetric(auc(curve, analysis.SPIN), "auc-spin")
	b.ReportMetric(auc(curve, analysis.LPP), "auc-lpp")
	b.ReportMetric(auc(curve, analysis.FEDFP), "auc-fedfp")
}

// BenchmarkFig2a regenerates Fig. 2(a): U^avg=1.5, m=16, nr in [4,8], pr=0.5.
func BenchmarkFig2a(b *testing.B) { benchmarkFig(b, "2a") }

// BenchmarkFig2b regenerates Fig. 2(b): U^avg=1.5, m=32, nr in [8,16], pr=1.
func BenchmarkFig2b(b *testing.B) { benchmarkFig(b, "2b") }

// BenchmarkFig2c regenerates Fig. 2(c): U^avg=2, m=16, nr in [4,8], pr=0.5.
func BenchmarkFig2c(b *testing.B) { benchmarkFig(b, "2c") }

// BenchmarkFig2d regenerates Fig. 2(d): U^avg=2, m=32, nr in [8,16], pr=1.
func BenchmarkFig2d(b *testing.B) { benchmarkFig(b, "2d") }

// BenchmarkTables2and3 sweeps a deterministic stratified subset of the
// 216-scenario grid (every 9th scenario) and reports how often DPCP-p-EP
// dominates/outperforms each baseline, the headline statistics of the
// paper's Tables 2 and 3.
func BenchmarkTables2and3(b *testing.B) {
	full := taskgen.Grid()
	var grid []taskgen.Scenario
	for i := 0; i < len(full); i += 9 {
		grid = append(grid, full[i])
	}
	b.ReportAllocs()
	var g *experiments.GridResult
	for i := 0; i < b.N; i++ {
		var curves []*experiments.Curve
		for _, s := range grid {
			c := benchCampaign(s)
			c.TasksetsPerPoint = 2
			curve, err := c.Run()
			if err != nil {
				b.Fatal(err)
			}
			curves = append(curves, curve)
		}
		g = experiments.Aggregate(curves, analysis.Methods())
	}
	n := float64(g.Scenarios)
	b.ReportMetric(float64(g.Dominance[analysis.DPCPpEP][analysis.SPIN])/n, "dom-ep-over-spin")
	b.ReportMetric(float64(g.Dominance[analysis.DPCPpEP][analysis.LPP])/n, "dom-ep-over-lpp")
	b.ReportMetric(float64(g.Dominance[analysis.DPCPpEP][analysis.DPCPpEN])/n, "dom-ep-over-en")
	b.ReportMetric(float64(g.Outperformance[analysis.DPCPpEP][analysis.SPIN])/n, "out-ep-over-spin")
	b.ReportMetric(float64(g.Outperformance[analysis.DPCPpEP][analysis.LPP])/n, "out-ep-over-lpp")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkPathCap measures the EP analysis cost and verdict quality as
// the path-enumeration cap shrinks (the Sec. VI trade-off between
// analysis precision and cost).
func BenchmarkPathCap(b *testing.B) {
	scen, _ := taskgen.Fig2Scenario("2a")
	// Taskset synthesis happens once, outside the timed region: the
	// benchmark measures the analysis, not the generator.
	g := taskgen.NewGenerator(scen)
	tasksets := make([]*Taskset, 0, 8)
	for s := int64(0); s < 8; s++ {
		ts, err := g.Taskset(rand.New(rand.NewSource(s)), 6.0)
		if err != nil {
			b.Fatal(err)
		}
		tasksets = append(tasksets, ts)
	}
	for _, cap := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("cap%d", cap), func(b *testing.B) {
			b.ReportAllocs()
			accepted := 0
			tested := 0
			for i := 0; i < b.N; i++ {
				for _, ts := range tasksets {
					tested++
					if analysis.Schedulable(analysis.DPCPpEP, ts, analysis.Options{PathCap: cap}) {
						accepted++
					}
				}
			}
			b.ReportMetric(float64(accepted)/float64(tested), "accept-ratio")
		})
	}
}

// BenchmarkPlacementHeuristic compares WFD (Algorithm 2) with the FFD
// ablation on the heavy-contention scenario.
func BenchmarkPlacementHeuristic(b *testing.B) {
	scen, _ := taskgen.Fig2Scenario("2b")
	// As in BenchmarkPathCap, synthesis stays outside the timed region.
	g := taskgen.NewGenerator(scen)
	tasksets := make([]*Taskset, 0, 8)
	for s := int64(0); s < 8; s++ {
		ts, err := g.Taskset(rand.New(rand.NewSource(s)), 4.0)
		if err != nil {
			b.Fatal(err)
		}
		tasksets = append(tasksets, ts)
	}
	for _, h := range []struct {
		name string
		ph   partition.PlacementHeuristic
	}{{"WFD", partition.WFD}, {"FFD", partition.FFD}} {
		b.Run(h.name, func(b *testing.B) {
			b.ReportAllocs()
			accepted, tested := 0, 0
			for i := 0; i < b.N; i++ {
				for _, ts := range tasksets {
					tested++
					if analysis.Schedulable(analysis.DPCPpEP, ts,
						analysis.Options{Placement: h.ph}) {
						accepted++
					}
				}
			}
			b.ReportMetric(float64(accepted)/float64(tested), "accept-ratio")
		})
	}
}

// BenchmarkAnalysisMethods measures the per-taskset cost of each
// schedulability test on a Fig. 2(a) workload, through the production
// scratch-recycling path (analysis.TestWith) exactly as the experiment
// worker pool and the server engine run it — steady-state, warm scratch.
func BenchmarkAnalysisMethods(b *testing.B) {
	scen, _ := taskgen.Fig2Scenario("2a")
	g := taskgen.NewGenerator(scen)
	ts, err := g.Taskset(rand.New(rand.NewSource(1)), 6.0)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range analysis.Methods() {
		b.Run(string(m), func(b *testing.B) {
			b.ReportAllocs()
			sc := analysis.NewScratch()
			analysis.TestWith(sc, m, ts, analysis.Options{}) // warm the arenas
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				analysis.TestWith(sc, m, ts, analysis.Options{})
			}
		})
	}
}

// benchStageRecorder mirrors the server engine's stage wiring: per-stage
// obs histograms fed through the allocation-free scratch hooks.
type benchStageRecorder struct {
	h [analysis.NumStages]*obs.Histogram
}

func newBenchStageRecorder() *benchStageRecorder {
	r := &benchStageRecorder{}
	for i := range r.h {
		r.h[i] = obs.NewHistogram(obs.DefaultLatencyBounds())
	}
	return r
}

func (r *benchStageRecorder) RecordStage(s analysis.Stage, d time.Duration) { r.h[s].Observe(d) }

// BenchmarkInstrumentedAnalysis is BenchmarkAnalysisMethods for the two
// DPCP-p methods with per-stage instrumentation enabled — the exact hot
// path a production schedd runs. Gated by cmd/benchgate: its ns/op and
// allocs/op versus the uninstrumented BenchmarkAnalysisMethods series pin
// the observability overhead (allocs must stay identical).
func BenchmarkInstrumentedAnalysis(b *testing.B) {
	scen, _ := taskgen.Fig2Scenario("2a")
	g := taskgen.NewGenerator(scen)
	ts, err := g.Taskset(rand.New(rand.NewSource(1)), 6.0)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []analysis.Method{analysis.DPCPpEN, analysis.DPCPpEP} {
		b.Run(string(m), func(b *testing.B) {
			b.ReportAllocs()
			sc := analysis.NewScratch()
			rec := newBenchStageRecorder()
			sc.SetStageRecorder(rec)
			analysis.TestWith(sc, m, ts, analysis.Options{}) // warm the arenas
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				analysis.TestWith(sc, m, ts, analysis.Options{})
			}
			b.StopTimer()
			if rec.h[analysis.StageRound].Count() == 0 {
				b.Fatal("stage recorder saw no samples; instrumentation is dead")
			}
		})
	}
}

// BenchmarkDeltaAnalyze measures the incremental what-if path the server's
// POST /v1/analyze/delta rides: retained delta state answering a one-vertex
// WCET bump (the canonical admission-control query) via Delta.Apply —
// patch application, canonical re-hash, and the incremental re-analysis —
// against the cold full re-analysis of the same patched taskset. Gated by
// cmd/benchgate: the one-vertex-wcet-bump series is the endpoint's
// cache-hit-territory latency claim.
func BenchmarkDeltaAnalyze(b *testing.B) {
	scen, _ := taskgen.Fig2Scenario("2a")
	g := taskgen.NewGenerator(scen)
	ts, err := g.Taskset(rand.New(rand.NewSource(1)), 6.0)
	if err != nil {
		b.Fatal(err)
	}
	// Bump the lowest-priority task: the common "can this component grow"
	// query, and the one the delta analyzer reuses the most state for.
	low := ts.Tasks[0]
	for _, tk := range ts.Tasks {
		if low.Priority.Higher(tk.Priority) {
			low = tk
		}
	}
	bump := func(i int) model.Patch {
		return model.Patch{Ops: []model.PatchOp{{
			Op: model.OpSetWCET, Task: low.ID, Vertex: 0,
			Value: low.Vertices[0].WCET + 1 + rt.Time(i%16)*rt.Microsecond,
		}}}
	}

	b.Run("one-vertex-wcet-bump", func(b *testing.B) {
		sc := analysis.NewScratch()
		_, d := analysis.NewDelta(sc, analysis.DPCPpEP, ts, analysis.Options{})
		if d == nil {
			b.Fatal("base taskset not schedulable; no delta state")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, _, err := d.Apply(sc, bump(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-full-analysis", func(b *testing.B) {
		sc := analysis.NewScratch()
		analysis.TestWith(sc, analysis.DPCPpEP, ts, analysis.Options{}) // warm the arenas
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			patched, _, err := model.ApplyPatch(ts, bump(i))
			if err != nil {
				b.Fatal(err)
			}
			analysis.TestWith(sc, analysis.DPCPpEP, patched, analysis.Options{})
		}
	})
}

// BenchmarkSimulator measures discrete-event simulation throughput on the
// autonomous-pipeline-sized workload and reports events (jobs+requests)
// per run.
func BenchmarkSimulator(b *testing.B) {
	scen := taskgen.Scenario{
		M:          8,
		NumRes:     taskgen.IntRange{Lo: 2, Hi: 4},
		UAvg:       1.5,
		PAccess:    0.75,
		NReq:       taskgen.IntRange{Lo: 1, Hi: 10},
		CSLen:      taskgen.TimeRange{Lo: 15 * rt.Microsecond, Hi: 50 * rt.Microsecond},
		VertsRange: taskgen.IntRange{Lo: 8, Hi: 16},
		EdgeProb:   0.15,
		PeriodLo:   2 * rt.Millisecond,
		PeriodHi:   10 * rt.Millisecond,
	}
	g := taskgen.NewGenerator(scen)
	var ts = mustSchedulable(b, g)
	res := analysis.Test(analysis.DPCPpEP, ts, analysis.Options{})
	var horizon rt.Time
	for _, t := range ts.Tasks {
		if t.Period > horizon {
			horizon = t.Period
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m sim.Metrics
	for i := 0; i < b.N; i++ {
		s, err := sim.New(ts, res.Partition, sim.Config{Horizon: 4 * horizon})
		if err != nil {
			b.Fatal(err)
		}
		m, err = s.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Jobs), "jobs/run")
	b.ReportMetric(float64(m.Requests), "requests/run")
}

func mustSchedulable(b *testing.B, g *taskgen.Generator) *TasksetAlias {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		ts, err := g.Taskset(r, 3.0)
		if err != nil {
			continue
		}
		if analysis.Schedulable(analysis.DPCPpEP, ts, analysis.Options{}) {
			return ts
		}
	}
	b.Fatal("no schedulable taskset found for the simulator benchmark")
	return nil
}

// TasksetAlias keeps the benchmark helper signatures readable.
type TasksetAlias = Taskset

// BenchmarkTaskGeneration measures the synthesis pipeline itself.
func BenchmarkTaskGeneration(b *testing.B) {
	scen, _ := taskgen.Fig2Scenario("2d") // hardest constraints
	g := taskgen.NewGenerator(scen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		if _, err := g.Taskset(r, 16.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathEnumeration measures the EP path machinery on a DAG with an
// exponential path count (2^14 complete paths), exercising the cap check.
// enumerate-16k measures what the analysis actually consumes — the
// signature-collapsed views of EnumerateViews, which fold all 16k paths of
// this DAG into a single view — while enumerate-16k-legacy retains the
// concrete per-path enumeration kept for tests and diagnostics.
func BenchmarkPathEnumeration(b *testing.B) {
	ts := NewTaskset(4, 1)
	task := NewTask(0, 10*rt.Millisecond, 10*rt.Millisecond)
	prev := task.AddVertex(10 * rt.Microsecond)
	for i := 0; i < 14; i++ {
		x := task.AddVertex(20 * rt.Microsecond)
		y := task.AddVertex(30 * rt.Microsecond)
		j := task.AddVertex(10 * rt.Microsecond)
		task.AddEdge(prev, x)
		task.AddEdge(prev, y)
		task.AddEdge(x, j)
		task.AddEdge(y, j)
		prev = j
	}
	task.AddRequest(0, 0, 1, 5*rt.Microsecond)
	ts.Add(task)
	if err := ts.Finalize(); err != nil {
		b.Fatal(err)
	}
	b.Run("count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			task.CountPaths()
		}
	})
	b.Run("bounds-dp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			task.ComputePathBounds()
		}
	})
	b.Run("enumerate-16k", func(b *testing.B) {
		b.ReportAllocs()
		var views []PathView
		for i := 0; i < b.N; i++ {
			var ok bool
			if views, ok = task.EnumerateViews(1 << 14); !ok {
				b.Fatal("cap exceeded unexpectedly")
			}
		}
		b.ReportMetric(float64(len(views)), "views")
	})
	b.Run("enumerate-16k-scratch", func(b *testing.B) {
		b.ReportAllocs()
		var vs ViewScratch
		var views []PathView
		for i := 0; i < b.N; i++ {
			var ok bool
			if views, ok = task.EnumerateViewsScratch(1<<14, &vs); !ok {
				b.Fatal("cap exceeded unexpectedly")
			}
		}
		b.ReportMetric(float64(len(views)), "views")
	})
	b.Run("enumerate-16k-legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := task.EnumeratePaths(1 << 14); !ok {
				b.Fatal("cap exceeded unexpectedly")
			}
		}
	})
}

// BenchmarkGridSweep measures the grid-level experiment scheduler: many
// scenarios drained by one shared worker pool (versus the historical
// scenario-at-a-time sweep whose per-scenario pools idle through each
// scenario's tail).
func BenchmarkGridSweep(b *testing.B) {
	full := taskgen.Grid()
	var grid []taskgen.Scenario
	for i := 0; i < len(full); i += 27 {
		grid = append(grid, full[i])
	}
	tmpl := experiments.Campaign{TasksetsPerPoint: 2, Seed: 2020}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGrid(tmpl, grid); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(grid)), "scenarios")
}
