package dpcpp

import (
	"math/rand"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as README's quick
// start does: scenario -> generator -> taskset -> analysis -> simulation.
func TestFacadeEndToEnd(t *testing.T) {
	scen, err := Fig2Scenario("2a")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(scen)
	ts, err := g.Taskset(rand.New(rand.NewSource(42)), 6.0)
	if err != nil {
		t.Fatal(err)
	}

	res := Test(DPCPpEP, ts, Options{})
	if !res.Schedulable {
		t.Fatalf("seed 42 / U=6 must be schedulable under DPCP-p-EP: %s", res.Reason)
	}
	for _, task := range ts.Tasks {
		if res.WCRT[task.ID] > task.Deadline {
			t.Errorf("task %d: R > D on a schedulable verdict", task.ID)
		}
	}

	var horizon Time
	for _, task := range ts.Tasks {
		if task.Period > horizon {
			horizon = task.Period
		}
	}
	s, err := NewSim(ts, res.Partition, SimConfig{Horizon: 2 * horizon})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.DeadlineMisses != 0 {
		t.Errorf("deadline misses: %d", m.DeadlineMisses)
	}
	if len(s.Violations()) != 0 {
		t.Errorf("violations: %v", s.Violations())
	}
	for _, task := range ts.Tasks {
		if m.MaxResponse[task.ID] > res.WCRT[task.ID] {
			t.Errorf("task %d: simulated response exceeds bound", task.ID)
		}
	}
}

// TestFacadeDelta exercises the incremental what-if API through the
// facade: retain a base analysis, patch one WCET, and check the
// incremental verdict against a full re-analysis of the patched set.
func TestFacadeDelta(t *testing.T) {
	scen, err := Fig2Scenario("2a")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewGenerator(scen).Taskset(rand.New(rand.NewSource(1)), 6.0)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	res, d := NewDelta(sc, DPCPpEP, ts, Options{})
	if !res.Schedulable || d == nil {
		t.Fatalf("base must be schedulable with retained state (schedulable=%v, state=%v)",
			res.Schedulable, d != nil)
	}
	p := Patch{Ops: []PatchOp{{
		Op:     "set_wcet",
		Task:   ts.Tasks[0].ID,
		Vertex: 0,
		Value:  ts.Tasks[0].Vertices[0].WCET + Microsecond,
	}}}
	patched, pd, err := ApplyPatch(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.ChangedIDs()) != 1 || pd.ChangedIDs()[0] != ts.Tasks[0].ID {
		t.Fatalf("changed-task set = %v, want exactly task %d", pd.ChangedIDs(), ts.Tasks[0].ID)
	}
	_, got, _, _, err := d.Apply(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	want := TestWith(NewScratch(), DPCPpEP, patched, Options{})
	if got.Schedulable != want.Schedulable {
		t.Fatalf("delta verdict %v != full %v", got.Schedulable, want.Schedulable)
	}
	for id, w := range want.WCRT {
		if got.WCRT[id] != w {
			t.Errorf("task %d: delta bound %d != full %d", id, got.WCRT[id], w)
		}
	}
}

func TestFacadeMethodsAndScenarios(t *testing.T) {
	if got := len(Methods()); got != 5 {
		t.Errorf("Methods() = %d entries, want 5", got)
	}
	if got := len(Grid()); got != 216 {
		t.Errorf("Grid() = %d scenarios, want 216", got)
	}
	pts := UtilizationPoints(8)
	if pts[0] != 1.0 || pts[len(pts)-1] != 8.0 {
		t.Errorf("UtilizationPoints(8) endpoints: %v", pts)
	}
}

func TestFacadeRandFixedSum(t *testing.T) {
	xs, err := RandFixedSum(rand.New(rand.NewSource(1)), 4, 10, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if sum < 9.999 || sum > 10.001 {
		t.Errorf("sum = %g", sum)
	}
}

func TestFacadeExplain(t *testing.T) {
	ts := NewTaskset(4, 1)
	a := NewTask(0, 100*Microsecond, 100*Microsecond)
	va := a.AddVertex(10 * Microsecond)
	a.AddRequest(va, 0, 1, 2*Microsecond)
	ts.Add(a)
	b := NewTask(1, 200*Microsecond, 200*Microsecond)
	vb := b.AddVertex(20 * Microsecond)
	b.AddRequest(vb, 0, 1, 3*Microsecond)
	ts.Add(b)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := Test(DPCPpEP, ts, Options{})
	if !res.Schedulable {
		t.Fatal("hand set must schedule")
	}
	bds := Explain(ts, res.Partition, 0)
	if len(bds) != 2 {
		t.Fatalf("Explain returned %d breakdowns", len(bds))
	}
	for _, bd := range bds {
		if bd.Total != res.WCRT[bd.TaskID] {
			t.Errorf("task %d: breakdown total != WCRT", bd.TaskID)
		}
	}
}

func TestFacadeProtocolModes(t *testing.T) {
	ts := NewTaskset(2, 1)
	a := NewTask(0, 100*Microsecond, 100*Microsecond)
	va := a.AddVertex(10 * Microsecond)
	a.AddRequest(va, 0, 1, 2*Microsecond)
	ts.Add(a)
	b := NewTask(1, 200*Microsecond, 200*Microsecond)
	vb := b.AddVertex(20 * Microsecond)
	b.AddRequest(vb, 0, 1, 3*Microsecond)
	ts.Add(b)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := Test(SPIN, ts, Options{})
	if !res.Schedulable {
		t.Fatal("SPIN must schedule the two-task example")
	}
	for _, proto := range []Protocol{ProtocolDPCPp, ProtocolSpin, ProtocolLPP} {
		cfg := SimConfig{Horizon: 400 * Microsecond, Protocol: proto}
		if proto == ProtocolDPCPp {
			// DPCP-p needs the resource placed; reuse the DPCP-p pipeline.
			dres := Test(DPCPpEP, ts, Options{})
			s, err := NewSim(ts, dres.Partition, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				t.Fatalf("protocol %d: %v", proto, err)
			}
			continue
		}
		s, err := NewSim(ts, res.Partition, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatalf("protocol %d: %v", proto, err)
		}
		if m.DeadlineMisses != 0 {
			t.Errorf("protocol %d: misses", proto)
		}
	}
}
