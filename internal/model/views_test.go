package model

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dpcpp/internal/rt"
)

func TestEnumerateViewsGi(t *testing.T) {
	task := paperTaskGi(t)
	views, ok := task.EnumerateViews(0)
	if !ok {
		t.Fatal("EnumerateViews: cap exceeded without a cap")
	}
	// Gi has 4 paths and 3 distinct request vectors: (l1), (l2), (none).
	if len(views) != 3 {
		t.Fatalf("got %d views, want 3: %+v", len(views), views)
	}
	byKey := map[string]*PathView{}
	var total int64
	for i := range views {
		v := &views[i]
		byKey[fmt.Sprintf("%d,%d", v.Requests(0), v.Requests(1))] = v
		total += v.Paths
	}
	if total != task.CountPaths() {
		t.Errorf("views cover %d paths, want %d", total, task.CountPaths())
	}
	l1 := byKey["1,0"]
	l2 := byKey["0,1"]
	none := byKey["0,0"]
	if l1 == nil || l2 == nil || none == nil {
		t.Fatalf("missing signature: %+v", views)
	}
	if l1.Paths != 1 || l2.Paths != 2 || none.Paths != 1 {
		t.Errorf("path distribution = l1:%d l2:%d none:%d, want 1,2,1",
			l1.Paths, l2.Paths, none.Paths)
	}
	// The request-free path (v1,v5,v7,v8) is the overall longest.
	if none.Length != 10*rt.Microsecond {
		t.Errorf("request-free view length = %v, want 10us", none.Length)
	}
	// The two l2 paths have lengths 8us (via v3) and 8us (via v4); both
	// carry one 1us critical section, so NonCrit = Length - 1us.
	if l2.NonCrit != l2.Length-1*rt.Microsecond {
		t.Errorf("l2 view NonCrit = %v with Length %v, want Length-1us",
			l2.NonCrit, l2.Length)
	}
}

func TestEnumerateViewsCapMatchesEnumeratePaths(t *testing.T) {
	task := paperTaskGi(t)
	if _, ok := task.EnumerateViews(3); ok {
		t.Error("EnumerateViews(cap=3) succeeded on a 4-path DAG, want cap exceeded")
	}
	if views, ok := task.EnumerateViews(4); !ok || len(views) != 3 {
		t.Errorf("EnumerateViews(cap=4): ok=%v len=%d, want 3 views", ok, len(views))
	}
}

// Property: EnumerateViews is exactly EnumeratePaths grouped by request
// vector, carrying the per-group maxima and path counts.
func TestViewsMatchEnumerationGrouping(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomDAGTask(r, 2+r.Intn(9), 2)
		paths, ok := task.EnumeratePaths(100000)
		if !ok {
			return true
		}
		type group struct {
			maxLen, maxNonCrit rt.Time
			paths              int64
		}
		groups := map[[2]int64]*group{}
		for _, p := range paths {
			k := [2]int64{p.Requests(0), p.Requests(1)}
			g := groups[k]
			if g == nil {
				g = &group{}
				groups[k] = g
			}
			if p.Length > g.maxLen {
				g.maxLen = p.Length
			}
			if p.NonCrit > g.maxNonCrit {
				g.maxNonCrit = p.NonCrit
			}
			g.paths++
		}
		views, ok := task.EnumerateViews(100000)
		if !ok || len(views) != len(groups) {
			return false
		}
		for i := range views {
			v := &views[i]
			g := groups[[2]int64{v.Requests(0), v.Requests(1)}]
			if g == nil {
				return false
			}
			if v.Length != g.maxLen || v.NonCrit != g.maxNonCrit || v.Paths != g.paths {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// exponentialDAG builds the benchmark topology: k stacked diamonds with a
// single request at the head, i.e. 2^k paths collapsing into one signature.
func exponentialDAG(tb testing.TB, k int) *Task {
	task := NewTask(0, 10*rt.Millisecond, 10*rt.Millisecond)
	prev := task.AddVertex(10 * rt.Microsecond)
	for i := 0; i < k; i++ {
		x := task.AddVertex(20 * rt.Microsecond)
		y := task.AddVertex(30 * rt.Microsecond)
		j := task.AddVertex(10 * rt.Microsecond)
		task.AddEdge(prev, x)
		task.AddEdge(prev, y)
		task.AddEdge(x, j)
		task.AddEdge(y, j)
		prev = j
	}
	task.AddRequest(0, 0, 1, 5*rt.Microsecond)
	if err := task.Finalize(1); err != nil {
		tb.Fatal(err)
	}
	return task
}

func TestEnumerateViewsCollapsesExponentialDAG(t *testing.T) {
	task := exponentialDAG(t, 14)
	views, ok := task.EnumerateViews(1 << 14)
	if !ok {
		t.Fatal("cap exceeded unexpectedly")
	}
	if len(views) != 1 {
		t.Fatalf("got %d views, want 1 (all paths share one signature)", len(views))
	}
	if views[0].Paths != 1<<14 {
		t.Errorf("collapsed %d paths, want %d", views[0].Paths, 1<<14)
	}
	if views[0].Length != task.LongestPath() {
		t.Errorf("view length %v != longest path %v", views[0].Length, task.LongestPath())
	}
}

// The view pipeline must stay allocation-light even on DAGs whose path
// count is exponential: the collapse runs on vertices, not paths.
func TestEnumerateViewsAllocs(t *testing.T) {
	task := exponentialDAG(t, 14)
	allocs := testing.AllocsPerRun(10, func() {
		if _, ok := task.EnumerateViews(1 << 14); !ok {
			t.Fatal("cap exceeded")
		}
	})
	// ~5 allocs per vertex (61 vertices) plus fixed overhead; the legacy
	// per-path enumerator needed >65000.
	if allocs > 500 {
		t.Errorf("EnumerateViews allocates %v times per run, want <= 500", allocs)
	}
}

func TestVisitPathsDeepChain(t *testing.T) {
	// A 100k-vertex chain would previously grow the goroutine stack one
	// recursion frame per vertex; the explicit stack must handle it.
	task := NewTask(0, rt.Second, rt.Second)
	prev := task.AddVertex(rt.Microsecond)
	const n = 100000
	for i := 1; i < n; i++ {
		v := task.AddVertex(rt.Microsecond)
		task.AddEdge(prev, v)
		prev = v
	}
	if err := task.Finalize(0); err != nil {
		t.Fatal(err)
	}
	paths, ok := task.EnumeratePaths(0)
	if !ok || len(paths) != 1 {
		t.Fatalf("chain enumeration: ok=%v len=%d", ok, len(paths))
	}
	if got := len(paths[0].Vertices); got != n {
		t.Errorf("chain path has %d vertices, want %d", got, n)
	}
	views, ok := task.EnumerateViews(0)
	if !ok || len(views) != 1 || views[0].Length != rt.Time(n)*rt.Microsecond {
		t.Errorf("chain views: ok=%v %+v", ok, views)
	}
}
