package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// EncodeTaskset writes the taskset as JSON. The derived quantities are not
// serialized; DecodeTaskset re-validates and recomputes them.
func EncodeTaskset(w io.Writer, ts *Taskset) error {
	return json.NewEncoder(w).Encode(ts)
}

// DecodeTaskset reads a taskset produced by EncodeTaskset (or cmd/taskgen)
// and finalizes it.
func DecodeTaskset(r io.Reader) (*Taskset, error) {
	var ts Taskset
	if err := json.NewDecoder(r).Decode(&ts); err != nil {
		return nil, fmt.Errorf("model: decoding taskset: %w", err)
	}
	if err := ts.Finalize(); err != nil {
		return nil, err
	}
	return &ts, nil
}
