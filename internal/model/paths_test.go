package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dpcpp/internal/rt"
)

func TestEnumeratePathsGi(t *testing.T) {
	task := paperTaskGi(t)
	if got := task.CountPaths(); got != 4 {
		t.Fatalf("CountPaths = %d, want 4", got)
	}
	paths, ok := task.EnumeratePaths(0)
	if !ok || len(paths) != 4 {
		t.Fatalf("EnumeratePaths: ok=%v len=%d, want 4 paths", ok, len(paths))
	}
	// The longest must be (v1, v5, v7, v8) with L = 10us.
	var best *Path
	for _, p := range paths {
		if best == nil || p.Length > best.Length {
			best = p
		}
	}
	if best.Length != 10*rt.Microsecond {
		t.Errorf("longest enumerated path = %v, want 10us", best.Length)
	}
	want := []rt.VertexID{0, 4, 6, 7}
	for i, x := range best.Vertices {
		if x != want[i] {
			t.Errorf("longest path vertices = %v, want %v", best.Vertices, want)
			break
		}
	}
}

func TestPathRequestVectors(t *testing.T) {
	task := paperTaskGi(t)
	paths, _ := task.EnumeratePaths(0)
	// Path through v2 carries the single l1 request; paths through v3 or v4
	// carry one l2 request each; the path through v5 carries none.
	counts := map[string]int{}
	for _, p := range paths {
		switch {
		case p.Requests(0) == 1 && p.Requests(1) == 0:
			counts["l1"]++
		case p.Requests(0) == 0 && p.Requests(1) == 1:
			counts["l2"]++
		case p.Requests(0) == 0 && p.Requests(1) == 0:
			counts["none"]++
		default:
			t.Errorf("unexpected request vector on path %v: l1=%d l2=%d",
				p.Vertices, p.Requests(0), p.Requests(1))
		}
	}
	if counts["l1"] != 1 || counts["l2"] != 2 || counts["none"] != 1 {
		t.Errorf("path request distribution = %v, want l1:1 l2:2 none:1", counts)
	}
}

func TestPathContains(t *testing.T) {
	task := paperTaskGi(t)
	paths, _ := task.EnumeratePaths(0)
	for _, p := range paths {
		seen := map[rt.VertexID]bool{}
		for _, x := range p.Vertices {
			seen[x] = true
		}
		for x := range task.Vertices {
			if p.Contains(rt.VertexID(x)) != seen[rt.VertexID(x)] {
				t.Errorf("Contains(%d) inconsistent on path %v", x, p.Vertices)
			}
		}
	}
}

func TestEnumeratePathsCap(t *testing.T) {
	task := paperTaskGi(t)
	if _, ok := task.EnumeratePaths(3); ok {
		t.Error("EnumeratePaths(cap=3) succeeded on a 4-path DAG, want cap exceeded")
	}
	if paths, ok := task.EnumeratePaths(4); !ok || len(paths) != 4 {
		t.Errorf("EnumeratePaths(cap=4): ok=%v len=%d, want 4", ok, len(paths))
	}
}

func TestComputePathBoundsGi(t *testing.T) {
	task := paperTaskGi(t)
	b := task.ComputePathBounds()
	if b.MaxLength != 10*rt.Microsecond {
		t.Errorf("MaxLength = %v, want 10us", b.MaxLength)
	}
	if b.MinReq[0] != 0 || b.MaxReq[0] != 1 {
		t.Errorf("l1 request bounds = [%d,%d], want [0,1]", b.MinReq[0], b.MaxReq[0])
	}
	if b.MinReq[1] != 0 || b.MaxReq[1] != 1 {
		t.Errorf("l2 request bounds = [%d,%d], want [0,1]", b.MinReq[1], b.MaxReq[1])
	}
}

// randomDAGTask builds a random DAG task for property tests: edges only go
// from lower to higher vertex index, so it is always acyclic.
func randomDAGTask(r *rand.Rand, nVerts, nRes int) *Task {
	task := NewTask(0, rt.Second, rt.Second)
	for i := 0; i < nVerts; i++ {
		task.AddVertex(rt.Time(1+r.Intn(20)) * rt.Microsecond)
	}
	for i := 0; i < nVerts; i++ {
		for j := i + 1; j < nVerts; j++ {
			if r.Float64() < 0.2 {
				task.AddEdge(rt.VertexID(i), rt.VertexID(j))
			}
		}
	}
	for q := 0; q < nRes; q++ {
		x := rt.VertexID(r.Intn(nVerts))
		if task.Vertices[x].WCET >= 2*rt.Microsecond {
			task.AddRequest(x, rt.ResourceID(q), 1, rt.Microsecond)
		}
	}
	if err := task.Finalize(nRes); err != nil {
		panic(err)
	}
	return task
}

// Property: for every enumerated path, length and request counts stay within
// the DP bounds, and the maximum enumerated length equals L*.
func TestPathBoundsDominateEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomDAGTask(r, 2+r.Intn(9), 2)
		b := task.ComputePathBounds()
		paths, ok := task.EnumeratePaths(100000)
		if !ok {
			return true // cap exceeded: nothing to check
		}
		var maxLen rt.Time
		for _, p := range paths {
			if p.Length > b.MaxLength {
				return false
			}
			if p.Length > maxLen {
				maxLen = p.Length
			}
			if p.NonCrit < b.MinNonCrit {
				return false
			}
			for q := 0; q < 2; q++ {
				n := p.Requests(rt.ResourceID(q))
				if n < b.MinReq[q] || n > b.MaxReq[q] {
					return false
				}
			}
		}
		return maxLen == b.MaxLength
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the DP bounds are tight, i.e. attained by some enumerated path.
func TestPathBoundsTight(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomDAGTask(r, 2+r.Intn(8), 2)
		b := task.ComputePathBounds()
		paths, ok := task.EnumeratePaths(100000)
		if !ok {
			return true
		}
		for q := 0; q < 2; q++ {
			minSeen, maxSeen := int64(1<<62), int64(-1)
			for _, p := range paths {
				n := p.Requests(rt.ResourceID(q))
				if n < minSeen {
					minSeen = n
				}
				if n > maxSeen {
					maxSeen = n
				}
			}
			if minSeen != b.MinReq[q] || maxSeen != b.MaxReq[q] {
				return false
			}
		}
		minNC := rt.Infinity
		for _, p := range paths {
			if p.NonCrit < minNC {
				minNC = p.NonCrit
			}
		}
		return minNC == b.MinNonCrit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CountPaths agrees with enumeration.
func TestCountPathsMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomDAGTask(r, 2+r.Intn(8), 1)
		paths, ok := task.EnumeratePaths(100000)
		if !ok {
			return true
		}
		return task.CountPaths() == int64(len(paths))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated path is a valid head-to-tail chain of edges.
func TestEnumeratedPathsAreValidChains(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		task := randomDAGTask(r, 2+r.Intn(8), 1)
		paths, ok := task.EnumeratePaths(100000)
		if !ok {
			return true
		}
		isEdge := map[[2]rt.VertexID]bool{}
		for _, e := range task.Edges {
			isEdge[[2]rt.VertexID{e.From, e.To}] = true
		}
		for _, p := range paths {
			if len(task.Pred(p.Vertices[0])) != 0 {
				return false
			}
			if len(task.Succ(p.Vertices[len(p.Vertices)-1])) != 0 {
				return false
			}
			for i := 0; i+1 < len(p.Vertices); i++ {
				if !isEdge[[2]rt.VertexID{p.Vertices[i], p.Vertices[i+1]}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDiamondPathCount(t *testing.T) {
	// k independent diamonds in sequence gives 2^k paths.
	task := NewTask(0, rt.Second, rt.Second)
	prev := task.AddVertex(rt.Microsecond)
	k := 10
	for i := 0; i < k; i++ {
		a := task.AddVertex(rt.Microsecond)
		b := task.AddVertex(rt.Microsecond)
		join := task.AddVertex(rt.Microsecond)
		task.AddEdge(prev, a)
		task.AddEdge(prev, b)
		task.AddEdge(a, join)
		task.AddEdge(b, join)
		prev = join
	}
	if err := task.Finalize(0); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if got, want := task.CountPaths(), int64(1<<k); got != want {
		t.Errorf("CountPaths = %d, want %d", got, want)
	}
}
