package model

import (
	"math"

	"dpcpp/internal/rt"
)

// Path is one complete path lambda_i through a task's DAG: a head-to-tail
// sequence of vertices, together with the derived quantities the response
// time analysis consumes.
type Path struct {
	Vertices []rt.VertexID
	Length   rt.Time // L(lambda), sum of vertex WCETs on the path
	NonCrit  rt.Time // C'(lambda), sum of non-critical WCETs on the path
	NReq     []int64 // NReq[q] = N^lambda_{i,q}, requests issued on the path
	onPath   []bool
}

// Contains reports whether vertex x lies on the path.
func (p *Path) Contains(x rt.VertexID) bool { return p.onPath[x] }

// Requests returns N^lambda_{i,q} for resource q.
func (p *Path) Requests(q rt.ResourceID) int64 {
	if int(q) >= len(p.NReq) {
		return 0
	}
	return p.NReq[q]
}

// CountPaths returns the number of complete paths in the DAG, saturating at
// math.MaxInt64. It runs in O(V+E) by dynamic programming over the
// topological order.
func (t *Task) CountPaths() int64 {
	t.mustFinal()
	//schedlint:ignore hotpath cap pre-check runs once per task; the analyzer caches the resulting views
	count := make([]int64, len(t.Vertices))
	total := int64(0)
	// Iterate in reverse topological order: count[x] = paths from x to a tail.
	for i := len(t.topo) - 1; i >= 0; i-- {
		x := t.topo[i]
		if len(t.succ[x]) == 0 {
			count[x] = 1
			continue
		}
		var c int64
		for _, y := range t.succ[x] {
			c = satAddI64(c, count[y])
		}
		count[x] = c
	}
	for _, h := range t.heads {
		total = satAddI64(total, count[h])
	}
	return total
}

func satAddI64(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// EnumeratePaths yields every complete path of the DAG, up to the given cap.
// It returns the collected paths and ok=false when the cap was exceeded (in
// which case the returned slice is nil and callers should fall back to the
// path-oblivious EN bounds). A cap <= 0 means unlimited.
//
// The response-time analysis no longer consumes concrete paths; it uses the
// signature-collapsed views of EnumerateViews. EnumeratePaths remains the
// reference enumeration for tests and diagnostic tooling.
func (t *Task) EnumeratePaths(cap int) (paths []*Path, ok bool) {
	t.mustFinal()
	if cap > 0 && t.CountPaths() > int64(cap) {
		return nil, false
	}
	nr := len(t.nReq)
	t.visitPaths(func(stack []rt.VertexID) {
		paths = append(paths, t.makePath(stack, nr))
	})
	return paths, true
}

// visitPaths walks every complete head-to-tail path with an explicit frame
// stack (no recursion, so arbitrarily deep chain DAGs cannot grow the
// goroutine stack). The vertex slice passed to visit is reused between
// calls; callers must copy it if they retain it.
func (t *Task) visitPaths(visit func(vertices []rt.VertexID)) {
	type frame struct {
		x    rt.VertexID
		next int // index of the next successor to descend into
	}
	frames := make([]frame, 0, len(t.Vertices))
	stack := make([]rt.VertexID, 0, len(t.Vertices))
	for _, h := range t.heads {
		frames = append(frames[:0], frame{x: h})
		stack = append(stack[:0], h)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succ := t.succ[f.x]
			if len(succ) == 0 {
				visit(stack)
			}
			if f.next < len(succ) {
				y := succ[f.next]
				f.next++
				frames = append(frames, frame{x: y})
				stack = append(stack, y)
				continue
			}
			frames = frames[:len(frames)-1]
			stack = stack[:len(stack)-1]
		}
	}
}

func (t *Task) makePath(vertices []rt.VertexID, nr int) *Path {
	p := &Path{
		Vertices: append([]rt.VertexID(nil), vertices...),
		NReq:     make([]int64, nr),
		onPath:   make([]bool, len(t.Vertices)),
	}
	for _, x := range vertices {
		v := t.Vertices[x]
		p.Length += v.WCET
		p.NonCrit += t.VertexNonCrit(x)
		p.onPath[x] = true
		for q, n := range v.Requests {
			p.NReq[q] += int64(n)
		}
	}
	return p
}

// PathBounds holds, for one task, the extreme values over all complete
// paths of every path-dependent quantity used by the EN analysis. The EN
// analysis treats the worst-case path as unknown and substitutes, per term,
// the extreme in the pessimistic direction — a sound relaxation of
// enumerating the per-resource request counts as in the paper's
// DPCP-p-EN baseline.
type PathBounds struct {
	MaxLength  rt.Time // L*_i
	MinLength  rt.Time // min over paths of L(lambda)
	MinNonCrit rt.Time // min over paths of C'(lambda)
	MinReq     []int64 // per resource: min over paths of N^lambda_{i,q}
	MaxReq     []int64 // per resource: max over paths of N^lambda_{i,q}
}

// ComputePathBounds computes PathBounds in O((V+E) * nr) by per-resource
// dynamic programming over the topological order, without enumerating paths.
func (t *Task) ComputePathBounds() *PathBounds {
	t.mustFinal()
	nr := len(t.nReq)
	b := &PathBounds{
		MaxLength: t.longestPath,
		//schedlint:ignore hotpath path bounds are computed once per task and cached by every caller
		MinReq: make([]int64, nr),
		//schedlint:ignore hotpath path bounds are computed once per task and cached by every caller
		MaxReq: make([]int64, nr),
	}

	// Min non-critical length and min total length over complete paths.
	//schedlint:ignore hotpath path bounds are computed once per task and cached by every caller
	b.MinNonCrit = t.minOverPaths(func(x rt.VertexID) int64 {
		return t.VertexNonCrit(x)
	})
	//schedlint:ignore hotpath path bounds are computed once per task and cached by every caller
	b.MinLength = t.minOverPaths(func(x rt.VertexID) int64 {
		return t.Vertices[x].WCET
	})

	for q := 0; q < nr; q++ {
		if t.nReq[q] == 0 {
			continue
		}
		//schedlint:ignore hotpath path bounds are computed once per task and cached by every caller
		weight := func(x rt.VertexID) int64 {
			return int64(t.Vertices[x].Requests[rt.ResourceID(q)])
		}
		b.MinReq[q] = t.minOverPaths(weight)
		b.MaxReq[q] = t.maxOverPaths(weight)
	}
	return b
}

// minOverPaths returns min over complete paths of the sum of w(x) along the
// path. DP in reverse topological order.
func (t *Task) minOverPaths(w func(rt.VertexID) int64) int64 {
	return t.optOverPaths(w, func(a, b int64) bool { return a < b })
}

// maxOverPaths returns max over complete paths of the sum of w(x).
func (t *Task) maxOverPaths(w func(rt.VertexID) int64) int64 {
	return t.optOverPaths(w, func(a, b int64) bool { return a > b })
}

func (t *Task) optOverPaths(w func(rt.VertexID) int64, better func(a, b int64) bool) int64 {
	//schedlint:ignore hotpath path bounds are computed once per task and cached by every caller
	best := make([]int64, len(t.Vertices))
	//schedlint:ignore hotpath path bounds are computed once per task and cached by every caller
	seen := make([]bool, len(t.Vertices))
	for i := len(t.topo) - 1; i >= 0; i-- {
		x := t.topo[i]
		if len(t.succ[x]) == 0 {
			best[x] = w(x)
			seen[x] = true
			continue
		}
		var opt int64
		first := true
		for _, y := range t.succ[x] {
			if !seen[y] {
				continue
			}
			if first || better(best[y], opt) {
				opt = best[y]
				first = false
			}
		}
		best[x] = w(x) + opt
		seen[x] = true
	}
	var opt int64
	first := true
	for _, h := range t.heads {
		if first || better(best[h], opt) {
			opt = best[h]
			first = false
		}
	}
	return opt
}
