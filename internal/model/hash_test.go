package model

import (
	"bytes"
	"testing"

	"dpcpp/internal/rt"
)

// rebuild constructs the semantically identical taskset a second time so
// tests can perturb one copy without aliasing.
func hashTaskSet(t *testing.T, mutate func(ts *Taskset)) *Taskset {
	t.Helper()
	ts := NewTaskset(4, 2)

	t0 := NewTask(0, 100*rt.Microsecond, 100*rt.Microsecond)
	a := t0.AddVertex(10 * rt.Microsecond)
	b := t0.AddVertex(10 * rt.Microsecond)
	t0.AddEdge(a, b)
	t0.AddRequest(a, 0, 2, 2*rt.Microsecond)
	t0.AddRequest(b, 1, 1, 3*rt.Microsecond)
	ts.Add(t0)

	t1 := NewTask(1, 50*rt.Microsecond, 50*rt.Microsecond)
	c := t1.AddVertex(8 * rt.Microsecond)
	t1.AddRequest(c, 0, 1, 4*rt.Microsecond)
	ts.Add(t1)

	if mutate != nil {
		mutate(ts)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return ts
}

func TestHashDeterministic(t *testing.T) {
	a := hashTaskSet(t, nil)
	b := hashTaskSet(t, nil)
	if a.Hash() != b.Hash() {
		t.Fatalf("identical tasksets hash differently:\n%s\n%s", a.Hash(), b.Hash())
	}
	if a.Hash() != a.Hash() {
		t.Fatal("Hash is not stable across calls")
	}
}

func TestHashIgnoresTaskOrderAndName(t *testing.T) {
	a := hashTaskSet(t, nil)
	b := hashTaskSet(t, func(ts *Taskset) {
		ts.Tasks[0], ts.Tasks[1] = ts.Tasks[1], ts.Tasks[0]
		ts.Tasks[0].Name = "renamed"
	})
	if a.Hash() != b.Hash() {
		t.Fatalf("task order / Name changed the hash:\ncanonical a: %s\ncanonical b: %s",
			a.AppendCanonical(nil), b.AppendCanonical(nil))
	}
}

func TestHashIgnoresDuplicateEdgesAndZeroRequests(t *testing.T) {
	a := hashTaskSet(t, nil)
	b := hashTaskSet(t, func(ts *Taskset) {
		ts.Tasks[0].AddEdge(0, 1) // duplicate of the existing edge
		ts.Tasks[1].Vertices[0].Requests[1] = 0
	})
	if a.Hash() != b.Hash() {
		t.Fatalf("duplicate edge / zero-count request changed the hash:\na: %s\nb: %s",
			a.AppendCanonical(nil), b.AppendCanonical(nil))
	}
}

func TestHashSensitivity(t *testing.T) {
	base := hashTaskSet(t, nil).Hash()
	cases := []struct {
		name   string
		mutate func(ts *Taskset)
	}{
		{"wcet", func(ts *Taskset) { ts.Tasks[0].Vertices[0].WCET += rt.Microsecond }},
		{"period", func(ts *Taskset) { ts.Tasks[1].Period += rt.Microsecond }},
		{"deadline", func(ts *Taskset) { ts.Tasks[0].Deadline -= rt.Microsecond }},
		{"edge", func(ts *Taskset) { ts.Tasks[0].Edges = nil }},
		{"requests", func(ts *Taskset) { ts.Tasks[1].Vertices[0].Requests[0] = 2 }},
		{"cslen", func(ts *Taskset) {
			ts.Tasks[1].CSLen[0] = 5 * rt.Microsecond
		}},
		{"procs", func(ts *Taskset) { ts.NumProcs = 8 }},
		{"priority", func(ts *Taskset) {
			ts.Tasks[0].Priority = 2
			ts.Tasks[1].Priority = 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := hashTaskSet(t, tc.mutate).Hash()
			if h == base {
				t.Errorf("mutation %q did not change the hash", tc.name)
			}
		})
	}
}

// TestHashJSONRoundTrip pins the invariant the server's cache depends on:
// the hash survives an encode/decode cycle bit-exactly. FuzzTasksetJSON
// extends this to arbitrary valid documents.
func TestHashJSONRoundTrip(t *testing.T) {
	ts := hashTaskSet(t, nil)
	var buf bytes.Buffer
	if err := EncodeTaskset(&buf, ts); err != nil {
		t.Fatalf("encode: %v", err)
	}
	ts2, err := DecodeTaskset(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ts.Hash() != ts2.Hash() {
		t.Fatalf("hash changed across JSON round trip:\nbefore: %s\nafter:  %s\ncanonical before: %s\ncanonical after:  %s",
			ts.Hash(), ts2.Hash(), ts.AppendCanonical(nil), ts2.AppendCanonical(nil))
	}
}

func TestHashRequiresFinalize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Hash on an unfinalized taskset did not panic")
		}
	}()
	NewTaskset(2, 0).Hash()
}

func BenchmarkTasksetHash(b *testing.B) {
	ts := NewTaskset(4, 2)
	t0 := NewTask(0, 100*rt.Microsecond, 100*rt.Microsecond)
	var prev rt.VertexID = -1
	for i := 0; i < 64; i++ {
		v := t0.AddVertex(10 * rt.Microsecond)
		if prev >= 0 {
			t0.AddEdge(prev, v)
		}
		t0.AddRequest(v, rt.ResourceID(i%2), 1, rt.Microsecond)
		prev = v
	}
	ts.Add(t0)
	t1 := NewTask(1, 50*rt.Microsecond, 50*rt.Microsecond)
	t1.AddVertex(8 * rt.Microsecond)
	ts.Add(t1)
	if err := ts.Finalize(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ts.Hash()
	}
}
