package model

import (
	"fmt"
	"sort"

	"dpcpp/internal/rt"
)

// Taskset is a set of DAG tasks sharing nr resources on m processors.
type Taskset struct {
	Tasks        []*Task `json:"tasks"`
	NumResources int     `json:"num_resources"`
	NumProcs     int     `json:"num_procs"`

	finalized bool
	sharers   [][]rt.TaskID // per resource: tasks that use it, by descending priority
}

// NewTaskset returns an empty taskset for m processors and nr resources.
func NewTaskset(m, nr int) *Taskset {
	return &Taskset{NumResources: nr, NumProcs: m}
}

// Add appends a task. Must be called before Finalize.
func (ts *Taskset) Add(t *Task) { ts.Tasks = append(ts.Tasks, t) }

// Finalize validates every task, assigns rate-monotonic priorities when no
// explicit priorities were provided, and classifies resources.
//
// RM ties are broken by task ID so that priorities are always unique and
// deterministic, as the analysis requires.
func (ts *Taskset) Finalize() error {
	if ts.finalized {
		return nil
	}
	if ts.NumProcs < 2 {
		return fmt.Errorf("model: taskset needs m >= 2 processors, have %d", ts.NumProcs)
	}
	if ts.NumResources < 0 {
		return fmt.Errorf("model: negative resource count %d", ts.NumResources)
	}
	seen := make(map[rt.TaskID]bool, len(ts.Tasks))
	for _, t := range ts.Tasks {
		if seen[t.ID] {
			return fmt.Errorf("model: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
		if err := t.Finalize(ts.NumResources); err != nil {
			return err
		}
	}

	if !ts.prioritiesExplicit() {
		ts.AssignRMPriorities()
	}
	prios := make(map[rt.Priority]rt.TaskID, len(ts.Tasks))
	for _, t := range ts.Tasks {
		if other, dup := prios[t.Priority]; dup {
			return fmt.Errorf("model: tasks %d and %d share priority %d", other, t.ID, t.Priority)
		}
		prios[t.Priority] = t.ID
	}

	ts.sharers = make([][]rt.TaskID, ts.NumResources)
	byPrio := ts.ByPriorityDesc()
	for _, t := range byPrio {
		for q := 0; q < ts.NumResources; q++ {
			if t.UsesResource(rt.ResourceID(q)) {
				ts.sharers[q] = append(ts.sharers[q], t.ID)
			}
		}
	}

	ts.finalized = true
	return nil
}

func (ts *Taskset) prioritiesExplicit() bool {
	for _, t := range ts.Tasks {
		if t.Priority != 0 {
			return true
		}
	}
	return false
}

// AssignRMPriorities assigns unique rate-monotonic base priorities:
// shorter period means higher priority; ties broken by smaller task ID.
// Priorities are 1..n with n = highest.
func (ts *Taskset) AssignRMPriorities() {
	order := append([]*Task(nil), ts.Tasks...)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].Period != order[b].Period {
			return order[a].Period > order[b].Period
		}
		return order[a].ID > order[b].ID
	})
	for i, t := range order {
		t.Priority = rt.Priority(i + 1)
	}
}

func (ts *Taskset) mustFinal() {
	if !ts.finalized {
		panic("model: taskset used before Finalize")
	}
}

// Task returns the task with the given ID.
func (ts *Taskset) Task(id rt.TaskID) *Task {
	for _, t := range ts.Tasks {
		if t.ID == id {
			return t
		}
	}
	panic(fmt.Sprintf("model: unknown task %d", id))
}

// ByPriorityDesc returns the tasks ordered from highest to lowest base
// priority.
func (ts *Taskset) ByPriorityDesc() []*Task {
	out := append([]*Task(nil), ts.Tasks...)
	sort.Slice(out, func(a, b int) bool { return out[a].Priority > out[b].Priority })
	return out
}

// SharedBy returns the tasks that use resource q, from highest to lowest
// priority.
func (ts *Taskset) SharedBy(q rt.ResourceID) []rt.TaskID {
	ts.mustFinal()
	return ts.sharers[q]
}

// IsGlobal reports whether q is a global resource, i.e. shared by more than
// one task (Sec. III-A).
func (ts *Taskset) IsGlobal(q rt.ResourceID) bool {
	ts.mustFinal()
	return len(ts.sharers[q]) > 1
}

// IsLocal reports whether q is used by exactly one task.
func (ts *Taskset) IsLocal(q rt.ResourceID) bool {
	ts.mustFinal()
	return len(ts.sharers[q]) == 1
}

// GlobalResources returns the IDs of all global resources, ascending.
func (ts *Taskset) GlobalResources() []rt.ResourceID {
	ts.mustFinal()
	var out []rt.ResourceID
	for q := 0; q < ts.NumResources; q++ {
		if ts.IsGlobal(rt.ResourceID(q)) {
			out = append(out, rt.ResourceID(q))
		}
	}
	return out
}

// ResourceUtilization returns u^Phi_q = sum_j N_{j,q} * L_{j,q} / T_j.
func (ts *Taskset) ResourceUtilization(q rt.ResourceID) float64 {
	ts.mustFinal()
	u := 0.0
	for _, id := range ts.sharers[q] {
		t := ts.Task(id)
		u += float64(t.CSWork(q)) / float64(t.Period)
	}
	return u
}

// TotalUtilization returns the sum of task utilizations.
func (ts *Taskset) TotalUtilization() float64 {
	u := 0.0
	for _, t := range ts.Tasks {
		u += t.Utilization()
	}
	return u
}

// CeilingAtLeast reports whether the priority ceiling of resource q reaches
// pi^H + pi, i.e. whether q is used by some task with base priority >= pi.
// This is the ceiling comparison the beta term of Lemma 2 performs.
func (ts *Taskset) CeilingAtLeast(q rt.ResourceID, pi rt.Priority) bool {
	ts.mustFinal()
	sh := ts.sharers[q]
	if len(sh) == 0 {
		return false
	}
	// sharers are sorted by descending priority, so the first one carries
	// the ceiling.
	return ts.Task(sh[0]).Priority >= pi
}

// Ceiling returns the priority ceiling contribution of resource q: the
// maximum base priority among its users (0 when unused).
func (ts *Taskset) Ceiling(q rt.ResourceID) rt.Priority {
	ts.mustFinal()
	sh := ts.sharers[q]
	if len(sh) == 0 {
		return 0
	}
	return ts.Task(sh[0]).Priority
}
