package model

import (
	"fmt"
	"sort"

	"dpcpp/internal/rt"
)

// Patch is a canonical description of a taskset edit: an ordered list of
// operations applied atomically by ApplyPatch. Patches are the unit of the
// incremental what-if analysis (internal/analysis.Delta and the server's
// POST /v1/analyze/delta): the patched taskset's canonical hash is the
// patch-aware cache key, so a delta result and a from-scratch analysis of
// the same edited taskset share the content-addressed result cache.
type Patch struct {
	Ops []PatchOp `json:"ops"`
}

// Patch op names. Each op edits one task (or adds/removes one); unknown
// names are rejected by ApplyPatch.
const (
	// OpSetWCET sets vertex Vertex of task Task to WCET Value.
	OpSetWCET = "set_wcet"
	// OpSetCSLen sets task Task's critical-section length on Resource to
	// Value.
	OpSetCSLen = "set_cslen"
	// OpSetRequest sets the request count of vertex Vertex of task Task on
	// Resource to Count.
	OpSetRequest = "set_request"
	// OpAddEdge adds the precedence edge From -> To to task Task.
	OpAddEdge = "add_edge"
	// OpRemoveEdge removes one occurrence of the edge From -> To.
	OpRemoveEdge = "remove_edge"
	// OpSetPeriod sets task Task's period to Value.
	OpSetPeriod = "set_period"
	// OpSetDeadline sets task Task's deadline to Value.
	OpSetDeadline = "set_deadline"
	// OpAddTask adds NewTask (a complete, unfinalized task document) to the
	// set. Its ID must be unused; its priority must be unique.
	OpAddTask = "add_task"
	// OpRemoveTask removes task Task from the set.
	OpRemoveTask = "remove_task"
)

// PatchOp is one edit. Which fields are meaningful depends on Op; see the
// op constants. Unused fields must be zero.
type PatchOp struct {
	Op       string        `json:"op"`
	Task     rt.TaskID     `json:"task,omitempty"`
	Vertex   rt.VertexID   `json:"vertex,omitempty"`
	Resource rt.ResourceID `json:"resource,omitempty"`
	From     rt.VertexID   `json:"from,omitempty"`
	To       rt.VertexID   `json:"to,omitempty"`
	Value    rt.Time       `json:"value,omitempty"`
	Count    int           `json:"count,omitempty"`
	NewTask  *Task         `json:"new_task,omitempty"`
}

// PatchError reports a rejected patch: the offending op index, a stable
// machine-readable code, and a human-readable message. The server surfaces
// it as a structured 400.
type PatchError struct {
	Op   int    `json:"op"`   // index into Patch.Ops, -1 for patch-level errors
	Code string `json:"code"` // "unknown_op", "unknown_task", "unknown_vertex", "unknown_resource", "bad_value", "unknown_edge", "duplicate_task", "finalize"
	Msg  string `json:"msg"`
}

func (e *PatchError) Error() string {
	if e.Op < 0 {
		return fmt.Sprintf("patch: %s: %s", e.Code, e.Msg)
	}
	return fmt.Sprintf("patch op %d: %s: %s", e.Op, e.Code, e.Msg)
}

func patchErr(op int, code, format string, args ...any) *PatchError {
	return &PatchError{Op: op, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Change is a bitmask classifying how a patch touched one task. The delta
// analyzer derives its reuse modes from these bits; they are precise in the
// sense that an op writing a value equal to the old one sets no bit.
type Change uint16

const (
	// ChangeWCETUp / ChangeWCETDown: some vertex WCET grew / shrank.
	ChangeWCETUp Change = 1 << iota
	ChangeWCETDown
	// ChangeEdges: the precedence graph changed.
	ChangeEdges
	// ChangeCSUp / ChangeCSDown: some critical-section length grew / shrank.
	ChangeCSUp
	ChangeCSDown
	// ChangeReqUp / ChangeReqDown: some request count grew / shrank while
	// staying positive on both sides.
	ChangeReqUp
	ChangeReqDown
	// ChangeSharers: a request count crossed zero (0 -> n or n -> 0), so the
	// task entered or left some resource's sharer set — the taskset-level
	// local/global classification and priority ceilings may have changed.
	ChangeSharers
	// ChangePeriod / ChangeDeadline: timing parameters changed.
	ChangePeriod
	ChangeDeadline
	// ChangeAdded / ChangeRemoved: the task itself appeared / disappeared.
	ChangeAdded
	ChangeRemoved
)

// viewBits are the changes that invalidate a task's cached path views:
// anything touching vertices, edges, request vectors or CS lengths. Period,
// deadline and priority do not enter view construction.
const viewBits = ChangeWCETUp | ChangeWCETDown | ChangeEdges |
	ChangeCSUp | ChangeCSDown | ChangeReqUp | ChangeReqDown |
	ChangeSharers | ChangeAdded

// PatchDelta is the precise changed-task set produced by ApplyPatch.
type PatchDelta struct {
	// Changed maps each touched task to its change bits. Tasks absent from
	// the map are bit-for-bit identical (including priority) in the base and
	// patched tasksets.
	Changed map[rt.TaskID]Change
}

// All returns the union of every task's change bits.
func (d *PatchDelta) All() Change {
	var u Change
	for _, c := range d.Changed {
		u |= c
	}
	return u
}

// ViewsChanged reports whether the task's cached path views are invalid.
func (d *PatchDelta) ViewsChanged(id rt.TaskID) bool {
	return d.Changed[id]&viewBits != 0
}

// ChangedIDs returns the touched task IDs in ascending order.
func (d *PatchDelta) ChangedIDs() []rt.TaskID {
	ids := make([]rt.TaskID, 0, len(d.Changed))
	for id := range d.Changed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// taskEdit is an editable deep copy of one finalized task, mirroring the
// shrinker's spec representation: plain values only, so ops mutate freely
// and build() reconstructs a fresh Task through the normal constructor
// path (NewTask / AddVertex / AddEdge plus direct request-map and CSLen
// writes), which Finalize then re-validates.
type taskEdit struct {
	id       rt.TaskID
	period   rt.Time
	deadline rt.Time
	priority rt.Priority
	name     string
	wcet     []rt.Time
	reqs     []map[rt.ResourceID]int
	edges    [][2]rt.VertexID
	cs       map[rt.ResourceID]rt.Time
}

func editOf(t *Task) *taskEdit {
	e := &taskEdit{
		id:       t.ID,
		period:   t.Period,
		deadline: t.Deadline,
		priority: t.Priority,
		name:     t.Name,
		wcet:     make([]rt.Time, len(t.Vertices)),
		reqs:     make([]map[rt.ResourceID]int, len(t.Vertices)),
		cs:       make(map[rt.ResourceID]rt.Time),
	}
	for x, v := range t.Vertices {
		e.wcet[x] = v.WCET
		if len(v.Requests) > 0 {
			m := make(map[rt.ResourceID]int, len(v.Requests))
			for q, n := range v.Requests {
				if n > 0 {
					m[q] = n
				}
			}
			e.reqs[x] = m
		}
	}
	for _, ed := range t.Edges {
		e.edges = append(e.edges, [2]rt.VertexID{ed.From, ed.To})
	}
	for q, l := range t.CSLen {
		if l != 0 {
			e.cs[rt.ResourceID(q)] = l
		}
	}
	return e
}

func (e *taskEdit) build() *Task {
	t := NewTask(e.id, e.period, e.deadline)
	t.Priority = e.priority
	t.Name = e.name
	for x, w := range e.wcet {
		t.AddVertex(w)
		if m := e.reqs[x]; len(m) > 0 {
			v := t.Vertices[x]
			v.Requests = make(map[rt.ResourceID]int, len(m))
			for q, n := range m {
				v.Requests[q] = n
			}
		}
	}
	for _, ed := range e.edges {
		t.AddEdge(ed[0], ed[1])
	}
	qs := make([]rt.ResourceID, 0, len(e.cs))
	for q := range e.cs {
		qs = append(qs, q)
	}
	sort.Slice(qs, func(a, b int) bool { return qs[a] < qs[b] })
	for _, q := range qs {
		t.setCSLen(q, e.cs[q])
	}
	return t
}

// cloneWithWCETs returns a finalized copy of t with per-vertex WCET
// overrides applied. This is the fast path for the most common what-if
// query — "what if this vertex ran longer/shorter?" — where the DAG,
// request profile and critical sections are untouched: the clone shares
// every structural derived field (topology, predecessor/successor lists,
// request totals, per-vertex request maps) with the immutable base and
// recomputes only the WCET sum, the longest path and the canonical body.
// The only validation a WCET edit can invalidate is L_{i,q}-work fitting
// inside the vertex, which is re-checked here with Finalize's error text.
func (t *Task) cloneWithWCETs(over map[rt.VertexID]rt.Time) (*Task, error) {
	nt := &Task{
		ID:       t.ID,
		Name:     t.Name,
		Period:   t.Period,
		Deadline: t.Deadline,
		Priority: t.Priority,
		Edges:    t.Edges,
		CSLen:    t.CSLen,

		finalized: true,
		topo:      t.topo,
		succ:      t.succ,
		pred:      t.pred,
		nReq:      t.nReq,
		heads:     t.heads,
		tails:     t.tails,
	}
	nt.Vertices = make([]*Vertex, len(t.Vertices))
	copy(nt.Vertices, t.Vertices)
	// Vertex-indexed so the first reported violation is deterministic.
	for x := range nt.Vertices {
		w, ok := over[rt.VertexID(x)]
		if !ok {
			continue
		}
		v := t.Vertices[x]
		var cs rt.Time
		for q, c := range v.Requests {
			cs += rt.SatMul(int64(c), t.CSLen[q])
		}
		if cs > w {
			return nil, fmt.Errorf("model: task %d vertex %d: critical sections (%d) exceed WCET (%d)",
				t.ID, v.ID, cs, w)
		}
		nt.Vertices[x] = &Vertex{ID: v.ID, WCET: w, Requests: v.Requests}
	}
	nt.wcet = 0
	for _, v := range nt.Vertices {
		nt.wcet = rt.SatAdd(nt.wcet, v.WCET)
	}
	dist := make([]rt.Time, len(nt.Vertices))
	nt.longestPath = 0
	for _, x := range nt.topo {
		d := rt.SatAdd(dist[x], nt.Vertices[x].WCET)
		if d > nt.longestPath {
			nt.longestPath = d
		}
		for _, y := range nt.succ[x] {
			if d > dist[y] {
				dist[y] = d
			}
		}
	}
	nt.canon = nt.appendCanonBody(nil)
	return nt, nil
}

// usesResource reports whether the edited task requests q anywhere.
func (e *taskEdit) usesResource(q rt.ResourceID) bool {
	for _, m := range e.reqs {
		if m[q] > 0 {
			return true
		}
	}
	return false
}

// patchEnt is one slot of the patched task list: a shared pointer into the
// base set until an op first touches the task. WCET-only edits accumulate
// in wcetOver and resolve through the cloneWithWCETs fast path; any
// structural op materializes a full taskEdit (folding pending overrides
// in) and the task is rebuilt through the constructor path instead.
type patchEnt struct {
	base     *Task     // nil for tasks added by the patch
	edit     *taskEdit // nil while the task needs no full rebuild
	wcetOver map[rt.VertexID]rt.Time
}

// ApplyPatch applies p to the finalized base taskset and returns a fresh,
// finalized taskset plus the precise per-task change classification. The
// base is never mutated. Tasks no op touches are shared by pointer with the
// base — a finalized Task is immutable, so sharing is safe and makes patch
// application (and hashing the result) proportional to the edit, not the
// taskset. Touched tasks are rebuilt from plain-value copies through the
// normal constructor path. Explicit base priorities are preserved verbatim
// (a finalized taskset always carries them), so patching never reshuffles
// the priority order of untouched tasks.
//
// Invalid patches — unknown op names or task/vertex/resource/edge targets,
// negative values, duplicate added IDs, or edits whose result fails
// Finalize (cycles, CS exceeding WCET, deadline > period, duplicate
// priorities, ...) — return a *PatchError and leave no partial result.
func ApplyPatch(ts *Taskset, p Patch) (*Taskset, *PatchDelta, error) {
	ts.mustFinal()
	ents := make([]*patchEnt, 0, len(ts.Tasks))
	index := make(map[rt.TaskID]*patchEnt, len(ts.Tasks))
	for _, t := range ts.Tasks {
		e := &patchEnt{base: t}
		ents = append(ents, e)
		index[t.ID] = e
	}
	delta := &PatchDelta{Changed: make(map[rt.TaskID]Change)}
	mark := func(id rt.TaskID, c Change) {
		delta.Changed[id] |= c
	}

	taskOf := func(i int, op *PatchOp) (*taskEdit, *PatchError) {
		ent, ok := index[op.Task]
		if !ok {
			return nil, patchErr(i, "unknown_task", "taskset has no task %d", op.Task)
		}
		if ent.edit == nil {
			ent.edit = editOf(ent.base)
			for x, w := range ent.wcetOver {
				ent.edit.wcet[x] = w
			}
			ent.wcetOver = nil
		}
		return ent.edit, nil
	}
	vertexOf := func(i int, op *PatchOp, e *taskEdit, x rt.VertexID) *PatchError {
		if x < 0 || int(x) >= len(e.wcet) {
			return patchErr(i, "unknown_vertex", "task %d has no vertex %d", e.id, x)
		}
		return nil
	}
	resourceOf := func(i int, op *PatchOp) *PatchError {
		if op.Resource < 0 || int(op.Resource) >= ts.NumResources {
			return patchErr(i, "unknown_resource", "taskset has no resource %d", op.Resource)
		}
		return nil
	}

	for i := range p.Ops {
		op := &p.Ops[i]
		switch op.Op {
		case OpSetWCET:
			ent, ok := index[op.Task]
			if !ok {
				return nil, nil, patchErr(i, "unknown_task", "taskset has no task %d", op.Task)
			}
			if op.Value <= 0 {
				return nil, nil, patchErr(i, "bad_value", "vertex WCET must be positive, got %d", op.Value)
			}
			var old rt.Time
			switch {
			case ent.edit != nil:
				if perr := vertexOf(i, op, ent.edit, op.Vertex); perr != nil {
					return nil, nil, perr
				}
				old = ent.edit.wcet[op.Vertex]
				ent.edit.wcet[op.Vertex] = op.Value
			default:
				if op.Vertex < 0 || int(op.Vertex) >= len(ent.base.Vertices) {
					return nil, nil, patchErr(i, "unknown_vertex", "task %d has no vertex %d", op.Task, op.Vertex)
				}
				var seen bool
				if old, seen = ent.wcetOver[op.Vertex]; !seen {
					old = ent.base.Vertices[op.Vertex].WCET
				}
				if ent.wcetOver == nil {
					ent.wcetOver = make(map[rt.VertexID]rt.Time, 1)
				}
				ent.wcetOver[op.Vertex] = op.Value
			}
			if op.Value > old {
				mark(op.Task, ChangeWCETUp)
			} else if op.Value < old {
				mark(op.Task, ChangeWCETDown)
			}
		case OpSetCSLen:
			e, perr := taskOf(i, op)
			if perr != nil {
				return nil, nil, perr
			}
			if perr := resourceOf(i, op); perr != nil {
				return nil, nil, perr
			}
			if op.Value < 0 {
				return nil, nil, patchErr(i, "bad_value", "CS length must be non-negative, got %d", op.Value)
			}
			old := e.cs[op.Resource]
			if op.Value == 0 {
				delete(e.cs, op.Resource)
			} else {
				e.cs[op.Resource] = op.Value
			}
			if op.Value > old {
				mark(e.id, ChangeCSUp)
			} else if op.Value < old {
				mark(e.id, ChangeCSDown)
			}
		case OpSetRequest:
			e, perr := taskOf(i, op)
			if perr != nil {
				return nil, nil, perr
			}
			if perr := vertexOf(i, op, e, op.Vertex); perr != nil {
				return nil, nil, perr
			}
			if perr := resourceOf(i, op); perr != nil {
				return nil, nil, perr
			}
			if op.Count < 0 {
				return nil, nil, patchErr(i, "bad_value", "request count must be non-negative, got %d", op.Count)
			}
			usedBefore := e.usesResource(op.Resource)
			old := 0
			if m := e.reqs[op.Vertex]; m != nil {
				old = m[op.Resource]
			}
			if op.Count == 0 {
				delete(e.reqs[op.Vertex], op.Resource)
			} else {
				if e.reqs[op.Vertex] == nil {
					e.reqs[op.Vertex] = make(map[rt.ResourceID]int)
				}
				e.reqs[op.Vertex][op.Resource] = op.Count
			}
			if op.Count != old {
				if e.usesResource(op.Resource) != usedBefore {
					mark(e.id, ChangeSharers)
				} else if op.Count > old {
					mark(e.id, ChangeReqUp)
				} else {
					mark(e.id, ChangeReqDown)
				}
			}
		case OpAddEdge:
			e, perr := taskOf(i, op)
			if perr != nil {
				return nil, nil, perr
			}
			if perr := vertexOf(i, op, e, op.From); perr != nil {
				return nil, nil, perr
			}
			if perr := vertexOf(i, op, e, op.To); perr != nil {
				return nil, nil, perr
			}
			if op.From == op.To {
				return nil, nil, patchErr(i, "bad_value", "edge (%d,%d) is a self-loop", op.From, op.To)
			}
			e.edges = append(e.edges, [2]rt.VertexID{op.From, op.To})
			mark(e.id, ChangeEdges)
		case OpRemoveEdge:
			e, perr := taskOf(i, op)
			if perr != nil {
				return nil, nil, perr
			}
			found := false
			for j, ed := range e.edges {
				if ed[0] == op.From && ed[1] == op.To {
					e.edges = append(e.edges[:j], e.edges[j+1:]...)
					found = true
					break
				}
			}
			if !found {
				return nil, nil, patchErr(i, "unknown_edge", "task %d has no edge (%d,%d)", e.id, op.From, op.To)
			}
			mark(e.id, ChangeEdges)
		case OpSetPeriod:
			e, perr := taskOf(i, op)
			if perr != nil {
				return nil, nil, perr
			}
			if op.Value <= 0 {
				return nil, nil, patchErr(i, "bad_value", "period must be positive, got %d", op.Value)
			}
			if op.Value != e.period {
				e.period = op.Value
				mark(e.id, ChangePeriod)
			}
		case OpSetDeadline:
			e, perr := taskOf(i, op)
			if perr != nil {
				return nil, nil, perr
			}
			if op.Value <= 0 {
				return nil, nil, patchErr(i, "bad_value", "deadline must be positive, got %d", op.Value)
			}
			if op.Value != e.deadline {
				e.deadline = op.Value
				mark(e.id, ChangeDeadline)
			}
		case OpAddTask:
			if op.NewTask == nil {
				return nil, nil, patchErr(i, "bad_value", "add_task needs a new_task document")
			}
			if _, dup := index[op.NewTask.ID]; dup {
				return nil, nil, patchErr(i, "duplicate_task", "taskset already has task %d", op.NewTask.ID)
			}
			// Copy through an unfinalized shallow Task so the edit owns its
			// structure; build()+Finalize re-validate everything about it.
			nt := op.NewTask
			e := &taskEdit{
				id:       nt.ID,
				period:   nt.Period,
				deadline: nt.Deadline,
				priority: nt.Priority,
				name:     nt.Name,
				wcet:     make([]rt.Time, len(nt.Vertices)),
				reqs:     make([]map[rt.ResourceID]int, len(nt.Vertices)),
				cs:       make(map[rt.ResourceID]rt.Time),
			}
			for x, v := range nt.Vertices {
				if v == nil {
					return nil, nil, patchErr(i, "bad_value", "new task %d has a null vertex", nt.ID)
				}
				e.wcet[x] = v.WCET
				if len(v.Requests) > 0 {
					m := make(map[rt.ResourceID]int, len(v.Requests))
					for q, n := range v.Requests {
						m[q] = n
					}
					e.reqs[x] = m
				}
			}
			for _, ed := range nt.Edges {
				e.edges = append(e.edges, [2]rt.VertexID{ed.From, ed.To})
			}
			for q, l := range nt.CSLen {
				if l < 0 {
					return nil, nil, patchErr(i, "bad_value", "new task %d has negative CS length on resource %d", nt.ID, q)
				}
				if l != 0 {
					e.cs[rt.ResourceID(q)] = l
				}
			}
			ent := &patchEnt{edit: e}
			ents = append(ents, ent)
			index[e.id] = ent
			mark(e.id, ChangeAdded)
		case OpRemoveTask:
			ent, ok := index[op.Task]
			if !ok {
				return nil, nil, patchErr(i, "unknown_task", "taskset has no task %d", op.Task)
			}
			for j, cand := range ents {
				if cand == ent {
					ents = append(ents[:j], ents[j+1:]...)
					break
				}
			}
			delete(index, op.Task)
			mark(op.Task, ChangeRemoved)
		default:
			return nil, nil, patchErr(i, "unknown_op", "unknown op %q", op.Op)
		}
	}

	out := NewTaskset(ts.NumProcs, ts.NumResources)
	for _, ent := range ents {
		switch {
		case ent.edit != nil:
			out.Add(ent.edit.build())
		case ent.wcetOver != nil:
			nt, err := ent.base.cloneWithWCETs(ent.wcetOver)
			if err != nil {
				return nil, nil, &PatchError{Op: -1, Code: "finalize", Msg: err.Error()}
			}
			out.Add(nt)
		default:
			out.Add(ent.base)
		}
	}
	if err := out.Finalize(); err != nil {
		return nil, nil, &PatchError{Op: -1, Code: "finalize", Msg: err.Error()}
	}
	return out, delta, nil
}
