package model

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"

	"dpcpp/internal/rt"
)

// Hash is the content address of a finalized taskset: a SHA-256 digest of
// its canonical serialization. Two tasksets share a Hash exactly when every
// analysis in the repository treats them identically, so the hash is a safe
// cache key for schedulability results.
type Hash [sha256.Size]byte

// String returns the lowercase-hex form used in cache keys and API
// responses.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Hash returns the taskset's content address. The taskset must be
// finalized: canonicalization depends on assigned priorities and the
// derived request profile.
//
// The invariant the fuzzer pins (FuzzTasksetJSON): for any valid taskset,
// DecodeTaskset(EncodeTaskset(ts)).Hash() == ts.Hash().
func (ts *Taskset) Hash() Hash {
	return sha256.Sum256(ts.AppendCanonical(nil))
}

// AppendCanonical appends the canonical serialization of the taskset to b
// and returns the extended slice. The form is deterministic and normalized:
//
//   - tasks are ordered by ID (their slice order is irrelevant),
//   - vertices appear in index order (Finalize guarantees ID == index),
//   - per-vertex requests are sorted by resource ID with zero counts
//     dropped,
//   - edges are sorted by (from, to) and de-duplicated (a repeated edge is
//     the same precedence constraint),
//   - critical-section lengths appear only for resources the task actually
//     requests (an L_{i,q} with N_{i,q} = 0 never reaches any analysis or
//     the simulator), and
//   - the Name field is omitted (it is documentation, not semantics).
//
// Everything an analysis can observe — processor and resource counts,
// periods, deadlines, priorities, DAG structure, WCETs, request profiles
// and CS lengths — is included, so distinct hashes imply potentially
// distinct verdicts and equal hashes imply equal verdicts.
func (ts *Taskset) AppendCanonical(b []byte) []byte {
	ts.mustFinal()
	b = append(b, "ts/v1|m="...)
	b = strconv.AppendInt(b, int64(ts.NumProcs), 10)
	b = append(b, "|nr="...)
	b = strconv.AppendInt(b, int64(ts.NumResources), 10)
	b = append(b, '\n')

	order := append([]*Task(nil), ts.Tasks...)
	sort.Slice(order, func(i, j int) bool { return order[i].ID < order[j].ID })
	for _, t := range order {
		b = t.appendCanonical(b)
	}
	return b
}

func (t *Task) appendCanonical(b []byte) []byte {
	b = append(b, "task|"...)
	b = strconv.AppendInt(b, int64(t.ID), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, t.Period, 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, t.Deadline, 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(t.Priority), 10)
	b = append(b, '\n')
	if t.canon != nil {
		// Finalize froze the structural body; reusing it makes hashing a
		// patched taskset proportional to the number of *rebuilt* tasks,
		// since ApplyPatch shares untouched Task pointers with the base.
		return append(b, t.canon...)
	}
	return t.appendCanonBody(b)
}

// appendCanonBody appends the structural part of the canonical form: the
// vertex, edge and critical-section lines. It is priority-independent, so
// Task.Finalize can cache it before the owning taskset assigns priorities.
func (t *Task) appendCanonBody(b []byte) []byte {
	for _, v := range t.Vertices {
		b = append(b, 'v')
		b = append(b, '|')
		b = strconv.AppendInt(b, v.WCET, 10)
		qs := make([]int, 0, len(v.Requests))
		for q, c := range v.Requests {
			if c > 0 {
				qs = append(qs, int(q))
			}
		}
		sort.Ints(qs)
		for _, q := range qs {
			b = append(b, '|')
			b = strconv.AppendInt(b, int64(q), 10)
			b = append(b, ':')
			b = strconv.AppendInt(b, int64(v.Requests[rt.ResourceID(q)]), 10)
		}
		b = append(b, '\n')
	}

	edges := append([]Edge(nil), t.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	var prev Edge
	for i, e := range edges {
		if i > 0 && e == prev {
			continue
		}
		prev = e
		b = append(b, 'e')
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(e.From), 10)
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(e.To), 10)
		b = append(b, '\n')
	}

	for q, n := range t.nReq {
		if n > 0 {
			b = append(b, "cs|"...)
			b = strconv.AppendInt(b, int64(q), 10)
			b = append(b, ':')
			b = strconv.AppendInt(b, t.CSLen[q], 10)
			b = append(b, '\n')
		}
	}
	return b
}
