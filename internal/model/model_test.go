package model

import (
	"strings"
	"testing"

	"dpcpp/internal/rt"
)

// paperTaskGi builds G_i from Fig. 1(a): eight vertices, longest path
// (v1, v5, v7, v8) of length 10. Vertex indices here are 0-based.
func paperTaskGi(t *testing.T) *Task {
	t.Helper()
	task := NewTask(0, 20*rt.Microsecond, 20*rt.Microsecond)
	wcets := []rt.Time{2, 3, 2, 2, 4, 2, 2, 2}
	for _, c := range wcets {
		task.AddVertex(c * rt.Microsecond)
	}
	// v1 fans out to v2..v5; v2,v3 -> v6; v4,v5 -> v7; v6,v7 -> v8.
	task.AddEdge(0, 1)
	task.AddEdge(0, 2)
	task.AddEdge(0, 3)
	task.AddEdge(0, 4)
	task.AddEdge(1, 5)
	task.AddEdge(2, 5)
	task.AddEdge(3, 6)
	task.AddEdge(4, 6)
	task.AddEdge(5, 7)
	task.AddEdge(6, 7)
	// v2 requests global l1 once (1us CS); v3 and v4 request local l2 once.
	task.AddRequest(1, 0, 1, 1*rt.Microsecond)
	task.AddRequest(2, 1, 1, 1*rt.Microsecond)
	task.AddRequest(3, 1, 1, 1*rt.Microsecond)
	if err := task.Finalize(2); err != nil {
		t.Fatalf("Finalize(Gi): %v", err)
	}
	return task
}

func TestTaskDerivedQuantities(t *testing.T) {
	task := paperTaskGi(t)
	if got, want := task.WCET(), 19*rt.Microsecond; got != want {
		t.Errorf("WCET = %v, want %v", got, want)
	}
	if got, want := task.LongestPath(), 10*rt.Microsecond; got != want {
		t.Errorf("LongestPath = %v, want %v", got, want)
	}
	if task.Heavy() {
		t.Errorf("task with C=19us, D=20us should not be heavy; Heavy()=true")
	}
	if got := task.NumRequests(0); got != 1 {
		t.Errorf("NumRequests(l1) = %d, want 1", got)
	}
	if got := task.NumRequests(1); got != 2 {
		t.Errorf("NumRequests(l2) = %d, want 2", got)
	}
	if got, want := task.NonCritWCET(), 16*rt.Microsecond; got != want {
		t.Errorf("NonCritWCET = %v, want %v", got, want)
	}
	if got, want := task.VertexNonCrit(1), 2*rt.Microsecond; got != want {
		t.Errorf("VertexNonCrit(v2) = %v, want %v", got, want)
	}
	if got, want := task.VertexNonCrit(0), 2*rt.Microsecond; got != want {
		t.Errorf("VertexNonCrit(v1) = %v, want %v", got, want)
	}
}

func TestHeavyClassification(t *testing.T) {
	task := NewTask(0, 10*rt.Microsecond, 10*rt.Microsecond)
	a := task.AddVertex(8 * rt.Microsecond)
	b := task.AddVertex(8 * rt.Microsecond)
	_ = a
	_ = b
	if err := task.Finalize(0); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if !task.Heavy() {
		t.Errorf("C=16, D=10: Heavy() = false, want true")
	}
	if got := task.Utilization(); got != 1.6 {
		t.Errorf("Utilization = %v, want 1.6", got)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	task := paperTaskGi(t)
	pos := make(map[rt.VertexID]int)
	for i, x := range task.Topo() {
		pos[x] = i
	}
	for _, e := range task.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("topological order violates edge (%d,%d)", e.From, e.To)
		}
	}
}

func TestHeadsAndTails(t *testing.T) {
	task := paperTaskGi(t)
	if got := task.Heads(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Heads = %v, want [0]", got)
	}
	if got := task.Tails(); len(got) != 1 || got[0] != 7 {
		t.Errorf("Tails = %v, want [7]", got)
	}
}

func TestFinalizeRejectsCycle(t *testing.T) {
	task := NewTask(0, rt.Millisecond, rt.Millisecond)
	a := task.AddVertex(rt.Microsecond)
	b := task.AddVertex(rt.Microsecond)
	task.AddEdge(a, b)
	task.AddEdge(b, a)
	if err := task.Finalize(0); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Finalize on cyclic graph: err = %v, want cycle error", err)
	}
}

func TestFinalizeRejectsBadTiming(t *testing.T) {
	cases := []struct {
		name     string
		period   rt.Time
		deadline rt.Time
	}{
		{"zero period", 0, 0},
		{"deadline exceeds period", rt.Millisecond, 2 * rt.Millisecond},
		{"zero deadline", rt.Millisecond, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			task := NewTask(0, tc.period, tc.deadline)
			task.AddVertex(rt.Microsecond)
			if err := task.Finalize(0); err == nil {
				t.Errorf("Finalize accepted period=%d deadline=%d", tc.period, tc.deadline)
			}
		})
	}
}

func TestFinalizeRejectsOversizedCriticalSections(t *testing.T) {
	task := NewTask(0, rt.Millisecond, rt.Millisecond)
	x := task.AddVertex(10 * rt.Microsecond)
	task.AddRequest(x, 0, 3, 4*rt.Microsecond) // 12us of CS in a 10us vertex
	if err := task.Finalize(1); err == nil {
		t.Error("Finalize accepted vertex whose critical sections exceed its WCET")
	}
}

func TestFinalizeRejectsUnknownResource(t *testing.T) {
	task := NewTask(0, rt.Millisecond, rt.Millisecond)
	x := task.AddVertex(10 * rt.Microsecond)
	task.AddRequest(x, 5, 1, rt.Microsecond)
	if err := task.Finalize(2); err == nil {
		t.Error("Finalize accepted request to resource 5 in a 2-resource set")
	}
}

func TestFinalizeRejectsDanglingEdge(t *testing.T) {
	task := NewTask(0, rt.Millisecond, rt.Millisecond)
	task.AddVertex(rt.Microsecond)
	task.AddEdge(0, 3)
	if err := task.Finalize(0); err == nil {
		t.Error("Finalize accepted edge to missing vertex")
	}
}

func TestFinalizeRejectsSelfLoop(t *testing.T) {
	task := NewTask(0, rt.Millisecond, rt.Millisecond)
	task.AddVertex(rt.Microsecond)
	task.AddEdge(0, 0)
	if err := task.Finalize(0); err == nil {
		t.Error("Finalize accepted self-loop")
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	task := paperTaskGi(t)
	if err := task.Finalize(2); err != nil {
		t.Fatalf("second Finalize: %v", err)
	}
}

func TestResourcesList(t *testing.T) {
	task := paperTaskGi(t)
	rs := task.Resources()
	if len(rs) != 2 || rs[0] != 0 || rs[1] != 1 {
		t.Errorf("Resources = %v, want [0 1]", rs)
	}
}

func TestCSWork(t *testing.T) {
	task := paperTaskGi(t)
	if got, want := task.CSWork(1), 2*rt.Microsecond; got != want {
		t.Errorf("CSWork(l2) = %v, want %v", got, want)
	}
	if got := task.CSWork(7); got != 0 {
		t.Errorf("CSWork(unused) = %v, want 0", got)
	}
}

func TestLinearChainLongestPath(t *testing.T) {
	task := NewTask(0, rt.Millisecond, rt.Millisecond)
	var prev rt.VertexID
	for i := 0; i < 5; i++ {
		x := task.AddVertex(rt.Time(i+1) * rt.Microsecond)
		if i > 0 {
			task.AddEdge(prev, x)
		}
		prev = x
	}
	if err := task.Finalize(0); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if got, want := task.LongestPath(), 15*rt.Microsecond; got != want {
		t.Errorf("chain longest path = %v, want %v", got, want)
	}
	if got := task.CountPaths(); got != 1 {
		t.Errorf("chain CountPaths = %d, want 1", got)
	}
}

func TestParallelVerticesLongestPath(t *testing.T) {
	// No edges at all: every vertex is both head and tail, so each vertex is
	// itself a complete path.
	task := NewTask(0, rt.Millisecond, rt.Millisecond)
	task.AddVertex(3 * rt.Microsecond)
	task.AddVertex(7 * rt.Microsecond)
	task.AddVertex(5 * rt.Microsecond)
	if err := task.Finalize(0); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if got, want := task.LongestPath(), 7*rt.Microsecond; got != want {
		t.Errorf("longest path = %v, want %v", got, want)
	}
	if got := task.CountPaths(); got != 3 {
		t.Errorf("CountPaths = %d, want 3", got)
	}
}
