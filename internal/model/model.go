// Package model implements the system model of the DPCP-p paper (Sec. II):
// sporadic parallel tasks structured as directed acyclic graphs, shared
// resources protected by binary semaphores, and tasksets combining both.
//
// A Task is built incrementally (AddVertex / AddEdge / SetCSLen) and then
// sealed with Finalize, which validates the structure and precomputes the
// derived quantities the analyses need: total WCET, longest path length,
// per-task request counts, and topological order. A Taskset is sealed with
// its own Finalize, which classifies resources as local or global and
// assigns rate-monotonic priorities unless priorities were set explicitly.
//
//schedlint:deterministic
package model

import (
	"fmt"

	"dpcpp/internal/rt"
)

// Vertex is one node v_{i,x} of a task's DAG. Its WCET C_{i,x} includes the
// critical sections it executes; Requests[q] is N_{i,x,q}, the maximum
// number of requests the vertex issues to resource q.
type Vertex struct {
	ID       rt.VertexID           `json:"id"`
	WCET     rt.Time               `json:"wcet"`
	Requests map[rt.ResourceID]int `json:"requests,omitempty"`
}

// TotalRequests returns the number of requests the vertex issues across all
// resources.
func (v *Vertex) TotalRequests() int {
	n := 0
	for _, c := range v.Requests {
		n += c
	}
	return n
}

// Edge is a precedence constraint (From must finish before To may start).
type Edge struct {
	From rt.VertexID `json:"from"`
	To   rt.VertexID `json:"to"`
}

// Task is a sporadic DAG task tau_i.
type Task struct {
	ID       rt.TaskID   `json:"id"`
	Name     string      `json:"name,omitempty"`
	Period   rt.Time     `json:"period"`   // T_i, minimum inter-arrival time
	Deadline rt.Time     `json:"deadline"` // D_i <= T_i (constrained)
	Priority rt.Priority `json:"priority"` // larger = higher; unique in a set

	Vertices []*Vertex `json:"vertices"`
	Edges    []Edge    `json:"edges"`

	// CSLen[q] is L_{i,q}, the maximum critical-section length of tau_i on
	// resource q (0 when tau_i does not use q). Indexed by ResourceID and
	// sized by the taskset's resource count at Finalize time.
	CSLen []rt.Time `json:"cslen"`

	// Derived by Finalize.
	finalized   bool
	wcet        rt.Time       // C_i = sum of vertex WCETs
	longestPath rt.Time       // L*_i
	topo        []rt.VertexID // topological order
	succ        [][]rt.VertexID
	pred        [][]rt.VertexID
	nReq        []int64 // N_{i,q} per resource
	heads       []rt.VertexID
	tails       []rt.VertexID
	canon       []byte // canonical body (vertices/edges/CS), see hash.go
}

// NewTask returns an empty task with the given identity and timing.
func NewTask(id rt.TaskID, period, deadline rt.Time) *Task {
	return &Task{ID: id, Period: period, Deadline: deadline}
}

// AddVertex appends a vertex with the given WCET and returns its ID.
// Must be called before Finalize.
func (t *Task) AddVertex(wcet rt.Time) rt.VertexID {
	id := rt.VertexID(len(t.Vertices))
	t.Vertices = append(t.Vertices, &Vertex{ID: id, WCET: wcet})
	return id
}

// AddEdge appends a precedence edge. Must be called before Finalize.
func (t *Task) AddEdge(from, to rt.VertexID) {
	t.Edges = append(t.Edges, Edge{From: from, To: to})
}

// AddRequest records that vertex x issues n additional requests to resource
// q, each of length at most csLen. All requests of a task to one resource
// share the same maximum critical-section length L_{i,q}, as in the paper;
// csLen must therefore agree across calls for the same resource.
func (t *Task) AddRequest(x rt.VertexID, q rt.ResourceID, n int, csLen rt.Time) {
	v := t.Vertices[x]
	if v.Requests == nil {
		v.Requests = make(map[rt.ResourceID]int)
	}
	v.Requests[q] += n
	t.setCSLen(q, csLen)
}

func (t *Task) setCSLen(q rt.ResourceID, csLen rt.Time) {
	for int(q) >= len(t.CSLen) {
		t.CSLen = append(t.CSLen, 0)
	}
	if t.CSLen[q] != 0 && t.CSLen[q] != csLen {
		panic(fmt.Sprintf("model: task %d resource %d: conflicting CS lengths %d and %d",
			t.ID, q, t.CSLen[q], csLen))
	}
	t.CSLen[q] = csLen
}

// Finalize validates the task and computes its derived quantities.
// numResources is the number of resources in the enclosing taskset; it
// sizes the per-resource vectors.
func (t *Task) Finalize(numResources int) error {
	if t.finalized {
		return nil
	}
	if len(t.Vertices) == 0 {
		return fmt.Errorf("model: task %d has no vertices", t.ID)
	}
	if t.Period <= 0 {
		return fmt.Errorf("model: task %d has non-positive period %d", t.ID, t.Period)
	}
	if t.Deadline <= 0 || t.Deadline > t.Period {
		return fmt.Errorf("model: task %d violates constrained deadline: D=%d T=%d",
			t.ID, t.Deadline, t.Period)
	}
	for len(t.CSLen) < numResources {
		t.CSLen = append(t.CSLen, 0)
	}
	if len(t.CSLen) > numResources {
		return fmt.Errorf("model: task %d references resource beyond taskset's %d resources",
			t.ID, numResources)
	}
	for q, cs := range t.CSLen {
		if cs < 0 {
			return fmt.Errorf("model: task %d has negative CS length %d on resource %d", t.ID, cs, q)
		}
	}

	n := len(t.Vertices)
	t.succ = make([][]rt.VertexID, n)
	t.pred = make([][]rt.VertexID, n)
	for _, e := range t.Edges {
		if int(e.From) >= n || int(e.To) >= n || e.From < 0 || e.To < 0 {
			return fmt.Errorf("model: task %d edge (%d,%d) references missing vertex",
				t.ID, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("model: task %d has self-loop at vertex %d", t.ID, e.From)
		}
		t.succ[e.From] = append(t.succ[e.From], e.To)
		t.pred[e.To] = append(t.pred[e.To], e.From)
	}

	topo, err := t.topoSort()
	if err != nil {
		return err
	}
	t.topo = topo

	t.wcet = 0
	t.nReq = make([]int64, numResources)
	for x, v := range t.Vertices {
		// Vertex IDs are assigned by AddVertex and must equal the slice
		// index: the simulator and segment builder index by them. A JSON
		// document is free to claim otherwise, so Finalize enforces it.
		if v.ID != rt.VertexID(x) {
			return fmt.Errorf("model: task %d vertex at index %d carries ID %d", t.ID, x, v.ID)
		}
		if v.WCET <= 0 {
			return fmt.Errorf("model: task %d vertex %d has non-positive WCET", t.ID, v.ID)
		}
		t.wcet = rt.SatAdd(t.wcet, v.WCET)
		var cs rt.Time
		for q, c := range v.Requests {
			if c < 0 {
				return fmt.Errorf("model: task %d vertex %d has negative request count", t.ID, v.ID)
			}
			if int(q) >= numResources {
				return fmt.Errorf("model: task %d vertex %d requests unknown resource %d", t.ID, v.ID, q)
			}
			t.nReq[q] += int64(c)
			cs += rt.SatMul(int64(c), t.CSLen[q])
		}
		if cs > v.WCET {
			return fmt.Errorf("model: task %d vertex %d: critical sections (%d) exceed WCET (%d)",
				t.ID, v.ID, cs, v.WCET)
		}
	}

	// Longest path over the DAG in topological order (saturating, so
	// absurd decoded WCETs cannot wrap into negative lengths).
	dist := make([]rt.Time, n)
	t.longestPath = 0
	for _, x := range t.topo {
		d := rt.SatAdd(dist[x], t.Vertices[x].WCET)
		if d > t.longestPath {
			t.longestPath = d
		}
		for _, y := range t.succ[x] {
			if d > dist[y] {
				dist[y] = d
			}
		}
	}

	t.heads = t.heads[:0]
	t.tails = t.tails[:0]
	for x := range t.Vertices {
		if len(t.pred[x]) == 0 {
			t.heads = append(t.heads, rt.VertexID(x))
		}
		if len(t.succ[x]) == 0 {
			t.tails = append(t.tails, rt.VertexID(x))
		}
	}

	// Freeze the structural part of the canonical serialization now: the
	// vertex/edge/CS body never changes after Finalize, so Taskset.Hash can
	// reuse it instead of re-sorting request maps and edges on every call.
	// (Priority may still be assigned by the owning taskset's Finalize, so
	// the header line is not cached.)
	t.canon = t.appendCanonBody(nil)

	t.finalized = true
	return nil
}

func (t *Task) topoSort() ([]rt.VertexID, error) {
	n := len(t.Vertices)
	indeg := make([]int, n)
	for x := range t.Vertices {
		for range t.pred[x] {
			indeg[x]++
		}
	}
	queue := make([]rt.VertexID, 0, n)
	for x := 0; x < n; x++ {
		if indeg[x] == 0 {
			queue = append(queue, rt.VertexID(x))
		}
	}
	order := make([]rt.VertexID, 0, n)
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		order = append(order, x)
		for _, y := range t.succ[x] {
			indeg[y]--
			if indeg[y] == 0 {
				queue = append(queue, y)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("model: task %d DAG contains a cycle", t.ID)
	}
	return order, nil
}

func (t *Task) mustFinal() {
	if !t.finalized {
		panic(fmt.Sprintf("model: task %d used before Finalize", t.ID))
	}
}

// WCET returns C_i, the total worst-case execution time of the task.
func (t *Task) WCET() rt.Time { t.mustFinal(); return t.wcet }

// LongestPath returns L*_i, the length of the longest complete path.
func (t *Task) LongestPath() rt.Time { t.mustFinal(); return t.longestPath }

// Utilization returns U_i = C_i / T_i.
func (t *Task) Utilization() float64 {
	t.mustFinal()
	return float64(t.wcet) / float64(t.Period)
}

// Heavy reports whether the task is heavy under federated scheduling,
// i.e. C_i / D_i > 1.
func (t *Task) Heavy() bool { t.mustFinal(); return t.wcet > t.Deadline }

// NumRequests returns N_{i,q}, the task's maximum number of requests to q.
func (t *Task) NumRequests(q rt.ResourceID) int64 {
	t.mustFinal()
	if int(q) >= len(t.nReq) {
		return 0
	}
	return t.nReq[q]
}

// UsesResource reports whether the task issues any request to q.
func (t *Task) UsesResource(q rt.ResourceID) bool { return t.NumRequests(q) > 0 }

// CS returns L_{i,q}, the task's maximum critical-section length on q
// (0 when unused).
func (t *Task) CS(q rt.ResourceID) rt.Time {
	if int(q) >= len(t.CSLen) {
		return 0
	}
	return t.CSLen[q]
}

// CSWork returns N_{i,q} * L_{i,q}, the task's total per-job critical-section
// workload on q.
func (t *Task) CSWork(q rt.ResourceID) rt.Time {
	return rt.SatMul(t.NumRequests(q), t.CS(q))
}

// NonCritWCET returns C'_i = C_i - sum_q N_{i,q} * L_{i,q}, the WCET of the
// task's non-critical sections.
func (t *Task) NonCritWCET() rt.Time {
	t.mustFinal()
	c := t.wcet
	for q := range t.nReq {
		c -= t.CSWork(rt.ResourceID(q))
	}
	return c
}

// VertexNonCrit returns C'_{i,x}, the non-critical WCET of vertex x.
func (t *Task) VertexNonCrit(x rt.VertexID) rt.Time {
	t.mustFinal()
	v := t.Vertices[x]
	c := v.WCET
	for q, n := range v.Requests {
		c -= rt.SatMul(int64(n), t.CS(q))
	}
	return c
}

// Topo returns the vertices in a topological order.
func (t *Task) Topo() []rt.VertexID { t.mustFinal(); return t.topo }

// Succ returns the successors of vertex x.
func (t *Task) Succ(x rt.VertexID) []rt.VertexID { t.mustFinal(); return t.succ[x] }

// Pred returns the predecessors of vertex x.
func (t *Task) Pred(x rt.VertexID) []rt.VertexID { t.mustFinal(); return t.pred[x] }

// Heads returns the source vertices of the DAG.
func (t *Task) Heads() []rt.VertexID { t.mustFinal(); return t.heads }

// Tails returns the sink vertices of the DAG.
func (t *Task) Tails() []rt.VertexID { t.mustFinal(); return t.tails }

// Resources returns the IDs of the resources the task uses, ascending.
func (t *Task) Resources() []rt.ResourceID {
	t.mustFinal()
	var out []rt.ResourceID
	for q, n := range t.nReq {
		if n > 0 {
			out = append(out, rt.ResourceID(q))
		}
	}
	return out
}
