package model

import (
	"dpcpp/internal/rt"
)

// PathView is the signature-collapsed summary of every complete path that
// shares one per-resource request vector ("signature"). The DPCP-p per-path
// response-time bound of Theorem 1 depends on a path only through its
// request vector, its length L(lambda) and its on-path non-critical WCET,
// and it is monotone non-decreasing in the latter two for a fixed request
// vector (L and C' are coupled: L = C'(lambda) + sum_q N^lambda_q * L_q).
// All paths with one signature therefore collapse, exactly, into the single
// view carrying the group maxima.
type PathView struct {
	NReq    []int64 // NReq[q] = N^lambda_{i,q}, shared by all collapsed paths
	Length  rt.Time // max over collapsed paths of L(lambda)
	NonCrit rt.Time // on-path non-critical WCET of the longest collapsed path
	Paths   int64   // number of concrete paths collapsed, saturating
}

// Requests returns N^lambda_{i,q} for resource q.
func (v *PathView) Requests(q rt.ResourceID) int64 {
	if int(q) >= len(v.NReq) {
		return 0
	}
	return v.NReq[q]
}

// viewState is one partial-path equivalence class during the collapse DP:
// all head-to-x prefixes sharing one request-count signature.
type viewState struct {
	sig     []int64 // counts per *active* resource (see EnumerateViews)
	nonCrit rt.Time // max prefix non-critical WCET within the class
	paths   int64   // number of prefixes in the class, saturating
}

// sigDelta is one vertex's request increment on an active-resource slot,
// hoisted out of the DP so the inner loop never touches the Requests maps.
type sigDelta struct {
	slot int
	n    int64
}

// ViewScratch holds the reusable working memory of EnumerateViewsScratch:
// the per-vertex DP state, the signature arena, the merger (including its
// map index and key buffer) and the backing arrays of the returned views.
//
// Ownership: a ViewScratch may be used by one goroutine at a time, and the
// views returned by EnumerateViewsScratch (including their NReq vectors)
// borrow the scratch — they are valid only until the next
// EnumerateViewsScratch call on the same scratch. Callers that retain views
// must copy them out first (internal/analysis does: it converts views into
// its own representation immediately).
type ViewScratch struct {
	active  []rt.ResourceID
	slot    []int
	deltas  [][]sigDelta
	nonCrit []rt.Time
	states  [][]viewState
	final   []viewState
	zeroSig []int64
	replay  []rt.Time // ViewPlan.Replay value slots

	// sigs is the arena backing every signature copied during one call;
	// sigOff is the bump pointer, reset per call. Growth allocates a fresh
	// backing array (chunks already handed out keep the old one alive), so
	// after warm-up a steady-state call performs no signature allocations.
	sigs   []int64
	sigOff int

	merger sigMerger

	views []PathView
	nreq  []int64
}

// allocSig bump-allocates one zero-length-capped signature of length n from
// the arena. The full slice expression prevents a later append from
// clobbering a neighboring chunk.
//
//schedlint:hotpath
func (s *ViewScratch) allocSig(n int) []int64 {
	if s.sigOff+n > len(s.sigs) {
		size := 2 * (s.sigOff + n)
		if size < 64 {
			size = 64
		}
		//schedlint:ignore hotpath amortized signature-arena growth; steady-state calls reuse the existing backing
		s.sigs = make([]int64, size)
		s.sigOff = 0
	}
	c := s.sigs[s.sigOff : s.sigOff+n : s.sigOff+n]
	s.sigOff += n
	return c
}

// sliceCap returns s with length n, reusing the backing array when it is
// large enough. Contents are unspecified; callers fully overwrite.
func sliceCap[T any](s []T, n int) []T {
	if cap(s) < n {
		//schedlint:ignore hotpath grow-only resize; a warmed scratch never re-enters this branch
		return make([]T, n)
	}
	return s[:n]
}

// EnumerateViews streams every complete path of the DAG through a
// signature-collapsing dynamic program and returns one PathView per
// distinct request vector, in deterministic first-discovered order.
//
// Unlike EnumeratePaths, the cost is not proportional to the number of
// paths: partial paths reaching a vertex with identical request counts are
// folded immediately, so a DAG whose 2^k paths all request the same
// resources is processed in O(V+E). The worst case is bounded by the number
// of distinct partial signatures per vertex (itself bounded by the path
// count and by prod_q (N_{i,q}+1)).
//
// The cap keeps the EN-fallback semantics of EnumeratePaths bit-compatible:
// ok=false whenever the task has more than cap complete paths, regardless
// of how few views they would collapse into. A cap <= 0 means unlimited.
func (t *Task) EnumerateViews(cap int) (views []PathView, ok bool) {
	return t.EnumerateViewsScratch(cap, nil)
}

// EnumerateViewsScratch is EnumerateViews computing through a reusable
// scratch. With a nil scratch the returned views own fresh memory exactly
// like EnumerateViews; with a non-nil scratch the views (and their NReq
// backing) borrow it and stay valid only until the next call on the same
// scratch. The fold order, merge order and therefore the returned view
// order are identical either way.
//
//schedlint:hotpath
func (t *Task) EnumerateViewsScratch(cap int, s *ViewScratch) (views []PathView, ok bool) {
	return t.enumerateViews(cap, s, nil)
}

// EnumerateViewsPlan is EnumerateViewsScratch that additionally compiles
// the collapse structure into a heap-owned ViewPlan for later replay under
// changed vertex WCETs. The returned views are identical to (and borrow
// scratch exactly like) EnumerateViewsScratch's.
func (t *Task) EnumerateViewsPlan(cap int, s *ViewScratch) (views []PathView, plan *ViewPlan, ok bool) {
	plan = &ViewPlan{}
	views, ok = t.enumerateViews(cap, s, plan)
	if !ok {
		return nil, nil, false
	}
	return views, plan, true
}

//schedlint:hotpath
func (t *Task) enumerateViews(cap int, s *ViewScratch, rec *ViewPlan) (views []PathView, ok bool) {
	t.mustFinal()
	if cap > 0 && t.CountPaths() > int64(cap) {
		return nil, false
	}
	if s == nil {
		s = &ViewScratch{}
	}

	// Active resources: only resources the task requests at all can appear
	// in a signature, so signatures index them densely.
	s.active = s.active[:0]
	s.slot = sliceCap(s.slot, len(t.nReq))
	for q, n := range t.nReq {
		if n > 0 {
			s.slot[q] = len(s.active)
			s.active = append(s.active, rt.ResourceID(q))
		}
	}
	na := len(s.active)

	// Per-vertex signature increments and non-critical WCETs.
	nv := len(t.Vertices)
	if have := len(s.deltas); have < nv {
		//schedlint:ignore hotpath grow-only resize; a warmed scratch never re-enters this branch
		s.deltas = append(s.deltas[:have], make([][]sigDelta, nv-have)...)
	}
	s.nonCrit = sliceCap(s.nonCrit, nv)
	for x, v := range t.Vertices {
		s.nonCrit[x] = t.VertexNonCrit(rt.VertexID(x))
		d := s.deltas[x][:0]
		for q, n := range v.Requests {
			if n > 0 {
				d = append(d, sigDelta{slot: s.slot[q], n: int64(n)})
			}
		}
		s.deltas[x] = d
	}

	s.zeroSig = sliceCap(s.zeroSig, na)
	clear(s.zeroSig)
	s.sigOff = 0
	m := &s.merger

	// Forward DP in topological order: states[x] holds the collapsed
	// classes of all head-to-x prefixes (x included). The predecessor
	// signature is never mutated and is shared when x issues no requests.
	if have := len(s.states); have < nv {
		//schedlint:ignore hotpath grow-only resize; a warmed scratch never re-enters this branch
		s.states = append(s.states[:have], make([][]viewState, nv-have)...)
	}
	// When recording, every (vertex, class) pair gets a global value slot;
	// slotBase[x] is vertex x's first slot. Recording allocates, but it only
	// runs under the delta analyzer, never on the production path.
	var slotBase []int32
	var nextSlot int32
	if rec != nil {
		//schedlint:ignore hotpath plan recording runs only under the delta analyzer
		slotBase = make([]int32, nv)
	}
	for _, x := range t.topo {
		m.begin(s.states[x][:0])
		var seg *planSeg
		if rec != nil {
			slotBase[x] = nextSlot
			//schedlint:ignore hotpath plan recording runs only under the delta analyzer
			rec.segs = append(rec.segs, planSeg{x: x})
			seg = &rec.segs[len(rec.segs)-1]
		}
		if len(t.pred[x]) == 0 {
			j := s.fold(m, x, na, s.zeroSig, s.nonCrit[x], 1)
			if seg != nil {
				//schedlint:ignore hotpath plan recording runs only under the delta analyzer
				seg.ops = append(seg.ops, planOp{src: -1, dst: slotBase[x] + int32(j)})
			}
		} else {
			for _, p := range t.pred[x] {
				for i, st := range s.states[p] {
					j := s.fold(m, x, na, st.sig, st.nonCrit+s.nonCrit[x], st.paths)
					if seg != nil {
						//schedlint:ignore hotpath plan recording runs only under the delta analyzer
						seg.ops = append(seg.ops, planOp{src: slotBase[p] + int32(i), dst: slotBase[x] + int32(j)})
					}
				}
			}
		}
		s.states[x] = m.take()
		if rec != nil {
			nextSlot += int32(len(s.states[x]))
		}
	}

	// Merge the tail classes into the final views. Length is recovered from
	// the signature: L = C'(lambda) + sum over active q of sig_q * L_{i,q}.
	m.begin(s.final[:0])
	var fseg *planSeg
	if rec != nil {
		//schedlint:ignore hotpath plan recording runs only under the delta analyzer
		rec.segs = append(rec.segs, planSeg{x: -1})
		fseg = &rec.segs[len(rec.segs)-1]
	}
	for _, tail := range t.tails {
		for i, st := range s.states[tail] {
			j := m.add(st.sig, st.nonCrit, st.paths)
			if fseg != nil {
				//schedlint:ignore hotpath plan recording runs only under the delta analyzer
				fseg.ops = append(fseg.ops, planOp{src: slotBase[tail] + int32(i), dst: int32(j)})
			}
		}
	}
	s.final = m.take()
	final := s.final

	nr := len(t.nReq)
	views = sliceCap(s.views, len(final))
	s.views = views
	s.nreq = sliceCap(s.nreq, len(final)*nr)
	nreqFlat := s.nreq
	clear(nreqFlat)
	if rec != nil {
		rec.nv = nv
		rec.slots = int(nextSlot)
		rec.nFinal = len(final)
		rec.nr = nr
		//schedlint:ignore hotpath plan recording runs only under the delta analyzer
		rec.nreq = make([]int64, len(final)*nr)
		//schedlint:ignore hotpath plan recording runs only under the delta analyzer
		rec.csPart = make([]rt.Time, len(final))
		//schedlint:ignore hotpath plan recording runs only under the delta analyzer
		rec.paths = make([]int64, len(final))
		// Per-vertex critical-section work is WCET-independent; freezing it
		// lets Replay derive non-critical WCETs without touching the
		// request maps.
		//schedlint:ignore hotpath plan recording runs only under the delta analyzer
		rec.csw = make([]rt.Time, nv)
		for x := range t.Vertices {
			rec.csw[x] = t.Vertices[x].WCET - s.nonCrit[x]
		}
	}
	for i, st := range final {
		nreq := nreqFlat[i*nr : (i+1)*nr : (i+1)*nr]
		length := st.nonCrit
		for j, q := range s.active {
			nreq[q] = st.sig[j]
			length = rt.SatAdd(length, rt.SatMul(st.sig[j], t.CSLen[q]))
		}
		views[i] = PathView{NReq: nreq, Length: length, NonCrit: st.nonCrit, Paths: st.paths}
		if rec != nil {
			copy(rec.nreq[i*nr:(i+1)*nr], nreq)
			var cs rt.Time
			for j, q := range s.active {
				cs = rt.SatAdd(cs, rt.SatMul(st.sig[j], t.CSLen[q]))
			}
			rec.csPart[i] = cs
			rec.paths[i] = st.paths
		}
	}
	return views, true
}

// fold extends one predecessor class by vertex x and hands it to the
// merger, returning the class index the contribution merged into.
// Signatures only copy (from the arena) when x issues requests.
func (s *ViewScratch) fold(m *sigMerger, x rt.VertexID, na int, base []int64, nc rt.Time, paths int64) int {
	sig := base
	if len(s.deltas[x]) > 0 {
		sig = s.allocSig(na)
		copy(sig, base)
		for _, d := range s.deltas[x] {
			sig[d.slot] += d.n
		}
	}
	return m.add(sig, nc, paths)
}

// CountViews returns the number of distinct request-vector signatures over
// complete paths, i.e. len(EnumerateViews) without the cap check.
func (t *Task) CountViews() int {
	views, _ := t.EnumerateViews(0)
	return len(views)
}

// sigMerger folds (signature, nonCrit, paths) triples into collapsed
// equivalence classes. Small batches merge by direct signature comparison;
// once the class count passes a threshold it switches to an open-addressed
// hash table probing the signatures in place, so chain-heavy DAGs (few
// classes per vertex) never pay for hashing while contention-heavy DAGs
// stay near O(1) per fold. The table's backing persists across begin
// calls, so a scratch-driven enumeration reuses it allocation-free (a
// string-keyed map here would re-materialize every key string per call:
// map writes always copy the key).
type sigMerger struct {
	out []viewState
	// table is the open-addressed index: table[j] holds 1+the out index of
	// the class hashed to slot j, 0 marks an empty slot. Linear probing;
	// capacity is a power of two kept at least twice the class count.
	table   []int32
	indexed bool // table is live for the current merge
}

// linearMergeMax bounds the direct-comparison phase; beyond it the merger
// builds its table index.
const linearMergeMax = 16

// begin starts a new merge writing into dst (typically a reused slice
// truncated to length zero).
func (m *sigMerger) begin(dst []viewState) {
	m.out = dst
	m.indexed = false
}

// take returns the merged classes and detaches them from the merger.
func (m *sigMerger) take() []viewState {
	out := m.out
	m.out = nil
	m.indexed = false
	return out
}

// hashSig mixes the signature contents; only equality of signatures (not
// any encoding) matters for correctness.
func hashSig(sig []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, n := range sig {
		x := uint64(n)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		h = (h ^ x) * 0x9e3779b97f4a7c15
	}
	h ^= h >> 29
	return h
}

// find probes for sig and returns the slot holding its class, or the empty
// slot where it belongs.
func (m *sigMerger) find(sig []int64) int {
	mask := len(m.table) - 1
	j := int(hashSig(sig)) & mask
	for {
		e := m.table[j]
		if e == 0 || sigEqual(m.out[e-1].sig, sig) {
			return j
		}
		j = (j + 1) & mask
	}
}

// reindex (re)builds the table over the current classes, growing the
// backing only when the class count outruns the 1/2 load factor.
func (m *sigMerger) reindex() {
	need := 4 * linearMergeMax
	for need < 4*(len(m.out)+1) {
		need *= 2
	}
	if len(m.table) < need {
		//schedlint:ignore hotpath grow-only resize; a warmed merger table never re-enters this branch
		m.table = make([]int32, need)
	} else {
		clear(m.table)
	}
	m.indexed = true
	for i := range m.out {
		m.table[m.find(m.out[i].sig)] = int32(i + 1)
	}
}

// add folds one (signature, nonCrit, paths) triple in and returns the index
// of the class it landed in (classes are only ever appended, so indices are
// stable for the duration of a merge).
func (m *sigMerger) add(sig []int64, nonCrit rt.Time, paths int64) int {
	if !m.indexed {
		for i := range m.out {
			if sigEqual(m.out[i].sig, sig) {
				m.merge(i, nonCrit, paths)
				return i
			}
		}
		if len(m.out) < linearMergeMax {
			m.out = append(m.out, viewState{sig: sig, nonCrit: nonCrit, paths: paths})
			return len(m.out) - 1
		}
		// Crossing the threshold: index everything seen so far.
		m.reindex()
	}
	if 2*(len(m.out)+1) > len(m.table) {
		m.reindex()
	}
	j := m.find(sig)
	if e := m.table[j]; e != 0 {
		m.merge(int(e-1), nonCrit, paths)
		return int(e - 1)
	}
	m.table[j] = int32(len(m.out) + 1)
	m.out = append(m.out, viewState{sig: sig, nonCrit: nonCrit, paths: paths})
	return len(m.out) - 1
}

func (m *sigMerger) merge(i int, nonCrit rt.Time, paths int64) {
	s := &m.out[i]
	if nonCrit > s.nonCrit {
		s.nonCrit = nonCrit
	}
	s.paths = satAddI64(s.paths, paths)
}

func sigEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// planOp is one max-fold of the recorded collapse DP: slot dst accumulates
// slot src's value plus the segment vertex's non-critical WCET. src == -1
// seeds a head-vertex class from the vertex alone; in the final segment
// (planSeg.x == -1) dst indexes the final views and no WCET is added.
type planOp struct{ src, dst int32 }

// planSeg groups the recorded ops of one vertex, in topological order; the
// trailing segment with x == -1 merges tail classes into the final views.
type planSeg struct {
	x   rt.VertexID
	ops []planOp
}

// ViewPlan is the compiled structure of one task's signature-collapsing
// view enumeration. Which class a path prefix folds into — and therefore
// the whole plan — depends only on the DAG, the request vectors and the
// active-resource set, never on vertex WCETs: WCETs enter the DP purely as
// the weights being max-accumulated. Replay therefore re-derives the exact
// EnumerateViews result for a WCET-edited variant of the task (same
// signatures, same view order, same path counts) in one linear pass over
// the recorded ops, skipping all signature hashing and merging.
//
// A plan is immutable after EnumerateViewsPlan returns and safe for
// concurrent Replay calls through distinct scratches. It becomes invalid —
// silently, so callers must gate on the change classification — as soon as
// the task's vertex count, edges, request vectors or critical-section
// lengths change.
type ViewPlan struct {
	nv     int // vertex count the plan was compiled for
	slots  int // number of (vertex, class) value slots
	nFinal int // number of final views
	nr     int
	segs   []planSeg
	nreq   []int64   // nFinal x nr: view i's request vector (static)
	csPart []rt.Time // per view: saturating sum_q NReq_q * L_{i,q} (static)
	paths  []int64   // per view: collapsed concrete paths (static)
	csw    []rt.Time // per vertex: critical-section work (static)
}

// NumViews returns the number of views the plan reproduces.
func (p *ViewPlan) NumViews() int { return p.nFinal }

// Replay recomputes the task's path views under its current vertex WCETs.
// t must be structurally identical to the task the plan was compiled from
// (same DAG, requests and CS lengths); only vertex WCETs may differ. The
// returned views borrow the scratch and the plan exactly like
// EnumerateViewsScratch's views borrow the scratch: valid until the next
// enumeration or replay through s. Returns nil if t's vertex count does not
// match the plan.
func (p *ViewPlan) Replay(t *Task, s *ViewScratch) []PathView {
	t.mustFinal()
	if len(t.Vertices) != p.nv {
		return nil
	}
	if s == nil {
		s = &ViewScratch{}
	}
	vals := sliceCap(s.replay, p.slots+p.nFinal)
	s.replay = vals
	// Non-critical WCETs are non-negative (Finalize rejects critical
	// sections exceeding the vertex WCET), so -1 is a safe "unwritten"
	// floor for the max-accumulation.
	for i := range vals {
		vals[i] = -1
	}
	fin := vals[p.slots:]
	for si := range p.segs {
		seg := &p.segs[si]
		if seg.x < 0 {
			for _, op := range seg.ops {
				if v := vals[op.src]; v > fin[op.dst] {
					fin[op.dst] = v
				}
			}
			continue
		}
		nc := t.Vertices[seg.x].WCET - p.csw[seg.x]
		for _, op := range seg.ops {
			v := nc
			if op.src >= 0 {
				// Plain addition, exactly like the recorded DP's
				// st.nonCrit + s.nonCrit[x] fold.
				v = vals[op.src] + nc
			}
			if v > vals[op.dst] {
				vals[op.dst] = v
			}
		}
	}
	views := sliceCap(s.views, p.nFinal)
	s.views = views
	for i := 0; i < p.nFinal; i++ {
		nonCrit := fin[i]
		views[i] = PathView{
			NReq:    p.nreq[i*p.nr : (i+1)*p.nr : (i+1)*p.nr],
			Length:  rt.SatAdd(nonCrit, p.csPart[i]),
			NonCrit: nonCrit,
			Paths:   p.paths[i],
		}
	}
	return views
}
