package model

import (
	"encoding/binary"

	"dpcpp/internal/rt"
)

// PathView is the signature-collapsed summary of every complete path that
// shares one per-resource request vector ("signature"). The DPCP-p per-path
// response-time bound of Theorem 1 depends on a path only through its
// request vector, its length L(lambda) and its on-path non-critical WCET,
// and it is monotone non-decreasing in the latter two for a fixed request
// vector (L and C' are coupled: L = C'(lambda) + sum_q N^lambda_q * L_q).
// All paths with one signature therefore collapse, exactly, into the single
// view carrying the group maxima.
type PathView struct {
	NReq    []int64 // NReq[q] = N^lambda_{i,q}, shared by all collapsed paths
	Length  rt.Time // max over collapsed paths of L(lambda)
	NonCrit rt.Time // on-path non-critical WCET of the longest collapsed path
	Paths   int64   // number of concrete paths collapsed, saturating
}

// Requests returns N^lambda_{i,q} for resource q.
func (v *PathView) Requests(q rt.ResourceID) int64 {
	if int(q) >= len(v.NReq) {
		return 0
	}
	return v.NReq[q]
}

// viewState is one partial-path equivalence class during the collapse DP:
// all head-to-x prefixes sharing one request-count signature.
type viewState struct {
	sig     []int64 // counts per *active* resource (see EnumerateViews)
	nonCrit rt.Time // max prefix non-critical WCET within the class
	paths   int64   // number of prefixes in the class, saturating
}

// EnumerateViews streams every complete path of the DAG through a
// signature-collapsing dynamic program and returns one PathView per
// distinct request vector, in deterministic first-discovered order.
//
// Unlike EnumeratePaths, the cost is not proportional to the number of
// paths: partial paths reaching a vertex with identical request counts are
// folded immediately, so a DAG whose 2^k paths all request the same
// resources is processed in O(V+E). The worst case is bounded by the number
// of distinct partial signatures per vertex (itself bounded by the path
// count and by prod_q (N_{i,q}+1)).
//
// The cap keeps the EN-fallback semantics of EnumeratePaths bit-compatible:
// ok=false whenever the task has more than cap complete paths, regardless
// of how few views they would collapse into. A cap <= 0 means unlimited.
func (t *Task) EnumerateViews(cap int) (views []PathView, ok bool) {
	t.mustFinal()
	if cap > 0 && t.CountPaths() > int64(cap) {
		return nil, false
	}

	// Active resources: only resources the task requests at all can appear
	// in a signature, so signatures index them densely.
	var active []rt.ResourceID
	slot := make([]int, len(t.nReq))
	for q, n := range t.nReq {
		if n > 0 {
			slot[q] = len(active)
			active = append(active, rt.ResourceID(q))
		}
	}
	na := len(active)

	// Per-vertex signature increments and non-critical WCETs, hoisted out
	// of the DP so the inner loop never touches the Requests maps.
	type sigDelta struct {
		slot int
		n    int64
	}
	deltas := make([][]sigDelta, len(t.Vertices))
	nonCrit := make([]rt.Time, len(t.Vertices))
	for x, v := range t.Vertices {
		nonCrit[x] = t.VertexNonCrit(rt.VertexID(x))
		for q, n := range v.Requests {
			if n > 0 {
				deltas[x] = append(deltas[x], sigDelta{slot: slot[q], n: int64(n)})
			}
		}
	}

	zeroSig := make([]int64, na)
	m := newSigMerger(na)

	// Forward DP in topological order: states[x] holds the collapsed
	// classes of all head-to-x prefixes (x included).
	states := make([][]viewState, len(t.Vertices))
	for _, x := range t.topo {
		m.reset()
		// Fold every predecessor class, extended by x, into states[x].
		// The predecessor signature is never mutated and is shared when x
		// issues no requests.
		fold := func(base []int64, nc rt.Time, paths int64) {
			sig := base
			if len(deltas[x]) > 0 {
				sig = append(make([]int64, 0, na), base...)
				for _, d := range deltas[x] {
					sig[d.slot] += d.n
				}
			}
			m.add(sig, nc, paths)
		}
		if len(t.pred[x]) == 0 {
			fold(zeroSig, nonCrit[x], 1)
		} else {
			for _, p := range t.pred[x] {
				for _, s := range states[p] {
					fold(s.sig, s.nonCrit+nonCrit[x], s.paths)
				}
			}
		}
		states[x] = m.take()
	}

	// Merge the tail classes into the final views. Length is recovered from
	// the signature: L = C'(lambda) + sum over active q of sig_q * L_{i,q}.
	m.reset()
	for _, tail := range t.tails {
		for _, s := range states[tail] {
			m.add(s.sig, s.nonCrit, s.paths)
		}
	}
	final := m.take()

	views = make([]PathView, len(final))
	nreqFlat := make([]int64, len(final)*len(t.nReq))
	for i, s := range final {
		nreq := nreqFlat[i*len(t.nReq) : (i+1)*len(t.nReq) : (i+1)*len(t.nReq)]
		length := s.nonCrit
		for j, q := range active {
			nreq[q] = s.sig[j]
			length = rt.SatAdd(length, rt.SatMul(s.sig[j], t.CSLen[q]))
		}
		views[i] = PathView{NReq: nreq, Length: length, NonCrit: s.nonCrit, Paths: s.paths}
	}
	return views, true
}

// CountViews returns the number of distinct request-vector signatures over
// complete paths, i.e. len(EnumerateViews) without the cap check.
func (t *Task) CountViews() int {
	views, _ := t.EnumerateViews(0)
	return len(views)
}

// sigMerger folds (signature, nonCrit, paths) triples into collapsed
// equivalence classes. Small batches merge by direct signature comparison;
// once the class count passes a threshold it switches to an encoded-key
// map, so chain-heavy DAGs (few classes per vertex) never pay for hashing
// while contention-heavy DAGs stay near O(1) per fold.
type sigMerger struct {
	na     int
	out    []viewState
	index  map[string]int // nil until the linear scan gets too long
	keyBuf []byte
}

// linearMergeMax bounds the direct-comparison phase; beyond it the merger
// builds its map index.
const linearMergeMax = 16

func newSigMerger(na int) *sigMerger { return &sigMerger{na: na} }

func (m *sigMerger) reset() {
	m.out = nil
	if m.index != nil {
		clear(m.index)
	}
}

// take returns the merged classes and detaches them from the merger.
func (m *sigMerger) take() []viewState {
	out := m.out
	m.out = nil
	if m.index != nil {
		clear(m.index)
	}
	return out
}

// fillKey encodes sig into keyBuf; callers look up via string(m.keyBuf)
// directly so the duplicate (merge) case never allocates — the compiler
// elides the conversion for map reads — and only first-seen signatures
// materialize a key string.
func (m *sigMerger) fillKey(sig []int64) {
	m.keyBuf = m.keyBuf[:0]
	for _, n := range sig {
		m.keyBuf = binary.AppendUvarint(m.keyBuf, uint64(n))
	}
}

func (m *sigMerger) add(sig []int64, nonCrit rt.Time, paths int64) {
	if m.index == nil || len(m.out) <= linearMergeMax {
		for i := range m.out {
			if sigEqual(m.out[i].sig, sig) {
				m.merge(i, nonCrit, paths)
				return
			}
		}
		if len(m.out) < linearMergeMax {
			m.out = append(m.out, viewState{sig: sig, nonCrit: nonCrit, paths: paths})
			return
		}
		// Crossing the threshold: index everything seen so far.
		if m.index == nil {
			m.index = make(map[string]int, 2*linearMergeMax)
		}
		for i := range m.out {
			m.fillKey(m.out[i].sig)
			m.index[string(m.keyBuf)] = i
		}
	}
	m.fillKey(sig)
	if i, dup := m.index[string(m.keyBuf)]; dup {
		m.merge(i, nonCrit, paths)
		return
	}
	m.index[string(m.keyBuf)] = len(m.out)
	m.out = append(m.out, viewState{sig: sig, nonCrit: nonCrit, paths: paths})
}

func (m *sigMerger) merge(i int, nonCrit rt.Time, paths int64) {
	s := &m.out[i]
	if nonCrit > s.nonCrit {
		s.nonCrit = nonCrit
	}
	s.paths = satAddI64(s.paths, paths)
}

func sigEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
