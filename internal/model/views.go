package model

import (
	"dpcpp/internal/rt"
)

// PathView is the signature-collapsed summary of every complete path that
// shares one per-resource request vector ("signature"). The DPCP-p per-path
// response-time bound of Theorem 1 depends on a path only through its
// request vector, its length L(lambda) and its on-path non-critical WCET,
// and it is monotone non-decreasing in the latter two for a fixed request
// vector (L and C' are coupled: L = C'(lambda) + sum_q N^lambda_q * L_q).
// All paths with one signature therefore collapse, exactly, into the single
// view carrying the group maxima.
type PathView struct {
	NReq    []int64 // NReq[q] = N^lambda_{i,q}, shared by all collapsed paths
	Length  rt.Time // max over collapsed paths of L(lambda)
	NonCrit rt.Time // on-path non-critical WCET of the longest collapsed path
	Paths   int64   // number of concrete paths collapsed, saturating
}

// Requests returns N^lambda_{i,q} for resource q.
func (v *PathView) Requests(q rt.ResourceID) int64 {
	if int(q) >= len(v.NReq) {
		return 0
	}
	return v.NReq[q]
}

// viewState is one partial-path equivalence class during the collapse DP:
// all head-to-x prefixes sharing one request-count signature.
type viewState struct {
	sig     []int64 // counts per *active* resource (see EnumerateViews)
	nonCrit rt.Time // max prefix non-critical WCET within the class
	paths   int64   // number of prefixes in the class, saturating
}

// sigDelta is one vertex's request increment on an active-resource slot,
// hoisted out of the DP so the inner loop never touches the Requests maps.
type sigDelta struct {
	slot int
	n    int64
}

// ViewScratch holds the reusable working memory of EnumerateViewsScratch:
// the per-vertex DP state, the signature arena, the merger (including its
// map index and key buffer) and the backing arrays of the returned views.
//
// Ownership: a ViewScratch may be used by one goroutine at a time, and the
// views returned by EnumerateViewsScratch (including their NReq vectors)
// borrow the scratch — they are valid only until the next
// EnumerateViewsScratch call on the same scratch. Callers that retain views
// must copy them out first (internal/analysis does: it converts views into
// its own representation immediately).
type ViewScratch struct {
	active  []rt.ResourceID
	slot    []int
	deltas  [][]sigDelta
	nonCrit []rt.Time
	states  [][]viewState
	final   []viewState
	zeroSig []int64

	// sigs is the arena backing every signature copied during one call;
	// sigOff is the bump pointer, reset per call. Growth allocates a fresh
	// backing array (chunks already handed out keep the old one alive), so
	// after warm-up a steady-state call performs no signature allocations.
	sigs   []int64
	sigOff int

	merger sigMerger

	views []PathView
	nreq  []int64
}

// allocSig bump-allocates one zero-length-capped signature of length n from
// the arena. The full slice expression prevents a later append from
// clobbering a neighboring chunk.
//
//schedlint:hotpath
func (s *ViewScratch) allocSig(n int) []int64 {
	if s.sigOff+n > len(s.sigs) {
		size := 2 * (s.sigOff + n)
		if size < 64 {
			size = 64
		}
		//schedlint:ignore hotpath amortized signature-arena growth; steady-state calls reuse the existing backing
		s.sigs = make([]int64, size)
		s.sigOff = 0
	}
	c := s.sigs[s.sigOff : s.sigOff+n : s.sigOff+n]
	s.sigOff += n
	return c
}

// sliceCap returns s with length n, reusing the backing array when it is
// large enough. Contents are unspecified; callers fully overwrite.
func sliceCap[T any](s []T, n int) []T {
	if cap(s) < n {
		//schedlint:ignore hotpath grow-only resize; a warmed scratch never re-enters this branch
		return make([]T, n)
	}
	return s[:n]
}

// EnumerateViews streams every complete path of the DAG through a
// signature-collapsing dynamic program and returns one PathView per
// distinct request vector, in deterministic first-discovered order.
//
// Unlike EnumeratePaths, the cost is not proportional to the number of
// paths: partial paths reaching a vertex with identical request counts are
// folded immediately, so a DAG whose 2^k paths all request the same
// resources is processed in O(V+E). The worst case is bounded by the number
// of distinct partial signatures per vertex (itself bounded by the path
// count and by prod_q (N_{i,q}+1)).
//
// The cap keeps the EN-fallback semantics of EnumeratePaths bit-compatible:
// ok=false whenever the task has more than cap complete paths, regardless
// of how few views they would collapse into. A cap <= 0 means unlimited.
func (t *Task) EnumerateViews(cap int) (views []PathView, ok bool) {
	return t.EnumerateViewsScratch(cap, nil)
}

// EnumerateViewsScratch is EnumerateViews computing through a reusable
// scratch. With a nil scratch the returned views own fresh memory exactly
// like EnumerateViews; with a non-nil scratch the views (and their NReq
// backing) borrow it and stay valid only until the next call on the same
// scratch. The fold order, merge order and therefore the returned view
// order are identical either way.
//
//schedlint:hotpath
func (t *Task) EnumerateViewsScratch(cap int, s *ViewScratch) (views []PathView, ok bool) {
	t.mustFinal()
	if cap > 0 && t.CountPaths() > int64(cap) {
		return nil, false
	}
	if s == nil {
		s = &ViewScratch{}
	}

	// Active resources: only resources the task requests at all can appear
	// in a signature, so signatures index them densely.
	s.active = s.active[:0]
	s.slot = sliceCap(s.slot, len(t.nReq))
	for q, n := range t.nReq {
		if n > 0 {
			s.slot[q] = len(s.active)
			s.active = append(s.active, rt.ResourceID(q))
		}
	}
	na := len(s.active)

	// Per-vertex signature increments and non-critical WCETs.
	nv := len(t.Vertices)
	if have := len(s.deltas); have < nv {
		//schedlint:ignore hotpath grow-only resize; a warmed scratch never re-enters this branch
		s.deltas = append(s.deltas[:have], make([][]sigDelta, nv-have)...)
	}
	s.nonCrit = sliceCap(s.nonCrit, nv)
	for x, v := range t.Vertices {
		s.nonCrit[x] = t.VertexNonCrit(rt.VertexID(x))
		d := s.deltas[x][:0]
		for q, n := range v.Requests {
			if n > 0 {
				d = append(d, sigDelta{slot: s.slot[q], n: int64(n)})
			}
		}
		s.deltas[x] = d
	}

	s.zeroSig = sliceCap(s.zeroSig, na)
	clear(s.zeroSig)
	s.sigOff = 0
	m := &s.merger

	// Forward DP in topological order: states[x] holds the collapsed
	// classes of all head-to-x prefixes (x included). The predecessor
	// signature is never mutated and is shared when x issues no requests.
	if have := len(s.states); have < nv {
		//schedlint:ignore hotpath grow-only resize; a warmed scratch never re-enters this branch
		s.states = append(s.states[:have], make([][]viewState, nv-have)...)
	}
	for _, x := range t.topo {
		m.begin(s.states[x][:0])
		if len(t.pred[x]) == 0 {
			s.fold(m, x, na, s.zeroSig, s.nonCrit[x], 1)
		} else {
			for _, p := range t.pred[x] {
				for _, st := range s.states[p] {
					s.fold(m, x, na, st.sig, st.nonCrit+s.nonCrit[x], st.paths)
				}
			}
		}
		s.states[x] = m.take()
	}

	// Merge the tail classes into the final views. Length is recovered from
	// the signature: L = C'(lambda) + sum over active q of sig_q * L_{i,q}.
	m.begin(s.final[:0])
	for _, tail := range t.tails {
		for _, st := range s.states[tail] {
			m.add(st.sig, st.nonCrit, st.paths)
		}
	}
	s.final = m.take()
	final := s.final

	nr := len(t.nReq)
	views = sliceCap(s.views, len(final))
	s.views = views
	s.nreq = sliceCap(s.nreq, len(final)*nr)
	nreqFlat := s.nreq
	clear(nreqFlat)
	for i, st := range final {
		nreq := nreqFlat[i*nr : (i+1)*nr : (i+1)*nr]
		length := st.nonCrit
		for j, q := range s.active {
			nreq[q] = st.sig[j]
			length = rt.SatAdd(length, rt.SatMul(st.sig[j], t.CSLen[q]))
		}
		views[i] = PathView{NReq: nreq, Length: length, NonCrit: st.nonCrit, Paths: st.paths}
	}
	return views, true
}

// fold extends one predecessor class by vertex x and hands it to the
// merger. Signatures only copy (from the arena) when x issues requests.
func (s *ViewScratch) fold(m *sigMerger, x rt.VertexID, na int, base []int64, nc rt.Time, paths int64) {
	sig := base
	if len(s.deltas[x]) > 0 {
		sig = s.allocSig(na)
		copy(sig, base)
		for _, d := range s.deltas[x] {
			sig[d.slot] += d.n
		}
	}
	m.add(sig, nc, paths)
}

// CountViews returns the number of distinct request-vector signatures over
// complete paths, i.e. len(EnumerateViews) without the cap check.
func (t *Task) CountViews() int {
	views, _ := t.EnumerateViews(0)
	return len(views)
}

// sigMerger folds (signature, nonCrit, paths) triples into collapsed
// equivalence classes. Small batches merge by direct signature comparison;
// once the class count passes a threshold it switches to an open-addressed
// hash table probing the signatures in place, so chain-heavy DAGs (few
// classes per vertex) never pay for hashing while contention-heavy DAGs
// stay near O(1) per fold. The table's backing persists across begin
// calls, so a scratch-driven enumeration reuses it allocation-free (a
// string-keyed map here would re-materialize every key string per call:
// map writes always copy the key).
type sigMerger struct {
	out []viewState
	// table is the open-addressed index: table[j] holds 1+the out index of
	// the class hashed to slot j, 0 marks an empty slot. Linear probing;
	// capacity is a power of two kept at least twice the class count.
	table   []int32
	indexed bool // table is live for the current merge
}

// linearMergeMax bounds the direct-comparison phase; beyond it the merger
// builds its table index.
const linearMergeMax = 16

// begin starts a new merge writing into dst (typically a reused slice
// truncated to length zero).
func (m *sigMerger) begin(dst []viewState) {
	m.out = dst
	m.indexed = false
}

// take returns the merged classes and detaches them from the merger.
func (m *sigMerger) take() []viewState {
	out := m.out
	m.out = nil
	m.indexed = false
	return out
}

// hashSig mixes the signature contents; only equality of signatures (not
// any encoding) matters for correctness.
func hashSig(sig []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, n := range sig {
		x := uint64(n)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		h = (h ^ x) * 0x9e3779b97f4a7c15
	}
	h ^= h >> 29
	return h
}

// find probes for sig and returns the slot holding its class, or the empty
// slot where it belongs.
func (m *sigMerger) find(sig []int64) int {
	mask := len(m.table) - 1
	j := int(hashSig(sig)) & mask
	for {
		e := m.table[j]
		if e == 0 || sigEqual(m.out[e-1].sig, sig) {
			return j
		}
		j = (j + 1) & mask
	}
}

// reindex (re)builds the table over the current classes, growing the
// backing only when the class count outruns the 1/2 load factor.
func (m *sigMerger) reindex() {
	need := 4 * linearMergeMax
	for need < 4*(len(m.out)+1) {
		need *= 2
	}
	if len(m.table) < need {
		//schedlint:ignore hotpath grow-only resize; a warmed merger table never re-enters this branch
		m.table = make([]int32, need)
	} else {
		clear(m.table)
	}
	m.indexed = true
	for i := range m.out {
		m.table[m.find(m.out[i].sig)] = int32(i + 1)
	}
}

func (m *sigMerger) add(sig []int64, nonCrit rt.Time, paths int64) {
	if !m.indexed {
		for i := range m.out {
			if sigEqual(m.out[i].sig, sig) {
				m.merge(i, nonCrit, paths)
				return
			}
		}
		if len(m.out) < linearMergeMax {
			m.out = append(m.out, viewState{sig: sig, nonCrit: nonCrit, paths: paths})
			return
		}
		// Crossing the threshold: index everything seen so far.
		m.reindex()
	}
	if 2*(len(m.out)+1) > len(m.table) {
		m.reindex()
	}
	j := m.find(sig)
	if e := m.table[j]; e != 0 {
		m.merge(int(e-1), nonCrit, paths)
		return
	}
	m.table[j] = int32(len(m.out) + 1)
	m.out = append(m.out, viewState{sig: sig, nonCrit: nonCrit, paths: paths})
}

func (m *sigMerger) merge(i int, nonCrit rt.Time, paths int64) {
	s := &m.out[i]
	if nonCrit > s.nonCrit {
		s.nonCrit = nonCrit
	}
	s.paths = satAddI64(s.paths, paths)
}

func sigEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
