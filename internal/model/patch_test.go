package model

import (
	"testing"

	"dpcpp/internal/rt"
)

// patchBase builds a small finalized two-task set with one shared resource
// and one task-local one: enough structure to exercise every patch op.
func patchBase(t *testing.T) *Taskset {
	t.Helper()
	ts := NewTaskset(4, 2)

	a := NewTask(0, 1000*rt.Microsecond, 900*rt.Microsecond)
	a.Priority = 2
	a.AddVertex(100 * rt.Microsecond)
	a.AddVertex(50 * rt.Microsecond)
	a.AddVertex(80 * rt.Microsecond)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	a.AddRequest(1, 0, 2, 5*rt.Microsecond)
	ts.Add(a)

	b := NewTask(1, 2000*rt.Microsecond, 2000*rt.Microsecond)
	b.Priority = 1
	b.AddVertex(200 * rt.Microsecond)
	b.AddVertex(150 * rt.Microsecond)
	b.AddRequest(0, 0, 1, 10*rt.Microsecond)
	b.AddRequest(1, 1, 3, 4*rt.Microsecond)
	ts.Add(b)

	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	return ts
}

func applyOne(t *testing.T, ts *Taskset, op PatchOp) (*Taskset, *PatchDelta) {
	t.Helper()
	out, pd, err := ApplyPatch(ts, Patch{Ops: []PatchOp{op}})
	if err != nil {
		t.Fatalf("ApplyPatch(%+v): %v", op, err)
	}
	return out, pd
}

func wantBits(t *testing.T, pd *PatchDelta, id rt.TaskID, want Change) {
	t.Helper()
	if got := pd.Changed[id]; got != want {
		t.Errorf("task %d change bits = %b, want %b", id, got, want)
	}
}

func TestPatchSetWCET(t *testing.T) {
	ts := patchBase(t)
	out, pd := applyOne(t, ts, PatchOp{Op: OpSetWCET, Task: 0, Vertex: 1, Value: 60 * rt.Microsecond})
	wantBits(t, pd, 0, ChangeWCETUp)
	if got := out.Task(0).Vertices[1].WCET; got != 60*rt.Microsecond {
		t.Errorf("patched WCET = %d", got)
	}
	if got := ts.Task(0).Vertices[1].WCET; got != 50*rt.Microsecond {
		t.Errorf("base mutated: WCET = %d", got)
	}

	_, pd = applyOne(t, ts, PatchOp{Op: OpSetWCET, Task: 0, Vertex: 1, Value: 20 * rt.Microsecond})
	wantBits(t, pd, 0, ChangeWCETDown)

	// Writing the old value back is not a change.
	_, pd = applyOne(t, ts, PatchOp{Op: OpSetWCET, Task: 0, Vertex: 1, Value: 50 * rt.Microsecond})
	wantBits(t, pd, 0, 0)
	if len(pd.Changed) != 0 {
		t.Errorf("no-op patch marked tasks: %v", pd.Changed)
	}
}

// TestPatchWCETFastPathMatchesRebuild pins the cloneWithWCETs fast path
// against the full constructor rebuild: forcing the slow path with a no-op
// structural edit must yield a hash-identical taskset and identical derived
// quantities.
func TestPatchWCETFastPathMatchesRebuild(t *testing.T) {
	ts := patchBase(t)
	bump := PatchOp{Op: OpSetWCET, Task: 0, Vertex: 2, Value: 300 * rt.Microsecond}
	fast, _ := applyOne(t, ts, bump)
	// set_period to the current period materializes a full taskEdit (slow
	// path) without changing anything.
	slow, _, err := ApplyPatch(ts, Patch{Ops: []PatchOp{
		{Op: OpSetPeriod, Task: 0, Value: ts.Task(0).Period}, bump}})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Hash() != slow.Hash() {
		t.Fatalf("fast path hash %s != rebuilt hash %s", fast.Hash(), slow.Hash())
	}
	ft, st := fast.Task(0), slow.Task(0)
	if ft.WCET() != st.WCET() || ft.LongestPath() != st.LongestPath() ||
		ft.NonCritWCET() != st.NonCritWCET() {
		t.Errorf("derived quantities diverge: fast{C=%d lp=%d} rebuilt{C=%d lp=%d}",
			ft.WCET(), ft.LongestPath(), st.WCET(), st.LongestPath())
	}
}

func TestPatchPointerSharing(t *testing.T) {
	ts := patchBase(t)
	out, _ := applyOne(t, ts, PatchOp{Op: OpSetWCET, Task: 0, Vertex: 0, Value: 101 * rt.Microsecond})
	if out.Task(1) != ts.Task(1) {
		t.Error("untouched task not shared by pointer")
	}
	if out.Task(0) == ts.Task(0) {
		t.Error("patched task shared with base")
	}
}

func TestPatchSetCSLen(t *testing.T) {
	ts := patchBase(t)
	out, pd := applyOne(t, ts, PatchOp{Op: OpSetCSLen, Task: 1, Resource: 0, Value: 20 * rt.Microsecond})
	wantBits(t, pd, 1, ChangeCSUp)
	if got := out.Task(1).CS(0); got != 20*rt.Microsecond {
		t.Errorf("patched CS = %d", got)
	}
	_, pd = applyOne(t, ts, PatchOp{Op: OpSetCSLen, Task: 1, Resource: 0, Value: 3 * rt.Microsecond})
	wantBits(t, pd, 1, ChangeCSDown)
}

func TestPatchSetRequest(t *testing.T) {
	ts := patchBase(t)
	_, pd := applyOne(t, ts, PatchOp{Op: OpSetRequest, Task: 0, Vertex: 1, Resource: 0, Count: 3})
	wantBits(t, pd, 0, ChangeReqUp)
	_, pd = applyOne(t, ts, PatchOp{Op: OpSetRequest, Task: 0, Vertex: 1, Resource: 0, Count: 1})
	wantBits(t, pd, 0, ChangeReqDown)
	// Crossing zero in either direction is a sharer flip, not Req{Up,Down}.
	_, pd = applyOne(t, ts, PatchOp{Op: OpSetRequest, Task: 0, Vertex: 1, Resource: 0, Count: 0})
	wantBits(t, pd, 0, ChangeSharers)
	_, pd = applyOne(t, ts, PatchOp{Op: OpSetRequest, Task: 0, Vertex: 0, Resource: 1, Count: 1})
	wantBits(t, pd, 0, ChangeSharers)
}

func TestPatchEdges(t *testing.T) {
	ts := patchBase(t)
	out, pd := applyOne(t, ts, PatchOp{Op: OpAddEdge, Task: 1, From: 0, To: 1})
	wantBits(t, pd, 1, ChangeEdges)
	if got := out.Task(1).LongestPath(); got != 350*rt.Microsecond {
		t.Errorf("serialized longest path = %d, want 350us", got)
	}
	_, pd = applyOne(t, ts, PatchOp{Op: OpRemoveEdge, Task: 0, From: 0, To: 1})
	wantBits(t, pd, 0, ChangeEdges)
}

func TestPatchTiming(t *testing.T) {
	ts := patchBase(t)
	_, pd := applyOne(t, ts, PatchOp{Op: OpSetPeriod, Task: 0, Value: 1500 * rt.Microsecond})
	wantBits(t, pd, 0, ChangePeriod)
	_, pd = applyOne(t, ts, PatchOp{Op: OpSetDeadline, Task: 0, Value: 800 * rt.Microsecond})
	wantBits(t, pd, 0, ChangeDeadline)
}

func TestPatchAddRemoveTask(t *testing.T) {
	ts := patchBase(t)
	nt := NewTask(7, 5000*rt.Microsecond, 5000*rt.Microsecond)
	nt.Priority = 9
	nt.AddVertex(100 * rt.Microsecond)
	out, pd := applyOne(t, ts, PatchOp{Op: OpAddTask, NewTask: nt})
	wantBits(t, pd, 7, ChangeAdded)
	if len(out.Tasks) != 3 {
		t.Fatalf("task count = %d, want 3", len(out.Tasks))
	}
	// Base priorities must survive the add verbatim.
	if out.Task(0).Priority != 2 || out.Task(1).Priority != 1 || out.Task(7).Priority != 9 {
		t.Errorf("priorities reshuffled: %d %d %d",
			out.Task(0).Priority, out.Task(1).Priority, out.Task(7).Priority)
	}

	out2, pd := applyOne(t, ts, PatchOp{Op: OpRemoveTask, Task: 0})
	wantBits(t, pd, 0, ChangeRemoved)
	if len(out2.Tasks) != 1 || out2.Tasks[0].ID != 1 {
		t.Fatalf("remove_task left %v", out2.Tasks)
	}
}

func TestPatchErrors(t *testing.T) {
	ts := patchBase(t)
	cases := []struct {
		op   PatchOp
		code string
	}{
		{PatchOp{Op: "warp_time", Task: 0}, "unknown_op"},
		{PatchOp{Op: OpSetWCET, Task: 9, Vertex: 0, Value: 1}, "unknown_task"},
		{PatchOp{Op: OpSetWCET, Task: 0, Vertex: 99, Value: 1}, "unknown_vertex"},
		{PatchOp{Op: OpSetWCET, Task: 0, Vertex: 0, Value: 0}, "bad_value"},
		{PatchOp{Op: OpSetWCET, Task: 0, Vertex: 1, Value: 1}, "finalize"}, // below CS work
		{PatchOp{Op: OpSetCSLen, Task: 0, Resource: 5, Value: 1}, "unknown_resource"},
		{PatchOp{Op: OpSetCSLen, Task: 0, Resource: 0, Value: -1}, "bad_value"},
		{PatchOp{Op: OpSetRequest, Task: 0, Vertex: 1, Resource: 0, Count: -1}, "bad_value"},
		{PatchOp{Op: OpAddEdge, Task: 0, From: 1, To: 1}, "bad_value"},
		{PatchOp{Op: OpAddEdge, Task: 0, From: 2, To: 0}, "finalize"}, // cycle
		{PatchOp{Op: OpRemoveEdge, Task: 0, From: 2, To: 0}, "unknown_edge"},
		{PatchOp{Op: OpSetPeriod, Task: 0, Value: 0}, "bad_value"},
		{PatchOp{Op: OpSetDeadline, Task: 0, Value: 1500 * rt.Microsecond}, "finalize"}, // deadline > period
		{PatchOp{Op: OpAddTask}, "bad_value"},
		{PatchOp{Op: OpRemoveTask, Task: 42}, "unknown_task"},
	}
	for _, c := range cases {
		_, _, err := ApplyPatch(ts, Patch{Ops: []PatchOp{c.op}})
		perr, ok := err.(*PatchError)
		if !ok {
			t.Errorf("op %+v: got %v, want *PatchError(%s)", c.op, err, c.code)
			continue
		}
		if perr.Code != c.code {
			t.Errorf("op %+v: code = %q, want %q", c.op, perr.Code, c.code)
		}
	}

	// Duplicate added ID.
	nt := NewTask(0, 1000*rt.Microsecond, 1000*rt.Microsecond)
	nt.AddVertex(1)
	_, _, err := ApplyPatch(ts, Patch{Ops: []PatchOp{{Op: OpAddTask, NewTask: nt}}})
	if perr, ok := err.(*PatchError); !ok || perr.Code != "duplicate_task" {
		t.Errorf("duplicate add: got %v, want duplicate_task", err)
	}
}

// TestPatchEquivalentToDirectConstruction pins the hash contract the
// server's cache relies on: patching a base must produce the same content
// address as building the patched taskset from scratch.
func TestPatchEquivalentToDirectConstruction(t *testing.T) {
	ts := patchBase(t)
	out, _ := applyOne(t, ts, PatchOp{Op: OpSetWCET, Task: 1, Vertex: 1, Value: 175 * rt.Microsecond})

	direct := NewTaskset(4, 2)
	a := NewTask(0, 1000*rt.Microsecond, 900*rt.Microsecond)
	a.Priority = 2
	a.AddVertex(100 * rt.Microsecond)
	a.AddVertex(50 * rt.Microsecond)
	a.AddVertex(80 * rt.Microsecond)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	a.AddRequest(1, 0, 2, 5*rt.Microsecond)
	direct.Add(a)
	b := NewTask(1, 2000*rt.Microsecond, 2000*rt.Microsecond)
	b.Priority = 1
	b.AddVertex(200 * rt.Microsecond)
	b.AddVertex(175 * rt.Microsecond)
	b.AddRequest(0, 0, 1, 10*rt.Microsecond)
	b.AddRequest(1, 1, 3, 4*rt.Microsecond)
	direct.Add(b)
	if err := direct.Finalize(); err != nil {
		t.Fatal(err)
	}
	if out.Hash() != direct.Hash() {
		t.Fatalf("patched hash %s != directly built hash %s", out.Hash(), direct.Hash())
	}
}

func TestPatchAtomicity(t *testing.T) {
	ts := patchBase(t)
	before := ts.Hash()
	// Valid op followed by an invalid one: no partial result, base intact.
	_, _, err := ApplyPatch(ts, Patch{Ops: []PatchOp{
		{Op: OpSetWCET, Task: 0, Vertex: 0, Value: 500 * rt.Microsecond},
		{Op: OpSetWCET, Task: 9, Vertex: 0, Value: 1},
	}})
	if err == nil {
		t.Fatal("invalid second op accepted")
	}
	if ts.Hash() != before {
		t.Fatal("failed patch mutated the base taskset")
	}
}
