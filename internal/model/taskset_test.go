package model

import (
	"math"
	"testing"

	"dpcpp/internal/rt"
)

func twoTaskSet(t *testing.T) *Taskset {
	t.Helper()
	ts := NewTaskset(4, 2)

	// Task 0: period 100us, uses l0 and l1.
	t0 := NewTask(0, 100*rt.Microsecond, 100*rt.Microsecond)
	a := t0.AddVertex(10 * rt.Microsecond)
	b := t0.AddVertex(10 * rt.Microsecond)
	t0.AddEdge(a, b)
	t0.AddRequest(a, 0, 2, 2*rt.Microsecond)
	t0.AddRequest(b, 1, 1, 3*rt.Microsecond)
	ts.Add(t0)

	// Task 1: period 50us (shorter, so RM gives it higher priority), uses l0.
	t1 := NewTask(1, 50*rt.Microsecond, 50*rt.Microsecond)
	c := t1.AddVertex(8 * rt.Microsecond)
	t1.AddRequest(c, 0, 1, 4*rt.Microsecond)
	ts.Add(t1)

	if err := ts.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return ts
}

func TestRMPriorityAssignment(t *testing.T) {
	ts := twoTaskSet(t)
	t0, t1 := ts.Task(0), ts.Task(1)
	if !t1.Priority.Higher(t0.Priority) {
		t.Errorf("RM: task 1 (T=50us) should outrank task 0 (T=100us); got %d vs %d",
			t1.Priority, t0.Priority)
	}
}

func TestRMTieBreakByID(t *testing.T) {
	ts := NewTaskset(2, 0)
	for id := 0; id < 3; id++ {
		task := NewTask(rt.TaskID(id), rt.Millisecond, rt.Millisecond)
		task.AddVertex(rt.Microsecond)
		ts.Add(task)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if !(ts.Task(0).Priority > ts.Task(1).Priority && ts.Task(1).Priority > ts.Task(2).Priority) {
		t.Errorf("equal periods should break ties by ID: got %d, %d, %d",
			ts.Task(0).Priority, ts.Task(1).Priority, ts.Task(2).Priority)
	}
}

func TestExplicitPrioritiesPreserved(t *testing.T) {
	ts := NewTaskset(2, 0)
	a := NewTask(0, 50*rt.Microsecond, 50*rt.Microsecond)
	a.AddVertex(rt.Microsecond)
	a.Priority = 1 // explicitly the lower priority despite the shorter period
	b := NewTask(1, 100*rt.Microsecond, 100*rt.Microsecond)
	b.AddVertex(rt.Microsecond)
	b.Priority = 2
	ts.Add(a)
	ts.Add(b)
	if err := ts.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if ts.Task(0).Priority != 1 || ts.Task(1).Priority != 2 {
		t.Errorf("explicit priorities were overwritten: %d, %d",
			ts.Task(0).Priority, ts.Task(1).Priority)
	}
}

func TestDuplicatePriorityRejected(t *testing.T) {
	ts := NewTaskset(2, 0)
	for id := 0; id < 2; id++ {
		task := NewTask(rt.TaskID(id), rt.Millisecond, rt.Millisecond)
		task.AddVertex(rt.Microsecond)
		task.Priority = 7
		ts.Add(task)
	}
	if err := ts.Finalize(); err == nil {
		t.Error("Finalize accepted duplicate priorities")
	}
}

func TestDuplicateTaskIDRejected(t *testing.T) {
	ts := NewTaskset(2, 0)
	for i := 0; i < 2; i++ {
		task := NewTask(3, rt.Millisecond, rt.Millisecond)
		task.AddVertex(rt.Microsecond)
		ts.Add(task)
	}
	if err := ts.Finalize(); err == nil {
		t.Error("Finalize accepted duplicate task IDs")
	}
}

func TestResourceClassification(t *testing.T) {
	ts := twoTaskSet(t)
	if !ts.IsGlobal(0) {
		t.Error("l0 is shared by two tasks but classified local")
	}
	if !ts.IsLocal(1) {
		t.Error("l1 is used by one task but classified global")
	}
	if g := ts.GlobalResources(); len(g) != 1 || g[0] != 0 {
		t.Errorf("GlobalResources = %v, want [0]", g)
	}
}

func TestSharersOrderedByPriority(t *testing.T) {
	ts := twoTaskSet(t)
	sh := ts.SharedBy(0)
	if len(sh) != 2 || sh[0] != 1 || sh[1] != 0 {
		t.Errorf("SharedBy(l0) = %v, want [1 0] (descending priority)", sh)
	}
}

func TestResourceUtilization(t *testing.T) {
	ts := twoTaskSet(t)
	// l0: task0 contributes 2*2/100, task1 contributes 1*4/50 = 0.04 + 0.08.
	if got, want := ts.ResourceUtilization(0), 0.12; math.Abs(got-want) > 1e-12 {
		t.Errorf("ResourceUtilization(l0) = %v, want %v", got, want)
	}
	// l1: only task0: 1*3/100.
	if got, want := ts.ResourceUtilization(1), 0.03; math.Abs(got-want) > 1e-12 {
		t.Errorf("ResourceUtilization(l1) = %v, want %v", got, want)
	}
}

func TestCeilingQueries(t *testing.T) {
	ts := twoTaskSet(t)
	hi := ts.Task(1).Priority
	lo := ts.Task(0).Priority
	if got := ts.Ceiling(0); got != hi {
		t.Errorf("Ceiling(l0) = %d, want %d", got, hi)
	}
	if got := ts.Ceiling(1); got != lo {
		t.Errorf("Ceiling(l1) = %d, want %d", got, lo)
	}
	if !ts.CeilingAtLeast(0, hi) {
		t.Error("CeilingAtLeast(l0, hi) = false, want true")
	}
	if ts.CeilingAtLeast(1, hi) {
		t.Error("CeilingAtLeast(l1, hi) = true, want false: only the low task uses l1")
	}
}

func TestByPriorityDesc(t *testing.T) {
	ts := twoTaskSet(t)
	order := ts.ByPriorityDesc()
	for i := 1; i < len(order); i++ {
		if order[i-1].Priority < order[i].Priority {
			t.Errorf("ByPriorityDesc not sorted at %d", i)
		}
	}
}

func TestTotalUtilization(t *testing.T) {
	ts := twoTaskSet(t)
	want := 20.0/100.0 + 8.0/50.0
	if got := ts.TotalUtilization(); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalUtilization = %v, want %v", got, want)
	}
}

func TestTooFewProcessorsRejected(t *testing.T) {
	ts := NewTaskset(1, 0)
	task := NewTask(0, rt.Millisecond, rt.Millisecond)
	task.AddVertex(rt.Microsecond)
	ts.Add(task)
	if err := ts.Finalize(); err == nil {
		t.Error("Finalize accepted m=1")
	}
}
