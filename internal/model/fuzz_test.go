package model

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"dpcpp/internal/rt"
)

// FuzzTasksetJSON fuzzes the taskset JSON surface (cmd/taskgen output,
// audit fixtures, cmd/dpcpsim input): any byte slice that decodes into a
// valid taskset must re-encode bit-stably — Taskset → JSON → Taskset →
// JSON yields identical bytes — and the round-tripped taskset must agree
// on every derived quantity. Inputs Finalize rejects are simply skipped;
// the fuzzer's other job is proving Finalize rejects malformed documents
// instead of panicking (hostile vertex IDs, negative CS lengths, negative
// resource counts, overflowing WCETs).
//
// The seed corpus lives in testdata/fuzz/FuzzTasksetJSON; run
// `go test -fuzz FuzzTasksetJSON ./internal/model` to hunt.
func FuzzTasksetJSON(f *testing.F) {
	f.Add([]byte(`{"tasks":[{"id":0,"period":1000,"deadline":1000,"vertices":[{"id":0,"wcet":100}]}],"num_resources":0,"num_procs":2}`))
	f.Add([]byte(`{"tasks":[],"num_resources":-1,"num_procs":2}`))
	f.Add([]byte(`{"tasks":[{"id":0,"period":1000,"deadline":1000,"vertices":[{"id":7,"wcet":100}]}],"num_resources":0,"num_procs":2}`))
	f.Add([]byte(`{"tasks":[{"id":0,"period":1000,"deadline":1000,"priority":1,"vertices":[{"id":0,"wcet":100,"requests":{"0":2}}],"cslen":[-5]}],"num_resources":1,"num_procs":2}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := DecodeTaskset(bytes.NewReader(data))
		if err != nil {
			return // malformed or invalid: rejection (not a panic) is the contract
		}
		var first bytes.Buffer
		if err := EncodeTaskset(&first, ts); err != nil {
			t.Fatalf("encoding a decoded taskset: %v", err)
		}
		ts2, err := DecodeTaskset(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding our own encoding: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := EncodeTaskset(&second, ts2); err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip not bit-stable:\nfirst:  %s\nsecond: %s",
				first.String(), second.String())
		}
		// The content address must survive the round trip bit-exactly:
		// the server's result cache keys on it.
		if ts.Hash() != ts2.Hash() {
			t.Fatalf("hash not stable across round trip:\nbefore: %s (%s)\nafter:  %s (%s)",
				ts.Hash(), ts.AppendCanonical(nil), ts2.Hash(), ts2.AppendCanonical(nil))
		}
		if len(ts2.Tasks) != len(ts.Tasks) {
			t.Fatalf("task count changed: %d -> %d", len(ts.Tasks), len(ts2.Tasks))
		}
		for i := range ts.Tasks {
			a, b := ts.Tasks[i], ts2.Tasks[i]
			if a.WCET() != b.WCET() || a.LongestPath() != b.LongestPath() ||
				a.Priority != b.Priority || a.Deadline != b.Deadline {
				t.Fatalf("task %d: derived quantities diverged across round trip", i)
			}
			for q := 0; q < ts.NumResources; q++ {
				rid := rt.ResourceID(q)
				if a.NumRequests(rid) != b.NumRequests(rid) || a.CS(rid) != b.CS(rid) {
					t.Fatalf("task %d resource %d: request profile diverged", i, q)
				}
			}
		}
	})
}

// FuzzTasksetPatch fuzzes the patch surface (POST /v1/analyze/delta): for
// any base taskset and any patch document, ApplyPatch must either reject
// with a structured *PatchError — never a panic — or produce a finalized
// taskset whose content address is reproducible: applying the same patch
// twice yields identical hashes, a JSON round trip of the result is
// hash-stable (the patched set is a fully valid document even though it
// shares untouched Task pointers with the base), and the base itself stays
// bit-identical.
//
// Run `go test -fuzz FuzzTasksetPatch ./internal/model` to hunt.
func FuzzTasksetPatch(f *testing.F) {
	base := `{"tasks":[{"id":0,"period":1000,"deadline":1000,"priority":2,"vertices":[{"id":0,"wcet":100},{"id":1,"wcet":50,"requests":{"0":1}}],"edges":[{"from":0,"to":1}],"cslen":[5,0]},{"id":1,"period":2000,"deadline":2000,"priority":1,"vertices":[{"id":0,"wcet":200}]}],"num_resources":2,"num_procs":4}`
	f.Add([]byte(base), []byte(`{"ops":[{"op":"set_wcet","task":0,"vertex":1,"value":80}]}`))
	f.Add([]byte(base), []byte(`{"ops":[{"op":"set_request","task":1,"vertex":0,"resource":1,"count":2},{"op":"set_cslen","task":1,"resource":1,"value":7}]}`))
	f.Add([]byte(base), []byte(`{"ops":[{"op":"remove_task","task":0},{"op":"add_task","new_task":{"id":5,"period":500,"deadline":500,"priority":9,"vertices":[{"id":0,"wcet":10}]}}]}`))
	f.Add([]byte(base), []byte(`{"ops":[{"op":"set_wcet","task":0,"vertex":1,"value":-3}]}`))
	f.Add([]byte(base), []byte(`{"ops":[{"op":"add_edge","task":0,"from":1,"to":0}]}`))

	f.Fuzz(func(t *testing.T, tsData, patchData []byte) {
		ts, err := DecodeTaskset(bytes.NewReader(tsData))
		if err != nil {
			return
		}
		var p Patch
		if err := json.Unmarshal(patchData, &p); err != nil {
			return
		}
		baseHash := ts.Hash()
		out, pd, err := ApplyPatch(ts, p)
		if ts.Hash() != baseHash {
			t.Fatal("ApplyPatch mutated the base taskset")
		}
		if err != nil {
			var perr *PatchError
			if !errors.As(err, &perr) {
				t.Fatalf("rejection is not a *PatchError: %T %v", err, err)
			}
			if out != nil || pd != nil {
				t.Fatal("partial result alongside an error")
			}
			return
		}
		again, _, err := ApplyPatch(ts, p)
		if err != nil {
			t.Fatalf("second application rejected: %v", err)
		}
		if out.Hash() != again.Hash() {
			t.Fatalf("patching is not deterministic: %s vs %s", out.Hash(), again.Hash())
		}
		var buf bytes.Buffer
		if err := EncodeTaskset(&buf, out); err != nil {
			t.Fatalf("encoding patched taskset: %v", err)
		}
		rt2, err := DecodeTaskset(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding patched taskset: %v\n%s", err, buf.String())
		}
		if rt2.Hash() != out.Hash() {
			t.Fatalf("patched hash unstable across JSON round trip: %s vs %s", out.Hash(), rt2.Hash())
		}
		// Untouched tasks must be absent from the delta; touched ones present.
		for id, c := range pd.Changed {
			if c == 0 {
				t.Fatalf("task %d marked changed with zero bits", id)
			}
		}
	})
}
