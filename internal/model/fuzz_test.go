package model

import (
	"bytes"
	"testing"

	"dpcpp/internal/rt"
)

// FuzzTasksetJSON fuzzes the taskset JSON surface (cmd/taskgen output,
// audit fixtures, cmd/dpcpsim input): any byte slice that decodes into a
// valid taskset must re-encode bit-stably — Taskset → JSON → Taskset →
// JSON yields identical bytes — and the round-tripped taskset must agree
// on every derived quantity. Inputs Finalize rejects are simply skipped;
// the fuzzer's other job is proving Finalize rejects malformed documents
// instead of panicking (hostile vertex IDs, negative CS lengths, negative
// resource counts, overflowing WCETs).
//
// The seed corpus lives in testdata/fuzz/FuzzTasksetJSON; run
// `go test -fuzz FuzzTasksetJSON ./internal/model` to hunt.
func FuzzTasksetJSON(f *testing.F) {
	f.Add([]byte(`{"tasks":[{"id":0,"period":1000,"deadline":1000,"vertices":[{"id":0,"wcet":100}]}],"num_resources":0,"num_procs":2}`))
	f.Add([]byte(`{"tasks":[],"num_resources":-1,"num_procs":2}`))
	f.Add([]byte(`{"tasks":[{"id":0,"period":1000,"deadline":1000,"vertices":[{"id":7,"wcet":100}]}],"num_resources":0,"num_procs":2}`))
	f.Add([]byte(`{"tasks":[{"id":0,"period":1000,"deadline":1000,"priority":1,"vertices":[{"id":0,"wcet":100,"requests":{"0":2}}],"cslen":[-5]}],"num_resources":1,"num_procs":2}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := DecodeTaskset(bytes.NewReader(data))
		if err != nil {
			return // malformed or invalid: rejection (not a panic) is the contract
		}
		var first bytes.Buffer
		if err := EncodeTaskset(&first, ts); err != nil {
			t.Fatalf("encoding a decoded taskset: %v", err)
		}
		ts2, err := DecodeTaskset(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding our own encoding: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := EncodeTaskset(&second, ts2); err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip not bit-stable:\nfirst:  %s\nsecond: %s",
				first.String(), second.String())
		}
		// The content address must survive the round trip bit-exactly:
		// the server's result cache keys on it.
		if ts.Hash() != ts2.Hash() {
			t.Fatalf("hash not stable across round trip:\nbefore: %s (%s)\nafter:  %s (%s)",
				ts.Hash(), ts.AppendCanonical(nil), ts2.Hash(), ts2.AppendCanonical(nil))
		}
		if len(ts2.Tasks) != len(ts.Tasks) {
			t.Fatalf("task count changed: %d -> %d", len(ts.Tasks), len(ts2.Tasks))
		}
		for i := range ts.Tasks {
			a, b := ts.Tasks[i], ts2.Tasks[i]
			if a.WCET() != b.WCET() || a.LongestPath() != b.LongestPath() ||
				a.Priority != b.Priority || a.Deadline != b.Deadline {
				t.Fatalf("task %d: derived quantities diverged across round trip", i)
			}
			for q := 0; q < ts.NumResources; q++ {
				rid := rt.ResourceID(q)
				if a.NumRequests(rid) != b.NumRequests(rid) || a.CS(rid) != b.CS(rid) {
					t.Fatalf("task %d resource %d: request profile diverged", i, q)
				}
			}
		}
	})
}
