package model

import (
	"bytes"
	"strings"
	"testing"

	"dpcpp/internal/rt"
)

func TestTasksetJSONRoundTrip(t *testing.T) {
	ts := NewTaskset(4, 2)
	task := paperTaskGi(t)
	ts.Add(task)
	other := NewTask(1, 30*rt.Microsecond, 30*rt.Microsecond)
	vo := other.AddVertex(5 * rt.Microsecond)
	other.AddRequest(vo, 0, 2, rt.Microsecond)
	ts.Add(other)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := EncodeTaskset(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTaskset(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.NumProcs != ts.NumProcs || got.NumResources != ts.NumResources {
		t.Errorf("header mismatch: %d/%d vs %d/%d",
			got.NumProcs, got.NumResources, ts.NumProcs, ts.NumResources)
	}
	if len(got.Tasks) != len(ts.Tasks) {
		t.Fatalf("task count %d, want %d", len(got.Tasks), len(ts.Tasks))
	}
	for i := range ts.Tasks {
		a, b := ts.Tasks[i], got.Tasks[i]
		if a.WCET() != b.WCET() || a.LongestPath() != b.LongestPath() ||
			a.Period != b.Period || a.Priority != b.Priority {
			t.Errorf("task %d: derived quantities differ after round trip", i)
		}
		for q := 0; q < ts.NumResources; q++ {
			if a.NumRequests(rt.ResourceID(q)) != b.NumRequests(rt.ResourceID(q)) {
				t.Errorf("task %d resource %d: request counts differ", i, q)
			}
		}
	}
	// Resource classification must survive.
	if got.IsGlobal(0) != ts.IsGlobal(0) || got.IsGlobal(1) != ts.IsGlobal(1) {
		t.Error("resource classification changed across round trip")
	}
}

func TestDecodeTasksetRejectsGarbage(t *testing.T) {
	if _, err := DecodeTaskset(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid JSON but invalid taskset (m=0).
	if _, err := DecodeTaskset(strings.NewReader(`{"tasks":[],"num_resources":0,"num_procs":0}`)); err == nil {
		t.Error("invalid taskset accepted")
	}
}
