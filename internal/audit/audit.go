// Package audit is the differential soundness harness of the repository:
// an always-on fuzzer that generates adversarial tasksets far outside the
// paper's Sec. VII-A grid (internal/taskgen's Shape families), runs every
// schedulability analysis on each, and cross-checks the results against the
// discrete-event simulator and against each other.
//
// The invariants checked per taskset are:
//
//   - Soundness: whenever an analysis certifies the taskset, no simulated
//     execution under the matching runtime protocol — across critical-
//     section placements, release offsets and several (near-)hyperperiods —
//     may miss a deadline, and no task's observed response may exceed its
//     analytical WCRT bound. (FED-FP deliberately ignores shared resources
//     and is cross-checked only on request-free tasksets.)
//   - Protocol invariants: every simulation run must finish with an empty
//     sim.Violations() list, and DPCP-p runs must respect Lemma 1 (at most
//     one lower-priority blocker per request).
//   - EP vs EN: on one identical partition, the per-task DPCP-p-EP bound
//     never exceeds the DPCP-p-EN bound (the EP view collapse is a
//     refinement, never a relaxation).
//   - Monotonicity: inflating every vertex WCET (holding structure,
//     periods, priorities and requests fixed) never shrinks any per-task
//     bound on an identical partition, for every analysis.
//   - Delta: for each certified DPCP-p verdict, a deterministic random
//     patch chain driven through the incremental analyzer
//     (analysis.Delta) must produce verdicts bit-identical to a full
//     re-analysis of every patched taskset.
//
// Any violating taskset is shrunk to a minimal reproduction (drop tasks,
// then vertices, then halve WCETs and request counts) and serialized via
// model/json into a fixture directory as a permanent regression input;
// violations are reported, never suppressed.
//
// Audit jobs are (taskset, method) pairs drained through the shared
// experiments worker pool (experiments.ParallelFor); cross-method checks
// run when a taskset's last method job completes. Runs are deterministic:
// every generation and simulation seed is a pure function of (base seed,
// taskset index, method), never of worker scheduling.
package audit

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/taskgen"
)

// Config tunes one audit run.
type Config struct {
	// Count is the number of adversarial tasksets to generate and check.
	Count int
	// Seed is the base seed; every per-taskset seed derives from it.
	Seed int64
	// Methods restricts the audited analyses (default: all five).
	Methods []analysis.Method
	// SimRuns is the number of release-offset variations simulated per
	// certified (taskset, method) verdict and CS placement: one synchronous
	// release plus SimRuns-1 random offset vectors. Default 3.
	SimRuns int
	// HyperPeriods sets the simulation horizon as a multiple of the longest
	// period (for the near-harmonic contention shape this is a true
	// hyperperiod multiple). Default 3.
	HyperPeriods int
	// TimeBudget stops admitting new tasksets once exceeded (0 = none);
	// tasksets already in flight complete, so reports stay consistent.
	TimeBudget time.Duration
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// FixtureDir, when non-empty, receives the shrunken JSON reproduction
	// of every violating taskset.
	FixtureDir string
	// PathCap bounds EP path enumeration (0 = analysis default).
	PathCap int
	// Gen overrides the adversarial generator (nil = taskgen.NewAdversarial).
	Gen *taskgen.Adversarial
}

func (c Config) normalized() Config {
	if len(c.Methods) == 0 {
		c.Methods = analysis.Methods()
	}
	if c.SimRuns <= 0 {
		c.SimRuns = 3
	}
	if c.HyperPeriods <= 0 {
		c.HyperPeriods = 3
	}
	// Workers is passed through as-is: experiments.ParallelFor normalizes
	// <= 0 to GOMAXPROCS.
	if c.Gen == nil {
		c.Gen = taskgen.NewAdversarial()
	}
	return c
}

// Violation is one observed invariant breach.
type Violation struct {
	// Index is the taskset's position within the audit run. Seed is the
	// exact generator seed (structural retries already folded in):
	// feeding rand.New(rand.NewSource(Seed)) to the adversarial generator
	// regenerates the taskset, and the simulation offsets derive from
	// Seed too, so a report alone reproduces the violation.
	Index int    `json:"index"`
	Seed  int64  `json:"seed"`
	Shape string `json:"shape"`
	// Method is the analysis involved ("" for cross-method checks).
	Method string `json:"method,omitempty"`
	// Kind classifies the breach: deadline-miss, bound-exceeded,
	// sim-invariant, sim-error, lemma1, ep-exceeds-en, non-monotone,
	// delta-mismatch.
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	// Fixture is the path of the shrunken reproduction, when written.
	Fixture string `json:"fixture,omitempty"`
}

func (v Violation) String() string {
	return fmt.Sprintf("taskset %d (seed %d, %s) %s[%s]: %s",
		v.Index, v.Seed, v.Shape, v.Kind, v.Method, v.Detail)
}

// Report aggregates one audit run.
type Report struct {
	Count       int            `json:"count"`        // tasksets requested
	Generated   int            `json:"generated"`    // tasksets generated and checked
	GenFailures int            `json:"gen_failures"` // generation attempts that failed structurally
	Skipped     int            `json:"skipped"`      // tasksets skipped by the time budget
	ByShape     map[string]int `json:"by_shape"`
	Schedulable map[string]int `json:"schedulable"` // certified verdicts per method
	SimRuns     int64          `json:"sim_runs"`
	CrossChecks int            `json:"cross_checks"` // tasksets with EP/EN + monotonicity checks
	DeltaChecks int            `json:"delta_checks"` // patch chains driven through the delta leg
	Violations  []Violation    `json:"violations"`
	ElapsedSec  float64        `json:"elapsed_seconds"`
	TimedOut    bool           `json:"timed_out"`
}

// seedFor derives a deterministic per-(index, stage) seed.
func seedFor(base int64, index int, stage string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", base, index, stage)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// cell is the shared state of one taskset's method jobs.
type cell struct {
	once      sync.Once
	set       *genTaskset
	results   []methodVerdict // indexed like cfg.Methods
	ran       []bool
	remaining atomic.Int64
	skipped   bool
}

// Run executes the audit and returns its report. Violations are returned
// in the report (sorted by taskset index), never as an error; the only
// hard failures are configuration mistakes.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("audit: non-positive count %d", cfg.Count)
	}
	start := time.Now()
	var deadline time.Time
	if cfg.TimeBudget > 0 {
		deadline = start.Add(cfg.TimeBudget)
	}

	rep := &Report{
		Count:       cfg.Count,
		ByShape:     make(map[string]int),
		Schedulable: make(map[string]int),
	}
	cells := make([]cell, cfg.Count)
	for i := range cells {
		cells[i].results = make([]methodVerdict, len(cfg.Methods))
		cells[i].ran = make([]bool, len(cfg.Methods))
		cells[i].remaining.Store(int64(len(cfg.Methods)))
	}

	var mu sync.Mutex // guards rep
	var simRuns atomic.Int64

	nm := len(cfg.Methods)
	experiments.ParallelFor(cfg.Workers, cfg.Count*nm, func(_, idx int) {
		i, mi := idx/nm, idx%nm
		c := &cells[i]
		c.once.Do(func() {
			if !deadline.IsZero() && time.Now().After(deadline) {
				c.skipped = true
				return
			}
			c.set = generate(cfg, i)
		})
		if !c.skipped && c.set.err == nil {
			c.results[mi] = checkMethod(cfg, c.set, mi, &simRuns)
			c.ran[mi] = true
		}
		if c.remaining.Add(-1) != 0 {
			return
		}
		// Last method job of taskset i: cross-method checks + fold.
		var vs []Violation
		crossed := false
		chains := 0
		if c.set != nil && c.set.err == nil && allRan(c.ran) {
			for _, r := range c.results {
				vs = append(vs, r.violations...)
			}
			vs = append(vs, crossChecks(cfg, c.set, c.results)...)
			var dvs []Violation
			dvs, chains = deltaChecks(cfg, c.set, c.results)
			vs = append(vs, dvs...)
			crossed = true
		}
		if len(vs) > 0 {
			vs = shrinkAndFix(cfg, c.set, vs)
		}
		mu.Lock()
		defer mu.Unlock()
		switch {
		case c.skipped:
			rep.Skipped++
		case c.set.err != nil:
			rep.GenFailures++
		default:
			rep.Generated++
			rep.ByShape[c.set.label]++
			for mi2, r := range c.results {
				if c.ran[mi2] && r.res.Schedulable {
					rep.Schedulable[string(cfg.Methods[mi2])]++
				}
			}
			if crossed {
				rep.CrossChecks++
			}
			rep.DeltaChecks += chains
			rep.Violations = append(rep.Violations, vs...)
		}
	})

	sort.Slice(rep.Violations, func(a, b int) bool {
		if rep.Violations[a].Index != rep.Violations[b].Index {
			return rep.Violations[a].Index < rep.Violations[b].Index
		}
		return rep.Violations[a].Kind < rep.Violations[b].Kind
	})
	rep.SimRuns = simRuns.Load()
	rep.ElapsedSec = time.Since(start).Seconds()
	rep.TimedOut = rep.Skipped > 0
	return rep, nil
}

func allRan(ran []bool) bool {
	for _, ok := range ran {
		if !ok {
			return false
		}
	}
	return true
}

// genTaskset is one generated taskset plus its provenance. label is the
// shape name for generated tasksets and "fixture" for replayed ones.
type genTaskset struct {
	index int
	seed  int64
	label string
	ts    *model.Taskset
	err   error
}

// generate draws taskset i; a handful of structural retries mirrors the
// experiment harness. The recorded seed is the one of the successful
// attempt, so reports and fixture names always name a seed that
// regenerates the taskset directly.
func generate(cfg Config, i int) *genTaskset {
	base := seedFor(cfg.Seed, i, "gen")
	g := &genTaskset{index: i, seed: base}
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		seed := base + int64(attempt)*7919
		r := rand.New(rand.NewSource(seed))
		ts, shape, err := cfg.Gen.Taskset(r)
		if err == nil {
			g.ts, g.label, g.seed = ts, shape.String(), seed
			return g
		}
		lastErr = err
	}
	g.err = lastErr
	return g
}
