package audit

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

// taskSpec is an editable, unfinalized copy of one task; model.Task cannot
// be mutated after Finalize, so shrinking operates on specs and rebuilds.
type taskSpec struct {
	id       rt.TaskID
	period   rt.Time
	deadline rt.Time
	priority rt.Priority
	wcet     []rt.Time               // per vertex
	reqs     []map[rt.ResourceID]int // per vertex
	edges    [][2]int
	cs       map[rt.ResourceID]rt.Time
}

func specOf(t *model.Task) *taskSpec {
	s := &taskSpec{id: t.ID, period: t.Period, deadline: t.Deadline, priority: t.Priority,
		cs: make(map[rt.ResourceID]rt.Time)}
	for _, v := range t.Vertices {
		s.wcet = append(s.wcet, v.WCET)
		reqs := make(map[rt.ResourceID]int, len(v.Requests))
		for q, n := range v.Requests {
			if n > 0 {
				reqs[q] = n
				s.cs[q] = t.CS(q)
			}
		}
		s.reqs = append(s.reqs, reqs)
	}
	for _, e := range t.Edges {
		s.edges = append(s.edges, [2]int{int(e.From), int(e.To)})
	}
	return s
}

// csNeed returns the total critical-section length of vertex x, the lower
// bound on its WCET.
func (s *taskSpec) csNeed(x int) rt.Time {
	var total rt.Time
	for q, n := range s.reqs[x] {
		total += rt.SatMul(int64(n), s.cs[q])
	}
	return total
}

// dropVertex removes vertex x, bridging its predecessors to its successors
// so every remaining chain stays intact.
func (s *taskSpec) dropVertex(x int) {
	var preds, succs []int
	var kept [][2]int
	for _, e := range s.edges {
		switch {
		case e[1] == x:
			preds = append(preds, e[0])
		case e[0] == x:
			succs = append(succs, e[1])
		default:
			kept = append(kept, e)
		}
	}
	for _, p := range preds {
		for _, c := range succs {
			kept = append(kept, [2]int{p, c})
		}
	}
	seen := make(map[[2]int]bool, len(kept))
	s.edges = s.edges[:0]
	for _, e := range kept {
		if e[0] > x {
			e[0]--
		}
		if e[1] > x {
			e[1]--
		}
		if !seen[e] {
			seen[e] = true
			s.edges = append(s.edges, e)
		}
	}
	s.wcet = append(s.wcet[:x], s.wcet[x+1:]...)
	s.reqs = append(s.reqs[:x], s.reqs[x+1:]...)
}

func (s *taskSpec) clone() *taskSpec {
	c := &taskSpec{id: s.id, period: s.period, deadline: s.deadline, priority: s.priority,
		wcet: append([]rt.Time(nil), s.wcet...),
		cs:   make(map[rt.ResourceID]rt.Time, len(s.cs))}
	for q, l := range s.cs {
		c.cs[q] = l
	}
	for _, reqs := range s.reqs {
		m := make(map[rt.ResourceID]int, len(reqs))
		for q, n := range reqs {
			m[q] = n
		}
		c.reqs = append(c.reqs, m)
	}
	c.edges = append([][2]int(nil), s.edges...)
	return c
}

func (s *taskSpec) build() *model.Task {
	t := model.NewTask(s.id, s.period, s.deadline)
	t.Priority = s.priority
	for _, w := range s.wcet {
		t.AddVertex(w)
	}
	for _, e := range s.edges {
		t.AddEdge(rt.VertexID(e[0]), rt.VertexID(e[1]))
	}
	for x, reqs := range s.reqs {
		for q, n := range reqs {
			t.AddRequest(rt.VertexID(x), q, n, s.cs[q])
		}
	}
	return t
}

// buildTaskset finalizes specs into a taskset; nil on validation failure
// (a shrinking step that broke a model constraint is simply not taken).
func buildTaskset(specs []*taskSpec, m, nr int) *model.Taskset {
	ts := model.NewTaskset(m, nr)
	for _, s := range specs {
		ts.Add(s.build())
	}
	if err := ts.Finalize(); err != nil {
		return nil
	}
	return ts
}

// rebuild deep-copies a finalized taskset with per-vertex WCETs supplied by
// wcetOf (structure, requests, timing and priorities preserved).
func rebuild(ts *model.Taskset, wcetOf func(*model.Task, *model.Vertex) (rt.Time, bool)) (*model.Taskset, error) {
	specs := make([]*taskSpec, 0, len(ts.Tasks))
	for _, t := range ts.Tasks {
		s := specOf(t)
		for x, v := range t.Vertices {
			if w, ok := wcetOf(t, v); ok {
				s.wcet[x] = w
			}
		}
		specs = append(specs, s)
	}
	out := buildTaskset(specs, ts.NumProcs, ts.NumResources)
	if out == nil {
		return nil, fmt.Errorf("audit: rebuilt taskset failed validation")
	}
	return out, nil
}

// CheckTaskset runs the full differential audit — every configured method,
// its certified-verdict simulation batches, and the cross-method checks —
// on one taskset, serially. Run uses the parallel (taskset, method) job
// path instead; this entry point serves fixture replay and shrinking.
func CheckTaskset(cfg Config, ts *model.Taskset, label string, index int, seed int64) []Violation {
	cfg = cfg.normalized()
	g := &genTaskset{index: index, seed: seed, label: label, ts: ts}
	var simRuns atomic.Int64
	results := make([]methodVerdict, len(cfg.Methods))
	var out []Violation
	for mi := range cfg.Methods {
		results[mi] = checkMethod(cfg, g, mi, &simRuns)
		out = append(out, results[mi].violations...)
	}
	out = append(out, crossChecks(cfg, g, results)...)
	dvs, _ := deltaChecks(cfg, g, results)
	return append(out, dvs...)
}

// shrinkAndFix shrinks the violating taskset to a minimal reproduction and
// writes it as a JSON fixture; every violation is annotated with the
// fixture path. Shrinking never suppresses anything: the original
// violations are returned even if fixture writing fails.
func shrinkAndFix(cfg Config, g *genTaskset, vs []Violation) []Violation {
	if cfg.FixtureDir == "" {
		return vs
	}
	kinds := make(map[string]bool, len(vs))
	for _, v := range vs {
		kinds[v.Kind] = true
	}
	pred := func(candidate *model.Taskset) bool {
		for _, v := range CheckTaskset(cfg, candidate, g.label, g.index, g.seed) {
			if kinds[v.Kind] {
				return true
			}
		}
		return false
	}
	minimal := Shrink(g.ts, pred)
	name := fmt.Sprintf("audit-%s-seed%d.json", vs[0].Kind, g.seed)
	path := filepath.Join(cfg.FixtureDir, name)
	if err := writeFixture(path, minimal); err != nil {
		path = fmt.Sprintf("(fixture write failed: %v)", err)
	}
	for i := range vs {
		vs[i].Fixture = path
	}
	return vs
}

// maxShrinkSteps bounds the number of candidate evaluations one shrink may
// spend; each evaluation re-runs the full audit on the candidate.
const maxShrinkSteps = 300

// Shrink greedily minimizes a taskset while pred (the "still violates"
// predicate) holds: drop whole tasks, then individual vertices, then halve
// vertex WCETs toward their critical-section floor, then halve request
// counts. The result is the smallest reproduction the budget reaches; it
// always still satisfies pred (pred(ts) is assumed true on entry).
func Shrink(ts *model.Taskset, pred func(*model.Taskset) bool) *model.Taskset {
	cur := ts
	specs := func() []*taskSpec {
		out := make([]*taskSpec, 0, len(cur.Tasks))
		for _, t := range cur.Tasks {
			out = append(out, specOf(t))
		}
		return out
	}
	steps := 0
	try := func(candidate []*taskSpec) bool {
		if steps >= maxShrinkSteps {
			return false
		}
		steps++
		built := buildTaskset(candidate, cur.NumProcs, cur.NumResources)
		if built == nil || !pred(built) {
			return false
		}
		cur = built
		return true
	}

	// Pass 1: drop whole tasks.
	for again := true; again; {
		again = false
		ss := specs()
		for i := 0; i < len(ss) && len(cur.Tasks) > 1; i++ {
			cand := append(append([]*taskSpec(nil), ss[:i]...), ss[i+1:]...)
			if try(cand) {
				again = true
				break
			}
		}
	}

	// Pass 2: drop individual vertices.
	for again := true; again; {
		again = false
		ss := specs()
		for ti := range ss {
			for x := 0; x < len(ss[ti].wcet) && len(ss[ti].wcet) > 1; x++ {
				cand := make([]*taskSpec, len(ss))
				for j := range ss {
					cand[j] = ss[j].clone()
				}
				cand[ti].dropVertex(x)
				if try(cand) {
					again = true
					break
				}
			}
			if again {
				break
			}
		}
	}

	// Pass 3: halve vertex WCETs toward their critical-section floor.
	for round := 0; round < 8; round++ {
		shrunk := false
		ss := specs()
		for ti := range ss {
			for x := range ss[ti].wcet {
				floor := ss[ti].csNeed(x)
				if floor < 1 {
					floor = 1
				}
				w := (ss[ti].wcet[x] + 1) / 2
				if w < floor {
					w = floor
				}
				if w >= ss[ti].wcet[x] {
					continue
				}
				cand := make([]*taskSpec, len(ss))
				for j := range ss {
					cand[j] = ss[j].clone()
				}
				cand[ti].wcet[x] = w
				if try(cand) {
					shrunk = true
					ss = specs()
				}
			}
		}
		if !shrunk {
			break
		}
	}

	// Pass 4: halve request counts (a count reaching 0 drops the request).
	for round := 0; round < 8; round++ {
		shrunk := false
		ss := specs()
		for ti := range ss {
			for x := range ss[ti].reqs {
				// The shrink trajectory determines the fixture bytes; walk the
				// requests in sorted resource order so identical failures
				// always minimize to identical fixtures.
				qs := make([]rt.ResourceID, 0, len(ss[ti].reqs[x]))
				for q := range ss[ti].reqs[x] {
					qs = append(qs, q)
				}
				sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
				for _, q := range qs {
					n, ok := ss[ti].reqs[x][q]
					if !ok { // dropped by an earlier successful shrink
						continue
					}
					cand := make([]*taskSpec, len(ss))
					for j := range ss {
						cand[j] = ss[j].clone()
					}
					if n/2 == 0 {
						delete(cand[ti].reqs[x], q)
					} else {
						cand[ti].reqs[x][q] = n / 2
					}
					if try(cand) {
						shrunk = true
						ss = specs()
					}
				}
			}
		}
		if !shrunk {
			break
		}
	}
	return cur
}

func writeFixture(path string, ts *model.Taskset) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return model.EncodeTaskset(f, ts)
}

// fixtureSeed recovers the originating generation seed from a fixture
// filename (audit-<kind>-seed<N>.json). Simulation offsets derive from
// that seed, so a recovered seed replays the exact runs that caught the
// violation; fixtures from other sources fall back to a name-derived seed.
func fixtureSeed(path string) int64 {
	base := filepath.Base(path)
	if i := strings.LastIndex(base, "-seed"); i >= 0 {
		digits := strings.TrimSuffix(base[i+len("-seed"):], ".json")
		if n, err := strconv.ParseInt(digits, 10, 64); err == nil {
			return n
		}
	}
	return seedFor(0, 0, base)
}

// ReplayFixture loads a taskset fixture (a shrunken reproduction written by
// a previous audit, or any cmd/taskgen output) and re-runs the full
// differential audit on it. An empty result means the regression stays
// fixed.
func ReplayFixture(cfg Config, path string) ([]Violation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ts, err := model.DecodeTaskset(f)
	if err != nil {
		return nil, fmt.Errorf("audit: %s: %w", path, err)
	}
	return CheckTaskset(cfg, ts, "fixture", 0, fixtureSeed(path)), nil
}
