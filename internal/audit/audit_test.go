package audit

import (
	"bytes"
	"flag"
	"math/rand"
	"path/filepath"
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/taskgen"
)

// smokeN sizes the tier-2 smoke audit; CI runs it (race detector on) with
// the default, large-scale hunts raise it via
// `go test ./internal/audit -run AuditSmoke -audit.n=2000`.
var smokeN = flag.Int("audit.n", 120, "tasksets checked by TestAuditSmoke")

// TestAuditSmoke is the tier-2 differential audit: adversarial tasksets,
// all five analyses, simulator cross-checks. Zero violations expected; any
// finding writes a shrunken fixture whose path the failure message names —
// move it into testdata/ and fix the underlying bug, never suppress it.
func TestAuditSmoke(t *testing.T) {
	rep, err := Run(Config{
		Count:      *smokeN,
		Seed:       2020,
		FixtureDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generated == 0 {
		t.Fatal("audit generated no tasksets; fuzzing ineffective")
	}
	certs := 0
	for _, n := range rep.Schedulable {
		certs += n
	}
	if certs == 0 || rep.SimRuns == 0 {
		t.Fatalf("audit certified nothing (certs=%d simRuns=%d); checks never engaged",
			certs, rep.SimRuns)
	}
	if len(rep.ByShape) < 3 {
		t.Errorf("only %d shapes exercised: %v", len(rep.ByShape), rep.ByShape)
	}
	if rep.DeltaChecks == 0 {
		t.Error("delta leg drove no patch chains; incremental analysis unchecked")
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s (fixture: %s)", v, v.Fixture)
	}
	t.Logf("audit: %d generated (%d gen failures), %d certified verdicts, %d sim runs, %d cross-checked, %d delta chains, shapes %v",
		rep.Generated, rep.GenFailures, certs, rep.SimRuns, rep.CrossChecks, rep.DeltaChecks, rep.ByShape)
}

// TestAuditDeterministic: identical configs yield identical reports.
func TestAuditDeterministic(t *testing.T) {
	run := func(workers int) *Report {
		rep, err := Run(Config{Count: 20, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(8)
	if a.Generated != b.Generated || a.GenFailures != b.GenFailures ||
		a.SimRuns != b.SimRuns || len(a.Violations) != len(b.Violations) {
		t.Fatalf("1-worker vs 8-worker reports diverge: %+v vs %+v", a, b)
	}
	for m, n := range a.Schedulable {
		if b.Schedulable[m] != n {
			t.Errorf("method %s: %d vs %d certified", m, n, b.Schedulable[m])
		}
	}
}

// TestReplayFixtures replays every checked-in reproduction; a non-empty
// result means a previously-fixed soundness bug regressed.
func TestReplayFixtures(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no fixtures in testdata/; the replay harness is unwired")
	}
	for _, path := range paths {
		vs, err := ReplayFixture(Config{Count: 1}, path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		for _, v := range vs {
			t.Errorf("%s: %s", path, v)
		}
	}
}

// TestTimeBudget: a zero-duration budget must skip everything, not hang.
func TestTimeBudget(t *testing.T) {
	rep, err := Run(Config{Count: 50, Seed: 1, TimeBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Errorf("expected skipped tasksets under an expired budget, got %+v", rep)
	}
	if rep.Generated+rep.GenFailures+rep.Skipped != rep.Count {
		t.Errorf("accounting broken: %+v", rep)
	}
}

// TestShrinkMinimizes exercises the shrinking machinery with a synthetic
// predicate (no real soundness bug needed): "some task requests resource
// 0". The minimal reproduction is one single-vertex task with one request.
func TestShrinkMinimizes(t *testing.T) {
	a := taskgen.NewAdversarial()
	var ts *model.Taskset
	pred := func(c *model.Taskset) bool {
		for _, task := range c.Tasks {
			if task.NumRequests(0) > 0 {
				return true
			}
		}
		return false
	}
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		cand, err := a.TasksetWithShape(r, taskgen.ShapeContention)
		if err == nil && pred(cand) && len(cand.Tasks) >= 2 {
			ts = cand
			break
		}
	}
	if ts == nil {
		t.Fatal("no suitable taskset generated")
	}
	min := Shrink(ts, pred)
	if !pred(min) {
		t.Fatal("shrunken taskset no longer satisfies the predicate")
	}
	if len(min.Tasks) != 1 {
		t.Errorf("shrink left %d tasks, want 1", len(min.Tasks))
	}
	if nv := len(min.Tasks[0].Vertices); nv != 1 {
		t.Errorf("shrink left %d vertices, want 1", nv)
	}
	if n := min.Tasks[0].NumRequests(0); n != 1 {
		t.Errorf("shrink left %d requests to l0, want 1", n)
	}
	// The shrunken set must survive a JSON round trip (fixture format).
	ts2, err := roundTrip(min)
	if err != nil {
		t.Fatalf("fixture round trip: %v", err)
	}
	if !pred(ts2) {
		t.Error("round-tripped fixture lost the predicate")
	}
}

func roundTrip(ts *model.Taskset) (*model.Taskset, error) {
	var buf bytes.Buffer
	if err := model.EncodeTaskset(&buf, ts); err != nil {
		return nil, err
	}
	return model.DecodeTaskset(&buf)
}
