package audit

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/sim"
)

// methodVerdict is the outcome of one (taskset, method) audit job.
type methodVerdict struct {
	res        partition.Result
	violations []Violation
}

// protocolFor maps an analysis method to the runtime protocol its bound
// speaks about. ok=false means no sound simulation exists for the method on
// this taskset: FED-FP deliberately ignores shared resources (the paper's
// hypothetical upper envelope), so its bound is only claimed — and only
// cross-checked — on tasksets that issue no requests at all, where every
// protocol degenerates to plain federated scheduling.
func protocolFor(m analysis.Method, ts *model.Taskset) (sim.Protocol, bool) {
	switch m {
	case analysis.DPCPpEP, analysis.DPCPpEN:
		return sim.ProtocolDPCPp, true
	case analysis.SPIN:
		return sim.ProtocolSpin, true
	case analysis.LPP:
		return sim.ProtocolLPP, true
	default: // FED-FP
		for _, t := range ts.Tasks {
			for _, v := range t.Vertices {
				if v.TotalRequests() > 0 {
					return sim.ProtocolDPCPp, false
				}
			}
		}
		return sim.ProtocolDPCPp, true
	}
}

// checkMethod runs one analysis and, when it certifies the taskset, a batch
// of differential simulator runs against its partition and WCRT bounds.
func checkMethod(cfg Config, g *genTaskset, mi int, simRuns *atomic.Int64) methodVerdict {
	m := cfg.Methods[mi]
	v := methodVerdict{res: analysis.Test(m, g.ts, analysis.Options{PathCap: cfg.PathCap})}
	if !v.res.Schedulable {
		return v
	}
	proto, ok := protocolFor(m, g.ts)
	if !ok {
		return v
	}
	// Simulation seeds derive from the generation seed alone — which the
	// fixture filename preserves — so ReplayFixture reruns the exact
	// offset vectors that produced a violation, not fresh ones.
	rng := rand.New(rand.NewSource(seedFor(g.seed, 0, "sim|"+string(m))))
	v.violations = simBatch(cfg, g, m, proto, v.res, rng, simRuns)
	return v
}

// simBatch simulates one certified verdict across CS placements and release
// offsets over a multi-(near-)hyperperiod horizon and checks soundness:
// zero deadline misses, responses within the analytical bounds, no protocol
// invariant violations, and Lemma 1 for DPCP-p.
func simBatch(cfg Config, g *genTaskset, m analysis.Method, proto sim.Protocol,
	res partition.Result, rng *rand.Rand, simRuns *atomic.Int64) []Violation {

	var maxPeriod rt.Time
	for _, t := range g.ts.Tasks {
		if t.Period > maxPeriod {
			maxPeriod = t.Period
		}
	}
	horizon := rt.SatMul(int64(cfg.HyperPeriods), maxPeriod)

	var out []Violation
	report := func(kind, detail string) {
		out = append(out, Violation{
			Index: g.index, Seed: g.seed, Shape: g.label,
			Method: string(m), Kind: kind, Detail: detail,
		})
	}

	for _, placement := range []sim.CSPlacement{sim.SpreadCS, sim.FrontCS, sim.BackCS} {
		for run := 0; run < cfg.SimRuns; run++ {
			var offsets map[rt.TaskID]rt.Time
			if run > 0 { // run 0 is the synchronous release
				offsets = make(map[rt.TaskID]rt.Time, len(g.ts.Tasks))
				for _, t := range g.ts.Tasks {
					offsets[t.ID] = rt.Time(rng.Int63n(int64(t.Period)))
				}
			}
			s, err := sim.New(g.ts, res.Partition, sim.Config{
				Protocol:  proto,
				Horizon:   horizon,
				Offsets:   offsets,
				Placement: placement,
			})
			if err != nil {
				report("sim-error", fmt.Sprintf("sim.New: %v", err))
				continue
			}
			metrics, err := s.Run()
			simRuns.Add(1)
			tag := fmt.Sprintf("placement=%d run=%d", placement, run)
			if err != nil {
				report("sim-error", fmt.Sprintf("%s: %v", tag, err))
				continue
			}
			if vs := s.Violations(); len(vs) > 0 {
				report("sim-invariant", fmt.Sprintf("%s: %d violations, first: %s", tag, len(vs), vs[0]))
			}
			if metrics.DeadlineMisses > 0 {
				report("deadline-miss", fmt.Sprintf("%s: %d deadline misses on a certified taskset",
					tag, metrics.DeadlineMisses))
			}
			for _, t := range g.ts.Tasks {
				if simR, bound := metrics.MaxResponse[t.ID], res.WCRT[t.ID]; simR > bound {
					report("bound-exceeded", fmt.Sprintf("%s: task %d observed %s > bound %s",
						tag, t.ID, rt.FormatTime(simR), rt.FormatTime(bound)))
				}
			}
			if proto == sim.ProtocolDPCPp && metrics.MaxLowPrioBlockers > 1 {
				report("lemma1", fmt.Sprintf("%s: %d lower-priority blockers on one request",
					tag, metrics.MaxLowPrioBlockers))
			}
		}
	}
	return out
}

// analyzerFor constructs the method's analyzer over the taskset.
func analyzerFor(m analysis.Method, ts *model.Taskset, pathCap int) partition.Analyzer {
	if pathCap <= 0 {
		pathCap = analysis.DefaultPathCap
	}
	switch m {
	case analysis.DPCPpEP:
		return analysis.NewDPCPp(ts, pathCap, false)
	case analysis.DPCPpEN:
		return analysis.NewDPCPp(ts, pathCap, true)
	case analysis.SPIN:
		return analysis.NewSpin(ts)
	case analysis.LPP:
		return analysis.NewLPP(ts)
	default:
		return analysis.NewFedFP(ts)
	}
}

// crossChecks runs the cross-method invariants once all method jobs of a
// taskset are in: EP never exceeds EN on one identical partition, and every
// bound is monotone under WCET inflation on one identical partition.
func crossChecks(cfg Config, g *genTaskset, results []methodVerdict) []Violation {
	var out []Violation
	report := func(method analysis.Method, kind, detail string) {
		out = append(out, Violation{
			Index: g.index, Seed: g.seed, Shape: g.label,
			Method: string(method), Kind: kind, Detail: detail,
		})
	}

	// EP <= EN per task on one identical, fully-placed partition. Use the
	// partition of whichever DPCP-p variant certified the set (the two
	// pipelines may augment differently; the invariant is per-partition).
	var dpcpPart *partition.Partition
	for mi, m := range cfg.Methods {
		if (m == analysis.DPCPpEN || m == analysis.DPCPpEP) && results[mi].res.Schedulable {
			dpcpPart = results[mi].res.Partition
			if m == analysis.DPCPpEN {
				break // prefer EN's partition when both certified
			}
		}
	}
	if dpcpPart != nil {
		ep := analyzerFor(analysis.DPCPpEP, g.ts, cfg.PathCap).WCRTs(dpcpPart)
		en := analyzerFor(analysis.DPCPpEN, g.ts, cfg.PathCap).WCRTs(dpcpPart)
		for _, t := range g.ts.Tasks {
			if ep[t.ID] > en[t.ID] {
				report(analysis.DPCPpEP, "ep-exceeds-en",
					fmt.Sprintf("task %d: EP %s > EN %s on the same partition",
						t.ID, rt.FormatTime(ep[t.ID]), rt.FormatTime(en[t.ID])))
			}
		}
	}

	// WCET-scaling monotonicity: inflate every vertex WCET by 5/4 (ceiled),
	// holding periods, deadlines, priorities, structure and requests fixed,
	// and re-evaluate each certifying method's analyzer on a clone of its
	// own final partition. Bounds must not shrink.
	scaled, err := inflateWCET(g.ts)
	if err != nil {
		report("", "non-monotone", fmt.Sprintf("building scaled taskset: %v", err))
		return out
	}
	for mi, m := range cfg.Methods {
		if !results[mi].res.Schedulable {
			continue
		}
		p := results[mi].res.Partition
		p2, err := p.CloneFor(scaled)
		if err != nil {
			report(m, "non-monotone", fmt.Sprintf("rebinding partition: %v", err))
			continue
		}
		base := analyzerFor(m, g.ts, cfg.PathCap).WCRTs(p)
		infl := analyzerFor(m, scaled, cfg.PathCap).WCRTs(p2)
		for _, t := range g.ts.Tasks {
			if infl[t.ID] < base[t.ID] {
				report(m, "non-monotone",
					fmt.Sprintf("task %d: bound shrank from %s to %s under WCET inflation",
						t.ID, rt.FormatTime(base[t.ID]), rt.FormatTime(infl[t.ID])))
			}
		}
	}
	return out
}

// inflateWCET returns a structure-preserving copy of the taskset with every
// vertex WCET inflated by 5/4 (ceiled), requests and timing untouched.
func inflateWCET(ts *model.Taskset) (*model.Taskset, error) {
	return rebuild(ts, func(t *model.Task, v *model.Vertex) (rt.Time, bool) {
		return v.WCET + (v.WCET+3)/4, true
	})
}
