package audit

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/sim"
)

// methodVerdict is the outcome of one (taskset, method) audit job.
type methodVerdict struct {
	res        partition.Result
	violations []Violation
}

// protocolFor maps an analysis method to the runtime protocol its bound
// speaks about. ok=false means no sound simulation exists for the method on
// this taskset: FED-FP deliberately ignores shared resources (the paper's
// hypothetical upper envelope), so its bound is only claimed — and only
// cross-checked — on tasksets that issue no requests at all, where every
// protocol degenerates to plain federated scheduling.
func protocolFor(m analysis.Method, ts *model.Taskset) (sim.Protocol, bool) {
	switch m {
	case analysis.DPCPpEP, analysis.DPCPpEN:
		return sim.ProtocolDPCPp, true
	case analysis.SPIN:
		return sim.ProtocolSpin, true
	case analysis.LPP:
		return sim.ProtocolLPP, true
	default: // FED-FP
		for _, t := range ts.Tasks {
			for _, v := range t.Vertices {
				if v.TotalRequests() > 0 {
					return sim.ProtocolDPCPp, false
				}
			}
		}
		return sim.ProtocolDPCPp, true
	}
}

// checkMethod runs one analysis and, when it certifies the taskset, a batch
// of differential simulator runs against its partition and WCRT bounds.
func checkMethod(cfg Config, g *genTaskset, mi int, simRuns *atomic.Int64) methodVerdict {
	m := cfg.Methods[mi]
	v := methodVerdict{res: analysis.Test(m, g.ts, analysis.Options{PathCap: cfg.PathCap})}
	if !v.res.Schedulable {
		return v
	}
	proto, ok := protocolFor(m, g.ts)
	if !ok {
		return v
	}
	// Simulation seeds derive from the generation seed alone — which the
	// fixture filename preserves — so ReplayFixture reruns the exact
	// offset vectors that produced a violation, not fresh ones.
	rng := rand.New(rand.NewSource(seedFor(g.seed, 0, "sim|"+string(m))))
	v.violations = simBatch(cfg, g, m, proto, v.res, rng, simRuns)
	return v
}

// simBatch simulates one certified verdict across CS placements and release
// offsets over a multi-(near-)hyperperiod horizon and checks soundness:
// zero deadline misses, responses within the analytical bounds, no protocol
// invariant violations, and Lemma 1 for DPCP-p.
func simBatch(cfg Config, g *genTaskset, m analysis.Method, proto sim.Protocol,
	res partition.Result, rng *rand.Rand, simRuns *atomic.Int64) []Violation {

	var maxPeriod rt.Time
	for _, t := range g.ts.Tasks {
		if t.Period > maxPeriod {
			maxPeriod = t.Period
		}
	}
	horizon := rt.SatMul(int64(cfg.HyperPeriods), maxPeriod)

	var out []Violation
	report := func(kind, detail string) {
		out = append(out, Violation{
			Index: g.index, Seed: g.seed, Shape: g.label,
			Method: string(m), Kind: kind, Detail: detail,
		})
	}

	for _, placement := range []sim.CSPlacement{sim.SpreadCS, sim.FrontCS, sim.BackCS} {
		for run := 0; run < cfg.SimRuns; run++ {
			var offsets map[rt.TaskID]rt.Time
			if run > 0 { // run 0 is the synchronous release
				offsets = make(map[rt.TaskID]rt.Time, len(g.ts.Tasks))
				for _, t := range g.ts.Tasks {
					offsets[t.ID] = rt.Time(rng.Int63n(int64(t.Period)))
				}
			}
			s, err := sim.New(g.ts, res.Partition, sim.Config{
				Protocol:  proto,
				Horizon:   horizon,
				Offsets:   offsets,
				Placement: placement,
			})
			if err != nil {
				report("sim-error", fmt.Sprintf("sim.New: %v", err))
				continue
			}
			metrics, err := s.Run()
			simRuns.Add(1)
			tag := fmt.Sprintf("placement=%d run=%d", placement, run)
			if err != nil {
				report("sim-error", fmt.Sprintf("%s: %v", tag, err))
				continue
			}
			if vs := s.Violations(); len(vs) > 0 {
				report("sim-invariant", fmt.Sprintf("%s: %d violations, first: %s", tag, len(vs), vs[0]))
			}
			if metrics.DeadlineMisses > 0 {
				report("deadline-miss", fmt.Sprintf("%s: %d deadline misses on a certified taskset",
					tag, metrics.DeadlineMisses))
			}
			for _, t := range g.ts.Tasks {
				if simR, bound := metrics.MaxResponse[t.ID], res.WCRT[t.ID]; simR > bound {
					report("bound-exceeded", fmt.Sprintf("%s: task %d observed %s > bound %s",
						tag, t.ID, rt.FormatTime(simR), rt.FormatTime(bound)))
				}
			}
			if proto == sim.ProtocolDPCPp && metrics.MaxLowPrioBlockers > 1 {
				report("lemma1", fmt.Sprintf("%s: %d lower-priority blockers on one request",
					tag, metrics.MaxLowPrioBlockers))
			}
		}
	}
	return out
}

// analyzerFor constructs the method's analyzer over the taskset.
func analyzerFor(m analysis.Method, ts *model.Taskset, pathCap int) partition.Analyzer {
	if pathCap <= 0 {
		pathCap = analysis.DefaultPathCap
	}
	switch m {
	case analysis.DPCPpEP:
		return analysis.NewDPCPp(ts, pathCap, false)
	case analysis.DPCPpEN:
		return analysis.NewDPCPp(ts, pathCap, true)
	case analysis.SPIN:
		return analysis.NewSpin(ts)
	case analysis.LPP:
		return analysis.NewLPP(ts)
	default:
		return analysis.NewFedFP(ts)
	}
}

// crossChecks runs the cross-method invariants once all method jobs of a
// taskset are in: EP never exceeds EN on one identical partition, and every
// bound is monotone under WCET inflation on one identical partition.
func crossChecks(cfg Config, g *genTaskset, results []methodVerdict) []Violation {
	var out []Violation
	report := func(method analysis.Method, kind, detail string) {
		out = append(out, Violation{
			Index: g.index, Seed: g.seed, Shape: g.label,
			Method: string(method), Kind: kind, Detail: detail,
		})
	}

	// EP <= EN per task on one identical, fully-placed partition. Use the
	// partition of whichever DPCP-p variant certified the set (the two
	// pipelines may augment differently; the invariant is per-partition).
	var dpcpPart *partition.Partition
	for mi, m := range cfg.Methods {
		if (m == analysis.DPCPpEN || m == analysis.DPCPpEP) && results[mi].res.Schedulable {
			dpcpPart = results[mi].res.Partition
			if m == analysis.DPCPpEN {
				break // prefer EN's partition when both certified
			}
		}
	}
	if dpcpPart != nil {
		ep := analyzerFor(analysis.DPCPpEP, g.ts, cfg.PathCap).WCRTs(dpcpPart)
		en := analyzerFor(analysis.DPCPpEN, g.ts, cfg.PathCap).WCRTs(dpcpPart)
		for _, t := range g.ts.Tasks {
			if ep[t.ID] > en[t.ID] {
				report(analysis.DPCPpEP, "ep-exceeds-en",
					fmt.Sprintf("task %d: EP %s > EN %s on the same partition",
						t.ID, rt.FormatTime(ep[t.ID]), rt.FormatTime(en[t.ID])))
			}
		}
	}

	// WCET-scaling monotonicity: inflate every vertex WCET by 5/4 (ceiled),
	// holding periods, deadlines, priorities, structure and requests fixed,
	// and re-evaluate each certifying method's analyzer on a clone of its
	// own final partition. Bounds must not shrink.
	scaled, err := inflateWCET(g.ts)
	if err != nil {
		report("", "non-monotone", fmt.Sprintf("building scaled taskset: %v", err))
		return out
	}
	for mi, m := range cfg.Methods {
		if !results[mi].res.Schedulable {
			continue
		}
		p := results[mi].res.Partition
		p2, err := p.CloneFor(scaled)
		if err != nil {
			report(m, "non-monotone", fmt.Sprintf("rebinding partition: %v", err))
			continue
		}
		base := analyzerFor(m, g.ts, cfg.PathCap).WCRTs(p)
		infl := analyzerFor(m, scaled, cfg.PathCap).WCRTs(p2)
		for _, t := range g.ts.Tasks {
			if infl[t.ID] < base[t.ID] {
				report(m, "non-monotone",
					fmt.Sprintf("task %d: bound shrank from %s to %s under WCET inflation",
						t.ID, rt.FormatTime(base[t.ID]), rt.FormatTime(infl[t.ID])))
			}
		}
	}
	return out
}

// inflateWCET returns a structure-preserving copy of the taskset with every
// vertex WCET inflated by 5/4 (ceiled), requests and timing untouched.
func inflateWCET(ts *model.Taskset) (*model.Taskset, error) {
	return rebuild(ts, func(t *model.Task, v *model.Vertex) (rt.Time, bool) {
		return v.WCET + (v.WCET+3)/4, true
	})
}

// deltaChainSteps is the length of each random patch chain the delta leg
// drives per certified DPCP-p verdict.
const deltaChainSteps = 3

// deltaChecks is the incremental-analysis leg: starting from each certified
// DPCP-p verdict, it retains delta state (analysis.NewDelta), drives a
// short deterministic random patch chain through Delta.ApplyTo, and
// requires every step's verdict to be bit-identical to a full re-analysis
// of the patched taskset. A divergence is a "delta-mismatch" violation;
// because CheckTaskset runs this leg too, shrinking minimizes such
// tasksets into fixtures exactly like soundness breaches. Returns the
// violations plus the number of chains driven.
func deltaChecks(cfg Config, g *genTaskset, results []methodVerdict) ([]Violation, int) {
	var out []Violation
	chains := 0
	opts := analysis.Options{PathCap: cfg.PathCap}
	for mi, m := range cfg.Methods {
		if (m != analysis.DPCPpEP && m != analysis.DPCPpEN) || !results[mi].res.Schedulable {
			continue
		}
		report := func(kind, detail string) {
			out = append(out, Violation{
				Index: g.index, Seed: g.seed, Shape: g.label,
				Method: string(m), Kind: kind, Detail: detail,
			})
		}
		sc, fullSc := analysis.NewScratch(), analysis.NewScratch()
		_, d := analysis.NewDelta(sc, m, g.ts, opts)
		if d == nil {
			report("delta-mismatch", "no delta state retained for a certified taskset")
			continue
		}
		chains++
		rng := rand.New(rand.NewSource(seedFor(g.seed, 0, "delta|"+string(m))))
		for step := 0; step < deltaChainSteps; step++ {
			p, ok := deltaPatch(rng, d.Base())
			if !ok {
				break
			}
			patched, pd, err := model.ApplyPatch(d.Base(), p)
			if err != nil {
				report("delta-mismatch", fmt.Sprintf("step %d: valid generated patch rejected: %v", step, err))
				break
			}
			res, _, next := d.ApplyTo(sc, patched, pd)
			full := analysis.TestWith(fullSc, m, patched, opts)
			if detail := diffResults(res, full); detail != "" {
				report("delta-mismatch", fmt.Sprintf("step %d: delta vs full re-analysis: %s", step, detail))
				break
			}
			if next != nil {
				// Chain onward from the patched state; an unschedulable step
				// re-anchors the next patch on the previous base.
				d = next
			}
		}
	}
	return out, chains
}

// diffResults compares a delta verdict against a full re-analysis; "" means
// bit-identical (the delta contract), anything else describes the first
// divergence.
func diffResults(got, want partition.Result) string {
	if got.Schedulable != want.Schedulable {
		return fmt.Sprintf("schedulable %v != %v", got.Schedulable, want.Schedulable)
	}
	if len(got.WCRT) != len(want.WCRT) {
		return fmt.Sprintf("%d WCRT bounds != %d", len(got.WCRT), len(want.WCRT))
	}
	ids := make([]rt.TaskID, 0, len(want.WCRT))
	for id := range want.WCRT {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		if got.WCRT[id] != want.WCRT[id] {
			return fmt.Sprintf("task %d bound %s != %s", id,
				rt.FormatTime(got.WCRT[id]), rt.FormatTime(want.WCRT[id]))
		}
	}
	return ""
}

// deltaPatch draws one structurally valid random patch for ts, mixing
// nondecreasing edits (WCET/request growth — the warm-start path) with
// shrinks and timing edits (the recompute and fallback paths). ok=false
// when no valid op was found within the try budget.
func deltaPatch(r *rand.Rand, ts *model.Taskset) (model.Patch, bool) {
	one := func(op model.PatchOp) (model.Patch, bool) {
		return model.Patch{Ops: []model.PatchOp{op}}, true
	}
	for tries := 0; tries < 32; tries++ {
		t := ts.Tasks[r.Intn(len(ts.Tasks))]
		x := rt.VertexID(r.Intn(len(t.Vertices)))
		v := t.Vertices[x]
		var csNeed rt.Time
		for q, n := range v.Requests {
			csNeed += rt.SatMul(int64(n), t.CS(q))
		}
		switch r.Intn(6) {
		case 0, 1: // WCET bump up: always valid.
			return one(model.PatchOp{Op: model.OpSetWCET, Task: t.ID, Vertex: x,
				Value: v.WCET + 1 + rt.Time(r.Int63n(int64(rt.Microsecond)))})
		case 2: // WCET shrink toward the critical-section floor.
			floor := csNeed
			if floor == 0 {
				floor = 1
			}
			if v.WCET <= floor {
				continue
			}
			return one(model.PatchOp{Op: model.OpSetWCET, Task: t.ID, Vertex: x,
				Value: floor + rt.Time(r.Int63n(int64(v.WCET-floor)))})
		case 3: // Request count up when the vertex has WCET slack for it.
			if ts.NumResources == 0 {
				continue
			}
			q := rt.ResourceID(r.Intn(ts.NumResources))
			if t.CS(q) == 0 || v.WCET-csNeed < t.CS(q) {
				continue
			}
			return one(model.PatchOp{Op: model.OpSetRequest, Task: t.ID, Vertex: x,
				Resource: q, Count: v.Requests[q] + 1})
		case 4: // Request count down (possibly a sharer flip to zero).
			for _, q := range t.Resources() {
				if n := v.Requests[q]; n > 0 {
					return one(model.PatchOp{Op: model.OpSetRequest, Task: t.ID,
						Vertex: x, Resource: q, Count: n - 1})
				}
			}
		case 5: // Period growth (deadline <= period stays satisfied).
			return one(model.PatchOp{Op: model.OpSetPeriod, Task: t.ID,
				Value: t.Period + 1 + rt.Time(r.Int63n(int64(t.Period)))})
		}
	}
	return model.Patch{}, false
}
