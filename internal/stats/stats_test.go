package stats

import (
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, 1, 4, 1, 5})
	if min != 1 || max != 5 {
		t.Errorf("MinMax = %g, %g", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = %g, %g", min, max)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %g", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 4); got != 0.25 {
		t.Errorf("Ratio = %g", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio(1,0) = %g", got)
	}
}

func TestMeanBetweenMinMax(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		min, max := MinMax(xs)
		m := Mean(xs)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianIsElementOrMidpoint(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		med := Median(xs)
		min, max := MinMax(xs)
		return med >= min && med <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
