// Package stats provides the small statistical helpers the experiment
// harness uses for reporting.
package stats

import "sort"

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinMax returns the extremes (0,0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Ratio returns num/den, or 0 when den is 0.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
