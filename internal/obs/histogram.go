package obs

import (
	"sync/atomic"
	"time"
)

// Histogram is a lock-free fixed-bucket latency histogram. Buckets are
// cumulative-upper-bound style (Prometheus `le` semantics): an observation
// d lands in the first bucket whose bound is >= d, with an implicit +Inf
// bucket past the last bound. All state is preallocated at construction;
// Observe performs only atomic operations and allocates nothing (gated by
// TestObserveZeroAlloc), so histograms may sit on the analysis hot path.
//
// Alongside the buckets, every Histogram maintains an exponentially
// weighted moving average of its observations (alpha = 1/8, first sample
// adopted as-is). The EWMA is what backpressure estimates want — recent
// latency, not lifetime mean — and folding it into Observe keeps a single
// recorder as the source of truth for both distribution and trend.
type Histogram struct {
	bounds []int64        // ascending upper bounds in nanoseconds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64   // nanoseconds
	ewma   atomic.Int64   // nanoseconds; 0 = no observation yet
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. The bounds slice is copied; an empty slice yields a single +Inf
// bucket (still a valid counter/sum/EWMA recorder).
func NewHistogram(bounds []time.Duration) *Histogram {
	h := &Histogram{
		bounds: make([]int64, len(bounds)),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	for i, b := range bounds {
		h.bounds[i] = int64(b)
		if i > 0 && h.bounds[i] <= h.bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return h
}

// DefaultLatencyBounds covers the service's observed range: microsecond
// cache hits through multi-second sweep analyses, roughly logarithmic at
// 1-2.5-5 per decade. The same layout serves request latency and per-stage
// analysis timing, so dashboards can overlay them.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		1 * time.Microsecond, 2500 * time.Nanosecond, 5 * time.Microsecond,
		10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
		100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
		1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		1 * time.Second, 2500 * time.Millisecond, 5 * time.Second,
		10 * time.Second, 30 * time.Second, 60 * time.Second,
	}
}

// Observe records one duration. Negative observations clamp to zero (a
// clock step mid-measurement must not corrupt the distribution). Safe for
// concurrent use; never allocates.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Linear scan: the bounds slice is small (~24) and latencies
	// concentrate in the low buckets, so this beats a binary search's
	// branch misses and keeps the path trivially allocation-free.
	i := 0
	for i < len(h.bounds) && ns > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(ns)
	for {
		old := h.ewma.Load()
		next := ns
		if old != 0 {
			next = old + (ns-old)/8
			if next == 0 {
				next = 1 // keep "no data yet" distinguishable
			}
		}
		if h.ewma.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// EWMA returns the exponentially weighted moving average of recent
// observations (alpha = 1/8), or 0 when nothing has been observed.
func (h *Histogram) EWMA() time.Duration { return time.Duration(h.ewma.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank, the standard fixed-bucket
// estimate. Observations in the +Inf bucket pin the estimate to the last
// finite bound. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Snapshot the buckets once so a concurrent Observe cannot make rank
	// and total disagree.
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: the last finite bound is the best bounded answer.
			if len(h.bounds) == 0 {
				return 0
			}
			return time.Duration(h.bounds[len(h.bounds)-1])
		}
		lo := int64(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return time.Duration(hi)
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return time.Duration(float64(lo) + frac*float64(hi-lo))
	}
	return time.Duration(h.bounds[len(h.bounds)-1])
}

// HistogramSnapshot is one consistent read of a histogram for exposition:
// cumulative bucket counts per bound plus the derived total. Count is the
// sum of the per-bucket reads, so Buckets always sum to it exactly.
type HistogramSnapshot struct {
	Bounds []int64 // upper bounds in nanoseconds (no +Inf entry)
	Counts []int64 // cumulative; Counts[i] = observations <= Bounds[i]
	Count  int64   // total including the +Inf bucket
	SumNS  int64
}

// Snapshot captures the histogram for rendering. It allocates; call it on
// scrape paths only.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)),
		SumNS:  h.sum.Load(),
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		cum += c
		if i < len(s.Counts) {
			s.Counts[i] = cum
		}
	}
	s.Count = cum
	return s
}
