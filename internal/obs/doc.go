// Package obs is the dependency-free observability layer under the
// service: structured logging helpers (log/slog), lock-free fixed-bucket
// latency histograms, a hand-rolled Prometheus text-format registry, and
// bounded-ring request tracing. Every later subsystem — the distributed
// sweep fabric, delta analysis, optimizer jobs — reports through this
// package, so it depends on nothing but the standard library and imposes
// no allocation cost on the paths it instruments.
//
// # Zero-allocation instrumentation
//
// The repository's hottest invariant (PR 7) is that a warm EN/EP analysis
// round allocates nothing, gated by TestWCRTsZeroAllocEN/EP via
// testing.AllocsPerRun. Instrumentation must not break that gate, which
// dictates the design of every recording path here:
//
//   - Histogram buckets are preallocated atomic counters behind fixed
//     upper bounds. Observe is a linear scan over the bounds slice plus
//     three atomic adds and a CAS loop for the EWMA — no map lookups, no
//     interface boxing of values, no append, no time formatting. The
//     AllocsPerRun gate in histogram_test.go pins Observe at 0 allocs.
//   - Stage hooks on the analyzer's Scratch (internal/analysis) call
//     through a narrow interface whose arguments are a uint8 stage index
//     and a time.Duration — both word-sized, neither boxed. With no
//     recorder installed the hooks cost two nil checks.
//   - Exposition (Registry.WriteTo) and trace snapshots do allocate, but
//     they run on scrape/debug requests, never on the recorded path.
//   - Traces preallocate their span storage; recording a span within that
//     capacity is append-into-capacity under a mutex. Trace recording
//     rides the request path (which allocates anyway, for JSON), not the
//     analysis path.
//
// # Consistency of exposed histograms
//
// A scrape races with concurrent Observe calls. WriteTo therefore derives
// _count from the same per-bucket atomic reads that produce the _bucket
// series, so the exposed cumulative buckets always sum exactly to _count;
// _sum is read separately and may be ahead by in-flight observations,
// which Prometheus semantics tolerate (both are monotone counters).
package obs
