package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseExposition is a minimal validity check of the text format: every
// non-comment line is `name{labels} value` with a parseable value, every
// family has HELP and TYPE before its first sample, and families are
// contiguous.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	helped := make(map[string]bool)
	typed := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type %q in %q", f[3], line)
			}
			typed[f[2]] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = series[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !helped[family] || !typed[family] {
			t.Fatalf("sample %q before its family's HELP/TYPE", line)
		}
		samples[series] = v
	}
	return samples
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", func() int64 { return 42 })
	r.Gauge("app_queue_depth", "Jobs queued.", func() float64 { return 7 })
	r.GaugeL("app_state", Labels("state", "open"), "State flags.", func() float64 { return 1 })
	r.GaugeL("app_state", Labels("state", "closed"), "State flags.", func() float64 { return 0 })

	h := NewHistogram([]time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second) // +Inf bucket
	r.Histogram("app_latency_seconds", "Latency.", h)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseExposition(t, text)

	if samples["app_requests_total"] != 42 {
		t.Errorf("counter = %v, want 42", samples["app_requests_total"])
	}
	if samples[`app_state{state="open"}`] != 1 || samples[`app_state{state="closed"}`] != 0 {
		t.Errorf("labeled gauges wrong: %v", samples)
	}
	// Histogram: cumulative buckets, +Inf equals _count, _sum in seconds.
	if got := samples[`app_latency_seconds_bucket{le="0.001"}`]; got != 1 {
		t.Errorf("le=0.001 bucket = %v, want 1", got)
	}
	if got := samples[`app_latency_seconds_bucket{le="1"}`]; got != 1 {
		t.Errorf("le=1 bucket = %v, want 1", got)
	}
	inf := samples[`app_latency_seconds_bucket{le="+Inf"}`]
	if inf != 2 || inf != samples["app_latency_seconds_count"] {
		t.Errorf("+Inf bucket = %v, count = %v; must both be 2", inf, samples["app_latency_seconds_count"])
	}
	if got := samples["app_latency_seconds_sum"]; got < 2.0004 || got > 2.0006 {
		t.Errorf("sum = %v seconds, want ~2.0005", got)
	}
	// Cumulative buckets never decrease.
	if samples[`app_latency_seconds_bucket{le="1"}`] < samples[`app_latency_seconds_bucket{le="0.001"}`] {
		t.Error("buckets are not monotone")
	}
	// One HELP/TYPE header per family even with multiple series.
	if strings.Count(text, "# TYPE app_state gauge") != 1 {
		t.Errorf("app_state family must have exactly one TYPE header:\n%s", text)
	}
}

// TestLabelEscaping pins the escaping rules for label values.
func TestLabelEscaping(t *testing.T) {
	got := Label("path", "a\\b\"c\nd")
	want := `path="a\\b\"c\nd"`
	if got != want {
		t.Fatalf("Label = %s, want %s", got, want)
	}
	if got := Labels("a", "1", "b", "2"); got != `a="1",b="2"` {
		t.Fatalf("Labels = %s", got)
	}
}
