package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Registry renders a fixed set of metrics as Prometheus text exposition
// format (version 0.0.4), hand-rolled so the repository stays
// dependency-free. Metrics are registered once at startup with read
// functions (counters and gauges) or a *Histogram; WriteTo samples them at
// scrape time. Registration is not safe for concurrent use with WriteTo —
// register everything before serving.
//
// Families may carry multiple label sets (e.g. one request-latency series
// per endpoint): register the same name repeatedly with distinct labels,
// and WriteTo emits one # HELP/# TYPE header per family followed by every
// series, grouped regardless of registration order.
type Registry struct {
	metrics []metric
}

type metric struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels string // preformatted `k="v",k2="v2"` or ""
	intVal func() int64
	val    func() float64
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a monotone counter read through fn.
func (r *Registry) Counter(name, help string, fn func() int64) {
	r.CounterL(name, "", help, fn)
}

// CounterL is Counter with a label set (`k="v"` pairs, comma-separated,
// already escaped).
func (r *Registry) CounterL(name, labels, help string, fn func() int64) {
	r.metrics = append(r.metrics, metric{name: name, help: help, typ: "counter", labels: labels, intVal: fn})
}

// Gauge registers a point-in-time value read through fn.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.GaugeL(name, "", help, fn)
}

// GaugeL is Gauge with a label set.
func (r *Registry) GaugeL(name, labels, help string, fn func() float64) {
	r.metrics = append(r.metrics, metric{name: name, help: help, typ: "gauge", labels: labels, val: fn})
}

// Histogram registers a histogram series; durations are exposed in
// seconds, per Prometheus convention.
func (r *Registry) Histogram(name, help string, h *Histogram) {
	r.HistogramL(name, "", help, h)
}

// HistogramL is Histogram with a label set.
func (r *Registry) HistogramL(name, labels, help string, h *Histogram) {
	r.metrics = append(r.metrics, metric{name: name, help: help, typ: "histogram", labels: labels, hist: h})
}

// WriteTo renders the registry in Prometheus text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	// Group series into families by name, preserving first-registration
	// order for stable scrapes.
	order := make([]string, 0, len(r.metrics))
	families := make(map[string][]*metric, len(r.metrics))
	for i := range r.metrics {
		m := &r.metrics[i]
		if _, ok := families[m.name]; !ok {
			order = append(order, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}
	var b strings.Builder
	for _, name := range order {
		fam := families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(fam[0].help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, fam[0].typ)
		for _, m := range fam {
			switch m.typ {
			case "counter":
				fmt.Fprintf(&b, "%s%s %d\n", name, braced(m.labels), m.intVal())
			case "gauge":
				fmt.Fprintf(&b, "%s%s %s\n", name, braced(m.labels), formatFloat(m.val()))
			case "histogram":
				writeHistogram(&b, name, m.labels, m.hist.Snapshot())
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func writeHistogram(b *strings.Builder, name, labels string, s HistogramSnapshot) {
	for i, bound := range s.Bounds {
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			braced(joinLabels(labels, `le="`+formatFloat(float64(bound)/1e9)+`"`)), s.Counts[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="+Inf"`)), s.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, braced(labels), formatFloat(float64(s.SumNS)/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, braced(labels), s.Count)
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Label builds one escaped `k="v"` pair for the *L registration variants.
func Label(k, v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return k + `="` + v + `"`
}

// Labels builds an escaped label set from alternating key, value
// arguments: Labels("endpoint", "grid") -> `endpoint="grid"`. A trailing
// odd key is ignored.
func Labels(kv ...string) string {
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, Label(kv[i], kv[i+1]))
	}
	return strings.Join(pairs, ",")
}
