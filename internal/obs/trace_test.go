package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestTraceRingWraparound fills a small ring past capacity and checks that
// only the newest traces survive, newest first.
func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(4)
	base := time.Now()
	for i := 0; i < 6; i++ {
		tr := NewTrace(string(rune('a'+i)), "analyze", "POST", "/v1/analyze", base)
		tr.Finish(200)
		r.Add(tr)
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d traces, want 4 (ring capacity)", len(snap))
	}
	for i, want := range []string{"f", "e", "d", "c"} {
		if snap[i].ID != want {
			t.Fatalf("snapshot[%d].ID = %q, want %q (newest first)", i, snap[i].ID, want)
		}
	}
}

func TestTraceSpansAndServerTiming(t *testing.T) {
	start := time.Now()
	tr := NewTrace("abc123", "analyze", "POST", "/v1/analyze", start)
	tr.AddSpanDur("cache probe", start, 250*time.Microsecond)
	tr.AddSpanDur("analysis", start, 3*time.Millisecond)
	tr.Finish(200)

	st := tr.ServerTiming()
	// Span names must be sanitized to header tokens; durations are ms.
	if !strings.Contains(st, "cache-probe;dur=0.250") {
		t.Errorf("Server-Timing %q missing sanitized cache span", st)
	}
	if !strings.Contains(st, "analysis;dur=3.000") {
		t.Errorf("Server-Timing %q missing analysis span", st)
	}
	if !strings.Contains(st, "total;dur=") {
		t.Errorf("Server-Timing %q missing total", st)
	}

	v := tr.view()
	if v.Status != 200 || len(v.Spans) != 2 || v.Spans[1].DurNS != 3e6 {
		t.Fatalf("view = %+v", v)
	}
}

// TestTraceNilSafety: every method on a nil trace must be a no-op so code
// paths instrument unconditionally.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.AddSpan("x", time.Now())
	tr.AddSpanDur("y", time.Now(), time.Second)
	tr.Finish(500)
	if tr.ID() != "" || tr.ServerTiming() != "" {
		t.Fatal("nil trace must render empty")
	}
	NewTraceRing(2).Add(nil) // must not panic or count
}

func TestTraceContextRoundTrip(t *testing.T) {
	if TraceFromContext(context.Background()) != nil {
		t.Fatal("background context must carry no trace")
	}
	tr := NewTrace("id", "other", "GET", "/", time.Now())
	ctx := WithTrace(context.Background(), tr)
	if TraceFromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids %q, %q: want 16 hex chars, distinct", a, b)
	}
}
