package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "msg=hello") || !strings.Contains(buf.String(), "k=v") {
		t.Fatalf("text output: %q", buf.String())
	}
	l.Debug("invisible")
	if strings.Contains(buf.String(), "invisible") {
		t.Fatal("debug line leaked through info level")
	}

	buf.Reset()
	l, err = NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("ping", "n", 1)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json output not a JSON object: %q", buf.String())
	}
	if rec["msg"] != "ping" || rec["n"] != float64(1) {
		t.Fatalf("json record = %v", rec)
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("unknown level must error")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestLoggerContextRoundTrip(t *testing.T) {
	base := LoggerFromContext(context.Background())
	if base == nil || base.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("default logger must exist and discard everything")
	}
	var buf bytes.Buffer
	l, _ := NewLogger(&buf, "info", "text")
	ctx := WithLogger(context.Background(), l)
	if LoggerFromContext(ctx) != l {
		t.Fatal("logger did not round-trip through the context")
	}
}

func TestBuildInfo(t *testing.T) {
	b := BuildInfo()
	// Test binaries always embed the toolchain version; VCS data depends on
	// how the test was invoked, so only its formatting is checked.
	if b.GoVersion == "" {
		t.Fatal("GoVersion must be populated under `go test`")
	}
	if s := b.String(); !strings.Contains(s, b.GoVersion) {
		t.Fatalf("String() = %q must include the Go version", s)
	}
	if (Build{}).String() != "unknown (revision unknown, unknown)" {
		t.Fatalf("zero build renders %q", (Build{}).String())
	}
}
