package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime/debug"
	"strings"
	"sync"
)

// ParseLevel resolves a -log-level flag value (debug, info, warn, error).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (debug, info, warn, error)", s)
	}
}

// NewLogger builds the daemons' structured logger: format "text" or
// "json", leveled per ParseLevel. Everything the service logs flows
// through loggers derived from this one, so one flag pair switches the
// whole process between human-readable and machine-ingestible output.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (text, json)", format)
	}
}

// NopLogger discards everything; the server's default when no logger is
// configured, so call sites never branch on nil.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

type loggerKey struct{}

// WithLogger attaches a request-scoped logger (typically carrying a
// request_id attribute) to the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// LoggerFromContext returns the request-scoped logger, or a discarding one
// so callers log unconditionally.
func LoggerFromContext(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return l
	}
	return NopLogger()
}

// Build identifies the running binary, read once from the build info the
// Go toolchain embeds.
type Build struct {
	// Version is the main module version ("(devel)" for non-tagged builds).
	Version string `json:"version,omitempty"`
	// Revision is the VCS commit the binary was built from, suffixed with
	// "+dirty" when the working tree had local modifications.
	Revision string `json:"vcs_revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// BuildInfo returns the binary's identity from runtime/debug.ReadBuildInfo
// — what /healthz and the -version flags report so deployed binaries are
// attributable to a commit.
func BuildInfo() Build {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Version = bi.Main.Version
		buildInfo.GoVersion = bi.GoVersion
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			buildInfo.Revision = rev + dirty
		}
	})
	return buildInfo
}

// String renders the build identity for -version output.
func (b Build) String() string {
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	}
	return fmt.Sprintf("%s (revision %s, %s)", orUnknown(b.Version), rev, orUnknown(b.GoVersion))
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
