package obs

import (
	"sync"
	"testing"
	"time"
)

// TestObserveBucketBoundaries pins the `le` semantics: an observation
// exactly on a bound lands in that bound's bucket (cumulative counts
// include it), one nanosecond above lands in the next.
func TestObserveBucketBoundaries(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Microsecond, time.Millisecond})
	h.Observe(time.Microsecond)     // exactly on the first bound
	h.Observe(time.Microsecond + 1) // just above it
	h.Observe(time.Millisecond)     // exactly on the second bound
	h.Observe(time.Millisecond + 1) // +Inf bucket
	h.Observe(-5 * time.Second)     // clamps to 0, first bucket
	s := h.Snapshot()
	if want := []int64{2, 4}; s.Counts[0] != want[0] || s.Counts[1] != want[1] {
		t.Fatalf("cumulative counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if got := h.Sum(); got != time.Microsecond+time.Microsecond+1+time.Millisecond+time.Millisecond+1 {
		t.Fatalf("sum = %v (negative observation must clamp to 0)", got)
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds must panic at construction")
		}
	}()
	NewHistogram([]time.Duration{time.Millisecond, time.Microsecond})
}

// TestEWMA pins the trend estimate: the first sample is adopted verbatim,
// later samples move it an eighth of the way (the semantics the server's
// Retry-After estimate has always had).
func TestEWMA(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	if h.EWMA() != 0 {
		t.Fatal("EWMA must be 0 before any observation")
	}
	h.Observe(800 * time.Millisecond)
	if got := h.EWMA(); got != 800*time.Millisecond {
		t.Fatalf("first sample: EWMA = %v, want 800ms", got)
	}
	h.Observe(1600 * time.Millisecond)
	want := 800*time.Millisecond + 800*time.Millisecond/8
	if got := h.EWMA(); got != want {
		t.Fatalf("second sample: EWMA = %v, want %v", got, want)
	}
	// A stream of zero observations must not make the EWMA look like
	// "no data yet": it floors at 1ns instead of reaching 0.
	for i := 0; i < 200; i++ {
		h.Observe(0)
	}
	if got := h.EWMA(); got < 1 {
		t.Fatalf("EWMA decayed to %v; must stay >= 1ns once data exists", got)
	}
}

// TestQuantile checks the interpolated estimate against a uniform fill.
func TestQuantile(t *testing.T) {
	h := NewHistogram([]time.Duration{100, 200, 300, 400}) // ns bounds
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must estimate 0")
	}
	// 100 observations spread evenly: 25 per bucket.
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i*4 + 1))
	}
	if got := h.Quantile(0.5); got < 150 || got > 250 {
		t.Fatalf("p50 = %v, want within (150, 250)", got)
	}
	if got := h.Quantile(1); got != 400 {
		t.Fatalf("p100 = %v, want 400", got)
	}
	// Mass in +Inf pins estimates to the last finite bound.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Hour)
	}
	if got := h.Quantile(0.99); got != 400 {
		t.Fatalf("p99 with +Inf mass = %v, want 400 (last finite bound)", got)
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines; under
// -race this doubles as the lock-freedom proof, and the exact totals prove
// no observation is lost.
func TestConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	var wantSum time.Duration
	for g := 0; g < goroutines; g++ {
		wantSum += time.Duration(g+1) * time.Microsecond * perG
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("snapshot count = %d, want %d", s.Count, goroutines*perG)
	}
}

// TestObserveZeroAlloc gates the hot-path property the whole design leans
// on: recording a sample allocates nothing.
func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	if n := testing.AllocsPerRun(1000, func() { h.Observe(42 * time.Microsecond) }); n != 0 {
		t.Fatalf("Observe: %v allocs/run, want 0", n)
	}
}
