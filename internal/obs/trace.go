package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one named stage inside a request trace, with offsets relative to
// the trace's start so snapshots are self-contained.
type Span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"` // offset from the trace start
	DurNS   int64  `json:"dur_ns"`
}

// Trace records one request's path through the service: which endpoint,
// how long, and the per-stage spans (cache probe, coalesced-flight wait,
// store read, analysis) the handlers chose to record. Traces are mutable
// while the request runs and frozen by Finish; the ring snapshots them
// under their own mutex, so a span landing from a detached coalesced
// flight after the response went out is still recorded safely.
//
// All methods are nil-safe: code paths instrument unconditionally and a
// request without tracing (no middleware, background work) costs a nil
// check.
type Trace struct {
	mu       sync.Mutex
	id       string
	endpoint string
	method   string
	path     string
	status   int
	start    time.Time
	durNS    int64
	spans    []Span
}

// traceSpanCap preallocates span storage; a request recording at most this
// many spans never reallocates. Overflow spans still append (correctness
// over the alloc nicety — tracing is request-path, not analysis-path).
const traceSpanCap = 8

// NewTrace starts a trace for one request.
func NewTrace(id, endpoint, method, path string, start time.Time) *Trace {
	return &Trace{
		id:       id,
		endpoint: endpoint,
		method:   method,
		path:     path,
		start:    start,
		spans:    make([]Span, 0, traceSpanCap),
	}
}

// AddSpan records a stage that started at start and ends now.
func (t *Trace) AddSpan(name string, start time.Time) {
	if t == nil {
		return
	}
	t.AddSpanDur(name, start, time.Since(start))
}

// AddSpanDur records a stage with an explicit duration.
func (t *Trace) AddSpanDur(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Name:    name,
		StartNS: start.Sub(t.start).Nanoseconds(),
		DurNS:   d.Nanoseconds(),
	})
	t.mu.Unlock()
}

// Finish stamps the request's terminal status and total duration.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = status
	t.durNS = time.Since(t.start).Nanoseconds()
	t.mu.Unlock()
}

// ID returns the trace's request ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// ServerTiming renders the spans recorded so far as a Server-Timing header
// value (durations in milliseconds, per the spec), always including a
// total of the elapsed request time so the header is never empty. Span
// names are sanitized to valid header tokens.
func (t *Trace) ServerTiming() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, s := range t.spans {
		fmt.Fprintf(&b, "%s;dur=%.3f, ", timingToken(s.Name), float64(s.DurNS)/1e6)
	}
	fmt.Fprintf(&b, "total;dur=%.3f", float64(time.Since(t.start).Nanoseconds())/1e6)
	return b.String()
}

// timingToken maps a span name to an RFC 9110 token (Server-Timing metric
// names may not contain separators).
func timingToken(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, name)
}

// TraceView is the JSON snapshot of one trace, newest-first in ring
// snapshots.
type TraceView struct {
	ID        string `json:"id"`
	Endpoint  string `json:"endpoint"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	Status    int    `json:"status,omitempty"`
	StartUnix int64  `json:"start_unix_nano"`
	DurNS     int64  `json:"dur_ns"`
	Spans     []Span `json:"spans,omitempty"`
}

func (t *Trace) view() TraceView {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{
		ID:        t.id,
		Endpoint:  t.endpoint,
		Method:    t.method,
		Path:      t.path,
		Status:    t.status,
		StartUnix: t.start.UnixNano(),
		DurNS:     t.durNS,
		Spans:     make([]Span, len(t.spans)),
	}
	copy(v.Spans, t.spans)
	return v
}

// TraceRing retains the last N finished traces in a fixed ring buffer.
// Recording overwrites the oldest entry; Snapshot copies, so holding a
// snapshot never pins the ring.
type TraceRing struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total int64
}

// NewTraceRing returns a ring retaining up to n traces (minimum 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]*Trace, n)}
}

// Add inserts a trace, evicting the oldest when full. Nil traces are
// ignored so callers need not branch.
func (r *TraceRing) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns how many traces have ever been added (eviction included).
func (r *TraceRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained traces newest-first.
func (r *TraceRing) Snapshot() []TraceView {
	r.mu.Lock()
	traces := make([]*Trace, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		// Walk backwards from the most recent insertion point.
		t := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if t != nil {
			traces = append(traces, t)
		}
	}
	r.mu.Unlock()
	out := make([]TraceView, len(traces))
	for i, t := range traces {
		out[i] = t.view()
	}
	return out
}

// NewRequestID returns a 16-hex-character random request ID, the
// correlation key between access logs, traces and response headers.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

type traceKey struct{}

// WithTrace attaches a trace to the context for downstream stages.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFromContext returns the request's trace, or nil (every Trace method
// is nil-safe, so callers instrument unconditionally).
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
