// Package rta provides the generic fixed-point iteration used by every
// response-time analysis in this repository (Lemma 2's request response
// times and Theorem 1's path response times are both least fixed points of
// monotone recurrences).
//
//schedlint:deterministic
package rta

import "dpcpp/internal/rt"

// MaxIterations bounds a single fixed-point computation; recurrences over
// integer nanoseconds converge long before this on any schedulable input.
const MaxIterations = 1 << 20

// FixPoint computes the least fixed point of the monotone function f
// starting from x0, i.e. the limit of x_{k+1} = f(x_k). It stops as soon as
// the iterate exceeds limit and reports converged=false (callers treat that
// as "deadline exceeded / unschedulable"). f must satisfy f(x) >= x0 and be
// monotone non-decreasing for the result to be the least fixed point; a
// detected non-monotone step (f(x) < x, a caller bug) also reports
// converged=false, so a broken recurrence can never certify schedulability.
func FixPoint(x0, limit rt.Time, f func(rt.Time) rt.Time) (x rt.Time, converged bool) {
	x = x0
	for i := 0; i < MaxIterations; i++ {
		if x > limit {
			return x, false
		}
		next := f(x)
		if next < x {
			// A non-monotone step indicates a bug in the caller's
			// recurrence. The iterate is not a fixed point (f(x) != x), so
			// reporting convergence here would let a buggy recurrence
			// certify schedulability; fail the computation instead —
			// callers treat non-convergence as "unschedulable", which is
			// the only sound verdict available.
			return x, false
		}
		if next == x {
			return x, true
		}
		x = next
	}
	return rt.Infinity, false
}

// Eta returns eta_j(L) = ceil((L + R) / T), the maximum number of jobs of a
// task with period T and response-time bound R that can overlap a window of
// length L (Sec. IV-B).
func Eta(L, R, T rt.Time) int64 {
	if L < 0 {
		return 0
	}
	if rt.SatAdd(L, R) >= rt.Infinity {
		return int64(rt.Infinity)
	}
	return rt.CeilDiv(L+R, T)
}
