package rta

import (
	"testing"
	"testing/quick"

	"dpcpp/internal/rt"
)

func TestFixPointConstant(t *testing.T) {
	x, ok := FixPoint(5, 100, func(x rt.Time) rt.Time { return 42 })
	if !ok || x != 42 {
		t.Errorf("FixPoint(const 42) = %d, %v", x, ok)
	}
}

func TestFixPointIdentity(t *testing.T) {
	x, ok := FixPoint(7, 100, func(x rt.Time) rt.Time { return x })
	if !ok || x != 7 {
		t.Errorf("FixPoint(identity) = %d, %v", x, ok)
	}
}

func TestFixPointClassicRTA(t *testing.T) {
	// Classic uniprocessor RTA: C=2, one higher-priority task C=1, T=4.
	// R = 2 + ceil(R/4)*1 -> R = 3.
	f := func(x rt.Time) rt.Time { return 2 + rt.CeilDiv(x, 4) }
	x, ok := FixPoint(2, 100, f)
	if !ok || x != 3 {
		t.Errorf("classic RTA fixed point = %d, %v; want 3", x, ok)
	}
}

func TestFixPointDivergence(t *testing.T) {
	f := func(x rt.Time) rt.Time { return x + 1 }
	x, ok := FixPoint(0, 50, f)
	if ok {
		t.Errorf("divergent recurrence reported converged at %d", x)
	}
	if x <= 50 {
		t.Errorf("divergent recurrence stopped below limit: %d", x)
	}
}

// TestFixPointNonMonotone: a recurrence that steps downward is a caller
// bug, not a fixed point. FixPoint must report converged=false so the
// caller's "non-convergence = unschedulable" handling keeps the verdict
// sound, instead of silently certifying a value with f(x) != x.
func TestFixPointNonMonotone(t *testing.T) {
	calls := 0
	f := func(x rt.Time) rt.Time {
		calls++
		if x < 10 {
			return x + 5
		}
		return x - 3 // deliberately non-monotone past 10
	}
	x, ok := FixPoint(0, 100, f)
	if ok {
		t.Errorf("non-monotone recurrence reported converged=true at %d", x)
	}
	if calls == 0 || calls > 4 {
		t.Errorf("expected the downward step to stop iteration quickly, got %d calls", calls)
	}

	// Immediately decreasing from x0 must fail too.
	if x, ok := FixPoint(50, 100, func(x rt.Time) rt.Time { return x - 1 }); ok {
		t.Errorf("decreasing recurrence reported converged=true at %d", x)
	}
}

func TestFixPointLimitExceededImmediately(t *testing.T) {
	if _, ok := FixPoint(200, 100, func(x rt.Time) rt.Time { return x }); ok {
		t.Error("x0 above limit must report non-convergence")
	}
}

func TestFixPointIsLeast(t *testing.T) {
	// f has fixed points at 10 and 20 (staircase); starting below 10 we
	// must land on 10.
	f := func(x rt.Time) rt.Time {
		if x <= 10 {
			return 10
		}
		return 20
	}
	x, ok := FixPoint(0, 100, f)
	if !ok || x != 10 {
		t.Errorf("least fixed point = %d, %v; want 10", x, ok)
	}
}

func TestEta(t *testing.T) {
	cases := []struct {
		L, R, T rt.Time
		want    int64
	}{
		{0, 0, 10, 0},
		{1, 0, 10, 1},
		{10, 0, 10, 1},
		{11, 0, 10, 2},
		{10, 5, 10, 2},
		{100, 10, 10, 11},
		{-5, 3, 10, 0},
	}
	for _, c := range cases {
		if got := Eta(c.L, c.R, c.T); got != c.want {
			t.Errorf("Eta(%d,%d,%d) = %d, want %d", c.L, c.R, c.T, got, c.want)
		}
	}
}

func TestEtaMonotoneInWindow(t *testing.T) {
	f := func(l1, l2 uint16, r uint8, tRaw uint8) bool {
		T := rt.Time(tRaw%100) + 1
		R := rt.Time(r)
		a, b := rt.Time(l1), rt.Time(l2)
		if a > b {
			a, b = b, a
		}
		return Eta(a, R, T) <= Eta(b, R, T)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEtaCountsJobs(t *testing.T) {
	// Property: eta(L) * T >= L (enough jobs to cover the window when R=T).
	f := func(lRaw uint16, tRaw uint8) bool {
		T := rt.Time(tRaw%50) + 1
		L := rt.Time(lRaw)
		return Eta(L, T, T)*T >= L
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
