package rta

import "dpcpp/internal/rt"

// FixPointBatch computes the least fixed points of len(xs) independent
// monotone recurrences in lockstep: each wave advances every unconverged
// recurrence by one step x_i <- step(i, x_i). Iterating a task's path views
// together keeps the shared interference tables (eta terms, epsilon values)
// cache-resident across the whole batch instead of streaming them once per
// view.
//
// xs[i] holds the i-th start value on entry and its fixed point on a true
// return. done is caller-provided scratch with len(done) >= len(xs);
// FixPointBatch resets it. Per recurrence the iterate sequence is exactly
// FixPoint's, so the computed fixed points are bit-identical; the batch
// returns false as soon as any recurrence exceeds limit, steps
// non-monotonically (a caller bug — see FixPoint), or outlives
// MaxIterations. Callers treat a false return exactly like a single
// diverged FixPoint: one diverged view makes the task unschedulable, so no
// per-view results are needed.
//
// Warm starts: because each step function is monotone, iterating from ANY
// start value at or below the least fixed point converges to exactly that
// least fixed point — usually in far fewer waves. The incremental delta
// analyzer exploits this by seeding xs[i] with max(cold start, retained
// fixed point) when a patch can only grow the recurrence inputs (the old
// least fixed point is then a lower bound on the new one). The caller owns
// that bound: a seed ABOVE the least fixed point is silently absorbed into
// a larger fixed point of the same recurrence (see
// TestFixPointBatchWarmStart's overshoot example), so FixPointBatch cannot
// detect it — never seed from state whose inputs may have shrunk.
//
//schedlint:hotpath
func FixPointBatch(xs []rt.Time, limit rt.Time, done []bool, step func(i int, x rt.Time) rt.Time) bool {
	done = done[:len(xs)]
	for i := range done {
		done[i] = false
	}
	remaining := len(xs)
	for iter := 0; iter < MaxIterations && remaining > 0; iter++ {
		for i, x := range xs {
			if done[i] {
				continue
			}
			if x > limit {
				return false
			}
			next := step(i, x)
			if next < x {
				return false
			}
			if next == x {
				done[i] = true
				remaining--
				continue
			}
			xs[i] = next
		}
	}
	return remaining == 0
}
