package rta

import (
	"math/rand"
	"testing"

	"dpcpp/internal/rt"
)

// batchRecurrences builds a family of classic-RTA-shaped recurrences
// x -> c_i + sum_j ceil(x/T_ij)*C_ij from a seeded source.
func batchRecurrences(rng *rand.Rand, n int) ([]rt.Time, []func(rt.Time) rt.Time) {
	x0s := make([]rt.Time, n)
	fns := make([]func(rt.Time) rt.Time, n)
	for i := range fns {
		c := rt.Time(1 + rng.Intn(20))
		type hp struct{ T, C rt.Time }
		terms := make([]hp, rng.Intn(4))
		for j := range terms {
			terms[j] = hp{T: rt.Time(2 + rng.Intn(30)), C: rt.Time(1 + rng.Intn(5))}
		}
		x0s[i] = c
		fns[i] = func(x rt.Time) rt.Time {
			total := c
			for _, h := range terms {
				total = rt.SatAdd(total, rt.SatMul(rt.CeilDiv(x, h.T), h.C))
			}
			return total
		}
	}
	return x0s, fns
}

// TestFixPointBatchMatchesFixPoint pins the batch contract: for any mix of
// converging recurrences the batch returns exactly the per-recurrence
// FixPoint values, and a single diverging member fails the whole batch
// exactly as the per-view loop would.
func TestFixPointBatchMatchesFixPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8)
		limit := rt.Time(1 + rng.Intn(400))
		x0s, fns := batchRecurrences(rng, n)

		wantOK := true
		want := make([]rt.Time, n)
		for i, f := range fns {
			x, ok := FixPoint(x0s[i], limit, f)
			want[i] = x
			if !ok {
				wantOK = false
			}
		}

		xs := append([]rt.Time(nil), x0s...)
		done := make([]bool, n)
		gotOK := FixPointBatch(xs, limit, done, func(i int, x rt.Time) rt.Time { return fns[i](x) })
		if gotOK != wantOK {
			t.Fatalf("trial %d: batch ok=%v, per-view ok=%v", trial, gotOK, wantOK)
		}
		if !gotOK {
			continue
		}
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("trial %d: xs[%d] = %d, FixPoint = %d", trial, i, xs[i], want[i])
			}
		}
	}
}

func TestFixPointBatchEmpty(t *testing.T) {
	if !FixPointBatch(nil, 100, nil, func(int, rt.Time) rt.Time { panic("no members") }) {
		t.Fatal("empty batch must converge trivially")
	}
}

func TestFixPointBatchNonMonotoneStep(t *testing.T) {
	xs := []rt.Time{5, 5}
	done := make([]bool, 2)
	ok := FixPointBatch(xs, 100, done, func(i int, x rt.Time) rt.Time {
		if i == 1 {
			return x - 1 // caller bug: must not certify convergence
		}
		return x
	})
	if ok {
		t.Fatal("non-monotone member certified the batch")
	}
}

func TestFixPointBatchLimit(t *testing.T) {
	xs := []rt.Time{1, 1}
	done := make([]bool, 2)
	ok := FixPointBatch(xs, 10, done, func(i int, x rt.Time) rt.Time {
		if i == 0 {
			return 3 // converges well under the limit
		}
		return x + 7 // diverges past it
	})
	if ok {
		t.Fatal("batch with a diverging member reported converged")
	}
}

// TestFixPointBatchWarmStart pins the warm-start contract the delta
// analyzer relies on: seeding a monotone recurrence anywhere in
// [cold start, least fixed point] converges to the identical least fixed
// point, and convergence stays monotone (non-monotone steps are still
// rejected). It also documents the hazard that makes the contract
// one-sided: a seed above the least fixed point lands on a larger fixed
// point with no error.
func TestFixPointBatchWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		x0s, fns := batchRecurrences(rng, n)
		limit := rt.Time(1 << 30)

		cold := append([]rt.Time(nil), x0s...)
		done := make([]bool, n)
		if !FixPointBatch(cold, limit, done, func(i int, x rt.Time) rt.Time { return fns[i](x) }) {
			continue
		}
		// Seed each recurrence at a random point between its cold start and
		// its least fixed point (inclusive).
		warm := make([]rt.Time, n)
		for i := range warm {
			warm[i] = x0s[i]
			if span := cold[i] - x0s[i]; span > 0 {
				warm[i] += rt.Time(rng.Int63n(int64(span) + 1))
			}
		}
		if !FixPointBatch(warm, limit, done, func(i int, x rt.Time) rt.Time { return fns[i](x) }) {
			t.Fatalf("trial %d: warm-started batch diverged", trial)
		}
		for i := range warm {
			if warm[i] != cold[i] {
				t.Fatalf("trial %d: warm start from <= lfp reached %d, cold reached %d",
					trial, warm[i], cold[i])
			}
		}
	}

	// Non-monotone steps are still a detected caller bug under warm seeds.
	xs := []rt.Time{10}
	if FixPointBatch(xs, 1000, make([]bool, 1), func(i int, x rt.Time) rt.Time { return x - 1 }) {
		t.Fatal("non-monotone step accepted")
	}

	// The documented overshoot: x -> 10*ceil(x/10) is fixed at every
	// multiple of 10. From a cold start of 4 the least fixed point is 10,
	// but seeding at 15 (> 10) settles on 20 — a perfectly valid larger
	// fixed point, with no error to catch. This is why warm seeds must be
	// provable lower bounds on the new least fixed point.
	step := func(i int, x rt.Time) rt.Time { return 10 * rt.CeilDiv(x, 10) }
	lfp := []rt.Time{4}
	FixPointBatch(lfp, 1000, make([]bool, 1), step)
	over := []rt.Time{15}
	FixPointBatch(over, 1000, make([]bool, 1), step)
	if lfp[0] != 10 || over[0] != 20 {
		t.Fatalf("overshoot example: lfp=%d overshoot=%d (want 10 and 20)", lfp[0], over[0])
	}
}
