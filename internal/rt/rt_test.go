package rt

import (
	"testing"
	"testing/quick"
)

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want Time }{
		{0, 1, 0},
		{1, 1, 1},
		{1, 2, 1},
		{2, 2, 1},
		{3, 2, 2},
		{10, 3, 4},
		{9, 3, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(-1, 2) did not panic")
		}
	}()
	CeilDiv(-1, 2)
}

func TestSatAddSaturates(t *testing.T) {
	if got := SatAdd(Infinity, 1); got != Infinity {
		t.Errorf("SatAdd(Infinity,1) = %d", got)
	}
	if got := SatAdd(Infinity-1, 5); got != Infinity {
		t.Errorf("SatAdd(near-Infinity,5) = %d", got)
	}
	if got := SatAdd(2, 3); got != 5 {
		t.Errorf("SatAdd(2,3) = %d", got)
	}
}

func TestSatMulSaturates(t *testing.T) {
	if got := SatMul(Infinity, 2); got != Infinity {
		t.Errorf("SatMul(Infinity,2) = %d", got)
	}
	if got := SatMul(0, Infinity); got != 0 {
		t.Errorf("SatMul(0,Infinity) = %d", got)
	}
	if got := SatMul(7, 6); got != 42 {
		t.Errorf("SatMul(7,6) = %d", got)
	}
}

func TestSatOpsNeverExceedInfinity(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := Time(a)*Microsecond, Time(b)*Microsecond
		return SatAdd(x, y) <= Infinity && SatMul(x, y) <= Infinity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDivIsCeiling(t *testing.T) {
	f := func(a uint16, b uint16) bool {
		x, y := Time(a), Time(b%1000+1)
		got := CeilDiv(x, y)
		return got*y >= x && (got-1)*y < x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPriorityHigher(t *testing.T) {
	if !Priority(5).Higher(3) {
		t.Error("Priority(5).Higher(3) = false")
	}
	if Priority(3).Higher(5) {
		t.Error("Priority(3).Higher(5) = true")
	}
	if Priority(3).Higher(3) {
		t.Error("Priority(3).Higher(3) = true")
	}
}

func TestFormatTime(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{Infinity, "inf"},
		{2 * Second, "2s"},
		{5 * Millisecond, "5ms"},
		{15 * Microsecond, "15us"},
		{123, "123ns"},
		{1500, "1500ns"},
	}
	for _, c := range cases {
		if got := FormatTime(c.in); got != c.want {
			t.Errorf("FormatTime(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
