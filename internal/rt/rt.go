// Package rt provides the primitive types shared by every layer of the
// DPCP-p reproduction: discrete time, task priorities, and identifiers for
// tasks, vertices, processors and resources.
//
// Time is measured in integer nanoseconds. The paper's parameter space
// (critical sections of 15–100 µs, periods of 10–1000 ms) fits comfortably
// in an int64 nanosecond clock; analysis fixed points additionally guard
// against overflow with an explicit horizon.
package rt

import (
	"fmt"
	"math"
)

// Time is a point in time or a duration, in nanoseconds.
type Time = int64

// Convenience duration units, all expressed in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Infinity is a sentinel duration larger than any schedulable horizon.
// Fixed-point iterations that exceed their deadline return Infinity.
const Infinity Time = math.MaxInt64 / 4

// FormatTime renders t with an adaptive unit, for traces and reports.
func FormatTime(t Time) string {
	switch {
	case t >= Infinity:
		return "inf"
	case t >= Second && t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond && t%Millisecond == 0:
		return fmt.Sprintf("%dms", t/Millisecond)
	case t >= Microsecond && t%Microsecond == 0:
		return fmt.Sprintf("%dus", t/Microsecond)
	default:
		return fmt.Sprintf("%dns", t)
	}
}

// CeilDiv returns ceil(a/b) for non-negative a and positive b.
func CeilDiv(a, b Time) Time {
	if a < 0 || b <= 0 {
		panic(fmt.Sprintf("rt.CeilDiv: invalid arguments a=%d b=%d", a, b))
	}
	return (a + b - 1) / b
}

// SatAdd adds two non-negative durations, saturating at Infinity so that
// divergent fixed points never wrap around.
func SatAdd(a, b Time) Time {
	if a >= Infinity || b >= Infinity || a > Infinity-b {
		return Infinity
	}
	return a + b
}

// SatMul multiplies two non-negative durations, saturating at Infinity.
func SatMul(a, b Time) Time {
	if a == 0 || b == 0 {
		return 0
	}
	if a >= Infinity || b >= Infinity || a > Infinity/b {
		return Infinity
	}
	return a * b
}

// Priority is a task base priority. Larger values mean higher priority,
// mirroring the paper's convention that pi_i < pi_h denotes that tau_i has
// lower base priority than tau_h. Priorities are unique within a taskset.
type Priority int

// Higher reports whether p outranks q.
func (p Priority) Higher(q Priority) bool { return p > q }

// TaskID identifies a task within a taskset (dense, 0-based).
type TaskID int

// VertexID identifies a vertex within its task's DAG (dense, 0-based).
type VertexID int

// ResourceID identifies a shared resource (dense, 0-based).
type ResourceID int

// ProcID identifies a physical processor (dense, 0-based).
type ProcID int

// NoProc marks an unassigned processor slot.
const NoProc ProcID = -1
