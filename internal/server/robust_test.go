package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/store"
)

// blockAnalyses swaps the engine's analysis function for one that parks
// every call on the returned release channel (closing it lets all calls
// through); entered receives one value per call that reached the analysis.
func blockAnalyses(s *Server) (entered chan struct{}, release chan struct{}) {
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	inner := s.engine.testFn
	s.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		entered <- struct{}{}
		<-release
		return inner(m, ts, opts)
	}
	return entered, release
}

// TestCancelFreesWorkerSlot is the acceptance regression for cancellation:
// with one worker slot held by a blocked analysis, a second request that is
// canceled while queued must return immediately with context.Canceled,
// count in the canceled metric, and leave the slot reusable.
func TestCancelFreesWorkerSlot(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	entered, release := blockAnalyses(s)

	ts1 := jsonRoundTrip(t, testTaskset(t, 0))
	done1 := make(chan error, 1)
	go func() {
		_, err := s.engine.analyze(context.Background(), ts1.Hash(), ts1, analysis.DPCPpEN, analysis.Options{}, false)
		done1 <- err
	}()
	<-entered // the only worker slot is now held

	ts2 := jsonRoundTrip(t, testTaskset(t, 7))
	ctx, cancel := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() {
		_, err := s.engine.analyze(ctx, ts2.Hash(), ts2, analysis.DPCPpEN, analysis.Options{}, false)
		done2 <- err
	}()
	// Let the second call reach the slot queue, then abandon it. The sleep
	// only widens the window; correctness does not depend on it (a cancel
	// before queuing returns the same way).
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done2:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled analyze returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled analyze did not return: client disconnects would leak worker slots")
	}
	if got := s.engine.canceled.Load(); got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}

	// The slot is reusable: finish the first analysis, then a third
	// distinct one must run to completion on the freed slot.
	close(release)
	if err := <-done1; err != nil {
		t.Fatalf("blocked analysis failed after release: %v", err)
	}
	ts3 := jsonRoundTrip(t, testTaskset(t, 13))
	mr, err := s.engine.analyze(context.Background(), ts3.Hash(), ts3, analysis.DPCPpEN, analysis.Options{}, false)
	if err != nil || mr == nil {
		t.Fatalf("post-cancel analyze: %v (the canceled call leaked the slot?)", err)
	}
}

// TestWaiterAbandonKeepsSharedComputation: a coalesced waiter that cancels
// must not cancel the in-flight computation other callers (or the cache)
// still want — the leader completes, the result is cached, and exactly one
// analysis ran.
func TestWaiterAbandonKeepsSharedComputation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	entered, release := blockAnalyses(s)

	ts := jsonRoundTrip(t, testTaskset(t, 0))
	h := ts.Hash()
	key := cacheKey(h, analysis.DPCPpEN, analysis.Options{}, false)
	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.engine.analyze(context.Background(), h, ts, analysis.DPCPpEN, analysis.Options{}, false)
		leaderDone <- err
	}()
	<-entered // leader is computing

	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := s.engine.analyze(wctx, h, ts, analysis.DPCPpEN, analysis.Options{}, false)
		waiterDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.engine.flight.waiting(key) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	wcancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter returned %v, want context.Canceled", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after waiter abandoned: %v", err)
	}
	if _, ok := s.engine.cache.get(key); !ok {
		t.Fatal("completed computation did not land in the cache")
	}
	if got := s.engine.analyses.Load(); got != 1 {
		t.Fatalf("analyses = %d, want exactly 1", got)
	}
}

// TestAnalyzeTimeoutMS: a request whose timeout_ms expires gets the
// structured 503 timeout verdict, counts in deadline_exceeded, and — since
// the computation still completes and caches — an immediate retry succeeds
// without a second analysis.
func TestAnalyzeTimeoutMS(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	entered, release := blockAnalyses(s)

	body, err := json.Marshal(AnalyzeRequest{
		Taskset:   jsonRoundTrip(t, testTaskset(t, 0)),
		Methods:   []string{string(analysis.DPCPpEN)},
		TimeoutMS: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := post(t, s, "/v1/analyze", body)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body.String())
	}
	var er errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || !er.Timeout {
		t.Fatalf("timeout verdict not structured: %s (%v)", w.Body.String(), err)
	}
	if got := s.Metrics().DeadlineExceeded; got != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", got)
	}

	// The abandoned-but-started analysis runs to completion and caches;
	// the retry is served from it.
	<-entered
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if w := post(t, s, "/v1/analyze", body); w.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retry after timeout never succeeded")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.engine.analyses.Load(); got != 1 {
		t.Fatalf("analyses = %d, want 1 (timeout must not discard the computation)", got)
	}
}

// TestServerWideRequestTimeout: the -request-timeout config bounds requests
// that set no timeout_ms of their own.
func TestServerWideRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RequestTimeout: 30 * time.Millisecond})
	entered, release := blockAnalyses(s)
	defer func() { <-entered; close(release) }()

	w := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body.String())
	}
	var er errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || !er.Timeout {
		t.Fatalf("timeout verdict not structured: %s", w.Body.String())
	}
}

// TestBatchTimeout: a batch past its deadline returns one structured 503 —
// never a partial result set.
func TestBatchTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	entered, release := blockAnalyses(s)
	defer func() { <-entered; close(release) }()

	req := BatchRequest{
		Tasksets: []*model.Taskset{
			jsonRoundTrip(t, testTaskset(t, 0)),
			jsonRoundTrip(t, testTaskset(t, 5)),
		},
		Methods:   []string{string(analysis.DPCPpEN)},
		TimeoutMS: 30,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := post(t, s, "/v1/analyze/batch", body)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body.String())
	}
	if m := s.Metrics(); m.QueuedJobs != 0 {
		t.Fatalf("timed-out batch left %d jobs admitted", m.QueuedJobs)
	}
}

var errInjected = errors.New("injected fault: input/output error")

// TestStoreBreakerDegradedMode drives the breaker end to end over HTTP:
// consecutive store failures open it, /healthz reports degraded (still
// 200), /v1/metrics exposes state and trips, and — the perf guarantee —
// requests under an open breaker touch the disk zero times while still
// being served.
func TestStoreBreakerDegradedMode(t *testing.T) {
	var reads, writes atomic.Int64
	var failing atomic.Bool
	hooks := &store.Hooks{
		BeforeRead: func(string) error {
			reads.Add(1)
			if failing.Load() {
				return errInjected
			}
			return nil
		},
		BeforeWrite: func(string) error {
			writes.Add(1)
			if failing.Load() {
				return errInjected
			}
			return nil
		},
	}
	s := newTestServer(t, Config{
		Workers:               2,
		StoreDir:              t.TempDir(),
		StoreBreakerThreshold: 4,
		StoreBreakerProbe:     time.Hour, // no probe during the test
		storeHooks:            hooks,
	})

	var h healthResponse
	if code := sweepGet(t, s, "/healthz", &h); code != http.StatusOK || !h.OK || h.Degraded {
		t.Fatalf("healthy server: code=%d %+v", code, h)
	}
	if st := s.Metrics().StoreState; st != store.BreakerClosed {
		t.Fatalf("store_state %q, want closed", st)
	}

	// Each cache-missing analysis costs one failed read and one failed
	// write; two requests reach the threshold of 4.
	failing.Store(true)
	for i := 0; i < 2; i++ {
		w := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, rtShift(100+i)), string(analysis.DPCPpEN)))
		if w.Code != http.StatusOK {
			t.Fatalf("request %d under store faults: %d (store failures must degrade, not fail)", i, w.Code)
		}
	}
	m := s.Metrics()
	if m.StoreState != store.BreakerOpen || m.StoreTrips != 1 {
		t.Fatalf("after %d store errors: state=%q trips=%d, want open/1 (%+v)", m.StoreErrors, m.StoreState, m.StoreTrips, m)
	}
	if code := sweepGet(t, s, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("degraded healthz must stay 200, got %d", code)
	}
	if !h.OK || !h.Degraded || h.StoreState != store.BreakerOpen {
		t.Fatalf("degraded healthz body %+v", h)
	}

	// With the breaker open, requests skip the disk entirely: zero store
	// syscalls, every request still served.
	reads.Store(0)
	writes.Store(0)
	for i := 0; i < 3; i++ {
		w := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, rtShift(200+i)), string(analysis.DPCPpEN)))
		if w.Code != http.StatusOK {
			t.Fatalf("request %d under open breaker: %d", i, w.Code)
		}
	}
	if r, wr := reads.Load(), writes.Load(); r != 0 || wr != 0 {
		t.Fatalf("open breaker still cost %d reads, %d writes; want zero store syscalls", r, wr)
	}
}

// TestStoreBreakerRecovers: once the disk heals, the next probe closes the
// breaker and persistence resumes.
func TestStoreBreakerRecovers(t *testing.T) {
	var failing atomic.Bool
	hooks := &store.Hooks{
		BeforeRead: func(string) error {
			if failing.Load() {
				return errInjected
			}
			return nil
		},
		BeforeWrite: func(string) error {
			if failing.Load() {
				return errInjected
			}
			return nil
		},
	}
	s := newTestServer(t, Config{
		Workers:               2,
		StoreDir:              t.TempDir(),
		StoreBreakerThreshold: 2,
		StoreBreakerProbe:     time.Millisecond,
		storeHooks:            hooks,
	})
	failing.Store(true)
	post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN)))
	if st := s.Metrics().StoreState; st != store.BreakerOpen {
		t.Fatalf("state %q, want open", st)
	}

	failing.Store(false)
	time.Sleep(2 * time.Millisecond) // past the probe interval
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		// Distinct tasksets force store accesses; the first one past the
		// interval is the probe that closes the breaker.
		post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, rtShift(300+i)), string(analysis.DPCPpEN)))
		if s.Metrics().StoreState == store.BreakerClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after recovery: %+v", s.Metrics())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if m := s.Metrics(); m.StorePuts == 0 {
		t.Fatalf("no puts after recovery: %+v", m)
	}
}

// TestSweepDeleteMidCheckpointWrite: DELETE racing an in-flight checkpoint
// write must let the write commit first and then remove the file — never a
// resurrected checkpoint that a later daemon would resume as a ghost job.
func TestSweepDeleteMidCheckpointWrite(t *testing.T) {
	dir := t.TempDir()
	var gate atomic.Bool
	renameEntered := make(chan struct{}, 1)
	renameRelease := make(chan struct{})
	hooks := &store.Hooks{BeforeRename: func(path string) error {
		if gate.CompareAndSwap(true, false) && strings.Contains(path, string(filepath.Separator)+"jobs"+string(filepath.Separator)) {
			renameEntered <- struct{}{}
			<-renameRelease
		}
		return nil
	}}
	s := newTestServer(t, Config{Workers: 2, StoreDir: dir, storeHooks: hooks})
	id := submitSweep(t, s, `{"scenarios":["2a"],"n":1,"seed":2020,"methods":["DPCP-p-EN"]}`)
	waitSweepState(t, s, id, sweepDone)
	j, ok := s.jobs.get(id)
	if !ok {
		t.Fatal("job vanished")
	}

	// Park a checkpoint write mid-rename, then DELETE concurrently. The
	// delete must serialize behind the write (ckmu) and win.
	gate.Store(true)
	ckDone := make(chan struct{})
	go func() { s.jobs.checkpoint(j); close(ckDone) }()
	<-renameEntered
	delCode := make(chan int, 1)
	go func() {
		req := httptest.NewRequest(http.MethodDelete, "/v1/sweeps/"+id, nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		delCode <- w.Code
	}()
	time.Sleep(5 * time.Millisecond) // let DELETE reach the ckmu queue
	close(renameRelease)
	<-ckDone
	if code := <-delCode; code != http.StatusNoContent {
		t.Fatalf("DELETE mid-checkpoint: %d, want 204", code)
	}
	ckPath := filepath.Join(dir, "jobs", id+".json")
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file survived DELETE (err=%v): a restart would resurrect the job", err)
	}
	// A straggler checkpoint after the delete must not resurrect it either.
	s.jobs.checkpoint(j)
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Fatal("late checkpoint resurrected a deleted job")
	}
	var st SweepStatus
	if code := sweepGet(t, s, "/v1/sweeps/"+id, &st); code != http.StatusNotFound {
		t.Fatalf("deleted job still served: %d", code)
	}
}

// rtShift spaces taskset perturbations so distinct test iterations get
// distinct content hashes.
func rtShift(i int) rt.Time { return rt.Time(i) * rt.Microsecond }
