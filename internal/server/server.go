// Package server turns the schedulability engine into a long-running
// service: an HTTP JSON API over the same pure Test(taskset, method)
// function the library and CLI expose.
//
// # Architecture
//
// The layering is engine → pool → server:
//
//   - internal/analysis remains the single source of verdicts; the server
//     never reimplements any analysis.
//   - internal/experiments.ParallelFor is the only scheduling primitive:
//     batch fan-out and grid sweeps drain through it, exactly like the
//     CLI's grids and the audit.
//   - This package adds the service concerns on top: canonical
//     content-addressed caching (model.Taskset.Hash), request coalescing
//     (singleflight), bounded admission with backpressure (429 when the
//     job queue is full), structured 4xx errors for hostile input, and
//     metrics.
//
// Because Test is a pure deterministic function of the canonical taskset,
// identical requests — byte-identical or merely semantically identical —
// are served from the sharded LRU result cache, and N concurrent identical
// misses cost exactly one analysis.
//
// # Endpoints
//
//	POST /v1/analyze        one taskset, one or all methods
//	POST /v1/analyze/batch  many tasksets, shared options
//	GET  /v1/grid           streaming acceptance-curve points (NDJSON)
//	POST /v1/sweeps         submit an asynchronous multi-scenario sweep job
//	GET  /v1/sweeps         list sweep jobs
//	GET  /v1/sweeps/{id}    sweep-job progress
//	GET  /v1/sweeps/{id}/results  completed acceptance curves
//	DELETE /v1/sweeps/{id}  cancel and forget a sweep job
//	GET  /v1/metrics        cache/coalescing/admission/store counters
//	GET  /healthz           liveness
//
// # Durability
//
// With Config.StoreDir set, results write through to an on-disk
// content-addressed store (internal/store) and sweep jobs checkpoint their
// per-point progress, so a restarted daemon keeps its cache warm and
// resumes unfinished sweeps instead of dropping them (see jobs.go).
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/store"
)

// Defaults applied by Config.normalized.
const (
	DefaultCacheSize = 4096
	DefaultMaxBody   = 8 << 20 // 8 MiB of taskset JSON
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrently executing analyses (<= 0 = GOMAXPROCS).
	Workers int
	// CacheSize is the result cache capacity in entries (<= 0 = 4096).
	CacheSize int
	// MaxBody caps request bodies in bytes (<= 0 = 8 MiB); larger bodies
	// get 413 before any decoding work.
	MaxBody int64
	// MaxQueue bounds admitted-but-unfinished analysis jobs. A request
	// whose jobs cannot fit while the server is busy gets 429 +
	// Retry-After; one that could never fit even on an idle server gets a
	// non-retryable 400 (<= 0 = max(1024 * workers, 65536), large enough
	// that every documented grid/batch request fits on a 1-core host).
	MaxQueue int
	// StoreDir, when non-empty, roots the persistent layer: an on-disk
	// content-addressed result store backing the in-memory LRU, plus the
	// sweep-job checkpoints under StoreDir/jobs. Empty disables
	// persistence (results live only in the LRU, sweep jobs only in
	// memory).
	StoreDir string
	// DisableResume skips re-starting unfinished checkpointed sweep jobs
	// found in StoreDir/jobs at startup (they remain listed, paused, until
	// a daemon with resume enabled picks them up).
	DisableResume bool
}

func (c Config) normalized() Config {
	c.Workers = experiments.Workers(c.Workers)
	if c.CacheSize <= 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBody
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024 * c.Workers
		if c.MaxQueue < 65536 {
			c.MaxQueue = 65536
		}
	}
	return c
}

// fastResponse is one exact-body cache entry: the serialized response plus
// how many method results it carries, so fast-path hit accounting matches
// cachedAll (one cache hit per method, not per request).
type fastResponse struct {
	body    []byte
	methods int
}

// Server is the http.Handler exposing the analysis service.
type Server struct {
	cfg    Config
	engine *engine
	mux    *http.ServeMux
	jobs   *jobRegistry
	// fast serves byte-identical repeats of /v1/analyze bodies without
	// decoding, validating or hashing the taskset again: the stored
	// response keyed by the SHA-256 of the raw body. Real fleets re-submit
	// literally identical requests, and the response is a pure function of
	// the body, so this is safe and turns the hit path into a hash plus a
	// write.
	fast *lru[fastResponse]
}

// New builds a Server. It is ready to serve immediately; wire it into an
// http.Server for listening and graceful shutdown (see cmd/schedd). With
// cfg.StoreDir set, it opens the persistent result store and loads
// checkpointed sweep jobs, resuming unfinished ones unless
// cfg.DisableResume is set. Call Close on shutdown to checkpoint and stop
// the sweep runner.
func New(cfg Config) (*Server, error) {
	cfg = cfg.normalized()
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		if st, err = store.Open(cfg.StoreDir); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:    cfg,
		engine: newEngine(cfg.Workers, cfg.CacheSize, int64(cfg.MaxQueue), st),
		mux:    http.NewServeMux(),
		fast:   newLRU[fastResponse](cfg.CacheSize),
	}
	var err error
	if s.jobs, err = newJobRegistry(s, st); err != nil {
		return nil, err
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/analyze/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/grid", s.handleGrid)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepDelete)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleSweepResults)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Close stops the sweep-job runner: the in-flight job stops at its next
// point boundary, its progress is checkpointed (when a store is
// configured), and Close returns once the runner has exited. In-flight
// HTTP requests are the http.Server's to drain, not Close's.
func (s *Server) Close() { s.jobs.close() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		// The body cap is the first hardening layer: nothing past it ever
		// reaches the JSON decoder, and oversized bodies fail with a
		// structured 413 instead of feeding the model layer unbounded
		// input.
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	}
	s.mux.ServeHTTP(w, r)
}

// Metrics returns a snapshot of the service counters.
func (s *Server) Metrics() Metrics {
	m := s.engine.snapshot()
	s.jobs.fill(&m)
	return m
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// decodeBody decodes one JSON document into dst with the request-boundary
// hardening: the MaxBytesReader cap (413), unknown-field rejection and a
// single-document requirement (400). The taskset itself is then validated
// by model.Finalize, which PR 2 hardened against hostile documents — no
// panic path is reachable from a request body.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return err
		}
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return err
	}
	if dec.More() {
		err := fmt.Errorf("trailing data after JSON document")
		writeError(w, http.StatusBadRequest, "%v", err)
		return err
	}
	return nil
}

// decodeBytes is decodeBody for a pre-read body (the /v1/analyze fast
// path reads the body up front to key the exact-body cache).
func decodeBytes(w http.ResponseWriter, body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return err
	}
	if dec.More() {
		err := fmt.Errorf("trailing data after JSON document")
		writeError(w, http.StatusBadRequest, "%v", err)
		return err
	}
	return nil
}

// finalizeTaskset validates a decoded taskset, translating model's
// rejection into a structured 400 with the taskset's batch position.
func finalizeTaskset(w http.ResponseWriter, ts *model.Taskset, pos string) bool {
	if ts == nil {
		writeError(w, http.StatusBadRequest, "missing taskset%s", pos)
		return false
	}
	if err := ts.Finalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid taskset%s: %v", pos, err)
		return false
	}
	return true
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.engine.requests.Add(1)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "reading request: %v", err)
		}
		return
	}
	bodyKey := sha256.Sum256(body)
	if resp, ok := s.fast.get(string(bodyKey[:])); ok {
		// One hit per method result served, exactly like cachedAll: the
		// fast path is an optimization of the cached path, not a separate
		// accounting regime.
		s.engine.cacheHits.Add(int64(resp.methods))
		w.Header().Set("Content-Type", "application/json")
		w.Write(resp.body)
		return
	}

	var req AnalyzeRequest
	if decodeBytes(w, body, &req) != nil {
		return
	}
	ms, opts, ok := s.validateOptions(w, req.Methods, req.PathCap, req.Placement)
	if !ok || !finalizeTaskset(w, req.Taskset, "") {
		return
	}
	h := req.Taskset.Hash()
	resp := &AnalyzeResponse{Hash: h.String()}
	// A fully-cached request needs zero analysis work, so it is served
	// even when the admission queue is saturated.
	if resp.Results = s.engine.cachedAll(h, ms, opts, req.Explain); resp.Results == nil {
		if !s.admit(w, len(ms)) {
			return
		}
		defer s.engine.release(len(ms))
		resp = s.analyzeOne(h, req.Taskset, ms, opts, req.Explain)
	}

	out, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	out = append(out, '\n') // match json.Encoder framing everywhere else
	s.fast.add(string(bodyKey[:]), fastResponse{body: out, methods: len(ms)})
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.engine.requests.Add(1)
	var req BatchRequest
	if decodeBody(w, r, &req) != nil {
		return
	}
	ms, opts, ok := s.validateOptions(w, req.Methods, req.PathCap, req.Placement)
	if !ok {
		return
	}
	if len(req.Tasksets) == 0 {
		writeError(w, http.StatusBadRequest, "empty tasksets")
		return
	}
	for i, ts := range req.Tasksets {
		if !finalizeTaskset(w, ts, fmt.Sprintf(" at index %d", i)) {
			return
		}
	}
	jobs := len(req.Tasksets) * len(ms)
	if !s.admit(w, jobs) {
		return
	}
	defer s.engine.release(jobs)

	// Hash on the request goroutine (cheap), fan the analyses out over the
	// shared pool primitive. Results land in per-index slots, so no
	// locking and a deterministic response order.
	resp := BatchResponse{Results: make([]*AnalyzeResponse, len(req.Tasksets))}
	hashes := make([]model.Hash, len(req.Tasksets))
	for i, ts := range req.Tasksets {
		hashes[i] = ts.Hash()
		resp.Results[i] = &AnalyzeResponse{
			Hash:    hashes[i].String(),
			Results: make(map[string]*MethodResult, len(ms)),
		}
	}
	var mu sync.Mutex // guards the per-taskset result maps
	experiments.ParallelFor(s.cfg.Workers, jobs, func(_, idx int) {
		ti, mi := idx/len(ms), idx%len(ms)
		mr := s.engine.analyze(hashes[ti], req.Tasksets[ti], ms[mi], opts, false)
		mu.Lock()
		resp.Results[ti].Results[string(ms[mi])] = mr
		mu.Unlock()
	})
	writeJSON(w, http.StatusOK, resp)
}

// analyzeOne runs the methods for one finalized, hashed taskset, fanning
// out over the pool when more than one method was requested.
func (s *Server) analyzeOne(h model.Hash, ts *model.Taskset, ms []analysis.Method,
	opts analysis.Options, explain bool) *AnalyzeResponse {

	resp := &AnalyzeResponse{
		Hash:    h.String(),
		Results: make(map[string]*MethodResult, len(ms)),
	}
	results := make([]*MethodResult, len(ms))
	experiments.ParallelFor(len(ms), len(ms), func(_, i int) {
		results[i] = s.engine.analyze(h, ts, ms[i], opts, explain)
	})
	for i, m := range ms {
		resp.Results[string(m)] = results[i]
	}
	return resp
}

// validateOptions resolves methods, path cap and placement, writing a 400
// on any invalid field.
func (s *Server) validateOptions(w http.ResponseWriter, methods []string,
	pathCap int, placement string) ([]analysis.Method, analysis.Options, bool) {

	ms, err := parseMethods(methods)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, analysis.Options{}, false
	}
	if pathCap < 0 {
		writeError(w, http.StatusBadRequest, "negative path_cap %d", pathCap)
		return nil, analysis.Options{}, false
	}
	pl, err := parsePlacement(placement)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, analysis.Options{}, false
	}
	return ms, analysis.Options{PathCap: pathCap, Placement: pl}, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) // nothing useful to do on a client that went away
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// admit reserves n analysis jobs, writing the appropriate rejection when
// they do not fit: a request that could never fit (n exceeds the queue
// bound outright) gets a non-retryable 400, while a transient full queue
// gets the backpressure 429 + Retry-After.
func (s *Server) admit(w http.ResponseWriter, n int) bool {
	if n > s.cfg.MaxQueue {
		writeError(w, http.StatusBadRequest,
			"request requires %d analysis jobs, above the server's queue capacity %d; reduce n/batch size or raise -max-queue",
			n, s.cfg.MaxQueue)
		return false
	}
	if !s.engine.tryAdmit(n) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "analysis queue full, retry later")
		return false
	}
	return true
}
