// Package server turns the schedulability engine into a long-running
// service: an HTTP JSON API over the same pure Test(taskset, method)
// function the library and CLI expose.
//
// # Architecture
//
// The layering is engine → pool → server:
//
//   - internal/analysis remains the single source of verdicts; the server
//     never reimplements any analysis.
//   - internal/experiments.ParallelFor is the only scheduling primitive:
//     batch fan-out and grid sweeps drain through it, exactly like the
//     CLI's grids and the audit.
//   - This package adds the service concerns on top: canonical
//     content-addressed caching (model.Taskset.Hash), request coalescing
//     (singleflight), bounded admission with backpressure (429 when the
//     job queue is full), structured 4xx errors for hostile input, and
//     metrics.
//
// Because Test is a pure deterministic function of the canonical taskset,
// identical requests — byte-identical or merely semantically identical —
// are served from the sharded LRU result cache, and N concurrent identical
// misses cost exactly one analysis.
//
// # Endpoints
//
//	POST /v1/analyze        one taskset, one or all methods
//	POST /v1/analyze/batch  many tasksets, shared options
//	POST /v1/analyze/delta  what-if query: base hash + patch, answered
//	                        incrementally from retained delta state
//	GET  /v1/grid           streaming acceptance-curve points (NDJSON)
//	POST /v1/sweeps         submit an asynchronous multi-scenario sweep job
//	GET  /v1/sweeps         list sweep jobs
//	GET  /v1/sweeps/{id}    sweep-job progress
//	GET  /v1/sweeps/{id}/results  completed acceptance curves
//	DELETE /v1/sweeps/{id}  cancel and forget a sweep job
//	GET  /v1/metrics        cache/coalescing/admission/store counters (JSON)
//	GET  /metrics           the same state as Prometheus text exposition,
//	                        plus request/stage latency histograms
//	GET  /v1/debug/traces   recent per-request trace spans, newest first
//	GET  /healthz           liveness (200 even when degraded; see body)
//
// # Observability
//
// Every request is traced: a generated request ID is echoed as
// X-Request-ID, per-phase spans (cache probe, singleflight wait, store
// read, analysis) are captured into a bounded ring served by
// GET /v1/debug/traces and summarized in a Server-Timing response header.
// Latencies feed lock-free fixed-bucket histograms — per endpoint, per
// analysis, and per pipeline stage (view enumeration, fixed-point
// iteration, partition rounds) via allocation-free scratch hooks — all
// exported at GET /metrics in Prometheus text format. Structured logs
// (Config.Logger) carry the request ID plus sweep-job lifecycle and
// store degraded-mode transitions; access logging is sampled
// (Config.AccessLogEvery).
//
// # Deadlines and cancellation
//
// Every handler threads its request context through the engine: a client
// that disconnects while its analysis is queued frees its worker slot and
// queue claim immediately (counted in the canceled metric), and an
// explicit budget — the server-wide Config.RequestTimeout or a request's
// timeout_ms field, whichever is tighter — turns an overrunning analysis
// into a structured 503 timeout verdict instead of an open-ended wait.
// Coalesced waiters abandon without cancelling the shared computation, so
// the result still lands in the cache for the next caller.
//
// # Durability
//
// With Config.StoreDir set, results write through to an on-disk
// content-addressed store (internal/store) and sweep jobs checkpoint their
// per-point progress, so a restarted daemon keeps its cache warm and
// resumes unfinished sweeps instead of dropping them (see jobs.go). Store
// access sits behind a circuit breaker: a failing disk opens it after
// Config.StoreBreakerThreshold consecutive errors, requests skip the disk
// and recompute (degraded mode, surfaced via /healthz and /v1/metrics),
// and a periodic probe closes it when the disk recovers.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/obs"
	"dpcpp/internal/store"
)

// Defaults applied by Config.normalized.
const (
	DefaultCacheSize = 4096
	DefaultMaxBody   = 8 << 20 // 8 MiB of taskset JSON
	// DefaultBreakerThreshold is the consecutive store failures that open
	// the circuit breaker; DefaultBreakerProbe how often an open breaker
	// admits one recovery probe.
	DefaultBreakerThreshold = 8
	DefaultBreakerProbe     = 5 * time.Second
	// DefaultWriteDeadline is the per-write-operation deadline applied via
	// http.ResponseController: each response write (and each NDJSON line
	// of a stream) must complete within it, so a stalled reader cannot pin
	// a connection while arbitrarily long streams stay alive as long as
	// they make progress.
	DefaultWriteDeadline = time.Minute
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrently executing analyses (<= 0 = GOMAXPROCS).
	Workers int
	// CacheSize is the result cache capacity in entries (<= 0 = 4096).
	CacheSize int
	// MaxBody caps request bodies in bytes (<= 0 = 8 MiB); larger bodies
	// get 413 before any decoding work.
	MaxBody int64
	// MaxQueue bounds admitted-but-unfinished analysis jobs. A request
	// whose jobs cannot fit while the server is busy gets 429 +
	// Retry-After; one that could never fit even on an idle server gets a
	// non-retryable 400 (<= 0 = max(1024 * workers, 65536), large enough
	// that every documented grid/batch request fits on a 1-core host).
	MaxQueue int
	// RequestTimeout bounds the analysis latency of one /v1/analyze or
	// /v1/analyze/batch request; past it the request gets a structured 503
	// timeout verdict and its queued work is abandoned. 0 disables the
	// server-wide bound (a request's timeout_ms still applies).
	RequestTimeout time.Duration
	// WriteDeadline is the per-write deadline for response writes
	// (<= 0 = 1 minute); see DefaultWriteDeadline.
	WriteDeadline time.Duration
	// StoreDir, when non-empty, roots the persistent layer: an on-disk
	// content-addressed result store backing the in-memory LRU, plus the
	// sweep-job checkpoints under StoreDir/jobs. Empty disables
	// persistence (results live only in the LRU, sweep jobs only in
	// memory).
	StoreDir string
	// DisableResume skips re-starting unfinished checkpointed sweep jobs
	// found in StoreDir/jobs at startup (they remain listed, paused, until
	// a daemon with resume enabled picks them up).
	DisableResume bool
	// StoreBreakerThreshold is the consecutive store failures that open
	// the store circuit breaker (<= 0 = 8); StoreBreakerProbe is the
	// interval between recovery probes while open (<= 0 = 5s).
	StoreBreakerThreshold int
	StoreBreakerProbe     time.Duration
	// DisableCheckpointSync turns off the fsync on sweep-job checkpoint
	// writes. Cache entries never sync (they are recomputable); checkpoint
	// sync is on by default because losing a checkpoint discards progress.
	DisableCheckpointSync bool
	// FaultWrites > 0 makes the store's first FaultWrites writes fail with
	// a synthetic I/O error — built-in fault injection for chaos and smoke
	// testing of degraded mode through the real binary. Never set it in
	// production.
	FaultWrites int
	// Logger receives the server's structured logs (request access lines,
	// sweep-job lifecycle, degraded-mode transitions). Nil discards them —
	// the server never writes to a default destination on its own.
	Logger *slog.Logger
	// AccessLogEvery samples the access log: every N-th completed request
	// emits one structured line on Logger. 0 (the default) disables access
	// logging; 1 logs every request.
	AccessLogEvery int
	// TraceBuffer is the capacity of the request-trace ring behind
	// GET /v1/debug/traces (<= 0 = 256).
	TraceBuffer int

	// storeHooks, when non-nil, is installed on the opened store before
	// any checkpoint is read or written; the chaos suite schedules faults
	// through it (package-internal, tests only).
	storeHooks *store.Hooks
}

func (c Config) normalized() Config {
	c.Workers = experiments.Workers(c.Workers)
	if c.CacheSize <= 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBody
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024 * c.Workers
		if c.MaxQueue < 65536 {
			c.MaxQueue = 65536
		}
	}
	if c.WriteDeadline <= 0 {
		c.WriteDeadline = DefaultWriteDeadline
	}
	if c.StoreBreakerThreshold <= 0 {
		c.StoreBreakerThreshold = DefaultBreakerThreshold
	}
	if c.StoreBreakerProbe <= 0 {
		c.StoreBreakerProbe = DefaultBreakerProbe
	}
	return c
}

// fastResponse is one exact-body cache entry: the serialized response plus
// how many method results it carries, so fast-path hit accounting matches
// cachedAll (one cache hit per method, not per request).
type fastResponse struct {
	body    []byte
	methods int
}

// Server is the http.Handler exposing the analysis service.
type Server struct {
	cfg    Config
	engine *engine
	mux    *http.ServeMux
	jobs   *jobRegistry
	// fast serves byte-identical repeats of /v1/analyze bodies without
	// decoding, validating or hashing the taskset again: the stored
	// response keyed by the SHA-256 of the raw body. Real fleets re-submit
	// literally identical requests, and the response is a pure function of
	// the body, so this is safe and turns the hit path into a hash plus a
	// write.
	fast *lru[fastResponse]
	// obs is the observability layer: base logger, Prometheus registry,
	// request-trace ring and per-endpoint latency histograms (see obs.go).
	obs *serverObs
}

// New builds a Server. It is ready to serve immediately; wire it into an
// http.Server for listening and graceful shutdown (see cmd/schedd). With
// cfg.StoreDir set, it opens the persistent result store and loads
// checkpointed sweep jobs, resuming unfinished ones unless
// cfg.DisableResume is set. Call Close on shutdown to checkpoint and stop
// the sweep runner.
func New(cfg Config) (*Server, error) {
	cfg = cfg.normalized()
	var st *store.Store
	var br *store.Breaker
	if cfg.StoreDir != "" {
		var err error
		if st, err = store.Open(cfg.StoreDir); err != nil {
			return nil, err
		}
		switch {
		case cfg.storeHooks != nil:
			st.SetHooks(cfg.storeHooks)
		case cfg.FaultWrites > 0:
			st.SetHooks(failFirstWrites(cfg.FaultWrites))
		}
		br = store.NewBreaker(cfg.StoreBreakerThreshold, cfg.StoreBreakerProbe)
	}
	s := &Server{
		cfg:    cfg,
		engine: newEngine(cfg.Workers, cfg.CacheSize, int64(cfg.MaxQueue), st, br),
		mux:    http.NewServeMux(),
		fast:   newLRU[fastResponse](cfg.CacheSize),
		obs:    newServerObs(cfg.Logger, cfg.AccessLogEvery, cfg.TraceBuffer),
	}
	if br != nil {
		s.observeBreaker(br)
	}
	var err error
	if s.jobs, err = newJobRegistry(s, st); err != nil {
		return nil, err
	}
	s.registerMetrics()
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/analyze/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/analyze/delta", s.handleDelta)
	s.mux.HandleFunc("GET /v1/grid", s.handleGrid)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepDelete)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleSweepResults)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	s.mux.HandleFunc("GET /v1/debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// failFirstWrites builds the Config.FaultWrites hook: the first n atomic
// writes fail with a synthetic EIO-style error, later ones succeed.
func failFirstWrites(n int) *store.Hooks {
	var mu sync.Mutex
	left := n
	return &store.Hooks{BeforeWrite: func(path string) error {
		mu.Lock()
		defer mu.Unlock()
		if left > 0 {
			left--
			return fmt.Errorf("injected write fault (%s): input/output error", path)
		}
		return nil
	}}
}

// Close stops the sweep-job runner: the in-flight job stops at its next
// point boundary, its progress is checkpointed (when a store is
// configured), and Close returns once the runner has exited. In-flight
// HTTP requests are the http.Server's to drain, not Close's.
func (s *Server) Close() { s.jobs.close() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		// The body cap is the first hardening layer: nothing past it ever
		// reaches the JSON decoder, and oversized bodies fail with a
		// structured 413 instead of feeding the model layer unbounded
		// input.
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	}
	// One write deadline covers simple JSON responses; streaming handlers
	// re-arm it per line so long streams stay alive while a stalled reader
	// still cannot pin the connection (http.Server.WriteTimeout would kill
	// both).
	s.bumpWriteDeadline(w)
	s.observe(w, r)
}

// bumpWriteDeadline extends the connection's write deadline by the
// configured per-write budget. Unsupported writers (httptest recorders,
// some middleware) are fine: the deadline is a hardening layer, not a
// correctness dependency.
func (s *Server) bumpWriteDeadline(w http.ResponseWriter) {
	if s.cfg.WriteDeadline <= 0 {
		return
	}
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteDeadline))
}

// Metrics returns a snapshot of the service counters.
func (s *Server) Metrics() Metrics {
	m := s.engine.snapshot()
	s.jobs.fill(&m)
	return m
}

// healthResponse is the body of GET /healthz. The endpoint stays 200 even
// in degraded mode — the process is alive and serving; Degraded tells
// operators (and load balancers that read bodies) that the persistent
// store is being bypassed and durability is reduced.
type healthResponse struct {
	OK         bool   `json:"ok"`
	Degraded   bool   `json:"degraded,omitempty"`
	StoreState string `json:"store_state,omitempty"`
	// Build identifies the serving binary (module version, VCS revision,
	// Go toolchain), so operators can tell which build answered.
	Build obs.Build `json:"build"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.engine.br.State()
	writeJSON(w, http.StatusOK, healthResponse{
		OK:         true,
		Degraded:   st == store.BreakerOpen || st == store.BreakerHalfOpen,
		StoreState: st,
		Build:      obs.BuildInfo(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// requestCtx derives the analysis context of one request: the client's
// context (so a disconnect cancels queued work) bounded by the tighter of
// the server-wide RequestTimeout and the request's own timeout_ms.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if req := time.Duration(timeoutMS) * time.Millisecond; d <= 0 || req < d {
			d = req
		}
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// finishAnalysis maps an aborted analysis to its response: a deadline
// overrun gets the structured 503 timeout verdict; a vanished client gets
// nothing (there is no one to write to). Reports whether the handler
// should continue with a successful response.
func (s *Server) finishAnalysis(w http.ResponseWriter, err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) {
		s.writeTimeout(w)
	}
	return false
}

// decodeBody decodes one JSON document into dst with the request-boundary
// hardening: the MaxBytesReader cap (413), unknown-field rejection and a
// single-document requirement (400). The taskset itself is then validated
// by model.Finalize, which PR 2 hardened against hostile documents — no
// panic path is reachable from a request body.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return err
		}
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return err
	}
	if dec.More() {
		err := fmt.Errorf("trailing data after JSON document")
		writeError(w, http.StatusBadRequest, "%v", err)
		return err
	}
	return nil
}

// decodeBytes is decodeBody for a pre-read body (the /v1/analyze fast
// path reads the body up front to key the exact-body cache).
func decodeBytes(w http.ResponseWriter, body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return err
	}
	if dec.More() {
		err := fmt.Errorf("trailing data after JSON document")
		writeError(w, http.StatusBadRequest, "%v", err)
		return err
	}
	return nil
}

// finalizeTaskset validates a decoded taskset, translating model's
// rejection into a structured 400 with the taskset's batch position.
func finalizeTaskset(w http.ResponseWriter, ts *model.Taskset, pos string) bool {
	if ts == nil {
		writeError(w, http.StatusBadRequest, "missing taskset%s", pos)
		return false
	}
	if err := ts.Finalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid taskset%s: %v", pos, err)
		return false
	}
	return true
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.engine.requests.Add(1)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "reading request: %v", err)
		}
		return
	}
	bodyKey := sha256.Sum256(body)
	if resp, ok := s.fast.get(string(bodyKey[:])); ok {
		// One hit per method result served, exactly like cachedAll: the
		// fast path is an optimization of the cached path, not a separate
		// accounting regime.
		s.engine.cacheHits.Add(int64(resp.methods))
		w.Header().Set("Content-Type", "application/json")
		w.Write(resp.body)
		return
	}

	var req AnalyzeRequest
	if decodeBytes(w, body, &req) != nil {
		return
	}
	ms, opts, ok := s.validateOptions(w, req.Methods, req.PathCap, req.Placement)
	if !ok || !finalizeTaskset(w, req.Taskset, "") {
		return
	}
	h := req.Taskset.Hash()
	resp := &AnalyzeResponse{Hash: h.String()}
	// A fully-cached request needs zero analysis work, so it is served
	// even when the admission queue is saturated.
	if resp.Results = s.engine.cachedAll(h, ms, opts, req.Explain); resp.Results == nil {
		if !s.admit(w, len(ms)) {
			return
		}
		defer s.engine.release(len(ms))
		ctx, cancel := s.requestCtx(r, req.TimeoutMS)
		defer cancel()
		var err error
		resp, err = s.analyzeOne(ctx, h, req.Taskset, ms, opts, req.Explain)
		if !s.finishAnalysis(w, err) {
			return
		}
	}

	out, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	out = append(out, '\n') // match json.Encoder framing everywhere else
	s.fast.add(string(bodyKey[:]), fastResponse{body: out, methods: len(ms)})
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.engine.requests.Add(1)
	var req BatchRequest
	if decodeBody(w, r, &req) != nil {
		return
	}
	ms, opts, ok := s.validateOptions(w, req.Methods, req.PathCap, req.Placement)
	if !ok {
		return
	}
	if len(req.Tasksets) == 0 {
		writeError(w, http.StatusBadRequest, "empty tasksets")
		return
	}
	for i, ts := range req.Tasksets {
		if !finalizeTaskset(w, ts, fmt.Sprintf(" at index %d", i)) {
			return
		}
	}
	jobs := len(req.Tasksets) * len(ms)
	if !s.admit(w, jobs) {
		return
	}
	defer s.engine.release(jobs)
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	// Hash on the request goroutine (cheap), fan the analyses out over the
	// shared pool primitive. Results land in per-index slots, so no
	// locking and a deterministic response order.
	resp := BatchResponse{Results: make([]*AnalyzeResponse, len(req.Tasksets))}
	hashes := make([]model.Hash, len(req.Tasksets))
	for i, ts := range req.Tasksets {
		hashes[i] = ts.Hash()
		resp.Results[i] = &AnalyzeResponse{
			Hash:    hashes[i].String(),
			Results: make(map[string]*MethodResult, len(ms)),
		}
	}
	var mu sync.Mutex // guards the per-taskset result maps and firstErr
	var firstErr error
	experiments.ParallelFor(s.cfg.Workers, jobs, func(_, idx int) {
		// A dead client stops admitting new analyses; already-drained jobs
		// keep their results, the remainder drains cheaply.
		if ctx.Err() != nil {
			return
		}
		ti, mi := idx/len(ms), idx%len(ms)
		mr, err := s.engine.analyze(ctx, hashes[ti], req.Tasksets[ti], ms[mi], opts, false)
		mu.Lock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			resp.Results[ti].Results[string(ms[mi])] = mr
		}
		mu.Unlock()
	})
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	if !s.finishAnalysis(w, firstErr) {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// analyzeOne runs the methods for one finalized, hashed taskset, fanning
// out over the pool when more than one method was requested. The first
// context error aborts the response (partial results are never served).
func (s *Server) analyzeOne(ctx context.Context, h model.Hash, ts *model.Taskset,
	ms []analysis.Method, opts analysis.Options, explain bool) (*AnalyzeResponse, error) {

	resp := &AnalyzeResponse{
		Hash:    h.String(),
		Results: make(map[string]*MethodResult, len(ms)),
	}
	results := make([]*MethodResult, len(ms))
	errs := make([]error, len(ms))
	experiments.ParallelFor(len(ms), len(ms), func(_, i int) {
		results[i], errs[i] = s.engine.analyze(ctx, h, ts, ms[i], opts, explain)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, m := range ms {
		resp.Results[string(m)] = results[i]
	}
	return resp, nil
}

// validateOptions resolves methods, path cap and placement, writing a 400
// on any invalid field.
func (s *Server) validateOptions(w http.ResponseWriter, methods []string,
	pathCap int, placement string) ([]analysis.Method, analysis.Options, bool) {

	ms, err := parseMethods(methods)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, analysis.Options{}, false
	}
	if pathCap < 0 {
		writeError(w, http.StatusBadRequest, "negative path_cap %d", pathCap)
		return nil, analysis.Options{}, false
	}
	pl, err := parsePlacement(placement)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, analysis.Options{}, false
	}
	return ms, analysis.Options{PathCap: pathCap, Placement: pl}, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) // nothing useful to do on a client that went away
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// writeTimeout emits the structured 503 timeout verdict: the analysis
// overran its deadline and was abandoned; its work, if it had started,
// still lands in the cache. Retry-After reflects the observed backlog
// (queue depth times recent analysis latency) rather than a fixed second,
// so clients back off in proportion to actual load.
func (s *Server) writeTimeout(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.engine.retryAfterSeconds()))
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:   "analysis deadline exceeded; retry may hit the cache",
		Code:    http.StatusServiceUnavailable,
		Timeout: true,
	})
}

// admit reserves n analysis jobs, writing the appropriate rejection when
// they do not fit: a request that could never fit (n exceeds the queue
// bound outright) gets a non-retryable 400, while a transient full queue
// gets the backpressure 429 + Retry-After.
func (s *Server) admit(w http.ResponseWriter, n int) bool {
	if n > s.cfg.MaxQueue {
		writeError(w, http.StatusBadRequest,
			"request requires %d analysis jobs, above the server's queue capacity %d; reduce n/batch size or raise -max-queue",
			n, s.cfg.MaxQueue)
		return false
	}
	if !s.engine.tryAdmit(n) {
		w.Header().Set("Retry-After", strconv.Itoa(s.engine.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "analysis queue full, retry later")
		return false
	}
	return true
}
