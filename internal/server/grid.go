package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/taskgen"
)

// maxGridSamples caps the per-point sample count a single request may ask
// for; larger sweeps belong in batches of requests (and would be rejected
// by admission anyway on most configurations).
const maxGridSamples = 10000

// handleGrid streams one scenario's acceptance curve as NDJSON: one
// GridPoint line the moment the pool completes each utilization point
// (completion order, not point order — lines carry their point index), and
// a trailing GridDone line. Seeding is identical to the CLI sweeps
// (experiments.SampleSeed), so a streamed curve matches `schedtest -fig`
// bit-for-bit for the same seed and sample count.
//
// Query parameters:
//
//	scenario  required: a Fig. 2 subplot ("2a".."2d") or "g<i>" for
//	          index i of the 216-scenario grid
//	n         samples per utilization point (default 25)
//	seed      base seed (default 2020)
//	methods   comma-separated method subset (default all)
//	pathcap   EP path enumeration cap (default: analysis default)
//	timeout_ms  optional stream budget in milliseconds; the server-wide
//	          -request-timeout deliberately does not apply to grid streams
//	          (long curves are legitimate), so only an explicit parameter
//	          bounds one
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	s.engine.requests.Add(1)
	q := r.URL.Query()
	scen, err := parseScenario(q.Get("scenario"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n, err := intParam(q.Get("n"), 25)
	if err != nil || n < 1 || n > maxGridSamples {
		writeError(w, http.StatusBadRequest, "invalid n %q (1..%d)", q.Get("n"), maxGridSamples)
		return
	}
	seed, err := int64Param(q.Get("seed"), 2020)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid seed %q", q.Get("seed"))
		return
	}
	pathCap, err := intParam(q.Get("pathcap"), 0)
	if err != nil || pathCap < 0 {
		writeError(w, http.StatusBadRequest, "invalid pathcap %q", q.Get("pathcap"))
		return
	}
	timeoutMS, err := int64Param(q.Get("timeout_ms"), 0)
	if err != nil || timeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "invalid timeout_ms %q", q.Get("timeout_ms"))
		return
	}
	var methodNames []string
	if mq := q.Get("methods"); mq != "" {
		methodNames = strings.Split(mq, ",")
	}
	ms, opts, ok := s.validateOptions(w, methodNames, pathCap, "")
	if !ok {
		return
	}

	scen = scen.DefaultStructure()
	points := taskgen.UtilizationPoints(scen.M)
	jobs := len(points) * n
	if !s.admit(w, jobs) {
		return
	}
	defer s.engine.release(jobs)

	// Per-point completion tracking: workers fold verdicts into atomic
	// counters (sweepPointState) and the sweep hands the point index to
	// the streaming loop when its last sample lands. A canceled stream
	// stops paying for analyses (ScenarioSweep skips the work) but still
	// drains every index so admission accounting stays exact.
	states := newSweepPointStates(len(points), len(ms))
	done := make(chan int, len(points))
	ctx, cancel := s.requestCtx(r, timeoutMS)
	defer cancel()

	go func() {
		defer close(done)
		experiments.ScenarioSweep{
			Scenario: scen,
			Seed:     seed,
			Samples:  n,
			Workers:  s.cfg.Workers,
		}.Run(ctx,
			func(pi, si int, ts *model.Taskset, genErr error) {
				states[pi].analyze(ctx, s.engine, ts, genErr, ms, opts)
			},
			func(pi int, complete bool) { done <- pi })
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Scenario", scen.Name())
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := 0
	var writeErr error
	for pi := range done {
		// After the first failed write the client is gone: keep draining
		// completions (the sweep still owes the admission release its
		// drain), but stop encoding and flushing to a dead connection.
		if writeErr != nil {
			continue
		}
		// A point whose in-flight analyses were abandoned (cancel/timeout
		// mid-sample) holds an undercounted curve; never stream it.
		if states[pi].aborted.Load() > 0 {
			continue
		}
		// Each NDJSON line re-arms the write deadline: the stream may run
		// for minutes, but any single stalled write still times out.
		s.bumpWriteDeadline(w)
		gp := states[pi].gridPoint(pi, points[pi], scen.M, ms)
		if writeErr = enc.Encode(gp); writeErr != nil {
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
		streamed++
	}
	// A timed-out or canceled stream ends without the GridDone line —
	// truncation is the signal clients key on.
	if ctx.Err() == nil && writeErr == nil {
		enc.Encode(GridDone{Done: true, Points: streamed})
	}
}

// sweepPointState accumulates one utilization point's verdicts across its
// samples; shared by the streaming grid endpoint and the sweep-job runner.
type sweepPointState struct {
	accepted []atomic.Int64 // indexed like the method slice
	genFail  atomic.Int64
	total    atomic.Int64
	// aborted counts samples whose analysis was abandoned (context
	// canceled or deadline exceeded mid-flight). Any aborted sample makes
	// the point's counts undercounted, so consumers must treat the point
	// as incomplete: the grid stream skips it and the sweep-job runner
	// refuses to checkpoint it — otherwise a canceled last sample could
	// freeze a wrong curve into a checkpoint and break byte-identical
	// resume.
	aborted atomic.Int64
}

func newSweepPointStates(points, methods int) []sweepPointState {
	states := make([]sweepPointState, points)
	for pi := range states {
		states[pi].accepted = make([]atomic.Int64, methods)
	}
	return states
}

// analyze folds one sample into the point: every requested method's verdict
// for the generated taskset, or a generation failure. An engine error (the
// context ended while this sample's analysis was queued) marks the point
// aborted instead of silently dropping a verdict.
func (st *sweepPointState) analyze(ctx context.Context, e *engine, ts *model.Taskset,
	genErr error, ms []analysis.Method, opts analysis.Options) {

	if genErr != nil {
		st.genFail.Add(1)
		return
	}
	h := ts.Hash()
	for mi, m := range ms {
		mr, err := e.analyze(ctx, h, ts, m, opts, false)
		if err != nil {
			st.aborted.Add(1)
			return
		}
		if mr.Schedulable {
			st.accepted[mi].Add(1)
		}
	}
	st.total.Add(1)
}

// gridPoint renders the accumulated counts as the wire form.
func (st *sweepPointState) gridPoint(pi int, util float64, m int, ms []analysis.Method) *GridPoint {
	gp := &GridPoint{
		Point:       pi,
		Utilization: util,
		Normalized:  util / float64(m),
		Total:       int(st.total.Load()),
		GenFailures: int(st.genFail.Load()),
		Accepted:    make(map[string]int, len(ms)),
	}
	for mi, meth := range ms {
		gp.Accepted[string(meth)] = int(st.accepted[mi].Load())
	}
	return gp
}

// parseScenario resolves the scenario query parameter: a Fig. 2 subplot
// name or g<i> for the full grid.
func parseScenario(name string) (taskgen.Scenario, error) {
	switch {
	case name == "":
		return taskgen.Scenario{}, fmt.Errorf("missing scenario parameter")
	case strings.HasPrefix(name, "g"):
		i, err := strconv.Atoi(name[1:])
		grid := taskgen.Grid()
		if err != nil || i < 0 || i >= len(grid) {
			return taskgen.Scenario{}, fmt.Errorf("invalid grid scenario %q (g0..g%d)", name, len(grid)-1)
		}
		return grid[i], nil
	default:
		return taskgen.Fig2Scenario(name)
	}
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func int64Param(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}
