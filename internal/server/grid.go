package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"dpcpp/internal/experiments"
	"dpcpp/internal/taskgen"
)

// maxGridSamples caps the per-point sample count a single request may ask
// for; larger sweeps belong in batches of requests (and would be rejected
// by admission anyway on most configurations).
const maxGridSamples = 10000

// handleGrid streams one scenario's acceptance curve as NDJSON: one
// GridPoint line the moment the pool completes each utilization point
// (completion order, not point order — lines carry their point index), and
// a trailing GridDone line. Seeding is identical to the CLI sweeps
// (experiments.SampleSeed), so a streamed curve matches `schedtest -fig`
// bit-for-bit for the same seed and sample count.
//
// Query parameters:
//
//	scenario  required: a Fig. 2 subplot ("2a".."2d") or "g<i>" for
//	          index i of the 216-scenario grid
//	n         samples per utilization point (default 25)
//	seed      base seed (default 2020)
//	methods   comma-separated method subset (default all)
//	pathcap   EP path enumeration cap (default: analysis default)
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	scen, err := parseScenario(q.Get("scenario"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n, err := intParam(q.Get("n"), 25)
	if err != nil || n < 1 || n > maxGridSamples {
		writeError(w, http.StatusBadRequest, "invalid n %q (1..%d)", q.Get("n"), maxGridSamples)
		return
	}
	seed, err := int64Param(q.Get("seed"), 2020)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid seed %q", q.Get("seed"))
		return
	}
	pathCap, err := intParam(q.Get("pathcap"), 0)
	if err != nil || pathCap < 0 {
		writeError(w, http.StatusBadRequest, "invalid pathcap %q", q.Get("pathcap"))
		return
	}
	var methodNames []string
	if mq := q.Get("methods"); mq != "" {
		methodNames = strings.Split(mq, ",")
	}
	ms, opts, ok := s.validateOptions(w, methodNames, pathCap, "")
	if !ok {
		return
	}

	scen = scen.DefaultStructure()
	points := taskgen.UtilizationPoints(scen.M)
	jobs := len(points) * n
	if !s.admit(w, jobs) {
		return
	}
	defer s.engine.release(jobs)

	// Per-point completion tracking: workers fold verdicts into atomic
	// counters and hand the point index to the streaming goroutine when
	// its last sample lands.
	type pointState struct {
		accepted []atomic.Int64 // indexed like ms
		genFail  atomic.Int64
		total    atomic.Int64
		left     atomic.Int64
	}
	states := make([]pointState, len(points))
	for pi := range states {
		states[pi].accepted = make([]atomic.Int64, len(ms))
		states[pi].left.Store(int64(n))
	}
	done := make(chan int, len(points))
	ctx := r.Context()

	go func() {
		defer close(done)
		workers := s.cfg.Workers
		gens := make([]*taskgen.Generator, workers)
		experiments.ParallelFor(workers, jobs, func(worker, idx int) {
			pi, si := idx/n, idx%n
			st := &states[pi]
			// A canceled stream stops paying for analyses but still
			// drains indices so admission accounting stays exact.
			if ctx.Err() == nil {
				g := gens[worker]
				if g == nil {
					g = taskgen.NewGenerator(scen)
					gens[worker] = g
				}
				sampleSeed := experiments.SampleSeed(seed, scen.Name(), pi, si)
				ts, err := experiments.GenerateSample(g, sampleSeed, points[pi])
				if err != nil {
					st.genFail.Add(1)
				} else {
					h := ts.Hash()
					for mi, m := range ms {
						if s.engine.analyze(h, ts, m, opts, false).Schedulable {
							st.accepted[mi].Add(1)
						}
					}
					st.total.Add(1)
				}
			}
			if st.left.Add(-1) == 0 {
				done <- pi
			}
		})
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Scenario", scen.Name())
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamed := 0
	for pi := range done {
		st := &states[pi]
		gp := GridPoint{
			Point:       pi,
			Utilization: points[pi],
			Normalized:  points[pi] / float64(scen.M),
			Total:       int(st.total.Load()),
			GenFailures: int(st.genFail.Load()),
			Accepted:    make(map[string]int, len(ms)),
		}
		for mi, m := range ms {
			gp.Accepted[string(m)] = int(st.accepted[mi].Load())
		}
		enc.Encode(gp)
		if flusher != nil {
			flusher.Flush()
		}
		streamed++
	}
	if ctx.Err() == nil {
		enc.Encode(GridDone{Done: true, Points: streamed})
	}
}

// parseScenario resolves the scenario query parameter: a Fig. 2 subplot
// name or g<i> for the full grid.
func parseScenario(name string) (taskgen.Scenario, error) {
	switch {
	case name == "":
		return taskgen.Scenario{}, fmt.Errorf("missing scenario parameter")
	case strings.HasPrefix(name, "g"):
		i, err := strconv.Atoi(name[1:])
		grid := taskgen.Grid()
		if err != nil || i < 0 || i >= len(grid) {
			return taskgen.Scenario{}, fmt.Errorf("invalid grid scenario %q (g0..g%d)", name, len(grid)-1)
		}
		return grid[i], nil
	default:
		return taskgen.Fig2Scenario(name)
	}
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func int64Param(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}
