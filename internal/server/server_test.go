package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/taskgen"
)

// newTestServer builds a Server and tears its sweep runner down with the
// test.
func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// testTaskset builds a small contended taskset; shift perturbs WCETs so
// distinct shift values produce distinct content hashes.
func testTaskset(t testing.TB, shift rt.Time) *model.Taskset {
	t.Helper()
	ts := model.NewTaskset(4, 2)
	t0 := model.NewTask(0, 10*rt.Millisecond, 10*rt.Millisecond)
	a := t0.AddVertex(200*rt.Microsecond + shift)
	b := t0.AddVertex(100 * rt.Microsecond)
	c := t0.AddVertex(100 * rt.Microsecond)
	t0.AddEdge(a, b)
	t0.AddEdge(a, c)
	t0.AddRequest(b, 0, 2, 10*rt.Microsecond)
	ts.Add(t0)
	t1 := model.NewTask(1, 5*rt.Millisecond, 5*rt.Millisecond)
	d := t1.AddVertex(150 * rt.Microsecond)
	t1.AddRequest(d, 0, 1, 10*rt.Microsecond)
	t1.AddRequest(d, 1, 1, 5*rt.Microsecond)
	ts.Add(t1)
	if err := ts.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return ts
}

// tasksetJSON serializes a taskset the way a client would ship it.
func tasksetJSON(t testing.TB, ts *model.Taskset) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := model.EncodeTaskset(&buf, ts); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// post performs one POST against the handler without a network hop.
func post(t testing.TB, s *Server, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func analyzeBody(t testing.TB, ts *model.Taskset, methods ...string) []byte {
	t.Helper()
	body, err := json.Marshal(AnalyzeRequest{
		Taskset: jsonRoundTrip(t, ts), Methods: methods,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// jsonRoundTrip re-decodes a taskset so request bodies carry exactly what
// a remote client would have (no locally-derived state).
func jsonRoundTrip(t testing.TB, ts *model.Taskset) *model.Taskset {
	t.Helper()
	ts2, err := model.DecodeTaskset(bytes.NewReader(tasksetJSON(t, ts)))
	if err != nil {
		t.Fatal(err)
	}
	return ts2
}

func TestAnalyzeSingle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := testTaskset(t, 0)
	w := post(t, s, "/v1/analyze", analyzeBody(t, ts))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Hash != ts.Hash().String() {
		t.Errorf("hash %q != taskset hash %q", resp.Hash, ts.Hash())
	}
	if len(resp.Results) != len(analysis.Methods()) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(analysis.Methods()))
	}
	for _, m := range analysis.Methods() {
		mr := resp.Results[string(m)]
		if mr == nil {
			t.Fatalf("method %s missing from response", m)
		}
		want := analysis.Test(m, ts, analysis.Options{})
		if mr.Schedulable != want.Schedulable {
			t.Errorf("%s: verdict %v, direct Test says %v", m, mr.Schedulable, want.Schedulable)
		}
	}
}

// TestAnalyzeDeterminism: the served bytes must be exactly what marshaling
// direct analysis.Test results produces — the server adds caching and
// transport, never its own math or formatting.
func TestAnalyzeDeterminism(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	ts := testTaskset(t, 0)

	want := &AnalyzeResponse{
		Hash:    ts.Hash().String(),
		Results: make(map[string]*MethodResult),
	}
	for _, m := range analysis.Methods() {
		res := analysis.Test(m, ts, analysis.Options{})
		want.Results[string(m)] = &MethodResult{
			Schedulable: res.Schedulable,
			WCRT:        res.WCRT,
			Rounds:      res.Rounds,
			Reason:      res.Reason,
		}
	}
	wantBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ { // the cache-hit pass must serve identical bytes
		w := post(t, s, "/v1/analyze", analyzeBody(t, ts))
		if w.Code != http.StatusOK {
			t.Fatalf("pass %d: status %d: %s", i, w.Code, w.Body.String())
		}
		got := bytes.TrimSpace(w.Body.Bytes())
		if !bytes.Equal(got, wantBytes) {
			t.Fatalf("pass %d: served bytes differ from direct Test marshaling:\ngot:  %s\nwant: %s",
				i, got, wantBytes)
		}
	}
}

func TestExplainBreakdown(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := testTaskset(t, 0)
	body, _ := json.Marshal(AnalyzeRequest{
		Taskset: jsonRoundTrip(t, ts),
		Methods: []string{string(analysis.DPCPpEP)},
		Explain: true,
	})
	w := post(t, s, "/v1/analyze", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp AnalyzeResponse
	json.Unmarshal(w.Body.Bytes(), &resp)
	mr := resp.Results[string(analysis.DPCPpEP)]
	if mr == nil || len(mr.Explain) != len(ts.Tasks) {
		t.Fatalf("want %d explain breakdowns, got %+v", len(ts.Tasks), mr)
	}
}

func TestCacheHitVsMiss(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	var calls int64
	var mu sync.Mutex
	inner := s.engine.testFn
	s.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		mu.Lock()
		calls++
		mu.Unlock()
		return inner(m, ts, opts)
	}

	body := analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN))
	if w := post(t, s, "/v1/analyze", body); w.Code != http.StatusOK {
		t.Fatalf("miss pass: %d %s", w.Code, w.Body.String())
	}
	mu.Lock()
	afterMiss := calls
	mu.Unlock()
	if afterMiss != 1 {
		t.Fatalf("first request ran %d analyses, want 1", afterMiss)
	}

	// Byte-identical repeat: must be served from cache with zero analyses.
	if w := post(t, s, "/v1/analyze", body); w.Code != http.StatusOK {
		t.Fatalf("hit pass: %d", w.Code)
	}
	// Semantically identical (tasks reordered in the JSON): same content
	// hash, so still a cache hit.
	reordered := testTaskset(t, 0)
	reordered.Tasks[0], reordered.Tasks[1] = reordered.Tasks[1], reordered.Tasks[0]
	if w := post(t, s, "/v1/analyze", analyzeBody(t, reordered, string(analysis.DPCPpEN))); w.Code != http.StatusOK {
		t.Fatalf("reordered pass: %d", w.Code)
	}
	mu.Lock()
	final := calls
	mu.Unlock()
	if final != afterMiss {
		t.Fatalf("cache hits ran %d extra analyses, want 0", final-afterMiss)
	}
	m := s.Metrics()
	if m.CacheHits != 2 || m.CacheMisses != 1 {
		t.Errorf("metrics: hits=%d misses=%d, want 2/1", m.CacheHits, m.CacheMisses)
	}
	// A different taskset must miss.
	if w := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, rt.Microsecond), string(analysis.DPCPpEN))); w.Code != http.StatusOK {
		t.Fatalf("distinct pass: %d", w.Code)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != final+1 {
		t.Errorf("distinct taskset ran %d analyses, want 1", calls-final)
	}
}

// TestCoalescing is the acceptance-criterion test: N concurrent identical
// requests must execute exactly one analysis. The injected testFn blocks
// the single in-flight analysis until every request has arrived at the
// server, so all N demonstrably overlap.
func TestCoalescing(t *testing.T) {
	const n = 16
	s := newTestServer(t, Config{Workers: 4})
	release := make(chan struct{})
	var calls int64
	var mu sync.Mutex
	inner := s.engine.testFn
	s.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		mu.Lock()
		calls++
		mu.Unlock()
		<-release
		return inner(m, ts, opts)
	}

	body := analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN))
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, s, "/v1/analyze", body)
			codes[i], bodies[i] = w.Code, w.Body.Bytes()
		}(i)
	}
	// Wait until the other n-1 requests are provably coalesced onto the
	// single blocked analysis, then let it finish. Joining the flight is
	// the last step before sharing the result, so this is race-free: no
	// request can slip past and start a second analysis.
	key := cacheKey(testTaskset(t, 0).Hash(), analysis.DPCPpEN, analysis.Options{}, false)
	deadline := time.Now().Add(10 * time.Second)
	for s.engine.flight.waiting(key) < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests coalesced", s.engine.flight.waiting(key), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d analyses, want exactly 1", n, got)
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d served different bytes than request 0", i)
		}
	}
	m := s.Metrics()
	if m.Coalesced+m.CacheHits != n-1 {
		t.Errorf("coalesced=%d + cache_hits=%d, want them to cover the other %d requests",
			m.Coalesced, m.CacheHits, n-1)
	}
}

func TestBatch(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	var calls int64
	var mu sync.Mutex
	inner := s.engine.testFn
	s.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		mu.Lock()
		calls++
		mu.Unlock()
		return inner(m, ts, opts)
	}

	a, b := testTaskset(t, 0), testTaskset(t, rt.Microsecond)
	body, _ := json.Marshal(BatchRequest{
		Tasksets: []*model.Taskset{jsonRoundTrip(t, a), jsonRoundTrip(t, b), jsonRoundTrip(t, a)},
		Methods:  []string{string(analysis.DPCPpEP), string(analysis.SPIN)},
	})
	w := post(t, s, "/v1/analyze/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Hash != a.Hash().String() || resp.Results[1].Hash != b.Hash().String() {
		t.Error("batch results out of request order")
	}
	if resp.Results[2].Hash != resp.Results[0].Hash {
		t.Error("identical tasksets produced different hashes")
	}
	for i, r := range resp.Results {
		if len(r.Results) != 2 {
			t.Errorf("item %d: %d method results, want 2", i, len(r.Results))
		}
	}
	// Two unique tasksets x two methods: the duplicate third taskset must
	// be deduplicated by the cache/coalescer.
	mu.Lock()
	defer mu.Unlock()
	if calls != 4 {
		t.Errorf("batch ran %d analyses, want 4 (duplicate item served from cache)", calls)
	}
}

func TestBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxQueue: 3})
	// Oversize: five methods can never fit a queue of 3 — a permanent
	// condition, so a non-retryable 400, not a 429 inviting futile retries.
	w := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, 0)))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("oversize request: status %d, want 400", w.Code)
	}
	if w.Header().Get("Retry-After") != "" {
		t.Error("permanent rejection carries Retry-After")
	}

	// Transient: a blocked in-flight analysis holds the whole queue, so
	// the next request gets the retryable 429.
	s2 := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	release := make(chan struct{})
	inner := s2.engine.testFn
	s2.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		<-release
		return inner(m, ts, opts)
	}
	first := make(chan int, 1)
	go func() {
		first <- post(t, s2, "/v1/analyze", analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN))).Code
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s2.engine.queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the queue")
		}
		time.Sleep(time.Millisecond)
	}
	w = post(t, s2, "/v1/analyze", analyzeBody(t, testTaskset(t, rt.Microsecond), string(analysis.DPCPpEN)))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Code != http.StatusTooManyRequests {
		t.Errorf("unstructured 429 body: %s", w.Body.String())
	}
	if s2.Metrics().Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", s2.Metrics().Rejected)
	}
	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("blocked request finished with %d", code)
	}
	// With the queue drained the retried request succeeds.
	w = post(t, s2, "/v1/analyze", analyzeBody(t, testTaskset(t, rt.Microsecond), string(analysis.DPCPpEN)))
	if w.Code != http.StatusOK {
		t.Fatalf("retry after drain: status %d", w.Code)
	}
}

// TestCachedServedUnderSaturation: a request whose every result is
// already cached needs zero analysis work, so a saturated admission queue
// must not 429 it — even when the body is not byte-identical to the
// priming request.
func TestCachedServedUnderSaturation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	primed := testTaskset(t, 0)
	if w := post(t, s, "/v1/analyze", analyzeBody(t, primed, string(analysis.DPCPpEN))); w.Code != http.StatusOK {
		t.Fatalf("priming request: %d", w.Code)
	}

	// Saturate the queue with a blocked analysis of a different taskset.
	release := make(chan struct{})
	inner := s.engine.testFn
	s.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		<-release
		return inner(m, ts, opts)
	}
	blocked := make(chan int, 1)
	go func() {
		blocked <- post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, rt.Microsecond), string(analysis.DPCPpEN))).Code
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.engine.queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never saturated")
		}
		time.Sleep(time.Millisecond)
	}

	// Task order reordered: different bytes (no fast path), same hash —
	// engine-cache hit, served despite the full queue.
	reordered := testTaskset(t, 0)
	reordered.Tasks[0], reordered.Tasks[1] = reordered.Tasks[1], reordered.Tasks[0]
	if w := post(t, s, "/v1/analyze", analyzeBody(t, reordered, string(analysis.DPCPpEN))); w.Code != http.StatusOK {
		t.Fatalf("cached request rejected under saturation: %d %s", w.Code, w.Body.String())
	}
	// A novel taskset still gets backpressure.
	if w := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, 2*rt.Microsecond), string(analysis.DPCPpEN))); w.Code != http.StatusTooManyRequests {
		t.Fatalf("novel request under saturation: %d, want 429", w.Code)
	}
	close(release)
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("blocked request finished with %d", code)
	}
}

// TestHostileRequests: every malformed body must produce a structured 4xx,
// never a panic or a 500 (the PR-2 model.Finalize hardening surfaces here).
func TestHostileRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxBody: 2048})
	valid := string(tasksetJSON(t, testTaskset(t, 0)))
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"empty body", "/v1/analyze", "", http.StatusBadRequest},
		{"not json", "/v1/analyze", "GET ME A TASKSET", http.StatusBadRequest},
		{"missing taskset", "/v1/analyze", `{}`, http.StatusBadRequest},
		{"unknown field", "/v1/analyze", `{"taskset":` + valid + `,"bogus":1}`, http.StatusBadRequest},
		{"trailing garbage", "/v1/analyze", `{"taskset":` + valid + `}{"again":true}`, http.StatusBadRequest},
		{"unknown method", "/v1/analyze", `{"taskset":` + valid + `,"methods":["DPCP-q"]}`, http.StatusBadRequest},
		{"bad placement", "/v1/analyze", `{"taskset":` + valid + `,"placement":"best"}`, http.StatusBadRequest},
		{"negative path cap", "/v1/analyze", `{"taskset":` + valid + `,"path_cap":-1}`, http.StatusBadRequest},
		{"hostile vertex id", "/v1/analyze",
			`{"taskset":{"tasks":[{"id":0,"period":1000,"deadline":1000,"vertices":[{"id":9,"wcet":10}]}],"num_resources":0,"num_procs":2}}`,
			http.StatusBadRequest},
		{"negative cslen", "/v1/analyze",
			`{"taskset":{"tasks":[{"id":0,"period":1000,"deadline":1000,"priority":1,"vertices":[{"id":0,"wcet":10,"requests":{"0":1}}],"cslen":[-5]}],"num_resources":1,"num_procs":2}}`,
			http.StatusBadRequest},
		{"oversized body", "/v1/analyze", `{"taskset":` + strings.Repeat(" ", 4096) + valid + `}`,
			http.StatusRequestEntityTooLarge},
		{"empty batch", "/v1/analyze/batch", `{"tasksets":[]}`, http.StatusBadRequest},
		{"batch bad item", "/v1/analyze/batch",
			`{"tasksets":[` + valid + `,{"tasks":[],"num_resources":0,"num_procs":0}]}`,
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, tc.path, []byte(tc.body))
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d; body: %s", w.Code, tc.want, w.Body.String())
			}
			var er errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" || er.Code != tc.want {
				t.Errorf("error body not structured: %s", w.Body.String())
			}
		})
	}
}

func TestRouting(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/healthz", http.StatusOK},
		{http.MethodGet, "/v1/metrics", http.StatusOK},
		{http.MethodGet, "/v1/analyze", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/grid", http.StatusMethodNotAllowed},
		{http.MethodGet, "/nope", http.StatusNotFound},
	} {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, w.Code, tc.want)
		}
	}
	// None of the above requests bears analysis work, so the traffic
	// counter must stay untouched (liveness pollers would otherwise
	// inflate it).
	m := s.Metrics()
	if m.Requests != 0 || m.Workers != 1 {
		t.Errorf("metrics after probes only: %+v", m)
	}
}

// TestRequestCounterCountsAnalysisBearingOnly pins the requests metric:
// /healthz and /v1/metrics probes are free, while every analysis-bearing
// endpoint (analyze, batch, grid, sweep submission) counts exactly once.
func TestRequestCounterCountsAnalysisBearingOnly(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	get := func(path string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}
	for i := 0; i < 7; i++ {
		get("/healthz")
		get("/v1/metrics")
	}
	if m := s.Metrics(); m.Requests != 0 {
		t.Fatalf("probes counted as traffic: requests=%d", m.Requests)
	}

	post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN)))
	if m := s.Metrics(); m.Requests != 1 {
		t.Fatalf("after analyze: requests=%d, want 1", m.Requests)
	}
	batch, _ := json.Marshal(BatchRequest{
		Tasksets: []*model.Taskset{jsonRoundTrip(t, testTaskset(t, 0))},
		Methods:  []string{string(analysis.DPCPpEN)},
	})
	post(t, s, "/v1/analyze/batch", batch)
	get("/v1/grid?scenario=2a&n=1&methods=DPCP-p-EN") // 400-free, runs the sweep
	post(t, s, "/v1/sweeps", []byte(`{"scenarios":["2a"],"n":1,"methods":["DPCP-p-EN"]}`))
	get("/v1/sweeps")
	if m := s.Metrics(); m.Requests != 4 {
		t.Fatalf("after analyze+batch+grid+sweep submit (+probes): requests=%d, want 4", m.Requests)
	}
}

// TestFastPathHitAccounting pins the exact-body fast path's cache-hit
// accounting to the cachedAll convention: one hit per method result
// served, not one per request.
func TestFastPathHitAccounting(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := testTaskset(t, 0)
	body := analyzeBody(t, ts) // all five methods

	if w := post(t, s, "/v1/analyze", body); w.Code != http.StatusOK {
		t.Fatalf("priming request: %d", w.Code)
	}
	base := s.Metrics().CacheHits

	// Byte-identical repeat: served by the fast path, five results.
	if w := post(t, s, "/v1/analyze", body); w.Code != http.StatusOK {
		t.Fatalf("fast-path request: %d", w.Code)
	}
	afterFast := s.Metrics().CacheHits
	if got := afterFast - base; got != int64(len(analysis.Methods())) {
		t.Errorf("fast-path repeat counted %d hits, want %d (one per method)",
			got, len(analysis.Methods()))
	}

	// Semantically identical but byte-different (reordered tasks): the
	// cachedAll path must count the same way, so the two paths are
	// indistinguishable in the metrics.
	reordered := testTaskset(t, 0)
	reordered.Tasks[0], reordered.Tasks[1] = reordered.Tasks[1], reordered.Tasks[0]
	if w := post(t, s, "/v1/analyze", analyzeBody(t, reordered)); w.Code != http.StatusOK {
		t.Fatalf("cachedAll request: %d", w.Code)
	}
	if got := s.Metrics().CacheHits - afterFast; got != int64(len(analysis.Methods())) {
		t.Errorf("cachedAll repeat counted %d hits, want %d — fast path and cachedAll disagree",
			got, len(analysis.Methods()))
	}
}

// FuzzAnalyzeRequest: no request body may reach a panic anywhere under the
// handler — the fuzzer's job is proving the 4xx path is total. Seeds
// include the hostile documents the model fuzzer found plus a hostile
// full-envelope request.
func FuzzAnalyzeRequest(f *testing.F) {
	f.Add([]byte(`{"taskset":{"tasks":[{"id":0,"period":1000,"deadline":1000,"vertices":[{"id":0,"wcet":100}]}],"num_resources":0,"num_procs":2}}`))
	f.Add([]byte(`{"taskset":{"tasks":[],"num_resources":-1,"num_procs":2}}`))
	f.Add([]byte(`{"taskset":{"tasks":[{"id":0,"period":1000,"deadline":1000,"vertices":[{"id":7,"wcet":100}]}],"num_resources":0,"num_procs":2},"methods":["DPCP-p-EP"],"path_cap":-99,"placement":"zzz","explain":true}`))
	f.Add([]byte(`{"taskset":{"tasks":[{"id":0,"period":1000,"deadline":1000,"priority":1,"vertices":[{"id":0,"wcet":100,"requests":{"0":2}}],"cslen":[-5]}],"num_resources":1,"num_procs":2}}`))
	s := newTestServer(f, Config{Workers: 1, MaxBody: 1 << 16})
	f.Fuzz(func(t *testing.T, body []byte) {
		w := post(t, s, "/v1/analyze", body)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests:
		default:
			t.Fatalf("unexpected status %d for body %q", w.Code, body)
		}
	})
}

// BenchmarkServerAnalyze measures the full request path, cold (cache
// miss, one analysis per request) vs hit (content-addressed cache). The
// tiny taskset isolates the transport floor; the fig2a family uses the
// paper's Sec. VII-A synthesis at util 8, where the cache turns
// millisecond analyses into microsecond lookups.
func BenchmarkServerAnalyze(b *testing.B) {
	fig2aBody := func(b *testing.B, seed int64) []byte {
		b.Helper()
		scen, err := taskgen.Fig2Scenario("2a")
		if err != nil {
			b.Fatal(err)
		}
		g := taskgen.NewGenerator(scen.DefaultStructure())
		ts, err := experiments.GenerateSample(g, seed, 8)
		if err != nil {
			b.Fatal(err)
		}
		body, err := json.Marshal(AnalyzeRequest{Taskset: ts, Methods: []string{string(analysis.DPCPpEP)}})
		if err != nil {
			b.Fatal(err)
		}
		return body
	}
	for _, bc := range []struct {
		name string
		body func(b *testing.B, i int) []byte
	}{
		{"tiny-cold", func(b *testing.B, i int) []byte {
			return analyzeBody(b, testTaskset(b, rt.Time(i+1)), string(analysis.DPCPpEP))
		}},
		{"tiny-hit", func(b *testing.B, i int) []byte {
			return analyzeBody(b, testTaskset(b, 0), string(analysis.DPCPpEP))
		}},
		{"fig2a-cold", func(b *testing.B, i int) []byte { return fig2aBody(b, int64(i)) }},
		{"fig2a-hit", func(b *testing.B, i int) []byte { return fig2aBody(b, 1) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := newTestServer(b, Config{Workers: 1, CacheSize: 1 << 20, MaxQueue: 1 << 30})
			bodies := make([][]byte, b.N)
			for i := range bodies {
				bodies[i] = bc.body(b, i)
			}
			if strings.HasSuffix(bc.name, "-hit") && b.N > 0 {
				post(b, s, "/v1/analyze", bodies[0]) // warm the cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := post(b, s, "/v1/analyze", bodies[i])
				if w.Code != http.StatusOK {
					b.Fatalf("status %d", w.Code)
				}
			}
		})
	}
}
