package server

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/obs"
	"dpcpp/internal/store"
)

// DefaultTraceBuffer is the request-trace ring capacity (Config.TraceBuffer).
const DefaultTraceBuffer = 256

// obsEndpoints is the closed set of endpoint labels for the per-endpoint
// request-latency histograms. A closed set keeps the label space bounded —
// a scanner probing random paths lands in "other" instead of minting one
// time series per probe.
var obsEndpoints = []string{
	"analyze", "batch", "delta", "grid", "sweeps", "metrics", "healthz", "traces", "other",
}

// classifyEndpoint maps a request path onto the closed endpoint label set.
func classifyEndpoint(path string) string {
	switch {
	case path == "/v1/analyze":
		return "analyze"
	case path == "/v1/analyze/batch":
		return "batch"
	case path == "/v1/analyze/delta":
		return "delta"
	case path == "/v1/grid":
		return "grid"
	case path == "/v1/sweeps" || strings.HasPrefix(path, "/v1/sweeps/"):
		return "sweeps"
	case path == "/v1/metrics" || path == "/metrics":
		return "metrics"
	case path == "/healthz":
		return "healthz"
	case path == "/v1/debug/traces":
		return "traces"
	default:
		return "other"
	}
}

// serverObs bundles one Server's observability state: the base logger,
// the Prometheus registry, the trace ring, and the per-endpoint latency
// histograms.
type serverObs struct {
	log  *slog.Logger
	reg  *obs.Registry
	ring *obs.TraceRing
	// perEndpoint holds one request-latency histogram per obsEndpoints
	// entry; built once in newServerObs and read-only afterwards, so
	// lookups need no locking.
	perEndpoint map[string]*obs.Histogram
	// accessEvery samples the access log: every accessEvery-th completed
	// request (by the accessN counter) emits one line. 0 disables.
	accessEvery int64
	accessN     atomic.Int64
}

func newServerObs(logger *slog.Logger, accessEvery int, traceBuffer int) *serverObs {
	if logger == nil {
		logger = obs.NopLogger()
	}
	if traceBuffer <= 0 {
		traceBuffer = DefaultTraceBuffer
	}
	o := &serverObs{
		log:         logger,
		reg:         obs.NewRegistry(),
		ring:        obs.NewTraceRing(traceBuffer),
		perEndpoint: make(map[string]*obs.Histogram, len(obsEndpoints)),
		accessEvery: int64(accessEvery),
	}
	for _, ep := range obsEndpoints {
		o.perEndpoint[ep] = obs.NewHistogram(obs.DefaultLatencyBounds())
	}
	return o
}

// registerMetrics populates the Prometheus registry from the engine's and
// registry's live counters. Registration order is exposition order.
func (s *Server) registerMetrics() {
	e, j, r := s.engine, s.jobs, s.obs.reg

	r.Counter("schedd_requests_total",
		"Analysis-bearing requests (analyze, batch, grid, sweep submissions).",
		e.requests.Load)
	r.Counter("schedd_analyses_total",
		"Analyses actually executed (cache and store misses).", e.analyses.Load)
	r.Counter("schedd_cache_hits_total",
		"Result-cache hits, one per method result served.", e.cacheHits.Load)
	r.Counter("schedd_cache_misses_total",
		"Result-cache misses.", e.cacheMisses.Load)
	r.Counter("schedd_coalesced_total",
		"Requests coalesced onto another caller's in-flight analysis.", e.coalesced.Load)
	r.Counter("schedd_delta_hits_total",
		"Delta queries answered from retained incremental state.", e.deltaHits.Load)
	r.Counter("schedd_delta_fallbacks_total",
		"Delta queries that rebuilt base state with a full analysis.", e.deltaFallbacks.Load)
	r.Counter("schedd_rejected_total",
		"Requests rejected by admission control (429).", e.rejected.Load)
	r.Counter("schedd_canceled_total",
		"Analyses abandoned because the client went away.", e.canceled.Load)
	r.Counter("schedd_deadline_exceeded_total",
		"Analyses cut off by a request deadline.", e.deadlines.Load)
	r.Counter("schedd_store_hits_total",
		"Persistent-store result hits.", e.storeHits.Load)
	r.Counter("schedd_store_puts_total",
		"Results persisted to the store.", e.storePuts.Load)
	r.Counter("schedd_store_errors_total",
		"Store failures (degraded to recomputation, never to request failures).",
		e.storeErrors.Load)
	r.Counter("schedd_store_breaker_trips_total",
		"Times the store circuit breaker opened.", e.br.Trips)
	r.Counter("schedd_sweeps_submitted_total",
		"Sweep jobs submitted.", j.submitted.Load)
	r.Counter("schedd_sweeps_completed_total",
		"Sweep jobs run to completion.", j.completed.Load)

	r.Gauge("schedd_workers",
		"Configured analysis worker slots.",
		func() float64 { return float64(e.workers) })
	r.Gauge("schedd_inflight_analyses",
		"Analyses executing right now (occupied worker slots).",
		func() float64 { return float64(len(e.slots)) })
	r.Gauge("schedd_queue_depth",
		"Admitted-but-unfinished analysis jobs.",
		func() float64 { return float64(e.queued.Load()) })
	r.Gauge("schedd_cache_entries",
		"Entries in the in-memory result cache.",
		func() float64 { return float64(e.cache.entries()) })
	r.Gauge("schedd_delta_states",
		"Retained incremental delta states (bounded LRU).",
		func() float64 { return float64(e.deltaStates.entries()) })
	r.Gauge("schedd_sweeps_active",
		"Sweep jobs running or queued for the runner.",
		func() float64 { return float64(j.active.Load() + int64(len(j.queue))) })
	for _, state := range []string{store.BreakerClosed, store.BreakerOpen, store.BreakerHalfOpen} {
		state := state
		r.GaugeL("schedd_store_breaker_state", obs.Labels("state", state),
			"Store circuit-breaker state (1 for the current state, 0 otherwise; all 0 without a store).",
			func() float64 {
				if e.br.State() == state {
					return 1
				}
				return 0
			})
	}

	for _, ep := range obsEndpoints {
		r.HistogramL("schedd_request_duration_seconds", obs.Labels("endpoint", ep),
			"HTTP request latency by endpoint.", s.obs.perEndpoint[ep])
	}
	r.Histogram("schedd_analysis_duration_seconds",
		"Wall time of executed analyses (cache misses only).", e.latency)
	for st := analysis.Stage(0); st < analysis.NumStages; st++ {
		r.HistogramL("schedd_analysis_stage_duration_seconds", obs.Labels("stage", st.String()),
			"Per-stage analysis pipeline timing (views, fixpoint, round).", e.stages.h[st])
	}
}

// obsResponseWriter observes one response: it captures the status code and
// injects the trace's Server-Timing header at the last possible moment —
// the first header flush — so every span recorded during the handler makes
// it into the header. Flush and Unwrap forward so NDJSON streaming
// (http.Flusher) and per-write deadlines (http.ResponseController) keep
// working through the wrapper.
type obsResponseWriter struct {
	http.ResponseWriter
	tr     *obs.Trace
	status int
	wrote  bool
}

func (w *obsResponseWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.status = code
		w.Header().Set("Server-Timing", w.tr.ServerTiming())
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsResponseWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

func (w *obsResponseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *obsResponseWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// observe wraps the mux dispatch with the request-observability
// middleware: a generated request ID (echoed as X-Request-ID), a trace in
// the ring with a request-scoped logger carried through the context, the
// per-endpoint latency histogram, and the sampled access log.
func (s *Server) observe(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ep := classifyEndpoint(r.URL.Path)
	id := obs.NewRequestID()
	tr := obs.NewTrace(id, ep, r.Method, r.URL.Path, start)
	s.obs.ring.Add(tr)
	reqLog := s.obs.log.With("req_id", id)
	ctx := obs.WithLogger(obs.WithTrace(r.Context(), tr), reqLog)

	ow := &obsResponseWriter{ResponseWriter: w, tr: tr}
	ow.Header().Set("X-Request-ID", id)
	s.mux.ServeHTTP(ow, r.WithContext(ctx))

	status := ow.status
	if status == 0 { // handler never wrote; net/http sends 200
		status = http.StatusOK
	}
	d := time.Since(start)
	tr.Finish(status)
	s.obs.perEndpoint[ep].Observe(d)
	if every := s.obs.accessEvery; every > 0 && s.obs.accessN.Add(1)%every == 0 {
		reqLog.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", ep),
			slog.Int("status", status),
			slog.Duration("duration", d),
		)
	}
}

// observeBreaker wires the store circuit breaker's transitions into the
// structured log: entering the open state is degraded-mode entry (warn),
// returning to closed is recovery (info), probe admissions are debug.
func (s *Server) observeBreaker(br *store.Breaker) {
	log := s.obs.log
	br.OnTransition(func(from, to string) {
		ctx := context.Background()
		switch to {
		case store.BreakerOpen:
			if from == store.BreakerClosed {
				log.LogAttrs(ctx, slog.LevelWarn, "store degraded: breaker opened, bypassing store",
					slog.String("from", from), slog.Int64("trips", br.Trips()))
			} else {
				log.LogAttrs(ctx, slog.LevelWarn, "store probe failed, breaker re-opened",
					slog.String("from", from))
			}
		case store.BreakerClosed:
			log.LogAttrs(ctx, slog.LevelInfo, "store recovered: breaker closed",
				slog.String("from", from))
		default: // half-open probe admitted
			log.LogAttrs(ctx, slog.LevelDebug, "store breaker admitting recovery probe",
				slog.String("from", from))
		}
	})
}

// TraceDump is the body of GET /v1/debug/traces: the most recent completed
// and in-flight request traces, newest first.
type TraceDump struct {
	// Total counts every trace ever added to the ring; len(Traces) is
	// bounded by the ring capacity.
	Total  int64           `json:"total"`
	Traces []obs.TraceView `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, TraceDump{
		Total:  s.obs.ring.Total(),
		Traces: s.obs.ring.Snapshot(),
	})
}

// handlePromMetrics serves the Prometheus text exposition (the JSON
// counters stay at /v1/metrics).
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.reg.WriteTo(w)
}
