package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/taskgen"
)

// gridGet streams one grid request and returns the parsed point lines and
// the trailing done line.
func gridGet(t *testing.T, s *Server, url string) ([]GridPoint, *GridDone, int) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return nil, nil, w.Code
	}
	var points []GridPoint
	var done *GridDone
	sc := bufio.NewScanner(w.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var gd GridDone
		if json.Unmarshal(line, &gd) == nil && gd.Done {
			done = &gd
			continue
		}
		var gp GridPoint
		if err := json.Unmarshal(line, &gp); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		points = append(points, gp)
	}
	return points, done, w.Code
}

// TestGridStream: the streamed NDJSON must carry every utilization point
// exactly once, a trailing done line, and per-point counts that match a
// direct experiments.Campaign run with the same seed — the server is a
// transport, not a different experiment.
func TestGridStream(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	// One sample per point and the cheapest method keep this e2e sweep
	// fast while still exercising generation, hashing and the cache.
	const n = 1
	points, done, code := gridGet(t, s,
		"/v1/grid?scenario=2a&n=1&seed=2020&methods=DPCP-p-EN")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	utils := taskgen.UtilizationPoints(16) // scenario 2a has m=16
	if len(points) != len(utils) {
		t.Fatalf("streamed %d points, want %d", len(points), len(utils))
	}
	if done == nil || done.Points != len(utils) {
		t.Fatalf("missing or wrong done line: %+v", done)
	}
	seen := make(map[int]bool)
	for _, gp := range points {
		if seen[gp.Point] {
			t.Fatalf("point %d streamed twice", gp.Point)
		}
		seen[gp.Point] = true
		if gp.Total+gp.GenFailures != n {
			t.Errorf("point %d: total %d + genfail %d != n %d", gp.Point, gp.Total, gp.GenFailures, n)
		}
		if gp.Utilization != utils[gp.Point] {
			t.Errorf("point %d: utilization %v, want %v", gp.Point, gp.Utilization, utils[gp.Point])
		}
	}

	// Determinism against the direct harness: same seed, same scenario,
	// same counts.
	scen2a, err := taskgen.Fig2Scenario("2a")
	if err != nil {
		t.Fatal(err)
	}
	curve, err := experiments.Campaign{
		Scenario:         scen2a,
		Methods:          []analysis.Method{analysis.DPCPpEN},
		TasksetsPerPoint: n,
		Seed:             2020,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Point < points[j].Point })
	for pi, gp := range points {
		want := curve.Points[pi].Accepted[analysis.DPCPpEN]
		if gp.Accepted[string(analysis.DPCPpEN)] != want {
			t.Errorf("point %d: server accepted %d, direct harness %d",
				pi, gp.Accepted[string(analysis.DPCPpEN)], want)
		}
		if gp.Total != curve.Points[pi].Total {
			t.Errorf("point %d: server total %d, direct harness %d", pi, gp.Total, curve.Points[pi].Total)
		}
	}

	// The sweep populated the cache: metrics must show analyses ran.
	if m := s.Metrics(); m.Analyses == 0 || m.QueuedJobs != 0 {
		t.Errorf("metrics after grid: %+v", m)
	}
}

// deadConnWriter fails every write, like a client that disconnected before
// the stream started; it counts the attempts.
type deadConnWriter struct {
	header http.Header
	writes int
}

func (w *deadConnWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *deadConnWriter) WriteHeader(int) {}
func (w *deadConnWriter) Write(p []byte) (int, error) {
	w.writes++
	return 0, fmt.Errorf("write on closed connection")
}

// TestGridStopsEncodingOnDeadClient: after the first failed write the
// handler must stop encoding points (and never send the done line), while
// still draining the sweep so admission accounting returns to zero.
func TestGridStopsEncodingOnDeadClient(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	req := httptest.NewRequest(http.MethodGet, "/v1/grid?scenario=2a&n=1&methods=DPCP-p-EN", nil)
	w := &deadConnWriter{}
	s.ServeHTTP(w, req)
	if w.writes != 1 {
		t.Errorf("handler attempted %d writes to a dead connection, want exactly 1 (the first failure)", w.writes)
	}
	if m := s.Metrics(); m.QueuedJobs != 0 {
		t.Errorf("admission not drained after dead-client stream: %+v", m)
	}
}

func TestGridParams(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, url string
	}{
		{"missing scenario", "/v1/grid"},
		{"bad scenario", "/v1/grid?scenario=9z"},
		{"bad grid index", "/v1/grid?scenario=g99999"},
		{"bad n", "/v1/grid?scenario=2a&n=0"},
		{"huge n", "/v1/grid?scenario=2a&n=99999999"},
		{"bad seed", "/v1/grid?scenario=2a&seed=x"},
		{"bad pathcap", "/v1/grid?scenario=2a&pathcap=-2"},
		{"bad methods", "/v1/grid?scenario=2a&methods=nope"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, code := gridGet(t, s, tc.url)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
		})
	}
	// A grid that could never fit the queue bound is rejected permanently
	// (400, not a retryable 429).
	s2 := newTestServer(t, Config{Workers: 1, MaxQueue: 5})
	_, _, code := gridGet(t, s2, "/v1/grid?scenario=2a&n=25")
	if code != http.StatusBadRequest {
		t.Fatalf("oversized grid: status %d, want 400", code)
	}
}
