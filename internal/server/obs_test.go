package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpcpp/internal/analysis"
	"dpcpp/internal/obs"
)

// get performs one GET against the handler without a network hop.
func get(t testing.TB, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestObservabilityHeaders: every response carries a request ID and a
// Server-Timing header; an analyze response's timing includes the analysis
// span recorded inside the engine.
func TestObservabilityHeaders(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	w := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN)))
	if w.Code != http.StatusOK {
		t.Fatalf("analyze: %d %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Request-ID")
	if len(id) != 16 {
		t.Fatalf("X-Request-ID = %q, want 16 hex chars", id)
	}
	st := w.Header().Get("Server-Timing")
	if !strings.Contains(st, "total;dur=") {
		t.Fatalf("Server-Timing = %q, want a total entry", st)
	}
	if !strings.Contains(st, "analysis;dur=") {
		t.Fatalf("Server-Timing = %q, want an analysis span on a cache miss", st)
	}

	// The repeat is served from cache; its timing has no analysis span but
	// still a total, and a fresh request ID.
	w2 := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN)))
	if got := w2.Header().Get("X-Request-ID"); got == "" || got == id {
		t.Fatalf("repeat request ID = %q (first %q); must be fresh", got, id)
	}
	if st2 := w2.Header().Get("Server-Timing"); !strings.Contains(st2, "total;dur=") {
		t.Fatalf("repeat Server-Timing = %q", st2)
	}
}

// TestPromMetricsEndpoint drives real traffic and checks the Prometheus
// exposition: required families present, histogram invariants hold, and
// the counters agree with the JSON /v1/metrics view.
func TestPromMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if w := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN))); w.Code != http.StatusOK {
			t.Fatalf("analyze %d: %d", i, w.Code)
		}
	}
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	text := w.Body.String()
	for _, family := range []string{
		"schedd_requests_total",
		"schedd_analyses_total",
		"schedd_cache_hits_total",
		"schedd_queue_depth",
		"schedd_store_breaker_state",
		"schedd_request_duration_seconds",
		"schedd_analysis_duration_seconds",
		"schedd_analysis_stage_duration_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("exposition missing family %s", family)
		}
	}
	for _, series := range []string{
		`schedd_request_duration_seconds_bucket{endpoint="analyze",le="+Inf"}`,
		`schedd_analysis_stage_duration_seconds_bucket{stage="round",le="+Inf"}`,
		`schedd_analysis_stage_duration_seconds_bucket{stage="fixpoint",le="+Inf"}`,
		"schedd_analysis_duration_seconds_sum",
		"schedd_analysis_duration_seconds_count",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing series %s", series)
		}
	}
	// Counters agree with the JSON view (requests counted before /metrics).
	m := s.Metrics()
	if !strings.Contains(text, "schedd_requests_total 3\n") {
		t.Errorf("schedd_requests_total: want 3 (JSON says %d):\n%s", m.Requests, text)
	}
	if m.Analyses != 1 {
		t.Fatalf("analyses = %d, want 1 (two repeats were cache hits)", m.Analyses)
	}
	if !strings.Contains(text, "schedd_analyses_total 1\n") {
		t.Error("schedd_analyses_total: want 1")
	}
	// Stage histograms saw real samples through the pooled scratch hooks.
	if s.engine.stages.h[analysis.StageRound].Count() == 0 {
		t.Error("round-stage histogram empty; scratch hooks are not wired")
	}
	// Without a store, every breaker-state gauge reads 0.
	if !strings.Contains(text, `schedd_store_breaker_state{state="closed"} 0`) {
		t.Error("breaker-state gauge for closed should be 0 without a store")
	}
}

// TestDebugTraces exercises GET /v1/debug/traces: spans from real requests
// come back newest-first with the recorded stages.
func TestDebugTraces(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, TraceBuffer: 8})
	if w := post(t, s, "/v1/analyze", analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN))); w.Code != http.StatusOK {
		t.Fatalf("analyze: %d", w.Code)
	}
	w := get(t, s, "/v1/debug/traces")
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/debug/traces: %d", w.Code)
	}
	var dump TraceDump
	if err := json.Unmarshal(w.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	// The traces request itself is newest; the analyze trace follows.
	if dump.Total < 1 || len(dump.Traces) < 1 {
		t.Fatalf("dump = %+v", dump)
	}
	var analyze *obs.TraceView
	for i := range dump.Traces {
		if dump.Traces[i].Endpoint == "analyze" {
			analyze = &dump.Traces[i]
			break
		}
	}
	if analyze == nil {
		t.Fatalf("no analyze trace in %+v", dump.Traces)
	}
	if analyze.Status != http.StatusOK || analyze.DurNS <= 0 {
		t.Fatalf("analyze trace = %+v", *analyze)
	}
	found := false
	for _, sp := range analyze.Spans {
		if sp.Name == "analysis" && sp.DurNS > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("analyze trace lacks an analysis span: %+v", analyze.Spans)
	}
}

// TestAccessLogSampling: with AccessLogEvery=2, exactly every second
// request emits one structured line carrying the request ID.
func TestAccessLogSampling(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 2, Logger: logger, AccessLogEvery: 2})
	for i := 0; i < 4; i++ {
		get(t, s, "/healthz")
	}
	var lines []map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if raw == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", raw, err)
		}
		if rec["msg"] == "request" {
			lines = append(lines, rec)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("4 requests at 1-in-2 sampling logged %d access lines, want 2", len(lines))
	}
	for _, rec := range lines {
		if rec["req_id"] == "" || rec["endpoint"] != "healthz" || rec["status"] != float64(200) {
			t.Fatalf("access line = %v", rec)
		}
	}
}

// TestHealthzBuildInfo: the liveness body now attributes the binary.
func TestHealthzBuildInfo(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := get(t, s, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", w.Code)
	}
	var h struct {
		OK    bool      `json:"ok"`
		Build obs.Build `json:"build"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Build.GoVersion == "" {
		t.Fatalf("healthz = %+v; build info must carry the Go version", h)
	}
}

// TestEndpointClassification pins the closed label set.
func TestEndpointClassification(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/analyze":        "analyze",
		"/v1/analyze/batch":  "batch",
		"/v1/grid":           "grid",
		"/v1/sweeps":         "sweeps",
		"/v1/sweeps/abc/xyz": "sweeps",
		"/v1/metrics":        "metrics",
		"/metrics":           "metrics",
		"/healthz":           "healthz",
		"/v1/debug/traces":   "traces",
		"/v1/unknown":        "other",
		"/..%2fadmin":        "other",
	} {
		if got := classifyEndpoint(path); got != want {
			t.Errorf("classifyEndpoint(%q) = %q, want %q", path, got, want)
		}
	}
}
