package server

import (
	"strconv"
	"sync/atomic"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
)

// engine is the cache-aware analysis core under every handler. The layering
// is strict: handlers decode and validate, the engine decides whether work
// is needed (cache), who does it (singleflight coalescing) and when
// (admission queue + worker slots), and the analysis itself stays inside
// internal/analysis untouched.
//
// Cache-key semantics: a result is addressed by
//
//	<taskset sha256>|<method>|pc=<path cap>|pl=<placement>|ex=<explain>
//
// — the taskset's canonical content hash (model.Taskset.Hash) plus every
// option that can change the result. Two requests with byte-different but
// semantically identical tasksets (reordered tasks, renamed tasks,
// duplicate edges) therefore share cache entries and coalesce onto one
// in-flight analysis.
type engine struct {
	workers  int
	maxQueue int64
	cache    *lru[*MethodResult]
	flight   flightGroup
	// slots bounds concurrently executing analyses to the worker count;
	// queued counts admitted-but-unfinished jobs for backpressure.
	slots  chan struct{}
	queued atomic.Int64

	// testFn runs one analysis; tests swap it for counting/blocking hooks.
	testFn func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result

	// Counters behind GET /v1/metrics.
	requests    atomic.Int64
	analyses    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64
	rejected    atomic.Int64
}

// Metrics is the JSON body of GET /v1/metrics: monotonic counters plus
// point-in-time gauges.
type Metrics struct {
	Requests     int64 `json:"requests"`
	Analyses     int64 `json:"analyses"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Coalesced    int64 `json:"coalesced"`
	Rejected     int64 `json:"rejected"`
	QueuedJobs   int64 `json:"queued_jobs"`
	CacheEntries int64 `json:"cache_entries"`
	Workers      int   `json:"workers"`
}

func newEngine(workers, cacheSize int, maxQueue int64) *engine {
	workers = experiments.Workers(workers)
	return &engine{
		workers:  workers,
		maxQueue: maxQueue,
		cache:    newLRU[*MethodResult](cacheSize),
		slots:    make(chan struct{}, workers),
		testFn:   analysis.Test,
	}
}

// tryAdmit reserves n analysis jobs against the queue bound. A false
// return means the server is saturated and the request must be rejected
// (429) rather than queued without bound.
func (e *engine) tryAdmit(n int) bool {
	if e.queued.Add(int64(n)) > e.maxQueue {
		e.queued.Add(int64(-n))
		e.rejected.Add(1)
		return false
	}
	return true
}

// release returns n admitted jobs to the queue bound.
func (e *engine) release(n int) { e.queued.Add(int64(-n)) }

// cacheKey builds the content address of one (taskset, method, options)
// result. PathCap is normalized first so 0 and the explicit default hit
// the same entry.
func cacheKey(h model.Hash, m analysis.Method, opts analysis.Options, explain bool) string {
	pc := opts.PathCap
	if pc <= 0 {
		pc = analysis.DefaultPathCap
	}
	key := h.String() + "|" + string(m) + "|pc=" + strconv.Itoa(pc) +
		"|pl=" + strconv.Itoa(int(opts.Placement))
	if explain {
		key += "|ex=1"
	}
	return key
}

// analyze returns the method's result for the hashed taskset, from cache
// when possible. On a miss, concurrent identical requests coalesce onto
// one analysis (singleflight) which runs on a bounded worker slot; the
// result is cached before any waiter wakes. The cache-hit path performs no
// analysis work and acquires no slot.
func (e *engine) analyze(h model.Hash, ts *model.Taskset, m analysis.Method,
	opts analysis.Options, explain bool) *MethodResult {

	// Only DPCP-p-EP ever carries a breakdown, so the explain flag must
	// not fork the cache key (or re-run the analysis) of any other method.
	explain = explain && m == analysis.DPCPpEP
	key := cacheKey(h, m, opts, explain)
	if v, ok := e.cache.get(key); ok {
		e.cacheHits.Add(1)
		return v
	}
	e.cacheMisses.Add(1)
	v, shared := e.flight.do(key, func() *MethodResult {
		// A racing flight may have completed — and cached — between this
		// caller's cache miss and registering the flight; re-check before
		// paying for a worker slot, so duplicate analyses are impossible,
		// not merely unlikely.
		if v, ok := e.cache.get(key); ok {
			return v
		}
		e.slots <- struct{}{}
		defer func() { <-e.slots }()
		e.analyses.Add(1)
		res := e.testFn(m, ts, opts)
		mr := &MethodResult{
			Schedulable: res.Schedulable,
			WCRT:        res.WCRT,
			Rounds:      res.Rounds,
			Reason:      res.Reason,
		}
		if explain && res.Partition != nil {
			pc := opts.PathCap
			if pc <= 0 {
				pc = analysis.DefaultPathCap
			}
			mr.Explain = analysis.NewDPCPp(ts, pc, false).Explain(res.Partition)
		}
		e.cache.add(key, mr)
		return mr
	})
	if shared {
		e.coalesced.Add(1)
	}
	return v
}

// cachedAll returns every requested method's result when all of them are
// already cached (counting one hit per method), or nil on any miss without
// touching the counters. It lets handlers serve fully-cached requests
// without charging admission: a saturated queue must never 429 a request
// that needs zero analysis work.
func (e *engine) cachedAll(h model.Hash, ms []analysis.Method,
	opts analysis.Options, explain bool) map[string]*MethodResult {

	out := make(map[string]*MethodResult, len(ms))
	for _, m := range ms {
		v, ok := e.cache.get(cacheKey(h, m, opts, explain && m == analysis.DPCPpEP))
		if !ok {
			return nil
		}
		out[string(m)] = v
	}
	e.cacheHits.Add(int64(len(ms)))
	return out
}

// snapshot captures the current metrics.
func (e *engine) snapshot() Metrics {
	return Metrics{
		Requests:     e.requests.Load(),
		Analyses:     e.analyses.Load(),
		CacheHits:    e.cacheHits.Load(),
		CacheMisses:  e.cacheMisses.Load(),
		Coalesced:    e.coalesced.Load(),
		Rejected:     e.rejected.Load(),
		QueuedJobs:   e.queued.Load(),
		CacheEntries: e.cache.entries(),
		Workers:      e.workers,
	}
}
