package server

import (
	"context"
	"encoding/json"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/obs"
	"dpcpp/internal/partition"
	"dpcpp/internal/store"
)

// engine is the cache-aware analysis core under every handler. The layering
// is strict: handlers decode and validate, the engine decides whether work
// is needed (cache), who does it (singleflight coalescing) and when
// (admission queue + worker slots), and the analysis itself stays inside
// internal/analysis untouched.
//
// Cache-key semantics: a result is addressed by
//
//	<taskset sha256>|<method>|pc=<path cap>|pl=<placement>|ex=<explain>
//
// — the taskset's canonical content hash (model.Taskset.Hash) plus every
// option that can change the result. Two requests with byte-different but
// semantically identical tasksets (reordered tasks, renamed tasks,
// duplicate edges) therefore share cache entries and coalesce onto one
// in-flight analysis.
type engine struct {
	workers  int
	maxQueue int64
	cache    *lru[*MethodResult]
	// st, when non-nil, is the on-disk write-through layer under the LRU:
	// misses consult it before paying for an analysis, and fresh results
	// are persisted so a restarted daemon keeps its cache warm. Store
	// failures only degrade to recomputation (counted in storeErrors),
	// never to request failures.
	st *store.Store
	// br gates every st access: after enough consecutive store failures it
	// opens and requests skip the disk entirely — no per-request syscall
	// penalty on a dead store — until a periodic probe succeeds. Nil (and
	// permanently closed) without a store.
	br     *store.Breaker
	flight flightGroup[*MethodResult]
	// deltaStates retains incremental analysis states (analysis.Delta) for
	// recently analyzed tasksets, keyed exactly like the result cache minus
	// the explain flag: <base hash>|<method>|pc|pl. A POST /v1/analyze/delta
	// whose base is present answers what-if patches through ApplyTo in
	// cache-hit territory; a miss falls back to a full base analysis that
	// retains fresh state. Bounded like the result cache; eviction only
	// costs the next delta request one full analysis.
	deltaStates *lru[*analysis.Delta]
	// slots bounds concurrently executing analyses to the worker count;
	// queued counts admitted-but-unfinished jobs for backpressure.
	slots  chan struct{}
	queued atomic.Int64

	// testFn runs one analysis; tests swap it for counting/blocking hooks.
	testFn func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result

	// scratch recycles analysis scratch arenas across requests: each worker
	// checks one out for the duration of a single analysis (a Scratch serves
	// one goroutine at a time), so a warmed-up server analyzes without
	// rebuilding its working memory per request. Every pooled Scratch
	// carries the engine's stage recorder, so per-stage pipeline timings
	// flow into the histograms without per-request wiring.
	scratch sync.Pool
	// latency is the analysis wall-time distribution; its built-in EWMA
	// feeds the computed Retry-After of backpressure responses, replacing
	// the ad-hoc accumulator that used to live beside it.
	latency *obs.Histogram
	// stages holds the per-stage Theorem 1 pipeline histograms, fed by the
	// allocation-free scratch hooks (analysis.StageRecorder).
	stages *stageRecorder

	// Counters behind GET /v1/metrics.
	requests    atomic.Int64
	analyses    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64
	rejected    atomic.Int64
	canceled    atomic.Int64
	deadlines   atomic.Int64
	storeHits   atomic.Int64
	storePuts   atomic.Int64
	storeErrors atomic.Int64
	// deltaHits counts delta requests served through a retained incremental
	// state; deltaFallbacks those that had to run a full base analysis
	// first (state missing or evicted).
	deltaHits      atomic.Int64
	deltaFallbacks atomic.Int64
}

// Metrics is the JSON body of GET /v1/metrics: monotonic counters plus
// point-in-time gauges.
type Metrics struct {
	// Requests counts analysis-bearing requests only (/v1/analyze,
	// /v1/analyze/batch, /v1/grid, POST /v1/sweeps) — liveness and metrics
	// probes never inflate it.
	Requests    int64 `json:"requests"`
	Analyses    int64 `json:"analyses"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Coalesced   int64 `json:"coalesced"`
	Rejected    int64 `json:"rejected"`
	// Canceled counts analyses abandoned because the client went away;
	// DeadlineExceeded those cut off by -request-timeout or a request's
	// timeout_ms. Both free their worker slot / queue position.
	Canceled         int64 `json:"canceled"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	StoreHits        int64 `json:"store_hits"`
	StorePuts        int64 `json:"store_puts"`
	StoreErrors      int64 `json:"store_errors"`
	// StoreState is the store circuit breaker's state (closed / open /
	// half-open; empty without a store); StoreTrips counts how many times
	// it has opened.
	StoreState string `json:"store_state,omitempty"`
	StoreTrips int64  `json:"store_trips"`
	// DeltaHits counts POST /v1/analyze/delta method results served through
	// a retained incremental state; DeltaFallbacks those that needed a full
	// base analysis first; DeltaStates is the retained-state gauge.
	DeltaHits      int64 `json:"delta_hits"`
	DeltaFallbacks int64 `json:"delta_fallbacks"`
	DeltaStates    int64 `json:"delta_states"`
	QueuedJobs     int64 `json:"queued_jobs"`
	CacheEntries   int64 `json:"cache_entries"`
	Workers        int   `json:"workers"`
	// Sweep-job gauges/counters (see jobs.go).
	SweepsSubmitted int64 `json:"sweeps_submitted"`
	SweepsCompleted int64 `json:"sweeps_completed"`
	SweepsActive    int64 `json:"sweeps_active"`
}

func newEngine(workers, cacheSize int, maxQueue int64, st *store.Store, br *store.Breaker) *engine {
	workers = experiments.Workers(workers)
	e := &engine{
		workers:     workers,
		maxQueue:    maxQueue,
		cache:       newLRU[*MethodResult](cacheSize),
		deltaStates: newLRU[*analysis.Delta](cacheSize),
		st:          st,
		br:          br,
		slots:       make(chan struct{}, workers),
		latency:     obs.NewHistogram(obs.DefaultLatencyBounds()),
		stages:      newStageRecorder(),
	}
	e.scratch.New = func() any {
		sc := analysis.NewScratch()
		sc.SetStageRecorder(e.stages)
		return sc
	}
	e.testFn = e.runTest
	return e
}

// stageRecorder adapts the engine's per-stage histograms to the
// analysis.StageRecorder hook. The histograms are lock-free, so one
// recorder is shared by every pooled Scratch; recording is allocation-free
// (pinned by the analysis package's zero-alloc gates).
type stageRecorder struct {
	h [analysis.NumStages]*obs.Histogram
}

func newStageRecorder() *stageRecorder {
	r := &stageRecorder{}
	for i := range r.h {
		r.h[i] = obs.NewHistogram(obs.DefaultLatencyBounds())
	}
	return r
}

func (r *stageRecorder) RecordStage(s analysis.Stage, d time.Duration) { r.h[s].Observe(d) }

// runTest is the default testFn: the analysis computes through a pooled
// scratch, checked out for exactly one call.
func (e *engine) runTest(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
	sc := e.scratch.Get().(*analysis.Scratch)
	defer e.scratch.Put(sc)
	return analysis.TestWith(sc, m, ts, opts)
}

// retryAfterSeconds estimates when capacity frees up: queued jobs drain
// through the worker slots at roughly one recent-average latency each, so
// the backlog clears in about queued*latency/workers. The recent average
// is the latency histogram's EWMA — the same recorder that feeds
// /metrics, so the estimate and the exported distribution can never
// drift apart. Clamped to [1, 60] seconds — a saturated server should
// not promise sub-second retries it cannot honor, nor park clients for
// minutes on a stale estimate.
func (e *engine) retryAfterSeconds() int {
	lat := int64(e.latency.EWMA())
	if lat <= 0 {
		return 1
	}
	queued := e.queued.Load()
	if queued < 1 {
		queued = 1
	}
	secs := (queued*lat/int64(e.workers) + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return int(secs)
}

// tryAdmit reserves n analysis jobs against the queue bound. A false
// return means the server is saturated and the request must be rejected
// (429) rather than queued without bound.
func (e *engine) tryAdmit(n int) bool {
	if e.queued.Add(int64(n)) > e.maxQueue {
		e.queued.Add(int64(-n))
		e.rejected.Add(1)
		return false
	}
	return true
}

// release returns n admitted jobs to the queue bound.
func (e *engine) release(n int) { e.queued.Add(int64(-n)) }

// cacheKey builds the content address of one (taskset, method, options)
// result. PathCap is normalized first so 0 and the explicit default hit
// the same entry.
func cacheKey(h model.Hash, m analysis.Method, opts analysis.Options, explain bool) string {
	pc := opts.PathCap
	if pc <= 0 {
		pc = analysis.DefaultPathCap
	}
	key := h.String() + "|" + string(m) + "|pc=" + strconv.Itoa(pc) +
		"|pl=" + strconv.Itoa(int(opts.Placement))
	if explain {
		key += "|ex=1"
	}
	return key
}

// analyze returns the method's result for the hashed taskset, from cache
// when possible. On a miss, concurrent identical requests coalesce onto
// one analysis (singleflight) which runs on a bounded worker slot; the
// result is cached before any waiter wakes. The cache-hit path performs no
// analysis work and acquires no slot.
//
// ctx bounds this caller's wait, not the shared computation: when ctx ends
// while the caller is queued for a worker slot or coalesced onto another
// caller's flight, analyze returns ctx's error immediately and the
// caller's slot claim is released — a disconnected client frees its worker
// slot. An analysis that already started runs to completion and lands in
// the cache even if every client that wanted it has gone.
func (e *engine) analyze(ctx context.Context, h model.Hash, ts *model.Taskset,
	m analysis.Method, opts analysis.Options, explain bool) (*MethodResult, error) {

	// Only DPCP-p-EP ever carries a breakdown, so the explain flag must
	// not fork the cache key (or re-run the analysis) of any other method.
	explain = explain && m == analysis.DPCPpEP
	// The flight function runs under a Background-derived context (the
	// computation outlives any one caller), so the caller's trace must be
	// captured here and closed over — it cannot be recovered from fctx.
	tr := obs.TraceFromContext(ctx)
	key := cacheKey(h, m, opts, explain)
	cacheStart := time.Now()
	if v, ok := e.cache.get(key); ok {
		e.cacheHits.Add(1)
		tr.AddSpan("cache", cacheStart)
		return v, nil
	}
	e.cacheMisses.Add(1)
	flightStart := time.Now()
	v, err, shared := e.flight.do(ctx, key, func(fctx context.Context) (*MethodResult, error) {
		// A racing flight may have completed — and cached — between this
		// caller's cache miss and registering the flight; re-check before
		// paying for a worker slot, so duplicate analyses are impossible,
		// not merely unlikely.
		if v, ok := e.cache.get(key); ok {
			return v, nil
		}
		// The persistent store is the next layer down: a result computed in
		// a previous process lifetime costs a disk read, not an analysis or
		// a worker slot.
		storeStart := time.Now()
		if mr := e.storeGet(key); mr != nil {
			e.cache.add(key, mr)
			tr.AddSpan("store", storeStart)
			return mr, nil
		}
		select {
		case e.slots <- struct{}{}:
		case <-fctx.Done():
			// Every caller abandoned before a worker slot freed up;
			// nothing was computed, so there is nothing to cache.
			return nil, fctx.Err()
		}
		defer func() { <-e.slots }()
		e.analyses.Add(1)
		start := time.Now()
		res := e.testFn(m, ts, opts)
		e.latency.Observe(time.Since(start))
		tr.AddSpan("analysis", start)
		mr := &MethodResult{
			Schedulable: res.Schedulable,
			WCRT:        res.WCRT,
			Rounds:      res.Rounds,
			Reason:      res.Reason,
		}
		if explain && res.Partition != nil {
			pc := opts.PathCap
			if pc <= 0 {
				pc = analysis.DefaultPathCap
			}
			mr.Explain = analysis.NewDPCPp(ts, pc, false).Explain(res.Partition)
		}
		e.cache.add(key, mr)
		e.storePut(key, mr)
		return mr, nil
	})
	if shared {
		e.coalesced.Add(1)
		// A coalesced waiter did not run the flight body, so its trace has
		// no store/analysis spans; the flight span covers the whole wait.
		tr.AddSpan("flight", flightStart)
	}
	if err != nil {
		e.noteAbort(err)
		return nil, err
	}
	return v, nil
}

// noteAbort counts an abandoned analyze call by cause.
func (e *engine) noteAbort(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		e.deadlines.Add(1)
	} else {
		e.canceled.Add(1)
	}
}

// cachedAll returns every requested method's result when all of them are
// already cached (counting one hit per method), or nil on any miss without
// touching the counters. It lets handlers serve fully-cached requests
// without charging admission: a saturated queue must never 429 a request
// that needs zero analysis work.
func (e *engine) cachedAll(h model.Hash, ms []analysis.Method,
	opts analysis.Options, explain bool) map[string]*MethodResult {

	out := make(map[string]*MethodResult, len(ms))
	for _, m := range ms {
		v, ok := e.cache.get(cacheKey(h, m, opts, explain && m == analysis.DPCPpEP))
		if !ok {
			return nil
		}
		out[string(m)] = v
	}
	e.cacheHits.Add(int64(len(ms)))
	return out
}

// storeGet fetches and decodes a persisted result (nil on miss, on a
// disabled store, on an open breaker, or on any store failure — failures
// degrade to recomputation).
func (e *engine) storeGet(key string) *MethodResult {
	if e.st == nil || !e.br.Allow() {
		return nil
	}
	data, ok, err := e.st.Get(key)
	e.br.Record(err)
	if err != nil {
		e.storeErrors.Add(1)
		return nil
	}
	if !ok {
		return nil
	}
	var mr MethodResult
	if err := json.Unmarshal(data, &mr); err != nil {
		// The disk worked; the entry is corrupt. Not a breaker signal.
		e.storeErrors.Add(1)
		return nil
	}
	e.storeHits.Add(1)
	return &mr
}

// storePut persists a fresh result; failures are counted, never surfaced,
// and an open breaker skips the write entirely (the result stays in the
// LRU and is recomputable).
func (e *engine) storePut(key string, mr *MethodResult) {
	if e.st == nil || !e.br.Allow() {
		return
	}
	data, err := json.Marshal(mr)
	if err == nil {
		err = e.st.Put(key, data)
		e.br.Record(err)
	}
	if err != nil {
		e.storeErrors.Add(1)
		return
	}
	e.storePuts.Add(1)
}

// snapshot captures the engine's metrics; the server layers the sweep-job
// counters on top (Server.Metrics).
func (e *engine) snapshot() Metrics {
	return Metrics{
		Requests:         e.requests.Load(),
		Analyses:         e.analyses.Load(),
		CacheHits:        e.cacheHits.Load(),
		CacheMisses:      e.cacheMisses.Load(),
		Coalesced:        e.coalesced.Load(),
		Rejected:         e.rejected.Load(),
		Canceled:         e.canceled.Load(),
		DeadlineExceeded: e.deadlines.Load(),
		StoreHits:        e.storeHits.Load(),
		StorePuts:        e.storePuts.Load(),
		StoreErrors:      e.storeErrors.Load(),
		StoreState:       e.br.State(),
		StoreTrips:       e.br.Trips(),
		DeltaHits:        e.deltaHits.Load(),
		DeltaFallbacks:   e.deltaFallbacks.Load(),
		DeltaStates:      e.deltaStates.entries(),
		QueuedJobs:       e.queued.Load(),
		CacheEntries:     e.cache.entries(),
		Workers:          e.workers,
	}
}
