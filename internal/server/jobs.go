package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/store"
	"dpcpp/internal/taskgen"
)

// Sweep jobs turn the one-connection-per-curve grid endpoint into a
// durable workload: POST /v1/sweeps accepts a whole campaign — any subset
// of the Fig. 2 subplots and the g0..g215 grid, n samples per point, a
// method subset — and returns immediately with a job ID. A single runner
// goroutine drains submitted jobs FIFO; within a job, scenarios run in
// order and each scenario's (point, sample) fan-out goes through
// experiments.ScenarioSweep on the shared pool, bounded by the same engine
// worker slots interactive requests use (so a sweep saturates idle cores
// but cannot run more analyses concurrently than -workers allows).
//
// Sweeps deliberately bypass the admission queue: admission protects
// interactive latency traffic from unbounded queueing, while a sweep is an
// explicitly asynchronous batch whose backpressure is the bounded job
// queue itself (429 when maxSweepJobs are pending) plus the per-job draw
// bound (maxSweepSamplesPerJob). Jobs — including finished ones — are
// retained in memory and on disk until a client removes them with
// DELETE /v1/sweeps/{id}, which also cancels a running or queued job at
// its next sample boundary.
//
// # Durability
//
// With a store configured, every job checkpoints to
// <store-dir>/jobs/<id>.json — the normalized spec plus each completed
// point's GridPoint — via atomic temp-file + rename. Point-completion
// checkpoints are throttled (at most one write per sweepCheckpointEvery)
// with forced writes at every scenario boundary, state change and
// cancellation, so checkpoint I/O stays bounded on store-warmed re-runs
// where thousands of points complete in milliseconds; a crash forfeits at
// most the last interval's points, which the resume re-runs
// deterministically. A restarted daemon reloads the directory,
// lists finished jobs, and re-queues unfinished ones, whose runner then
// re-runs only the incomplete points. Because every sample seed is
// experiments.SampleSeed(seed, scenario, point, sample) — independent of
// which points run in which process lifetime — a resumed sweep's curves
// are byte-identical to an uninterrupted run's, and the persistent result
// store makes the re-run of any point that had finished analyses before
// the crash mostly cache hits.
const (
	// maxSweepJobs bounds queued-but-unstarted sweep jobs; submissions
	// past it get 429.
	maxSweepJobs = 64
	// maxSweepScenarios bounds the scenario list of one sweep (the full
	// 216-scenario grid plus the four Fig. 2 subplots fits comfortably).
	maxSweepScenarios = 256
	// sweepCheckpointEvery throttles per-point checkpoint writes; scenario
	// boundaries, state changes and cancellation always write.
	sweepCheckpointEvery = time.Second
	// maxSweepSamplesPerJob bounds one job's total (point, sample) draws —
	// the full 216-scenario grid at n in the thousands still fits, but a
	// mistaken submission cannot park the FIFO runner for weeks (a job at
	// this bound is days of work; cancel it with DELETE /v1/sweeps/{id}).
	maxSweepSamplesPerJob = 10_000_000
)

// Sweep-job lifecycle states.
const (
	sweepQueued   = "queued"   // submitted or reloaded, waiting for the runner
	sweepRunning  = "running"  // the runner is draining its points
	sweepPaused   = "paused"   // reloaded with resume disabled; a future resume-enabled daemon will pick it up
	sweepDone     = "done"     // every point of every scenario completed
	sweepFailed   = "failed"   // checkpoint could not be resolved against this binary
	sweepCanceled = "canceled" // deleted by the client; in memory only, never checkpointed
)

// sweepSpec is the normalized, serialized definition of one sweep job.
type sweepSpec struct {
	Scenarios []string `json:"scenarios"`
	N         int      `json:"n"`
	Seed      int64    `json:"seed"`
	Methods   []string `json:"methods"`
	PathCap   int      `json:"path_cap"`
	Placement string   `json:"placement"`
}

// sweepCheckpoint is the on-disk (and in-memory) job state: the spec plus
// one GridPoint per completed utilization point, nil while incomplete.
type sweepCheckpoint struct {
	ID      string         `json:"id"`
	Created int64          `json:"created_unix_nano"`
	State   string         `json:"state"`
	Error   string         `json:"error,omitempty"`
	Spec    sweepSpec      `json:"spec"`
	Points  [][]*GridPoint `json:"points"`
}

// sweepJob is one submitted sweep: the checkpoint guarded by a mutex
// (runner writes, handlers read) plus the spec resolved against this
// binary (scenarios, methods, options).
type sweepJob struct {
	mu sync.Mutex
	cp sweepCheckpoint
	// ckmu serializes checkpoint marshal+write pairs: per-point
	// checkpoints fire from worker goroutines, and without the ordering a
	// stale snapshot could overwrite a newer one on disk. lastCk (guarded
	// by ckmu) is when the job last hit the disk, for throttling.
	ckmu   sync.Mutex
	lastCk time.Time

	// cancel (guarded by mu) interrupts the job's in-flight sweep; set by
	// the runner while the job runs, invoked by DELETE /v1/sweeps/{id}.
	cancel context.CancelFunc

	scens []taskgen.Scenario
	ms    []analysis.Method
	opts  analysis.Options
}

// resolve validates the spec against this binary and fills the derived
// fields, including the per-scenario point slices for any scenario that
// does not have them yet.
func (j *sweepJob) resolve() error {
	spec := &j.cp.Spec
	if len(spec.Scenarios) == 0 {
		return fmt.Errorf("empty scenarios")
	}
	if len(spec.Scenarios) > maxSweepScenarios {
		return fmt.Errorf("%d scenarios, above the per-sweep bound %d", len(spec.Scenarios), maxSweepScenarios)
	}
	if spec.N < 1 || spec.N > maxGridSamples {
		return fmt.Errorf("invalid n %d (1..%d)", spec.N, maxGridSamples)
	}
	if spec.PathCap < 0 {
		return fmt.Errorf("negative path_cap %d", spec.PathCap)
	}
	ms, err := parseMethods(spec.Methods)
	if err != nil {
		return err
	}
	// Canonicalize the method names so checkpoints are self-contained and
	// insensitive to client whitespace.
	spec.Methods = spec.Methods[:0]
	for _, m := range ms {
		spec.Methods = append(spec.Methods, string(m))
	}
	pl, err := parsePlacement(spec.Placement)
	if err != nil {
		return err
	}
	j.ms, j.opts = ms, analysis.Options{PathCap: spec.PathCap, Placement: pl}
	j.scens = make([]taskgen.Scenario, len(spec.Scenarios))
	if j.cp.Points == nil {
		j.cp.Points = make([][]*GridPoint, len(spec.Scenarios))
	}
	if len(j.cp.Points) != len(spec.Scenarios) {
		return fmt.Errorf("checkpoint has %d point lists for %d scenarios", len(j.cp.Points), len(spec.Scenarios))
	}
	totalSamples := 0
	for i, name := range spec.Scenarios {
		scen, err := parseScenario(name)
		if err != nil {
			return err
		}
		j.scens[i] = scen.DefaultStructure()
		npoints := len(taskgen.UtilizationPoints(j.scens[i].M))
		if j.cp.Points[i] == nil {
			j.cp.Points[i] = make([]*GridPoint, npoints)
		}
		if len(j.cp.Points[i]) != npoints {
			return fmt.Errorf("scenario %s: checkpoint has %d points, this binary sweeps %d", name, len(j.cp.Points[i]), npoints)
		}
		totalSamples += npoints * spec.N
	}
	if totalSamples > maxSweepSamplesPerJob {
		return fmt.Errorf("sweep draws %d samples, above the per-job bound %d; lower n or split the campaign",
			totalSamples, maxSweepSamplesPerJob)
	}
	return nil
}

// status snapshots the job's wire status.
func (j *sweepJob) status() SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SweepStatus{
		ID:        j.cp.ID,
		State:     j.cp.State,
		Error:     j.cp.Error,
		N:         j.cp.Spec.N,
		Seed:      j.cp.Spec.Seed,
		Methods:   j.cp.Spec.Methods,
		Scenarios: make([]SweepScenarioStatus, len(j.cp.Spec.Scenarios)),
	}
	for i, name := range j.cp.Spec.Scenarios {
		ss := SweepScenarioStatus{Scenario: name, Points: len(j.cp.Points[i])}
		for _, gp := range j.cp.Points[i] {
			if gp != nil {
				ss.Done++
			}
		}
		st.Scenarios[i] = ss
	}
	return st
}

// results snapshots the job's completed curves (nil entries mark points
// that have not completed yet; State tells the client whether more are
// coming).
func (j *sweepJob) results() SweepResults {
	j.mu.Lock()
	defer j.mu.Unlock()
	res := SweepResults{
		ID:        j.cp.ID,
		State:     j.cp.State,
		Scenarios: make([]SweepScenarioResult, len(j.cp.Spec.Scenarios)),
	}
	for i, name := range j.cp.Spec.Scenarios {
		pts := make([]*GridPoint, len(j.cp.Points[i]))
		copy(pts, j.cp.Points[i])
		res.Scenarios[i] = SweepScenarioResult{Scenario: name, Points: pts}
	}
	return res
}

// jobRegistry owns every sweep job of one Server: the in-memory index, the
// FIFO runner, and the checkpoint directory.
type jobRegistry struct {
	srv     *Server
	st      *store.Store // nil = in-memory only
	jobsDir string
	// sync selects durable (fsynced) checkpoint writes; on unless the
	// operator opted out (Config.DisableCheckpointSync). Cache entries
	// never sync — only checkpoints hold unrecoverable progress.
	sync bool

	mu    sync.Mutex
	jobs  map[string]*sweepJob
	order []string // submission/creation order, for listing

	queue  chan *sweepJob
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	active    atomic.Int64
}

func newJobRegistry(srv *Server, st *store.Store) (*jobRegistry, error) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &jobRegistry{
		srv:  srv,
		st:   st,
		sync: !srv.cfg.DisableCheckpointSync,
		jobs: make(map[string]*sweepJob),
		// A little headroom above the submission bound, so reloading a
		// full queue plus the job that was running at crash time never
		// blocks startup.
		queue:  make(chan *sweepJob, maxSweepJobs+8),
		ctx:    ctx,
		cancel: cancel,
	}
	if st != nil {
		r.jobsDir = filepath.Join(st.Dir(), "jobs")
		if err := os.MkdirAll(r.jobsDir, 0o755); err != nil {
			cancel()
			return nil, err
		}
		if err := r.load(); err != nil {
			cancel()
			return nil, err
		}
	}
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// load reloads checkpointed jobs after a restart. Finished jobs are listed
// as-is; unfinished ones are re-queued (or paused when resume is
// disabled). A checkpoint this binary cannot resolve — or one whose file
// is corrupted or unreadable — is kept as a failed job rather than
// silently dropped, and never poisons the rest of startup: every other
// checkpoint still loads and resumes.
func (r *jobRegistry) load() error {
	ents, err := os.ReadDir(r.jobsDir)
	if err != nil {
		return err
	}
	var loaded []*sweepJob
	for _, ent := range ents {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		// Reads go through the store so injected faults reach the startup
		// path too.
		data, err := r.st.ReadFile(filepath.Join(r.jobsDir, ent.Name()))
		if err == nil {
			j := &sweepJob{}
			if uerr := json.Unmarshal(data, &j.cp); uerr != nil {
				err = fmt.Errorf("corrupt checkpoint: %v", uerr)
			} else if j.cp.ID == "" {
				err = fmt.Errorf("corrupt checkpoint: missing job id")
			} else {
				loaded = append(loaded, j)
				continue
			}
		}
		// Unreadable or corrupt. If the filename is ID-shaped, the job
		// existed: surface it as failed (in memory only — the file on disk
		// is left alone) instead of making it vanish. Foreign files and
		// orphaned temp files are skipped silently; neither is fatal — the
		// daemon must come up with whatever state is readable.
		if id := strings.TrimSuffix(ent.Name(), ".json"); isSweepID(id) {
			loaded = append(loaded, &sweepJob{cp: sweepCheckpoint{
				ID:    id,
				State: sweepFailed,
				Error: fmt.Sprintf("unreadable checkpoint: %v", err),
			}})
		}
	}
	sort.Slice(loaded, func(a, b int) bool { return loaded[a].cp.Created < loaded[b].cp.Created })
	for _, j := range loaded {
		if err := j.resolve(); err != nil && j.cp.State != sweepFailed {
			j.cp.State = sweepFailed
			j.cp.Error = fmt.Sprintf("unresolvable checkpoint: %v", err)
		}
		// resolve may have bailed before sizing Points; pad it so
		// status()/results() can still render the failed job.
		for len(j.cp.Points) < len(j.cp.Spec.Scenarios) {
			j.cp.Points = append(j.cp.Points, nil)
		}
		switch j.cp.State {
		case sweepDone, sweepFailed:
			// Terminal: list only.
			if j.cp.State == sweepFailed {
				r.log().LogAttrs(context.Background(), slog.LevelWarn, "sweep checkpoint unusable",
					slog.String("sweep_id", j.cp.ID), slog.String("error", j.cp.Error))
			}
		default:
			if r.srv.cfg.DisableResume {
				j.cp.State = sweepPaused
			} else {
				select {
				case r.queue <- j:
					j.cp.State = sweepQueued
				default: // more unfinished checkpoints than the queue holds
					j.cp.State = sweepPaused
				}
			}
			r.log().LogAttrs(context.Background(), slog.LevelInfo, "sweep checkpoint loaded",
				slog.String("sweep_id", j.cp.ID), slog.String("state", j.cp.State),
				slog.Int("scenarios", len(j.cp.Spec.Scenarios)))
		}
		r.jobs[j.cp.ID] = j
		r.order = append(r.order, j.cp.ID)
		// A load-time failure mark stays in memory only: the checkpoint on
		// disk may be perfectly resumable by the binary that wrote it
		// (e.g. after a transient downgrade), so overwriting it with
		// "failed" would destroy recoverable progress. Terminal "done"
		// states are likewise left untouched.
		if j.cp.State == sweepQueued || j.cp.State == sweepPaused {
			r.checkpoint(j)
		}
	}
	return nil
}

// submit registers and enqueues a new sweep job, persisting its initial
// checkpoint. It fails when the job queue is full (the caller turns that
// into 429).
func (r *jobRegistry) submit(spec sweepSpec) (*sweepJob, error) {
	j := &sweepJob{cp: sweepCheckpoint{
		ID:      newSweepID(),
		Created: time.Now().UnixNano(),
		State:   sweepQueued,
		Spec:    spec,
	}}
	if err := j.resolve(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if len(r.queue) >= maxSweepJobs {
		r.mu.Unlock()
		return nil, errSweepQueueFull
	}
	r.queue <- j
	r.jobs[j.cp.ID] = j
	r.order = append(r.order, j.cp.ID)
	r.mu.Unlock()
	r.submitted.Add(1)
	r.checkpoint(j)
	r.log().LogAttrs(context.Background(), slog.LevelInfo, "sweep submitted",
		slog.String("sweep_id", j.cp.ID), slog.Int("scenarios", len(spec.Scenarios)),
		slog.Int("n", spec.N), slog.Int64("seed", spec.Seed))
	return j, nil
}

// log returns the registry's structured logger (the server's base logger).
func (r *jobRegistry) log() *slog.Logger { return r.srv.obs.log }

var errSweepQueueFull = fmt.Errorf("sweep queue full (%d jobs pending), retry later", maxSweepJobs)

// get returns the job by ID.
func (r *jobRegistry) get(id string) (*sweepJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// list snapshots every job's status in creation order.
func (r *jobRegistry) list() []SweepStatus {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	r.mu.Unlock()
	out := make([]SweepStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := r.get(id); ok {
			out = append(out, j.status())
		}
	}
	return out
}

// run is the FIFO job runner; one goroutine per registry.
func (r *jobRegistry) run() {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			return
		case j := <-r.queue:
			r.active.Add(1)
			r.runJob(j)
			r.active.Add(-1)
		}
	}
}

// runJob drains one job: every incomplete point of every scenario, in
// order, checkpointing after each completed point. On daemon shutdown
// (Server.Close) the job keeps state "running" in its checkpoint and is
// re-queued by the next resume-enabled daemon; on client cancellation
// (DELETE) it stops at the next sample boundary and is never checkpointed
// again.
func (r *jobRegistry) runJob(j *sweepJob) {
	ctx, cancel := context.WithCancel(r.ctx)
	defer cancel()
	j.mu.Lock()
	if j.cp.State == sweepCanceled { // deleted while still queued
		j.mu.Unlock()
		return
	}
	j.cp.State = sweepRunning
	j.cancel = cancel
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		j.cancel = nil
		j.mu.Unlock()
	}()
	r.checkpoint(j)
	start := time.Now()
	r.log().LogAttrs(ctx, slog.LevelInfo, "sweep running",
		slog.String("sweep_id", j.cp.ID), slog.Int("scenarios", len(j.scens)))

	for si := range j.scens {
		j.mu.Lock()
		var todo []int
		for pi, gp := range j.cp.Points[si] {
			if gp == nil {
				todo = append(todo, pi)
			}
		}
		npoints := len(j.cp.Points[si])
		j.mu.Unlock()
		if len(todo) == 0 {
			continue
		}
		if ctx.Err() != nil {
			return
		}

		states := newSweepPointStates(npoints, len(j.ms))
		utils := taskgen.UtilizationPoints(j.scens[si].M)
		experiments.ScenarioSweep{
			Scenario: j.scens[si],
			Seed:     j.cp.Spec.Seed,
			Samples:  j.cp.Spec.N,
			Points:   todo,
			Workers:  r.srv.cfg.Workers,
		}.Run(ctx,
			func(pi, _ int, ts *model.Taskset, genErr error) {
				states[pi].analyze(ctx, r.srv.engine, ts, genErr, j.ms, j.opts)
			},
			func(pi int, complete bool) {
				// An incomplete point (cancellation mid-point) is never
				// checkpointed: the next run re-draws all of its samples,
				// which SampleSeed makes bit-identical. A point whose last
				// sample "ran" but whose analysis was abandoned mid-flight
				// is just as incomplete — freezing its undercounted curve
				// into the checkpoint would break that guarantee.
				if !complete || states[pi].aborted.Load() > 0 {
					return
				}
				gp := states[pi].gridPoint(pi, utils[pi], j.scens[si].M, j.ms)
				j.mu.Lock()
				j.cp.Points[si][pi] = gp
				j.mu.Unlock()
				r.checkpointThrottled(j)
			})
		// A forced write at every scenario boundary — and, on
		// cancellation, before the runner exits — so throttling never
		// leaves completed progress only in memory for long.
		r.checkpoint(j)
		if ctx.Err() != nil {
			return
		}
	}

	j.mu.Lock()
	finished := j.cp.State == sweepRunning
	for si := range j.cp.Points {
		for _, gp := range j.cp.Points[si] {
			if gp == nil {
				finished = false
			}
		}
	}
	if finished {
		j.cp.State = sweepDone
	}
	j.mu.Unlock()
	if finished {
		r.completed.Add(1)
		r.checkpoint(j)
		r.log().LogAttrs(context.Background(), slog.LevelInfo, "sweep done",
			slog.String("sweep_id", j.cp.ID), slog.Duration("elapsed", time.Since(start)))
	} else {
		r.log().LogAttrs(context.Background(), slog.LevelInfo, "sweep interrupted",
			slog.String("sweep_id", j.cp.ID), slog.Duration("elapsed", time.Since(start)))
	}
}

// checkpoint persists the job's current state (no-op without a store).
// Failures are counted as store errors and otherwise ignored: an
// unwritable disk degrades durability, not service. Forced checkpoints
// write even under an open circuit breaker — scenario/state boundaries are
// exactly where a retry against a recovered disk is worth one syscall —
// and feed the outcome back into the breaker (a success closes it; a
// failure while open changes nothing, so forced flushes never thrash it).
func (r *jobRegistry) checkpoint(j *sweepJob) {
	if r.st == nil {
		return
	}
	// Hold ckmu across marshal AND write: a checkpoint that snapshots
	// later also commits later, so the on-disk file never goes backwards.
	j.ckmu.Lock()
	defer j.ckmu.Unlock()
	r.checkpointLocked(j)
}

// checkpointThrottled is checkpoint rate-limited to one write per
// sweepCheckpointEvery: on a store-warmed re-run thousands of points can
// complete per second, and re-marshaling the whole job for each would make
// checkpoint I/O the bottleneck. Skipped progress is bounded by the
// forced writes at scenario/state boundaries and by resume determinism.
// Under an open circuit breaker, per-point checkpoints degrade to
// in-memory progress (no doomed syscall per point) — except the breaker's
// periodic recovery probe, which one checkpoint carries like any other
// store access.
func (r *jobRegistry) checkpointThrottled(j *sweepJob) {
	if r.st == nil {
		return
	}
	j.ckmu.Lock()
	defer j.ckmu.Unlock()
	if time.Since(j.lastCk) < sweepCheckpointEvery {
		return
	}
	if !r.srv.engine.br.Allow() {
		return
	}
	r.checkpointLocked(j)
}

// checkpointLocked does the marshal+write; callers hold j.ckmu.
func (r *jobRegistry) checkpointLocked(j *sweepJob) {
	j.mu.Lock()
	if j.cp.State == sweepCanceled {
		// delete() removed the file under ckmu; never resurrect it.
		j.mu.Unlock()
		return
	}
	data, err := json.Marshal(&j.cp)
	id := j.cp.ID
	j.mu.Unlock()
	if err == nil {
		err = r.st.WriteFile(filepath.Join(r.jobsDir, id+".json"), data, r.sync)
		r.srv.engine.br.Record(err)
	}
	if err != nil {
		r.srv.engine.storeErrors.Add(1)
		r.log().LogAttrs(context.Background(), slog.LevelWarn, "sweep checkpoint write failed",
			slog.String("sweep_id", id), slog.String("error", err.Error()))
		return
	}
	j.lastCk = time.Now()
}

// delete cancels and removes a job: a running job stops at its next
// sample boundary, a queued one is skipped when the runner reaches it,
// and the checkpoint file (if any) is removed so no later daemon resumes
// it. Reports whether the job existed.
func (r *jobRegistry) delete(id string) bool {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if ok {
		delete(r.jobs, id)
		for i, oid := range r.order {
			if oid == id {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	j.cp.State = sweepCanceled
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if r.st != nil {
		// Under ckmu so an in-flight checkpoint commits first and no
		// later one resurrects the file (checkpointLocked re-checks the
		// canceled state).
		j.ckmu.Lock()
		os.Remove(filepath.Join(r.jobsDir, id+".json"))
		j.ckmu.Unlock()
	}
	r.log().LogAttrs(context.Background(), slog.LevelInfo, "sweep canceled",
		slog.String("sweep_id", id))
	return true
}

// close stops the runner (the in-flight sweep stops at its next sample
// boundary and its completed points are already checkpointed) and waits
// for it to exit.
func (r *jobRegistry) close() {
	r.cancel()
	r.wg.Wait()
}

// fill merges the sweep counters into a metrics snapshot.
func (r *jobRegistry) fill(m *Metrics) {
	m.SweepsSubmitted = r.submitted.Load()
	m.SweepsCompleted = r.completed.Load()
	m.SweepsActive = r.active.Load() + int64(len(r.queue))
}

func newSweepID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// isSweepID reports whether s has the shape newSweepID produces (16
// lowercase hex characters) — how load distinguishes a job's damaged
// checkpoint from a foreign file.
func isSweepID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleSweepSubmit accepts a sweep campaign and returns its job ID
// immediately; the work happens on the background runner.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	s.engine.requests.Add(1)
	var req SweepRequest
	if decodeBody(w, r, &req) != nil {
		return
	}
	spec := sweepSpec{
		Scenarios: req.Scenarios,
		N:         25,
		Seed:      2020,
		Methods:   req.Methods,
		PathCap:   req.PathCap,
		Placement: req.Placement,
	}
	// Absent fields default; explicit values — including an explicit 0 —
	// are taken literally, exactly like the grid endpoint's parameters
	// (an explicit n of 0 fails the same 1..maxGridSamples validation).
	if req.N != nil {
		spec.N = *req.N
	}
	if req.Seed != nil {
		spec.Seed = *req.Seed
	}
	// resolve (via submit) expands an empty method list to all five and
	// canonicalizes the names into the checkpointed spec.
	j, err := s.jobs.submit(spec)
	if err == errSweepQueueFull {
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := j.status()
	points := 0
	for _, ss := range st.Scenarios {
		points += ss.Points
	}
	writeJSON(w, http.StatusAccepted, SweepAccepted{ID: st.ID, Points: points})
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SweepList{Sweeps: s.jobs.list()})
}

func (s *Server) sweepByID(w http.ResponseWriter, r *http.Request) (*sweepJob, bool) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.sweepByID(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleSweepDelete cancels (if running) and forgets a sweep job, removing
// its checkpoint so no future daemon resumes it. Completed analyses stay
// in the result store — they are content-addressed and job-independent.
func (s *Server) handleSweepDelete(w http.ResponseWriter, r *http.Request) {
	if !s.jobs.delete(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.sweepByID(w, r); ok {
		writeJSON(w, http.StatusOK, j.results())
	}
}
