package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// sameShardKeys returns n distinct keys hashing to one shard, so tests can
// exercise recency and skew deterministically.
func sameShardKeys(c *lru[*MethodResult], n int) []string {
	var keys []string
	shard := c.shard("anchor")
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) == shard {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestResultCacheLRU(t *testing.T) {
	// Capacity two, three keys in one shard: the insert that overflows the
	// cache evicts the least recently used entry, a get refreshes recency,
	// and a re-add replaces the value without growth.
	c := newLRU[*MethodResult](2)
	keys := sameShardKeys(c, 3)
	a, b, d := keys[0], keys[1], keys[2]

	c.add(a, &MethodResult{Rounds: 1})
	if v, ok := c.get(a); !ok || v.Rounds != 1 {
		t.Fatal("missing entry just added")
	}
	c.add(b, &MethodResult{Rounds: 2})
	if _, ok := c.get(a); !ok { // refresh a: b becomes the LRU
		t.Fatal("entry evicted below capacity")
	}
	c.add(b, &MethodResult{Rounds: 3}) // refresh, no growth
	if v, _ := c.get(b); v == nil || v.Rounds != 3 {
		t.Fatal("re-add did not replace the value")
	}
	c.add(d, &MethodResult{Rounds: 4}) // over capacity: evicts the LRU (a)
	if _, ok := c.get(a); ok {
		t.Fatal("LRU did not evict the least recently used entry")
	}
	if _, ok := c.get(b); !ok {
		t.Fatal("recently used entry evicted instead")
	}
	if _, ok := c.get(d); !ok {
		t.Fatal("newest entry evicted instead")
	}
	if got := c.entries(); got != 2 {
		t.Fatalf("entries() = %d, want 2", got)
	}
}

// TestResultCacheCapacityBound is the regression test for the per-shard
// rounding bug: a cache configured for size entries must never hold more,
// no matter how many keys are inserted or how they skew across shards.
func TestResultCacheCapacityBound(t *testing.T) {
	const size = 100
	c := newLRU[*MethodResult](size)
	for i := 0; i < 5*size; i++ {
		c.add(fmt.Sprintf("key-%d", i), &MethodResult{Rounds: i})
		if got := c.entries(); got > size {
			t.Fatalf("after %d inserts: entries() = %d, above configured size %d", i+1, got, size)
		}
	}
	if got := c.entries(); got != size {
		t.Fatalf("full cache holds %d entries, want exactly %d", got, size)
	}
	// The newest entry survives its own insert's eviction pass.
	if _, ok := c.get(fmt.Sprintf("key-%d", 5*size-1)); !ok {
		t.Fatal("most recent insert was evicted")
	}
}

// TestResultCacheCapacityBoundSkewed drives every insert into one shard:
// the global bound must hold even when the key distribution is degenerate,
// and the skewed shard keeps the hottest entries instead of evicting at a
// fraction of the configured size.
func TestResultCacheCapacityBoundSkewed(t *testing.T) {
	const size = 24
	c := newLRU[*MethodResult](size)
	keys := sameShardKeys(c, 3*size)
	for _, k := range keys {
		c.add(k, &MethodResult{})
		if got := c.entries(); got > size {
			t.Fatalf("skewed inserts: entries() = %d, above configured size %d", got, size)
		}
	}
	if got := c.entries(); got != size {
		t.Fatalf("skewed shard holds %d entries, want the full capacity %d", got, size)
	}
	for _, k := range keys[len(keys)-size:] {
		if _, ok := c.get(k); !ok {
			t.Fatalf("recent key %q evicted while older ones were retained", k)
		}
	}
}

// TestResultCacheTinyNeverEvictsFreshInsert: with size below the shard
// count most shards hold at most one entry, and an insert must evict a
// stale entry from another shard — never the entry it just added.
func TestResultCacheTinyNeverEvictsFreshInsert(t *testing.T) {
	c := newLRU[*MethodResult](1)
	// Two keys in different shards.
	a := "key-a"
	b := ""
	for i := 0; b == ""; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) != c.shard(a) {
			b = k
		}
	}
	c.add(a, &MethodResult{Rounds: 1})
	c.add(b, &MethodResult{Rounds: 2})
	if _, ok := c.get(b); !ok {
		t.Fatal("fresh insert evicted itself while a stale entry survived")
	}
	if _, ok := c.get(a); ok {
		t.Fatal("stale entry retained past capacity")
	}
	if got := c.entries(); got != 1 {
		t.Fatalf("entries() = %d, want 1", got)
	}
}

func TestResultCacheCapacityFloor(t *testing.T) {
	c := newLRU[*MethodResult](1) // must still hold at least one entry
	c.add("x", &MethodResult{})
	if _, ok := c.get("x"); !ok {
		t.Fatal("tiny cache cannot hold a single entry")
	}
	c.add("y", &MethodResult{})
	if got := c.entries(); got != 1 {
		t.Fatalf("size-1 cache holds %d entries", got)
	}
}

func TestFlightGroupSequential(t *testing.T) {
	var g flightGroup[*MethodResult]
	ctx := context.Background()
	calls := 0
	v1, err, shared := g.do(ctx, "k", func(context.Context) (*MethodResult, error) {
		calls++
		return &MethodResult{Rounds: 7}, nil
	})
	if err != nil || shared || v1.Rounds != 7 || calls != 1 {
		t.Fatalf("first do: err=%v shared=%v calls=%d", err, shared, calls)
	}
	// After completion the key is released: a later call runs again.
	_, err, shared = g.do(ctx, "k", func(context.Context) (*MethodResult, error) {
		calls++
		return &MethodResult{}, nil
	})
	if err != nil || shared || calls != 2 {
		t.Fatalf("second do: err=%v shared=%v calls=%d, want a fresh execution", err, shared, calls)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup[*MethodResult]
	const n = 8
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	leaderFn := func(context.Context) (*MethodResult, error) {
		close(started)
		calls++
		<-release
		return &MethodResult{Rounds: 42}, nil
	}

	var wg sync.WaitGroup
	sharedCount := 0
	var mu sync.Mutex
	run := func(fn func(context.Context) (*MethodResult, error)) {
		defer wg.Done()
		v, err, shared := g.do(context.Background(), "k", fn)
		if err != nil || v.Rounds != 42 {
			t.Errorf("wrong value %+v (err %v)", v, err)
		}
		mu.Lock()
		if shared {
			sharedCount++
		}
		mu.Unlock()
	}
	wg.Add(1)
	go run(leaderFn)
	<-started // leader registered and executing
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go run(func(context.Context) (*MethodResult, error) {
			t.Error("follower fn executed: coalescing failed")
			return &MethodResult{Rounds: 42}, nil
		})
	}
	// Release only once every follower has joined the in-flight call, so
	// none can arrive late and start a second execution.
	deadline := time.Now().Add(10 * time.Second)
	for g.waiting("k") < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced", g.waiting("k"), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if sharedCount != n-1 {
		t.Fatalf("%d callers saw shared=true, want %d", sharedCount, n-1)
	}
}
