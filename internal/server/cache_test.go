package server

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestResultCacheLRU(t *testing.T) {
	// One entry per shard: inserting two keys in the same shard evicts the
	// older one, and a get refreshes recency.
	c := newLRU[*MethodResult](numShards)
	var keys []string
	shard := c.shard("anchor")
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) == shard {
			keys = append(keys, k)
		}
	}
	a, b, d := keys[0], keys[1], keys[2]

	c.add(a, &MethodResult{Rounds: 1})
	if v, ok := c.get(a); !ok || v.Rounds != 1 {
		t.Fatal("missing entry just added")
	}
	c.add(b, &MethodResult{Rounds: 2}) // evicts a (shard capacity 1)
	if _, ok := c.get(a); ok {
		t.Fatal("LRU did not evict the oldest entry")
	}
	if _, ok := c.get(b); !ok {
		t.Fatal("newest entry evicted instead")
	}
	c.add(b, &MethodResult{Rounds: 3}) // refresh, no growth
	if v, _ := c.get(b); v == nil || v.Rounds != 3 {
		t.Fatal("re-add did not replace the value")
	}
	c.add(d, &MethodResult{Rounds: 4})
	if _, ok := c.get(b); ok {
		t.Fatal("eviction after refresh removed the wrong entry")
	}
	if got := c.entries(); got != 1 {
		t.Fatalf("entries() = %d, want 1", got)
	}
}

func TestResultCacheCapacityFloor(t *testing.T) {
	c := newLRU[*MethodResult](1) // must still hold at least one entry per shard
	c.add("x", &MethodResult{})
	if _, ok := c.get("x"); !ok {
		t.Fatal("tiny cache cannot hold a single entry")
	}
}

func TestFlightGroupSequential(t *testing.T) {
	var g flightGroup
	calls := 0
	v1, shared := g.do("k", func() *MethodResult { calls++; return &MethodResult{Rounds: 7} })
	if shared || v1.Rounds != 7 || calls != 1 {
		t.Fatalf("first do: shared=%v calls=%d", shared, calls)
	}
	// After completion the key is released: a later call runs again.
	_, shared = g.do("k", func() *MethodResult { calls++; return &MethodResult{} })
	if shared || calls != 2 {
		t.Fatalf("second do: shared=%v calls=%d, want a fresh execution", shared, calls)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	const n = 8
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	leaderFn := func() *MethodResult {
		close(started)
		calls++
		<-release
		return &MethodResult{Rounds: 42}
	}

	var wg sync.WaitGroup
	sharedCount := 0
	var mu sync.Mutex
	run := func(fn func() *MethodResult) {
		defer wg.Done()
		v, shared := g.do("k", fn)
		if v.Rounds != 42 {
			t.Errorf("wrong value %+v", v)
		}
		mu.Lock()
		if shared {
			sharedCount++
		}
		mu.Unlock()
	}
	wg.Add(1)
	go run(leaderFn)
	<-started // leader registered and executing
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go run(func() *MethodResult {
			t.Error("follower fn executed: coalescing failed")
			return &MethodResult{Rounds: 42}
		})
	}
	// Release only once every follower has joined the in-flight call, so
	// none can arrive late and start a second execution.
	deadline := time.Now().Add(10 * time.Second)
	for g.waiting("k") < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced", g.waiting("k"), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if sharedCount != n-1 {
		t.Fatalf("%d callers saw shared=true, want %d", sharedCount, n-1)
	}
}
