package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpcpp/internal/store"
)

// The chaos suite subjects the daemon to randomized kill/restart cycles
// under scheduled I/O faults — read errors, write errors, torn writes —
// and asserts the three crash-safety invariants the robustness work makes:
//
//  1. the daemon never panics, no matter where faults land;
//  2. a sweep that finishes across any number of faulty restarts produces
//     curves byte-identical to an uninterrupted in-memory run;
//  3. damaged state is isolated — a corrupted checkpoint fails that one
//     job, never startup.
//
// Defaults are sized for `go test`; CI drives the cycle count and the seed
// matrix up with -chaos.cycles / -chaos.seed.
var (
	chaosCycles = flag.Int("chaos.cycles", 6, "randomized kill/restart cycles per chaos test")
	chaosSeed   = flag.Int64("chaos.seed", 1, "base seed for chaos fault schedules")
)

const chaosSpec = `{"scenarios":["2a"],"n":1,"seed":2020,"methods":["DPCP-p-EN"]}`

// chaosFaults is one cycle's randomized fault schedule: each store
// operation fails with the cycle's probability while armed. Faults never
// corrupt — BeforeWrite fails before any bytes land and a torn write
// preserves the old file — so they model the crash/EIO space, matching the
// real protocol's guarantees.
type chaosFaults struct {
	mu    sync.Mutex
	rng   *rand.Rand
	armed atomic.Bool
	pFail float64
	pTorn float64
}

func (f *chaosFaults) roll(p float64) bool {
	if !f.armed.Load() {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

func (f *chaosFaults) hooks() *store.Hooks {
	return &store.Hooks{
		BeforeRead: func(path string) error {
			if f.roll(f.pFail) {
				return fmt.Errorf("chaos: read fault on %s", filepath.Base(path))
			}
			return nil
		},
		BeforeWrite: func(path string) error {
			if f.roll(f.pFail) {
				return fmt.Errorf("chaos: write fault on %s", filepath.Base(path))
			}
			return nil
		},
		BeforeRename: func(path string) error {
			if f.roll(f.pTorn) {
				return store.ErrTornWrite
			}
			return nil
		},
	}
}

// chaosReference runs the sweep once, uninterrupted and in memory, and
// returns the marshaled curves every chaotic run must reproduce.
func chaosReference(t *testing.T) []byte {
	t.Helper()
	s := newTestServer(t, Config{Workers: 4})
	id := submitSweep(t, s, chaosSpec)
	waitSweepState(t, s, id, sweepDone)
	var res SweepResults
	if code := sweepGet(t, s, "/v1/sweeps/"+id+"/results", &res); code != http.StatusOK {
		t.Fatalf("reference results: %d", code)
	}
	ref, err := json.Marshal(res.Scenarios)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestChaosKillRestartCycles is invariant 1 + 2: each cycle runs the sweep
// on its own store directory through repeated kill/restart rounds under a
// random fault schedule, and must end with curves byte-identical to the
// reference. Faults are disarmed near the attempt cap so every cycle
// terminates (the last restarts model the disk recovering).
func TestChaosKillRestartCycles(t *testing.T) {
	ref := chaosReference(t)
	for cycle := 0; cycle < *chaosCycles; cycle++ {
		t.Run(fmt.Sprintf("cycle=%d", cycle), func(t *testing.T) {
			runChaosCycle(t, *chaosSeed+int64(cycle), ref)
		})
	}
}

func runChaosCycle(t *testing.T, seed int64, ref []byte) {
	// Two independent streams: rng paces the test loop, the faults' own
	// rng drives hook rolls under their mutex (hooks fire from server
	// goroutines, so sharing one unlocked source would itself be a race).
	rng := rand.New(rand.NewSource(seed))
	faults := &chaosFaults{
		rng:   rand.New(rand.NewSource(seed ^ 0x5eed)),
		pFail: 0.05 + 0.25*rng.Float64(),
		pTorn: 0.05 + 0.20*rng.Float64(),
	}
	faults.armed.Store(true)
	dir := t.TempDir()
	const maxAttempts = 25
	var id string

	for attempt := 0; ; attempt++ {
		if attempt >= maxAttempts {
			t.Fatalf("sweep not done after %d faulty restarts (seed %d)", maxAttempts, seed)
		}
		if attempt >= maxAttempts-5 {
			faults.armed.Store(false) // disk recovers; the run must converge
		}
		srv, err := New(Config{Workers: 4, StoreDir: dir, storeHooks: faults.hooks()})
		if err != nil {
			// Open's probe write bypasses hooks, so startup must always
			// succeed — whatever debris earlier rounds left behind.
			t.Fatalf("attempt %d: daemon failed to start on its own store: %v", attempt, err)
		}

		if id == "" {
			id = submitSweep(t, srv, chaosSpec)
		}
		st, lost := chaosAwait(t, srv, id, time.Duration(5+rng.Intn(40))*time.Millisecond)
		switch {
		case lost:
			// The job's very first checkpoint never became durable before a
			// kill — the power-loss-after-202 case. The client's move is to
			// resubmit; determinism makes the new job identical.
			id = ""
		case st.State == sweepDone:
			var res SweepResults
			if code := sweepGet(t, srv, "/v1/sweeps/"+id+"/results", &res); code != http.StatusOK {
				t.Fatalf("results after completion: %d", code)
			}
			got, err := json.Marshal(res.Scenarios)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				t.Errorf("seed %d: curves after %d faulty restarts differ from uninterrupted run:\ngot:  %s\nwant: %s",
					seed, attempt, got, ref)
			}
			srv.Close()
			return
		case st.State == sweepFailed:
			// Only reachable when a load-time read fault made the
			// checkpoint unreadable this round; the mark is in-memory only,
			// so the next restart retries the intact file.
			if !strings.Contains(st.Error, "unreadable checkpoint") {
				t.Fatalf("job failed for a non-injected reason: %s", st.Error)
			}
		}
		// Kill: stop the runner (graceful at a sample boundary — the
		// torn-write faults are what model the un-graceful part) and go
		// around for the restart.
		srv.Close()
	}
}

// chaosAwait lets the job run for roughly d, returning its last observed
// status; lost reports that the daemon does not know the job (its
// checkpoint never survived a previous kill).
func chaosAwait(t *testing.T, s *Server, id string, d time.Duration) (st SweepStatus, lost bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		code := sweepGet(t, s, "/v1/sweeps/"+id, &st)
		if code == http.StatusNotFound {
			return st, true
		}
		if code != http.StatusOK {
			t.Fatalf("status poll: %d", code)
		}
		if st.State == sweepDone || st.State == sweepFailed || time.Now().After(deadline) {
			return st, false
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosCorruptedCheckpointIsolated is invariant 3: a truncated
// jobs/<id>.json marks exactly that job failed — the daemon starts, every
// other checkpoint loads intact, and the damaged job still renders in
// listings, status and results instead of vanishing.
func TestChaosCorruptedCheckpointIsolated(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Config{Workers: 4, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	goodID := submitSweep(t, a, chaosSpec)
	waitSweepState(t, a, goodID, sweepDone)
	a.Close()

	// Truncate a fake sibling checkpoint mid-document (what a torn write
	// can never produce, but a dying disk or an operator's cp can), plus a
	// foreign file that is nobody's job.
	badID := "0123456789abcdef"
	if err := os.WriteFile(filepath.Join(dir, "jobs", badID+".json"),
		[]byte(`{"id":"0123456789abcdef","state":"runn`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "README.json"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, Config{Workers: 4, StoreDir: dir})
	var list SweepList
	if code := sweepGet(t, b, "/v1/sweeps", &list); code != http.StatusOK || len(list.Sweeps) != 2 {
		t.Fatalf("listing after corruption: %d, %d jobs (want the good job + the failed one)", code, len(list.Sweeps))
	}
	var bad SweepStatus
	if code := sweepGet(t, b, "/v1/sweeps/"+badID, &bad); code != http.StatusOK {
		t.Fatalf("corrupted job not served: %d", code)
	}
	if bad.State != sweepFailed || !strings.Contains(bad.Error, "checkpoint") {
		t.Fatalf("corrupted job status %+v, want failed with a checkpoint error", bad)
	}
	var badRes SweepResults
	if code := sweepGet(t, b, "/v1/sweeps/"+badID+"/results", &badRes); code != http.StatusOK {
		t.Fatalf("corrupted job results endpoint: %d (must render, empty, not 500)", code)
	}
	good := waitSweepState(t, b, goodID, sweepDone)
	if good.Scenarios[0].Done != good.Scenarios[0].Points {
		t.Fatalf("intact sibling job damaged by the corrupt one: %+v", good)
	}
	// The corrupt file stays on disk untouched (the binary that understands
	// it may come back); the failure mark is in-memory only.
	if _, err := os.Stat(filepath.Join(dir, "jobs", badID+".json")); err != nil {
		t.Fatalf("corrupt checkpoint file was removed: %v", err)
	}
}
