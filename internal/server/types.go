package server

import (
	"fmt"
	"strings"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// AnalyzeRequest is the body of POST /v1/analyze: one taskset and the
// methods to run on it. The taskset uses the same JSON schema as
// cmd/taskgen output and audit fixtures (model.Taskset).
type AnalyzeRequest struct {
	Taskset *model.Taskset `json:"taskset"`
	// Methods selects the analyses; empty means all five.
	Methods []string `json:"methods,omitempty"`
	// PathCap bounds EP path enumeration (0 = the analysis default).
	PathCap int `json:"path_cap,omitempty"`
	// Placement selects the DPCP-p resource-placement heuristic:
	// "wfd" (default, Algorithm 2) or "ffd".
	Placement string `json:"placement,omitempty"`
	// Explain adds the Theorem 1 per-task breakdown to DPCP-p-EP results.
	Explain bool `json:"explain,omitempty"`
	// TimeoutMS bounds this request's analysis latency in milliseconds; the
	// tighter of it and the server's -request-timeout applies. Past the
	// bound the request gets a structured 503 with timeout=true and its
	// queued work is abandoned (0 = no per-request bound).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchRequest is the body of POST /v1/analyze/batch: many tasksets
// analyzed under one shared option set, fanned out over the worker pool.
type BatchRequest struct {
	Tasksets  []*model.Taskset `json:"tasksets"`
	Methods   []string         `json:"methods,omitempty"`
	PathCap   int              `json:"path_cap,omitempty"`
	Placement string           `json:"placement,omitempty"`
	// TimeoutMS bounds the whole batch's analysis latency in milliseconds
	// (see AnalyzeRequest.TimeoutMS).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MethodResult is one method's verdict for one taskset: the wire form of
// partition.Result plus the optional explain breakdown. It is what the
// result cache stores, so cache hits serve responses without touching the
// analysis engine.
type MethodResult struct {
	Schedulable bool `json:"schedulable"`
	// WCRT maps task IDs to response-time bounds (omitted when the
	// analysis rejected the set before producing bounds).
	WCRT map[rt.TaskID]rt.Time `json:"wcrt,omitempty"`
	// Rounds is the number of outer partitioning iterations.
	Rounds int `json:"rounds"`
	// Reason explains a rejection.
	Reason string `json:"reason,omitempty"`
	// Explain carries the Theorem 1 breakdown (DPCP-p-EP with
	// explain=true only).
	Explain []analysis.Breakdown `json:"explain,omitempty"`
}

// AnalyzeResponse is the body of a successful POST /v1/analyze: the
// taskset's content address and one result per requested method.
type AnalyzeResponse struct {
	// Hash is the canonical content address of the analyzed taskset
	// (model.Taskset.Hash); identical tasksets always return identical
	// hashes, which is exactly the cache/coalescing key prefix.
	Hash    string                   `json:"hash"`
	Results map[string]*MethodResult `json:"results"`
}

// BatchResponse is the body of a successful POST /v1/analyze/batch, with
// Results[i] corresponding to Tasksets[i] of the request.
type BatchResponse struct {
	Results []*AnalyzeResponse `json:"results"`
}

// GridPoint is one NDJSON line of GET /v1/grid: the acceptance counts of
// one utilization point, emitted the moment the pool finishes the point's
// last sample. Points stream in completion order; Point indexes into the
// scenario's ascending utilization sweep.
type GridPoint struct {
	Point       int            `json:"point"`
	Utilization float64        `json:"utilization"`
	Normalized  float64        `json:"normalized"`
	Total       int            `json:"total"`
	GenFailures int            `json:"gen_failures,omitempty"`
	Accepted    map[string]int `json:"accepted"`
}

// GridDone is the trailing NDJSON line of a completed grid stream, letting
// clients distinguish completion from truncation.
type GridDone struct {
	Done   bool `json:"done"`
	Points int  `json:"points"`
}

// SweepRequest is the body of POST /v1/sweeps: a whole acceptance-curve
// campaign — one or more scenarios swept asynchronously as a background
// job. Scenario names use the grid endpoint's syntax ("2a".."2d" or "g<i>"
// for the 216-scenario grid).
type SweepRequest struct {
	Scenarios []string `json:"scenarios"`
	// N is the per-point sample count (absent = 25). Pointers distinguish
	// absent from explicit values so that, e.g., an explicit seed of 0
	// means seed 0 exactly as it does on GET /v1/grid.
	N *int `json:"n,omitempty"`
	// Seed is the base seed (absent = 2020), derived per sample exactly
	// like GET /v1/grid and the CLI sweeps.
	Seed *int64 `json:"seed,omitempty"`
	// Methods selects the analyses; empty means all five.
	Methods []string `json:"methods,omitempty"`
	// PathCap bounds EP path enumeration (0 = the analysis default).
	PathCap int `json:"path_cap,omitempty"`
	// Placement selects the DPCP-p resource-placement heuristic
	// ("wfd"/"ffd").
	Placement string `json:"placement,omitempty"`
}

// SweepAccepted is the 202 body of POST /v1/sweeps.
type SweepAccepted struct {
	ID string `json:"id"`
	// Points is the total utilization-point count across every scenario
	// of the sweep (the unit of progress and checkpointing).
	Points int `json:"points"`
}

// SweepScenarioStatus is one scenario's progress within a sweep job.
type SweepScenarioStatus struct {
	Scenario string `json:"scenario"`
	Points   int    `json:"points"`
	Done     int    `json:"done"`
}

// SweepStatus is the body of GET /v1/sweeps/{id}: job state plus per-
// scenario progress in points completed.
type SweepStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // queued | running | paused | done | failed
	Error string `json:"error,omitempty"`
	N     int    `json:"n"`
	Seed  int64  `json:"seed"`
	// Methods is the canonicalized method subset the sweep runs.
	Methods   []string              `json:"methods"`
	Scenarios []SweepScenarioStatus `json:"scenarios"`
}

// SweepList is the body of GET /v1/sweeps, jobs in creation order.
type SweepList struct {
	Sweeps []SweepStatus `json:"sweeps"`
}

// SweepScenarioResult is one scenario's acceptance curve within a sweep's
// results: Points is indexed by utilization point, with nil entries for
// points that have not completed yet.
type SweepScenarioResult struct {
	Scenario string       `json:"scenario"`
	Points   []*GridPoint `json:"points"`
}

// SweepResults is the body of GET /v1/sweeps/{id}/results. For a job in
// state "done" every point is present, and — by SampleSeed determinism —
// identical to what GET /v1/grid or the CLI would have produced for the
// same (scenario, n, seed), regardless of restarts in between.
type SweepResults struct {
	ID        string                `json:"id"`
	State     string                `json:"state"`
	Scenarios []SweepScenarioResult `json:"scenarios"`
}

// DeltaRequest is the body of POST /v1/analyze/delta: a what-if query
// against an already-analyzed base taskset, expressed as a patch. Base
// names the base by its canonical hash (the hash POST /v1/analyze
// returned); when the server still retains incremental state for it, the
// query runs in cache-hit territory. BaseTaskset re-supplies the full base
// so a server that has evicted (or never built) the state can rebuild it
// — a one-time full-analysis cost, after which subsequent patches against
// the same base, and against each response's patched hash, are
// incremental. At least one of the two must be present; when both are,
// they must agree.
type DeltaRequest struct {
	Base        string         `json:"base,omitempty"`
	BaseTaskset *model.Taskset `json:"base_taskset,omitempty"`
	// Patch is the edit to apply (model.Patch): a list of operations such
	// as set_wcet, set_cslen, set_request, add_edge, set_period,
	// add_task. Invalid patches get a structured 400 carrying the
	// offending operation (errorResponse.Patch).
	Patch model.Patch `json:"patch"`
	// Methods selects the analyses; empty means both incremental methods
	// (DPCP-p-EP and DPCP-p-EN). Other methods are rejected: only the
	// DPCP-p variants retain incremental state.
	Methods []string `json:"methods,omitempty"`
	// PathCap and Placement must match the base analysis's options —
	// retained state is keyed by (hash, method, options) exactly like the
	// result cache.
	PathCap   int    `json:"path_cap,omitempty"`
	Placement string `json:"placement,omitempty"`
	// TimeoutMS bounds this request's analysis latency in milliseconds
	// (see AnalyzeRequest.TimeoutMS).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DeltaInfo reports how one method's delta query was answered.
type DeltaInfo struct {
	// Incremental is true when the verdict was re-derived from retained
	// delta state; false when it was served from the result cache/store or
	// computed from scratch (unschedulable base, coalesced flight).
	Incremental bool `json:"incremental"`
	// Rounds / MatchedRounds count outer partition rounds and how many
	// matched the retained assignment (mismatch forces a full fallback for
	// that round).
	Rounds        int `json:"rounds,omitempty"`
	MatchedRounds int `json:"matched_rounds,omitempty"`
	// Reused / Recomputed / WarmStarted count per-task response-time
	// bounds carried over unchanged, re-derived, and re-derived from a
	// warm-started fixed point.
	Reused      int `json:"reused,omitempty"`
	Recomputed  int `json:"recomputed,omitempty"`
	WarmStarted int `json:"warm_started,omitempty"`
	// EpsRowsSeeded / ViewsSeeded / ViewsReplayed count memo and view
	// structures seeded from the retained state instead of rebuilt.
	EpsRowsSeeded int `json:"eps_rows_seeded,omitempty"`
	ViewsSeeded   int `json:"views_seeded,omitempty"`
	ViewsReplayed int `json:"views_replayed,omitempty"`
}

// DeltaResponse is the body of a successful POST /v1/analyze/delta. Hash
// is the patched taskset's canonical hash — the same value POST
// /v1/analyze would return for the edited taskset, and the base to quote
// for the next patch in a chain.
type DeltaResponse struct {
	BaseHash string                   `json:"base_hash"`
	Hash     string                   `json:"hash"`
	Results  map[string]*MethodResult `json:"results"`
	Delta    map[string]*DeltaInfo    `json:"delta"`
}

// errorResponse is the structured body of every 4xx/5xx response. Timeout
// marks a 503 caused by an analysis deadline (server -request-timeout or
// the request's timeout_ms) so clients can distinguish "overloaded, back
// off" from "this exact request overran its budget; an immediate retry may
// hit the cache". Patch carries the structured rejection of an invalid
// /v1/analyze/delta patch (operation index, machine-readable code).
type errorResponse struct {
	Error   string            `json:"error"`
	Code    int               `json:"code"`
	Timeout bool              `json:"timeout,omitempty"`
	Patch   *model.PatchError `json:"patch,omitempty"`
}

// parseMethods validates and resolves a method-name list ([] = all five).
func parseMethods(names []string) ([]analysis.Method, error) {
	if len(names) == 0 {
		return analysis.Methods(), nil
	}
	out := make([]analysis.Method, 0, len(names))
	for _, name := range names {
		m := analysis.Method(strings.TrimSpace(name))
		known := false
		for _, k := range analysis.Methods() {
			if m == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown method %q (known: %v)", name, analysis.Methods())
		}
		out = append(out, m)
	}
	return out, nil
}

// parsePlacement resolves the placement-heuristic name.
func parsePlacement(name string) (partition.PlacementHeuristic, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "wfd":
		return partition.WFD, nil
	case "ffd":
		return partition.FFD, nil
	default:
		return partition.WFD, fmt.Errorf("unknown placement %q (known: wfd, ffd)", name)
	}
}
