package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

func deltaBody(t testing.TB, req DeltaRequest) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func decodeDelta(t testing.TB, body []byte) DeltaResponse {
	t.Helper()
	var resp DeltaResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal delta response: %v", err)
	}
	return resp
}

// wcetBump is the canonical what-if patch: grow one vertex's WCET.
func wcetBump(task rt.TaskID, vertex rt.VertexID, to rt.Time) model.Patch {
	return model.Patch{Ops: []model.PatchOp{
		{Op: model.OpSetWCET, Task: task, Vertex: vertex, Value: to},
	}}
}

// TestDeltaEndToEnd drives the admission-control loop the endpoint exists
// for: establish state once (fallback), then answer successive what-if
// patches from retained state (hits), each verdict bit-identical to a full
// /v1/analyze of the same edited taskset.
func TestDeltaEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	base := testTaskset(t, 0)

	// First query carries the base taskset: the server has no state, so it
	// runs one full base analysis per method and retains state.
	w := post(t, s, "/v1/analyze/delta", deltaBody(t, DeltaRequest{
		BaseTaskset: jsonRoundTrip(t, base),
		Patch:       wcetBump(0, 1, 120*rt.Microsecond),
	}))
	if w.Code != http.StatusOK {
		t.Fatalf("fallback delta: status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeDelta(t, w.Body.Bytes())
	if resp.BaseHash != base.Hash().String() {
		t.Errorf("base_hash %q != %q", resp.BaseHash, base.Hash())
	}
	m := s.Metrics()
	if m.DeltaFallbacks != 2 || m.DeltaHits != 0 {
		t.Errorf("after fallback: fallbacks=%d hits=%d, want 2/0", m.DeltaFallbacks, m.DeltaHits)
	}
	if m.DeltaStates == 0 {
		t.Error("no retained delta states after fallback")
	}

	// The patched verdict must be bit-identical to analyzing the edited
	// taskset from scratch, and the response hash must be the edited
	// taskset's canonical hash.
	patched, _, err := model.ApplyPatch(base, wcetBump(0, 1, 120*rt.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hash != patched.Hash().String() {
		t.Errorf("hash %q != patched taskset hash %q", resp.Hash, patched.Hash())
	}
	for _, meth := range []analysis.Method{analysis.DPCPpEP, analysis.DPCPpEN} {
		mr := resp.Results[string(meth)]
		if mr == nil {
			t.Fatalf("method %s missing from response", meth)
		}
		want := analysis.Test(meth, patched, analysis.Options{})
		if mr.Schedulable != want.Schedulable {
			t.Errorf("%s: schedulable=%v, full analysis says %v", meth, mr.Schedulable, want.Schedulable)
		}
		for id, wcrt := range want.WCRT {
			if mr.WCRT[id] != wcrt {
				t.Errorf("%s: wcrt[%d]=%d, full analysis says %d", meth, id, mr.WCRT[id], wcrt)
			}
		}
	}

	// Second query: base hash only, no taskset — answered from retained
	// state, incrementally.
	w = post(t, s, "/v1/analyze/delta", deltaBody(t, DeltaRequest{
		Base:  base.Hash().String(),
		Patch: wcetBump(0, 1, 140*rt.Microsecond),
	}))
	if w.Code != http.StatusOK {
		t.Fatalf("hit delta: status %d: %s", w.Code, w.Body.String())
	}
	resp = decodeDelta(t, w.Body.Bytes())
	m = s.Metrics()
	if m.DeltaHits != 2 {
		t.Errorf("after hit: delta_hits=%d, want 2", m.DeltaHits)
	}
	if m.DeltaFallbacks != 2 {
		t.Errorf("after hit: delta_fallbacks=%d, want still 2", m.DeltaFallbacks)
	}
	for _, meth := range []analysis.Method{analysis.DPCPpEP, analysis.DPCPpEN} {
		info := resp.Delta[string(meth)]
		if info == nil || !info.Incremental {
			t.Errorf("%s: expected incremental answer, got %+v", meth, info)
		}
	}
	patched2, _, err := model.ApplyPatch(base, wcetBump(0, 1, 140*rt.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	full := post(t, s, "/v1/analyze", analyzeBody(t, patched2,
		string(analysis.DPCPpEP), string(analysis.DPCPpEN)))
	if full.Code != http.StatusOK {
		t.Fatalf("full analyze: status %d: %s", full.Code, full.Body.String())
	}
	var fullResp AnalyzeResponse
	if err := json.Unmarshal(full.Body.Bytes(), &fullResp); err != nil {
		t.Fatal(err)
	}
	if fullResp.Hash != resp.Hash {
		t.Errorf("delta hash %q != full analyze hash %q", resp.Hash, fullResp.Hash)
	}
	for meth, want := range fullResp.Results {
		got := resp.Results[meth]
		if got == nil || got.Schedulable != want.Schedulable {
			t.Errorf("%s: delta verdict %+v != full verdict %+v", meth, got, want)
		}
	}
}

// TestDeltaChaining pins that a delta response's hash is itself a ready
// base: the run chains fresh state under the patched hash, so patch
// sequences stay incremental without ever re-sending a taskset.
func TestDeltaChaining(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	base := testTaskset(t, 0)

	w := post(t, s, "/v1/analyze/delta", deltaBody(t, DeltaRequest{
		BaseTaskset: jsonRoundTrip(t, base),
		Patch:       wcetBump(0, 1, 120*rt.Microsecond),
		Methods:     []string{string(analysis.DPCPpEP)},
	}))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeDelta(t, w.Body.Bytes())

	// Chain: patch the patched set, quoting only its hash.
	w = post(t, s, "/v1/analyze/delta", deltaBody(t, DeltaRequest{
		Base:    resp.Hash,
		Patch:   wcetBump(1, 0, 160*rt.Microsecond),
		Methods: []string{string(analysis.DPCPpEP)},
	}))
	if w.Code != http.StatusOK {
		t.Fatalf("chained delta: status %d: %s", w.Code, w.Body.String())
	}
	chained := decodeDelta(t, w.Body.Bytes())
	if m := s.Metrics(); m.DeltaHits != 1 {
		t.Errorf("chained query: delta_hits=%d, want 1", m.DeltaHits)
	}

	p1, _, err := model.ApplyPatch(base, wcetBump(0, 1, 120*rt.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := model.ApplyPatch(p1, wcetBump(1, 0, 160*rt.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if chained.Hash != p2.Hash().String() {
		t.Errorf("chained hash %q != twice-patched hash %q", chained.Hash, p2.Hash())
	}
	want := analysis.Test(analysis.DPCPpEP, p2, analysis.Options{})
	got := chained.Results[string(analysis.DPCPpEP)]
	if got == nil || got.Schedulable != want.Schedulable {
		t.Errorf("chained verdict %+v, full analysis says schedulable=%v", got, want.Schedulable)
	}
}

// TestDeltaErrors pins the structured 400s of the endpoint's boundary.
func TestDeltaErrors(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	base := testTaskset(t, 0)
	baseHash := base.Hash().String()

	cases := []struct {
		name string
		req  DeltaRequest
		want string // substring of the error body
	}{
		{"missing base", DeltaRequest{
			Patch: wcetBump(0, 1, 120*rt.Microsecond),
		}, "missing base"},
		{"malformed hash", DeltaRequest{
			Base:  "not-a-hash",
			Patch: wcetBump(0, 1, 120*rt.Microsecond),
		}, "malformed taskset hash"},
		{"unknown base", DeltaRequest{
			Base:  baseHash,
			Patch: wcetBump(0, 1, 120*rt.Microsecond),
		}, "no retained state"},
		{"hash mismatch", DeltaRequest{
			Base:        "0000000000000000000000000000000000000000000000000000000000000000",
			BaseTaskset: jsonRoundTrip(t, base),
			Patch:       wcetBump(0, 1, 120*rt.Microsecond),
		}, "does not match"},
		{"non-incremental method", DeltaRequest{
			BaseTaskset: jsonRoundTrip(t, base),
			Patch:       wcetBump(0, 1, 120*rt.Microsecond),
			Methods:     []string{string(analysis.SPIN)},
		}, "no incremental form"},
		{"unknown method", DeltaRequest{
			BaseTaskset: jsonRoundTrip(t, base),
			Patch:       wcetBump(0, 1, 120*rt.Microsecond),
			Methods:     []string{"nope"},
		}, "unknown method"},
	}
	for _, tc := range cases {
		w := post(t, s, "/v1/analyze/delta", deltaBody(t, tc.req))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, w.Code, w.Body.String())
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: unmarshal error body: %v", tc.name, err)
			continue
		}
		if er.Code != http.StatusBadRequest || !strings.Contains(er.Error, tc.want) {
			t.Errorf("%s: error %+v, want code 400 containing %q", tc.name, er, tc.want)
		}
	}
}

// TestDeltaHostilePatch pins the structured patch rejection: an invalid
// patch is a 400 carrying the offending op index and a machine-readable
// code, with no analysis and no cache pollution.
func TestDeltaHostilePatch(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	base := testTaskset(t, 0)

	cases := []struct {
		name string
		ops  []model.PatchOp
		code string
	}{
		{"negative wcet", []model.PatchOp{
			{Op: model.OpSetWCET, Task: 0, Vertex: 1, Value: -5},
		}, "bad_value"},
		{"unknown task", []model.PatchOp{
			{Op: model.OpSetWCET, Task: 99, Vertex: 0, Value: 10},
		}, "unknown_task"},
		{"unknown op", []model.PatchOp{
			{Op: "explode", Task: 0},
		}, "unknown_op"},
		{"cycle", []model.PatchOp{
			{Op: model.OpAddEdge, Task: 0, From: 1, To: 0},
		}, "finalize"},
	}
	for _, tc := range cases {
		w := post(t, s, "/v1/analyze/delta", deltaBody(t, DeltaRequest{
			BaseTaskset: jsonRoundTrip(t, base),
			Patch:       model.Patch{Ops: tc.ops},
		}))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, w.Code, w.Body.String())
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: unmarshal error body: %v", tc.name, err)
			continue
		}
		if er.Patch == nil {
			t.Errorf("%s: no structured patch error in %s", tc.name, w.Body.String())
			continue
		}
		if er.Patch.Code != tc.code {
			t.Errorf("%s: patch code %q, want %q", tc.name, er.Patch.Code, tc.code)
		}
	}
}

// TestDeltaSharesResultCache pins the content-addressing invariant: a delta
// result lands in the same cache /v1/analyze reads, so a follow-up full
// analyze of the identical edited taskset is a pure cache hit.
func TestDeltaSharesResultCache(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	base := testTaskset(t, 0)
	p := wcetBump(0, 1, 120*rt.Microsecond)

	w := post(t, s, "/v1/analyze/delta", deltaBody(t, DeltaRequest{
		BaseTaskset: jsonRoundTrip(t, base),
		Patch:       p,
		Methods:     []string{string(analysis.DPCPpEP)},
	}))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	analysesBefore := s.Metrics().Analyses

	patched, _, err := model.ApplyPatch(base, p)
	if err != nil {
		t.Fatal(err)
	}
	full := post(t, s, "/v1/analyze", analyzeBody(t, patched, string(analysis.DPCPpEP)))
	if full.Code != http.StatusOK {
		t.Fatalf("full analyze: status %d: %s", full.Code, full.Body.String())
	}
	if m := s.Metrics(); m.Analyses != analysesBefore {
		t.Errorf("full analyze of the patched set executed %d new analyses, want 0 (cache hit)",
			m.Analyses-analysesBefore)
	}
}

