package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
)

// sweepGet GETs a sweep endpoint and decodes the JSON body into out.
func sweepGet(t *testing.T, s *Server, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code == http.StatusOK || w.Code == http.StatusAccepted {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v: %s", path, err, w.Body.String())
		}
	}
	return w.Code
}

// submitSweep POSTs a sweep and returns its ID.
func submitSweep(t *testing.T, s *Server, body string) string {
	t.Helper()
	w := post(t, s, "/v1/sweeps", []byte(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body.String())
	}
	var acc SweepAccepted
	if err := json.Unmarshal(w.Body.Bytes(), &acc); err != nil || acc.ID == "" {
		t.Fatalf("submit response %q: %v", w.Body.String(), err)
	}
	return acc.ID
}

// waitSweepState polls the job until it reaches the state (or fails the
// test after 30s).
func waitSweepState(t *testing.T, s *Server, id, state string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st SweepStatus
		if code := sweepGet(t, s, "/v1/sweeps/"+id, &st); code != http.StatusOK {
			t.Fatalf("status poll: %d", code)
		}
		if st.State == state {
			return st
		}
		if st.State == sweepFailed && state != sweepFailed {
			t.Fatalf("sweep failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in state %q waiting for %q", id, st.State, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSweepJobLifecycle: submit → 202 with ID → progress reaches done →
// results carry every point, matching a direct /v1/grid sweep of the same
// (scenario, n, seed) — the job system is a scheduler, not a different
// experiment.
func TestSweepJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	id := submitSweep(t, s, `{"scenarios":["2a"],"n":1,"seed":2020,"methods":["DPCP-p-EN"]}`)
	st := waitSweepState(t, s, id, sweepDone)
	if len(st.Scenarios) != 1 || st.Scenarios[0].Done != st.Scenarios[0].Points {
		t.Fatalf("done status incomplete: %+v", st)
	}

	var res SweepResults
	if code := sweepGet(t, s, "/v1/sweeps/"+id+"/results", &res); code != http.StatusOK {
		t.Fatalf("results: %d", code)
	}
	points, done, code := gridGet(t, s, "/v1/grid?scenario=2a&n=1&seed=2020&methods=DPCP-p-EN")
	if code != http.StatusOK || done == nil {
		t.Fatalf("grid reference sweep: %d", code)
	}
	if len(res.Scenarios) != 1 || len(res.Scenarios[0].Points) != len(points) {
		t.Fatalf("results shape: %d scenarios, %d points; grid has %d points",
			len(res.Scenarios), len(res.Scenarios[0].Points), len(points))
	}
	for _, gp := range points {
		got := res.Scenarios[0].Points[gp.Point]
		if got == nil {
			t.Fatalf("point %d missing from done sweep", gp.Point)
		}
		if got.Total != gp.Total || got.Accepted["DPCP-p-EN"] != gp.Accepted["DPCP-p-EN"] {
			t.Errorf("point %d: sweep %+v != grid %+v", gp.Point, got, gp)
		}
	}

	// The listing shows the job; unknown IDs 404.
	var list SweepList
	if code := sweepGet(t, s, "/v1/sweeps", &list); code != http.StatusOK || len(list.Sweeps) != 1 {
		t.Fatalf("list: %d, %+v", code, list)
	}
	var nothing SweepStatus
	if code := sweepGet(t, s, "/v1/sweeps/nope", &nothing); code != http.StatusNotFound {
		t.Fatalf("unknown sweep: %d, want 404", code)
	}
	m := s.Metrics()
	if m.SweepsSubmitted != 1 || m.SweepsCompleted != 1 {
		t.Errorf("sweep counters: %+v", m)
	}
}

func TestSweepValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, body string
	}{
		{"empty scenarios", `{"scenarios":[]}`},
		{"bad scenario", `{"scenarios":["9z"]}`},
		{"bad grid index", `{"scenarios":["g9999"]}`},
		{"bad n", `{"scenarios":["2a"],"n":-3}`},
		{"huge n", `{"scenarios":["2a"],"n":99999999}`},
		{"bad method", `{"scenarios":["2a"],"methods":["DPCP-q"]}`},
		{"bad placement", `{"scenarios":["2a"],"placement":"best"}`},
		{"negative path cap", `{"scenarios":["2a"],"path_cap":-1}`},
		{"unknown field", `{"scenarios":["2a"],"bogus":1}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if w := post(t, s, "/v1/sweeps", []byte(tc.body)); w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
			}
		})
	}
	if m := s.Metrics(); m.SweepsSubmitted != 0 {
		t.Errorf("rejected submissions counted: %+v", m)
	}
}

// TestSweepRestartResumesByteIdentical is the durability acceptance test:
// a server is killed mid-sweep (its runner stopped, partial progress
// checkpointed), a fresh server on the same store directory resumes the
// job, and the finished curves are byte-identical to an uninterrupted run
// of the same sweep.
func TestSweepRestartResumesByteIdentical(t *testing.T) {
	const spec = `{"scenarios":["2a"],"n":1,"seed":2020,"methods":["DPCP-p-EN"]}`
	dir := t.TempDir()

	// Server A: allow a few analyses through, then block the workers, so
	// the kill is guaranteed to land mid-sweep with some points
	// checkpointed and some not.
	a, err := New(Config{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	release := make(chan struct{})
	innerA := a.engine.testFn
	a.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		if calls.Add(1) > 3 {
			<-release
		}
		return innerA(m, ts, opts)
	}
	id := submitSweep(t, a, spec)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st SweepStatus
		sweepGet(t, a, "/v1/sweeps/"+id, &st)
		if len(st.Scenarios) == 1 && st.Scenarios[0].Done >= 1 {
			if st.Scenarios[0].Done == st.Scenarios[0].Points {
				t.Fatal("sweep finished before the kill; gate broken")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no point ever completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Kill: cancel the runner first (so released workers stop picking up
	// new samples), then unblock it and wait for the clean exit that
	// checkpoints progress.
	closed := make(chan struct{})
	go func() { a.Close(); close(closed) }()
	for a.jobs.ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-closed

	// Server B on the same store directory resumes the job to completion.
	b := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	var listed SweepList
	if code := sweepGet(t, b, "/v1/sweeps", &listed); code != http.StatusOK || len(listed.Sweeps) != 1 {
		t.Fatalf("restarted server lost the job: %d %+v", code, listed)
	}
	waitSweepState(t, b, id, sweepDone)
	var resumed SweepResults
	sweepGet(t, b, "/v1/sweeps/"+id+"/results", &resumed)

	// Reference: the same sweep uninterrupted on a fresh in-memory server.
	c := newTestServer(t, Config{Workers: 2})
	refID := submitSweep(t, c, spec)
	waitSweepState(t, c, refID, sweepDone)
	var ref SweepResults
	sweepGet(t, c, "/v1/sweeps/"+refID+"/results", &ref)

	gotCurves, err := json.Marshal(resumed.Scenarios)
	if err != nil {
		t.Fatal(err)
	}
	wantCurves, err := json.Marshal(ref.Scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCurves, wantCurves) {
		t.Errorf("resumed curves differ from uninterrupted run:\ngot:  %s\nwant: %s", gotCurves, wantCurves)
	}

	// Resumption skipped the checkpointed points and served the killed
	// run's stray analyses from the persistent store: strictly fewer
	// fresh analyses than a full 21-point sweep.
	if m := b.Metrics(); m.Analyses >= 21 {
		t.Errorf("resumed run re-analyzed everything: %+v", m)
	}
}

// TestSweepResumeDisabled: with resume off, reloaded unfinished jobs are
// listed as paused and never run.
func TestSweepResumeDisabled(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Block the first analysis so the job cannot finish before the close.
	release := make(chan struct{})
	innerA := a.engine.testFn
	a.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		<-release
		return innerA(m, ts, opts)
	}
	id := submitSweep(t, a, `{"scenarios":["2a"],"n":1,"methods":["DPCP-p-EN"]}`)
	closed := make(chan struct{})
	go func() { a.Close(); close(closed) }()
	for a.jobs.ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-closed

	b := newTestServer(t, Config{Workers: 1, StoreDir: dir, DisableResume: true})
	var st SweepStatus
	if code := sweepGet(t, b, "/v1/sweeps/"+id, &st); code != http.StatusOK {
		t.Fatalf("reloaded job missing: %d", code)
	}
	if st.State != sweepPaused {
		t.Fatalf("state %q, want %q", st.State, sweepPaused)
	}
	// Paused is not broken: the job's partial results stay servable, with
	// the state telling the client nothing more is coming on this daemon.
	var res SweepResults
	if code := sweepGet(t, b, "/v1/sweeps/"+id+"/results", &res); code != http.StatusOK {
		t.Fatalf("paused job results: %d, want 200", code)
	}
	if res.State != sweepPaused || len(res.Scenarios) != 1 {
		t.Fatalf("paused results %+v", res)
	}
}

// TestStoreWarmAcrossRestart: results computed by one server are served
// from the persistent store by the next — the analyses counter stays at
// zero for a repeated request after a restart.
func TestStoreWarmAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Config{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	body := analyzeBody(t, testTaskset(t, 0), string(analysis.DPCPpEN), string(analysis.SPIN))
	if w := post(t, a, "/v1/analyze", body); w.Code != http.StatusOK {
		t.Fatalf("priming: %d", w.Code)
	}
	first := post(t, a, "/v1/analyze", body).Body.Bytes()
	if m := a.Metrics(); m.StorePuts != 2 {
		t.Fatalf("priming persisted %d results, want 2: %+v", m.StorePuts, m)
	}
	a.Close()

	b := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	w := post(t, b, "/v1/analyze", body)
	if w.Code != http.StatusOK {
		t.Fatalf("restarted request: %d", w.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), first) {
		t.Error("restarted server served different bytes")
	}
	m := b.Metrics()
	if m.Analyses != 0 || m.StoreHits != 2 {
		t.Errorf("restart should be store-served: analyses=%d store_hits=%d (%+v)",
			m.Analyses, m.StoreHits, m)
	}
}

// TestSweepLoadUnresolvableCheckpoint: a checkpoint this binary cannot
// resolve (here: invalid n, which fails validation before the point lists
// are sized) must surface as a failed job that still renders in listings,
// status and results — one bad file in the jobs directory must never panic
// the API or stop the daemon from starting.
func TestSweepLoadUnresolvableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	bad := `{"id":"deadbeef01234567","created_unix_nano":1,"state":"queued","spec":{"scenarios":["2a"],"n":0}}`
	if err := os.WriteFile(filepath.Join(dir, "jobs", "deadbeef01234567.json"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	// Torn/foreign files are skipped entirely.
	if err := os.WriteFile(filepath.Join(dir, "jobs", "torn.json"), []byte(`{"id":`), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{Workers: 1, StoreDir: dir})
	var list SweepList
	if code := sweepGet(t, s, "/v1/sweeps", &list); code != http.StatusOK || len(list.Sweeps) != 1 {
		t.Fatalf("list with bad checkpoint: %d, %+v", code, list)
	}
	var st SweepStatus
	if code := sweepGet(t, s, "/v1/sweeps/deadbeef01234567", &st); code != http.StatusOK {
		t.Fatalf("status of failed job: %d", code)
	}
	if st.State != sweepFailed || st.Error == "" {
		t.Fatalf("state %q (error %q), want failed with a reason", st.State, st.Error)
	}
	var res SweepResults
	if code := sweepGet(t, s, "/v1/sweeps/deadbeef01234567/results", &res); code != http.StatusOK {
		t.Fatalf("results of failed job: %d", code)
	}

	// The failure mark must stay in memory: the on-disk checkpoint may be
	// resumable by the binary that wrote it, so this one must not be
	// rewritten with state "failed".
	raw, err := os.ReadFile(filepath.Join(dir, "jobs", "deadbeef01234567.json"))
	if err != nil {
		t.Fatal(err)
	}
	var cp sweepCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.State != "queued" {
		t.Errorf("unresolvable checkpoint rewritten on disk: state %q, want original %q", cp.State, "queued")
	}
}

// TestSweepQueueFull: submissions past the pending-job bound get 429.
func TestSweepQueueFull(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// Block the runner inside the first job's first analysis so every
	// later submission stays queued.
	release := make(chan struct{})
	inner := s.engine.testFn
	s.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		<-release
		return inner(m, ts, opts)
	}
	defer close(release)
	first := submitSweep(t, s, `{"scenarios":["2a"],"n":1,"methods":["DPCP-p-EN"]}`)
	// Wait for the runner to pick the first job up (and block inside it),
	// so exactly maxSweepJobs more fit the queue.
	deadline := time.Now().Add(10 * time.Second)
	for s.jobs.active.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("runner never started job %s", first)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < maxSweepJobs; i++ {
		w := post(t, s, "/v1/sweeps", []byte(`{"scenarios":["2a"],"n":1,"methods":["DPCP-p-EN"]}`))
		if w.Code != http.StatusAccepted {
			t.Fatalf("submission %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	w := post(t, s, "/v1/sweeps", []byte(`{"scenarios":["2a"],"n":1,"methods":["DPCP-p-EN"]}`))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestSweepDelete: DELETE cancels a running job at its next sample
// boundary, removes it from listings and deletes its checkpoint, and the
// runner moves on to later jobs.
func TestSweepDelete(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, StoreDir: dir})
	release := make(chan struct{})
	inner := s.engine.testFn
	s.engine.testFn = func(m analysis.Method, ts *model.Taskset, opts analysis.Options) partition.Result {
		<-release
		return inner(m, ts, opts)
	}

	id := submitSweep(t, s, `{"scenarios":["2a"],"n":1,"methods":["DPCP-p-EN"]}`)
	deadline := time.Now().Add(10 * time.Second)
	for s.jobs.active.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("runner never started the job")
		}
		time.Sleep(time.Millisecond)
	}

	req := httptest.NewRequest(http.MethodDelete, "/v1/sweeps/"+id, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", w.Code)
	}
	close(release) // let the blocked analysis finish; the job is canceled

	var st SweepStatus
	if code := sweepGet(t, s, "/v1/sweeps/"+id, &st); code != http.StatusNotFound {
		t.Fatalf("deleted job still served: %d", code)
	}
	// The runner is free again: a new job runs to completion.
	next := submitSweep(t, s, `{"scenarios":["2a"],"n":1,"methods":["DPCP-p-EN"]}`)
	waitSweepState(t, s, next, sweepDone)
	// The canceled job's checkpoint is gone; the finished one's remains.
	if _, err := os.Stat(filepath.Join(dir, "jobs", id+".json")); !os.IsNotExist(err) {
		t.Errorf("deleted job's checkpoint still on disk (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", next+".json")); err != nil {
		t.Errorf("finished job's checkpoint missing: %v", err)
	}
	// Deleting twice (or an unknown ID) 404s.
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodDelete, "/v1/sweeps/"+id, nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("double delete: %d, want 404", w.Code)
	}
}

// TestSweepOversizedJob: a sweep whose total draw count exceeds the
// per-job bound is rejected up front with a 400, before any work queues.
func TestSweepOversizedJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	var sb bytes.Buffer
	sb.WriteString(`{"scenarios":[`)
	for i := 0; i < 216; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%q", fmt.Sprintf("g%d", i))
	}
	sb.WriteString(`],"n":10000}`)
	w := post(t, s, "/v1/sweeps", sb.Bytes())
	if w.Code != http.StatusBadRequest {
		t.Fatalf("oversized sweep: status %d, want 400: %s", w.Code, w.Body.String())
	}
}

// TestSweepCheckpointIsAtomicJSON: the on-disk checkpoint parses and
// carries the normalized spec, so operators can inspect jobs with jq and
// other binaries can resume them.
func TestSweepCheckpointIsAtomicJSON(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	id := submitSweep(t, s, `{"scenarios":["2a"],"n":1,"methods":[" DPCP-p-EN "]}`)
	waitSweepState(t, s, id, sweepDone)

	raw, err := os.ReadFile(filepath.Join(dir, "jobs", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var cp sweepCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatalf("checkpoint not valid JSON: %v", err)
	}
	if cp.ID != id || cp.State != sweepDone || len(cp.Spec.Methods) != 1 || cp.Spec.Methods[0] != "DPCP-p-EN" {
		t.Errorf("checkpoint %+v: want normalized methods and done state", cp)
	}
	if cp.Spec.N != 1 || cp.Spec.Seed != 2020 {
		t.Errorf("checkpoint spec defaults not applied: %+v", cp.Spec)
	}
	for pi, gp := range cp.Points[0] {
		if gp == nil {
			t.Fatalf("done checkpoint missing point %d", pi)
		}
	}
}
