package server

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// numShards splits the result cache so concurrent requests on different
// tasksets never contend on one mutex. Keys start with a SHA-256 hex
// digest, so any cheap hash distributes them evenly.
const numShards = 16

// lru is a sharded LRU cache bounded by a single global capacity: however
// keys skew across shards, entries() never exceeds the configured size.
// Recency is tracked per shard; when an insert pushes the cache over
// capacity, the victim is the least-recently-used entry of the currently
// largest shard, which under the uniform hashing of SHA-256-prefixed keys
// behaves like per-shard LRU and under adversarial skew still evicts from
// wherever the entries actually are.
//
// Two instances exist per server: the engine's result cache (keyed by
// taskset hash + method + options fingerprint, holding wire results) and
// the exact-body fast path (keyed by the SHA-256 of raw /v1/analyze bodies,
// holding serialized responses), so a repeat of a byte-identical request
// skips even the JSON decode.
type lru[V any] struct {
	shards [numShards]lruShard[V]
	size   int64 // global capacity bound
	len    atomic.Int64
}

type lruShard[V any] struct {
	mu sync.Mutex
	// n mirrors ll.Len() so the eviction scan can find the largest shard
	// without taking every lock.
	n  atomic.Int64
	ll *list.List // front = most recently used
	m  map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRU builds a cache holding at most size entries in total (a size below
// one is raised to one).
func newLRU[V any](size int) *lru[V] {
	if size < 1 {
		size = 1
	}
	c := &lru[V]{size: int64(size)}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[string]*list.Element)
	}
	return c
}

func (c *lru[V]) shard(key string) *lruShard[V] {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%numShards]
}

// get returns the cached value and refreshes its recency.
func (c *lru[V]) get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// add inserts or refreshes the entry, then evicts until the cache is back
// within its global capacity.
func (c *lru[V]) add(key string, val V) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[key] = s.ll.PushFront(&lruEntry[V]{key: key, val: val})
	s.n.Add(1)
	c.len.Add(1)
	s.mu.Unlock()
	for c.len.Load() > c.size {
		if !c.evictOne(s) {
			return
		}
	}
}

// evictOne drops the least-recently-used entry of the largest shard other
// than the one just inserted into — preferring any other shard means an
// insert never evicts its own fresh entry while stale entries sit
// elsewhere (which matters when size < numShards and most shards hold at
// most one entry). Only when every other shard is empty does the
// inserting shard evict its own LRU, which then cannot be the fresh entry
// (the shard holds at least two once the global bound is exceeded).
// A false return means no entry could be found (a concurrent eviction
// drained the candidate); that only ends the caller's loop — the racing
// add runs its own eviction loop against the same global count, so the
// bound holds.
func (c *lru[V]) evictOne(inserted *lruShard[V]) bool {
	for attempt := 0; attempt < 2; attempt++ {
		var victim *lruShard[V]
		max := int64(0)
		for i := range c.shards {
			sh := &c.shards[i]
			if sh == inserted {
				continue
			}
			if n := sh.n.Load(); n > max {
				victim, max = sh, n
			}
		}
		if victim == nil {
			victim = inserted
		}
		victim.mu.Lock()
		if old := victim.ll.Back(); old != nil {
			victim.ll.Remove(old)
			delete(victim.m, old.Value.(*lruEntry[V]).key)
			victim.n.Add(-1)
			c.len.Add(-1)
			victim.mu.Unlock()
			return true
		}
		victim.mu.Unlock()
	}
	return false
}

// entries returns the current number of cached values across all shards;
// it never exceeds the size passed to newLRU.
func (c *lru[V]) entries() int64 { return c.len.Load() }
