package server

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// numShards splits the result cache so concurrent requests on different
// tasksets never contend on one mutex. Keys start with a SHA-256 hex
// digest, so any cheap hash distributes them evenly.
const numShards = 16

// lru is a sharded LRU cache. Two instances exist per server: the engine's
// result cache (keyed by taskset hash + method + options fingerprint,
// holding wire results) and the exact-body fast path (keyed by the SHA-256
// of raw /v1/analyze bodies, holding serialized responses), so a repeat of
// a byte-identical request skips even the JSON decode.
type lru[V any] struct {
	shards [numShards]lruShard[V]
	len    atomic.Int64
}

type lruShard[V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRU builds a cache holding at most size entries in total, split
// evenly across shards (each shard holds at least one entry).
func newLRU[V any](size int) *lru[V] {
	perShard := (size + numShards - 1) / numShards
	if perShard < 1 {
		perShard = 1
	}
	c := &lru[V]{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[string]*list.Element)
	}
	return c
}

func (c *lru[V]) shard(key string) *lruShard[V] {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%numShards]
}

// get returns the cached value and refreshes its recency.
func (c *lru[V]) get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// add inserts or refreshes the entry, evicting the least recently used
// entry of the shard when over capacity.
func (c *lru[V]) add(key string, val V) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&lruEntry[V]{key: key, val: val})
	c.len.Add(1)
	if s.ll.Len() > s.cap {
		old := s.ll.Back()
		s.ll.Remove(old)
		delete(s.m, old.Value.(*lruEntry[V]).key)
		c.len.Add(-1)
	}
}

// entries returns the current number of cached values across all shards.
func (c *lru[V]) entries() int64 { return c.len.Load() }
