package server

import (
	"sync"
	"testing"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

// TestRetryAfterSeconds pins the backpressure estimate: no data yet means
// 1s, otherwise ceil(queued*latency/workers) clamped to [1, 60]. The
// latency source is the engine's histogram EWMA — the same recorder behind
// /metrics — so each case seeds a fresh engine through Observe (a first
// sample is adopted as the EWMA verbatim; see obs.Histogram).
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		name    string
		latency time.Duration // 0 = no samples observed yet
		queued  int64
		want    int
	}{
		{"no latency observed", 0, 8, 1},
		{"backlog estimate", 2 * time.Second, 8, 4}, // 8 jobs * 2s / 4 workers
		// Sub-second backlogs still tell the client to wait a full second.
		{"small backlog", 10 * time.Millisecond, 1, 1},
		// A pathological backlog is capped rather than extrapolated.
		{"huge backlog", 30 * time.Second, 1000, 60},
	} {
		e := newEngine(4, 8, 64, nil, nil)
		if tc.latency > 0 {
			e.latency.Observe(tc.latency)
		}
		e.queued.Store(tc.queued)
		if got := e.retryAfterSeconds(); got != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestRetryAfterTracksHistogram pins the satellite invariant: Retry-After
// is computed from the latency histogram's EWMA, so observations through
// the one recorder move the estimate — there is no separate accumulator to
// drift.
func TestRetryAfterTracksHistogram(t *testing.T) {
	e := newEngine(4, 8, 64, nil, nil)
	e.queued.Store(4)
	e.latency.Observe(8 * time.Second)          // adopted: EWMA = 8s
	if got := e.retryAfterSeconds(); got != 8 { // 4 jobs * 8s / 4 workers
		t.Fatalf("after first observation: got %d, want 8", got)
	}
	// Many fast analyses pull the EWMA — and the promise — down.
	for i := 0; i < 200; i++ {
		e.latency.Observe(time.Millisecond)
	}
	if got := e.retryAfterSeconds(); got != 1 {
		t.Fatalf("after fast observations: got %d, want 1", got)
	}
	if e.latency.Count() != 201 {
		t.Fatalf("histogram count = %d, want 201 (same recorder feeds /metrics)", e.latency.Count())
	}
}

// TestPooledScratchConcurrency drives the engine's default testFn — the
// pooled-scratch path — from many goroutines at once. Under -race this
// fails if a Scratch is ever shared by two concurrent analyses; the
// verdict comparison fails if recycled scratch state leaks between
// tasksets.
func TestPooledScratchConcurrency(t *testing.T) {
	e := newEngine(4, 8, 1024, nil, nil)
	tss := make([]*model.Taskset, 6)
	for i := range tss {
		tss[i] = testTaskset(t, rt.Time(i)*10*rt.Microsecond)
	}
	want := make([]bool, len(tss))
	for i, ts := range tss {
		want[i] = analysis.Test(analysis.DPCPpEP, ts, analysis.Options{}).Schedulable
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				i := (g + rep) % len(tss)
				got := e.testFn(analysis.DPCPpEP, tss[i], analysis.Options{}).Schedulable
				if got != want[i] {
					t.Errorf("taskset %d: pooled verdict %v, want %v", i, got, want[i])
				}
			}
		}(g)
	}
	wg.Wait()
}
