package server

import (
	"sync"
	"testing"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

// TestRetryAfterSeconds pins the backpressure estimate: no data yet means
// 1s, otherwise ceil(queued*latency/workers) clamped to [1, 60].
func TestRetryAfterSeconds(t *testing.T) {
	e := newEngine(4, 8, 64, nil, nil)
	if got := e.retryAfterSeconds(); got != 1 {
		t.Errorf("no latency observed: got %d, want 1", got)
	}

	e.latencyNS.Store(int64(2 * time.Second))
	e.queued.Store(8)
	if got := e.retryAfterSeconds(); got != 4 { // 8 jobs * 2s / 4 workers
		t.Errorf("backlog estimate: got %d, want 4", got)
	}

	// Sub-second backlogs still tell the client to wait a full second.
	e.latencyNS.Store(int64(10 * time.Millisecond))
	e.queued.Store(1)
	if got := e.retryAfterSeconds(); got != 1 {
		t.Errorf("small backlog: got %d, want 1", got)
	}

	// A pathological backlog is capped rather than extrapolated.
	e.latencyNS.Store(int64(30 * time.Second))
	e.queued.Store(1000)
	if got := e.retryAfterSeconds(); got != 60 {
		t.Errorf("huge backlog: got %d, want 60", got)
	}
}

// TestObserveLatency checks the EWMA: the first sample is adopted as-is,
// later samples move the estimate an eighth of the way.
func TestObserveLatency(t *testing.T) {
	e := newEngine(2, 8, 64, nil, nil)
	e.observeLatency(800 * time.Millisecond)
	if got := e.latencyNS.Load(); got != int64(800*time.Millisecond) {
		t.Fatalf("first sample: got %d", got)
	}
	e.observeLatency(1600 * time.Millisecond)
	want := int64(800*time.Millisecond) + int64(800*time.Millisecond)/8
	if got := e.latencyNS.Load(); got != want {
		t.Fatalf("second sample: got %d, want %d", got, want)
	}
}

// TestPooledScratchConcurrency drives the engine's default testFn — the
// pooled-scratch path — from many goroutines at once. Under -race this
// fails if a Scratch is ever shared by two concurrent analyses; the
// verdict comparison fails if recycled scratch state leaks between
// tasksets.
func TestPooledScratchConcurrency(t *testing.T) {
	e := newEngine(4, 8, 1024, nil, nil)
	tss := make([]*model.Taskset, 6)
	for i := range tss {
		tss[i] = testTaskset(t, rt.Time(i)*10*rt.Microsecond)
	}
	want := make([]bool, len(tss))
	for i, ts := range tss {
		want[i] = analysis.Test(analysis.DPCPpEP, ts, analysis.Options{}).Schedulable
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				i := (g + rep) % len(tss)
				got := e.testFn(analysis.DPCPpEP, tss[i], analysis.Options{}).Schedulable
				if got != want[i] {
					t.Errorf("taskset %d: pooled verdict %v, want %v", i, got, want[i])
				}
			}
		}(g)
	}
	wg.Wait()
}
