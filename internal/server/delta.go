package server

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dpcpp/internal/analysis"
	"dpcpp/internal/experiments"
	"dpcpp/internal/model"
	"dpcpp/internal/obs"
	"dpcpp/internal/partition"
)

// errUnknownBase reports a delta request whose base hash has no retained
// incremental state and whose body carried no base_taskset to rebuild it
// from. The handler maps it to a structured 400 telling the client to
// re-send with base_taskset (one-time cost; subsequent patches hit state).
var errUnknownBase = errors.New("no retained state for base taskset")

// wireResult converts an analysis verdict to its cache/wire form.
func wireResult(res partition.Result) *MethodResult {
	return &MethodResult{
		Schedulable: res.Schedulable,
		WCRT:        res.WCRT,
		Rounds:      res.Rounds,
		Reason:      res.Reason,
	}
}

// analyzeDelta answers one method of a POST /v1/analyze/delta request: it
// resolves the base's retained incremental state (running — and retaining —
// a full base analysis when the body supplied base_taskset and no state
// exists), applies the patch, and analyzes the patched taskset through
// analysis.Delta.ApplyTo. The patched taskset's canonical hash addresses
// the SAME result cache as /v1/analyze, so a delta result and a
// from-scratch analysis of the identical edited taskset share entries and
// coalesce onto one flight. A successful run chains fresh state under the
// patched hash, keeping patch sequences incremental.
//
// The returned stats are non-nil only when this call executed the
// incremental analysis itself (not when the result came from a cache,
// store, or coalesced flight).
func (e *engine) analyzeDelta(ctx context.Context, baseHash model.Hash, baseTS *model.Taskset,
	p model.Patch, m analysis.Method, opts analysis.Options) (model.Hash, *MethodResult, *analysis.DeltaStats, error) {

	tr := obs.TraceFromContext(ctx)
	skey := cacheKey(baseHash, m, opts, false)
	d, ok := e.deltaStates.get(skey)
	if ok {
		e.deltaHits.Add(1)
	} else {
		if baseTS == nil {
			return model.Hash{}, nil, nil, errUnknownBase
		}
		e.deltaFallbacks.Add(1)
		// Full base analysis, retaining fresh state. It occupies a worker
		// slot like any analysis and lands the base verdict in the shared
		// result cache, so a later /v1/analyze of the base is a cache hit.
		select {
		case e.slots <- struct{}{}:
		case <-ctx.Done():
			return model.Hash{}, nil, nil, ctx.Err()
		}
		e.analyses.Add(1)
		start := time.Now()
		sc := e.scratch.Get().(*analysis.Scratch)
		res, nd := analysis.NewDelta(sc, m, baseTS, opts)
		e.scratch.Put(sc)
		<-e.slots
		e.latency.Observe(time.Since(start))
		tr.AddSpan("delta-base", start)
		e.cache.add(skey, wireResult(res))
		if nd == nil {
			// Unschedulable base (or a method with no incremental form):
			// nothing to patch from, so the patched taskset is analyzed
			// from scratch through the ordinary engine path.
			patched, _, err := model.ApplyPatch(baseTS, p)
			if err != nil {
				return model.Hash{}, nil, nil, err
			}
			ph := patched.Hash()
			mr, err := e.analyze(ctx, ph, patched, m, opts, false)
			return ph, mr, nil, err
		}
		e.deltaStates.add(skey, nd)
		d = nd
	}

	patchStart := time.Now()
	patched, pd, err := model.ApplyPatch(d.Base(), p)
	if err != nil {
		return model.Hash{}, nil, nil, err
	}
	ph := patched.Hash()
	tr.AddSpan("patch", patchStart)

	pkey := cacheKey(ph, m, opts, false)
	cacheStart := time.Now()
	if v, ok := e.cache.get(pkey); ok {
		e.cacheHits.Add(1)
		tr.AddSpan("cache", cacheStart)
		return ph, v, nil, nil
	}
	e.cacheMisses.Add(1)

	var stats *analysis.DeltaStats
	flightStart := time.Now()
	v, err, shared := e.flight.do(ctx, pkey, func(fctx context.Context) (*MethodResult, error) {
		if v, ok := e.cache.get(pkey); ok {
			return v, nil
		}
		if mr := e.storeGet(pkey); mr != nil {
			e.cache.add(pkey, mr)
			return mr, nil
		}
		select {
		case e.slots <- struct{}{}:
		case <-fctx.Done():
			return nil, fctx.Err()
		}
		defer func() { <-e.slots }()
		e.analyses.Add(1)
		start := time.Now()
		sc := e.scratch.Get().(*analysis.Scratch)
		res, st, next := d.ApplyTo(sc, patched, pd)
		e.scratch.Put(sc)
		e.latency.Observe(time.Since(start))
		tr.AddSpan("delta-analysis", start)
		stats = &st
		mr := wireResult(res)
		e.cache.add(pkey, mr)
		e.storePut(pkey, mr)
		if next != nil {
			// Chain: the patched taskset becomes a ready base for the next
			// patch in the sequence, under its own content address.
			e.deltaStates.add(cacheKey(ph, m, opts, false), next)
		}
		return mr, nil
	})
	if shared {
		e.coalesced.Add(1)
		tr.AddSpan("flight", flightStart)
	}
	if err != nil {
		e.noteAbort(err)
		return model.Hash{}, nil, nil, err
	}
	return ph, v, stats, nil
}

// parseHash decodes a canonical taskset hash (64 lowercase hex digits).
func parseHash(s string) (model.Hash, error) {
	var h model.Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return h, fmt.Errorf("malformed taskset hash %q (want %d hex digits)", s, 2*len(h))
	}
	copy(h[:], b)
	return h, nil
}

// parseDeltaMethods resolves the method list of a delta request: only the
// DPCP-p variants have an incremental form, and an empty list means both.
func parseDeltaMethods(names []string) ([]analysis.Method, error) {
	if len(names) == 0 {
		return []analysis.Method{analysis.DPCPpEP, analysis.DPCPpEN}, nil
	}
	ms, err := parseMethods(names)
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		if m != analysis.DPCPpEP && m != analysis.DPCPpEN {
			return nil, fmt.Errorf("method %q has no incremental form (delta supports %s, %s)",
				m, analysis.DPCPpEP, analysis.DPCPpEN)
		}
	}
	return ms, nil
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	s.engine.requests.Add(1)
	var req DeltaRequest
	if decodeBody(w, r, &req) != nil {
		return
	}
	ms, err := parseDeltaMethods(req.Methods)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.PathCap < 0 {
		writeError(w, http.StatusBadRequest, "negative path_cap %d", req.PathCap)
		return
	}
	pl, err := parsePlacement(req.Placement)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := analysis.Options{PathCap: req.PathCap, Placement: pl}

	var baseHash model.Hash
	switch {
	case req.BaseTaskset != nil:
		if !finalizeTaskset(w, req.BaseTaskset, "") {
			return
		}
		baseHash = req.BaseTaskset.Hash()
		if req.Base != "" {
			given, err := parseHash(req.Base)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			if given != baseHash {
				writeError(w, http.StatusBadRequest,
					"base %s does not match base_taskset's canonical hash %s", req.Base, baseHash)
				return
			}
		}
	case req.Base != "":
		if baseHash, err = parseHash(req.Base); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "missing base: supply base (a canonical hash) or base_taskset")
		return
	}

	if !s.admit(w, len(ms)) {
		return
	}
	defer s.engine.release(len(ms))
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	type deltaOut struct {
		hash  model.Hash
		mr    *MethodResult
		stats *analysis.DeltaStats
		err   error
	}
	outs := make([]deltaOut, len(ms))
	experiments.ParallelFor(len(ms), len(ms), func(_, i int) {
		o := &outs[i]
		o.hash, o.mr, o.stats, o.err = s.engine.analyzeDelta(
			ctx, baseHash, req.BaseTaskset, req.Patch, ms[i], opts)
	})
	for _, o := range outs {
		if o.err == nil {
			continue
		}
		var perr *model.PatchError
		switch {
		case errors.As(o.err, &perr):
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("invalid patch: %v", perr),
				Code:  http.StatusBadRequest,
				Patch: perr,
			})
		case errors.Is(o.err, errUnknownBase):
			writeError(w, http.StatusBadRequest,
				"unknown base %s: no retained state; re-send with base_taskset to establish one", baseHash)
		default:
			s.finishAnalysis(w, o.err)
		}
		return
	}

	resp := &DeltaResponse{
		BaseHash: baseHash.String(),
		Hash:     outs[0].hash.String(),
		Results:  make(map[string]*MethodResult, len(ms)),
		Delta:    make(map[string]*DeltaInfo, len(ms)),
	}
	for i, m := range ms {
		resp.Results[string(m)] = outs[i].mr
		info := &DeltaInfo{}
		if st := outs[i].stats; st != nil {
			info.Incremental = true
			info.Rounds = st.Rounds
			info.MatchedRounds = st.MatchedRounds
			info.Reused = st.Reused
			info.Recomputed = st.Recomputed
			info.WarmStarted = st.WarmStarted
			info.EpsRowsSeeded = st.EpsRowsSeeded
			info.ViewsSeeded = st.ViewsSeeded
			info.ViewsReplayed = st.ViewsReplayed
		}
		resp.Delta[string(m)] = info
	}
	writeJSON(w, http.StatusOK, resp)
}
