package server

import "sync"

// flightGroup coalesces concurrent duplicate work: all callers that ask
// for the same key while one computation is in flight block on that one
// computation and share its result. Combined with the content-addressed
// cache key, N concurrent identical analyze requests cost exactly one
// analysis — the acceptance invariant the coalescing test pins.
//
// This is a minimal singleflight (the x/sync dependency is deliberately
// avoided): no panic forwarding — fn must not panic, which engine.Analyze
// guarantees by validating tasksets before any flight starts.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  *MethodResult
	// waiters counts callers coalesced onto this execution (guarded by
	// the group mutex); tests use it to prove all N callers overlapped.
	waiters int
}

// do returns fn()'s result for key, executing fn at most once across all
// concurrent callers with that key. shared reports whether this caller
// received a result computed by another goroutine's call.
func (g *flightGroup) do(key string, fn func() *MethodResult) (val *MethodResult, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.val, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false
}

// waiting reports how many callers are coalesced onto the key's in-flight
// execution (0 when none is in flight).
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}
