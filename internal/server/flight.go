package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent duplicate work: all callers that ask
// for the same key while one computation is in flight block on that one
// computation and share its result. Combined with the content-addressed
// cache key, N concurrent identical analyze requests cost exactly one
// analysis — the acceptance invariant the coalescing test pins.
//
// The group is generic in its result type so the same primitive serves the
// engine's method-result flights (full analyses and incremental delta
// analyses share one group — and therefore one in-flight computation — per
// patched-taskset cache key) and any future value-shaped work.
//
// Cancellation is per-caller, not per-computation: the computation runs on
// its own goroutine under a flight-owned context, so a waiter whose
// request context ends abandons the flight immediately — freeing its
// handler goroutine — without cancelling the shared work, and the result
// still lands in the cache for the next caller. Only when every attached
// caller has abandoned is the flight context cancelled, which lets a
// computation nobody is waiting for stop at its next cancellation point
// (worker-slot acquisition) instead of burning a slot on a verdict no one
// will read.
//
// This is a minimal singleflight (the x/sync dependency is deliberately
// avoided): no panic forwarding — fn must not panic, which engine.analyze
// guarantees by validating tasksets before any flight starts.
type flightGroup[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
	// waiters counts callers coalesced onto this execution (guarded by
	// the group mutex); tests use it to prove all N callers overlapped.
	waiters int
	// refs counts attached callers including the initiator; when it drops
	// to zero before the computation finishes, cancel fires.
	refs   int
	cancel context.CancelFunc
}

// do returns fn's result for key, executing fn at most once across all
// concurrent callers with that key. fn runs on its own goroutine under a
// flight-owned context (see the type comment); each caller waits for the
// result or its own ctx, whichever ends first. shared reports whether this
// caller attached to an execution started by another goroutine.
func (g *flightGroup[V]) do(ctx context.Context, key string,
	fn func(context.Context) (V, error)) (val V, err error, shared bool) {

	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flightCall[V])
		}
		c, ok := g.m[key]
		if ok {
			c.waiters++
			c.refs++
			shared = true
		} else {
			//schedlint:ignore ctxflow detached by design: the flight outlives any one caller; the refcounted cancel tears it down when the last waiter leaves
			fctx, cancel := context.WithCancel(context.Background())
			c = &flightCall[V]{done: make(chan struct{}), refs: 1, cancel: cancel}
			g.m[key] = c
			go func() {
				c.val, c.err = fn(fctx)
				g.mu.Lock()
				delete(g.m, key)
				g.mu.Unlock()
				close(c.done)
				cancel()
			}()
		}
		g.mu.Unlock()

		select {
		case <-c.done:
			if c.err != nil && ctx.Err() == nil {
				// The flight died because an earlier cohort abandoned it
				// in the instant before this caller attached; this
				// caller's context is still live, so start a fresh one.
				continue
			}
			return c.val, c.err, shared
		case <-ctx.Done():
			g.mu.Lock()
			c.refs--
			if c.refs == 0 {
				c.cancel()
			}
			g.mu.Unlock()
			var zero V
			return zero, ctx.Err(), shared
		}
	}
}

// waiting reports how many callers are coalesced onto the key's in-flight
// execution (0 when none is in flight).
func (g *flightGroup[V]) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}
