// Package benchgate turns `go test -bench` output into committed,
// comparable performance snapshots. A snapshot records ns/op, B/op and
// allocs/op per benchmark, aggregated over several -count runs; Compare
// gates a new snapshot against a committed baseline, failing on
// regressions beyond a noise threshold. The allocation gate is the strict
// one — allocs/op are deterministic for a fixed code path, so even small
// increases are real regressions — while the time gate uses a wide
// threshold to tolerate machine-to-machine variance and only catches
// gross slowdowns.
package benchgate

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is the aggregated measurement of one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Runs is how many -count repetitions fed the aggregate.
	Runs int `json:"runs"`
}

// Snapshot is the committed benchmark state of one PR.
type Snapshot struct {
	GoOS       string            `json:"goos"`
	GoArch     string            `json:"goarch"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// sample is one raw benchmark line before aggregation.
type sample struct {
	ns     float64
	bytes  int64
	allocs int64
}

// Parse reads `go test -bench -benchmem` output and aggregates repeated
// runs of each benchmark: median ns/op (robust against a noisy outlier
// run), minimum B/op and minimum allocs/op (the least-interference
// observation of a quantity that is constant modulo GC timing and map
// growth). Benchmark names are normalized by stripping the trailing
// -<GOMAXPROCS> suffix so snapshots compare across machines with
// different core counts.
func Parse(r io.Reader) (*Snapshot, error) {
	raw := map[string][]sample{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name  N  ns/op_value ns/op  [B/op_value B/op  allocs_value allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := normalizeName(fields[0])
		s := sample{bytes: -1, allocs: -1}
		var err error
		if s.ns, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %v", line, err)
		}
		// Remaining fields are value/unit pairs; custom b.ReportMetric units
		// (e.g. "views") ride along and are ignored.
		for i := 4; i+1 < len(fields); i += 2 {
			unit := fields[i+1]
			if unit != "B/op" && unit != "allocs/op" {
				continue
			}
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad %s value in %q: %v", unit, line, err)
			}
			if unit == "B/op" {
				s.bytes = v
			} else {
				s.allocs = v
			}
		}
		if s.allocs < 0 {
			return nil, fmt.Errorf("benchgate: %s lacks allocs/op — run with -benchmem and b.ReportAllocs()", name)
		}
		raw[name] = append(raw[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines found")
	}
	snap := &Snapshot{GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Benchmarks: make(map[string]Result, len(raw))}
	for name, ss := range raw {
		snap.Benchmarks[name] = aggregate(ss)
	}
	return snap, nil
}

// normalizeName strips the -<procs> suffix go test appends to benchmark
// names (Benchmark/sub-8 → Benchmark/sub).
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func aggregate(ss []sample) Result {
	ns := make([]float64, len(ss))
	r := Result{BytesPerOp: ss[0].bytes, AllocsPerOp: ss[0].allocs, Runs: len(ss)}
	for i, s := range ss {
		ns[i] = s.ns
		if s.bytes < r.BytesPerOp {
			r.BytesPerOp = s.bytes
		}
		if s.allocs < r.AllocsPerOp {
			r.AllocsPerOp = s.allocs
		}
	}
	sort.Float64s(ns)
	if n := len(ns); n%2 == 1 {
		r.NsPerOp = ns[n/2]
	} else {
		r.NsPerOp = (ns[n/2-1] + ns[n/2]) / 2
	}
	return r
}

// Thresholds configures the regression gate.
type Thresholds struct {
	// Time is the allowed fractional ns/op growth (0.5 = +50%). Wide by
	// default: wall time varies with the machine; the gate is for gross
	// slowdowns, the committed trajectory is for trends.
	Time float64
	// Alloc is the allowed fractional allocs/op growth, plus AllocSlack
	// absolute allocations to absorb map-bucket variance at tiny counts.
	Alloc      float64
	AllocSlack int64
}

// DefaultThresholds is what CI runs with.
func DefaultThresholds() Thresholds {
	return Thresholds{Time: 0.50, Alloc: 0.10, AllocSlack: 2}
}

// Regression is one gate violation.
type Regression struct {
	Benchmark string
	Metric    string // "ns/op", "allocs/op" or "coverage"
	Old, New  float64
	Limit     float64
}

func (r Regression) String() string {
	if r.Metric == "coverage" {
		return fmt.Sprintf("%s: benchmark disappeared from the run", r.Benchmark)
	}
	return fmt.Sprintf("%s: %s %.0f -> %.0f (limit %.0f)",
		r.Benchmark, r.Metric, r.Old, r.New, r.Limit)
}

// Compare gates cur against the committed baseline. Benchmarks new in cur
// pass (they will be gated once committed); benchmarks missing from cur
// fail as coverage loss. Improvements never fail.
func Compare(baseline, cur *Snapshot, th Thresholds) []Regression {
	var regs []Regression
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		old := baseline.Benchmarks[name]
		now, ok := cur.Benchmarks[name]
		if !ok {
			regs = append(regs, Regression{Benchmark: name, Metric: "coverage"})
			continue
		}
		if limit := old.NsPerOp * (1 + th.Time); now.NsPerOp > limit {
			regs = append(regs, Regression{Benchmark: name, Metric: "ns/op",
				Old: old.NsPerOp, New: now.NsPerOp, Limit: limit})
		}
		allocLimit := float64(old.AllocsPerOp)*(1+th.Alloc) + float64(th.AllocSlack)
		if float64(now.AllocsPerOp) > allocLimit {
			regs = append(regs, Regression{Benchmark: name, Metric: "allocs/op",
				Old: float64(old.AllocsPerOp), New: float64(now.AllocsPerOp), Limit: allocLimit})
		}
	}
	return regs
}
