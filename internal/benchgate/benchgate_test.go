package benchgate

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: dpcpp
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkAnalysisMethods/DPCP-p-EP-8         	     100	    553757 ns/op	    4824 B/op	      58 allocs/op
BenchmarkAnalysisMethods/DPCP-p-EP-8         	     100	    601000 ns/op	    4900 B/op	      60 allocs/op
BenchmarkAnalysisMethods/DPCP-p-EP-8         	     100	    560111 ns/op	    4824 B/op	      58 allocs/op
BenchmarkAnalysisMethods/DPCP-p-EN-8         	     100	    118585 ns/op	         1.000 views	   28704 B/op	     244 allocs/op
PASS
ok  	dpcpp	0.080s
`

func TestParseAggregates(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	ep, ok := snap.Benchmarks["BenchmarkAnalysisMethods/DPCP-p-EP"]
	if !ok {
		t.Fatalf("EP benchmark missing (procs suffix not stripped?): %v", snap.Benchmarks)
	}
	if ep.Runs != 3 {
		t.Errorf("EP runs = %d, want 3", ep.Runs)
	}
	if ep.NsPerOp != 560111 { // median of the three runs
		t.Errorf("EP ns/op = %v, want median 560111", ep.NsPerOp)
	}
	if ep.AllocsPerOp != 58 || ep.BytesPerOp != 4824 { // minima
		t.Errorf("EP allocs/B = %d/%d, want 58/4824", ep.AllocsPerOp, ep.BytesPerOp)
	}
	if en := snap.Benchmarks["BenchmarkAnalysisMethods/DPCP-p-EN"]; en.Runs != 1 || en.AllocsPerOp != 244 {
		t.Errorf("EN = %+v", en)
	}
}

func TestParseRejectsMissingAllocs(t *testing.T) {
	out := "BenchmarkX-8 100 500 ns/op\n"
	if _, err := Parse(strings.NewReader(out)); err == nil {
		t.Fatal("benchmark without allocs/op must be rejected")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("empty bench output must be rejected")
	}
}

func snapWith(name string, ns float64, allocs int64) *Snapshot {
	return &Snapshot{Benchmarks: map[string]Result{
		name: {NsPerOp: ns, AllocsPerOp: allocs, Runs: 5},
	}}
}

// TestCompareGates pins the gate semantics the CI job relies on: the
// injected-regression cases MUST fail, the within-noise cases MUST pass.
func TestCompareGates(t *testing.T) {
	th := DefaultThresholds() // time +50%, alloc +10% and +2 absolute
	base := snapWith("BenchmarkX", 1000, 100)

	for _, tc := range []struct {
		name   string
		cur    *Snapshot
		metric string // "" = must pass
	}{
		{"unchanged", snapWith("BenchmarkX", 1000, 100), ""},
		{"improved", snapWith("BenchmarkX", 400, 10), ""},
		{"time within noise", snapWith("BenchmarkX", 1400, 100), ""},
		{"time regression", snapWith("BenchmarkX", 1600, 100), "ns/op"},
		{"alloc within noise", snapWith("BenchmarkX", 1000, 110), ""},
		{"alloc regression", snapWith("BenchmarkX", 1000, 113), "allocs/op"},
		{"coverage loss", snapWith("BenchmarkY", 1000, 100), "coverage"},
	} {
		regs := Compare(base, tc.cur, th)
		if tc.metric == "" {
			if len(regs) != 0 {
				t.Errorf("%s: unexpected regressions %v", tc.name, regs)
			}
			continue
		}
		if len(regs) != 1 || regs[0].Metric != tc.metric {
			t.Errorf("%s: got %v, want one %s regression", tc.name, regs, tc.metric)
		}
	}
}

// TestCompareSlackAtZero: a zero-alloc baseline tolerates only the
// absolute slack, so 0 -> 3 fails while 0 -> 2 passes. This is the gate
// that keeps the zero-allocation hot path at zero.
func TestCompareSlackAtZero(t *testing.T) {
	th := DefaultThresholds()
	base := snapWith("BenchmarkZ", 1000, 0)
	if regs := Compare(base, snapWith("BenchmarkZ", 1000, 2), th); len(regs) != 0 {
		t.Errorf("within slack: %v", regs)
	}
	if regs := Compare(base, snapWith("BenchmarkZ", 1000, 3), th); len(regs) != 1 {
		t.Errorf("0 -> 3 allocs must fail, got %v", regs)
	}
}
