package experiments

import (
	"context"
	"sync"
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/taskgen"
)

func sweepScenario(t *testing.T) taskgen.Scenario {
	t.Helper()
	scen, err := taskgen.Fig2Scenario("2a")
	if err != nil {
		t.Fatal(err)
	}
	return scen.DefaultStructure()
}

// TestScenarioSweepSubsetDeterminism is the resume contract: running one
// point alone must draw bit-identical tasksets to a full sweep at that
// point, because checkpoint/resume replays exactly such subsets.
func TestScenarioSweepSubsetDeterminism(t *testing.T) {
	scen := sweepScenario(t)
	const samples = 2
	collect := func(points []int) map[[2]int]model.Hash {
		var mu sync.Mutex
		got := make(map[[2]int]model.Hash)
		ScenarioSweep{Scenario: scen, Seed: 2020, Samples: samples, Points: points}.Run(
			context.Background(),
			func(pi, si int, ts *model.Taskset, genErr error) {
				if genErr != nil {
					t.Errorf("point %d sample %d: %v", pi, si, genErr)
					return
				}
				mu.Lock()
				got[[2]int{pi, si}] = ts.Hash()
				mu.Unlock()
			}, nil)
		return got
	}

	full := collect(nil)
	utils := taskgen.UtilizationPoints(scen.M)
	if len(full) != len(utils)*samples {
		t.Fatalf("full sweep analyzed %d samples, want %d", len(full), len(utils)*samples)
	}
	subset := collect([]int{3, 7})
	if len(subset) != 2*samples {
		t.Fatalf("subset sweep analyzed %d samples, want %d", len(subset), 2*samples)
	}
	for k, h := range subset {
		if full[k] != h {
			t.Errorf("point %d sample %d: subset hash %s != full-sweep hash %s",
				k[0], k[1], h, full[k])
		}
	}
}

// TestScenarioSweepPointCallbacks: onPoint fires exactly once per selected
// point, with complete=true, after all of its samples.
func TestScenarioSweepPointCallbacks(t *testing.T) {
	scen := sweepScenario(t)
	points := []int{0, 4, 9}
	const samples = 2
	var mu sync.Mutex
	ran := make(map[int]int)
	done := make(map[int]bool)
	ScenarioSweep{Scenario: scen, Seed: 1, Samples: samples, Points: points}.Run(
		context.Background(),
		func(pi, si int, ts *model.Taskset, genErr error) {
			mu.Lock()
			ran[pi]++
			mu.Unlock()
		},
		func(pi int, complete bool) {
			mu.Lock()
			defer mu.Unlock()
			if done[pi] {
				t.Errorf("point %d completed twice", pi)
			}
			done[pi] = true
			if !complete {
				t.Errorf("point %d reported complete=false without cancellation", pi)
			}
			if ran[pi] != samples {
				t.Errorf("point %d completed after %d samples, want %d", pi, ran[pi], samples)
			}
		})
	if len(done) != len(points) {
		t.Fatalf("%d points completed, want %d", len(done), len(points))
	}
}

// TestScenarioSweepCancellation: a canceled context stops analyze calls and
// every point reports complete=false, so no caller checkpoints a
// partially-run point.
func TestScenarioSweepCancellation(t *testing.T) {
	scen := sweepScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the sweep starts: nothing may run
	analyzed := 0
	completes := 0
	var mu sync.Mutex
	ScenarioSweep{Scenario: scen, Seed: 1, Samples: 3, Points: []int{0, 1}}.Run(ctx,
		func(pi, si int, ts *model.Taskset, genErr error) {
			mu.Lock()
			analyzed++
			mu.Unlock()
		},
		func(pi int, complete bool) {
			mu.Lock()
			if complete {
				t.Errorf("canceled sweep reported point %d complete", pi)
			}
			completes++
			mu.Unlock()
		})
	if analyzed != 0 {
		t.Errorf("canceled sweep ran %d analyses, want 0", analyzed)
	}
	if completes != 2 {
		t.Errorf("canceled sweep drained %d points, want 2", completes)
	}
}
