package experiments

import (
	"sync"
	"sync/atomic"

	"dpcpp/internal/analysis"
	"dpcpp/internal/taskgen"
)

// gridJob identifies one (scenario, point, sample) work unit of a sweep.
type gridJob struct {
	scen, point, sample int
}

// less orders jobs lexicographically; used to report errors
// deterministically regardless of worker scheduling.
func (j gridJob) less(o gridJob) bool {
	if j.scen != o.scen {
		return j.scen < o.scen
	}
	if j.point != o.point {
		return j.point < o.point
	}
	return j.sample < o.sample
}

// jobError is the failure of one job, tagged with its coordinates.
type jobError struct {
	scen, point, sample int
	err                 error
}

// runPool is the grid-level scheduler behind Campaign.Run and RunGrid: one
// shared, work-conserving pool of workers drains every (scenario, point,
// sample) job of every campaign, so multi-scenario sweeps keep all cores
// busy instead of a per-scenario pool idling through each scenario's tail.
// Campaigns must already be normalized. onCurve, when non-nil, fires once
// per campaign the moment its last job completes (from a worker goroutine).
//
// Determinism: each sample's generator seed is a pure function of
// (campaign seed, scenario name, point, sample), and accepted counts are
// commutative sums, so results never depend on worker interleaving. The
// returned error, if any, is the one of the smallest failing job.
func runPool(camps []Campaign, workers int, onCurve func(int, *Curve)) ([]*Curve, *jobError) {
	curves := make([]*Curve, len(camps))
	remaining := make([]atomic.Int64, len(camps))
	totalJobs := 0
	for i, c := range camps {
		curves[i] = newCurve(c)
		n := len(curves[i].Points) * c.TasksetsPerPoint
		remaining[i].Store(int64(n))
		totalJobs += n
		if n == 0 && onCurve != nil {
			onCurve(i, curves[i])
		}
	}
	if totalJobs == 0 {
		return curves, nil
	}
	if workers > totalJobs {
		workers = totalJobs
	}

	jobs := make(chan gridJob, workers)
	go func() {
		for ci := range camps {
			for pi := range curves[ci].Points {
				for s := 0; s < camps[ci].TasksetsPerPoint; s++ {
					jobs <- gridJob{scen: ci, point: pi, sample: s}
				}
			}
		}
		close(jobs)
	}()

	var mu sync.Mutex // guards curve points and firstErr
	var firstErr *jobError
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Generators are per-scenario and stateless across samples;
			// each worker lazily builds its own so no locking is needed.
			gens := make(map[int]*taskgen.Generator, len(camps))
			for jb := range jobs {
				c := &camps[jb.scen]
				g := gens[jb.scen]
				if g == nil {
					g = taskgen.NewGenerator(c.Scenario)
					gens[jb.scen] = g
				}
				runJob(c, g, curves[jb.scen], jb, &mu, &firstErr)
				if remaining[jb.scen].Add(-1) == 0 && onCurve != nil {
					onCurve(jb.scen, curves[jb.scen])
				}
			}
		}()
	}
	wg.Wait()
	return curves, firstErr
}

// runJob draws and analyzes one sample and folds the verdicts into the
// curve.
func runJob(c *Campaign, g *taskgen.Generator, curve *Curve, jb gridJob,
	mu *sync.Mutex, firstErr **jobError) {

	seed := seedFor(c.Seed, c.Scenario.Name(), jb.point, jb.sample)
	ts, err := generate(g, seed, curve.Points[jb.point].Utilization)
	if err != nil {
		mu.Lock()
		if *firstErr == nil || jb.less(gridJob{(*firstErr).scen, (*firstErr).point, (*firstErr).sample}) {
			*firstErr = &jobError{jb.scen, jb.point, jb.sample, err}
		}
		mu.Unlock()
		return
	}
	verdicts := make(map[analysis.Method]bool, len(c.Methods))
	for _, m := range c.Methods {
		verdicts[m] = analysis.Schedulable(m, ts, c.Options)
	}
	mu.Lock()
	pt := &curve.Points[jb.point]
	pt.Total++
	for m, ok := range verdicts {
		if ok {
			pt.Accepted[m]++
		}
	}
	mu.Unlock()
}
