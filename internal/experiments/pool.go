package experiments

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dpcpp/internal/analysis"
	"dpcpp/internal/taskgen"
)

// Workers normalizes a requested worker count: any value <= 0 means "one
// worker per logical CPU" (GOMAXPROCS). Every pool entry point applies it,
// so callers pass their configuration knob through untouched instead of
// each re-implementing the default.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ParallelFor runs fn(worker, i) for every i in [0, n) on up to workers
// goroutines (<= 0 means GOMAXPROCS, per Workers), handing indices out
// through one shared atomic counter so the pool is work-conserving: no
// worker idles while indices remain. The worker argument (in [0, workers))
// lets callers keep cheap worker-local state (caches, RNGs) without
// locking. ParallelFor returns when every index has been processed; fn
// must do its own synchronization on shared state.
//
// This is the one scheduling primitive behind the experiment grids
// (runPool), the differential audit (internal/audit) and the analysis
// server (internal/server): every heavy sweep in the repository drains
// through it.
func ParallelFor(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// gridJob identifies one (scenario, point, sample) work unit of a sweep.
type gridJob struct {
	scen, point, sample int
}

// less orders jobs lexicographically; used to report errors
// deterministically regardless of worker scheduling.
func (j gridJob) less(o gridJob) bool {
	if j.scen != o.scen {
		return j.scen < o.scen
	}
	if j.point != o.point {
		return j.point < o.point
	}
	return j.sample < o.sample
}

// jobError is the failure of one job, tagged with its coordinates.
type jobError struct {
	scen, point, sample int
	err                 error
}

// runPool is the grid-level scheduler behind Campaign.Run and RunGrid: one
// shared, work-conserving pool of workers (ParallelFor) drains every
// (scenario, point, sample) job of every campaign, so multi-scenario sweeps
// keep all cores busy instead of a per-scenario pool idling through each
// scenario's tail. Campaigns must already be normalized. onCurve, when
// non-nil, fires once per campaign the moment its last job completes (from
// a worker goroutine).
//
// Determinism: each sample's generator seed is a pure function of
// (campaign seed, scenario name, point, sample), and accepted counts are
// commutative sums, so results never depend on worker interleaving. The
// returned error, if any, is the one of the smallest failing job.
func runPool(camps []Campaign, workers int, onCurve func(int, *Curve)) ([]*Curve, *jobError) {
	curves := make([]*Curve, len(camps))
	remaining := make([]atomic.Int64, len(camps))
	// offsets[i] is the flat index of campaign i's first job; the flat
	// index space [0, offsets[len]) is what ParallelFor iterates.
	offsets := make([]int, len(camps)+1)
	for i, c := range camps {
		curves[i] = newCurve(c)
		n := len(curves[i].Points) * c.TasksetsPerPoint
		remaining[i].Store(int64(n))
		offsets[i+1] = offsets[i] + n
		if n == 0 && onCurve != nil {
			onCurve(i, curves[i])
		}
	}
	totalJobs := offsets[len(camps)]
	if totalJobs == 0 {
		return curves, nil
	}
	workers = Workers(workers)
	if workers > totalJobs {
		workers = totalJobs
	}

	var mu sync.Mutex // guards curve points and firstErr
	var firstErr *jobError
	// Worker-local state needs no locking: generators are per-scenario and
	// stateless across samples, and the analysis scratch plus verdict map
	// are recycled job after job, so a worker's steady-state sample costs
	// (almost) no allocations regardless of sweep size.
	locals := make([]workerLocal, workers)
	for w := range locals {
		locals[w] = workerLocal{
			gens:     make(map[int]*taskgen.Generator, len(camps)),
			sc:       analysis.NewScratch(),
			verdicts: make(map[analysis.Method]bool, 8),
		}
	}
	ParallelFor(workers, totalJobs, func(worker, idx int) {
		ci := sort.SearchInts(offsets[1:], idx+1)
		rem := idx - offsets[ci]
		samples := camps[ci].TasksetsPerPoint
		jb := gridJob{scen: ci, point: rem / samples, sample: rem % samples}

		c := &camps[ci]
		wl := &locals[worker]
		g := wl.gens[ci]
		if g == nil {
			g = taskgen.NewGenerator(c.Scenario)
			wl.gens[ci] = g
		}
		runJob(c, g, wl, curves[ci], jb, &mu, &firstErr)
		if remaining[ci].Add(-1) == 0 && onCurve != nil {
			onCurve(ci, curves[ci])
		}
	})
	return curves, firstErr
}

// workerLocal is one pool worker's recycled state; owned by exactly one
// worker goroutine for the lifetime of the sweep.
type workerLocal struct {
	gens     map[int]*taskgen.Generator
	sc       *analysis.Scratch
	verdicts map[analysis.Method]bool
}

// runJob draws and analyzes one sample and folds the verdicts into the
// curve.
func runJob(c *Campaign, g *taskgen.Generator, wl *workerLocal, curve *Curve,
	jb gridJob, mu *sync.Mutex, firstErr **jobError) {

	seed := SampleSeed(c.Seed, c.Scenario.Name(), jb.point, jb.sample)
	ts, err := GenerateSample(g, seed, curve.Points[jb.point].Utilization)
	if err != nil {
		mu.Lock()
		if *firstErr == nil || jb.less(gridJob{(*firstErr).scen, (*firstErr).point, (*firstErr).sample}) {
			*firstErr = &jobError{jb.scen, jb.point, jb.sample, err}
		}
		mu.Unlock()
		return
	}
	verdicts := wl.verdicts
	clear(verdicts)
	for _, m := range c.Methods {
		verdicts[m] = analysis.TestWith(wl.sc, m, ts, c.Options).Schedulable
	}
	mu.Lock()
	pt := &curve.Points[jb.point]
	pt.Total++
	for m, ok := range verdicts {
		if ok {
			pt.Accepted[m]++
		}
	}
	mu.Unlock()
}
