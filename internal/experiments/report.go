package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dpcpp/internal/analysis"
)

// WriteCurveCSV emits an acceptance-ratio curve as CSV: one row per
// utilization point, one column per method.
func WriteCurveCSV(w io.Writer, c *Curve) error {
	cw := csv.NewWriter(w)
	header := []string{"utilization", "normalized", "tasksets"}
	for _, m := range c.Methods {
		header = append(header, string(m))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, pt := range c.Points {
		row := []string{
			strconv.FormatFloat(pt.Utilization, 'f', 3, 64),
			strconv.FormatFloat(pt.Normalized, 'f', 3, 64),
			strconv.Itoa(pt.Total),
		}
		for _, m := range c.Methods {
			row = append(row, strconv.FormatFloat(c.Ratio(m, i), 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatCurve renders the curve as an aligned text table (the textual
// equivalent of one Fig. 2 subplot).
func FormatCurve(c *Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (%d tasksets/point)\n", c.Scenario.Name(), pointTotal(c))
	fmt.Fprintf(&b, "%-8s", "U/m")
	for _, m := range c.Methods {
		fmt.Fprintf(&b, "%12s", m)
	}
	b.WriteByte('\n')
	for i, pt := range c.Points {
		fmt.Fprintf(&b, "%-8.3f", pt.Normalized)
		for _, m := range c.Methods {
			fmt.Fprintf(&b, "%12.3f", c.Ratio(m, i))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pointTotal(c *Curve) int {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[0].Total
}

// FormatTable renders a pairwise count matrix in the layout of the paper's
// Tables 2 and 3: row method vs column method, count and percentage of
// scenarios.
func FormatTable(title string, g *GridResult, counts map[analysis.Method]map[analysis.Method]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d scenarios)\n", title, g.Scenarios)
	fmt.Fprintf(&b, "%-12s", "")
	for _, m := range g.Methods {
		fmt.Fprintf(&b, "%18s", m)
	}
	b.WriteByte('\n')
	for _, a := range g.Methods {
		fmt.Fprintf(&b, "%-12s", a)
		for _, bm := range g.Methods {
			if a == bm {
				fmt.Fprintf(&b, "%18s", "N/A")
				continue
			}
			n := counts[a][bm]
			pct := 0.0
			if g.Scenarios > 0 {
				pct = 100 * float64(n) / float64(g.Scenarios)
			}
			fmt.Fprintf(&b, "%18s", fmt.Sprintf("%d(%.1f%%)", n, pct))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatGrid renders both tables.
func FormatGrid(g *GridResult) string {
	return FormatTable("Table 2. Statistic for Dominance.", g, g.Dominance) + "\n" +
		FormatTable("Table 3. Statistic for Outperformance.", g, g.Outperformance)
}
