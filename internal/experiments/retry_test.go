package experiments

import (
	"math/rand"
	"testing"

	"dpcpp/internal/taskgen"
)

// TestRetrySeedDiscipline pins the retry-seed contract: attempt 0 is the
// sample seed itself (retry-free samples are invariant under the
// discipline), later attempts are FNV-derived, non-negative, and free of
// the stride aliasing the former seed+attempt*7919 scheme had, where the
// attempt chain of one sample walked straight through the base seeds of
// its neighbors.
func TestRetrySeedDiscipline(t *testing.T) {
	if got := retrySeed(12345, 0); got != 12345 {
		t.Fatalf("attempt 0 must be the sample seed, got %d", got)
	}
	seen := map[int64]bool{}
	for _, seed := range []int64{0, 1, 12345, 1 << 40} {
		for attempt := 0; attempt < 16; attempt++ {
			s := retrySeed(seed, attempt)
			if s < 0 {
				t.Fatalf("retrySeed(%d,%d) = %d, negative", seed, attempt, s)
			}
			if attempt > 0 && seen[s] {
				t.Fatalf("retrySeed(%d,%d) = %d collides within the test corpus", seed, attempt, s)
			}
			seen[s] = true
		}
	}
	// The specific aliasing of the old scheme: sample B seeded at A+7919
	// started exactly where sample A's first retry landed.
	if retrySeed(100, 1) == 100+7919 {
		t.Fatal("retry chain still strides into the neighboring sample's seed")
	}
}

// TestGoldenCorpusNeedsNoRetries proves the committed goldens are
// invariant under the retry-seed change: every sample of the fig2a golden
// run (seed 2020, n=2 — the corpus behind cmd/schedtest's fig2a_n2.golden
// and cmd/schedd's fig2a_response.golden) generates successfully on
// attempt 0, so no golden taskset ever reaches a retry seed. If a future
// generator change makes a golden sample retry, this test fails first,
// flagging that the goldens now depend on the retry discipline.
func TestGoldenCorpusNeedsNoRetries(t *testing.T) {
	scen, err := taskgen.Fig2Scenario("2a")
	if err != nil {
		t.Fatal(err)
	}
	scen = scen.DefaultStructure()
	g := taskgen.NewGenerator(scen)
	const baseSeed, samples = 2020, 2
	for pi, util := range taskgen.UtilizationPoints(scen.M) {
		for si := 0; si < samples; si++ {
			seed := SampleSeed(baseSeed, scen.Name(), pi, si)
			r := rand.New(rand.NewSource(retrySeed(seed, 0)))
			if _, err := g.Taskset(r, util); err != nil {
				t.Errorf("point %d sample %d: golden corpus retries (attempt 0 failed: %v)", pi, si, err)
			}
		}
	}
}
