package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"dpcpp/internal/rt"
	"dpcpp/internal/taskgen"
)

// TestParallelFor: every index is processed exactly once, worker IDs stay
// in range, and degenerate worker/index counts are handled.
func TestParallelFor(t *testing.T) {
	for _, workers := range []int{-4, 0, 1, 3, 64} {
		for _, n := range []int{0, 1, 7, 100} {
			eff := Workers(workers) // the normalized count ParallelFor promises
			if eff > n {
				eff = n
			}
			hits := make([]atomic.Int64, n)
			ParallelFor(workers, n, func(w, i int) {
				if w < 0 || w >= eff {
					t.Errorf("worker %d out of range (workers=%d n=%d eff=%d)", w, workers, n, eff)
				}
				hits[i].Add(1)
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d processed %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestWorkersNormalization: the pool owns the "<= 0 means GOMAXPROCS"
// default, so no caller (server, audit, grid) re-normalizes. Regression
// test for the former behavior where ParallelFor clamped 0 to a single
// worker and every caller had to pre-substitute GOMAXPROCS itself.
func TestWorkersNormalization(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, req := range []int{0, -1, -100} {
		if got := Workers(req); got != gmp {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS = %d", req, got, gmp)
		}
	}
	for _, req := range []int{1, 2, 17} {
		if got := Workers(req); got != req {
			t.Errorf("Workers(%d) = %d, want it unchanged", req, got)
		}
	}
	if gmp < 2 {
		t.Skip("GOMAXPROCS == 1: cannot observe multi-worker fan-out")
	}
	// ParallelFor(0, ...) must actually fan out to GOMAXPROCS workers, not
	// serialize on one: with enough blocking indices, every worker ID in
	// [0, GOMAXPROCS) shows up.
	var seen sync.Map
	barrier := make(chan struct{})
	var arrived atomic.Int64
	ParallelFor(0, gmp, func(w, i int) {
		seen.Store(w, true)
		if arrived.Add(1) == int64(gmp) {
			close(barrier) // last worker in releases everyone
		}
		<-barrier
	})
	for w := 0; w < gmp; w++ {
		if _, ok := seen.Load(w); !ok {
			t.Fatalf("worker %d never ran: ParallelFor(0, ...) did not use GOMAXPROCS workers", w)
		}
	}
}

// secondScenario differs from fastScenario so cross-scenario mixing in the
// shared pool is actually exercised.
func secondScenario() taskgen.Scenario {
	s := fastScenario()
	s.M = 4
	s.NumRes = taskgen.IntRange{Lo: 1, Hi: 2}
	s.PeriodLo = 5 * rt.Millisecond
	return s
}

// TestGridPoolMatchesPerCampaignRuns: the grid-level shared pool must
// produce, per scenario, exactly the curve a standalone Campaign.Run
// produces — worker interleaving across scenarios must never leak into
// results.
func TestGridPoolMatchesPerCampaignRuns(t *testing.T) {
	tmpl := fastCampaign()
	tmpl.TasksetsPerPoint = 3
	scens := []taskgen.Scenario{fastScenario(), secondScenario()}

	curves, err := RunGrid(tmpl, scens)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	for i, s := range scens {
		c := tmpl
		c.Scenario = s
		solo, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(solo.Points) != len(curves[i].Points) {
			t.Fatalf("scenario %d: point count %d != %d", i, len(curves[i].Points), len(solo.Points))
		}
		for pi := range solo.Points {
			if solo.Points[pi].Total != curves[i].Points[pi].Total {
				t.Errorf("scenario %d point %d: totals diverge", i, pi)
			}
			for _, m := range solo.Methods {
				if solo.Points[pi].Accepted[m] != curves[i].Points[pi].Accepted[m] {
					t.Errorf("scenario %d point %d method %s: grid %d != solo %d",
						i, pi, m, curves[i].Points[pi].Accepted[m], solo.Points[pi].Accepted[m])
				}
			}
		}
	}
}

// TestGridPoolIndependentOfWorkerCount: one worker and many workers must
// agree bit-for-bit (deterministic seeding).
func TestGridPoolIndependentOfWorkerCount(t *testing.T) {
	scens := []taskgen.Scenario{fastScenario(), secondScenario()}
	run := func(par int) []*Curve {
		tmpl := fastCampaign()
		tmpl.TasksetsPerPoint = 2
		tmpl.Parallelism = par
		curves, err := RunGrid(tmpl, scens)
		if err != nil {
			t.Fatal(err)
		}
		return curves
	}
	serial, parallel := run(1), run(8)
	for i := range serial {
		for pi := range serial[i].Points {
			for _, m := range serial[i].Methods {
				if serial[i].Points[pi].Accepted[m] != parallel[i].Points[pi].Accepted[m] {
					t.Fatalf("scenario %d point %d method %s: 1-worker %d != 8-worker %d",
						i, pi, m, serial[i].Points[pi].Accepted[m], parallel[i].Points[pi].Accepted[m])
				}
			}
		}
	}
}

// TestRunGridProgressCallback: exactly one completion callback per
// scenario, with the curve identical to the returned one.
func TestRunGridProgressCallback(t *testing.T) {
	tmpl := fastCampaign()
	tmpl.TasksetsPerPoint = 2
	scens := []taskgen.Scenario{fastScenario(), secondScenario()}

	var mu sync.Mutex
	seen := map[int]*Curve{}
	curves, err := RunGridProgress(tmpl, scens, func(i int, c *Curve) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := seen[i]; dup {
			t.Errorf("scenario %d completed twice", i)
		}
		seen[i] = c
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(scens) {
		t.Fatalf("got %d callbacks, want %d", len(seen), len(scens))
	}
	for i, c := range seen {
		if curves[i] != c {
			t.Errorf("scenario %d: callback curve is not the returned curve", i)
		}
		for pi := range c.Points {
			if c.Points[pi].Total != tmpl.TasksetsPerPoint {
				t.Errorf("scenario %d point %d incomplete at callback time", i, pi)
			}
		}
	}
}
