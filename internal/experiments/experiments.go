// Package experiments regenerates the paper's evaluation (Sec. VII): the
// acceptance-ratio curves of Fig. 2 and the dominance/outperformance
// statistics of Tables 2 and 3, over the full 216-scenario grid or any
// subset of it. Runs are deterministic: every taskset's seed derives from
// the scenario name, the utilization point and the sample index, so
// results are reproducible regardless of worker scheduling.
//
//schedlint:deterministic
package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/stats"
	"dpcpp/internal/taskgen"
)

// Campaign configures one acceptance-ratio sweep for one scenario.
type Campaign struct {
	Scenario         taskgen.Scenario
	Methods          []analysis.Method
	TasksetsPerPoint int
	Seed             int64
	Options          analysis.Options
	// Parallelism bounds the worker pool (0 = GOMAXPROCS).
	Parallelism int
}

// Point is one utilization point of an acceptance-ratio curve.
type Point struct {
	Utilization float64 // total taskset utilization
	Normalized  float64 // Utilization / m
	Accepted    map[analysis.Method]int
	Total       int
}

// Curve is the acceptance-ratio data of one scenario (one Fig. 2 subplot).
type Curve struct {
	Scenario taskgen.Scenario
	Methods  []analysis.Method
	Points   []Point
}

// Ratio returns the acceptance ratio of the method at point i.
func (c *Curve) Ratio(m analysis.Method, i int) float64 {
	return stats.Ratio(c.Points[i].Accepted[m], c.Points[i].Total)
}

// TotalAccepted returns how many tasksets the method scheduled across the
// whole sweep (the paper's "scheduled more task sets" outperformance
// metric).
func (c *Curve) TotalAccepted(m analysis.Method) int {
	n := 0
	for i := range c.Points {
		n += c.Points[i].Accepted[m]
	}
	return n
}

// SampleSeed derives the deterministic RNG seed of one sample: a pure
// function of (base seed, scenario name, utilization point, sample index).
// Every consumer of the grid — runPool here, and the analysis server's
// streaming /v1/grid endpoint — must derive seeds through it, so the same
// sweep yields bit-identical tasksets regardless of which frontend ran it.
func SampleSeed(base int64, scenario string, point, sample int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", base, scenario, point, sample)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// retrySeed derives the RNG seed of one generation attempt. Attempt 0 is
// the sample's own seed, so retry-free samples are untouched by the
// discipline; later attempts re-derive through the same FNV hashing as
// SampleSeed. A fixed additive stride (the former seed + attempt*7919)
// is not collision-free: the attempt chains of two samples whose seeds
// differ by a multiple of the stride walk the same seed values, feeding
// identical tasksets into both samples' statistics.
func retrySeed(seed int64, attempt int) int64 {
	if attempt == 0 {
		return seed
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|retry|%d", seed, attempt)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// GenerateSample draws the taskset of one sample, retrying with derived
// seeds when the structural constraints cannot be met for the drawn
// parameters. The retry discipline is part of the determinism contract:
// callers that reimplement it would diverge from runPool on hard draws.
func GenerateSample(g *taskgen.Generator, seed int64, util float64) (*model.Taskset, error) {
	var lastErr error
	for attempt := 0; attempt < 16; attempt++ {
		r := rand.New(rand.NewSource(retrySeed(seed, attempt)))
		ts, err := g.Taskset(r, util)
		if err == nil {
			return ts, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// normalized returns the campaign with defaults applied and the scenario
// structure resolved.
func (c Campaign) normalized() Campaign {
	if len(c.Methods) == 0 {
		c.Methods = analysis.Methods()
	}
	if c.TasksetsPerPoint <= 0 {
		c.TasksetsPerPoint = 25
	}
	c.Scenario = c.Scenario.DefaultStructure()
	return c
}

// workers passes the Parallelism knob through: the pool itself normalizes
// <= 0 to GOMAXPROCS (see Workers).
func (c Campaign) workers() int { return c.Parallelism }

// newCurve allocates the empty acceptance-ratio curve of one campaign.
func newCurve(c Campaign) *Curve {
	curve := &Curve{Scenario: c.Scenario, Methods: c.Methods}
	for _, u := range taskgen.UtilizationPoints(c.Scenario.M) {
		curve.Points = append(curve.Points, Point{
			Utilization: u,
			Normalized:  u / float64(c.Scenario.M),
			Accepted:    make(map[analysis.Method]int),
		})
	}
	return curve
}

// Run sweeps the scenario's utilization points and returns the curve.
func (c Campaign) Run() (*Curve, error) {
	c = c.normalized()
	curves, je := runPool([]Campaign{c}, c.workers(), nil)
	if je != nil {
		return curves[0], fmt.Errorf("point %d sample %d: %w", je.point, je.sample, je.err)
	}
	return curves[0], nil
}

// Dominates implements the paper's footnote: A dominates B when A's
// acceptance ratio is strictly higher at some tested point and never lower
// at any point.
func Dominates(c *Curve, a, b analysis.Method) bool {
	higherSomewhere := false
	for i := range c.Points {
		ra, rb := c.Ratio(a, i), c.Ratio(b, i)
		if ra < rb {
			return false
		}
		if ra > rb {
			higherSomewhere = true
		}
	}
	return higherSomewhere
}

// Outperforms implements the paper's footnote: A outperforms B when A
// scheduled more tasksets than B over the sweep.
func Outperforms(c *Curve, a, b analysis.Method) bool {
	return c.TotalAccepted(a) > c.TotalAccepted(b)
}

// GridResult aggregates Tables 2 and 3 over a set of scenario curves.
type GridResult struct {
	Methods        []analysis.Method
	Scenarios      int
	Dominance      map[analysis.Method]map[analysis.Method]int
	Outperformance map[analysis.Method]map[analysis.Method]int
}

// Aggregate counts pairwise dominance/outperformance across curves.
func Aggregate(curves []*Curve, methods []analysis.Method) *GridResult {
	g := &GridResult{
		Methods:        methods,
		Scenarios:      len(curves),
		Dominance:      make(map[analysis.Method]map[analysis.Method]int),
		Outperformance: make(map[analysis.Method]map[analysis.Method]int),
	}
	for _, a := range methods {
		g.Dominance[a] = make(map[analysis.Method]int)
		g.Outperformance[a] = make(map[analysis.Method]int)
	}
	for _, c := range curves {
		for _, a := range methods {
			for _, b := range methods {
				if a == b {
					continue
				}
				if Dominates(c, a, b) {
					g.Dominance[a][b]++
				}
				if Outperforms(c, a, b) {
					g.Outperformance[a][b]++
				}
			}
		}
	}
	return g
}

// RunGrid executes campaigns for every scenario in the grid, reusing the
// campaign template's methods, sample count and options. All scenarios
// share one grid-level worker pool (see RunGridProgress), so a 216-scenario
// sweep saturates every core instead of draining scenarios one at a time.
func RunGrid(template Campaign, scenarios []taskgen.Scenario) ([]*Curve, error) {
	return RunGridProgress(template, scenarios, nil)
}

// RunGridProgress is RunGrid with a completion callback: onCurve(i, c) fires
// exactly once per scenario, as soon as every job of scenarios[i] has
// drained, with c == the returned curves[i]. Because scenarios complete in
// work-pool order, callbacks may arrive out of scenario order and are
// invoked from worker goroutines; callbacks must synchronize any shared
// state of their own.
//
// Results are bit-identical to running each scenario's Campaign alone:
// every sample's RNG seed derives from (seed, scenario, point, sample),
// never from worker scheduling. Unlike the former serial implementation,
// all scenarios run to completion even when one fails; the returned error
// is the failure of the lexicographically smallest (scenario, point,
// sample) job, deterministically.
func RunGridProgress(template Campaign, scenarios []taskgen.Scenario,
	onCurve func(i int, c *Curve)) ([]*Curve, error) {

	camps := make([]Campaign, len(scenarios))
	for i, s := range scenarios {
		c := template
		c.Scenario = s
		camps[i] = c.normalized()
	}
	curves, je := runPool(camps, template.workers(), onCurve)
	if je != nil {
		return curves, fmt.Errorf("scenario %s: point %d sample %d: %w",
			camps[je.scen].Scenario.Name(), je.point, je.sample, je.err)
	}
	return curves, nil
}
