package experiments

import (
	"context"
	"sync/atomic"

	"dpcpp/internal/model"
	"dpcpp/internal/taskgen"
)

// ScenarioSweep drains the (utilization point, sample) jobs of one scenario
// through the shared pool with per-point completion callbacks. It is the
// primitive under every streaming or resumable sweep frontend: the analysis
// server's GET /v1/grid streams a point the moment its last sample lands,
// and the asynchronous sweep-job runner checkpoints completed points so a
// restarted daemon re-runs only the remainder.
//
// Points selects which utilization-point indices to run (indices into
// taskgen.UtilizationPoints(Scenario.M)); nil means all of them. Because
// every sample's generator seed is SampleSeed(Seed, scenario, point,
// sample) — a pure function, independent of which other points run or how
// workers interleave — running points {7} alone draws bit-identical
// tasksets to a full sweep's point 7. That subsetting determinism is what
// makes checkpoint/resume exact: a resumed sweep's curve equals an
// uninterrupted run's, byte for byte.
type ScenarioSweep struct {
	// Scenario must have its structure resolved (DefaultStructure).
	Scenario taskgen.Scenario
	// Seed is the base seed every sample seed derives from.
	Seed int64
	// Samples is the per-point sample count (<= 0 means 25, matching
	// Campaign).
	Samples int
	// Points lists the utilization-point indices to run; nil = all.
	Points []int
	// Workers bounds the pool (<= 0 = GOMAXPROCS).
	Workers int
}

// Run executes the sweep. For every (point, sample) job it draws the
// deterministic taskset and calls analyze(pi, si, ts, genErr) — with ts nil
// and genErr set when generation failed structurally. When a point's last
// sample drains, onPoint(pi, complete) fires exactly once, from a worker
// goroutine; complete reports whether every sample of the point actually
// ran. A canceled ctx stops new generation and analysis work — remaining
// jobs drain without calling analyze, and their points report
// complete=false — so callers never checkpoint a partially-run point.
// Either callback may be nil.
func (sw ScenarioSweep) Run(ctx context.Context,
	analyze func(pi, si int, ts *model.Taskset, genErr error),
	onPoint func(pi int, complete bool)) {

	if ctx == nil {
		ctx = context.Background()
	}
	samples := sw.Samples
	if samples <= 0 {
		samples = 25
	}
	utils := taskgen.UtilizationPoints(sw.Scenario.M)
	points := sw.Points
	if points == nil {
		points = make([]int, len(utils))
		for i := range points {
			points[i] = i
		}
	}
	if len(points) == 0 {
		return
	}

	// left/ran are indexed like points (the sweep's local order), not like
	// the scenario's full point list.
	type pointState struct {
		left atomic.Int64
		ran  atomic.Int64
	}
	states := make([]pointState, len(points))
	for i := range states {
		states[i].left.Store(int64(samples))
	}

	workers := Workers(sw.Workers)
	gens := make([]*taskgen.Generator, workers)
	name := sw.Scenario.Name()
	ParallelFor(workers, len(points)*samples, func(worker, idx int) {
		li, si := idx/samples, idx%samples
		pi := points[li]
		st := &states[li]
		if ctx.Err() == nil {
			g := gens[worker]
			if g == nil {
				g = taskgen.NewGenerator(sw.Scenario)
				gens[worker] = g
			}
			seed := SampleSeed(sw.Seed, name, pi, si)
			ts, err := GenerateSample(g, seed, utils[pi])
			if analyze != nil {
				analyze(pi, si, ts, err)
			}
			st.ran.Add(1)
		}
		if st.left.Add(-1) == 0 && onPoint != nil {
			onPoint(pi, st.ran.Load() == int64(samples))
		}
	})
}
