package experiments

import (
	"strings"
	"testing"

	"dpcpp/internal/analysis"
	"dpcpp/internal/rt"
	"dpcpp/internal/taskgen"
)

// fastScenario keeps DAGs small so the full pipeline runs quickly in tests.
func fastScenario() taskgen.Scenario {
	return taskgen.Scenario{
		M:          8,
		NumRes:     taskgen.IntRange{Lo: 2, Hi: 4},
		UAvg:       1.5,
		PAccess:    0.5,
		NReq:       taskgen.IntRange{Lo: 1, Hi: 10},
		CSLen:      taskgen.TimeRange{Lo: 15 * rt.Microsecond, Hi: 50 * rt.Microsecond},
		VertsRange: taskgen.IntRange{Lo: 8, Hi: 20},
		EdgeProb:   0.1,
		PeriodLo:   10 * rt.Millisecond,
		PeriodHi:   100 * rt.Millisecond,
	}
}

func fastCampaign() Campaign {
	return Campaign{
		Scenario:         fastScenario(),
		TasksetsPerPoint: 6,
		Seed:             1,
	}
}

func TestCampaignRunShape(t *testing.T) {
	curve, err := fastCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) == 0 {
		t.Fatal("no points")
	}
	for i, pt := range curve.Points {
		if pt.Total != 6 {
			t.Errorf("point %d: Total = %d, want 6", i, pt.Total)
		}
		if pt.Normalized < 0 || pt.Normalized > 1.0001 {
			t.Errorf("point %d: normalized %g out of range", i, pt.Normalized)
		}
		for _, m := range curve.Methods {
			if n := pt.Accepted[m]; n < 0 || n > pt.Total {
				t.Errorf("point %d method %s: accepted %d of %d", i, m, n, pt.Total)
			}
		}
	}
}

func TestCampaignMonotoneTrends(t *testing.T) {
	curve, err := fastCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	// At the lowest utilization every method should accept nearly all
	// tasksets; at U/m = 1 (total utilization = m) acceptance must be 0
	// for every method (no spare capacity for blocking or even for the
	// federated assignment itself).
	first, last := 0, len(curve.Points)-1
	for _, m := range curve.Methods {
		if r := curve.Ratio(m, first); r < 0.5 {
			t.Errorf("%s: acceptance at lowest utilization = %g, want >= 0.5", m, r)
		}
		if r := curve.Ratio(m, last); r > 0.5 {
			t.Errorf("%s: acceptance at full utilization = %g, want <= 0.5", m, r)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := fastCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fastCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		for _, m := range a.Methods {
			if a.Points[i].Accepted[m] != b.Points[i].Accepted[m] {
				t.Fatalf("nondeterministic results at point %d method %s: %d vs %d",
					i, m, a.Points[i].Accepted[m], b.Points[i].Accepted[m])
			}
		}
	}
}

func TestFedFPEnvelopeOnCurve(t *testing.T) {
	curve, err := fastCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range curve.Points {
		fed := curve.Ratio(analysis.FEDFP, i)
		for _, m := range []analysis.Method{analysis.DPCPpEP, analysis.DPCPpEN, analysis.SPIN, analysis.LPP} {
			if curve.Ratio(m, i) > fed+1e-9 {
				t.Errorf("point %d: %s ratio %g exceeds FED-FP envelope %g",
					i, m, curve.Ratio(m, i), fed)
			}
		}
	}
}

func TestEPDominatesENOnCurve(t *testing.T) {
	curve, err := fastCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range curve.Points {
		if curve.Ratio(analysis.DPCPpEP, i) < curve.Ratio(analysis.DPCPpEN, i) {
			t.Errorf("point %d: EP ratio below EN ratio", i)
		}
	}
}

func TestDominanceAndOutperformance(t *testing.T) {
	// Hand-build a curve to verify the definitions exactly.
	mA, mB, mC := analysis.Method("A"), analysis.Method("B"), analysis.Method("C")
	c := &Curve{Methods: []analysis.Method{mA, mB, mC}}
	add := func(a, b, cc int) {
		c.Points = append(c.Points, Point{
			Total:    10,
			Accepted: map[analysis.Method]int{mA: a, mB: b, mC: cc},
		})
	}
	add(10, 10, 9)
	add(8, 6, 9)
	add(4, 4, 3)

	if !Dominates(c, mA, mB) {
		t.Error("A must dominate B (never lower, higher once)")
	}
	if Dominates(c, mB, mA) {
		t.Error("B must not dominate A")
	}
	if Dominates(c, mA, mC) || Dominates(c, mC, mA) {
		t.Error("A and C cross; neither dominates")
	}
	if !Outperforms(c, mA, mB) {
		t.Error("A (22) must outperform B (20)")
	}
	if !Outperforms(c, mA, mC) {
		t.Error("A (22) must outperform C (21)")
	}
	if Outperforms(c, mB, mA) {
		t.Error("B must not outperform A")
	}

	g := Aggregate([]*Curve{c}, c.Methods)
	if g.Dominance[mA][mB] != 1 || g.Dominance[mB][mA] != 0 {
		t.Errorf("aggregate dominance wrong: %v", g.Dominance)
	}
	if g.Outperformance[mA][mC] != 1 {
		t.Errorf("aggregate outperformance wrong: %v", g.Outperformance)
	}
}

func TestWriteCurveCSV(t *testing.T) {
	curve, err := fastCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCurveCSV(&b, curve); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(curve.Points)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(curve.Points)+1)
	}
	if !strings.HasPrefix(lines[0], "utilization,normalized,tasksets,DPCP-p-EP") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestFormatCurveAndTables(t *testing.T) {
	curve, err := fastCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	text := FormatCurve(curve)
	if !strings.Contains(text, "DPCP-p-EP") || !strings.Contains(text, "U/m") {
		t.Errorf("FormatCurve missing columns:\n%s", text)
	}
	g := Aggregate([]*Curve{curve}, curve.Methods)
	tables := FormatGrid(g)
	if !strings.Contains(tables, "Table 2") || !strings.Contains(tables, "Table 3") {
		t.Errorf("FormatGrid output incomplete:\n%s", tables)
	}
	if !strings.Contains(tables, "N/A") {
		t.Error("diagonal must render N/A")
	}
}

func TestSeedForIsStable(t *testing.T) {
	a := SampleSeed(1, "scen", 2, 3)
	b := SampleSeed(1, "scen", 2, 3)
	if a != b {
		t.Error("seedFor not deterministic")
	}
	if SampleSeed(1, "scen", 2, 4) == a || SampleSeed(2, "scen", 2, 3) == a {
		t.Error("seedFor collisions across inputs")
	}
}

func TestRunGridSubset(t *testing.T) {
	scens := []taskgen.Scenario{fastScenario()}
	tmpl := fastCampaign()
	tmpl.TasksetsPerPoint = 3
	curves, err := RunGrid(tmpl, scens)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 1 {
		t.Fatalf("got %d curves", len(curves))
	}
}
