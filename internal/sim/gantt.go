package sim

import (
	"fmt"
	"sort"
	"strings"

	"dpcpp/internal/rt"
)

// Gantt renders the recorded trace as an ASCII chart, one row per
// processor, one column per bucket of the given width. Agents render as
// 'A', critical sections as '#', non-critical execution as '=', idle as
// '.'. It is the textual counterpart of the paper's Fig. 1(b).
func Gantt(spans []Span, numProcs int, horizon, bucket rt.Time) string {
	if bucket <= 0 || horizon <= 0 {
		return ""
	}
	cols := int(rt.CeilDiv(horizon, bucket))
	rows := make([][]byte, numProcs)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", cols))
	}
	for _, sp := range spans {
		if int(sp.Proc) >= numProcs || sp.To < 0 {
			continue
		}
		from := int(sp.From / bucket)
		to := int(rt.CeilDiv(sp.To, bucket))
		if to > cols {
			to = cols
		}
		ch := byte('=')
		if sp.Agent {
			ch = 'A'
		} else if sp.IsCS {
			ch = '#'
		}
		for c := from; c < to; c++ {
			rows[sp.Proc][c] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %s, bucket %s\n", rt.FormatTime(horizon), rt.FormatTime(bucket))
	for i, row := range rows {
		fmt.Fprintf(&b, "P%-3d |%s|\n", i, row)
	}
	b.WriteString("legend: '=' non-critical  '#' local CS  'A' agent (global CS)  '.' idle\n")
	return b.String()
}

// TraceLog renders the trace as a chronological event list.
func TraceLog(spans []Span) string {
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].From != sorted[b].From {
			return sorted[a].From < sorted[b].From
		}
		return sorted[a].Proc < sorted[b].Proc
	})
	var b strings.Builder
	for _, sp := range sorted {
		fmt.Fprintf(&b, "[%8s, %8s) P%-2d %s\n",
			rt.FormatTime(sp.From), rt.FormatTime(sp.To), sp.Proc, sp.What)
	}
	return b.String()
}
