package sim

import (
	"fmt"
	"sort"

	"dpcpp/internal/rt"
)

// checkInvariants runs after every scheduling step. Violations are recorded
// rather than fatal so a test can inspect all of them.
func (s *Sim) checkInvariants() {
	s.checkMutualExclusion()
	s.checkCeilingRule()
	s.checkWorkConservation()
	s.checkAgentPriority()
	s.checkLemma1()
}

func (s *Sim) violate(format string, args ...interface{}) {
	if len(s.violations) < 100 {
		s.violations = append(s.violations,
			fmt.Sprintf("t=%s: %s", rt.FormatTime(s.now), fmt.Sprintf(format, args...)))
	}
}

// checkMutualExclusion: at most one executor per locked resource, and every
// executing critical section holds its lock.
func (s *Sim) checkMutualExclusion() {
	execs := make(map[rt.ResourceID]int)
	for _, k := range s.procs {
		if k.curReq != nil {
			execs[k.curReq.res.q]++
			if k.curReq.res.lockedBy != k.curReq {
				s.violate("request %v executes l%d without holding the lock", k.curReq.vr, k.curReq.res.q)
			}
		}
		if k.curVert != nil && !k.spinning {
			seg := k.curVert.segs[k.curVert.segIdx]
			if seg.IsCS() {
				execs[seg.Res]++
				if s.res[seg.Res].lockedBy != k.curVert {
					s.violate("vertex %v executes local CS l%d without the lock", k.curVert, seg.Res)
				}
			}
		}
	}
	// Violations are part of the audit's serialized evidence; iterate in
	// sorted resource order so identical runs report identical bytes.
	qs := make([]rt.ResourceID, 0, len(execs))
	for q := range execs {
		qs = append(qs, q)
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	for _, q := range qs {
		if execs[q] > 1 {
			s.violate("mutual exclusion violated on l%d: %d concurrent executors", q, execs[q])
		}
	}
}

// checkCeilingRule: every granted-and-unfinished request must have had
// priority above the ceiling of the other locked resources on its
// processor at grant time. We check the weaker steady-state form: two
// locked resources on one processor imply the later-granted holder
// outranks the earlier resource's ceiling. With DisableCeiling the check
// is skipped.
func (s *Sim) checkCeilingRule() {
	if s.cfg.DisableCeiling || s.cfg.Protocol != ProtocolDPCPp {
		return
	}
	perProc := make(map[rt.ProcID][]*request)
	for _, rs := range s.res {
		if !rs.global || rs.lockedBy == nil {
			continue
		}
		req := rs.lockedBy.(*request)
		perProc[rs.proc] = append(perProc[rs.proc], req)
	}
	// Sorted processor order keeps the violation log byte-deterministic.
	procs := make([]rt.ProcID, 0, len(perProc))
	for k := range perProc {
		procs = append(procs, k)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, k := range procs {
		reqs := perProc[k]
		for _, a := range reqs {
			for _, b := range reqs {
				if a == b || a.granted < b.granted {
					continue
				}
				// a granted at or after b: a must outrank b's resource ceiling.
				if a.granted > b.granted && a.prio <= b.res.ceiling {
					s.violate("ceiling violated on proc %d: request prio %d granted over locked l%d (ceiling %d)",
						k, a.prio, b.res.q, b.res.ceiling)
				}
			}
		}
	}
}

// checkWorkConservation: no processor may idle while any task assigned to
// it (heavy owner or co-located light) has ready vertices.
func (s *Sim) checkWorkConservation() {
	for _, k := range s.procs {
		if k.busy() {
			continue
		}
		if len(k.rqG) > 0 {
			s.violate("proc %d idle with ready agent requests", k.id)
		}
		check := func(st *taskState) {
			if st != nil && len(st.rqN)+len(st.rqL) > 0 {
				s.violate("proc %d idle while task %d has %d ready vertices",
					k.id, st.t.ID, len(st.rqN)+len(st.rqL))
			}
		}
		check(k.owner)
		for _, st := range k.lights {
			check(st)
		}
	}
}

// checkAgentPriority: agents outrank normal vertices — a processor never
// runs a vertex while a ready agent request waits, and never runs a
// lower-priority agent while a higher-priority one is ready.
func (s *Sim) checkAgentPriority() {
	for _, k := range s.procs {
		if k.curVert != nil && len(k.rqG) > 0 {
			s.violate("proc %d runs a vertex while %d agent requests are ready", k.id, len(k.rqG))
		}
		if k.curReq != nil {
			for _, r := range k.rqG {
				if r != k.curReq && r.prio > k.curReq.prio {
					s.violate("proc %d runs agent prio %d while prio %d is ready",
						k.id, k.curReq.prio, r.prio)
				}
			}
		}
	}
}

// checkLemma1: with the ceiling enabled, no pending request may have been
// blocked by more than one distinct lower-priority request.
func (s *Sim) checkLemma1() {
	if s.cfg.DisableCeiling || s.cfg.Protocol != ProtocolDPCPp {
		return
	}
	for _, req := range s.pending {
		if len(req.blockedBy) > 1 {
			s.violate("Lemma 1 violated: request by %v blocked by %d lower-priority requests",
				req.vr, len(req.blockedBy))
		}
	}
}
