package sim

import (
	"math/rand"
	"testing"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/taskgen"
)

// figure1Tasks builds the two DAG tasks of the paper's Fig. 1(a), with
// 1us as the figure's unit time. l0 plays the paper's global l1 (red,
// used by v_{i,2} and v_{j,3}); l1 plays the local l2 (blue, used by
// v_{i,3} and v_{i,4}).
func figure1Tasks(t *testing.T) *model.Taskset {
	t.Helper()
	ts := model.NewTaskset(4, 2)

	gi := model.NewTask(0, 40*us, 40*us)
	wi := []rt.Time{2, 3, 2, 2, 4, 2, 2, 2}
	for _, c := range wi {
		gi.AddVertex(c * us)
	}
	for _, e := range [][2]rt.VertexID{{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 5}, {2, 5}, {3, 6}, {4, 6}, {5, 7}, {6, 7}} {
		gi.AddEdge(e[0], e[1])
	}
	gi.AddRequest(1, 0, 1, 2*us) // v_{i,2} uses the global resource
	gi.AddRequest(2, 1, 1, 2*us) // v_{i,3} uses the local resource
	gi.AddRequest(3, 1, 1, 2*us) // v_{i,4} uses the local resource
	ts.Add(gi)

	gj := model.NewTask(1, 30*us, 30*us)
	wj := []rt.Time{1, 3, 3, 4, 4, 1}
	for _, c := range wj {
		gj.AddVertex(c * us)
	}
	for _, e := range [][2]rt.VertexID{{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 5}, {2, 5}, {3, 5}, {4, 5}} {
		gj.AddEdge(e[0], e[1])
	}
	gj.AddRequest(2, 0, 1, 2*us) // v_{j,3} uses the global resource
	ts.Add(gj)

	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestFigure1Schedule(t *testing.T) {
	ts := figure1Tasks(t)
	p := partition.New(ts)
	p.Assign(0, 2)        // tau_i on procs 0,1
	p.Assign(1, 2)        // tau_j on procs 2,3
	p.PlaceResource(0, 1) // the global resource on tau_i's second processor (paper: p2)

	s, err := New(ts, p, Config{Horizon: 30 * us, Placement: FrontCS, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v\n%s", v, TraceLog(s.Trace()))
	}
	if m.DeadlineMisses != 0 {
		t.Errorf("deadline misses: %d", m.DeadlineMisses)
	}
	if m.MaxLowPrioBlockers > 1 {
		t.Errorf("Lemma 1: MaxLowPrioBlockers = %d", m.MaxLowPrioBlockers)
	}
	// Both jobs complete; the paper's schedule finishes both by t=12 with
	// its specific interleaving. Our deterministic FrontCS layout is close
	// but not identical; sanity-check the responses stay in that regime
	// and respect the trivial lower bounds (L* = 10 and 8).
	if m.MaxResponse[0] < 10*us || m.MaxResponse[0] > 20*us {
		t.Errorf("response(G_i) = %s, want within [10us, 20us]\n%s",
			rt.FormatTime(m.MaxResponse[0]), Gantt(s.Trace(), 4, 20*us, us))
	}
	if m.MaxResponse[1] < 8*us || m.MaxResponse[1] > 16*us {
		t.Errorf("response(G_j) = %s, want within [8us, 16us]",
			rt.FormatTime(m.MaxResponse[1]))
	}
	// Exactly two global requests are served, on processor 1, by agents.
	if m.Requests != 2 {
		t.Errorf("Requests = %d, want 2", m.Requests)
	}
	agentProcs := map[rt.ProcID]bool{}
	for _, sp := range s.Trace() {
		if sp.Agent {
			agentProcs[sp.Proc] = true
		}
	}
	if len(agentProcs) != 1 || !agentProcs[1] {
		t.Errorf("agents executed on %v, want only proc 1", agentProcs)
	}
}

// TestSimNeverExceedsAnalysis is the repository's gold soundness check:
// for randomly generated tasksets that DPCP-p-EP declares schedulable, the
// simulated worst response observed over several synchronous hyperperiods
// must stay at or below the analytical bound, for every CS placement.
func TestSimNeverExceedsAnalysis(t *testing.T) {
	scen := taskgen.Scenario{
		M:          8,
		NumRes:     taskgen.IntRange{Lo: 2, Hi: 4},
		UAvg:       1.5,
		PAccess:    0.75,
		NReq:       taskgen.IntRange{Lo: 1, Hi: 10},
		CSLen:      taskgen.TimeRange{Lo: 15 * us, Hi: 50 * us},
		VertsRange: taskgen.IntRange{Lo: 6, Hi: 16},
		EdgeProb:   0.15,
		PeriodLo:   1 * rt.Millisecond,
		PeriodHi:   8 * rt.Millisecond,
	}
	g := taskgen.NewGenerator(scen)

	checked := 0
	for seed := int64(0); seed < 40 && checked < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		ts, err := g.Taskset(r, 2.0+r.Float64()*3)
		if err != nil {
			continue
		}
		res := analysis.Test(analysis.DPCPpEP, ts, analysis.Options{})
		if !res.Schedulable {
			continue
		}
		checked++
		var horizon rt.Time
		for _, task := range ts.Tasks {
			if task.Period > horizon {
				horizon = task.Period
			}
		}
		horizon *= 3

		for _, placement := range []CSPlacement{SpreadCS, FrontCS, BackCS} {
			s, err := New(ts, res.Partition, Config{Horizon: horizon, Placement: placement})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			m, err := s.Run()
			if err != nil {
				t.Fatalf("seed %d placement %d: %v", seed, placement, err)
			}
			if v := s.Violations(); len(v) > 0 {
				t.Fatalf("seed %d placement %d: violations: %v", seed, placement, v)
			}
			if m.DeadlineMisses != 0 {
				t.Errorf("seed %d placement %d: %d deadline misses on an analyzed-schedulable set",
					seed, placement, m.DeadlineMisses)
			}
			if m.MaxLowPrioBlockers > 1 {
				t.Errorf("seed %d placement %d: Lemma 1 violated (%d lower-priority blockers)",
					seed, placement, m.MaxLowPrioBlockers)
			}
			for _, task := range ts.Tasks {
				if simR := m.MaxResponse[task.ID]; simR > res.WCRT[task.ID] {
					t.Errorf("seed %d placement %d task %d: simulated response %s exceeds analytic bound %s",
						seed, placement, task.ID, rt.FormatTime(simR), rt.FormatTime(res.WCRT[task.ID]))
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no schedulable taskset generated; test ineffective")
	}
}

// TestSimStressInvariants drives the simulator deliberately into overload
// (a taskset the analysis rejects) to make sure the protocol invariants —
// mutual exclusion, ceiling rule, agent priority, Lemma 1 — hold even when
// deadlines are missed.
func TestSimStressInvariants(t *testing.T) {
	scen := taskgen.Scenario{
		M:          4,
		NumRes:     taskgen.IntRange{Lo: 2, Hi: 3},
		UAvg:       1.5,
		PAccess:    1,
		NReq:       taskgen.IntRange{Lo: 5, Hi: 20},
		CSLen:      taskgen.TimeRange{Lo: 50 * us, Hi: 100 * us},
		VertsRange: taskgen.IntRange{Lo: 6, Hi: 12},
		EdgeProb:   0.2,
		PeriodLo:   1 * rt.Millisecond,
		PeriodHi:   4 * rt.Millisecond,
	}
	g := taskgen.NewGenerator(scen)
	ran := 0
	for seed := int64(100); seed < 130 && ran < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		ts, err := g.Taskset(r, 3.5)
		if err != nil {
			continue
		}
		// Force a cramped manual partition: one processor per task,
		// resources stacked on processor 0.
		p := partition.New(ts)
		feasible := true
		for _, task := range ts.Tasks {
			if !p.Assign(task.ID, 1) {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		for _, q := range ts.GlobalResources() {
			p.PlaceResource(q, 0)
		}
		ran++
		s, err := New(ts, p, Config{Horizon: 8 * rt.Millisecond, HardStop: 200 * rt.Millisecond})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v := s.Violations(); len(v) > 0 {
			t.Errorf("seed %d: protocol invariants violated under overload: %v", seed, v)
		}
	}
	if ran == 0 {
		t.Skip("no overload taskset generated")
	}
}
