// Package sim is a deterministic discrete-event simulator of the DPCP-p
// runtime (Sec. III): federated clusters with work-conserving vertex
// scheduling, per-task ready/suspended queues (RQN, RQL, SQ), per-processor
// agent queues (RQG, SQG), the priority-ceiling grant rule, and remote
// execution of global-resource requests by agents that outrank every normal
// vertex. It doubles as a validation harness: built-in invariant checkers
// verify mutual exclusion, the ceiling grant rule, precedence constraints,
// work conservation, and Lemma 1 (at most one lower-priority blocking per
// request) on every schedule it produces.
package sim

import (
	"fmt"
	"sort"

	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

// NoResource marks a non-critical segment.
const NoResource rt.ResourceID = -1

// Segment is one contiguous piece of a vertex's execution: either
// non-critical work or one critical section on Res.
type Segment struct {
	Res rt.ResourceID
	Dur rt.Time
}

// IsCS reports whether the segment is a critical section.
func (s Segment) IsCS() bool { return s.Res != NoResource }

// CSPlacement controls where a vertex's critical sections sit within its
// WCET; the analysis is placement-oblivious, so the simulator exposes the
// choice to let tests exercise different interleavings.
type CSPlacement int

const (
	// SpreadCS interleaves critical sections evenly with non-critical
	// chunks (the default).
	SpreadCS CSPlacement = iota
	// FrontCS issues every request at the very start of the vertex,
	// matching the paper's Fig. 1 schedule where v_{i,2} suspends
	// immediately.
	FrontCS
	// BackCS issues every request at the very end of the vertex.
	BackCS
)

// BuildSegments derives the deterministic segment list of a vertex:
// requests are ordered by ascending resource ID and the non-critical WCET
// is split around them according to the placement.
func BuildSegments(t *model.Task, x rt.VertexID, placement CSPlacement) []Segment {
	v := t.Vertices[x]
	var reqs []rt.ResourceID
	var qs []rt.ResourceID
	for q := range v.Requests {
		qs = append(qs, q)
	}
	sort.Slice(qs, func(a, b int) bool { return qs[a] < qs[b] })
	for _, q := range qs {
		for i := 0; i < v.Requests[q]; i++ {
			reqs = append(reqs, q)
		}
	}
	nonCrit := t.VertexNonCrit(x)

	var segs []Segment
	addNC := func(d rt.Time) {
		if d > 0 {
			segs = append(segs, Segment{Res: NoResource, Dur: d})
		}
	}
	switch placement {
	case FrontCS:
		for _, q := range reqs {
			segs = append(segs, Segment{Res: q, Dur: t.CS(q)})
		}
		addNC(nonCrit)
	case BackCS:
		addNC(nonCrit)
		for _, q := range reqs {
			segs = append(segs, Segment{Res: q, Dur: t.CS(q)})
		}
	default: // SpreadCS
		chunks := len(reqs) + 1
		base := nonCrit / rt.Time(chunks)
		rem := nonCrit - base*rt.Time(chunks)
		addNC(base + rem)
		for _, q := range reqs {
			segs = append(segs, Segment{Res: q, Dur: t.CS(q)})
			addNC(base)
		}
	}
	if len(segs) == 0 {
		// A vertex always has positive WCET, so this only happens when the
		// entire WCET is critical; keep a zero-guard anyway.
		segs = append(segs, Segment{Res: NoResource, Dur: v.WCET})
	}
	return segs
}

// TotalDuration sums the segment durations (equals the vertex WCET).
func TotalDuration(segs []Segment) rt.Time {
	var d rt.Time
	for _, s := range segs {
		d += s.Dur
	}
	return d
}

func (s Segment) String() string {
	if s.IsCS() {
		return fmt.Sprintf("CS(l%d,%s)", s.Res, rt.FormatTime(s.Dur))
	}
	return fmt.Sprintf("NC(%s)", rt.FormatTime(s.Dur))
}
