package sim

import (
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// us is a brevity helper for test fixtures.
const us = rt.Microsecond

// twoTaskFixture builds the hand-traceable scenario:
//
//	task A (prio hi): 1 vertex, C=10us, CS on global l0 of 2us (FrontCS)
//	task B (prio lo): 1 vertex, C=20us, CS on l0 of 3us (FrontCS)
//	A on proc0, B on proc1, l0 hosted on proc0.
//
// Synchronous release at 0. Expected schedule:
//
//	t=0: both request l0; A granted (B's lock attempt blocked), A's agent
//	     runs on proc0 [0,2); B suspended in SQG.
//	t=2: A's request done -> B granted, agent on proc0 [2,5);
//	     A's vertex continues noncrit on proc0? No: proc0 is running B's
//	     agent (agents outrank vertices), so A waits; A runs [5,13).
//	t=5: B's vertex continues noncrit on proc1 [5,22).
//
// Responses: A=13us, B=22us.
func twoTaskFixture(t *testing.T) (*model.Taskset, *partition.Partition) {
	t.Helper()
	ts := model.NewTaskset(2, 1)
	a := model.NewTask(0, 100*us, 100*us)
	va := a.AddVertex(10 * us)
	a.AddRequest(va, 0, 1, 2*us)
	ts.Add(a)
	b := model.NewTask(1, 200*us, 200*us)
	vb := b.AddVertex(20 * us)
	b.AddRequest(vb, 0, 1, 3*us)
	ts.Add(b)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 1)
	p.Assign(1, 1)
	p.PlaceResource(0, 0)
	return ts, p
}

func TestHandTracedSchedule(t *testing.T) {
	ts, p := twoTaskFixture(t)
	s, err := New(ts, p, Config{Horizon: 50 * us, Placement: FrontCS, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	if got, want := m.MaxResponse[0], 13*us; got != want {
		t.Errorf("response(A) = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if got, want := m.MaxResponse[1], 22*us; got != want {
		t.Errorf("response(B) = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if m.Requests != 2 {
		t.Errorf("Requests = %d, want 2", m.Requests)
	}
	if m.DeadlineMisses != 0 {
		t.Errorf("DeadlineMisses = %d", m.DeadlineMisses)
	}
	if m.MaxLowPrioBlockers != 0 {
		t.Errorf("MaxLowPrioBlockers = %d, want 0 (only the low task waited)", m.MaxLowPrioBlockers)
	}
	// B's request waited from 0 to 2.
	if got, want := m.MaxRequestWait, 2*us; got != want {
		t.Errorf("MaxRequestWait = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
}

func TestLowerPriorityBlocksOnce(t *testing.T) {
	// L (lo, FrontCS) locks l0 at t=0 for 6us on its own processor.
	// H (hi, FrontCS) releases at t=2 and immediately requests l0:
	// it waits [2,6) while L's agent runs — exactly one lower-priority
	// blocker, as Lemma 1 promises. Then CS [6,8), then 8us non-critical
	// on H's processor: finish 16, response 14us.
	ts := model.NewTaskset(2, 1)
	h := model.NewTask(0, 100*us, 100*us)
	vh := h.AddVertex(10 * us)
	h.AddRequest(vh, 0, 1, 2*us)
	ts.Add(h)
	l := model.NewTask(1, 200*us, 200*us)
	vl := l.AddVertex(20 * us)
	l.AddRequest(vl, 0, 1, 6*us)
	ts.Add(l)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 1)
	p.Assign(1, 1)
	p.PlaceResource(0, 1) // host l0 on L's processor

	s, err := New(ts, p, Config{Horizon: 50 * us, Placement: FrontCS,
		Offsets: map[rt.TaskID]rt.Time{0: 2 * us}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	if m.MaxLowPrioBlockers != 1 {
		t.Errorf("MaxLowPrioBlockers = %d, want 1", m.MaxLowPrioBlockers)
	}
	if got, want := m.MaxResponse[0], 14*us; got != want {
		t.Errorf("response(H) = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
}

// ceilingFixture: two resources on one processor, one high task requesting
// l0 mid-vertex, two low tasks whose requests could both execute during the
// high request's wait if the ceiling is disabled.
func ceilingFixture(t *testing.T) (*model.Taskset, *partition.Partition) {
	t.Helper()
	ts := model.NewTaskset(4, 2)

	h := model.NewTask(0, 1000*us, 1000*us) // highest priority (RM)
	vh := h.AddVertex(10 * us)
	h.AddRequest(vh, 0, 1, 2*us) // requests l0 at t=4 (SpreadCS)
	ts.Add(h)

	l1 := model.NewTask(1, 3000*us, 3000*us) // lowest priority
	v1 := l1.AddVertex(20 * us)
	l1.AddRequest(v1, 0, 1, 10*us) // locks l0 at t=0 for 10us (FrontCS…)
	ts.Add(l1)

	l2 := model.NewTask(2, 2000*us, 2000*us) // middle priority
	v2 := l2.AddVertex(20 * us)
	l2.AddRequest(v2, 1, 1, 6*us) // requests l1 (co-located with l0)
	ts.Add(l2)

	// Make both resources global by adding a silent second user.
	aux := model.NewTask(3, 4000*us, 4000*us)
	vaux := aux.AddVertex(50 * us)
	aux.AddRequest(vaux, 0, 1, 1*us)
	aux.AddRequest(vaux, 1, 1, 1*us)
	ts.Add(aux)

	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 1)
	p.Assign(1, 1)
	p.Assign(2, 1)
	p.Assign(3, 1)
	p.PlaceResource(0, 1)
	p.PlaceResource(1, 1) // both resources on l1's processor
	return ts, p
}

// ceilingOffsets staggers the releases so the race is deterministic with
// FrontCS: l1 (lowest user of l0) locks l0 at t=0 for 10us; h requests l0
// at t=2 and waits; l2 requests the co-located resource at t=5 while h is
// waiting. With the ceiling, l2's grant is denied (processor ceiling is
// l0's ceiling = h's priority); without it, l2's agent preempts l1's and
// h observes two distinct lower-priority blockers.
func ceilingOffsets() map[rt.TaskID]rt.Time {
	return map[rt.TaskID]rt.Time{0: 2 * us, 2: 5 * us, 3: 500 * us}
}

func TestCeilingPreventsSecondLowerBlocking(t *testing.T) {
	ts, p := ceilingFixture(t)
	s, err := New(ts, p, Config{Horizon: 900 * us, Placement: mixedPlacement(), Offsets: ceilingOffsets()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations with ceiling enabled: %v", v)
	}
	if m.MaxLowPrioBlockers > 1 {
		t.Errorf("ceiling enabled but MaxLowPrioBlockers = %d", m.MaxLowPrioBlockers)
	}
}

func TestDisablingCeilingBreaksLemma1(t *testing.T) {
	ts, p := ceilingFixture(t)
	s, err := New(ts, p, Config{Horizon: 900 * us, Placement: mixedPlacement(),
		Offsets: ceilingOffsets(), DisableCeiling: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxLowPrioBlockers < 2 {
		t.Errorf("without the ceiling the high request should suffer >= 2 lower-priority blockers, got %d",
			m.MaxLowPrioBlockers)
	}
}

// mixedPlacement: SpreadCS gives h's vertex [NC4][CS][NC4] and FrontCS-like
// behaviour for single-CS 20us vertices is close enough under SpreadCS
// ([NC5][CS][NC5] for l1: lock at t=5)… we need l1 to lock BEFORE h
// requests at t=4, so use FrontCS for everyone: h then requests at t=0.
// Instead we keep SpreadCS and give h no head start: l1 locks at t=5?
// That would invert the race. The cleanest deterministic arrangement is
// FrontCS: every requester fires at its release instant, and we stagger
// releases via Offsets.
func mixedPlacement() CSPlacement { return FrontCS }

func TestPeriodicReleasesAndSteadyState(t *testing.T) {
	ts, p := twoTaskFixture(t)
	s, err := New(ts, p, Config{Horizon: 1000 * us, Placement: FrontCS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10 jobs of A (T=100us) and 5 of B (T=200us).
	if m.Jobs != 15 {
		t.Errorf("Jobs = %d, want 15", m.Jobs)
	}
	if m.DeadlineMisses != 0 {
		t.Errorf("misses = %d", m.DeadlineMisses)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestLocalResourceSerialization(t *testing.T) {
	// One task, two parallel vertices both using local l0: they must
	// serialize on the CS but run non-critical parts in parallel.
	ts := model.NewTaskset(2, 1)
	task := model.NewTask(0, 100*us, 100*us)
	task.AddVertex(10 * us)
	task.AddVertex(10 * us)
	task.AddRequest(0, 0, 1, 4*us)
	task.AddRequest(1, 0, 1, 4*us)
	ts.Add(task)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 2)

	s, err := New(ts, p, Config{Horizon: 50 * us, Placement: FrontCS, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	// Both vertices: 4us CS (serialized: [0,4) and [4,8)) + 6us NC.
	// First vertex: 4+6=10; second: waits 4, CS [4,8), NC [8,14).
	if got, want := m.MaxResponse[0], 14*us; got != want {
		t.Errorf("response = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if m.Requests != 0 {
		t.Errorf("local CS must not count as agent requests, got %d", m.Requests)
	}
}

func TestPrecedenceRespected(t *testing.T) {
	// Chain of 3 vertices; total response = sum of WCETs despite 2 procs.
	ts := model.NewTaskset(2, 0)
	task := model.NewTask(0, 100*us, 100*us)
	a := task.AddVertex(5 * us)
	b := task.AddVertex(7 * us)
	c := task.AddVertex(3 * us)
	task.AddEdge(a, b)
	task.AddEdge(b, c)
	ts.Add(task)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 2)
	s, err := New(ts, p, Config{Horizon: 60 * us})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.MaxResponse[0], 15*us; got != want {
		t.Errorf("chain response = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestWorkConservingParallelism(t *testing.T) {
	// 4 independent vertices of 10us on 2 procs: makespan 20us.
	ts := model.NewTaskset(2, 0)
	task := model.NewTask(0, 100*us, 100*us)
	for i := 0; i < 4; i++ {
		task.AddVertex(10 * us)
	}
	ts.Add(task)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 2)
	s, err := New(ts, p, Config{Horizon: 60 * us})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.MaxResponse[0], 20*us; got != want {
		t.Errorf("makespan = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestGanttRendering(t *testing.T) {
	ts, p := twoTaskFixture(t)
	s, err := New(ts, p, Config{Horizon: 50 * us, Placement: FrontCS, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	g := Gantt(s.Trace(), 2, 30*us, us)
	if g == "" {
		t.Fatal("empty gantt")
	}
	// proc0 runs agents during [0,5): expect 'A' cells.
	if !containsRune(g, 'A') {
		t.Errorf("gantt missing agent cells:\n%s", g)
	}
	if !containsRune(g, '=') {
		t.Errorf("gantt missing non-critical cells:\n%s", g)
	}
	log := TraceLog(s.Trace())
	if log == "" {
		t.Error("empty trace log")
	}
}

func containsRune(s string, r rune) bool {
	for _, c := range s {
		if c == r {
			return true
		}
	}
	return false
}

func TestBuildSegments(t *testing.T) {
	task := model.NewTask(0, 100*us, 100*us)
	v := task.AddVertex(10 * us)
	task.AddRequest(v, 0, 2, 2*us)
	if err := task.Finalize(1); err != nil {
		t.Fatal(err)
	}

	for _, pl := range []CSPlacement{SpreadCS, FrontCS, BackCS} {
		segs := BuildSegments(task, v, pl)
		if got := TotalDuration(segs); got != 10*us {
			t.Errorf("placement %d: total %s, want 10us", pl, rt.FormatTime(got))
		}
		cs := 0
		for _, sg := range segs {
			if sg.IsCS() {
				cs++
				if sg.Res != 0 || sg.Dur != 2*us {
					t.Errorf("placement %d: bad CS segment %v", pl, sg)
				}
			}
		}
		if cs != 2 {
			t.Errorf("placement %d: %d CS segments, want 2", pl, cs)
		}
	}

	front := BuildSegments(task, v, FrontCS)
	if !front[0].IsCS() || !front[1].IsCS() {
		t.Errorf("FrontCS did not front-load: %v", front)
	}
	back := BuildSegments(task, v, BackCS)
	if !back[len(back)-1].IsCS() {
		t.Errorf("BackCS did not back-load: %v", back)
	}
}

func TestHardStopOnRunaway(t *testing.T) {
	// A task that can never finish in time: C = 2x period on 1 proc with
	// an artificially tiny HardStop triggers the guard.
	ts := model.NewTaskset(2, 0)
	task := model.NewTask(0, 10*us, 10*us)
	task.AddVertex(9 * us)
	task.AddVertex(9 * us)
	ts.Add(task)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 1)
	s, err := New(ts, p, Config{Horizon: 1000 * us, HardStop: 30 * us})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("expected hard-stop error")
	}
}
