package sim

import (
	"container/heap"
	"fmt"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// Protocol selects the runtime synchronization protocol.
type Protocol int

const (
	// ProtocolDPCPp is the paper's protocol: global requests execute
	// remotely via agents under the priority ceiling (default).
	ProtocolDPCPp Protocol = iota
	// ProtocolSpin executes every request locally with FIFO
	// non-preemptive spin locks (the SPIN-SON baseline runtime): a vertex
	// whose lock is busy keeps its processor and busy-waits.
	ProtocolSpin
	// ProtocolLPP executes every request locally with suspension-based
	// FIFO semaphores and holder priority boosting (the LPP baseline
	// runtime): a vertex whose lock is busy releases its processor; lock
	// holders are boosted above every non-holder in their cluster,
	// preemptively — a granted holder never waits for a processor behind
	// non-critical work. (The LPP analysis bounds each FIFO wait by the
	// critical-section lengths ahead in the queue, which is only sound
	// when holders run as soon as they are granted; dispatch-time-only
	// boosting lets a holder stall behind its own task's non-critical
	// vertices and leaks that stall into other tasks' FIFO waits. The
	// differential audit caught exactly this as certified-taskset deadline
	// misses.)
	ProtocolLPP
)

// Config tunes one simulation run.
type Config struct {
	// Protocol selects the runtime protocol (default ProtocolDPCPp).
	Protocol Protocol
	// Horizon: jobs are released strictly before it; the run continues
	// until every released job finishes (or HardStop).
	Horizon rt.Time
	// HardStop aborts a runaway simulation; defaults to 4*Horizon.
	HardStop rt.Time
	// Offsets gives per-task first release times (default: synchronous 0).
	Offsets map[rt.TaskID]rt.Time
	// Placement controls critical-section placement inside vertices.
	Placement CSPlacement
	// CollectTrace records per-processor execution spans for Gantt output.
	CollectTrace bool
	// DisableCeiling turns off the priority-ceiling grant rule (requests
	// are granted whenever the resource is free, FIFO by arrival). This is
	// the ablation showing why Lemma 1 needs the ceiling.
	DisableCeiling bool
}

// vertexRun is the runtime state of one vertex of one job.
type vertexRun struct {
	job       *jobState
	x         rt.VertexID
	segs      []Segment
	segIdx    int
	remaining rt.Time // remaining duration of the current segment
	predsLeft int
	holding   rt.ResourceID // local resource currently held, or NoResource
}

func (vr *vertexRun) String() string {
	return fmt.Sprintf("J%d.%d/v%d", vr.job.task.t.ID, vr.job.idx, vr.x)
}

// jobState is the runtime state of one job.
type jobState struct {
	task      *taskState
	idx       int64
	release   rt.Time
	deadline  rt.Time
	finish    rt.Time // -1 while running
	vertsLeft int
	verts     []*vertexRun
}

// taskState is the per-task runtime state: its cluster and the queues of
// Sec. III-B. The suspended queue SQ is implicit in the resource wait
// lists and outstanding requests.
type taskState struct {
	t     *model.Task
	procs []rt.ProcID
	rqN   []*vertexRun // ready, non-critical (FIFO)
	rqL   []*vertexRun // ready, holding a local resource (FIFO, precedence)
	jobs  []*jobState
}

// request is a global-resource request executed by an agent (an RPC-like
// proxy) on the resource's processor.
type request struct {
	id        int64
	vr        *vertexRun
	res       *resState
	prio      rt.Priority // base priority of the issuing task
	issued    rt.Time
	granted   rt.Time // -1 while in SQG
	finished  rt.Time
	remaining rt.Time
	// blockedBy tracks distinct lower-priority requests that executed on
	// the target processor while this one was pending (Lemma 1 check).
	blockedBy map[int64]bool
}

// resState is the runtime state of one resource.
type resState struct {
	q        rt.ResourceID
	global   bool
	proc     rt.ProcID    // hosting processor for globals (DPCP-p only)
	ceiling  rt.Priority  // max base priority among users
	lockedBy interface{}  // *vertexRun (local), *request (global), or nil
	waiters  []*vertexRun // FIFO waiters on a locally-executed resource
}

// procState is one physical processor: owner cluster (heavy) or co-located
// light tasks (Sec. VI), plus the agent queues RQG (ready,
// priority-ordered) and SQG (suspended on the ceiling).
type procState struct {
	id     rt.ProcID
	owner  *taskState
	lights []*taskState // light tasks sharing this processor
	rqG    []*request
	sqG    []*request

	// What is currently executing.
	curReq   *request
	curVert  *vertexRun
	spinning bool // curVert busy-waits on a lock (ProtocolSpin)
	started  rt.Time
	token    int64 // invalidates stale completion events
}

func (p *procState) busy() bool { return p.curReq != nil || p.curVert != nil }

// event kinds.
const (
	evRelease = iota
	evSegEnd
)

type event struct {
	at   rt.Time
	seq  int64
	kind int
	task *taskState // evRelease
	proc *procState // evSegEnd
	tok  int64      // evSegEnd: valid only if proc.token matches
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(a, b int) bool {
	if q[a].at != q[b].at {
		return q[a].at < q[b].at
	}
	return q[a].seq < q[b].seq
}
func (q eventQueue) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Sim is one simulation instance.
type Sim struct {
	ts  *model.Taskset
	p   *partition.Partition
	cfg Config

	now    rt.Time
	eq     eventQueue
	seq    int64
	reqSeq int64

	tasks map[rt.TaskID]*taskState
	procs []*procState
	res   []*resState

	trace      []Span
	violations []string
	metrics    Metrics
	pending    []*request // all requests issued and not finished
}

// Span is one contiguous execution interval on a processor, for traces.
type Span struct {
	Proc  rt.ProcID
	From  rt.Time
	To    rt.Time
	What  string
	IsCS  bool
	Agent bool
}

// Metrics aggregates the outcome of a run.
type Metrics struct {
	Jobs           int64
	DeadlineMisses int64
	// MaxResponse per task.
	MaxResponse map[rt.TaskID]rt.Time
	// Requests counts global-resource requests served.
	Requests int64
	// MaxRequestWait is the longest issue-to-grant delay observed.
	MaxRequestWait rt.Time
	// MaxLowPrioBlockers is the largest number of distinct lower-priority
	// requests that blocked a single request (Lemma 1 says <= 1 with the
	// ceiling enabled).
	MaxLowPrioBlockers int
	// SpinTime is the total processor time burned busy-waiting
	// (ProtocolSpin only).
	SpinTime rt.Time
	// Suspensions counts lock-induced suspensions (ProtocolLPP and
	// DPCP-p local resources).
	Suspensions int64
}

// New builds a simulator for the taskset under the partition. Every global
// resource must already be placed.
func New(ts *model.Taskset, p *partition.Partition, cfg Config) (*Sim, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: non-positive horizon")
	}
	if cfg.HardStop == 0 {
		cfg.HardStop = 4 * cfg.Horizon
	}
	s := &Sim{ts: ts, p: p, cfg: cfg, tasks: make(map[rt.TaskID]*taskState)}
	s.metrics.MaxResponse = make(map[rt.TaskID]rt.Time)

	for k := 0; k < ts.NumProcs; k++ {
		s.procs = append(s.procs, &procState{id: rt.ProcID(k)})
	}
	for _, t := range ts.Tasks {
		st := &taskState{t: t, procs: p.Procs(t.ID)}
		if len(st.procs) == 0 {
			return nil, fmt.Errorf("sim: task %d has no processors", t.ID)
		}
		s.tasks[t.ID] = st
		if p.IsShared(t.ID) {
			for _, k := range st.procs {
				s.procs[k].lights = append(s.procs[k].lights, st)
			}
		} else {
			for _, k := range st.procs {
				s.procs[k].owner = st
			}
		}
	}
	for q := 0; q < ts.NumResources; q++ {
		rid := rt.ResourceID(q)
		rs := &resState{q: rid, global: ts.IsGlobal(rid), proc: rt.NoProc, ceiling: ts.Ceiling(rid)}
		if rs.global && cfg.Protocol == ProtocolDPCPp {
			rs.proc = p.ResourceProc(rid)
			if rs.proc == rt.NoProc {
				return nil, fmt.Errorf("sim: global resource %d unplaced", q)
			}
		}
		s.res = append(s.res, rs)
	}
	return s, nil
}

func (s *Sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.eq, e)
}

// Run executes the simulation and returns its metrics. Invariant
// violations detected during the run are returned by Violations.
func (s *Sim) Run() (Metrics, error) {
	for _, t := range s.ts.Tasks {
		off := s.cfg.Offsets[t.ID]
		s.push(&event{at: off, kind: evRelease, task: s.tasks[t.ID]})
	}

	for s.eq.Len() > 0 {
		e := heap.Pop(&s.eq).(*event)
		if e.at > s.cfg.HardStop {
			return s.metrics, fmt.Errorf("sim: hard stop at %s with work outstanding",
				rt.FormatTime(s.cfg.HardStop))
		}
		if e.at < s.now {
			return s.metrics, fmt.Errorf("sim: time went backwards (%d < %d)", e.at, s.now)
		}
		s.now = e.at
		switch e.kind {
		case evRelease:
			s.handleRelease(e.task)
		case evSegEnd:
			if e.proc.token == e.tok {
				s.handleSegEnd(e.proc)
			}
		}
		// Process every event at this instant before scheduling.
		for s.eq.Len() > 0 && s.eq[0].at == s.now {
			e2 := heap.Pop(&s.eq).(*event)
			switch e2.kind {
			case evRelease:
				s.handleRelease(e2.task)
			case evSegEnd:
				if e2.proc.token == e2.tok {
					s.handleSegEnd(e2.proc)
				}
			}
		}
		s.schedule()
		s.checkInvariants()
	}
	return s.metrics, nil
}

// Violations returns the invariant violations detected during the run.
func (s *Sim) Violations() []string { return s.violations }

// Trace returns the recorded execution spans (CollectTrace must be set).
func (s *Sim) Trace() []Span { return s.trace }

// handleRelease releases one job of the task and schedules the next
// release if still before the horizon.
func (s *Sim) handleRelease(st *taskState) {
	job := &jobState{
		task:     st,
		idx:      int64(len(st.jobs)),
		release:  s.now,
		deadline: s.now + st.t.Deadline,
		finish:   -1,
	}
	st.jobs = append(st.jobs, job)
	s.metrics.Jobs++

	for x := range st.t.Vertices {
		vr := &vertexRun{
			job:       job,
			x:         rt.VertexID(x),
			segs:      BuildSegments(st.t, rt.VertexID(x), s.cfg.Placement),
			predsLeft: len(st.t.Pred(rt.VertexID(x))),
			holding:   NoResource,
		}
		vr.remaining = vr.segs[0].Dur
		job.verts = append(job.verts, vr)
	}
	job.vertsLeft = len(job.verts)
	for _, vr := range job.verts {
		if vr.predsLeft == 0 {
			s.activate(vr)
		}
	}

	if next := s.now + st.t.Period; next < s.cfg.Horizon {
		s.push(&event{at: next, kind: evRelease, task: st})
	}
}

// activate routes a vertex that just became pending (or just finished a
// segment) according to its current segment: Rule 1-3 of Sec. III-C.
func (s *Sim) activate(vr *vertexRun) {
	if vr.segIdx >= len(vr.segs) {
		s.finishVertex(vr)
		return
	}
	seg := vr.segs[vr.segIdx]
	if vr.remaining == 0 {
		// Zero-length segment: consume immediately.
		vr.segIdx++
		if vr.segIdx < len(vr.segs) {
			vr.remaining = vr.segs[vr.segIdx].Dur
		}
		s.activate(vr)
		return
	}
	if !seg.IsCS() {
		vr.job.task.rqN = append(vr.job.task.rqN, vr)
		return
	}
	rs := s.res[seg.Res]
	if s.cfg.Protocol == ProtocolDPCPp && rs.global {
		s.issueGlobalRequest(vr, rs)
		return
	}
	// Locally-executed resource — spinning (ProtocolSpin) or a semaphore
	// (DPCP-p local resources per Rules 1 and 2, every resource under
	// LPP): the lock attempt happens when a processor picks the vertex
	// (startVertex). A semaphore can only be acquired from running code;
	// acquiring it from the ready queue would let a vertex hold the lock
	// while waiting for a processor behind its own task's non-critical
	// work, inflating other tasks' FIFO waits beyond any analytical bound
	// (the differential audit caught exactly this under LPP).
	vr.job.task.rqN = append(vr.job.task.rqN, vr)
}

// issueGlobalRequest implements Rule 3.
func (s *Sim) issueGlobalRequest(vr *vertexRun, rs *resState) {
	req := &request{
		id:        s.reqSeq,
		vr:        vr,
		res:       rs,
		prio:      vr.job.task.t.Priority,
		issued:    s.now,
		granted:   -1,
		remaining: vr.segs[vr.segIdx].Dur,
		blockedBy: make(map[int64]bool),
	}
	s.reqSeq++
	s.pending = append(s.pending, req)
	k := s.procs[rs.proc]
	if s.grantAllowed(k, req) {
		s.grant(k, req)
	} else {
		k.sqG = append(k.sqG, req)
		// A lower-priority request already executing on the processor
		// blocks this one from the moment it is issued (Lemma 1 ledger).
		if k.curReq != nil && k.curReq.prio < req.prio {
			req.blockedBy[k.curReq.id] = true
		}
	}
}

// grantAllowed evaluates the priority-ceiling rule: the request's effective
// priority (pi^H + prio) must exceed the processor ceiling (max ceiling of
// locked resources on the processor). Resource must also be free.
func (s *Sim) grantAllowed(k *procState, req *request) bool {
	if req.res.lockedBy != nil {
		return false
	}
	if s.cfg.DisableCeiling {
		return true
	}
	return req.prio > s.processorCeiling(k)
}

// processorCeiling returns Pi^p_k(t) expressed in base-priority units.
func (s *Sim) processorCeiling(k *procState) rt.Priority {
	ceiling := rt.Priority(0)
	for _, rs := range s.res {
		if rs.global && rs.proc == k.id && rs.lockedBy != nil && rs.ceiling > ceiling {
			ceiling = rs.ceiling
		}
	}
	return ceiling
}

func (s *Sim) grant(k *procState, req *request) {
	req.res.lockedBy = req
	req.granted = s.now
	if w := s.now - req.issued; w > s.metrics.MaxRequestWait {
		s.metrics.MaxRequestWait = w
	}
	k.rqG = append(k.rqG, req)
}

// finishRequest implements Rule 4 for a global request.
func (s *Sim) finishRequest(k *procState, req *request) {
	req.finished = s.now
	req.res.lockedBy = nil
	s.metrics.Requests++
	if n := len(req.blockedBy); n > s.metrics.MaxLowPrioBlockers {
		s.metrics.MaxLowPrioBlockers = n
	}
	s.removePending(req)
	s.removeFromRQG(k, req)

	// Ceiling dropped: grant every suspended request that now qualifies,
	// highest priority first.
	for {
		best := -1
		for i, cand := range k.sqG {
			if s.grantAllowed(k, cand) && (best < 0 || cand.prio > k.sqG[best].prio ||
				(cand.prio == k.sqG[best].prio && cand.id < k.sqG[best].id)) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		cand := k.sqG[best]
		k.sqG = append(k.sqG[:best], k.sqG[best+1:]...)
		s.grant(k, cand)
	}

	// The issuing vertex resumes: consume the CS segment and re-enter RQN.
	vr := req.vr
	vr.segIdx++
	if vr.segIdx < len(vr.segs) {
		vr.remaining = vr.segs[vr.segIdx].Dur
	}
	s.activate(vr)
}

// finishLocalCS handles the end of a locally-executed critical section:
// Rules 2/4 for DPCP-p local resources, semaphore hand-off for LPP, and
// spinner hand-off for ProtocolSpin.
func (s *Sim) finishLocalCS(vr *vertexRun) {
	rs := s.res[vr.holding]
	rs.lockedBy = nil
	vr.holding = NoResource
	if len(rs.waiters) > 0 {
		next := rs.waiters[0]
		rs.waiters = rs.waiters[1:]
		rs.lockedBy = next
		next.holding = rs.q
		if s.cfg.Protocol == ProtocolSpin {
			s.grantToSpinner(next)
		} else {
			next.job.task.rqL = append(next.job.task.rqL, next)
		}
	}
	vr.segIdx++
	if vr.segIdx < len(vr.segs) {
		vr.remaining = vr.segs[vr.segIdx].Dur
	}
	s.activate(vr) // Rule 4: back to RQN (or next CS / completion)
}

// grantToSpinner converts a busy-waiting vertex into the lock holder: its
// processor stops spinning and starts executing the critical section.
func (s *Sim) grantToSpinner(next *vertexRun) {
	for _, k := range s.procs {
		if k.curVert != next || !k.spinning {
			continue
		}
		s.metrics.SpinTime += s.now - k.started
		s.endSpan(k)
		k.spinning = false
		k.started = s.now
		k.token++
		seg := next.segs[next.segIdx]
		s.beginSpan(k, fmt.Sprintf("%s%s", next, segSuffix(seg)), true, false)
		s.push(&event{at: s.now + next.remaining, kind: evSegEnd, proc: k, tok: k.token})
		return
	}
	s.violate("spin grant: vertex %v not found spinning on any processor", next)
}

func (s *Sim) finishVertex(vr *vertexRun) {
	job := vr.job
	job.vertsLeft--
	for _, y := range job.task.t.Succ(vr.x) {
		succ := job.verts[y]
		succ.predsLeft--
		if succ.predsLeft == 0 {
			s.activate(succ)
		}
	}
	if job.vertsLeft == 0 {
		job.finish = s.now
		resp := job.finish - job.release
		if resp > s.metrics.MaxResponse[job.task.t.ID] {
			s.metrics.MaxResponse[job.task.t.ID] = resp
		}
		if job.finish > job.deadline {
			s.metrics.DeadlineMisses++
		}
	}
}

func (s *Sim) removePending(req *request) {
	for i, r := range s.pending {
		if r == req {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

func (s *Sim) removeFromRQG(k *procState, req *request) {
	for i, r := range k.rqG {
		if r == req {
			k.rqG = append(k.rqG[:i], k.rqG[i+1:]...)
			return
		}
	}
}

// handleSegEnd fires when the current work on a processor completes.
func (s *Sim) handleSegEnd(k *procState) {
	elapsed := s.now - k.started
	switch {
	case k.curReq != nil:
		req := k.curReq
		req.remaining -= elapsed
		s.endSpan(k)
		k.curReq = nil
		k.token++
		if req.remaining <= 0 {
			s.finishRequest(k, req)
		} else {
			// Should not happen: completions are scheduled exactly.
			k.rqG = append(k.rqG, req)
		}
	case k.curVert != nil:
		vr := k.curVert
		vr.remaining -= elapsed
		s.endSpan(k)
		k.curVert = nil
		k.token++
		if vr.remaining > 0 {
			s.requeueFront(vr)
			return
		}
		seg := vr.segs[vr.segIdx]
		if seg.IsCS() {
			s.finishLocalCS(vr)
		} else {
			vr.segIdx++
			if vr.segIdx < len(vr.segs) {
				vr.remaining = vr.segs[vr.segIdx].Dur
			}
			s.activate(vr)
		}
	}
}

// requeueFront returns a preempted (or exactly-resumed) vertex to the head
// of its ready queue so FIFO order is preserved.
func (s *Sim) requeueFront(vr *vertexRun) {
	st := vr.job.task
	if vr.holding != NoResource {
		st.rqL = append([]*vertexRun{vr}, st.rqL...)
	} else {
		st.rqN = append([]*vertexRun{vr}, st.rqN...)
	}
}

// schedule makes every processor execute the highest-ranked available work:
// agents (by task priority) outrank the owner task's vertices; RQL outranks
// RQN; both vertex queues are FIFO. It iterates to a fixpoint because a
// preemption on one processor can return a vertex to a ready queue that an
// earlier-visited sibling processor should pick up within the same instant.
func (s *Sim) schedule() {
	// Preemption chains are bounded by the processor count, but a popped
	// vertex suspending on a busy semaphore also counts as a change, so
	// the bound includes the ready backlog.
	ready := 0
	for _, st := range s.tasks {
		ready += len(st.rqL) + len(st.rqN)
	}
	for iter := 0; iter < 4*len(s.procs)+4+2*ready; iter++ {
		changed := false
		for _, k := range s.procs {
			if s.scheduleProc(k) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
	s.violate("scheduler did not reach a fixpoint")
}

// scheduleProc reports whether it changed the processor's assignment.
func (s *Sim) scheduleProc(k *procState) bool {
	// Highest-priority ready agent request on this processor.
	var top *request
	for _, r := range k.rqG {
		if r == k.curReq {
			continue
		}
		if top == nil || r.prio > top.prio || (r.prio == top.prio && r.id < top.id) {
			top = r
		}
	}

	if k.curReq != nil {
		if top != nil && top.prio > k.curReq.prio {
			s.preemptRequest(k)
			s.startRequest(k, top)
			return true
		}
		return false
	}
	if k.curVert != nil {
		if k.spinning {
			// Non-preemptive busy-waiting: the spinner keeps the
			// processor until granted.
			return false
		}
		if top != nil {
			s.preemptVertex(k)
			s.startRequest(k, top)
			return true
		}
		// Partitioned fixed-priority between co-located tasks (Sec. VI):
		// a ready vertex of a strictly higher-priority task preempts.
		// Even when the popped vertex suspends on a busy semaphore instead
		// of starting, queues changed, so report true and let the fixpoint
		// re-schedule this processor.
		if best := s.bestVertexTask(k); best != nil &&
			best != k.curVert.job.task &&
			best.t.Priority.Higher(k.curVert.job.task.t.Priority) {
			s.preemptVertex(k)
			s.startNextVertex(k, best)
			return true
		}
		// ProtocolLPP: boosting is preemptive — a ready lock holder
		// outranks every non-holding vertex on the processor.
		if s.cfg.Protocol == ProtocolLPP && k.curVert.holding == NoResource {
			if holder := s.bestHolderTask(k); holder != nil {
				s.preemptVertex(k)
				s.startNextVertex(k, holder)
				return true
			}
		}
		return false
	}
	// Idle processor.
	if top != nil {
		s.startRequest(k, top)
		return true
	}
	changed := false
	for {
		best := s.bestVertexTask(k)
		if best == nil {
			return changed
		}
		if s.startNextVertex(k, best) {
			return true
		}
		changed = true // popped vertex suspended; try the next candidate
	}
}

// bestVertexTask returns the highest-priority task among the processor's
// owner and co-located lights that has ready vertices, or nil.
func (s *Sim) bestVertexTask(k *procState) *taskState {
	var best *taskState
	consider := func(st *taskState) {
		if st == nil || len(st.rqL)+len(st.rqN) == 0 {
			return
		}
		if best == nil || st.t.Priority.Higher(best.t.Priority) {
			best = st
		}
	}
	consider(k.owner)
	for _, st := range k.lights {
		consider(st)
	}
	return best
}

// bestHolderTask returns the highest-priority task among the processor's
// owner and co-located lights with a ready lock holder (non-empty RQL), or
// nil. Used by the LPP preemptive-boosting rule.
func (s *Sim) bestHolderTask(k *procState) *taskState {
	var best *taskState
	consider := func(st *taskState) {
		if st == nil || len(st.rqL) == 0 {
			return
		}
		if best == nil || st.t.Priority.Higher(best.t.Priority) {
			best = st
		}
	}
	consider(k.owner)
	for _, st := range k.lights {
		consider(st)
	}
	return best
}

// startNextVertex pops the task's RQL (first) or RQN and runs it on k. It
// reports whether work actually started: a popped vertex whose first action
// is acquiring a busy semaphore suspends into the resource's wait list
// instead, leaving the processor free (but queues changed).
func (s *Sim) startNextVertex(k *procState, st *taskState) bool {
	if len(st.rqL) > 0 {
		vr := st.rqL[0]
		st.rqL = st.rqL[1:]
		return s.startVertex(k, vr)
	}
	vr := st.rqN[0]
	st.rqN = st.rqN[1:]
	return s.startVertex(k, vr)
}

func (s *Sim) preemptRequest(k *procState) {
	req := k.curReq
	req.remaining -= s.now - k.started
	s.endSpan(k)
	k.curReq = nil
	k.token++
	// Still in rqG; it will be rescheduled by priority.
}

func (s *Sim) preemptVertex(k *procState) {
	vr := k.curVert
	vr.remaining -= s.now - k.started
	s.endSpan(k)
	k.curVert = nil
	k.token++
	s.requeueFront(vr)
}

func (s *Sim) startRequest(k *procState, req *request) {
	k.curReq = req
	k.started = s.now
	k.token++
	s.beginSpan(k, fmt.Sprintf("agent:%s@l%d", req.vr, req.res.q), true, true)
	s.push(&event{at: s.now + req.remaining, kind: evSegEnd, proc: k, tok: k.token})
	// Record Lemma-1 blocking: every pending higher-priority request on
	// this processor is being delayed by this lower-priority execution.
	for _, p := range s.pending {
		if p.res.proc == k.id && p != req && p.granted < 0 && p.prio > req.prio {
			p.blockedBy[req.id] = true
		}
	}
}

// startVertex runs the vertex on k, attempting its current segment's lock
// first when that segment is a locally-executed critical section. It
// reports whether the processor is now occupied: false means the vertex
// suspended on a busy semaphore (LPP, or a DPCP-p local resource) and the
// processor remains free for other work.
func (s *Sim) startVertex(k *procState, vr *vertexRun) bool {
	seg := vr.segs[vr.segIdx]
	if seg.IsCS() && vr.holding != seg.Res {
		rs := s.res[seg.Res]
		switch {
		case rs.lockedBy == nil:
			rs.lockedBy = vr
			vr.holding = rs.q
		case s.cfg.Protocol == ProtocolSpin:
			// Busy: spin in place, keeping the processor (FIFO by spin
			// start). No completion event; grantToSpinner resumes us.
			k.curVert = vr
			k.spinning = true
			k.started = s.now
			k.token++
			rs.waiters = append(rs.waiters, vr)
			s.beginSpan(k, fmt.Sprintf("%s:spin:l%d", vr, seg.Res), false, false)
			return true
		default:
			// Busy semaphore: suspend into SQ_i without occupying the
			// processor; finishLocalCS hands the lock (and RQL entry) over.
			rs.waiters = append(rs.waiters, vr)
			s.metrics.Suspensions++
			return false
		}
	}
	k.curVert = vr
	k.started = s.now
	k.token++
	s.beginSpan(k, fmt.Sprintf("%s%s", vr, segSuffix(seg)), seg.IsCS(), false)
	s.push(&event{at: s.now + vr.remaining, kind: evSegEnd, proc: k, tok: k.token})
	return true
}

func segSuffix(seg Segment) string {
	if seg.IsCS() {
		return fmt.Sprintf(":l%d", seg.Res)
	}
	return ""
}

func (s *Sim) beginSpan(k *procState, what string, isCS, agent bool) {
	if !s.cfg.CollectTrace {
		return
	}
	s.trace = append(s.trace, Span{Proc: k.id, From: s.now, To: -1, What: what, IsCS: isCS, Agent: agent})
}

func (s *Sim) endSpan(k *procState) {
	if !s.cfg.CollectTrace {
		return
	}
	for i := len(s.trace) - 1; i >= 0; i-- {
		if s.trace[i].Proc == k.id && s.trace[i].To < 0 {
			if s.trace[i].From == s.now {
				// Zero-length span: drop it.
				s.trace = append(s.trace[:i], s.trace[i+1:]...)
			} else {
				s.trace[i].To = s.now
			}
			return
		}
	}
}
