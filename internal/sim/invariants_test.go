package sim

import (
	"strings"
	"testing"

	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// The invariant checkers are the simulator's own audit: they must surface
// corrupted runtime states through Violations(), never silently return a
// plausible Metrics value. These tests corrupt a live Sim's internal state
// directly (white-box, same package) and assert every checker fires.

// brokenSim builds a finished-construction simulator over the Fig. 1
// taskset whose internal state tests may corrupt at will.
func brokenSim(t *testing.T) *Sim {
	t.Helper()
	ts := figure1Tasks(t)
	p := partition.New(ts)
	p.Assign(0, 2)
	p.Assign(1, 2)
	p.PlaceResource(0, 1)
	s, err := New(ts, p, Config{Horizon: 30 * us})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// vertexAt fabricates a runnable vertexRun of the task in the given
// placement, as the release path would.
func vertexAt(s *Sim, task rt.TaskID, x rt.VertexID, placement CSPlacement) *vertexRun {
	st := s.tasks[task]
	job := &jobState{task: st, release: 0, deadline: st.t.Deadline, finish: -1}
	vr := &vertexRun{
		job:     job,
		x:       x,
		segs:    BuildSegments(st.t, x, placement),
		holding: NoResource,
	}
	vr.remaining = vr.segs[0].Dur
	return vr
}

func wantViolation(t *testing.T, s *Sim, substr string) {
	t.Helper()
	for _, v := range s.Violations() {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Errorf("no violation containing %q; got %v", substr, s.Violations())
}

// TestViolationsSurfaceMutualExclusion: two agents executing requests on
// one resource, one of them without holding the lock.
func TestViolationsSurfaceMutualExclusion(t *testing.T) {
	s := brokenSim(t)
	vr1 := vertexAt(s, 0, 1, FrontCS) // v_{i,2} requests global l0
	vr2 := vertexAt(s, 1, 2, FrontCS) // v_{j,3} requests global l0
	req1 := &request{id: 1, vr: vr1, res: s.res[0], prio: vr1.job.task.t.Priority}
	req2 := &request{id: 2, vr: vr2, res: s.res[0], prio: vr2.job.task.t.Priority}
	s.res[0].lockedBy = req1
	s.procs[1].curReq = req1
	s.procs[2].curReq = req2 // executes l0 without the lock
	s.checkInvariants()
	wantViolation(t, s, "without holding the lock")
	wantViolation(t, s, "mutual exclusion violated on l0")
}

// TestViolationsSurfaceLocalCSWithoutLock: a vertex executing a local
// critical section whose lock nobody holds.
func TestViolationsSurfaceLocalCSWithoutLock(t *testing.T) {
	s := brokenSim(t)
	vr := vertexAt(s, 0, 2, FrontCS) // v_{i,3}'s first segment is a CS on local l1
	if !vr.segs[0].IsCS() {
		t.Fatalf("fixture assumption broken: segs = %v", vr.segs)
	}
	s.procs[0].curVert = vr
	s.checkInvariants()
	wantViolation(t, s, "executes local CS l1 without the lock")
}

// TestViolationsSurfaceWorkConservation: ready vertices with every cluster
// processor idle.
func TestViolationsSurfaceWorkConservation(t *testing.T) {
	s := brokenSim(t)
	st := s.tasks[0]
	st.rqN = append(st.rqN, vertexAt(s, 0, 0, SpreadCS))
	s.checkInvariants()
	wantViolation(t, s, "idle while task 0 has 1 ready vertices")
}

// TestViolationsSurfaceAgentPriority: a processor running a normal vertex
// while an agent request is ready, and a lower-priority agent while a
// higher-priority one waits.
func TestViolationsSurfaceAgentPriority(t *testing.T) {
	s := brokenSim(t)
	vr := vertexAt(s, 0, 0, SpreadCS)
	s.procs[1].curVert = vr
	req := &request{id: 1, vr: vertexAt(s, 1, 2, FrontCS), res: s.res[0], prio: 1}
	s.res[0].lockedBy = req
	s.procs[1].rqG = append(s.procs[1].rqG, req)
	s.checkInvariants()
	wantViolation(t, s, "runs a vertex while 1 agent requests are ready")

	lo := &request{id: 2, vr: vertexAt(s, 0, 1, FrontCS), res: s.res[0], prio: 1}
	hi := &request{id: 3, vr: vertexAt(s, 1, 2, FrontCS), res: s.res[0], prio: 2}
	s.procs[1].curVert = nil
	s.procs[1].curReq = lo
	s.procs[1].rqG = []*request{lo, hi}
	s.checkInvariants()
	wantViolation(t, s, "runs agent prio 1 while prio 2 is ready")
}

// TestViolationsSurfaceLemma1: a pending request blocked by two distinct
// lower-priority requests must be flagged (the ceiling makes this
// impossible; the ledger must catch it if the ceiling breaks).
func TestViolationsSurfaceLemma1(t *testing.T) {
	s := brokenSim(t)
	req := &request{id: 1, vr: vertexAt(s, 0, 1, FrontCS), res: s.res[0],
		prio: 3, granted: -1, blockedBy: map[int64]bool{10: true, 11: true}}
	s.pending = append(s.pending, req)
	s.checkInvariants()
	wantViolation(t, s, "Lemma 1 violated")
}

// TestViolationsAreCapped: the recorder keeps at most 100 entries, so a
// pathological run cannot exhaust memory through its own diagnostics.
func TestViolationsAreCapped(t *testing.T) {
	s := brokenSim(t)
	for i := 0; i < 250; i++ {
		s.violate("synthetic violation %d", i)
	}
	if n := len(s.Violations()); n != 100 {
		t.Errorf("recorded %d violations, want cap of 100", n)
	}
}

// TestNewRejectsBrokenPartitions: structurally broken partitions must fail
// at construction, not produce a silently wrong simulation.
func TestNewRejectsBrokenPartitions(t *testing.T) {
	ts := figure1Tasks(t)

	// Global resource never placed.
	p := partition.New(ts)
	p.Assign(0, 2)
	p.Assign(1, 2)
	if _, err := New(ts, p, Config{Horizon: 30 * us}); err == nil {
		t.Error("unplaced global resource accepted")
	}

	// A task with no processors at all.
	p2 := partition.New(ts)
	p2.Assign(0, 2)
	p2.PlaceResource(0, 1)
	if _, err := New(ts, p2, Config{Horizon: 30 * us}); err == nil {
		t.Error("processor-less task accepted")
	}

	// Non-positive horizon.
	p3 := partition.New(ts)
	p3.Assign(0, 2)
	p3.Assign(1, 2)
	p3.PlaceResource(0, 1)
	if _, err := New(ts, p3, Config{}); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestMetricsSilentWithoutViolationCheck documents the contract the audit
// relies on: a corrupted run keeps returning a well-formed Metrics value,
// and only Violations() reveals the breakage — callers must check it.
func TestMetricsSilentWithoutViolationCheck(t *testing.T) {
	s := brokenSim(t)
	st := s.tasks[0]
	st.rqN = append(st.rqN, vertexAt(s, 0, 0, SpreadCS))
	before := s.metrics
	s.checkInvariants()
	if s.metrics.Jobs != before.Jobs || s.metrics.DeadlineMisses != before.DeadlineMisses ||
		s.metrics.Requests != before.Requests {
		t.Error("invariant checking mutated Metrics; violations must be a separate channel")
	}
	if len(s.Violations()) == 0 {
		t.Error("corrupted state produced no violations")
	}
}
