package sim

import (
	"math/rand"
	"testing"

	"dpcpp/internal/analysis"
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/taskgen"
)

// spinFixture: two single-vertex tasks on their own processors, both
// FrontCS on global l0. Task A (hi): C=10us, CS=2us; B (lo): C=20us,
// CS=6us. Under ProtocolSpin with B released first (offset A=1us):
//
//	t=0: B locks l0, executes CS locally on p1 [0,6).
//	t=1: A starts, hits its CS, spins on p0 [1,6) — burning its core.
//	t=6: A acquires, CS [6,8) on p0, then noncrit [8,16).
//	B: noncrit [6,20+...) wait B: C=20, CS 6 -> noncrit 14: [6,20).
//
// Responses: A = 15us (16-1), B = 20us. SpinTime = 5us.
func spinFixture(t *testing.T) (*model.Taskset, *partition.Partition) {
	t.Helper()
	ts := model.NewTaskset(2, 1)
	a := model.NewTask(0, 100*us, 100*us)
	va := a.AddVertex(10 * us)
	a.AddRequest(va, 0, 1, 2*us)
	ts.Add(a)
	b := model.NewTask(1, 200*us, 200*us)
	vb := b.AddVertex(20 * us)
	b.AddRequest(vb, 0, 1, 6*us)
	ts.Add(b)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 1)
	p.Assign(1, 1)
	return ts, p
}

func TestSpinProtocolHandTraced(t *testing.T) {
	ts, p := spinFixture(t)
	s, err := New(ts, p, Config{
		Protocol:  ProtocolSpin,
		Horizon:   50 * us,
		Placement: FrontCS,
		Offsets:   map[rt.TaskID]rt.Time{0: 1 * us},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	if got := m.MaxResponse[0]; got != 15*us {
		t.Errorf("response(A) = %s, want 15us", rt.FormatTime(got))
	}
	if got := m.MaxResponse[1]; got != 20*us {
		t.Errorf("response(B) = %s, want 20us", rt.FormatTime(got))
	}
	if got := m.SpinTime; got != 5*us {
		t.Errorf("SpinTime = %s, want 5us", rt.FormatTime(got))
	}
	if m.Requests != 0 {
		t.Errorf("spin mode must not serve agent requests, got %d", m.Requests)
	}
}

func TestLPPProtocolHandTraced(t *testing.T) {
	// Same fixture under LPP: A suspends instead of spinning, so its
	// processor is free (no other work here, responses match spin's) and
	// SpinTime stays zero while a suspension is recorded.
	ts, p := spinFixture(t)
	s, err := New(ts, p, Config{
		Protocol:  ProtocolLPP,
		Horizon:   50 * us,
		Placement: FrontCS,
		Offsets:   map[rt.TaskID]rt.Time{0: 1 * us},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	if got := m.MaxResponse[0]; got != 15*us {
		t.Errorf("response(A) = %s, want 15us", rt.FormatTime(got))
	}
	if m.SpinTime != 0 {
		t.Errorf("LPP must not spin, got %s", rt.FormatTime(m.SpinTime))
	}
	if m.Suspensions != 1 {
		t.Errorf("Suspensions = %d, want 1", m.Suspensions)
	}
}

func TestSpinOccupiesProcessor(t *testing.T) {
	// One task, two parallel vertices on TWO processors, both racing for
	// l0 (local resource, but spin mode treats all locks alike), plus a
	// third vertex of plain work. While vertex 2 spins, the third vertex
	// cannot run (both processors busy) — the defining cost of spinning.
	// Under LPP the suspension frees the core and the third vertex runs
	// earlier.
	build := func() (*model.Taskset, *partition.Partition) {
		ts := model.NewTaskset(2, 1)
		task := model.NewTask(0, 200*us, 200*us)
		task.AddVertex(10 * us) // v0: CS race
		task.AddVertex(10 * us) // v1: CS race
		task.AddVertex(6 * us)  // v2: plain
		task.AddRequest(0, 0, 1, 8*us)
		task.AddRequest(1, 0, 1, 8*us)
		if err := task.Finalize(1); err != nil {
			t.Fatal(err)
		}
		ts.Add(task)
		if err := ts.Finalize(); err != nil {
			t.Fatal(err)
		}
		p := partition.New(ts)
		p.Assign(0, 2)
		return ts, p
	}

	ts, p := build()
	spin, err := New(ts, p, Config{Protocol: ProtocolSpin, Horizon: 100 * us, Placement: FrontCS})
	if err != nil {
		t.Fatal(err)
	}
	mSpin, err := spin.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := spin.Violations(); len(v) > 0 {
		t.Fatalf("spin violations: %v", v)
	}

	ts2, p2 := build()
	lpp, err := New(ts2, p2, Config{Protocol: ProtocolLPP, Horizon: 100 * us, Placement: FrontCS})
	if err != nil {
		t.Fatal(err)
	}
	mLPP, err := lpp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := lpp.Violations(); len(v) > 0 {
		t.Fatalf("lpp violations: %v", v)
	}

	if mSpin.SpinTime == 0 {
		t.Error("expected busy-waiting in the spin run")
	}
	// Spin: v0 CS [0,8), v1 spins [0,8), CS [8,16); v2 can only start at 8:
	// makespan 8+2(v0 rest)=...: v0 noncrit [8,10), v2 [8,14) on other? v1
	// holds p1 executing CS [8,16), v0's proc runs v0 [8,10) then v2
	// [10,16): makespan 18 vs LPP: v1 suspends at 0, v2 runs [0,6) on p1,
	// v1 CS [8,16) after v0 releases... LPP response must not be worse.
	if mLPP.MaxResponse[0] > mSpin.MaxResponse[0] {
		t.Errorf("LPP response %s worse than spin %s on this workload",
			rt.FormatTime(mLPP.MaxResponse[0]), rt.FormatTime(mSpin.MaxResponse[0]))
	}
}

// TestBaselineAnalysesBoundTheirRuntimes: the SPIN and LPP analyses must
// upper-bound the responses their own runtime protocols produce.
func TestBaselineAnalysesBoundTheirRuntimes(t *testing.T) {
	scen := taskgen.Scenario{
		M:          8,
		NumRes:     taskgen.IntRange{Lo: 2, Hi: 4},
		UAvg:       1.5,
		PAccess:    0.75,
		NReq:       taskgen.IntRange{Lo: 1, Hi: 8},
		CSLen:      taskgen.TimeRange{Lo: 15 * us, Hi: 50 * us},
		VertsRange: taskgen.IntRange{Lo: 6, Hi: 14},
		EdgeProb:   0.15,
		PeriodLo:   1 * rt.Millisecond,
		PeriodHi:   8 * rt.Millisecond,
	}
	g := taskgen.NewGenerator(scen)

	cases := []struct {
		method   analysis.Method
		protocol Protocol
	}{
		{analysis.SPIN, ProtocolSpin},
		{analysis.LPP, ProtocolLPP},
	}
	for _, tc := range cases {
		checked := 0
		for seed := int64(0); seed < 60 && checked < 8; seed++ {
			r := rand.New(rand.NewSource(seed))
			ts, err := g.Taskset(r, 2.0+r.Float64()*2.5)
			if err != nil {
				continue
			}
			res := analysis.Test(tc.method, ts, analysis.Options{})
			if !res.Schedulable {
				continue
			}
			checked++
			var horizon rt.Time
			for _, task := range ts.Tasks {
				if task.Period > horizon {
					horizon = task.Period
				}
			}
			for _, placement := range []CSPlacement{SpreadCS, FrontCS, BackCS} {
				s, err := New(ts, res.Partition, Config{
					Protocol: tc.protocol, Horizon: 3 * horizon, Placement: placement})
				if err != nil {
					t.Fatalf("%s seed %d: %v", tc.method, seed, err)
				}
				m, err := s.Run()
				if err != nil {
					t.Fatalf("%s seed %d: %v", tc.method, seed, err)
				}
				if v := s.Violations(); len(v) > 0 {
					t.Fatalf("%s seed %d: violations: %v", tc.method, seed, v)
				}
				if m.DeadlineMisses != 0 {
					t.Errorf("%s seed %d placement %d: deadline misses on analyzed-schedulable set",
						tc.method, seed, placement)
				}
				for _, task := range ts.Tasks {
					if m.MaxResponse[task.ID] > res.WCRT[task.ID] {
						t.Errorf("%s seed %d placement %d task %d: simulated %s > bound %s",
							tc.method, seed, placement, task.ID,
							rt.FormatTime(m.MaxResponse[task.ID]), rt.FormatTime(res.WCRT[task.ID]))
					}
				}
			}
		}
		if checked == 0 {
			t.Errorf("%s: no schedulable taskset generated", tc.method)
		}
	}
}
