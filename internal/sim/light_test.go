package sim

import (
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// lightFixture: two light tasks sharing processor 0 (hi: C=5us T=50us,
// lo: C=10us T=100us with one 2us CS on global l0), plus a third light on
// processor 1 hosting l0's agents.
func lightFixture(t *testing.T) (*model.Taskset, *partition.Partition) {
	t.Helper()
	ts := model.NewTaskset(2, 1)
	lo := model.NewTask(0, 100*us, 100*us)
	vl := lo.AddVertex(10 * us)
	lo.AddRequest(vl, 0, 1, 2*us)
	ts.Add(lo)
	remote := model.NewTask(1, 200*us, 200*us)
	vr := remote.AddVertex(20 * us)
	remote.AddRequest(vr, 0, 1, 3*us)
	ts.Add(remote)
	hi := model.NewTask(2, 50*us, 50*us)
	hi.AddVertex(5 * us)
	ts.Add(hi)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	for _, a := range []struct {
		id rt.TaskID
		k  rt.ProcID
	}{{0, 0}, {2, 0}, {1, 1}} {
		if err := p.AssignShared(a.id, a.k); err != nil {
			t.Fatal(err)
		}
	}
	p.PlaceResource(0, 1)
	return ts, p
}

func TestSharedProcessorPriorityScheduling(t *testing.T) {
	ts, p := lightFixture(t)
	// Synchronous release: hi (prio highest) runs [0,5) on p0; lo's
	// request to l0 runs remotely [0,2) on p1 while lo is suspended;
	// remote's request waits for lo's, then [2,5); lo's vertex resumes
	// only at t=5 when hi finishes: [5,13). remote: CS done at 5, then
	// noncrit [5,22) interleaved with its processor hosting no more
	// agents. Responses: hi=5, lo=13, remote=22.
	s, err := New(ts, p, Config{Horizon: 40 * us, Placement: FrontCS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	if got := m.MaxResponse[2]; got != 5*us {
		t.Errorf("response(hi) = %s, want 5us", rt.FormatTime(got))
	}
	if got := m.MaxResponse[0]; got != 13*us {
		t.Errorf("response(lo) = %s, want 13us", rt.FormatTime(got))
	}
	if got := m.MaxResponse[1]; got != 22*us {
		t.Errorf("response(remote) = %s, want 22us", rt.FormatTime(got))
	}
}

func TestSharedProcessorPreemption(t *testing.T) {
	// lo starts executing at t=2 (after its remote CS [0,2)); hi releases
	// at t=4 and must preempt lo immediately: lo runs [2,4) and [9,15).
	ts, p := lightFixture(t)
	s, err := New(ts, p, Config{
		Horizon:   40 * us,
		Placement: FrontCS,
		Offsets:   map[rt.TaskID]rt.Time{2: 4 * us},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	// hi preempts at 4, runs [4,9): its response is 5us.
	if got := m.MaxResponse[2]; got != 5*us {
		t.Errorf("response(hi) = %s, want 5us (immediate preemption)", rt.FormatTime(got))
	}
	// lo: CS [0,2), exec [2,4), preempted [4,9), exec [9,15): response 15us.
	if got := m.MaxResponse[0]; got != 15*us {
		t.Errorf("response(lo) = %s, want 15us", rt.FormatTime(got))
	}
}

func TestMixedHeavyLightSimulation(t *testing.T) {
	// A heavy fork-join task on procs {0,1} plus two lights sharing proc 2,
	// all contending for one global resource hosted on the heavy cluster.
	ts := model.NewTaskset(3, 1)
	h := model.NewTask(0, 100*us, 100*us)
	head := h.AddVertex(10 * us)
	for i := 0; i < 4; i++ {
		v := h.AddVertex(20 * us)
		h.AddEdge(head, v)
		h.AddRequest(v, 0, 1, 2*us)
	}
	ts.Add(h)
	for id := 1; id <= 2; id++ {
		l := model.NewTask(rt.TaskID(id), rt.Time(150+50*id)*us, rt.Time(150+50*id)*us)
		vl := l.AddVertex(15 * us)
		l.AddRequest(vl, 0, 2, 3*us)
		ts.Add(l)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	if !p.Assign(0, 2) {
		t.Fatal("assign heavy")
	}
	if err := p.AssignShared(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AssignShared(2, 2); err != nil {
		t.Fatal(err)
	}
	p.PlaceResource(0, 0)

	s, err := New(ts, p, Config{Horizon: 400 * us})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	if m.MaxLowPrioBlockers > 1 {
		t.Errorf("Lemma 1 violated in mixed system: %d", m.MaxLowPrioBlockers)
	}
	if m.Jobs < 8 {
		t.Errorf("expected several jobs, got %d", m.Jobs)
	}
	for id := rt.TaskID(0); id <= 2; id++ {
		if m.MaxResponse[id] == 0 {
			t.Errorf("task %d never completed a job", id)
		}
	}
}
