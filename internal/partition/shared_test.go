package partition

import (
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

func TestAssignSharedRejectsHeavyProc(t *testing.T) {
	ts := partitionSet(t, 8)
	p := New(ts)
	if !p.Assign(0, 2) {
		t.Fatal("Assign failed")
	}
	if err := p.AssignShared(1, p.Procs(0)[0]); err == nil {
		t.Error("AssignShared accepted a heavy-owned processor")
	}
}

func TestAssignSharedRejectsDuplicate(t *testing.T) {
	ts := partitionSet(t, 8)
	p := New(ts)
	if err := p.AssignShared(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AssignShared(0, 5); err == nil {
		t.Error("duplicate AssignShared accepted")
	}
}

func TestAssignSkipsSharedProcs(t *testing.T) {
	ts := partitionSet(t, 4)
	p := New(ts)
	if err := p.AssignShared(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AssignShared(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := p.Unassigned(); got != 2 {
		t.Fatalf("Unassigned = %d, want 2", got)
	}
	// A heavy assignment must avoid processors 0 and 1.
	if !p.Assign(1, 2) {
		t.Fatal("Assign(1,2) failed with 2 free procs")
	}
	for _, k := range p.Procs(1) {
		if k == 0 && len(p.SharedOn(0)) > 0 {
			t.Error("heavy task placed on a shared processor")
		}
	}
}

func TestIsSharedAndSharedOn(t *testing.T) {
	ts := partitionSet(t, 8)
	p := New(ts)
	p.Assign(0, 2)
	if err := p.AssignShared(1, 4); err != nil {
		t.Fatal(err)
	}
	if p.IsShared(0) {
		t.Error("heavy task reported shared")
	}
	if !p.IsShared(1) {
		t.Error("light task not reported shared")
	}
	if got := p.SharedOn(4); len(got) != 1 || got[0] != 1 {
		t.Errorf("SharedOn(4) = %v", got)
	}
	if got := p.SharedOn(5); len(got) != 0 {
		t.Errorf("SharedOn(5) = %v, want empty", got)
	}
}

func TestCloneCopiesShared(t *testing.T) {
	ts := partitionSet(t, 8)
	p := New(ts)
	if err := p.AssignShared(0, 3); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.AssignShared(1, 3); err != nil {
		t.Fatal(err)
	}
	if len(p.SharedOn(3)) != 1 {
		t.Error("Clone shares the light-task map")
	}
	if !c.IsShared(0) {
		t.Error("Clone lost the shared assignment")
	}
}

// mixedStub marks every task schedulable, so AlgorithmMixed exercises only
// the packing logic.
type mixedStub struct{}

func (mixedStub) WCRTs(p *Partition) map[rt.TaskID]rt.Time {
	out := make(map[rt.TaskID]rt.Time)
	for _, t := range p.TS.Tasks {
		out[t.ID] = 0
	}
	return out
}

func TestAlgorithmMixedPacksLightsWorstFit(t *testing.T) {
	ts := model.NewTaskset(3, 0)
	// One heavy task (one processor cluster of 2) and three lights with
	// utilizations 0.6, 0.3, 0.2: WFD gives p_a={0.6}, p_b={0.3, 0.2}
	// over the single remaining processor... with only one remaining
	// processor all three must fit or fail; 0.6+0.3+0.2 > 1 -> reject.
	h := model.NewTask(0, 100*rt.Microsecond, 100*rt.Microsecond)
	for i := 0; i < 3; i++ {
		h.AddVertex(50 * rt.Microsecond) // C=150, U=1.5 heavy; L*=50
	}
	ts.Add(h)
	utils := []rt.Time{60, 30, 20}
	for i, c := range utils {
		l := model.NewTask(rt.TaskID(i+1), 100*rt.Microsecond, 100*rt.Microsecond)
		l.AddVertex(c * rt.Microsecond)
		ts.Add(l)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := AlgorithmMixed(ts, mixedStub{}, WFD)
	if res.Schedulable {
		t.Fatal("overfull light packing accepted")
	}

	// Drop the 0.6 task: 0.3 + 0.2 fit on the single remaining processor.
	ts2 := model.NewTaskset(3, 0)
	h2 := model.NewTask(0, 100*rt.Microsecond, 100*rt.Microsecond)
	for i := 0; i < 3; i++ {
		h2.AddVertex(50 * rt.Microsecond)
	}
	ts2.Add(h2)
	for i, c := range []rt.Time{30, 20} {
		l := model.NewTask(rt.TaskID(i+1), 100*rt.Microsecond, 100*rt.Microsecond)
		l.AddVertex(c * rt.Microsecond)
		ts2.Add(l)
	}
	if err := ts2.Finalize(); err != nil {
		t.Fatal(err)
	}
	res2 := AlgorithmMixed(ts2, mixedStub{}, WFD)
	if !res2.Schedulable {
		t.Fatalf("feasible light packing rejected: %s", res2.Reason)
	}
	if !res2.Partition.IsShared(1) || !res2.Partition.IsShared(2) {
		t.Error("lights not marked shared")
	}
}
