package partition

import (
	"strings"
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

// stubAnalyzer returns fixed WCRTs, or deadline-misses for tasks whose
// cluster is smaller than need[id].
type stubAnalyzer struct {
	need map[rt.TaskID]int
}

func (s stubAnalyzer) WCRTs(p *Partition) map[rt.TaskID]rt.Time {
	out := make(map[rt.TaskID]rt.Time)
	for _, t := range p.TS.Tasks {
		if s.need != nil && p.NumProcs(t.ID) < s.need[t.ID] {
			out[t.ID] = rt.Infinity
		} else {
			out[t.ID] = t.Deadline / 2
		}
	}
	return out
}

// heavyTask builds a parallel task with C = factor*D spread over width
// parallel vertices (no edges), optionally using resource q.
func heavyTask(id rt.TaskID, period rt.Time, width int, factor float64,
	q rt.ResourceID, nReq int, cs rt.Time) *model.Task {

	t := model.NewTask(id, period, period)
	total := rt.Time(factor * float64(period))
	per := total / rt.Time(width)
	for i := 0; i < width; i++ {
		t.AddVertex(per)
	}
	if nReq > 0 {
		t.AddRequest(0, q, nReq, cs)
	}
	return t
}

func partitionSet(t *testing.T, m int) *model.Taskset {
	t.Helper()
	ts := model.NewTaskset(m, 2)
	// Two heavy tasks sharing l0; l1 local to task 0.
	t0 := heavyTask(0, 1000*rt.Microsecond, 10, 2.0, 0, 2, 10*rt.Microsecond)
	t0.AddRequest(1, 1, 1, 5*rt.Microsecond)
	ts.Add(t0)
	ts.Add(heavyTask(1, 2000*rt.Microsecond, 10, 3.0, 0, 4, 20*rt.Microsecond))
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestInitialProcs(t *testing.T) {
	ts := partitionSet(t, 16)
	// Task 0: C = 2000us, L* = 200us, D = 1000us:
	// ceil((2000-200)/(1000-200)) = ceil(2.25) = 3.
	m0, err := InitialProcs(ts.Task(0))
	if err != nil || m0 != 3 {
		t.Errorf("InitialProcs(task0) = %d, %v; want 3", m0, err)
	}
	// Task 1: C = 6000us, L* = 600us, D = 2000us:
	// ceil(5400/1400) = 4.
	m1, err := InitialProcs(ts.Task(1))
	if err != nil || m1 != 4 {
		t.Errorf("InitialProcs(task1) = %d, %v; want 4", m1, err)
	}
}

func TestInitialProcsRejectsInfeasibleChain(t *testing.T) {
	task := model.NewTask(0, 10*rt.Microsecond, 10*rt.Microsecond)
	a := task.AddVertex(6 * rt.Microsecond)
	b := task.AddVertex(6 * rt.Microsecond)
	task.AddEdge(a, b) // L* = 12 > D = 10
	if err := task.Finalize(0); err != nil {
		t.Fatal(err)
	}
	if _, err := InitialProcs(task); err == nil {
		t.Error("InitialProcs accepted task with L* >= D")
	}
}

func TestAssignAndUnassigned(t *testing.T) {
	ts := partitionSet(t, 8)
	p := New(ts)
	if got := p.Unassigned(); got != 8 {
		t.Fatalf("Unassigned = %d, want 8", got)
	}
	if !p.Assign(0, 3) {
		t.Fatal("Assign(0,3) failed")
	}
	if got := p.NumProcs(0); got != 3 {
		t.Errorf("NumProcs(0) = %d, want 3", got)
	}
	if got := p.Unassigned(); got != 5 {
		t.Errorf("Unassigned = %d, want 5", got)
	}
	if p.Assign(1, 6) {
		t.Error("Assign(1,6) succeeded with only 5 free")
	}
	if !p.Assign(1, 5) {
		t.Error("Assign(1,5) failed")
	}
	for k := 0; k < 8; k++ {
		if p.Owner(rt.ProcID(k)) < 0 {
			t.Errorf("processor %d unowned after full assignment", k)
		}
	}
}

func TestPlaceAndClearResources(t *testing.T) {
	ts := partitionSet(t, 8)
	p := New(ts)
	p.Assign(0, 4)
	p.PlaceResource(0, 2)
	if got := p.ResourceProc(0); got != 2 {
		t.Errorf("ResourceProc(0) = %d, want 2", got)
	}
	if got := p.ResourcesOn(2); len(got) != 1 || got[0] != 0 {
		t.Errorf("ResourcesOn(2) = %v", got)
	}
	// Re-placing moves the resource.
	p.PlaceResource(0, 3)
	if len(p.ResourcesOn(2)) != 0 || p.ResourceProc(0) != 3 {
		t.Error("re-placement did not move the resource")
	}
	p.ClearResources()
	if p.ResourceProc(0) != rt.NoProc || len(p.ResourcesOn(3)) != 0 {
		t.Error("ClearResources left residue")
	}
}

func TestCoLocatedAndClusterResources(t *testing.T) {
	ts := partitionSet(t, 8)
	p := New(ts)
	p.Assign(0, 2) // procs 0,1
	p.Assign(1, 2) // procs 2,3
	p.PlaceResource(0, 0)
	p.PlaceResource(1, 0)
	co := p.CoLocated(0)
	if len(co) != 2 {
		t.Errorf("CoLocated(0) = %v, want two resources", co)
	}
	cr := p.ClusterResources(0)
	if len(cr) != 2 {
		t.Errorf("ClusterResources(task0) = %v, want both resources", cr)
	}
	if got := p.ClusterResources(1); len(got) != 0 {
		t.Errorf("ClusterResources(task1) = %v, want empty", got)
	}
}

func TestAlgorithm1SchedulableImmediately(t *testing.T) {
	ts := partitionSet(t, 16)
	res := Algorithm1(ts, stubAnalyzer{}, WFD)
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	if res.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", res.Rounds)
	}
	// Initial federated sizes: 3 and 4.
	if res.Partition.NumProcs(0) != 3 || res.Partition.NumProcs(1) != 4 {
		t.Errorf("cluster sizes = %d, %d; want 3, 4",
			res.Partition.NumProcs(0), res.Partition.NumProcs(1))
	}
	// The global resource must be placed somewhere.
	if res.Partition.ResourceProc(0) == rt.NoProc {
		t.Error("global resource l0 unplaced")
	}
	// The local resource must not be placed.
	if res.Partition.ResourceProc(1) != rt.NoProc {
		t.Error("local resource l1 was placed on a processor")
	}
}

func TestAlgorithm1Augments(t *testing.T) {
	ts := partitionSet(t, 16)
	// Task 1 needs 6 processors (initial gives 4): two augmentation rounds.
	res := Algorithm1(ts, stubAnalyzer{need: map[rt.TaskID]int{1: 6}}, WFD)
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	if res.Partition.NumProcs(1) != 6 {
		t.Errorf("task1 cluster = %d, want 6", res.Partition.NumProcs(1))
	}
	if res.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", res.Rounds)
	}
}

func TestAlgorithm1ExhaustsProcessors(t *testing.T) {
	ts := partitionSet(t, 8)
	// 3 + 4 initial leaves one spare; demanding 7 for task 0 must fail.
	res := Algorithm1(ts, stubAnalyzer{need: map[rt.TaskID]int{0: 7}}, WFD)
	if res.Schedulable {
		t.Fatal("schedulable despite impossible demand")
	}
	if !strings.Contains(res.Reason, "no processors remain") {
		t.Errorf("Reason = %q", res.Reason)
	}
}

func TestAlgorithm1TooFewProcessorsInitially(t *testing.T) {
	ts := partitionSet(t, 4) // needs 3 + 4
	res := Algorithm1(ts, stubAnalyzer{}, WFD)
	if res.Schedulable {
		t.Fatal("schedulable despite insufficient processors")
	}
	if !strings.Contains(res.Reason, "initial assignment") {
		t.Errorf("Reason = %q", res.Reason)
	}
}

func TestIterativeFederated(t *testing.T) {
	ts := partitionSet(t, 16)
	res := IterativeFederated(ts, stubAnalyzer{need: map[rt.TaskID]int{0: 5}})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	if res.Partition.NumProcs(0) != 5 {
		t.Errorf("task0 cluster = %d, want 5", res.Partition.NumProcs(0))
	}
	// No resource placement happens in the federated baselines.
	if res.Partition.ResourceProc(0) != rt.NoProc {
		t.Error("IterativeFederated placed a resource")
	}
}

// wfdSet builds three heavy tasks with distinct slack so WFD placement is
// predictable, and several global resources with distinct utilizations.
func wfdSet(t *testing.T) *model.Taskset {
	t.Helper()
	ts := model.NewTaskset(16, 3)
	// All three tasks share all three resources (making them global).
	mk := func(id rt.TaskID, period rt.Time, factor float64) *model.Task {
		task := heavyTask(id, period, 20, factor, 0, 1, rt.Microsecond)
		task.AddRequest(1, 1, 2, rt.Microsecond)
		task.AddRequest(2, 2, 3, rt.Microsecond)
		return task
	}
	ts.Add(mk(0, 1000*rt.Microsecond, 1.5))
	ts.Add(mk(1, 1000*rt.Microsecond, 2.5))
	ts.Add(mk(2, 1000*rt.Microsecond, 3.5))
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestWFDPlacesOnMaxSlackCluster(t *testing.T) {
	ts := wfdSet(t)
	res := Algorithm1(ts, stubAnalyzer{}, WFD)
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	p := res.Partition
	// Initial clusters: ceil((C-L*)/(D-L*)) with L* = one vertex:
	// task 0: ceil(1425/925) = 2, slack 0.5;
	// task 1: ceil(2375/875) = 3, slack 0.5;
	// task 2: ceil(3325/825) = 5, slack 1.5 (max).
	// Resource utilizations are microscopic, so worst-fit sends every
	// resource to task 2's cluster — but onto distinct processors.
	procsSeen := map[rt.ProcID]bool{}
	for q := 0; q < 3; q++ {
		k := p.ResourceProc(rt.ResourceID(q))
		if k == rt.NoProc {
			t.Fatalf("resource %d unplaced", q)
		}
		if owner := p.Owner(k); owner != 2 {
			t.Errorf("resource %d placed on task %d's cluster, want max-slack task 2", q, owner)
		}
		if procsSeen[k] {
			t.Errorf("resource %d stacked on already-used processor %d", q, k)
		}
		procsSeen[k] = true
	}
}

func TestFFDPlacesOnFirstFit(t *testing.T) {
	ts := wfdSet(t)
	res := Algorithm1(ts, stubAnalyzer{}, FFD)
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	p := res.Partition
	// FFD drops everything onto the first cluster while it has room; the
	// resource utilizations here are tiny, so all three land on task 0's
	// cluster.
	for q := 0; q < 3; q++ {
		k := p.ResourceProc(rt.ResourceID(q))
		if p.Owner(k) != 0 {
			t.Errorf("FFD placed resource %d on task %d's cluster, want task 0",
				q, p.Owner(k))
		}
	}
}

func TestWFDBalancesProcessorsWithinCluster(t *testing.T) {
	// One heavy task with a big cluster and many global resources shared
	// with a second task: resources on the same cluster must spread over
	// distinct processors (min-utilization processor rule).
	ts := model.NewTaskset(12, 4)
	t0 := heavyTask(0, 1000*rt.Microsecond, 20, 4.0, 0, 1, rt.Microsecond)
	for q := 1; q < 4; q++ {
		t0.AddRequest(rt.VertexID(q), rt.ResourceID(q), 1, rt.Microsecond)
	}
	ts.Add(t0)
	t1 := heavyTask(1, 500*rt.Microsecond, 20, 1.2, 0, 1, rt.Microsecond)
	for q := 1; q < 4; q++ {
		t1.AddRequest(rt.VertexID(q), rt.ResourceID(q), 1, rt.Microsecond)
	}
	ts.Add(t1)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := Algorithm1(ts, stubAnalyzer{}, WFD)
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	p := res.Partition
	perProc := map[rt.ProcID]int{}
	perCluster := map[rt.TaskID]int{}
	for q := 0; q < 4; q++ {
		k := p.ResourceProc(rt.ResourceID(q))
		perProc[k]++
		perCluster[p.Owner(k)]++
	}
	for k, c := range perProc {
		// Each cluster receiving r resources over >= r processors must
		// never stack two resources on one processor.
		if c > 1 && p.NumProcs(p.Owner(k)) >= perCluster[p.Owner(k)] {
			t.Errorf("processor %d received %d resources despite free siblings", k, c)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	ts := partitionSet(t, 8)
	p := New(ts)
	p.Assign(0, 2)
	p.PlaceResource(0, 0)
	c := p.Clone()
	c.Assign(1, 2)
	c.PlaceResource(0, 1)
	if p.NumProcs(1) != 0 {
		t.Error("Clone shares cluster state")
	}
	if p.ResourceProc(0) != 0 {
		t.Error("Clone shares resource state")
	}
}

func TestEqualAssignment(t *testing.T) {
	ts := partitionSet(t, 16)
	a := Algorithm1(ts, stubAnalyzer{}, WFD).Partition
	b := Algorithm1(ts, stubAnalyzer{}, WFD).Partition
	if !a.EqualAssignment(a) {
		t.Error("partition not equal to itself")
	}
	if !a.EqualAssignment(b) {
		t.Error("identical Algorithm1 runs produced unequal assignments")
	}
	if a.EqualAssignment(nil) {
		t.Error("partition equal to nil")
	}
	// A different augmentation outcome (task 1 grown to 6 processors) is a
	// different assignment.
	c := Algorithm1(ts, stubAnalyzer{need: map[rt.TaskID]int{1: 6}}, WFD).Partition
	if a.EqualAssignment(c) {
		t.Error("distinct cluster sizes reported equal")
	}
	// Mutating resource placement alone must break equality: the analysis
	// iterates each processor's resource list in order.
	d := b.Clone()
	if q := d.ResourceProc(0); q != rt.NoProc {
		d.ClearResources()
		d.PlaceResource(0, (q+1)%16)
		if a.EqualAssignment(d) {
			t.Error("distinct resource placement reported equal")
		}
	}
}
