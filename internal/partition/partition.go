// Package partition implements the task and resource partitioning of the
// DPCP-p paper (Sec. V): federated processor assignment with iterative
// augmentation and rollback (Algorithm 1), and worst-fit-decreasing
// placement of global resources onto processors by utilization slack
// (Algorithm 2). A first-fit-decreasing variant is provided as an ablation.
//
//schedlint:deterministic
package partition

import (
	"fmt"
	"sort"

	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

// Partition records which processors each task owns (its cluster) and on
// which processor each global resource is served by agents. Local
// resources are never placed (they execute within the owning task).
type Partition struct {
	TS *model.Taskset

	procs   map[rt.TaskID][]rt.ProcID   // cluster of each task
	owner   []rt.TaskID                 // owning (heavy) task per processor
	resProc map[rt.ResourceID]rt.ProcID // placement of global resources
	resOn   map[rt.ProcID][]rt.ResourceID
	shared  map[rt.ProcID][]rt.TaskID // light tasks sharing a processor (Sec. VI)
}

// New returns an empty partition for the taskset.
func New(ts *model.Taskset) *Partition {
	p := &Partition{
		TS:      ts,
		procs:   make(map[rt.TaskID][]rt.ProcID),
		owner:   make([]rt.TaskID, ts.NumProcs),
		resProc: make(map[rt.ResourceID]rt.ProcID),
		resOn:   make(map[rt.ProcID][]rt.ResourceID),
		shared:  make(map[rt.ProcID][]rt.TaskID),
	}
	for k := range p.owner {
		p.owner[k] = -1
	}
	return p
}

// Assign grants count additional processors to the task, taking the lowest
// unassigned processor IDs. It returns false when not enough processors
// remain.
func (p *Partition) Assign(id rt.TaskID, count int) bool {
	if count <= 0 {
		return true
	}
	n := 0
	for k, o := range p.owner {
		if o < 0 && len(p.shared[rt.ProcID(k)]) == 0 {
			n++
			if n == count {
				break
			}
		}
	}
	if n < count {
		return false
	}
	n = 0
	for k, o := range p.owner {
		if o < 0 && len(p.shared[rt.ProcID(k)]) == 0 {
			p.owner[k] = id
			p.procs[id] = append(p.procs[id], rt.ProcID(k))
			n++
			if n == count {
				return true
			}
		}
	}
	return true
}

// Unassigned returns the number of processors not assigned to any task,
// heavy or light.
func (p *Partition) Unassigned() int {
	n := 0
	for k, o := range p.owner {
		if o < 0 && len(p.shared[rt.ProcID(k)]) == 0 {
			n++
		}
	}
	return n
}

// Procs returns the cluster of the task.
func (p *Partition) Procs(id rt.TaskID) []rt.ProcID { return p.procs[id] }

// NumProcs returns m_i, the cluster size of the task.
func (p *Partition) NumProcs(id rt.TaskID) int { return len(p.procs[id]) }

// Owner returns the heavy task owning processor k, or -1.
func (p *Partition) Owner(k rt.ProcID) rt.TaskID { return p.owner[k] }

// AssignShared places a light task on processor k, which may already host
// other light tasks (Sec. VI: light tasks are treated as sequential tasks
// on the remaining processors). The processor must not belong to a heavy
// task's cluster.
func (p *Partition) AssignShared(id rt.TaskID, k rt.ProcID) error {
	if p.owner[k] >= 0 {
		return fmt.Errorf("partition: processor %d belongs to heavy task %d", k, p.owner[k])
	}
	for _, other := range p.shared[k] {
		if other == id {
			return fmt.Errorf("partition: task %d already on processor %d", id, k)
		}
	}
	p.shared[k] = append(p.shared[k], id)
	p.procs[id] = append(p.procs[id], k)
	return nil
}

// SharedOn returns the light tasks sharing processor k.
func (p *Partition) SharedOn(k rt.ProcID) []rt.TaskID { return p.shared[k] }

// IsShared reports whether the task was placed with AssignShared, i.e.
// runs sequentially on a (possibly shared) processor.
func (p *Partition) IsShared(id rt.TaskID) bool {
	for _, ks := range p.procs[id] {
		for _, other := range p.shared[ks] {
			if other == id {
				return true
			}
		}
	}
	return false
}

// PlaceResource assigns global resource q to processor k.
func (p *Partition) PlaceResource(q rt.ResourceID, k rt.ProcID) {
	if old, ok := p.resProc[q]; ok {
		p.removeResOn(old, q)
	}
	p.resProc[q] = k
	p.resOn[k] = append(p.resOn[k], q)
}

func (p *Partition) removeResOn(k rt.ProcID, q rt.ResourceID) {
	lst := p.resOn[k]
	for i, x := range lst {
		if x == q {
			p.resOn[k] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// ClearResources removes every resource placement (Algorithm 1's rollback).
func (p *Partition) ClearResources() {
	p.resProc = make(map[rt.ResourceID]rt.ProcID)
	p.resOn = make(map[rt.ProcID][]rt.ResourceID)
}

// ResourceProc returns the processor serving global resource q, or NoProc
// when q is local or unplaced.
func (p *Partition) ResourceProc(q rt.ResourceID) rt.ProcID {
	if k, ok := p.resProc[q]; ok {
		return k
	}
	return rt.NoProc
}

// ResourcesOn returns the global resources placed on processor k
// (the paper's Phi(p_k)).
func (p *Partition) ResourcesOn(k rt.ProcID) []rt.ResourceID { return p.resOn[k] }

// CoLocated returns the global resources on the same processor as q,
// including q itself (the paper's Phi^p(l_q)).
func (p *Partition) CoLocated(q rt.ResourceID) []rt.ResourceID {
	k := p.ResourceProc(q)
	if k == rt.NoProc {
		return nil
	}
	return p.resOn[k]
}

// ClusterResources returns the global resources placed on the cluster of
// the task (the paper's Phi^p(tau_i)).
func (p *Partition) ClusterResources(id rt.TaskID) []rt.ResourceID {
	return p.AppendClusterResources(nil, id)
}

// AppendClusterResources appends the cluster's global resources to dst and
// returns the extended slice; analysis hot paths pass a reused buffer to
// stay allocation-free. Every resource lives on at most one processor, so
// the result never exceeds the taskset's resource count.
func (p *Partition) AppendClusterResources(dst []rt.ResourceID, id rt.TaskID) []rt.ResourceID {
	for _, k := range p.procs[id] {
		dst = append(dst, p.resOn[k]...)
	}
	return dst
}

// EqualAssignment reports whether p and o describe exactly the same
// assignment: the same processor owners, the same clusters in the same
// order, the same light-task sharing, and the same resource placement
// (including each processor's resource order, which the analysis iterates).
// The incremental delta analyzer uses it to decide whether a candidate
// partition of a patched taskset matches the retained final partition of
// the base analysis — order-sensitive equality is what makes replaying the
// base computation bit-identical.
func (p *Partition) EqualAssignment(o *Partition) bool {
	if o == nil || len(p.owner) != len(o.owner) {
		return false
	}
	for k, id := range p.owner {
		if o.owner[k] != id {
			return false
		}
	}
	if len(p.procs) != len(o.procs) {
		return false
	}
	for id, ps := range p.procs {
		ops, ok := o.procs[id]
		if !ok || len(ops) != len(ps) {
			return false
		}
		for j, k := range ps {
			if ops[j] != k {
				return false
			}
		}
	}
	if len(p.resProc) != len(o.resProc) {
		return false
	}
	for q, k := range p.resProc {
		if ok2, have := o.resProc[q]; !have || ok2 != k {
			return false
		}
	}
	if len(p.resOn) != len(o.resOn) {
		return false
	}
	for k, res := range p.resOn {
		ores, ok := o.resOn[k]
		if !ok || len(ores) != len(res) {
			return false
		}
		for j, q := range res {
			if ores[j] != q {
				return false
			}
		}
	}
	if len(p.shared) != len(o.shared) {
		return false
	}
	for k, ids := range p.shared {
		oids, ok := o.shared[k]
		if !ok || len(oids) != len(ids) {
			return false
		}
		for j, id := range ids {
			if oids[j] != id {
				return false
			}
		}
	}
	return true
}

// CloneFor returns a deep copy of the partition bound to another taskset,
// which must have the same processor count and contain every task ID the
// partition mentions. The audit's WCET-scaling check uses it to evaluate an
// analyzer on an identical partition of a perturbed taskset (the partition
// only names task, processor and resource IDs, all of which a structure-
// preserving perturbation keeps).
func (p *Partition) CloneFor(ts *model.Taskset) (*Partition, error) {
	if ts.NumProcs != p.TS.NumProcs {
		return nil, fmt.Errorf("partition: CloneFor needs %d processors, taskset has %d",
			p.TS.NumProcs, ts.NumProcs)
	}
	if ts.NumResources != p.TS.NumResources {
		return nil, fmt.Errorf("partition: CloneFor needs %d resources, taskset has %d",
			p.TS.NumResources, ts.NumResources)
	}
	ids := make(map[rt.TaskID]bool, len(ts.Tasks))
	for _, t := range ts.Tasks {
		ids[t.ID] = true
	}
	for id := range p.procs {
		if !ids[id] {
			return nil, fmt.Errorf("partition: CloneFor target lacks task %d", id)
		}
	}
	c := p.Clone()
	c.TS = ts
	return c, nil
}

// Clone returns a deep copy (used by Algorithm 1 to restart cleanly).
func (p *Partition) Clone() *Partition {
	c := New(p.TS)
	copy(c.owner, p.owner)
	for id, ps := range p.procs {
		c.procs[id] = append([]rt.ProcID(nil), ps...)
	}
	for q, k := range p.resProc {
		c.resProc[q] = k
		c.resOn[k] = append(c.resOn[k], q)
	}
	for k, ids := range p.shared {
		c.shared[k] = append([]rt.TaskID(nil), ids...)
	}
	return c
}

// InitialProcs returns the federated starting cluster size of Sec. V:
// ceil((C_i - L*_i)/(D_i - L*_i)), at least 1.
func InitialProcs(t *model.Task) (int, error) {
	num := t.WCET() - t.LongestPath()
	den := t.Deadline - t.LongestPath()
	if den <= 0 {
		return 0, fmt.Errorf("partition: task %d has L*=%s >= D=%s and can never meet its deadline",
			t.ID, rt.FormatTime(t.LongestPath()), rt.FormatTime(t.Deadline))
	}
	m := int(rt.CeilDiv(num, den))
	if m < 1 {
		m = 1
	}
	return m, nil
}

// Analyzer computes the worst-case response time of each task under a
// candidate partition; tasks must be analyzable in any order (the analysis
// itself walks priorities internally). Implemented by internal/analysis.
type Analyzer interface {
	// WCRTs returns a response-time bound per task. A bound above the
	// task's deadline (or rt.Infinity) marks the task unschedulable under
	// this partition.
	//
	// The returned map may be analyzer-owned scratch, valid only until the
	// next WCRTs call on the same analyzer. The partitioning loops below
	// respect that lifetime and copy the map into any Result they return.
	WCRTs(p *Partition) map[rt.TaskID]rt.Time
}

// copyWCRTs detaches a WCRT map from its (possibly scratch-owned) analyzer
// before it escapes into a long-lived Result.
func copyWCRTs(wcrts map[rt.TaskID]rt.Time) map[rt.TaskID]rt.Time {
	if wcrts == nil {
		return nil
	}
	out := make(map[rt.TaskID]rt.Time, len(wcrts))
	for id, r := range wcrts {
		out[id] = r
	}
	return out
}

// Result is the outcome of a partitioning run.
type Result struct {
	Schedulable bool
	Partition   *Partition
	WCRT        map[rt.TaskID]rt.Time
	Rounds      int    // outer iterations of Algorithm 1
	Reason      string // why the set was declared unschedulable
}

// PlacementHeuristic selects the resource-placement strategy.
type PlacementHeuristic int

const (
	// WFD is Algorithm 2: worst-fit decreasing by cluster utilization
	// slack, min-utilization processor within the cluster.
	WFD PlacementHeuristic = iota
	// FFD is the first-fit-decreasing ablation: resources go to the first
	// cluster (by index) with room, min-utilization processor within it.
	FFD
)

// Algorithm1 runs the paper's task-and-resource partitioning: initial
// federated assignment, worst-fit-decreasing resource placement, and
// schedulability-test-driven processor augmentation with rollback.
func Algorithm1(ts *model.Taskset, a Analyzer, heuristic PlacementHeuristic) Result {
	p := New(ts)
	for _, t := range ts.Tasks {
		mi, err := InitialProcs(t)
		if err != nil {
			return Result{Partition: p, Reason: err.Error()}
		}
		if !p.Assign(t.ID, mi) {
			return Result{Partition: p, Reason: fmt.Sprintf(
				"not enough processors for initial assignment of task %d", t.ID)}
		}
	}

	byPrio := ts.ByPriorityDesc()
	rounds := 0
	for {
		rounds++
		if rounds > 4*ts.NumProcs+8 {
			// Algorithm 1 terminates within m-2n rounds on heavy-only
			// sets; this guard catches degenerate inputs.
			return Result{Partition: p, Rounds: rounds, Reason: "round limit exceeded"}
		}
		p.ClearResources()
		if !placeResources(p, heuristic) {
			return Result{Partition: p, Rounds: rounds,
				Reason: "infeasible global resource allocation"}
		}
		wcrts := a.WCRTs(p)
		augmented := false
		for _, t := range byPrio {
			if wcrts[t.ID] <= t.Deadline {
				continue
			}
			if p.Unassigned() == 0 {
				return Result{Partition: p, WCRT: copyWCRTs(wcrts), Rounds: rounds,
					Reason: fmt.Sprintf("task %d misses deadline (R=%s > D=%s) and no processors remain",
						t.ID, rt.FormatTime(wcrts[t.ID]), rt.FormatTime(t.Deadline))}
			}
			p.Assign(t.ID, 1)
			augmented = true
			break // rollback resources and retry (paper line 13-14)
		}
		if !augmented {
			return Result{Schedulable: true, Partition: p, WCRT: copyWCRTs(wcrts), Rounds: rounds}
		}
	}
}

// IterativeFederated performs the same processor-augmentation loop without
// resource placement; it drives the SPIN, LPP and FED-FP baselines, whose
// requests execute locally.
func IterativeFederated(ts *model.Taskset, a Analyzer) Result {
	p := New(ts)
	for _, t := range ts.Tasks {
		mi, err := InitialProcs(t)
		if err != nil {
			return Result{Partition: p, Reason: err.Error()}
		}
		if !p.Assign(t.ID, mi) {
			return Result{Partition: p, Reason: fmt.Sprintf(
				"not enough processors for initial assignment of task %d", t.ID)}
		}
	}
	byPrio := ts.ByPriorityDesc()
	rounds := 0
	for {
		rounds++
		if rounds > 4*ts.NumProcs+8 {
			return Result{Partition: p, Rounds: rounds, Reason: "round limit exceeded"}
		}
		wcrts := a.WCRTs(p)
		augmented := false
		for _, t := range byPrio {
			if wcrts[t.ID] <= t.Deadline {
				continue
			}
			if p.Unassigned() == 0 {
				return Result{Partition: p, WCRT: copyWCRTs(wcrts), Rounds: rounds,
					Reason: fmt.Sprintf("task %d misses deadline and no processors remain", t.ID)}
			}
			p.Assign(t.ID, 1)
			augmented = true
			break
		}
		if !augmented {
			return Result{Schedulable: true, Partition: p, WCRT: copyWCRTs(wcrts), Rounds: rounds}
		}
	}
}

// AlgorithmMixed extends Algorithm 1 to sets containing light tasks
// (Sec. VI): heavy tasks receive federated clusters exactly as in
// Algorithm 1, light tasks are packed worst-fit-decreasing by utilization
// onto the remaining processors (several lights may share one processor),
// global resources are placed on the heavy clusters by Algorithm 2, and
// the augmentation loop grows the cluster of the first failing heavy
// task. A failing light task is terminal: the paper leaves optimal light
// handling open, and this implementation does not re-pack lights.
func AlgorithmMixed(ts *model.Taskset, a Analyzer, heuristic PlacementHeuristic) Result {
	p := New(ts)
	var lights []*model.Task
	for _, t := range ts.Tasks {
		if !t.Heavy() {
			lights = append(lights, t)
			continue
		}
		mi, err := InitialProcs(t)
		if err != nil {
			return Result{Partition: p, Reason: err.Error()}
		}
		if !p.Assign(t.ID, mi) {
			return Result{Partition: p, Reason: fmt.Sprintf(
				"not enough processors for initial assignment of heavy task %d", t.ID)}
		}
	}

	// Light tasks: worst-fit decreasing by utilization over the remaining
	// processors; a processor may host several lights while its total
	// utilization stays at or below 1.
	if len(lights) > 0 {
		var pool []rt.ProcID
		for k := 0; k < ts.NumProcs; k++ {
			if p.Owner(rt.ProcID(k)) < 0 {
				pool = append(pool, rt.ProcID(k))
			}
		}
		if len(pool) == 0 {
			return Result{Partition: p, Reason: "no processors left for light tasks"}
		}
		sort.SliceStable(lights, func(a, b int) bool {
			ua, ub := lights[a].Utilization(), lights[b].Utilization()
			if ua != ub {
				return ua > ub
			}
			return lights[a].ID < lights[b].ID
		})
		util := make(map[rt.ProcID]float64, len(pool))
		for _, t := range lights {
			best := rt.NoProc
			for _, k := range pool {
				if best == rt.NoProc || util[k] < util[best] {
					best = k
				}
			}
			if util[best]+t.Utilization() > 1.0+1e-9 {
				return Result{Partition: p, Reason: fmt.Sprintf(
					"light task %d does not fit on any remaining processor", t.ID)}
			}
			if err := p.AssignShared(t.ID, best); err != nil {
				return Result{Partition: p, Reason: err.Error()}
			}
			util[best] += t.Utilization()
		}
	}

	byPrio := ts.ByPriorityDesc()
	rounds := 0
	for {
		rounds++
		if rounds > 4*ts.NumProcs+8 {
			return Result{Partition: p, Rounds: rounds, Reason: "round limit exceeded"}
		}
		p.ClearResources()
		if !placeResources(p, heuristic) {
			return Result{Partition: p, Rounds: rounds,
				Reason: "infeasible global resource allocation"}
		}
		wcrts := a.WCRTs(p)
		augmented := false
		for _, t := range byPrio {
			if wcrts[t.ID] <= t.Deadline {
				continue
			}
			if p.IsShared(t.ID) || p.Unassigned() == 0 {
				return Result{Partition: p, WCRT: copyWCRTs(wcrts), Rounds: rounds,
					Reason: fmt.Sprintf("task %d misses deadline (R=%s > D=%s)",
						t.ID, rt.FormatTime(wcrts[t.ID]), rt.FormatTime(t.Deadline))}
			}
			p.Assign(t.ID, 1)
			augmented = true
			break
		}
		if !augmented {
			return Result{Schedulable: true, Partition: p, WCRT: copyWCRTs(wcrts), Rounds: rounds}
		}
	}
}

// placeResources runs Algorithm 2 (WFD) or the FFD ablation. It returns
// false when some resource cannot fit in any cluster without exceeding its
// capacity.
func placeResources(p *Partition, heuristic PlacementHeuristic) bool {
	ts := p.TS
	globals := ts.GlobalResources()
	sort.SliceStable(globals, func(a, b int) bool {
		ua, ub := ts.ResourceUtilization(globals[a]), ts.ResourceUtilization(globals[b])
		if ua != ub {
			return ua > ub
		}
		return globals[a] < globals[b]
	})

	type cluster struct {
		task     *model.Task
		capacity float64
		util     float64
		procUtil map[rt.ProcID]float64
	}
	var clusters []*cluster
	for _, t := range ts.Tasks {
		procs := p.Procs(t.ID)
		if len(procs) == 0 || p.IsShared(t.ID) {
			continue
		}
		c := &cluster{task: t, capacity: float64(len(procs)), util: t.Utilization(),
			procUtil: make(map[rt.ProcID]float64, len(procs))}
		for _, k := range procs {
			c.procUtil[k] = 0
		}
		clusters = append(clusters, c)
	}
	if len(clusters) == 0 {
		// All-light systems: fall back to per-processor pseudo-clusters so
		// the original DPCP placement still has somewhere to put agents.
		for k := 0; k < ts.NumProcs; k++ {
			ids := p.SharedOn(rt.ProcID(k))
			if len(ids) == 0 {
				continue
			}
			util := 0.0
			for _, id := range ids {
				util += ts.Task(id).Utilization()
			}
			c := &cluster{task: ts.Task(ids[0]), capacity: 1, util: util,
				procUtil: map[rt.ProcID]float64{rt.ProcID(k): 0}}
			clusters = append(clusters, c)
		}
	}
	if len(clusters) == 0 {
		return len(globals) == 0
	}

	for _, q := range globals {
		uq := ts.ResourceUtilization(q)
		var chosen *cluster
		switch heuristic {
		case WFD:
			for _, c := range clusters {
				if chosen == nil || c.capacity-c.util > chosen.capacity-chosen.util {
					chosen = c
				}
			}
		case FFD:
			for _, c := range clusters {
				if c.util+uq <= c.capacity {
					chosen = c
					break
				}
			}
			if chosen == nil {
				chosen = clusters[0]
			}
		}
		if chosen.util+uq > chosen.capacity {
			return false
		}
		// Min resource-utilization processor within the cluster
		// (Algorithm 2 line 9), ties by processor ID for determinism.
		var bestProc rt.ProcID = rt.NoProc
		for _, k := range p.Procs(chosen.task.ID) {
			if bestProc == rt.NoProc || c2less(chosen.procUtil[k], k, chosen.procUtil[bestProc], bestProc) {
				bestProc = k
			}
		}
		p.PlaceResource(q, bestProc)
		chosen.procUtil[bestProc] += uq
		chosen.util += uq
	}
	return true
}

func c2less(u1 float64, k1 rt.ProcID, u2 float64, k2 rt.ProcID) bool {
	if u1 != u2 {
		return u1 < u2
	}
	return k1 < k2
}
