// Package store persists content-addressed analysis results on disk, so a
// restarted service keeps its cache warm: the in-memory LRU of
// internal/server writes through to a Store, and repeated sweeps across
// process lifetimes pay only for points they have never analyzed.
//
// The store is deliberately dumb: a flat mapping from an opaque key string
// to a byte value, one file per entry. Because every key already is a
// content address (the taskset's canonical SHA-256 hash joined with the
// method and every verdict-changing option), entries never need
// invalidation — a key's value is immutable, so crash-safety reduces to
// atomic single-file writes (temp file + rename) and concurrent writers of
// the same key are idempotent.
//
// Two robustness layers sit alongside the store proper. Hooks let tests
// inject filesystem faults — I/O errors, torn writes, crash points —
// without a custom filesystem, which is what the server's chaos suite is
// built on. Breaker is a circuit breaker callers wrap around store access
// so a failing disk degrades to recomputation instead of charging every
// request a doomed syscall.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// ErrTornWrite, returned by a Hooks.BeforeRename injection, simulates a
// crash or power loss between writing the temp file and renaming it over
// the target: the temp file stays on disk, the rename never happens, and —
// exactly like a real machine that lost power after the write was
// acknowledged — the writer observes success.
var ErrTornWrite = errors.New("store: injected torn write (rename skipped)")

// Hooks intercept the store's filesystem operations for fault injection.
// Each hook receives the target path and may return an error to inject a
// failure (EIO, ENOSPC, permission denied, ...) or block to widen race
// windows. Hooks exist for tests — the chaos suite schedules faults
// through them — and are never set in production.
type Hooks struct {
	// BeforeRead fires before reading a value or checkpoint file; a
	// non-nil return is surfaced as the read's error.
	BeforeRead func(path string) error
	// BeforeWrite fires before creating the temp file of an atomic write;
	// a non-nil return fails the write with that error.
	BeforeWrite func(path string) error
	// BeforeRename fires after the temp file is durable but before the
	// rename. Returning ErrTornWrite skips the rename, leaves the temp
	// file behind and reports success (a simulated crash after
	// acknowledgment); any other non-nil error fails the write cleanly.
	BeforeRename func(path string) error
}

// Store is an on-disk content-addressed byte store rooted at one directory.
// All methods are safe for concurrent use; Get never observes a partial
// Put.
type Store struct {
	dir   string
	hooks atomic.Pointer[Hooks]
}

// Open creates (if needed) the store rooted at dir and probes it with a
// throwaway write, so a directory that is unwritable, read-only, or
// occupied by a regular file fails loudly at startup instead of turning
// every later Put into a silent metrics blip.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: cannot create %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(dir, ".probe*")
	if err != nil {
		return nil, fmt.Errorf("store: directory %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	_, werr := probe.Write([]byte("schedd store probe"))
	cerr := probe.Close()
	os.Remove(name)
	if werr != nil || cerr != nil {
		return nil, fmt.Errorf("store: probe write to %s failed: %w", dir, errors.Join(werr, cerr))
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetHooks installs (or, with nil, removes) fault-injection hooks. Safe to
// call concurrently with store operations; in-flight operations may still
// use the previous hooks.
func (s *Store) SetHooks(h *Hooks) { s.hooks.Store(h) }

// path maps a key to its file: keys are arbitrary strings (cache keys
// contain '|'), so the filename is the hex SHA-256 of the key, sharded by
// its first two characters to keep directories small.
func (s *Store) path(key string) string {
	h := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(h[:])
	return filepath.Join(s.dir, name[:2], name[2:])
}

// Get returns the stored value of key. The boolean reports presence; the
// error reports anything other than a clean miss (an unreadable store is
// not a miss, so callers can surface degradation in metrics).
func (s *Store) Get(key string) ([]byte, bool, error) {
	data, err := s.ReadFile(s.path(key))
	switch {
	case err == nil:
		return data, true, nil
	case os.IsNotExist(err):
		return nil, false, nil
	default:
		return nil, false, err
	}
}

// ReadFile reads one file under the store's fault-injection hooks; the
// sweep-job registry loads its checkpoints through it so injected read
// faults reach the startup path too.
func (s *Store) ReadFile(path string) ([]byte, error) {
	if h := s.hooks.Load(); h != nil && h.BeforeRead != nil {
		if err := h.BeforeRead(path); err != nil {
			return nil, err
		}
	}
	return os.ReadFile(path)
}

// Put stores the value under key, atomically: a reader either sees the
// whole value or none. Re-putting an existing key is allowed and (keys
// being content addresses) idempotent. Cache entries are recomputable, so
// Put does not fsync — a crash may lose the entry, never corrupt it; state
// that must survive power loss (sweep checkpoints) goes through WriteFile
// with sync set.
func (s *Store) Put(key string, val []byte) error {
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return s.WriteFile(path, val, false)
}

// WriteFile writes data to path through the same temp-file + rename
// protocol as WriteFileAtomic, under the store's fault-injection hooks.
// With sync set, the temp file is fsynced before the rename and the parent
// directory after it, so the rename itself survives power loss — without
// it, an "atomic" write can be acknowledged and then vanish entirely when
// the directory entry never reaches the platter. Sync costs two fsyncs per
// write (see BenchmarkWriteFileAtomic); it is on for sweep-job checkpoints,
// whose loss discards progress, and off for cache entries, which are
// recomputable.
func (s *Store) WriteFile(path string, data []byte, sync bool) error {
	return writeFileAtomic(path, data, sync, s.hooks.Load())
}

// Entries counts the stored values; it walks the store's shard
// directories, so it is for tests and operator tooling, not hot paths.
// Only content-addressed entries are counted: foreign files sharing the
// root (e.g. the analysis server's sweep-job checkpoints under jobs/) and
// temp files orphaned by a crash mid-Put are excluded.
func (s *Store) Entries() (int, error) {
	tops, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, top := range tops {
		if !top.IsDir() || !isHexShard(top.Name()) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, top.Name()))
		if err != nil {
			return 0, err
		}
		for _, f := range files {
			if !f.IsDir() && !strings.Contains(f.Name(), ".tmp") {
				n++
			}
		}
	}
	return n, nil
}

// isHexShard reports whether name is a two-character lowercase-hex shard
// directory of the store layout.
func isHexShard(name string) bool {
	if len(name) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// WriteFileAtomic writes data to path through a same-directory temp file
// and rename, so concurrent readers never observe a partial file and a
// crash leaves either the old content or the new, never a torn write. It
// does not fsync (see Store.WriteFile for the durable variant and the
// tradeoff).
func WriteFileAtomic(path string, data []byte) error {
	return writeFileAtomic(path, data, false, nil)
}

func writeFileAtomic(path string, data []byte, sync bool, h *Hooks) error {
	dir, base := filepath.Split(path)
	if h != nil && h.BeforeWrite != nil {
		if err := h.BeforeWrite(path); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if h != nil && h.BeforeRename != nil {
		if err := h.BeforeRename(path); err != nil {
			if errors.Is(err, ErrTornWrite) {
				return nil // simulated crash: temp written, rename lost
			}
			os.Remove(tmpName)
			return err
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if sync {
		return syncDir(filepath.Dir(path))
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename inside it survives
// power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
