// Package store persists content-addressed analysis results on disk, so a
// restarted service keeps its cache warm: the in-memory LRU of
// internal/server writes through to a Store, and repeated sweeps across
// process lifetimes pay only for points they have never analyzed.
//
// The store is deliberately dumb: a flat mapping from an opaque key string
// to a byte value, one file per entry. Because every key already is a
// content address (the taskset's canonical SHA-256 hash joined with the
// method and every verdict-changing option), entries never need
// invalidation — a key's value is immutable, so crash-safety reduces to
// atomic single-file writes (temp file + rename) and concurrent writers of
// the same key are idempotent.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is an on-disk content-addressed byte store rooted at one directory.
// All methods are safe for concurrent use; Get never observes a partial
// Put.
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its file: keys are arbitrary strings (cache keys
// contain '|'), so the filename is the hex SHA-256 of the key, sharded by
// its first two characters to keep directories small.
func (s *Store) path(key string) string {
	h := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(h[:])
	return filepath.Join(s.dir, name[:2], name[2:])
}

// Get returns the stored value of key. The boolean reports presence; the
// error reports anything other than a clean miss (an unreadable store is
// not a miss, so callers can surface degradation in metrics).
func (s *Store) Get(key string) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(key))
	switch {
	case err == nil:
		return data, true, nil
	case os.IsNotExist(err):
		return nil, false, nil
	default:
		return nil, false, err
	}
}

// Put stores the value under key, atomically: a reader either sees the
// whole value or none. Re-putting an existing key is allowed and (keys
// being content addresses) idempotent.
func (s *Store) Put(key string, val []byte) error {
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return WriteFileAtomic(path, val)
}

// Entries counts the stored values; it walks the store's shard
// directories, so it is for tests and operator tooling, not hot paths.
// Only content-addressed entries are counted: foreign files sharing the
// root (e.g. the analysis server's sweep-job checkpoints under jobs/) and
// temp files orphaned by a crash mid-Put are excluded.
func (s *Store) Entries() (int, error) {
	tops, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, top := range tops {
		if !top.IsDir() || !isHexShard(top.Name()) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, top.Name()))
		if err != nil {
			return 0, err
		}
		for _, f := range files {
			if !f.IsDir() && !strings.Contains(f.Name(), ".tmp") {
				n++
			}
		}
	}
	return n, nil
}

// isHexShard reports whether name is a two-character lowercase-hex shard
// directory of the store layout.
func isHexShard(name string) bool {
	if len(name) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// WriteFileAtomic writes data to path through a same-directory temp file
// and rename, so concurrent readers never observe a partial file and a
// crash leaves either the old content or the new, never a torn write. It is
// also used directly for sweep-job checkpoints (internal/server), which
// need the same all-or-nothing property.
func WriteFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
