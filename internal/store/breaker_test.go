package store

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// testClock is an injectable, manually advanced clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, probe time.Duration) (*Breaker, *testClock) {
	clk := &testClock{t: time.Unix(1_700_000_000, 0)}
	b := NewBreaker(threshold, probe)
	b.now = clk.now
	return b, clk
}

var errDisk = errors.New("disk on fire")

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("breaker closed access after %d failures (threshold 3)", i)
		}
		b.Record(errDisk)
		if b.State() != BreakerClosed {
			t.Fatalf("state %q after %d failures", b.State(), i+1)
		}
	}
	b.Record(errDisk) // third consecutive failure trips it
	if b.State() != BreakerOpen {
		t.Fatalf("state %q after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed access before the probe interval")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	// Interleaved successes must keep a flaky-but-working store closed:
	// the threshold counts consecutive failures only.
	for i := 0; i < 10; i++ {
		b.Record(errDisk)
		b.Record(errDisk)
		b.Record(nil)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %q after interleaved successes, want closed", b.State())
	}
	if b.Trips() != 0 {
		t.Fatalf("Trips = %d, want 0", b.Trips())
	}
}

func TestBreakerProbeCycle(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Record(errDisk)
	if b.State() != BreakerOpen {
		t.Fatalf("state %q, want open", b.State())
	}

	// Before the interval: no access at all.
	if b.Allow() {
		t.Fatal("probe admitted before the interval")
	}
	clk.advance(time.Second)

	// At the interval: exactly one caller gets through as the probe.
	if !b.Allow() {
		t.Fatal("probe not admitted at the interval")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %q during probe, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted during an in-flight probe")
	}

	// Failed probe: re-open, re-arm the timer.
	b.Record(errDisk)
	if b.State() != BreakerOpen {
		t.Fatalf("state %q after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("access allowed right after a failed probe")
	}

	// Next interval, successful probe: closed, full service.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state %q after successful probe, want closed", b.State())
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker limited access")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1 (re-arming is not a new trip)", b.Trips())
	}
}

// TestBreakerIgnoresFailuresWhileOpen: forced checkpoint flushes write even
// under an open breaker; their failures must not re-arm the probe timer or
// count as new trips, or a busy sweep would keep pushing the probe away.
func TestBreakerIgnoresFailuresWhileOpen(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Record(errDisk)
	clk.advance(900 * time.Millisecond)
	b.Record(errDisk) // forced flush failed; not a probe
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("out-of-probe failure re-armed the probe timer")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}
}

// TestBreakerForcedSuccessCloses: a forced (non-probe) write that succeeds
// while the breaker is open proves the disk recovered; staying open would
// be pure latency for no protection.
func TestBreakerForcedSuccessCloses(t *testing.T) {
	b, _ := newTestBreaker(1, time.Hour)
	b.Record(errDisk)
	if b.State() != BreakerOpen {
		t.Fatalf("state %q, want open", b.State())
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state %q after out-of-probe success, want closed", b.State())
	}
}

func TestBreakerNilIsPermanentlyClosed(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker denied access")
	}
	b.Record(errDisk) // must not panic
	if b.State() != "" || b.Trips() != 0 {
		t.Fatalf("nil breaker state %q trips %d", b.State(), b.Trips())
	}
}

func TestBreakerConcurrentAccess(t *testing.T) {
	b := NewBreaker(4, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(fail bool) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if b.Allow() {
					if fail {
						b.Record(errDisk)
					} else {
						b.Record(nil)
					}
				}
				_ = b.State()
				_ = b.Trips()
			}
		}(i%2 == 0)
	}
	wg.Wait()
}
