package store

import (
	"sync"
	"time"
)

// Breaker states.
const (
	BreakerClosed   = "closed"    // store healthy, all access allowed
	BreakerOpen     = "open"      // store failing, access skipped
	BreakerHalfOpen = "half-open" // one probe in flight to test recovery
)

// Breaker is a circuit breaker for store access. A Store failure never
// fails a request — callers degrade to recomputation — but without a
// breaker a dead disk still charges every request the latency of a doomed
// syscall (and a hung NFS mount far worse). The breaker opens after
// Threshold consecutive failures; while open, Allow returns false and
// callers skip the store entirely. Every ProbeEvery one caller is admitted
// as a half-open probe; its success closes the breaker, its failure
// re-arms the probe timer.
//
// All methods are safe for concurrent use and safe on a nil receiver (a
// nil Breaker is permanently closed), so callers without a store need no
// branching.
type Breaker struct {
	threshold int
	probe     time.Duration
	now       func() time.Time // injectable clock for tests

	mu          sync.Mutex
	open        bool
	probing     bool // a half-open probe has been admitted and not yet recorded
	consecutive int
	nextProbe   time.Time
	trips       int64

	// onTransition, when set, observes every state change (from, to are
	// Breaker* state names). Invoked outside the breaker's mutex so
	// observers may call back into State/Trips; set it before first use.
	onTransition func(from, to string)
}

// NewBreaker returns a breaker that opens after threshold consecutive
// recorded failures (minimum 1) and admits a recovery probe every probe
// interval (minimum 1ms).
func NewBreaker(threshold int, probe time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if probe < time.Millisecond {
		probe = time.Millisecond
	}
	return &Breaker{threshold: threshold, probe: probe, now: time.Now}
}

// OnTransition registers an observer for state changes (degraded-mode
// entry and exit, probe admissions). The callback runs outside the
// breaker's mutex, on whichever goroutine drove the transition. Call
// before the breaker is shared; a nil callback removes the observer.
func (b *Breaker) OnTransition(fn func(from, to string)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// stateLocked is State's body; callers hold b.mu.
func (b *Breaker) stateLocked() string {
	switch {
	case !b.open:
		return BreakerClosed
	case b.probing:
		return BreakerHalfOpen
	default:
		return BreakerOpen
	}
}

// notify invokes the transition observer after a mutation; call with the
// mutex released.
func (b *Breaker) notify(fn func(from, to string), from, to string) {
	if fn != nil && from != to {
		fn(from, to)
	}
}

// Allow reports whether the caller may touch the store. While open, it
// admits exactly one caller per probe interval (the half-open probe); that
// caller must Record its outcome, or the breaker stays open until the next
// interval.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	if !b.open {
		b.mu.Unlock()
		return true
	}
	if !b.probing && !b.now().Before(b.nextProbe) {
		from := b.stateLocked()
		b.probing = true
		to, fn := b.stateLocked(), b.onTransition
		b.mu.Unlock()
		b.notify(fn, from, to)
		return true
	}
	b.mu.Unlock()
	return false
}

// Record feeds one store operation's outcome into the breaker. A success
// closes it from any state; a failure counts toward the threshold while
// closed and re-arms the probe timer after a failed half-open probe.
// Failures recorded while open but outside a probe (e.g. a forced
// checkpoint flush) do not thrash the state.
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	from := b.stateLocked()
	if err == nil {
		b.open = false
		b.probing = false
		b.consecutive = 0
	} else if b.open {
		if b.probing {
			b.probing = false
			b.nextProbe = b.now().Add(b.probe)
		}
	} else {
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.open = true
			b.probing = false
			b.trips++
			b.nextProbe = b.now().Add(b.probe)
		}
	}
	to, fn := b.stateLocked(), b.onTransition
	b.mu.Unlock()
	b.notify(fn, from, to)
}

// State returns the breaker's current state name ("" on a nil breaker).
func (b *Breaker) State() string {
	if b == nil {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
