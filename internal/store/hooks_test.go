package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenFailsOnUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root, permission bits do not apply")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	_, err := Open(dir)
	if err == nil {
		t.Fatal("Open on a read-only directory succeeded")
	}
	if !strings.Contains(err.Error(), "not writable") {
		t.Fatalf("error %q does not name the writability problem", err)
	}
}

// TestOpenFailsOnFileOccupiedPath: a regular file where the store directory
// should be must fail at startup, not on the first Put.
func TestOpenFailsOnFileOccupiedPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(path, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open on a path occupied by a regular file succeeded")
	}
}

func TestHooksInjectReadAndWriteFaults(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	errIO := errors.New("input/output error")
	s.SetHooks(&Hooks{BeforeRead: func(string) error { return errIO }})
	if _, _, err := s.Get("k"); !errors.Is(err, errIO) {
		t.Fatalf("Get under read fault: %v, want injected error", err)
	}
	// A read fault is an error, not a miss: Get must not report a clean
	// absent entry when the disk is failing.
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("Get reported presence under an injected read fault")
	}

	s.SetHooks(&Hooks{BeforeWrite: func(string) error { return errIO }})
	if err := s.Put("k2", []byte("v2")); !errors.Is(err, errIO) {
		t.Fatalf("Put under write fault: %v, want injected error", err)
	}

	// Removing the hooks restores normal service and the earlier value.
	s.SetHooks(nil)
	got, ok, err := s.Get("k")
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("Get after clearing hooks: %q, %v, %v", got, ok, err)
	}
	if _, ok, _ := s.Get("k2"); ok {
		t.Fatal("failed Put left a value behind")
	}
}

// TestTornWriteLeavesTempAndOldValue: an ErrTornWrite injection models power
// loss after the write was acknowledged — the writer sees success, the
// target keeps its old content, and the temp file stays behind (exactly the
// debris Entries must ignore and a restart must tolerate).
func TestTornWriteLeavesTempAndOldValue(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	s.SetHooks(&Hooks{BeforeRename: func(string) error { return ErrTornWrite }})
	if err := s.Put("k", []byte("new")); err != nil {
		t.Fatalf("torn write must report success (the crash happens after the ack): %v", err)
	}
	s.SetHooks(nil)
	got, ok, err := s.Get("k")
	if err != nil || !ok || string(got) != "old" {
		t.Fatalf("after torn write: %q, %v, %v; want the pre-write value", got, ok, err)
	}
	shard := filepath.Dir(s.path("k"))
	ents, err := os.ReadDir(shard)
	if err != nil {
		t.Fatal(err)
	}
	temps := 0
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			temps++
		}
	}
	if temps != 1 {
		t.Fatalf("%d temp files after torn write, want exactly 1 left behind", temps)
	}
	if n, err := s.Entries(); err != nil || n != 1 {
		t.Fatalf("Entries = %d, %v; torn-write debris must not count", n, err)
	}
	// A fresh Open on the littered directory — the restart after the
	// simulated crash — works and serves the old value.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s2.Get("k"); err != nil || !ok || string(got) != "old" {
		t.Fatalf("after reopen: %q, %v, %v", got, ok, err)
	}
}

// TestRenameFaultFailsCleanly: a non-torn rename fault must fail the write
// and clean up its temp file.
func TestRenameFaultFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	errPerm := errors.New("permission denied")
	s.SetHooks(&Hooks{BeforeRename: func(string) error { return errPerm }})
	if err := s.Put("k", []byte("v")); !errors.Is(err, errPerm) {
		t.Fatalf("Put under rename fault: %v, want injected error", err)
	}
	s.SetHooks(nil)
	shard := filepath.Dir(s.path("k"))
	if ents, err := os.ReadDir(shard); err == nil && len(ents) != 0 {
		t.Fatalf("failed rename left %d files behind", len(ents))
	}
}

func TestWriteFileSyncRoundTrips(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "jobs", "checkpoint.json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"state":"running"}`)
	if err := s.WriteFile(path, want, true); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile(path)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("synced write round trip: %q, %v", got, err)
	}
}

// BenchmarkWriteFileAtomic quantifies the fsync tradeoff documented on
// Store.WriteFile: sync mode pays two fsyncs (file + parent directory) per
// write, which is why it is reserved for sweep checkpoints and off for
// recomputable cache entries.
func BenchmarkWriteFileAtomic(b *testing.B) {
	for _, sync := range []bool{false, true} {
		b.Run(fmt.Sprintf("sync=%v", sync), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(dir, "bench.json")
			data := bytes.Repeat([]byte("x"), 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.WriteFile(path, data, sync); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
