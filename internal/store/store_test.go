package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "abc123|DPCP-p-EP|pc=1000|pl=0" // cache keys contain separators
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	val := []byte(`{"schedulable":true}`)
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v, %v; want %q", got, ok, err, val)
	}
	// Re-put is idempotent; a different key is independent.
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(key + "x"); ok {
		t.Fatal("distinct key aliased")
	}
	if n, err := s.Entries(); err != nil || n != 1 {
		t.Fatalf("Entries = %d, %v; want 1", n, err)
	}
}

// TestStoreSurvivesReopen is the property the whole package exists for:
// values written by one Store instance are served by a fresh instance on
// the same directory, as after a daemon restart.
func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := s1.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, ok, err := s2.Get(fmt.Sprintf("key-%d", i))
		if err != nil || !ok || string(got) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%d after reopen: %q, %v, %v", i, got, ok, err)
		}
	}
	if m, err := s2.Entries(); err != nil || m != n {
		t.Fatalf("Entries after reopen = %d, %v; want %d", m, err, n)
	}
}

func TestStoreConcurrentSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent writers of one content-addressed key are idempotent: the
	// surviving value is a complete copy of the (identical) payload.
	val := bytes.Repeat([]byte("deterministic-result "), 1024)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put("k", val); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, ok, err := s.Get("k")
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("concurrent puts corrupted the value: ok=%v err=%v len=%d", ok, err, len(got))
	}
}

// TestEntriesCountsOnlyStoredValues: foreign files nested under the store
// root (like the server's sweep-job checkpoints under jobs/) and orphaned
// temp files must not inflate the entry count.
func TestEntriesCountsOnlyStoredValues(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "deadbeef.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A temp file orphaned by a crash mid-Put, inside a shard directory.
	shard := filepath.Dir(s.path("a"))
	if err := os.WriteFile(filepath.Join(shard, "x.tmp123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Entries(); err != nil || n != 2 {
		t.Fatalf("Entries = %d, %v; want 2 (checkpoints and temp files excluded)", n, err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestWriteFileAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	for i := 0; i < 3; i++ {
		if err := WriteFileAtomic(path, []byte(fmt.Sprintf("state-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "state-2" {
		t.Fatalf("final content %q, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries (temp files leaked?)", len(ents))
	}
}
