package analysis

import (
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// lightSet builds the hand-computed all-light example of Sec. VI:
//
//	C2 (prio 3): C=5us,  T=D=50us, no resources.
//	A  (prio 2): C=10us, T=D=100us, one request to l0 (CS 2us).
//	B  (prio 1): C=20us, T=D=200us, one request to l0 (CS 3us).
//
// On m=2 processors, worst-fit packing puts A and C2 on p0 and B on p1;
// l0 is global and lands on the max-slack pseudo-cluster p1.
//
// Hand-derived DPCP-p bounds:
//
//	R_C2 = 5us                         (alone at top priority)
//	R_A  = 10 + min(eps=3, zeta) + eta_C2*5 = 18us
//	R_B  = 20 + min(eps=2, zeta) + I_A=2    = 24us
func lightSet(t *testing.T) *model.Taskset {
	t.Helper()
	ts := model.NewTaskset(2, 1)
	a := model.NewTask(0, 100*rt.Microsecond, 100*rt.Microsecond)
	va := a.AddVertex(10 * rt.Microsecond)
	a.AddRequest(va, 0, 1, 2*rt.Microsecond)
	ts.Add(a)
	b := model.NewTask(1, 200*rt.Microsecond, 200*rt.Microsecond)
	vb := b.AddVertex(20 * rt.Microsecond)
	b.AddRequest(vb, 0, 1, 3*rt.Microsecond)
	ts.Add(b)
	c2 := model.NewTask(2, 50*rt.Microsecond, 50*rt.Microsecond)
	c2.AddVertex(5 * rt.Microsecond)
	ts.Add(c2)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestAlgorithmMixedAllLight(t *testing.T) {
	ts := lightSet(t)
	res := partition.AlgorithmMixed(ts, NewDPCPp(ts, DefaultPathCap, false), partition.WFD)
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	p := res.Partition

	// Packing: A and C2 share p0, B alone on p1.
	if !p.IsShared(0) || !p.IsShared(1) || !p.IsShared(2) {
		t.Error("all tasks are light and must be marked shared")
	}
	if got := p.SharedOn(0); len(got) != 2 {
		t.Errorf("SharedOn(p0) = %v, want two tasks", got)
	}
	if got := p.SharedOn(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("SharedOn(p1) = %v, want [B]", got)
	}
	if got := p.ResourceProc(0); got != 1 {
		t.Errorf("l0 placed on proc %d, want max-slack p1", got)
	}

	if got, want := res.WCRT[2], 5*rt.Microsecond; got != want {
		t.Errorf("R_C2 = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if got, want := res.WCRT[0], 18*rt.Microsecond; got != want {
		t.Errorf("R_A = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if got, want := res.WCRT[1], 24*rt.Microsecond; got != want {
		t.Errorf("R_B = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
}

func TestAlgorithmMixedHeavyAndLight(t *testing.T) {
	// One heavy task plus two lights: the heavy task receives a federated
	// cluster, the lights share what remains.
	ts := model.NewTaskset(4, 1)
	h := model.NewTask(0, 60*rt.Microsecond, 60*rt.Microsecond)
	for i := 0; i < 3; i++ {
		h.AddVertex(25 * rt.Microsecond) // C=75, U=1.25: heavy
	}
	ts.Add(h)
	for id := 1; id <= 3; id++ {
		l := model.NewTask(rt.TaskID(id), rt.Time(100*id)*rt.Microsecond,
			rt.Time(100*id)*rt.Microsecond)
		vl := l.AddVertex(10 * rt.Microsecond)
		l.AddRequest(vl, 0, 1, 2*rt.Microsecond)
		ts.Add(l)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := partition.AlgorithmMixed(ts, NewDPCPp(ts, DefaultPathCap, false), partition.WFD)
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	p := res.Partition
	if p.IsShared(0) {
		t.Error("heavy task marked shared")
	}
	if p.NumProcs(0) < 2 {
		t.Errorf("heavy cluster = %d procs, want >= 2", p.NumProcs(0))
	}
	shared := 0
	for id := rt.TaskID(1); id <= 3; id++ {
		if !p.IsShared(id) {
			t.Errorf("light task %d not marked shared", id)
		}
		if p.NumProcs(id) != 1 {
			t.Errorf("light task %d on %d procs", id, p.NumProcs(id))
		}
		shared++
	}
	// 3 lights over at most 2 remaining processors: at least one pair
	// shares.
	procsUsed := map[rt.ProcID]bool{}
	for id := rt.TaskID(1); id <= 3; id++ {
		procsUsed[p.Procs(id)[0]] = true
	}
	if len(procsUsed) > 4-p.NumProcs(0) {
		t.Errorf("lights spread over %d procs with only %d free",
			len(procsUsed), 4-p.NumProcs(0))
	}
	// The global resource lands on the heavy cluster.
	if owner := p.Owner(p.ResourceProc(0)); owner != 0 {
		t.Errorf("l0 on task %d's processor, want the heavy cluster", owner)
	}
}

func TestAlgorithmMixedRejectsOverfullLights(t *testing.T) {
	// Two lights of utilization 0.9 with a heavy task eating all but one
	// processor: the second light cannot fit.
	ts := model.NewTaskset(3, 0)
	h := model.NewTask(0, 50*rt.Microsecond, 50*rt.Microsecond)
	for i := 0; i < 3; i++ {
		h.AddVertex(25 * rt.Microsecond)
	}
	ts.Add(h)
	for id := 1; id <= 2; id++ {
		l := model.NewTask(rt.TaskID(id), 100*rt.Microsecond, 100*rt.Microsecond)
		l.AddVertex(90 * rt.Microsecond)
		ts.Add(l)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := partition.AlgorithmMixed(ts, NewDPCPp(ts, DefaultPathCap, false), partition.WFD)
	if res.Schedulable {
		t.Fatal("accepted two 0.9-utilization lights on one shared processor")
	}
}

func TestLightAnalysisAccountsForPreemption(t *testing.T) {
	// Pin the packing manually (A and C2 on p0, B on p1, l0 on p1) and
	// check the bound grows with the co-located higher-priority task's
	// WCET: doubling C2's WCET adds at least the increase to A's bound.
	build := func(c2WCET rt.Time) (*model.Taskset, *partition.Partition) {
		ts := model.NewTaskset(2, 1)
		a := model.NewTask(0, 100*rt.Microsecond, 100*rt.Microsecond)
		va := a.AddVertex(10 * rt.Microsecond)
		a.AddRequest(va, 0, 1, 2*rt.Microsecond)
		ts.Add(a)
		b := model.NewTask(1, 200*rt.Microsecond, 200*rt.Microsecond)
		vb := b.AddVertex(20 * rt.Microsecond)
		b.AddRequest(vb, 0, 1, 3*rt.Microsecond)
		ts.Add(b)
		c2 := model.NewTask(2, 50*rt.Microsecond, 50*rt.Microsecond)
		c2.AddVertex(c2WCET)
		ts.Add(c2)
		if err := ts.Finalize(); err != nil {
			t.Fatal(err)
		}
		p := partition.New(ts)
		if err := p.AssignShared(0, 0); err != nil {
			t.Fatal(err)
		}
		if err := p.AssignShared(2, 0); err != nil {
			t.Fatal(err)
		}
		if err := p.AssignShared(1, 1); err != nil {
			t.Fatal(err)
		}
		p.PlaceResource(0, 1)
		return ts, p
	}

	tsBase, pBase := build(5 * rt.Microsecond)
	wBase := NewDPCPp(tsBase, DefaultPathCap, false).WCRTs(pBase)
	tsBig, pBig := build(10 * rt.Microsecond)
	wBig := NewDPCPp(tsBig, DefaultPathCap, false).WCRTs(pBig)

	if wBase[0] != 18*rt.Microsecond {
		t.Errorf("base R_A = %s, want 18us", rt.FormatTime(wBase[0]))
	}
	if wBig[0] < wBase[0]+5*rt.Microsecond {
		t.Errorf("A's bound must absorb the larger preemption: %s vs base %s",
			rt.FormatTime(wBig[0]), rt.FormatTime(wBase[0]))
	}
}
