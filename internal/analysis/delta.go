package analysis

import (
	"sort"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// Delta is the retained state of one successful DPCP-p analysis, kept so
// that a patched variant of the same taskset can be re-analyzed
// incrementally. It captures, from the final partitioning round:
//
//   - the finalized base taskset and the analysis options,
//   - the final partition and per-task WCRTs,
//   - every task's path views (heap-owned, detached from any Scratch),
//   - every task's per-view response-time fixed points (warm-start seeds),
//   - every task's Lemma 2 epsilon memo rows, and
//   - the dependency map: per processor, which tasks' critical-section work
//     feeds the (processor, base) epsilon rows computed there via the
//     partition's resource placement.
//
// A Delta is immutable after construction and safe for concurrent Apply
// calls (each Apply works through its own Scratch and only reads the
// state). Chained deltas share the unchanged tasks' views, fixed points and
// memo rows structurally, so a long patch chain costs memory only for what
// it touched.
//
// Ownership and invalidation: a Delta is only retained for schedulable
// results (an unschedulable run has no final WCRTs worth reusing), and
// reuse inside Apply is re-validated per partitioning round against the
// candidate partition — any round whose assignment differs from the
// retained final partition (augmented clusters, moved resources, added or
// removed tasks) falls back to a full recomputation of that round, with
// only the seeded path views retained. The dependency map additionally
// forces epsilon rows off per processor as soon as any contributing task's
// response time changes.
type Delta struct {
	ts        *model.Taskset
	en        bool
	pathCap   int
	placement partition.PlacementHeuristic

	part  *partition.Partition
	wcrt  map[rt.TaskID]rt.Time
	views map[rt.TaskID]cachedViews
	plans map[rt.TaskID]*model.ViewPlan
	fix   map[rt.TaskID][]rt.Time
	eps   map[rt.TaskID][]epsRow
	deps  map[rt.ProcID][]rt.TaskID
}

// epsRow is one retained epsilon memo entry, stored sorted by (proc, base)
// so re-seeding iterates deterministically.
type epsRow struct {
	key epsKey
	val rt.Time
}

// deltaCapture snapshots per-task analysis internals during a WCRTs pass.
// It is reset at the start of every pass, so after Algorithm1 returns it
// holds exactly the final round's data. plans is the exception: view
// enumeration happens once per analyzer (the view cache spans rounds), so
// recorded view plans accumulate for the analyzer's lifetime.
type deltaCapture struct {
	fix   map[rt.TaskID][]rt.Time
	eps   map[rt.TaskID][]epsRow
	plans map[rt.TaskID]*model.ViewPlan
}

func newDeltaCapture() *deltaCapture {
	return &deltaCapture{
		fix:   make(map[rt.TaskID][]rt.Time),
		eps:   make(map[rt.TaskID][]epsRow),
		plans: make(map[rt.TaskID]*model.ViewPlan),
	}
}

func (c *deltaCapture) reset() {
	clear(c.fix)
	clear(c.eps)
}

// record snapshots one converged task: its per-view fixed points and its
// epsilon memo rows.
func (c *deltaCapture) record(id rt.TaskID, xs []rt.Time, memo map[epsKey]rt.Time) {
	c.fix[id] = append([]rt.Time(nil), xs...)
	//schedlint:ignore hotpath capture runs only under the delta analyzer, once per converged task
	rows := make([]epsRow, 0, len(memo))
	for k, v := range memo {
		rows = append(rows, epsRow{key: k, val: v})
	}
	//schedlint:ignore hotpath capture runs only under the delta analyzer, once per converged task
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].key.proc != rows[b].key.proc {
			return rows[a].key.proc < rows[b].key.proc
		}
		return rows[a].key.base < rows[b].key.base
	})
	c.eps[id] = rows
}

// DeltaStats reports what an incremental run reused.
type DeltaStats struct {
	// Rounds is the number of partitioning rounds the run executed;
	// MatchedRounds of them matched the retained final partition and ran
	// incrementally.
	Rounds        int
	MatchedRounds int
	// Reused counts task analyses skipped outright (retained WCRT replayed);
	// Recomputed counts task analyses executed during matched rounds.
	Reused     int
	Recomputed int
	// WarmStarted counts recomputed tasks whose fixed points were seeded
	// from retained iterates; EpsRowsSeeded counts preloaded memo rows;
	// ViewsSeeded counts tasks whose path views were reused verbatim;
	// ViewsReplayed counts tasks whose views were re-derived through a
	// retained collapse plan instead of a fresh enumeration.
	WarmStarted   int
	EpsRowsSeeded int
	ViewsSeeded   int
	ViewsReplayed int
}

// NewDelta runs the full analysis for an EP or EN method and retains the
// delta state alongside the result. For unschedulable results (and for
// results produced without a final WCRTs pass) the state is nil. Methods
// other than DPCPpEP / DPCPpEN have no incremental form; NewDelta falls
// back to TestWith and returns a nil state.
func NewDelta(sc *Scratch, m Method, ts *model.Taskset, opts Options) (partition.Result, *Delta) {
	if m != DPCPpEP && m != DPCPpEN {
		return TestWith(sc, m, ts, opts), nil
	}
	if sc == nil {
		sc = NewScratch()
	}
	en := m == DPCPpEN
	a := newDPCPp(sc, ts, opts.pathCap(), en)
	cap := newDeltaCapture()
	a.cap = cap
	res := partition.Algorithm1(ts, a, opts.Placement)
	if !res.Schedulable {
		return res, nil
	}
	return res, retainDelta(a, cap, res, opts.Placement, nil, nil)
}

// Base returns the finalized taskset the state was retained for.
func (d *Delta) Base() *model.Taskset { return d.ts }

// WCRT returns the retained response-time bound of one base task.
func (d *Delta) WCRT(id rt.TaskID) rt.Time { return d.wcrt[id] }

// Apply patches the base taskset and runs the incremental analysis; it is
// ApplyPatch + ApplyTo in one call. The returned hash is the patched
// taskset's canonical hash (the patch-aware cache key).
func (d *Delta) Apply(sc *Scratch, p model.Patch) (model.Hash, partition.Result, DeltaStats, *Delta, error) {
	patched, pd, err := model.ApplyPatch(d.ts, p)
	if err != nil {
		return model.Hash{}, partition.Result{}, DeltaStats{}, nil, err
	}
	res, stats, next := d.ApplyTo(sc, patched, pd)
	return patched.Hash(), res, stats, next, nil
}

// ApplyTo runs the incremental analysis for an already-patched taskset.
// patched and pd must come from model.ApplyPatch on this state's base.
//
// The result is bit-identical to TestWith on the patched taskset — same
// verdict, WCRTs, rounds, reason and final partition — because reuse only
// happens where replaying the base computation is provably the identity:
//
//   - Path views are reused for tasks whose structure the patch did not
//     touch (views are a deterministic function of the task alone).
//   - Whole task analyses are skipped only in rounds whose partition
//     equals the retained final partition, only for structure-only patches
//     (WCET / edge edits), and only for tasks none of whose recurrence
//     inputs changed: the task itself is untouched, no co-located task was
//     touched, and no task with a changed response time contributes
//     critical-section work anywhere (every lower-priority task reads every
//     resource-hosting processor's zeta term, so one changed global
//     contributor invalidates all lower-priority skips).
//   - Epsilon memo rows are re-seeded per processor unless the dependency
//     map names a contributor whose response time changed this round.
//   - Fixed-point iterates are warm-started from retained per-view fixed
//     points only for nondecreasing patches (WCET/CS/request growth without
//     sharer changes) on tasks with unchanged views: the patched recurrence
//     then dominates the base one pointwise, so the retained fixed point
//     lies between the cold start and the new least fixed point and the
//     iteration converges to exactly the same result (see rta.FixPointBatch
//     on warm starts).
//
// The returned state (nil unless the patched set is schedulable) serves
// the patched taskset as a new base, so patch chains stay incremental.
func (d *Delta) ApplyTo(sc *Scratch, patched *model.Taskset, pd *model.PatchDelta) (partition.Result, DeltaStats, *Delta) {
	if sc == nil {
		sc = NewScratch()
	}
	a := newDPCPp(sc, patched, d.pathCap, d.en)
	cap := newDeltaCapture()
	a.cap = cap

	da := &deltaAnalyzer{a: a, base: d, pd: pd}
	all := pd.All()
	da.structureOnly = all&^(model.ChangeWCETUp|model.ChangeWCETDown|model.ChangeEdges) == 0
	da.nondecreasing = all&^(model.ChangeWCETUp|model.ChangeCSUp|model.ChangeReqUp) == 0

	// Seed path views for every task the patch left structurally untouched.
	// The retained views are heap-owned, so they survive analyzerReset and
	// can be shared by the next retained state. Their collapse plans stay
	// valid too and are carried into the next retained state.
	da.heapViews = make(map[rt.TaskID]bool, len(patched.Tasks))
	carried := make(map[rt.TaskID]*model.ViewPlan, len(patched.Tasks))
	for _, t := range patched.Tasks {
		if pd.ViewsChanged(t.ID) {
			continue
		}
		if v, ok := d.views[t.ID]; ok {
			sc.viewCache[t.ID] = v
			da.heapViews[t.ID] = true
			if pl := d.plans[t.ID]; pl != nil {
				carried[t.ID] = pl
			}
			da.stats.ViewsSeeded++
		}
	}
	// Tasks only WCET edits touched keep their collapse structure: replay
	// the retained plan under the new WCETs instead of re-enumerating. The
	// request vectors are signature-determined and shared with the retained
	// views; only lengths and non-critical WCETs are re-derived.
	const wcetBits = model.ChangeWCETUp | model.ChangeWCETDown
	for _, t := range patched.Tasks {
		c := pd.Changed[t.ID]
		if c == 0 || c&^wcetBits != 0 {
			continue
		}
		bv, okv := d.views[t.ID]
		pl := d.plans[t.ID]
		if !okv || bv.fallback || pl == nil || pl.NumViews() != len(bv.views) {
			continue
		}
		pvs := pl.Replay(t, &sc.vs)
		if pvs == nil {
			continue
		}
		totalNonCrit := t.NonCritWCET()
		views := make([]pathView, len(pvs))
		for i := range pvs {
			views[i] = pathView{
				length:     pvs[i].Length,
				offNonCrit: totalNonCrit - pvs[i].NonCrit,
				onPath:     bv.views[i].onPath,
				offPath:    bv.views[i].offPath,
			}
		}
		sc.viewCache[t.ID] = cachedViews{views: views}
		carried[t.ID] = pl
		da.stats.ViewsReplayed++
	}

	if da.structureOnly {
		// hasGlobalCS marks tasks whose critical-section work on any global
		// resource reaches other tasks' zeta/gamma/cluster terms; a changed
		// response time of such a task invalidates every lower-priority
		// skip. Sharer sets are unchanged under structure-only patches, so
		// the patched classification equals the base one.
		da.hasGlobalCS = make(map[rt.TaskID]bool, len(patched.Tasks))
		glob := patched.GlobalResources()
		for _, t := range patched.Tasks {
			for _, q := range glob {
				if t.CSWork(q) > 0 {
					da.hasGlobalCS[t.ID] = true
					break
				}
			}
		}
		// revDeps inverts the dependency map: when a task's response time
		// changes, the epsilon rows of exactly these processors go stale.
		da.revDeps = make(map[rt.TaskID][]rt.ProcID)
		for _, k := range sortedProcs(d.deps) {
			for _, id := range d.deps[k] {
				da.revDeps[id] = append(da.revDeps[id], k)
			}
		}
	}
	da.wSet = make(map[rt.TaskID]bool)
	da.staleProc = make(map[rt.ProcID]bool)

	res := partition.Algorithm1(patched, da, d.placement)
	var next *Delta
	if res.Schedulable {
		next = retainDelta(a, cap, res, d.placement, da.heapViews, carried)
	}
	return res, da.stats, next
}

func sortedProcs(m map[rt.ProcID][]rt.TaskID) []rt.ProcID {
	ks := make([]rt.ProcID, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	return ks
}

// deltaAnalyzer is the partition.Analyzer of an incremental run: rounds
// whose candidate partition matches the retained final partition recompute
// only affected tasks; every other round runs the full analysis (with
// seeded path views).
type deltaAnalyzer struct {
	a    *DPCPp
	base *Delta
	pd   *model.PatchDelta

	structureOnly bool
	nondecreasing bool

	heapViews   map[rt.TaskID]bool
	hasGlobalCS map[rt.TaskID]bool
	revDeps     map[rt.TaskID][]rt.ProcID

	// Per-pass working state (reset each WCRTs call): wSet holds the tasks
	// whose response time this pass differs from the retained one, wGlobal
	// latches whether any of them carries global critical-section work, and
	// staleProc marks processors whose retained epsilon rows are invalid.
	wSet      map[rt.TaskID]bool
	wGlobal   bool
	staleProc map[rt.ProcID]bool

	stats DeltaStats
}

// WCRTs implements partition.Analyzer.
func (da *deltaAnalyzer) WCRTs(p *partition.Partition) map[rt.TaskID]rt.Time {
	da.stats.Rounds++
	if (da.structureOnly || da.nondecreasing) && p.EqualAssignment(da.base.part) {
		da.stats.MatchedRounds++
		return da.wcrtsIncremental(p)
	}
	return da.a.WCRTs(p)
}

// wcrtsIncremental is the delta re-derivation entry point: one WCRTs pass
// over a partition identical to the retained one, reusing retained results
// wherever the change classification proves them unchanged.
//
//schedlint:hotpath
func (da *deltaAnalyzer) wcrtsIncremental(p *partition.Partition) map[rt.TaskID]rt.Time {
	a := da.a
	sc := a.sc
	round := sc.stageStart()
	a.cap.reset()
	clear(da.wSet)
	clear(da.staleProc)
	da.wGlobal = false
	wcrts := sc.wcrts
	clear(wcrts)
	for _, t := range a.byPrio {
		id := t.ID
		baseR, inBase := da.base.wcrt[id]
		if da.structureOnly && inBase &&
			da.pd.Changed[id] == 0 && !da.wGlobal &&
			!da.coLocatedTouched(p, t) && !da.coLocatedW(p, t) {
			// Every input of this task's recurrence equals the base final
			// round's: replaying it is the identity, so the retained value
			// is the value a full analysis would compute.
			wcrts[id] = baseR
			a.cap.fix[id] = da.base.fix[id]
			a.cap.eps[id] = da.base.eps[id]
			da.stats.Reused++
			continue
		}
		// Warm-start the fixed point from the retained per-view iterates.
		// Nondecreasing mode guarantees the old least fixed point is ≤ the
		// new one (every recurrence input grows pointwise), and — because
		// sharer sets cannot change in this mode — the task's own views
		// keep their collapse-class structure and order under WCETUp/CSUp
		// (those bits only scale lengths), so the per-view index
		// correspondence with the retained iterates holds. Only ReqUp
		// reshapes signatures and breaks it.
		if da.nondecreasing && inBase && da.pd.Changed[id]&model.ChangeReqUp == 0 {
			if w := da.base.fix[id]; w != nil {
				a.warmFix = w
				da.stats.WarmStarted++
			}
		}
		if da.structureOnly && inBase {
			a.epsSeed = da.validRows(id)
			da.stats.EpsRowsSeeded += len(a.epsSeed)
		}
		r := a.taskWCRT(p, t, wcrts)
		a.warmFix, a.epsSeed = nil, nil
		wcrts[id] = r
		da.stats.Recomputed++
		if !inBase || r != baseR {
			da.wSet[id] = true
			if da.hasGlobalCS[id] {
				da.wGlobal = true
			}
			for _, k := range da.revDeps[id] {
				da.staleProc[k] = true
			}
		}
	}
	sc.stageEnd(StageRound, round)
	return wcrts
}

// coLocatedTouched reports whether a patched higher-priority task shares a
// processor with t. Only higher-priority co-located tasks matter: their
// full WCET enters t's hpShared term. A lower-priority co-located task
// reaches t's bound exclusively through critical-section-derived terms —
// beta (CS lengths and ceilings), zeta and cluster terms (period, deadline
// and CS work; knownOrDeadline folds a not-yet-analyzed task in through its
// deadline, never its response time) — none of which a structure-only
// (WCET / edge) patch can change.
func (da *deltaAnalyzer) coLocatedTouched(p *partition.Partition, t *model.Task) bool {
	for _, k := range p.Procs(t.ID) {
		for _, other := range p.SharedOn(k) {
			if other != t.ID && da.pd.Changed[other] != 0 &&
				da.a.ts.Task(other).Priority.Higher(t.Priority) {
				return true
			}
		}
	}
	return false
}

// coLocatedW reports whether a higher-priority task whose response time
// changed this pass shares a processor with t (its response time enters t's
// hpShared eta term). Lower-priority members of W are invisible to t for
// the same reason as in coLocatedTouched.
func (da *deltaAnalyzer) coLocatedW(p *partition.Partition, t *model.Task) bool {
	if len(da.wSet) == 0 {
		return false
	}
	for _, k := range p.Procs(t.ID) {
		for _, other := range p.SharedOn(k) {
			if other != t.ID && da.wSet[other] &&
				da.a.ts.Task(other).Priority.Higher(t.Priority) {
				return true
			}
		}
	}
	return false
}

// validRows returns the retained epsilon rows of one task that are still
// valid this pass: rows on processors none of whose contributing tasks (per
// the dependency map) changed response time. Row values depend only on the
// analyzed task's deadline and priority, the lower-priority CS ceilings
// (beta) and the higher-priority contributors' (period, response, work)
// terms — all unchanged for clean processors under a structure-only patch
// on a matched partition.
func (da *deltaAnalyzer) validRows(id rt.TaskID) []epsRow {
	rows := da.base.eps[id]
	if len(rows) == 0 {
		return nil
	}
	if len(da.staleProc) == 0 {
		return rows
	}
	//schedlint:ignore hotpath filtered row set is rebuilt only after a dependency-map invalidation, off the steady reuse path
	out := make([]epsRow, 0, len(rows))
	for _, r := range rows {
		if !da.staleProc[r.key.proc] {
			out = append(out, r)
		}
	}
	return out
}

// retainDelta detaches the final round's capture into an immutable Delta.
// heapViews names the tasks whose cached views are already heap-owned
// (seeded from a previous state and shared with it); every other task's
// views are copied out of the scratch arenas, which the next analyzerReset
// would recycle. carried holds collapse plans inherited from the previous
// state for tasks that did not re-enumerate; plans recorded by this run's
// own enumerations take precedence.
func retainDelta(a *DPCPp, cap *deltaCapture, res partition.Result,
	placement partition.PlacementHeuristic, heapViews map[rt.TaskID]bool,
	carried map[rt.TaskID]*model.ViewPlan) *Delta {

	ts := a.ts
	d := &Delta{
		ts:        ts,
		en:        a.en,
		pathCap:   a.pathCap,
		placement: placement,
		part:      res.Partition.Clone(),
		wcrt:      make(map[rt.TaskID]rt.Time, len(res.WCRT)),
		views:     make(map[rt.TaskID]cachedViews, len(ts.Tasks)),
		plans:     make(map[rt.TaskID]*model.ViewPlan, len(cap.plans)+len(carried)),
		fix:       make(map[rt.TaskID][]rt.Time, len(cap.fix)),
		eps:       make(map[rt.TaskID][]epsRow, len(cap.eps)),
		deps:      make(map[rt.ProcID][]rt.TaskID),
	}
	for id, pl := range carried {
		d.plans[id] = pl
	}
	for id, pl := range cap.plans {
		d.plans[id] = pl
	}
	for id, r := range res.WCRT {
		d.wcrt[id] = r
	}
	for id, xs := range cap.fix {
		d.fix[id] = xs
	}
	for id, rows := range cap.eps {
		d.eps[id] = rows
	}
	nr := ts.NumResources
	for _, t := range ts.Tasks {
		c, ok := a.sc.viewCache[t.ID]
		if !ok {
			continue
		}
		if heapViews[t.ID] {
			d.views[t.ID] = c
			continue
		}
		views := make([]pathView, len(c.views))
		flat := make([]int64, 2*nr*len(c.views))
		for i, v := range c.views {
			on := flat[2*i*nr : (2*i+1)*nr : (2*i+1)*nr]
			off := flat[(2*i+1)*nr : (2*i+2)*nr : (2*i+2)*nr]
			copy(on, v.onPath)
			copy(off, v.offPath)
			views[i] = pathView{length: v.length, offNonCrit: v.offNonCrit, onPath: on, offPath: off}
		}
		d.views[t.ID] = cachedViews{views: views, fallback: c.fallback}
	}
	// Dependency map over the final placement: per resource-hosting
	// processor, the tasks whose critical-section work feeds the epsilon
	// rows computed there, ascending by ID.
	for k := 0; k < ts.NumProcs; k++ {
		proc := rt.ProcID(k)
		res := d.part.ResourcesOn(proc)
		if len(res) == 0 {
			continue
		}
		for _, t := range ts.Tasks {
			for _, q := range res {
				if t.CSWork(q) > 0 {
					d.deps[proc] = append(d.deps[proc], t.ID)
					break
				}
			}
		}
		sort.Slice(d.deps[proc], func(a, b int) bool { return d.deps[proc][a] < d.deps[proc][b] })
	}
	return d
}
