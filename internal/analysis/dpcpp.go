package analysis

import (
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/rta"
)

// DPCPp is the response-time analysis of Sec. IV. With en=false it
// evaluates Theorem 1 exactly per candidate worst-case path (DPCP-p-EP),
// using the signature-collapsed path views of model.EnumerateViews: paths
// with identical per-resource request vectors yield identical Theorem 1
// terms except for L(lambda) and the on-path non-critical WCET, in which
// the bound is monotone, so only the per-signature maximum is evaluated.
// With en=true, or whenever a DAG has more than pathCap complete paths, it
// substitutes the per-term path extremes computed by DAG dynamic
// programming (DPCP-p-EN).
type DPCPp struct {
	ts      *model.Taskset
	pathCap int
	en      bool

	// Fallbacks counts tasks analyzed with EN bounds because their path
	// count exceeded pathCap (diagnostics only). It increments once per
	// per-task view construction, including cache hits, mirroring the
	// pre-cache behavior.
	Fallbacks int

	// viewCache memoizes per-task views across the repeated WCRTs rounds
	// of the partitioning loop: views depend only on the (immutable,
	// finalized) task, never on the candidate partition.
	viewCache map[rt.TaskID]cachedViews
}

type cachedViews struct {
	views    []pathView
	fallback bool
}

// NewDPCPp returns a DPCP-p analyzer over the taskset.
func NewDPCPp(ts *model.Taskset, pathCap int, en bool) *DPCPp {
	return &DPCPp{ts: ts, pathCap: pathCap, en: en,
		viewCache: make(map[rt.TaskID]cachedViews, len(ts.Tasks))}
}

// WCRTs implements partition.Analyzer: it analyzes tasks from highest to
// lowest priority so that eta terms can use the already-computed bounds of
// higher-priority tasks (Sec. IV-B).
func (a *DPCPp) WCRTs(p *partition.Partition) map[rt.TaskID]rt.Time {
	wcrts := make(map[rt.TaskID]rt.Time, len(a.ts.Tasks))
	for _, t := range a.ts.ByPriorityDesc() {
		wcrts[t.ID] = a.taskWCRT(p, t, wcrts)
	}
	return wcrts
}

// pathView abstracts "one candidate worst-case path": a signature-collapsed
// view over enumerated paths (EP) or the per-term extremes over all paths
// (EN).
type pathView struct {
	length     rt.Time // L(lambda) (EN: L*)
	offNonCrit rt.Time // non-critical WCET of vertices not on the path
	onPath     []int64 // N^lambda_{i,q} (EN: max over paths)
	offPath    []int64 // N_{i,q} - N^lambda_{i,q} (EN: N - min over paths)
}

func (a *DPCPp) pathViews(t *model.Task) []pathView {
	c, ok := a.viewCache[t.ID]
	if !ok {
		c = a.buildViews(t)
		a.viewCache[t.ID] = c
	}
	if c.fallback {
		a.Fallbacks++
	}
	return c.views
}

func (a *DPCPp) buildViews(t *model.Task) cachedViews {
	nr := a.ts.NumResources
	if !a.en {
		if pvs, ok := t.EnumerateViews(a.pathCap); ok {
			views := make([]pathView, len(pvs))
			// One flat backing array for every view's request vectors
			// instead of 2 slice allocations per view.
			flat := make([]int64, 2*nr*len(pvs))
			totalNonCrit := t.NonCritWCET()
			for i := range pvs {
				pv := &pvs[i]
				on := flat[2*i*nr : (2*i+1)*nr : (2*i+1)*nr]
				off := flat[(2*i+1)*nr : (2*i+2)*nr : (2*i+2)*nr]
				for q := 0; q < nr; q++ {
					n := pv.Requests(rt.ResourceID(q))
					on[q] = n
					off[q] = t.NumRequests(rt.ResourceID(q)) - n
				}
				views[i] = pathView{
					length:     pv.Length,
					offNonCrit: totalNonCrit - pv.NonCrit,
					onPath:     on,
					offPath:    off,
				}
			}
			return cachedViews{views: views}
		}
		return cachedViews{views: a.enView(t), fallback: true}
	}
	return cachedViews{views: a.enView(t)}
}

// enView builds the single path-oblivious EN view.
func (a *DPCPp) enView(t *model.Task) []pathView {
	nr := a.ts.NumResources
	b := t.ComputePathBounds()
	v := pathView{
		length:     b.MaxLength,
		offNonCrit: t.NonCritWCET() - b.MinNonCrit,
		onPath:     make([]int64, nr),
		offPath:    make([]int64, nr),
	}
	for q := 0; q < nr; q++ {
		v.onPath[q] = b.MaxReq[q]
		v.offPath[q] = t.NumRequests(rt.ResourceID(q)) - b.MinReq[q]
	}
	return []pathView{v}
}

// procCtx carries the per-processor precomputations for one analyzed task:
// the beta and gamma terms of Lemma 2 and the zeta term of Lemma 3.
type procCtx struct {
	proc rt.ProcID
	res  []rt.ResourceID // global resources placed here
	// resCS[j] = L_{i,res[j]}, the analyzed task's CS length per resource,
	// hoisted out of the per-view loops.
	resCS []rt.Time

	beta rt.Time // max lower-priority CS with ceiling >= pi_i (Lemma 2)

	// gamma terms: per higher-priority task h, its per-job CS work on the
	// resources of this processor plus its (T, R) for the eta function.
	hp []etaTerm
	// zeta terms: per other task j (any priority), its per-job CS work here.
	other []etaTerm
}

type etaTerm struct {
	period rt.Time
	resp   rt.Time
	work   rt.Time
}

func etaSum(terms []etaTerm, window rt.Time) rt.Time {
	var total rt.Time
	for _, e := range terms {
		total = rt.SatAdd(total, rt.SatMul(rta.Eta(window, e.resp, e.period), e.work))
	}
	return total
}

// taskCtx bundles everything Theorem 1 needs for one task.
type taskCtx struct {
	task    *model.Task
	mi      int64
	procs   []procCtx // processors hosting at least one global resource
	cluster []etaTerm // Lemma 6: other tasks' CS work on this task's cluster
	// clusterRes are the global resources on this task's own cluster.
	clusterRes []rt.ResourceID
	// localRes are the local resources the task uses.
	localRes []rt.ResourceID
	// hpShared: for light tasks sharing a processor (Sec. VI), the
	// higher-priority light tasks co-located with this one; their whole
	// WCET interferes under partitioned fixed-priority scheduling.
	hpShared []etaTerm
	shared   bool

	// localCS / clusterCS cache the task's CS length per localRes /
	// clusterRes entry, hoisted out of the per-view loops.
	localCS   []rt.Time
	clusterCS []rt.Time

	// epsMemo caches the Lemma 2 per-request blocking bound across the
	// per-view loop: the W fixed point depends on the view only through
	// base = L_{i,q} + off-path co-located CS work + beta, so views
	// sharing a base (the common case after signature collapse) reuse it.
	// rt.Infinity marks a diverged recurrence.
	epsMemo map[epsKey]rt.Time
	// epsScratch holds the per-processor epsilon values of the view under
	// evaluation, reused across views.
	epsScratch []rt.Time
}

// epsKey identifies one Lemma 2 fixed-point computation within a task's
// analysis round.
type epsKey struct {
	proc rt.ProcID
	base rt.Time
}

func (a *DPCPp) buildCtx(p *partition.Partition, t *model.Task,
	wcrts map[rt.TaskID]rt.Time) *taskCtx {

	ts := a.ts
	ctx := &taskCtx{task: t, mi: int64(p.NumProcs(t.ID))}
	if ctx.mi == 0 {
		ctx.mi = 1
	}

	for q := 0; q < ts.NumResources; q++ {
		rid := rt.ResourceID(q)
		if ts.IsLocal(rid) && t.UsesResource(rid) {
			ctx.localRes = append(ctx.localRes, rid)
			ctx.localCS = append(ctx.localCS, t.CS(rid))
		}
	}

	for k := 0; k < ts.NumProcs; k++ {
		proc := rt.ProcID(k)
		res := p.ResourcesOn(proc)
		if len(res) == 0 {
			continue
		}
		pc := procCtx{proc: proc, res: res, resCS: make([]rt.Time, len(res))}
		for j, u := range res {
			pc.resCS[j] = t.CS(u)
		}
		for _, other := range ts.Tasks {
			if other.ID == t.ID {
				continue
			}
			var work rt.Time
			for _, u := range res {
				work = rt.SatAdd(work, other.CSWork(u))
			}
			if work == 0 {
				continue
			}
			term := etaTerm{period: other.Period, resp: knownOrDeadline(wcrts, other), work: work}
			pc.other = append(pc.other, term)
			if other.Priority.Higher(t.Priority) {
				pc.hp = append(pc.hp, term)
			} else {
				// Lower-priority tasks contribute to beta: their longest
				// CS on a co-located resource whose ceiling reaches pi_i.
				for _, u := range res {
					if other.UsesResource(u) && ts.CeilingAtLeast(u, t.Priority) {
						if cs := other.CS(u); cs > pc.beta {
							pc.beta = cs
						}
					}
				}
			}
		}
		ctx.procs = append(ctx.procs, pc)
	}

	if p.IsShared(t.ID) {
		ctx.shared = true
		ctx.mi = 1
		for _, k := range p.Procs(t.ID) {
			for _, id := range p.SharedOn(k) {
				if id == t.ID {
					continue
				}
				other := ts.Task(id)
				if other.Priority.Higher(t.Priority) {
					ctx.hpShared = append(ctx.hpShared, etaTerm{
						period: other.Period,
						resp:   knownOrDeadline(wcrts, other),
						work:   other.WCET(),
					})
				}
			}
		}
	}

	ctx.epsMemo = make(map[epsKey]rt.Time)
	ctx.epsScratch = make([]rt.Time, len(ctx.procs))

	ctx.clusterRes = p.ClusterResources(t.ID)
	if len(ctx.clusterRes) > 0 {
		ctx.clusterCS = make([]rt.Time, len(ctx.clusterRes))
		for j, u := range ctx.clusterRes {
			ctx.clusterCS[j] = t.CS(u)
		}
		for _, other := range ts.Tasks {
			if other.ID == t.ID {
				continue
			}
			var work rt.Time
			for _, u := range ctx.clusterRes {
				work = rt.SatAdd(work, other.CSWork(u))
			}
			if work > 0 {
				ctx.cluster = append(ctx.cluster,
					etaTerm{period: other.Period, resp: knownOrDeadline(wcrts, other), work: work})
			}
		}
	}
	return ctx
}

func (a *DPCPp) taskWCRT(p *partition.Partition, t *model.Task,
	wcrts map[rt.TaskID]rt.Time) rt.Time {

	ctx := a.buildCtx(p, t, wcrts)
	// A light task runs sequentially: the whole job is its only "path";
	// every request is on it and nothing runs off it (handled by viewsFor).
	views := a.viewsFor(ctx)

	var worst rt.Time
	for i := range views {
		r := a.pathWCRT(ctx, &views[i])
		if r > worst {
			worst = r
		}
		if worst >= rt.Infinity {
			return rt.Infinity
		}
	}
	return worst
}

// pathWCRT evaluates Theorem 1 for one path view:
//
//	r <= L(lambda) + B_i + b_i + (I_intra + I_A) / m_i
//
// as the least fixed point over r (B and I_A depend on r through eta).
func (a *DPCPp) pathWCRT(ctx *taskCtx, v *pathView) rt.Time {
	t := ctx.task

	// Lemma 4: intra-task blocking (constant in r).
	b := a.intraBlocking(ctx, v)

	// Lemma 5: intra-task interference (constant in r).
	iIntra := v.offNonCrit
	for j, q := range ctx.localRes {
		iIntra = rt.SatAdd(iIntra, rt.SatMul(v.offPath[q], ctx.localCS[j]))
	}

	// Lemma 3 epsilon terms (constant in r; computed via Lemma 2's W).
	eps := ctx.epsScratch
	for i := range ctx.procs {
		eps[i] = a.epsilon(ctx, &ctx.procs[i], v)
	}

	// Static off-path agent work on the own cluster (Lemma 6, Eq. 9).
	var iaStatic rt.Time
	for j, q := range ctx.clusterRes {
		iaStatic = rt.SatAdd(iaStatic, rt.SatMul(v.offPath[q], ctx.clusterCS[j]))
	}

	recurrence := func(r rt.Time) rt.Time {
		// Lemma 3: B_i <= sum_k min(eps_k, zeta_k(r)).
		var blocking rt.Time
		for i := range ctx.procs {
			zeta := etaSum(ctx.procs[i].other, r)
			if eps[i] < zeta {
				blocking = rt.SatAdd(blocking, eps[i])
			} else {
				blocking = rt.SatAdd(blocking, zeta)
			}
		}
		// Lemma 6: I_A.
		ia := rt.SatAdd(etaSum(ctx.cluster, r), iaStatic)
		sum := rt.SatAdd(v.length, blocking)
		sum = rt.SatAdd(sum, b)
		sum = rt.SatAdd(sum, rt.CeilDiv(rt.SatAdd(iIntra, ia), ctx.mi))
		// Sec. VI: higher-priority light tasks on the same processor
		// interfere with their full WCET (partitioned fixed-priority).
		return rt.SatAdd(sum, etaSum(ctx.hpShared, r))
	}

	x0 := rt.SatAdd(v.length, rt.SatAdd(b, rt.CeilDiv(iIntra, ctx.mi)))
	r, ok := rta.FixPoint(x0, t.Deadline, recurrence)
	if !ok {
		return rt.Infinity
	}
	return r
}

// intraBlocking evaluates Lemma 4.
func (a *DPCPp) intraBlocking(ctx *taskCtx, v *pathView) rt.Time {
	var b rt.Time
	// Eq. (6): local resources the path itself requests.
	for j, q := range ctx.localRes {
		if v.onPath[q] > 0 {
			b = rt.SatAdd(b, rt.SatMul(v.offPath[q], ctx.localCS[j]))
		}
	}
	// Eq. (7): global resources on processors the path requests from.
	for i := range ctx.procs {
		pc := &ctx.procs[i]
		sigma := false
		for _, u := range pc.res {
			if v.onPath[u] > 0 {
				sigma = true
				break
			}
		}
		if !sigma {
			continue
		}
		for j, u := range pc.res {
			b = rt.SatAdd(b, rt.SatMul(v.offPath[u], pc.resCS[j]))
		}
	}
	return b
}

// epsilon evaluates Eq. (4) for one processor: the per-request blocking
// bound (beta + gamma(W)) scaled by the number of requests the path issues
// to each resource on the processor. W is the Lemma 2 request response
// time. When a W recurrence diverges beyond the deadline, epsilon becomes
// Infinity and Lemma 3's min() falls back to the zeta bound, which remains
// sound.
//
// The W fixed point depends on the view only through its base value, so
// results are memoized in ctx.epsMemo keyed by (processor, base) and shared
// across the per-view loop; rt.Infinity records divergence.
func (a *DPCPp) epsilon(ctx *taskCtx, pc *procCtx, v *pathView) rt.Time {
	t := ctx.task

	// Off-path intra-task CS work on this processor's resources (the
	// middle term of Eq. 3), shared by every W on this processor.
	var offCoWork rt.Time
	for j, u := range pc.res {
		offCoWork = rt.SatAdd(offCoWork, rt.SatMul(v.offPath[u], pc.resCS[j]))
	}

	var eps rt.Time
	for j, q := range pc.res {
		n := v.onPath[q]
		if n == 0 {
			continue
		}
		base := rt.SatAdd(pc.resCS[j], rt.SatAdd(offCoWork, pc.beta))
		key := epsKey{proc: pc.proc, base: base}
		perReq, hit := ctx.epsMemo[key]
		if !hit {
			w, ok := rta.FixPoint(base, t.Deadline, func(w rt.Time) rt.Time {
				return rt.SatAdd(base, etaSum(pc.hp, w))
			})
			if ok {
				perReq = rt.SatAdd(pc.beta, etaSum(pc.hp, w))
			} else {
				perReq = rt.Infinity
			}
			ctx.epsMemo[key] = perReq
		}
		if perReq >= rt.Infinity {
			return rt.Infinity
		}
		eps = rt.SatAdd(eps, rt.SatMul(n, perReq))
	}
	return eps
}
