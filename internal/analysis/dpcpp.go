package analysis

import (
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/rta"
)

// DPCPp is the response-time analysis of Sec. IV. With en=false it
// evaluates Theorem 1 exactly per candidate worst-case path (DPCP-p-EP),
// using the signature-collapsed path views of model.EnumerateViews: paths
// with identical per-resource request vectors yield identical Theorem 1
// terms except for L(lambda) and the on-path non-critical WCET, in which
// the bound is monotone, so only the per-signature maximum is evaluated.
// With en=true, or whenever a DAG has more than pathCap complete paths, it
// substitutes the per-term path extremes computed by DAG dynamic
// programming (DPCP-p-EN).
//
// Every analyzer computes through a Scratch (see scratch.go): NewDPCPp owns
// a private one, TestWith threads a caller-recycled one so steady-state
// analysis rounds allocate nothing.
type DPCPp struct {
	ts      *model.Taskset
	pathCap int
	en      bool
	sc      *Scratch

	// byPrio caches ByPriorityDesc for the analyzer's lifetime: the sort
	// result (including its tie order, which feeds the eta terms) is fixed
	// per taskset, and WCRTs runs once per partitioning round.
	byPrio []*model.Task

	// Fallbacks counts tasks analyzed with EN bounds because their path
	// count exceeded pathCap (diagnostics only). It increments once per
	// per-task view construction, including cache hits, mirroring the
	// pre-cache behavior.
	Fallbacks int

	// Delta-analysis hooks (see delta.go); all nil outside incremental
	// runs, costing the production path a nil check each.
	//
	// cap, when set, snapshots each converged task's per-view fixed points
	// and epsilon memo rows; it is reset at the start of every WCRTs pass
	// so it always holds the latest round. warmFix seeds the next
	// taskWCRT's fixed-point iterates (element-wise max with the cold
	// start); epsSeed preloads epsilon memo rows after taskReset. Both are
	// per-task: the delta analyzer sets them immediately before a taskWCRT
	// call and clears them after.
	cap     *deltaCapture
	warmFix []rt.Time
	epsSeed []epsRow
}

type cachedViews struct {
	views    []pathView
	fallback bool
}

// NewDPCPp returns a DPCP-p analyzer over the taskset with its own private
// scratch. Use TestWith to recycle scratch across analyses.
func NewDPCPp(ts *model.Taskset, pathCap int, en bool) *DPCPp {
	return newDPCPp(NewScratch(), ts, pathCap, en)
}

func newDPCPp(sc *Scratch, ts *model.Taskset, pathCap int, en bool) *DPCPp {
	sc.analyzerReset()
	return &DPCPp{ts: ts, pathCap: pathCap, en: en, sc: sc,
		byPrio: ts.ByPriorityDesc()}
}

// WCRTs implements partition.Analyzer: it analyzes tasks from highest to
// lowest priority so that eta terms can use the already-computed bounds of
// higher-priority tasks (Sec. IV-B).
//
// The returned map is scratch-owned and valid until the next WCRTs call on
// this analyzer; internal/partition copies it into every Result it hands
// out.
func (a *DPCPp) WCRTs(p *partition.Partition) map[rt.TaskID]rt.Time {
	round := a.sc.stageStart()
	if a.cap != nil {
		a.cap.reset()
	}
	wcrts := a.sc.wcrts
	clear(wcrts)
	for _, t := range a.byPrio {
		wcrts[t.ID] = a.taskWCRT(p, t, wcrts)
	}
	a.sc.stageEnd(StageRound, round)
	return wcrts
}

// pathView abstracts "one candidate worst-case path": a signature-collapsed
// view over enumerated paths (EP) or the per-term extremes over all paths
// (EN).
type pathView struct {
	length     rt.Time // L(lambda) (EN: L*)
	offNonCrit rt.Time // non-critical WCET of vertices not on the path
	onPath     []int64 // N^lambda_{i,q} (EN: max over paths)
	offPath    []int64 // N_{i,q} - N^lambda_{i,q} (EN: N - min over paths)
}

func (a *DPCPp) pathViews(t *model.Task) []pathView {
	c, ok := a.sc.viewCache[t.ID]
	if !ok {
		start := a.sc.stageStart()
		c = a.buildViews(t)
		a.sc.stageEnd(StageViews, start)
		a.sc.viewCache[t.ID] = c
	}
	if c.fallback {
		a.Fallbacks++
	}
	return c.views
}

func (a *DPCPp) buildViews(t *model.Task) cachedViews {
	nr := a.ts.NumResources
	s := a.sc
	if !a.en {
		var pvs []model.PathView
		var ok bool
		if a.cap != nil {
			// Delta runs compile the collapse structure alongside the
			// enumeration so later WCET-only patches can replay it instead
			// of re-enumerating (see model.ViewPlan).
			var plan *model.ViewPlan
			pvs, plan, ok = t.EnumerateViewsPlan(a.pathCap, &s.vs)
			if ok {
				a.cap.plans[t.ID] = plan
			}
		} else {
			pvs, ok = t.EnumerateViewsScratch(a.pathCap, &s.vs)
		}
		if ok {
			// The enumerated views borrow s.vs until its next call; convert
			// them immediately into analyzer-lifetime arena storage (the
			// view cache spans partition rounds). One flat backing array
			// holds every view's request vectors.
			views := s.pviews.alloc(len(pvs))
			flat := s.flat.alloc(2 * nr * len(pvs))
			totalNonCrit := t.NonCritWCET()
			for i := range pvs {
				pv := &pvs[i]
				on := flat[2*i*nr : (2*i+1)*nr : (2*i+1)*nr]
				off := flat[(2*i+1)*nr : (2*i+2)*nr : (2*i+2)*nr]
				for q := 0; q < nr; q++ {
					n := pv.Requests(rt.ResourceID(q))
					on[q] = n
					off[q] = t.NumRequests(rt.ResourceID(q)) - n
				}
				views[i] = pathView{
					length:     pv.Length,
					offNonCrit: totalNonCrit - pv.NonCrit,
					onPath:     on,
					offPath:    off,
				}
			}
			return cachedViews{views: views}
		}
		return cachedViews{views: a.enView(t), fallback: true}
	}
	return cachedViews{views: a.enView(t)}
}

// enView builds the single path-oblivious EN view.
func (a *DPCPp) enView(t *model.Task) []pathView {
	nr := a.ts.NumResources
	s := a.sc
	b := t.ComputePathBounds()
	views := s.pviews.alloc(1)
	on := s.flat.alloc(nr)
	off := s.flat.alloc(nr)
	for q := 0; q < nr; q++ {
		on[q] = b.MaxReq[q]
		off[q] = t.NumRequests(rt.ResourceID(q)) - b.MinReq[q]
	}
	views[0] = pathView{
		length:     b.MaxLength,
		offNonCrit: t.NonCritWCET() - b.MinNonCrit,
		onPath:     on,
		offPath:    off,
	}
	return views
}

// procCtx carries the per-processor precomputations for one analyzed task:
// the beta and gamma terms of Lemma 2 and the zeta term of Lemma 3.
type procCtx struct {
	proc rt.ProcID
	res  []rt.ResourceID // global resources placed here
	// resCS[j] = L_{i,res[j]}, the analyzed task's CS length per resource,
	// hoisted out of the per-view loops.
	resCS []rt.Time

	beta rt.Time // max lower-priority CS with ceiling >= pi_i (Lemma 2)

	// gamma terms: per higher-priority task h, its per-job CS work on the
	// resources of this processor plus its (T, R) for the eta function.
	hp []etaTerm
	// zeta terms: per other task j (any priority), its per-job CS work here.
	other []etaTerm
}

type etaTerm struct {
	period rt.Time
	resp   rt.Time
	work   rt.Time
}

func etaSum(terms []etaTerm, window rt.Time) rt.Time {
	var total rt.Time
	for _, e := range terms {
		total = rt.SatAdd(total, rt.SatMul(rta.Eta(window, e.resp, e.period), e.work))
	}
	return total
}

// taskCtx bundles everything Theorem 1 needs for one task. It lives inside
// the analyzer's Scratch and every slice below is arena-backed: a taskCtx
// is valid only until the next buildCtx call on the same analyzer.
type taskCtx struct {
	task    *model.Task
	mi      int64
	procs   []procCtx // processors hosting at least one global resource
	cluster []etaTerm // Lemma 6: other tasks' CS work on this task's cluster
	// clusterRes are the global resources on this task's own cluster.
	clusterRes []rt.ResourceID
	// localRes are the local resources the task uses.
	localRes []rt.ResourceID
	// hpShared: for light tasks sharing a processor (Sec. VI), the
	// higher-priority light tasks co-located with this one; their whole
	// WCET interferes under partitioned fixed-priority scheduling.
	hpShared []etaTerm
	shared   bool

	// localCS / clusterCS cache the task's CS length per localRes /
	// clusterRes entry, hoisted out of the per-view loops.
	localCS   []rt.Time
	clusterCS []rt.Time

	// epsMemo caches the Lemma 2 per-request blocking bound across the
	// per-view loop: the W fixed point depends on the view only through
	// base = L_{i,q} + off-path co-located CS work + beta, so views
	// sharing a base (the common case after signature collapse) reuse it.
	// rt.Infinity marks a diverged recurrence.
	epsMemo map[epsKey]rt.Time
	// epsScratch holds the per-processor epsilon values of the view under
	// evaluation in the single-view path (pathWCRT: Explain and reference
	// implementations); the batched path keeps its own flat array.
	epsScratch []rt.Time
}

// epsKey identifies one Lemma 2 fixed-point computation within a task's
// analysis round.
type epsKey struct {
	proc rt.ProcID
	base rt.Time
}

func (a *DPCPp) buildCtx(p *partition.Partition, t *model.Task,
	wcrts map[rt.TaskID]rt.Time) *taskCtx {

	ts := a.ts
	s := a.sc
	s.taskReset()
	ctx := &s.ctx
	ctx.task = t
	ctx.mi = int64(p.NumProcs(t.ID))
	if ctx.mi == 0 {
		ctx.mi = 1
	}
	ctx.procs = ctx.procs[:0]
	ctx.cluster = nil
	ctx.clusterRes = nil
	ctx.clusterCS = nil
	ctx.hpShared = nil
	ctx.shared = false

	nr := ts.NumResources
	localRes := s.resIDs.alloc(nr)[:0]
	localCS := s.times.alloc(nr)[:0]
	for q := 0; q < nr; q++ {
		rid := rt.ResourceID(q)
		if ts.IsLocal(rid) && t.UsesResource(rid) {
			localRes = append(localRes, rid)
			localCS = append(localCS, t.CS(rid))
		}
	}
	ctx.localRes, ctx.localCS = localRes, localCS

	// nOther bounds every eta-term list: each task other than t contributes
	// at most one term per list.
	nOther := len(ts.Tasks)
	for k := 0; k < ts.NumProcs; k++ {
		proc := rt.ProcID(k)
		res := p.ResourcesOn(proc)
		if len(res) == 0 {
			continue
		}
		pc := procCtx{proc: proc, res: res, resCS: s.times.alloc(len(res))}
		for j, u := range res {
			pc.resCS[j] = t.CS(u)
		}
		pc.hp = s.terms.alloc(nOther)[:0]
		pc.other = s.terms.alloc(nOther)[:0]
		for _, other := range ts.Tasks {
			if other.ID == t.ID {
				continue
			}
			var work rt.Time
			for _, u := range res {
				work = rt.SatAdd(work, other.CSWork(u))
			}
			if work == 0 {
				continue
			}
			term := etaTerm{period: other.Period, resp: knownOrDeadline(wcrts, other), work: work}
			pc.other = append(pc.other, term)
			if other.Priority.Higher(t.Priority) {
				pc.hp = append(pc.hp, term)
			} else {
				// Lower-priority tasks contribute to beta: their longest
				// CS on a co-located resource whose ceiling reaches pi_i.
				for _, u := range res {
					if other.UsesResource(u) && ts.CeilingAtLeast(u, t.Priority) {
						if cs := other.CS(u); cs > pc.beta {
							pc.beta = cs
						}
					}
				}
			}
		}
		ctx.procs = append(ctx.procs, pc)
	}

	if p.IsShared(t.ID) {
		ctx.shared = true
		ctx.mi = 1
		hpShared := s.terms.alloc(nOther)[:0]
		for _, k := range p.Procs(t.ID) {
			for _, id := range p.SharedOn(k) {
				if id == t.ID {
					continue
				}
				other := ts.Task(id)
				if other.Priority.Higher(t.Priority) {
					hpShared = append(hpShared, etaTerm{
						period: other.Period,
						resp:   knownOrDeadline(wcrts, other),
						work:   other.WCET(),
					})
				}
			}
		}
		ctx.hpShared = hpShared
	}

	// Delta runs preload still-valid epsilon rows from the retained state
	// (taskReset just cleared the memo). The seed slice is sorted by
	// (proc, base); re-seeding reproduces exactly the entries the
	// from-scratch fixed points would compute (see Delta.ApplyTo).
	for _, row := range a.epsSeed {
		s.epsMemo[row.key] = row.val
	}
	ctx.epsMemo = s.epsMemo
	ctx.epsScratch = s.times.alloc(len(ctx.procs))

	ctx.clusterRes = p.AppendClusterResources(s.resIDs.alloc(nr)[:0], t.ID)
	if len(ctx.clusterRes) > 0 {
		ctx.clusterCS = s.times.alloc(len(ctx.clusterRes))
		for j, u := range ctx.clusterRes {
			ctx.clusterCS[j] = t.CS(u)
		}
		cluster := s.terms.alloc(nOther)[:0]
		for _, other := range ts.Tasks {
			if other.ID == t.ID {
				continue
			}
			var work rt.Time
			for _, u := range ctx.clusterRes {
				work = rt.SatAdd(work, other.CSWork(u))
			}
			if work > 0 {
				cluster = append(cluster,
					etaTerm{period: other.Period, resp: knownOrDeadline(wcrts, other), work: work})
			}
		}
		ctx.cluster = cluster
	}
	return ctx
}

// taskWCRT evaluates Theorem 1 over every candidate path view of one task.
// The per-view constants (Lemmas 4 and 5, the static Lemma 6 term, and the
// Lemma 2/3 epsilons) are computed up front into flat batch arrays — the
// epsilons processor-major, so one processor's beta/gamma tables and its
// (proc, base) memo rows stay hot across the whole view batch — and the
// response-time fixed points of all views then iterate in lockstep via
// rta.FixPointBatch, streaming the shared eta tables once per wave instead
// of once per view. Results are bit-identical to evaluating pathWCRT per
// view (the epequiv suite pins this against the per-path reference).
//
//schedlint:hotpath
func (a *DPCPp) taskWCRT(p *partition.Partition, t *model.Task,
	wcrts map[rt.TaskID]rt.Time) rt.Time {

	ctx := a.buildCtx(p, t, wcrts)
	// A light task runs sequentially: the whole job is its only "path";
	// every request is on it and nothing runs off it (handled by viewsFor).
	views := a.viewsFor(ctx)
	nv := len(views)
	np := len(ctx.procs)
	s := a.sc

	bs := s.times.alloc(nv)
	iIntras := s.times.alloc(nv)
	iaStatics := s.times.alloc(nv)
	xs := s.times.alloc(nv)
	eps := s.times.alloc(nv * np)
	done := s.bools.alloc(nv)

	for vi := range views {
		v := &views[vi]
		// Lemma 4: intra-task blocking (constant in r).
		b := a.intraBlocking(ctx, v)
		// Lemma 5: intra-task interference (constant in r).
		iIntra := v.offNonCrit
		for j, q := range ctx.localRes {
			iIntra = rt.SatAdd(iIntra, rt.SatMul(v.offPath[q], ctx.localCS[j]))
		}
		// Static off-path agent work on the own cluster (Lemma 6, Eq. 9).
		var iaStatic rt.Time
		for j, q := range ctx.clusterRes {
			iaStatic = rt.SatAdd(iaStatic, rt.SatMul(v.offPath[q], ctx.clusterCS[j]))
		}
		bs[vi], iIntras[vi], iaStatics[vi] = b, iIntra, iaStatic
		xs[vi] = rt.SatAdd(v.length, rt.SatAdd(b, rt.CeilDiv(iIntra, ctx.mi)))
	}
	if a.warmFix != nil && len(a.warmFix) == nv {
		// Warm start from retained per-view fixed points (delta runs only):
		// the caller guarantees each seed lies between the cold start and
		// the new least fixed point, so the iteration converges to exactly
		// the fixed point a cold start would reach (see rta.FixPointBatch).
		for vi := range xs {
			if w := a.warmFix[vi]; w > xs[vi] {
				xs[vi] = w
			}
		}
	}
	// Lemma 3 epsilon terms (constant in r; computed via Lemma 2's W).
	for pi := range ctx.procs {
		pc := &ctx.procs[pi]
		for vi := range views {
			eps[vi*np+pi] = a.epsilon(ctx, pc, &views[vi])
		}
	}

	fixStart := s.stageStart()
	//schedlint:ignore hotpath closure captures only locals that never escape FixPointBatch; the alloc-gate benchmarks hold it to 0 allocs/op
	ok := rta.FixPointBatch(xs, t.Deadline, done, func(vi int, r rt.Time) rt.Time {
		v := &views[vi]
		ve := eps[vi*np : (vi+1)*np]
		// Lemma 3: B_i <= sum_k min(eps_k, zeta_k(r)).
		var blocking rt.Time
		for i := range ctx.procs {
			zeta := etaSum(ctx.procs[i].other, r)
			if ve[i] < zeta {
				blocking = rt.SatAdd(blocking, ve[i])
			} else {
				blocking = rt.SatAdd(blocking, zeta)
			}
		}
		// Lemma 6: I_A.
		ia := rt.SatAdd(etaSum(ctx.cluster, r), iaStatics[vi])
		sum := rt.SatAdd(v.length, blocking)
		sum = rt.SatAdd(sum, bs[vi])
		sum = rt.SatAdd(sum, rt.CeilDiv(rt.SatAdd(iIntras[vi], ia), ctx.mi))
		// Sec. VI: higher-priority light tasks on the same processor
		// interfere with their full WCET (partitioned fixed-priority).
		return rt.SatAdd(sum, etaSum(ctx.hpShared, r))
	})
	s.stageEnd(StageFixPoint, fixStart)
	if !ok {
		// One diverged view dooms the task either way; per-view results are
		// irrelevant past this point, exactly like the early exit of the
		// sequential loop.
		return rt.Infinity
	}
	if a.cap != nil {
		//schedlint:ignore hotpath delta-state capture copies per-view results only under the delta analyzer; cap is nil on the zero-alloc production path
		a.cap.record(t.ID, xs, ctx.epsMemo)
	}
	var worst rt.Time
	for _, r := range xs {
		if r > worst {
			worst = r
		}
	}
	return worst
}

// pathWCRT evaluates Theorem 1 for one path view:
//
//	r <= L(lambda) + B_i + b_i + (I_intra + I_A) / m_i
//
// as the least fixed point over r (B and I_A depend on r through eta).
// The production path (taskWCRT) batches this computation across views;
// pathWCRT remains the single-view evaluator behind Explain and the
// per-path reference implementation of the equivalence suite.
func (a *DPCPp) pathWCRT(ctx *taskCtx, v *pathView) rt.Time {
	t := ctx.task

	// Lemma 4: intra-task blocking (constant in r).
	b := a.intraBlocking(ctx, v)

	// Lemma 5: intra-task interference (constant in r).
	iIntra := v.offNonCrit
	for j, q := range ctx.localRes {
		iIntra = rt.SatAdd(iIntra, rt.SatMul(v.offPath[q], ctx.localCS[j]))
	}

	// Lemma 3 epsilon terms (constant in r; computed via Lemma 2's W).
	eps := ctx.epsScratch
	for i := range ctx.procs {
		eps[i] = a.epsilon(ctx, &ctx.procs[i], v)
	}

	// Static off-path agent work on the own cluster (Lemma 6, Eq. 9).
	var iaStatic rt.Time
	for j, q := range ctx.clusterRes {
		iaStatic = rt.SatAdd(iaStatic, rt.SatMul(v.offPath[q], ctx.clusterCS[j]))
	}

	recurrence := func(r rt.Time) rt.Time {
		// Lemma 3: B_i <= sum_k min(eps_k, zeta_k(r)).
		var blocking rt.Time
		for i := range ctx.procs {
			zeta := etaSum(ctx.procs[i].other, r)
			if eps[i] < zeta {
				blocking = rt.SatAdd(blocking, eps[i])
			} else {
				blocking = rt.SatAdd(blocking, zeta)
			}
		}
		// Lemma 6: I_A.
		ia := rt.SatAdd(etaSum(ctx.cluster, r), iaStatic)
		sum := rt.SatAdd(v.length, blocking)
		sum = rt.SatAdd(sum, b)
		sum = rt.SatAdd(sum, rt.CeilDiv(rt.SatAdd(iIntra, ia), ctx.mi))
		// Sec. VI: higher-priority light tasks on the same processor
		// interfere with their full WCET (partitioned fixed-priority).
		return rt.SatAdd(sum, etaSum(ctx.hpShared, r))
	}

	x0 := rt.SatAdd(v.length, rt.SatAdd(b, rt.CeilDiv(iIntra, ctx.mi)))
	r, ok := rta.FixPoint(x0, t.Deadline, recurrence)
	if !ok {
		return rt.Infinity
	}
	return r
}

// intraBlocking evaluates Lemma 4.
func (a *DPCPp) intraBlocking(ctx *taskCtx, v *pathView) rt.Time {
	var b rt.Time
	// Eq. (6): local resources the path itself requests.
	for j, q := range ctx.localRes {
		if v.onPath[q] > 0 {
			b = rt.SatAdd(b, rt.SatMul(v.offPath[q], ctx.localCS[j]))
		}
	}
	// Eq. (7): global resources on processors the path requests from.
	for i := range ctx.procs {
		pc := &ctx.procs[i]
		sigma := false
		for _, u := range pc.res {
			if v.onPath[u] > 0 {
				sigma = true
				break
			}
		}
		if !sigma {
			continue
		}
		for j, u := range pc.res {
			b = rt.SatAdd(b, rt.SatMul(v.offPath[u], pc.resCS[j]))
		}
	}
	return b
}

// epsilon evaluates Eq. (4) for one processor: the per-request blocking
// bound (beta + gamma(W)) scaled by the number of requests the path issues
// to each resource on the processor. W is the Lemma 2 request response
// time. When a W recurrence diverges beyond the deadline, epsilon becomes
// Infinity and Lemma 3's min() falls back to the zeta bound, which remains
// sound.
//
// The W fixed point depends on the view only through its base value, so
// results are memoized in ctx.epsMemo keyed by (processor, base) and shared
// across the per-view loop; rt.Infinity records divergence.
func (a *DPCPp) epsilon(ctx *taskCtx, pc *procCtx, v *pathView) rt.Time {
	t := ctx.task

	// Off-path intra-task CS work on this processor's resources (the
	// middle term of Eq. 3), shared by every W on this processor.
	var offCoWork rt.Time
	for j, u := range pc.res {
		offCoWork = rt.SatAdd(offCoWork, rt.SatMul(v.offPath[u], pc.resCS[j]))
	}

	var eps rt.Time
	for j, q := range pc.res {
		n := v.onPath[q]
		if n == 0 {
			continue
		}
		base := rt.SatAdd(pc.resCS[j], rt.SatAdd(offCoWork, pc.beta))
		key := epsKey{proc: pc.proc, base: base}
		perReq, hit := ctx.epsMemo[key]
		if !hit {
			//schedlint:ignore hotpath closure captures only locals that never escape FixPoint; the alloc-gate benchmarks hold it to 0 allocs/op
			w, ok := rta.FixPoint(base, t.Deadline, func(w rt.Time) rt.Time {
				return rt.SatAdd(base, etaSum(pc.hp, w))
			})
			if ok {
				perReq = rt.SatAdd(pc.beta, etaSum(pc.hp, w))
			} else {
				perReq = rt.Infinity
			}
			ctx.epsMemo[key] = perReq
		}
		if perReq >= rt.Infinity {
			return rt.Infinity
		}
		eps = rt.SatAdd(eps, rt.SatMul(n, perReq))
	}
	return eps
}
