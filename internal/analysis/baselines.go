package analysis

import (
	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// vertexCount returns, per resource, the number of distinct vertices of the
// task that issue at least one request to it. This bounds how many requests
// of one job can be pending concurrently.
func vertexCount(ts *model.Taskset, t *model.Task) []int64 {
	counts := make([]int64, ts.NumResources)
	for _, v := range t.Vertices {
		for q, n := range v.Requests {
			if n > 0 {
				counts[q]++
			}
		}
	}
	return counts
}

// Spin is the SPIN-SON baseline (Dinh et al.): federated scheduling with
// local execution of requests and FIFO non-preemptive spin locks.
//
// Per request to q, the spinning vertex waits for at most one in-flight
// critical section per processor that can concurrently contend: task tau_j
// contributes min(m_j, V_{j,q}) critical sections (spinning occupies a
// processor, so concurrency is capped by the cluster size), and the task's
// own other vertices contribute min(m_i - 1, V_{i,q} - 1). Spinning burns
// processor time, so off-path spin inflates the interference term. The
// worst-case path is unknown and bounded per-term exactly as in DPCP-p-EN,
// matching the paper's remark that [6] enumerates the path request counts.
type Spin struct {
	ts     *model.Taskset
	vcount map[rt.TaskID][]int64
	bounds map[rt.TaskID]*model.PathBounds
}

// NewSpin returns a SPIN-SON analyzer over the taskset.
func NewSpin(ts *model.Taskset) *Spin {
	s := &Spin{ts: ts,
		vcount: make(map[rt.TaskID][]int64, len(ts.Tasks)),
		bounds: make(map[rt.TaskID]*model.PathBounds, len(ts.Tasks))}
	for _, t := range ts.Tasks {
		s.vcount[t.ID] = vertexCount(ts, t)
		s.bounds[t.ID] = t.ComputePathBounds()
	}
	return s
}

// WCRTs implements partition.Analyzer.
func (s *Spin) WCRTs(p *partition.Partition) map[rt.TaskID]rt.Time {
	out := make(map[rt.TaskID]rt.Time, len(s.ts.Tasks))
	for _, t := range s.ts.Tasks {
		out[t.ID] = s.taskWCRT(p, t)
	}
	return out
}

func (s *Spin) taskWCRT(p *partition.Partition, t *model.Task) rt.Time {
	mi := int64(p.NumProcs(t.ID))
	if mi == 0 {
		mi = 1
	}
	b := s.bounds[t.ID]

	var pathSpin, offSpin rt.Time
	for q := 0; q < s.ts.NumResources; q++ {
		rid := rt.ResourceID(q)
		if !t.UsesResource(rid) {
			continue
		}
		delta := s.perRequestWait(p, t, rid, mi)
		onReq := b.MaxReq[q]
		offReq := t.NumRequests(rid) - b.MinReq[q]
		pathSpin = rt.SatAdd(pathSpin, rt.SatMul(onReq, delta))
		offSpin = rt.SatAdd(offSpin, rt.SatMul(offReq, delta))
	}

	offWork := rt.SatAdd(t.WCET()-b.MinLength, offSpin)
	r := rt.SatAdd(b.MaxLength, pathSpin)
	return rt.SatAdd(r, rt.CeilDiv(offWork, mi))
}

// perRequestWait bounds the FIFO spin wait of a single request to q.
func (s *Spin) perRequestWait(p *partition.Partition, t *model.Task, q rt.ResourceID, mi int64) rt.Time {
	var delta rt.Time
	for _, other := range s.ts.Tasks {
		if other.ID == t.ID || !other.UsesResource(q) {
			continue
		}
		mj := int64(p.NumProcs(other.ID))
		if mj == 0 {
			mj = 1
		}
		conc := s.vcount[other.ID][q]
		if mj < conc {
			conc = mj
		}
		delta = rt.SatAdd(delta, rt.SatMul(conc, other.CS(q)))
	}
	intra := s.vcount[t.ID][q] - 1
	if intra > mi-1 {
		intra = mi - 1
	}
	if intra > 0 {
		delta = rt.SatAdd(delta, rt.SatMul(intra, t.CS(q)))
	}
	return delta
}

// LPPAnalyzer is the LPP baseline (Jiang et al.): federated scheduling with
// local execution, suspension-based FIFO semaphores, and holder priority
// boosting within the cluster.
//
// The analytical difference from spinning: a suspended vertex releases its
// processor, so up to V_{j,q} requests of task tau_j — one per vertex that
// uses q, NOT capped by m_j — can be queued ahead of a given request. In
// exchange, waiting does not burn processor time, so no off-path spin term
// inflates the interference bound.
type LPPAnalyzer struct {
	ts     *model.Taskset
	vcount map[rt.TaskID][]int64
	bounds map[rt.TaskID]*model.PathBounds
}

// NewLPP returns an LPP analyzer over the taskset.
func NewLPP(ts *model.Taskset) *LPPAnalyzer {
	a := &LPPAnalyzer{ts: ts,
		vcount: make(map[rt.TaskID][]int64, len(ts.Tasks)),
		bounds: make(map[rt.TaskID]*model.PathBounds, len(ts.Tasks))}
	for _, t := range ts.Tasks {
		a.vcount[t.ID] = vertexCount(ts, t)
		a.bounds[t.ID] = t.ComputePathBounds()
	}
	return a
}

// WCRTs implements partition.Analyzer.
func (a *LPPAnalyzer) WCRTs(p *partition.Partition) map[rt.TaskID]rt.Time {
	out := make(map[rt.TaskID]rt.Time, len(a.ts.Tasks))
	for _, t := range a.ts.Tasks {
		out[t.ID] = a.taskWCRT(p, t)
	}
	return out
}

func (a *LPPAnalyzer) taskWCRT(p *partition.Partition, t *model.Task) rt.Time {
	mi := int64(p.NumProcs(t.ID))
	if mi == 0 {
		mi = 1
	}
	b := a.bounds[t.ID]

	var pathWait rt.Time
	for q := 0; q < a.ts.NumResources; q++ {
		rid := rt.ResourceID(q)
		if !t.UsesResource(rid) {
			continue
		}
		var delta rt.Time
		for _, other := range a.ts.Tasks {
			if other.ID == t.ID || !other.UsesResource(rid) {
				continue
			}
			delta = rt.SatAdd(delta, rt.SatMul(a.vcount[other.ID][q], other.CS(rid)))
		}
		if intra := a.vcount[t.ID][q] - 1; intra > 0 {
			delta = rt.SatAdd(delta, rt.SatMul(intra, t.CS(rid)))
		}
		pathWait = rt.SatAdd(pathWait, rt.SatMul(b.MaxReq[q], delta))
	}

	r := rt.SatAdd(b.MaxLength, pathWait)
	return rt.SatAdd(r, rt.CeilDiv(t.WCET()-b.MinLength, mi))
}

// FedFP is the FED-FP baseline: plain federated scheduling with shared
// resources ignored (Li et al.), the hypothetical upper envelope of Fig. 2.
type FedFP struct {
	ts *model.Taskset
}

// NewFedFP returns a FED-FP analyzer over the taskset.
func NewFedFP(ts *model.Taskset) *FedFP { return &FedFP{ts: ts} }

// WCRTs implements partition.Analyzer with the classic federated bound
// r = L* + (C - L*) / m_i.
func (f *FedFP) WCRTs(p *partition.Partition) map[rt.TaskID]rt.Time {
	out := make(map[rt.TaskID]rt.Time, len(f.ts.Tasks))
	for _, t := range f.ts.Tasks {
		mi := int64(p.NumProcs(t.ID))
		if mi == 0 {
			mi = 1
		}
		out[t.ID] = rt.SatAdd(t.LongestPath(),
			rt.CeilDiv(t.WCET()-t.LongestPath(), mi))
	}
	return out
}
