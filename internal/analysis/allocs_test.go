package analysis

import (
	"testing"
	"time"

	"dpcpp/internal/model"
	"dpcpp/internal/obs"
	"dpcpp/internal/partition"
)

// histRecorder adapts obs latency histograms to the StageRecorder hook —
// the exact wiring the server engine uses, so the zero-alloc gates below
// exercise production instrumentation, not a test stub.
type histRecorder struct{ h [NumStages]*obs.Histogram }

func newHistRecorder() *histRecorder {
	r := &histRecorder{}
	for i := range r.h {
		r.h[i] = obs.NewHistogram(obs.DefaultLatencyBounds())
	}
	return r
}

func (r *histRecorder) RecordStage(s Stage, d time.Duration) { r.h[s].Observe(d) }

// allocPartition returns a corpus taskset together with a partition to
// re-analyze, preferring a schedulable one so WCRTs exercises the full
// fixed-point machinery.
func allocPartition(t *testing.T, m Method) (*model.Taskset, *partition.Partition) {
	t.Helper()
	for _, ts := range equivalenceCorpus(t) {
		if res := Test(m, ts, Options{}); res.Partition != nil {
			return ts, res.Partition
		}
	}
	t.Fatal("no corpus taskset produced a partition")
	return nil, nil
}

// testWCRTsZeroAlloc pins the tentpole property: once the scratch arenas
// are warm, a full WCRTs round over a fixed partition allocates nothing —
// with per-stage instrumentation enabled, exactly as the server runs it.
// This is a hard gate — any regression (a map rebuilt per call, an arena
// growing per round, a slice escaping, a recorder that boxes) fails the
// test, not just a benchmark trend.
func testWCRTsZeroAlloc(t *testing.T, en bool) {
	m := DPCPpEP
	if en {
		m = DPCPpEN
	}
	ts, p := allocPartition(t, m)
	a := NewDPCPp(ts, DefaultPathCap, en)
	rec := newHistRecorder()
	a.sc.SetStageRecorder(rec)
	a.WCRTs(p) // warm: builds the view cache and sizes every arena
	if n := testing.AllocsPerRun(20, func() { a.WCRTs(p) }); n != 0 {
		t.Fatalf("%s warm WCRTs: %v allocs/run, want 0", m, n)
	}
	if rec.h[StageRound].Count() == 0 || rec.h[StageFixPoint].Count() == 0 {
		t.Fatalf("%s: stage recorder saw no samples (round=%d fixpoint=%d); instrumentation is dead",
			m, rec.h[StageRound].Count(), rec.h[StageFixPoint].Count())
	}
}

func TestWCRTsZeroAllocEN(t *testing.T) { testWCRTsZeroAlloc(t, true) }
func TestWCRTsZeroAllocEP(t *testing.T) { testWCRTsZeroAlloc(t, false) }

// TestStageHooksZeroAlloc isolates the instrumentation itself: a
// stageStart/stageEnd pair feeding a real histogram recorder must not
// allocate (no interface boxing of the Stage or Duration arguments, no
// time.Time escape).
func TestStageHooksZeroAlloc(t *testing.T) {
	rec := newHistRecorder()
	sc := NewScratch()
	sc.SetStageRecorder(rec)
	if n := testing.AllocsPerRun(100, func() {
		sc.stageEnd(StageViews, sc.stageStart())
	}); n != 0 {
		t.Fatalf("stage hook pair: %v allocs/run, want 0", n)
	}
	if got := rec.h[StageViews].Count(); got < 100 {
		t.Fatalf("recorder saw %d samples, want >= 100", got)
	}
}

// TestTestWithSteadyStateAllocs pins the steady-state allocation count of
// the full pipeline on a recycled scratch. TestWith cannot reach zero —
// the Result (partition, copied WCRT map) is caller-owned fresh memory by
// contract — so the bound pins what the pipeline itself needs; the
// analysis hot path contributes none of it (see TestWCRTsZeroAlloc*).
func TestTestWithSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		m     Method
		bound float64
	}{
		// Bounds are the measured steady state with headroom for map-bucket
		// variance, not targets: lowering them is progress, raising them is
		// a regression that needs a profile first.
		{DPCPpEP, 200},
		{DPCPpEN, 200},
	} {
		ts := equivalenceCorpus(t)[0]
		sc := NewScratch()
		TestWith(sc, tc.m, ts, Options{}) // warm the arenas
		n := testing.AllocsPerRun(10, func() { TestWith(sc, tc.m, ts, Options{}) })
		if n > tc.bound {
			t.Errorf("%s warm TestWith: %v allocs/run, want <= %v", tc.m, n, tc.bound)
		}
	}
}
