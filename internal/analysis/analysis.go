// Package analysis implements the schedulability analyses the paper
// evaluates: the DPCP-p worst-case response-time analysis of Sec. IV in its
// EP (enumerate paths) and EN (enumerate request counts) variants, and the
// three baselines of Sec. VII-B — SPIN-SON (FIFO spin locks), LPP
// (suspension-based semaphores) and FED-FP (federated scheduling ignoring
// resources). Each analysis plugs into the partitioning loop of
// internal/partition as a partition.Analyzer.
//
//schedlint:deterministic
package analysis

import (
	"fmt"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// Method selects one of the analyses under comparison.
type Method string

const (
	// DPCPpEP is DPCP-p with per-path analysis (Sec. IV, enumerate paths).
	DPCPpEP Method = "DPCP-p-EP"
	// DPCPpEN is DPCP-p with path-oblivious per-term bounds (the paper's
	// baseline that enumerates the per-resource request counts).
	DPCPpEN Method = "DPCP-p-EN"
	// SPIN is the FIFO spin-lock baseline (SPIN-SON, Dinh et al.).
	SPIN Method = "SPIN-SON"
	// LPP is the suspension-based semaphore baseline (Jiang et al.).
	LPP Method = "LPP"
	// FEDFP is federated scheduling with resources ignored (Li et al.).
	FEDFP Method = "FED-FP"
)

// Methods lists every implemented method in the paper's comparison order.
func Methods() []Method { return []Method{DPCPpEP, DPCPpEN, SPIN, LPP, FEDFP} }

// Options tunes an analysis run.
type Options struct {
	// PathCap bounds EP path enumeration per task; tasks whose DAGs exceed
	// it fall back to the (sound) EN bounds. <= 0 means the default.
	PathCap int
	// Placement selects the resource-placement heuristic for DPCP-p
	// (Algorithm 2 WFD by default; FFD as an ablation).
	Placement partition.PlacementHeuristic
}

// DefaultPathCap bounds path enumeration when Options.PathCap is unset.
const DefaultPathCap = 4096

func (o Options) pathCap() int {
	if o.PathCap > 0 {
		return o.PathCap
	}
	return DefaultPathCap
}

// Test runs the full schedulability pipeline for the method: processor
// assignment (with resource placement for DPCP-p) plus the method's
// response-time analysis, returning the partitioning result.
func Test(m Method, ts *model.Taskset, opts Options) partition.Result {
	return TestWith(nil, m, ts, opts)
}

// TestWith is Test computing through a caller-recycled Scratch (nil falls
// back to a private one). Repeated analyses on one scratch — the
// steady-state of a grid sweep — reuse every arena and map the hot path
// touches, so an EN or EP taskset test settles at (near-)zero allocations.
// The Result is entirely scratch-independent: it may be retained while the
// scratch moves on to the next taskset. A Scratch serves one goroutine at a
// time.
func TestWith(sc *Scratch, m Method, ts *model.Taskset, opts Options) partition.Result {
	switch m {
	case DPCPpEP, DPCPpEN:
		if sc == nil {
			sc = NewScratch()
		}
		en := m == DPCPpEN
		return partition.Algorithm1(ts, newDPCPp(sc, ts, opts.pathCap(), en), opts.Placement)
	case SPIN:
		return partition.IterativeFederated(ts, NewSpin(ts))
	case LPP:
		return partition.IterativeFederated(ts, NewLPP(ts))
	case FEDFP:
		return partition.IterativeFederated(ts, NewFedFP(ts))
	default:
		panic(fmt.Sprintf("analysis: unknown method %q", m))
	}
}

// Schedulable is a convenience wrapper returning only the verdict.
func Schedulable(m Method, ts *model.Taskset, opts Options) bool {
	return Test(m, ts, opts).Schedulable
}

// knownOrDeadline returns the response-time bound to use for eta terms:
// the already-computed WCRT for higher-priority tasks, or the deadline for
// tasks not yet analyzed (sound within the test: if they later fail, the
// whole set is rejected anyway).
func knownOrDeadline(wcrts map[rt.TaskID]rt.Time, t *model.Task) rt.Time {
	if r, ok := wcrts[t.ID]; ok && r <= t.Deadline {
		return r
	}
	return t.Deadline
}
