package analysis

import (
	"math/rand"
	"reflect"
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/taskgen"
)

// naiveEP is the pre-collapse reference implementation of DPCP-p-EP: one
// pathView per concrete enumerated path, exactly as the engine worked
// before signature collapsing. It reuses the production Theorem 1 evaluator
// (pathWCRT), so any divergence between it and the collapsed engine
// isolates the collapse/memoization layer.
type naiveEP struct {
	a *DPCPp
}

func (n *naiveEP) WCRTs(p *partition.Partition) map[rt.TaskID]rt.Time {
	wcrts := make(map[rt.TaskID]rt.Time, len(n.a.ts.Tasks))
	for _, t := range n.a.ts.ByPriorityDesc() {
		ctx := n.a.buildCtx(p, t, wcrts)
		views := n.viewsFor(ctx)
		var worst rt.Time
		for i := range views {
			r := n.a.pathWCRT(ctx, &views[i])
			if r > worst {
				worst = r
			}
			if worst >= rt.Infinity {
				break
			}
		}
		wcrts[t.ID] = worst
	}
	return wcrts
}

func (n *naiveEP) viewsFor(ctx *taskCtx) []pathView {
	t := ctx.task
	nr := n.a.ts.NumResources
	if ctx.shared {
		v := pathView{length: t.WCET(), onPath: make([]int64, nr), offPath: make([]int64, nr)}
		for q := 0; q < nr; q++ {
			v.onPath[q] = t.NumRequests(rt.ResourceID(q))
		}
		return []pathView{v}
	}
	paths, ok := t.EnumeratePaths(n.a.pathCap)
	if !ok {
		return n.a.enView(t)
	}
	totalNonCrit := t.NonCritWCET()
	views := make([]pathView, len(paths))
	for i, p := range paths {
		v := pathView{
			length:     p.Length,
			offNonCrit: totalNonCrit - p.NonCrit,
			onPath:     make([]int64, nr),
			offPath:    make([]int64, nr),
		}
		for q := 0; q < nr; q++ {
			c := p.Requests(rt.ResourceID(q))
			v.onPath[q] = c
			v.offPath[q] = t.NumRequests(rt.ResourceID(q)) - c
		}
		views[i] = v
	}
	return views
}

// equivalenceCorpus draws tasksets across contention levels; generation
// failures for a (seed, util) pair are skipped, matching sweep behavior.
func equivalenceCorpus(t *testing.T) []*model.Taskset {
	t.Helper()
	scen := taskgen.Scenario{
		M: 16, NumRes: taskgen.IntRange{Lo: 4, Hi: 8}, UAvg: 1.5, PAccess: 0.5,
		NReq:  taskgen.IntRange{Lo: 1, Hi: 25},
		CSLen: taskgen.TimeRange{Lo: 15 * rt.Microsecond, Hi: 50 * rt.Microsecond},
	}.DefaultStructure()
	g := taskgen.NewGenerator(scen)
	var corpus []*model.Taskset
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, util := range []float64{4.0, 8.0} {
			ts, err := g.Taskset(r, util)
			if err != nil {
				continue
			}
			corpus = append(corpus, ts)
		}
	}
	if len(corpus) < 10 {
		t.Fatalf("corpus too small: %d tasksets", len(corpus))
	}
	return corpus
}

// TestCollapsedEPMatchesNaiveReference is the regression gate for the
// signature-collapsed engine: over a generated corpus, the full pipeline
// (partitioning + analysis) must return bit-identical verdicts, WCRTs and
// partition rounds to the per-path reference, and so must the raw WCRTs on
// the final partition.
func TestCollapsedEPMatchesNaiveReference(t *testing.T) {
	for ci, ts := range equivalenceCorpus(t) {
		fast := partition.Algorithm1(ts, NewDPCPp(ts, DefaultPathCap, false), partition.WFD)
		slow := partition.Algorithm1(ts, &naiveEP{NewDPCPp(ts, DefaultPathCap, false)}, partition.WFD)

		if fast.Schedulable != slow.Schedulable {
			t.Errorf("corpus %d: verdict %v != reference %v", ci, fast.Schedulable, slow.Schedulable)
			continue
		}
		if fast.Rounds != slow.Rounds {
			t.Errorf("corpus %d: rounds %d != reference %d", ci, fast.Rounds, slow.Rounds)
		}
		if !reflect.DeepEqual(fast.WCRT, slow.WCRT) {
			t.Errorf("corpus %d: WCRT maps diverge:\n fast: %v\n ref:  %v", ci, fast.WCRT, slow.WCRT)
		}
		if fast.Partition == nil || slow.Partition == nil {
			continue
		}
		// Direct per-task comparison on one fixed partition.
		w1 := NewDPCPp(ts, DefaultPathCap, false).WCRTs(fast.Partition)
		w2 := (&naiveEP{NewDPCPp(ts, DefaultPathCap, false)}).WCRTs(fast.Partition)
		if !reflect.DeepEqual(w1, w2) {
			t.Errorf("corpus %d: per-partition WCRTs diverge:\n fast: %v\n ref:  %v", ci, w1, w2)
		}
	}
}

// TestCollapsedEPMatchesNaiveOnLightSets covers the Sec. VI shared-task
// special view and the mixed partitioning path.
func TestCollapsedEPMatchesNaiveOnLightSets(t *testing.T) {
	ts := lightSet(t)
	fast := partition.AlgorithmMixed(ts, NewDPCPp(ts, DefaultPathCap, false), partition.WFD)
	slow := partition.AlgorithmMixed(ts, &naiveEP{NewDPCPp(ts, DefaultPathCap, false)}, partition.WFD)
	if fast.Schedulable != slow.Schedulable || !reflect.DeepEqual(fast.WCRT, slow.WCRT) {
		t.Errorf("light sets diverge: fast=%v %v ref=%v %v",
			fast.Schedulable, fast.WCRT, slow.Schedulable, slow.WCRT)
	}
}

// TestCollapsedEPMatchesNaiveUnderTightCaps exercises the EN fallback
// boundary: caps below, at, and above the path count of a diamond DAG.
func TestCollapsedEPMatchesNaiveUnderTightCaps(t *testing.T) {
	ts := model.NewTaskset(4, 1)
	task := model.NewTask(0, 10*rt.Millisecond, 10*rt.Millisecond)
	prev := task.AddVertex(10 * rt.Microsecond)
	for i := 0; i < 5; i++ {
		a := task.AddVertex(20 * rt.Microsecond)
		b := task.AddVertex(30 * rt.Microsecond)
		join := task.AddVertex(10 * rt.Microsecond)
		task.AddEdge(prev, a)
		task.AddEdge(prev, b)
		task.AddEdge(a, join)
		task.AddEdge(b, join)
		prev = join
	}
	task.AddRequest(0, 0, 2, 5*rt.Microsecond)
	ts.Add(task)
	other := model.NewTask(1, 5*rt.Millisecond, 5*rt.Millisecond)
	vo := other.AddVertex(100 * rt.Microsecond)
	other.AddRequest(vo, 0, 1, 5*rt.Microsecond)
	ts.Add(other)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{4, 31, 32, 33, 1024} {
		fast := partition.Algorithm1(ts, NewDPCPp(ts, cap, false), partition.WFD)
		slow := partition.Algorithm1(ts, &naiveEP{NewDPCPp(ts, cap, false)}, partition.WFD)
		if fast.Schedulable != slow.Schedulable || !reflect.DeepEqual(fast.WCRT, slow.WCRT) {
			t.Errorf("cap %d: fast=%v %v ref=%v %v", cap,
				fast.Schedulable, fast.WCRT, slow.Schedulable, slow.WCRT)
		}
	}
}

// TestPathViewsCachedAcrossRounds guards the analyzer-level view cache: the
// second request for a task's views must not allocate (beyond the map
// lookup) or recompute.
func TestPathViewsCachedAcrossRounds(t *testing.T) {
	ts := handSet(t)
	a := NewDPCPp(ts, DefaultPathCap, false)
	task := ts.Task(0)
	first := a.pathViews(task)
	allocs := testing.AllocsPerRun(100, func() {
		a.pathViews(task)
	})
	if allocs > 0 {
		t.Errorf("cached pathViews allocates %v per call, want 0", allocs)
	}
	second := a.pathViews(task)
	if &first[0] != &second[0] {
		t.Error("cached pathViews returned a different slice")
	}
}
