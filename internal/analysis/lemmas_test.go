package analysis

import (
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

// gammaSet: three tasks sharing l0, all single-vertex. hi (T=100us,
// CS 2us), mid (T=150us, CS 4us), lo (T=300us, CS 8us). l0 hosted wherever
// WFD puts it; we pin it manually for determinism.
func gammaSet(t *testing.T) (*model.Taskset, *partition.Partition) {
	t.Helper()
	ts := model.NewTaskset(4, 1)
	mk := func(id rt.TaskID, period rt.Time, wcet, cs rt.Time, n int) {
		task := model.NewTask(id, period, period)
		v := task.AddVertex(wcet)
		task.AddRequest(v, 0, n, cs)
		ts.Add(task)
	}
	mk(0, 100*rt.Microsecond, 20*rt.Microsecond, 2*rt.Microsecond, 1)
	mk(1, 150*rt.Microsecond, 30*rt.Microsecond, 4*rt.Microsecond, 2)
	mk(2, 300*rt.Microsecond, 40*rt.Microsecond, 8*rt.Microsecond, 1)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 1)
	p.Assign(1, 1)
	p.Assign(2, 1)
	p.PlaceResource(0, 3) // a free processor hosts the agents
	return ts, p
}

// TestLemma2WindowTerms hand-checks the middle task's bound, which
// exercises every Lemma 2/3 term at once:
//
//	mid (prio 2): W = L_mid(4) + beta(8, from lo) + eta_hi(W)*2.
//	  W0 = 12 -> eta_hi(12) = ceil((12+R_hi)/100) = 1 -> W = 14 (stable).
//	eps = N_mid(2) * (beta + gamma(W)) = 2 * (8 + 2) = 20.
//	zeta(r) = eta_hi(r)*2 + eta_lo(r)*8, with eta_lo using D_lo = 300us
//	  (lo is analyzed later): at r = 48, eta_hi = 1, eta_lo =
//	  ceil((48+300)/300) = 2 -> zeta = 2 + 16 = 18 < eps -> B = 18.
//	IA = 0 (no resource on mid's cluster).
//	r = 30 + 18 = 48us.
func TestLemma2WindowTerms(t *testing.T) {
	ts, p := gammaSet(t)
	w := NewDPCPp(ts, DefaultPathCap, false).WCRTs(p)

	// hi: eps = 1*(beta=8 + gamma=0) = 8; zeta = eta_mid*8 + eta_lo*8 = 16.
	// B = 8 -> R_hi = 20 + 8 = 28us.
	if got, want := w[0], 28*rt.Microsecond; got != want {
		t.Errorf("R_hi = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if got, want := w[1], 48*rt.Microsecond; got != want {
		t.Errorf("R_mid = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	// lo: beta = 0 (nobody below), gamma(W) counts hi and mid:
	// W = 8 + eta_hi(W)*2 + eta_mid(W)*8: W0=8: 8+2+8=18 -> stable.
	// eps = 1*(0 + 10) = 10; zeta(r) = eta_hi*2 + eta_mid*8 = 10.
	// r = 40 + 10 = 50us.
	if got, want := w[2], 50*rt.Microsecond; got != want {
		t.Errorf("R_lo = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
}

// TestZetaCapsDivergedEpsilon: when the per-request W recurrence cannot
// converge below the deadline, Lemma 3's min() must fall back to the
// total-workload zeta bound instead of declaring the task unschedulable.
func TestZetaCapsDivergedEpsilon(t *testing.T) {
	ts := model.NewTaskset(4, 1)
	// Victim: low priority, tiny deadline slack for W but huge zeta slack.
	victim := model.NewTask(0, 10*rt.Millisecond, 10*rt.Millisecond)
	vv := victim.AddVertex(100 * rt.Microsecond)
	victim.AddRequest(vv, 0, 1, 10*rt.Microsecond)
	ts.Add(victim)
	// A very high-frequency high-priority task that floods the resource:
	// gamma grows faster than W can settle within victim's deadline only
	// if the CS load per period is near 1; keep it below so W converges,
	// then check both branches agree with min().
	hog := model.NewTask(1, 200*rt.Microsecond, 200*rt.Microsecond)
	vh := hog.AddVertex(150 * rt.Microsecond)
	hog.AddRequest(vh, 0, 2, 60*rt.Microsecond)
	ts.Add(hog)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 1)
	p.Assign(1, 1)
	p.PlaceResource(0, 3)

	w := NewDPCPp(ts, DefaultPathCap, false).WCRTs(p)
	// The hog's CS utilization is 120/200 = 0.6, so gamma(W) = ceil((W+R)/200)*120
	// diverges (each 200us window brings 120us of work plus the backlog):
	// W never settles -> eps = Infinity -> B falls back to zeta(r).
	// zeta(r) = eta_hog(r) * 120us. The victim still has a finite bound.
	if w[0] >= rt.Infinity {
		t.Fatal("victim bound infinite: zeta fallback did not engage")
	}
	if w[0] <= 100*rt.Microsecond {
		t.Fatal("victim bound ignores blocking entirely")
	}
}

// TestSigmaGatesIntraBlocking: Lemma 4's sigma term only charges global
// off-path blocking on processors the path actually requests from.
func TestSigmaGatesIntraBlocking(t *testing.T) {
	// Task with two parallel branches: branch A requests l0 (on proc 2),
	// branch B requests l1 (on proc 3). The path through A must not be
	// charged for B's l1 work unless it also requests something on proc 3.
	ts := model.NewTaskset(4, 2)
	task := model.NewTask(0, 1000*rt.Microsecond, 1000*rt.Microsecond)
	head := task.AddVertex(10 * rt.Microsecond)
	a := task.AddVertex(50 * rt.Microsecond)
	b := task.AddVertex(50 * rt.Microsecond)
	task.AddEdge(head, a)
	task.AddEdge(head, b)
	task.AddRequest(a, 0, 1, 5*rt.Microsecond)
	task.AddRequest(b, 1, 4, 5*rt.Microsecond)
	ts.Add(task)
	// Second task making both resources global, far away.
	other := model.NewTask(1, 2000*rt.Microsecond, 2000*rt.Microsecond)
	vo := other.AddVertex(20 * rt.Microsecond)
	other.AddRequest(vo, 0, 1, 5*rt.Microsecond)
	other.AddRequest(vo, 1, 1, 5*rt.Microsecond)
	ts.Add(other)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := partition.New(ts)
	p.Assign(0, 1)
	p.Assign(1, 1)
	p.PlaceResource(0, 2)
	p.PlaceResource(1, 3)

	// With separated placements, the worst path (through B, 4 requests)
	// is charged B-side terms only; A's path is charged A-side only. If
	// sigma leaked, the A-path would also pay B's 4x5us. We check the
	// bound equals the value computed with correct gating.
	w := NewDPCPp(ts, DefaultPathCap, false).WCRTs(p)

	// Move both resources to one processor: now ANY path requesting one
	// of them is charged the other's off-path work too, so the bound
	// must not decrease.
	p2 := partition.New(ts)
	p2.Assign(0, 1)
	p2.Assign(1, 1)
	p2.PlaceResource(0, 2)
	p2.PlaceResource(1, 2)
	w2 := NewDPCPp(ts, DefaultPathCap, false).WCRTs(p2)

	if w2[0] < w[0] {
		t.Errorf("co-locating contended resources reduced the bound: %s -> %s",
			rt.FormatTime(w[0]), rt.FormatTime(w2[0]))
	}
}

// TestEtaUsesComputedResponseOfHigherPriority: the eta terms of
// lower-priority tasks must use the already-computed (smaller) WCRT of
// higher-priority tasks rather than their deadlines.
func TestEtaUsesComputedResponseOfHigherPriority(t *testing.T) {
	ts, p := gammaSet(t)
	a := NewDPCPp(ts, DefaultPathCap, false)
	w := a.WCRTs(p)

	// Recompute lo's bound with hi's response artificially forced to its
	// deadline by analyzing with an empty cache: the real pipeline result
	// must be at most that pessimistic variant.
	pess := a.taskWCRT(p, ts.Task(2), map[rt.TaskID]rt.Time{})
	if w[2] > pess {
		t.Errorf("priority-ordered analysis (%s) worse than deadline-pessimistic (%s)",
			rt.FormatTime(w[2]), rt.FormatTime(pess))
	}
}
