package analysis

import (
	"fmt"
	"strings"

	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/rta"
)

// Breakdown decomposes the Theorem 1 bound of one task into the paper's
// delay categories, evaluated for the worst-case path at the response-time
// fixed point. It is diagnostic output: Total equals the WCRT bound the
// analyzer reports.
type Breakdown struct {
	TaskID rt.TaskID
	// PathLength is L(lambda) of the worst path (EN: L*).
	PathLength rt.Time
	// InterTaskBlocking is B_i (Lemma 3).
	InterTaskBlocking rt.Time
	// IntraTaskBlocking is b_i (Lemma 4).
	IntraTaskBlocking rt.Time
	// IntraInterference is I^intra_i (Lemma 5), before the 1/m_i division.
	IntraInterference rt.Time
	// AgentInterference is I^A_i (Lemma 6), before the 1/m_i division.
	AgentInterference rt.Time
	// SharedPreemption is the Sec. VI co-located higher-priority light
	// task interference (zero for heavy tasks).
	SharedPreemption rt.Time
	// Procs is m_i.
	Procs int64
	// Total is the resulting bound (Infinity when unschedulable).
	Total rt.Time
	// PathsConsidered counts the candidate path views evaluated: complete
	// paths collapse by per-resource request-vector signature before
	// evaluation, so this is the number of distinct signatures (1 for EN).
	PathsConsidered int
	// ENFallback reports that the path count exceeded the cap and the EN
	// bounds were used.
	ENFallback bool
}

// String renders the breakdown in one line per component.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "task %d (m_i=%d, %d paths", b.TaskID, b.Procs, b.PathsConsidered)
	if b.ENFallback {
		sb.WriteString(", EN fallback")
	}
	sb.WriteString(")\n")
	fmt.Fprintf(&sb, "  L(lambda)         %12s\n", rt.FormatTime(b.PathLength))
	fmt.Fprintf(&sb, "  inter-task B      %12s\n", rt.FormatTime(b.InterTaskBlocking))
	fmt.Fprintf(&sb, "  intra-task b      %12s\n", rt.FormatTime(b.IntraTaskBlocking))
	fmt.Fprintf(&sb, "  I_intra / m_i     %12s\n", rt.FormatTime(rt.CeilDiv(b.IntraInterference, maxI64(b.Procs, 1))))
	fmt.Fprintf(&sb, "  I_agent / m_i     %12s\n", rt.FormatTime(rt.CeilDiv(b.AgentInterference, maxI64(b.Procs, 1))))
	if b.SharedPreemption > 0 {
		fmt.Fprintf(&sb, "  hp-shared preempt %12s\n", rt.FormatTime(b.SharedPreemption))
	}
	fmt.Fprintf(&sb, "  total R           %12s\n", rt.FormatTime(b.Total))
	return sb.String()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Explain analyzes every task under the partition and returns per-task
// breakdowns of the worst path, in descending priority order.
func (a *DPCPp) Explain(p *partition.Partition) []Breakdown {
	wcrts := make(map[rt.TaskID]rt.Time, len(a.ts.Tasks))
	out := make([]Breakdown, 0, len(a.ts.Tasks))
	for _, t := range a.ts.ByPriorityDesc() {
		ctx := a.buildCtx(p, t, wcrts)
		fallbackBefore := a.Fallbacks
		views := a.viewsFor(ctx)

		worst := Breakdown{TaskID: t.ID, Procs: ctx.mi, PathsConsidered: len(views)}
		for i := range views {
			bd := a.explainView(ctx, &views[i])
			if bd.Total > worst.Total || i == 0 {
				keep := worst
				worst = bd
				worst.TaskID = t.ID
				worst.Procs = ctx.mi
				worst.PathsConsidered = keep.PathsConsidered
			}
		}
		worst.ENFallback = a.Fallbacks > fallbackBefore
		wcrts[t.ID] = worst.Total
		out = append(out, worst)
	}
	return out
}

// viewsFor mirrors taskWCRT's view construction. The shared-task (Sec. VI)
// view is rebuilt per round from per-task scratch: like the taskCtx it is
// valid only until the next buildCtx call on this analyzer.
func (a *DPCPp) viewsFor(ctx *taskCtx) []pathView {
	t := ctx.task
	if !ctx.shared {
		return a.pathViews(t)
	}
	s := a.sc
	nr := a.ts.NumResources
	on := s.i64s.alloc(nr)
	off := s.i64s.allocZero(nr)
	for q := 0; q < nr; q++ {
		on[q] = t.NumRequests(rt.ResourceID(q))
	}
	s.sharedView[0] = pathView{length: t.WCET(), onPath: on, offPath: off}
	return s.sharedView[:1]
}

// explainView computes the fixed point for one view and re-evaluates each
// component at it.
func (a *DPCPp) explainView(ctx *taskCtx, v *pathView) Breakdown {
	t := ctx.task
	r := a.pathWCRT(ctx, v)
	bd := Breakdown{
		PathLength: v.length,
		Total:      r,
	}
	at := r
	if at >= rt.Infinity {
		at = t.Deadline // evaluate the components at the deadline
	}

	bd.IntraTaskBlocking = a.intraBlocking(ctx, v)
	bd.IntraInterference = v.offNonCrit
	for _, q := range ctx.localRes {
		bd.IntraInterference = rt.SatAdd(bd.IntraInterference, rt.SatMul(v.offPath[q], t.CS(q)))
	}
	for i := range ctx.procs {
		eps := a.epsilon(ctx, &ctx.procs[i], v)
		zeta := etaSum(ctx.procs[i].other, at)
		if eps < zeta {
			bd.InterTaskBlocking = rt.SatAdd(bd.InterTaskBlocking, eps)
		} else {
			bd.InterTaskBlocking = rt.SatAdd(bd.InterTaskBlocking, zeta)
		}
	}
	var iaStatic rt.Time
	for _, q := range ctx.clusterRes {
		iaStatic = rt.SatAdd(iaStatic, rt.SatMul(v.offPath[q], t.CS(q)))
	}
	bd.AgentInterference = rt.SatAdd(etaSum(ctx.cluster, at), iaStatic)
	bd.SharedPreemption = etaSum(ctx.hpShared, at)
	return bd
}

// Eta re-exported for diagnostic callers.
func Eta(window, resp, period rt.Time) int64 { return rta.Eta(window, resp, period) }
