package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/taskgen"
)

// randomPatch draws one structurally valid random patch for ts. The op mix
// covers every reuse mode of the delta analyzer: pure WCET bumps (skip +
// warm start), WCET shrinks (skip without warm start), CS/request edits
// (view invalidation, sharer flips), edge edits, timing edits and
// add/remove-task (full fallback).
func randomPatch(r *rand.Rand, ts *model.Taskset) model.Patch {
	for tries := 0; tries < 32; tries++ {
		t := ts.Tasks[r.Intn(len(ts.Tasks))]
		x := rt.VertexID(r.Intn(len(t.Vertices)))
		v := t.Vertices[x]
		var csNeed rt.Time
		for q, n := range v.Requests {
			csNeed += rt.Time(n) * t.CS(q)
		}
		switch r.Intn(10) {
		case 0, 1, 2: // WCET bump up: always valid.
			return onePatch(model.PatchOp{Op: model.OpSetWCET, Task: t.ID, Vertex: x,
				Value: v.WCET + 1 + rt.Time(r.Int63n(int64(rt.Microsecond)))})
		case 3: // WCET shrink toward the critical-section floor.
			floor := csNeed
			if floor == 0 {
				floor = 1
			}
			if v.WCET <= floor {
				continue
			}
			return onePatch(model.PatchOp{Op: model.OpSetWCET, Task: t.ID, Vertex: x,
				Value: floor + rt.Time(r.Int63n(int64(v.WCET-floor)))})
		case 4: // Request count up (or a sharer flip from zero).
			if ts.NumResources == 0 {
				continue
			}
			q := rt.ResourceID(r.Intn(ts.NumResources))
			if v.WCET-csNeed < t.CS(q) {
				continue
			}
			n := v.Requests[q]
			return onePatch(model.PatchOp{Op: model.OpSetRequest, Task: t.ID, Vertex: x,
				Resource: q, Count: n + 1})
		case 5: // Request count down (possibly a sharer flip to zero).
			if len(v.Requests) == 0 {
				continue
			}
			for _, q := range t.Resources() {
				if n := v.Requests[q]; n > 0 {
					return onePatch(model.PatchOp{Op: model.OpSetRequest, Task: t.ID,
						Vertex: x, Resource: q, Count: n - 1})
				}
			}
			continue
		case 6: // CS length shrink.
			for _, q := range t.Resources() {
				if l := t.CS(q); l > 1 {
					return onePatch(model.PatchOp{Op: model.OpSetCSLen, Task: t.ID,
						Resource: q, Value: 1 + rt.Time(r.Int63n(int64(l)))})
				}
			}
			continue
		case 7: // Deadline shrink (stays above the longest path).
			lo := t.LongestPath() + 1
			if lo >= t.Deadline {
				continue
			}
			return onePatch(model.PatchOp{Op: model.OpSetDeadline, Task: t.ID,
				Value: lo + rt.Time(r.Int63n(int64(t.Deadline-lo)))})
		case 8: // Period grow (keeps D <= T).
			return onePatch(model.PatchOp{Op: model.OpSetPeriod, Task: t.ID,
				Value: t.Period + 1 + rt.Time(r.Int63n(int64(t.Period)))})
		case 9: // Edge add along the topological order (never a cycle).
			topo := t.Topo()
			if len(topo) < 2 {
				continue
			}
			i := r.Intn(len(topo) - 1)
			j := i + 1 + r.Intn(len(topo)-i-1)
			return onePatch(model.PatchOp{Op: model.OpAddEdge, Task: t.ID,
				From: topo[i], To: topo[j]})
		}
	}
	// Fallback: bump the first vertex of the first task.
	t := ts.Tasks[0]
	return onePatch(model.PatchOp{Op: model.OpSetWCET, Task: t.ID, Vertex: 0,
		Value: t.Vertices[0].WCET + 1})
}

func onePatch(op model.PatchOp) model.Patch { return model.Patch{Ops: []model.PatchOp{op}} }

// requireIdentical asserts a delta result is bit-identical to a full
// re-analysis: verdict, reason, rounds, every WCRT, and the assignment.
func requireIdentical(t *testing.T, label string, d, full partition.Result) {
	t.Helper()
	if d.Schedulable != full.Schedulable || d.Reason != full.Reason || d.Rounds != full.Rounds {
		t.Fatalf("%s: verdict mismatch: delta={sched=%v rounds=%d reason=%q} full={sched=%v rounds=%d reason=%q}",
			label, d.Schedulable, d.Rounds, d.Reason, full.Schedulable, full.Rounds, full.Reason)
	}
	if len(d.WCRT) != len(full.WCRT) {
		t.Fatalf("%s: WCRT map sizes differ: %d vs %d", label, len(d.WCRT), len(full.WCRT))
	}
	for id, r := range full.WCRT {
		if d.WCRT[id] != r {
			t.Fatalf("%s: WCRT of task %d differs: delta=%d full=%d", label, id, d.WCRT[id], r)
		}
	}
	if d.Partition != nil && full.Partition != nil && !d.Partition.EqualAssignment(full.Partition) {
		t.Fatalf("%s: final partitions differ", label)
	}
}

// TestDeltaReuseEngages pins the reuse machinery itself: on a fig2a-sized
// taskset, a one-vertex WCET bump of the lowest-priority task must keep the
// partition rounds matched, skip every other task outright, warm-start the
// recomputed fixed point, seed epsilon rows, and replay the changed task's
// views through the retained collapse plan — while staying bit-identical to
// a full re-analysis. A regression that silently degrades any reuse path to
// recompute-everything stays correct, so only these counters catch it.
func TestDeltaReuseEngages(t *testing.T) {
	scen, err := taskgen.Fig2Scenario("2a")
	if err != nil {
		t.Fatal(err)
	}
	g := taskgen.NewGenerator(scen)
	ts, err := g.Taskset(rand.New(rand.NewSource(1)), 6.0)
	if err != nil {
		t.Fatal(err)
	}
	low := ts.Tasks[0]
	for _, tk := range ts.Tasks[1:] {
		if low.Priority.Higher(tk.Priority) {
			low = tk
		}
	}
	for _, m := range []Method{DPCPpEP, DPCPpEN} {
		sc := NewScratch()
		_, d := NewDelta(sc, m, ts, Options{})
		if d == nil {
			t.Fatalf("%s: no delta state retained for schedulable base", m)
		}
		p := onePatch(model.PatchOp{Op: model.OpSetWCET, Task: low.ID, Vertex: 0,
			Value: low.Vertices[0].WCET + 1000})
		patched, pd, err := model.ApplyPatch(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		res, st, next := d.ApplyTo(sc, patched, pd)
		full := TestWith(NewScratch(), m, patched, Options{})
		requireIdentical(t, string(m), res, full)
		if next == nil {
			t.Fatalf("%s: no state retained after schedulable patch", m)
		}
		// Multi-round bases (EN iterates partitioning) only match the
		// retained assignment on the rounds that reach it; at least the
		// final round must go incremental.
		if st.MatchedRounds == 0 {
			t.Errorf("%s: no partition round matched the retained assignment (rounds %d)", m, st.Rounds)
		}
		if want := len(ts.Tasks) - 1; st.Reused != want {
			t.Errorf("%s: want %d tasks reused, got %d (recomputed %d)", m, want, st.Reused, st.Recomputed)
		}
		if st.Recomputed != 1 {
			t.Errorf("%s: want exactly the patched task recomputed, got %d", m, st.Recomputed)
		}
		if st.WarmStarted != 1 {
			t.Errorf("%s: want the recomputed fixed point warm-started, got %d", m, st.WarmStarted)
		}
		if st.EpsRowsSeeded == 0 {
			t.Errorf("%s: want epsilon memo rows seeded, got none", m)
		}
		if st.ViewsSeeded != len(ts.Tasks)-1 {
			t.Errorf("%s: want %d tasks' views seeded, got %d", m, len(ts.Tasks)-1, st.ViewsSeeded)
		}
		if m == DPCPpEP && st.ViewsReplayed != 1 {
			t.Errorf("%s: want the patched task's views replayed, got %d", m, st.ViewsReplayed)
		}
	}
}

// TestDeltaNoStateForUnschedulable pins that Delta never retains state for
// an unschedulable base: chaining from a failed what-if must re-anchor.
func TestDeltaNoStateForUnschedulable(t *testing.T) {
	scen, err := taskgen.Fig2Scenario("2a")
	if err != nil {
		t.Fatal(err)
	}
	g := taskgen.NewGenerator(scen)
	ts, err := g.Taskset(rand.New(rand.NewSource(1)), 6.0)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	_, d := NewDelta(sc, DPCPpEP, ts, Options{})
	if d == nil {
		t.Fatal("no delta state for schedulable base")
	}
	// Shrink a deadline to the longest-path floor: trivially unschedulable
	// under any blocking at all, yet still a valid taskset.
	tk := ts.Tasks[0]
	p := onePatch(model.PatchOp{Op: model.OpSetDeadline, Task: tk.ID, Value: tk.LongestPath() + 1})
	patched, pd, err := model.ApplyPatch(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	res, _, next := d.ApplyTo(sc, patched, pd)
	if res.Schedulable {
		t.Skip("deadline floor still schedulable; scenario too slack")
	}
	if next != nil {
		t.Fatal("delta state retained for unschedulable result")
	}
}
// incremental path and a from-scratch analysis, asserting bit-identical
// results at every step. Across bases, methods and chains it performs well
// over 1000 patch applications.
func TestDeltaDifferential(t *testing.T) {
	gen := taskgen.NewAdversarial()
	sc := NewScratch()
	fullSc := NewScratch()
	applications := 0
	for _, m := range []Method{DPCPpEP, DPCPpEN} {
		for seed := int64(0); seed < 60; seed++ {
			r := rand.New(rand.NewSource(1000 + seed))
			ts, shape, err := gen.Taskset(r)
			if err != nil {
				continue
			}
			opts := Options{}
			res, d := NewDelta(sc, m, ts, opts)
			full := TestWith(fullSc, m, ts, opts)
			requireIdentical(t, fmt.Sprintf("%s/seed%d/base(%s)", m, seed, shape), res, full)
			if d == nil {
				continue
			}
			for step := 0; step < 20; step++ {
				p := randomPatch(r, d.Base())
				patched, pd, err := model.ApplyPatch(d.Base(), p)
				if err != nil {
					t.Fatalf("%s/seed%d/step%d: generated patch rejected: %v", m, seed, step, err)
				}
				dres, _, next := d.ApplyTo(sc, patched, pd)
				full := TestWith(fullSc, m, patched, opts)
				requireIdentical(t, fmt.Sprintf("%s/seed%d/step%d", m, seed, step), dres, full)
				if next != nil && !dres.Schedulable {
					t.Fatalf("%s/seed%d/step%d: state retained for unschedulable result", m, seed, step)
				}
				applications++
				if next != nil {
					// Chain onward from the patched state; an unschedulable
					// step re-anchors on the previous base.
					d = next
				}
			}
		}
	}
	if applications < 1000 {
		t.Fatalf("differential suite performed only %d patch applications, want >= 1000", applications)
	}
}
