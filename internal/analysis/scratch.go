package analysis

import (
	"time"

	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

// Stage identifies one timed phase of the Theorem 1 pipeline for the
// optional per-stage instrumentation (see StageRecorder).
type Stage uint8

const (
	// StageViews is per-task path-view construction: EnumerateViews (EP)
	// or the path-bounds DP (EN), timed only on view-cache misses.
	StageViews Stage = iota
	// StageFixPoint is the batched response-time fixed-point iteration of
	// one task's view set (rta.FixPointBatch inside taskWCRT).
	StageFixPoint
	// StageRound is one full WCRTs pass over the taskset — one round of
	// the partitioning loop.
	StageRound
	// NumStages sizes recorder arrays.
	NumStages
)

// String returns the stage's metric-label name.
func (s Stage) String() string {
	switch s {
	case StageViews:
		return "views"
	case StageFixPoint:
		return "fixpoint"
	case StageRound:
		return "round"
	default:
		return "unknown"
	}
}

// StageRecorder receives per-stage analysis durations. Implementations
// must be allocation-free and safe for use from whichever single goroutine
// owns the Scratch (the server feeds lock-free histograms, which are
// additionally safe across goroutines). Both arguments are word-sized, so
// calls never box; with no recorder installed the hooks cost a nil check.
// The zero-alloc gates (TestWCRTsZeroAllocEN/EP) run with a recorder
// installed, pinning that instrumentation stays free on the hot path.
type StageRecorder interface {
	RecordStage(s Stage, d time.Duration)
}

// arena is a typed bump allocator over a reusable backing array. alloc
// hands out full-slice-capped chunks so a later append on one chunk can
// never clobber its neighbor. reset rewinds the bump pointer without
// touching contents — chunks are recycled with whatever stale values they
// held, so every caller must fully overwrite its chunk (or use the [:0]
// append idiom within the chunk's capacity).
//
// Growth allocates a fresh backing array; chunks already handed out keep
// the previous array alive, so mid-cycle growth is safe. Because the new
// size is at least double the old, a workload with bounded per-cycle demand
// reaches a steady state where alloc never allocates.
type arena[T any] struct {
	buf []T
	off int
}

//schedlint:hotpath
func (a *arena[T]) reset() { a.off = 0 }

//schedlint:hotpath
func (a *arena[T]) alloc(n int) []T {
	if a.off+n > len(a.buf) {
		size := 2 * (a.off + n)
		if size < 64 {
			size = 64
		}
		//schedlint:ignore hotpath amortized arena growth; steady-state calls reuse the existing backing
		a.buf = make([]T, size)
		a.off = 0
	}
	c := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return c
}

// allocZero is alloc with the chunk cleared, for callers that rely on
// zero-valued entries they do not explicitly write.
//
//schedlint:hotpath
func (a *arena[T]) allocZero(n int) []T {
	c := a.alloc(n)
	clear(c)
	return c
}

// Scratch is the reusable working memory of the DPCP-p analyses. A single
// Scratch, recycled across TestWith calls, drives the steady-state
// allocations of an EN or EP analysis round to zero: path views, their
// request vectors, per-task interference tables, fixed-point work arrays
// and the response-time map all live in scratch-owned arenas and maps that
// are reset — never reallocated — between uses.
//
// Ownership rules:
//
//   - A Scratch may be used by one goroutine at a time. Concurrent workers
//     each own one (internal/experiments pools them per worker;
//     internal/server pools them via sync.Pool).
//   - newDPCPp resets the analyzer-lifetime region (view cache and view
//     arenas); buildCtx resets the per-task region. Nothing else resets.
//   - Everything a partition.Result carries out of an analysis (partition,
//     WCRT map, reason) is freshly allocated or copied, never
//     scratch-backed: callers may retain Results indefinitely and reuse the
//     Scratch immediately.
//   - Internal borrowers follow the narrower lifetime: path views stay
//     valid for one analyzer's lifetime (the view cache spans partition
//     rounds), per-task contexts for one task's round, and the WCRTs map
//     until the next WCRTs call on the same analyzer.
type Scratch struct {
	// Analyzer-lifetime state, reset by newDPCPp.

	// viewCache memoizes per-task path views across the repeated WCRTs
	// rounds of the partitioning loop: views depend only on the (immutable,
	// finalized) task, never on the candidate partition.
	viewCache map[rt.TaskID]cachedViews
	vs        model.ViewScratch
	pviews    arena[pathView]
	flat      arena[int64] // request-vector backing of cached views

	// WCRTs-lifetime state: the response-time map handed out by WCRTs,
	// valid until the next WCRTs call (internal/partition copies it into
	// every Result it returns).
	wcrts map[rt.TaskID]rt.Time

	// Per-task state, reset by buildCtx.
	ctx        taskCtx
	terms      arena[etaTerm]
	times      arena[rt.Time]
	resIDs     arena[rt.ResourceID]
	i64s       arena[int64]
	bools      arena[bool]
	epsMemo    map[epsKey]rt.Time
	sharedView [1]pathView

	// rec, when non-nil, receives per-stage pipeline timings. It survives
	// every reset: instrumentation is a property of the Scratch's owner
	// (a server engine, a pool worker), not of one analysis.
	rec StageRecorder
}

// SetStageRecorder installs (or removes, with nil) the per-stage timing
// recorder. Recording must be allocation-free; see StageRecorder.
func (s *Scratch) SetStageRecorder(r StageRecorder) { s.rec = r }

// stageStart opens a stage timing region; zero-cost (beyond a nil check)
// without a recorder.
//
//schedlint:hotpath
func (s *Scratch) stageStart() time.Time {
	if s.rec == nil {
		return time.Time{}
	}
	//schedlint:ignore determinism stage timing feeds the StageRecorder observability hook, never the analysis verdict
	return time.Now()
}

// stageEnd closes a region opened by stageStart.
//
//schedlint:hotpath
func (s *Scratch) stageEnd(st Stage, start time.Time) {
	if s.rec == nil {
		return
	}
	//schedlint:ignore determinism stage timing feeds the StageRecorder observability hook, never the analysis verdict
	s.rec.RecordStage(st, time.Since(start))
}

// NewScratch returns an empty Scratch ready for TestWith. The zero value is
// not usable; maps must be pre-built so resets can clear instead of
// reallocate.
func NewScratch() *Scratch {
	return &Scratch{
		viewCache: make(map[rt.TaskID]cachedViews),
		wcrts:     make(map[rt.TaskID]rt.Time),
		epsMemo:   make(map[epsKey]rt.Time),
	}
}

// analyzerReset recycles the analyzer-lifetime region for a fresh analyzer.
// Map buckets and arena backings survive, so an analyzer over a
// previously-seen taskset shape allocates nothing.
//
//schedlint:hotpath
func (s *Scratch) analyzerReset() {
	clear(s.viewCache)
	s.pviews.reset()
	s.flat.reset()
}

// taskReset recycles the per-task region at the top of buildCtx.
//
//schedlint:hotpath
func (s *Scratch) taskReset() {
	s.terms.reset()
	s.times.reset()
	s.resIDs.reset()
	s.i64s.reset()
	s.bools.reset()
	clear(s.epsMemo)
}
