package analysis

import (
	"strings"
	"testing"

	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
)

func TestExplainMatchesWCRTs(t *testing.T) {
	ts := handSet(t)
	res := Test(DPCPpEP, ts, Options{})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	a := NewDPCPp(ts, DefaultPathCap, false)
	breakdowns := a.Explain(res.Partition)
	if len(breakdowns) != 2 {
		t.Fatalf("got %d breakdowns", len(breakdowns))
	}
	for _, bd := range breakdowns {
		if bd.Total != res.WCRT[bd.TaskID] {
			t.Errorf("task %d: breakdown total %s != WCRT %s",
				bd.TaskID, rt.FormatTime(bd.Total), rt.FormatTime(res.WCRT[bd.TaskID]))
		}
	}
}

func TestExplainComponentsHandChecked(t *testing.T) {
	// The hand example: R_A = 19us = 10 (path) + 3 (inter-task, eps) +
	// 6 (agent interference: 2 jobs x 3us; m_i = 1).
	ts := handSet(t)
	res := Test(DPCPpEP, ts, Options{})
	a := NewDPCPp(ts, DefaultPathCap, false)
	bds := a.Explain(res.Partition)

	var bdA Breakdown
	for _, bd := range bds {
		if bd.TaskID == 0 {
			bdA = bd
		}
	}
	if bdA.PathLength != 10*rt.Microsecond {
		t.Errorf("PathLength = %s", rt.FormatTime(bdA.PathLength))
	}
	if bdA.InterTaskBlocking != 3*rt.Microsecond {
		t.Errorf("InterTaskBlocking = %s, want 3us", rt.FormatTime(bdA.InterTaskBlocking))
	}
	if bdA.AgentInterference != 6*rt.Microsecond {
		t.Errorf("AgentInterference = %s, want 6us", rt.FormatTime(bdA.AgentInterference))
	}
	if bdA.IntraTaskBlocking != 0 || bdA.IntraInterference != 0 {
		t.Errorf("intra terms = %s, %s; want 0, 0",
			rt.FormatTime(bdA.IntraTaskBlocking), rt.FormatTime(bdA.IntraInterference))
	}
	if bdA.Total != 19*rt.Microsecond {
		t.Errorf("Total = %s, want 19us", rt.FormatTime(bdA.Total))
	}
}

func TestExplainStringRendering(t *testing.T) {
	ts := handSet(t)
	res := Test(DPCPpEP, ts, Options{})
	a := NewDPCPp(ts, DefaultPathCap, false)
	for _, bd := range a.Explain(res.Partition) {
		s := bd.String()
		for _, want := range []string{"L(lambda)", "inter-task B", "total R"} {
			if !strings.Contains(s, want) {
				t.Errorf("breakdown string missing %q:\n%s", want, s)
			}
		}
	}
}

func TestExplainSharedTask(t *testing.T) {
	ts := lightSet(t)
	res := partition.AlgorithmMixed(ts, NewDPCPp(ts, DefaultPathCap, false), partition.WFD)
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	a := NewDPCPp(ts, DefaultPathCap, false)
	bds := a.Explain(res.Partition)
	for _, bd := range bds {
		if bd.Total != res.WCRT[bd.TaskID] {
			t.Errorf("task %d: explain total %s != WCRT %s",
				bd.TaskID, rt.FormatTime(bd.Total), rt.FormatTime(res.WCRT[bd.TaskID]))
		}
		if bd.TaskID == 0 && bd.SharedPreemption == 0 {
			t.Error("task A shares with higher-priority C2 but SharedPreemption = 0")
		}
	}
}
