package analysis

import (
	"math/rand"
	"testing"

	"dpcpp/internal/model"
	"dpcpp/internal/partition"
	"dpcpp/internal/rt"
	"dpcpp/internal/taskgen"
)

// handSet builds the fully hand-computed two-task example:
//
//	task A (high prio): one vertex, C=10us, one request to global l0
//	                    with L_A = 2us; T = D = 100us.
//	task B (low prio):  one vertex, C=20us, one request to l0 with
//	                    L_B = 3us; T = D = 200us.
//
// On m=4 processors, each task gets one processor and l0 lands on A's
// cluster (first among equal slacks). Expected DPCP-p bounds, derived by
// hand from Lemmas 2-6 and Theorem 1:
//
//	R_A = 10 + min(eps=3, zeta=6) + (I_A = 2 jobs x 3us) = 19us
//	R_B = 20 + min(eps=2, zeta=2) + 0                   = 22us
func handSet(t *testing.T) *model.Taskset {
	t.Helper()
	ts := model.NewTaskset(4, 1)
	a := model.NewTask(0, 100*rt.Microsecond, 100*rt.Microsecond)
	va := a.AddVertex(10 * rt.Microsecond)
	a.AddRequest(va, 0, 1, 2*rt.Microsecond)
	ts.Add(a)
	b := model.NewTask(1, 200*rt.Microsecond, 200*rt.Microsecond)
	vb := b.AddVertex(20 * rt.Microsecond)
	b.AddRequest(vb, 0, 1, 3*rt.Microsecond)
	ts.Add(b)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestDPCPpHandComputedBounds(t *testing.T) {
	ts := handSet(t)
	res := Test(DPCPpEP, ts, Options{})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	if got, want := res.WCRT[0], 19*rt.Microsecond; got != want {
		t.Errorf("R_A = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if got, want := res.WCRT[1], 22*rt.Microsecond; got != want {
		t.Errorf("R_B = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
}

func TestDPCPpENMatchesEPOnSingleVertexTasks(t *testing.T) {
	// With one vertex per task there is exactly one path, so EN's per-term
	// extremes coincide with EP's exact path.
	ts := handSet(t)
	ep := Test(DPCPpEP, ts, Options{})
	en := Test(DPCPpEN, ts, Options{})
	if !ep.Schedulable || !en.Schedulable {
		t.Fatal("both variants must schedule the hand example")
	}
	for id := range ep.WCRT {
		if ep.WCRT[id] != en.WCRT[id] {
			t.Errorf("task %d: EP=%s EN=%s", id,
				rt.FormatTime(ep.WCRT[id]), rt.FormatTime(en.WCRT[id]))
		}
	}
}

func TestSpinHandComputedBounds(t *testing.T) {
	// delta_A = min(m_B=1, V_B=1)*3us = 3us -> R_A = 10 + 3 = 13us.
	// delta_B = min(1,1)*2us = 2us        -> R_B = 20 + 2 = 22us.
	ts := handSet(t)
	res := Test(SPIN, ts, Options{})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	if got, want := res.WCRT[0], 13*rt.Microsecond; got != want {
		t.Errorf("SPIN R_A = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if got, want := res.WCRT[1], 22*rt.Microsecond; got != want {
		t.Errorf("SPIN R_B = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
}

func TestLPPHandComputedBounds(t *testing.T) {
	// With a single requesting vertex per task, the LPP queue bound equals
	// the spin bound: R_A = 13us, R_B = 22us.
	ts := handSet(t)
	res := Test(LPP, ts, Options{})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	if got, want := res.WCRT[0], 13*rt.Microsecond; got != want {
		t.Errorf("LPP R_A = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if got, want := res.WCRT[1], 22*rt.Microsecond; got != want {
		t.Errorf("LPP R_B = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
}

func TestFedFPHandComputedBounds(t *testing.T) {
	ts := handSet(t)
	res := Test(FEDFP, ts, Options{})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	if got, want := res.WCRT[0], 10*rt.Microsecond; got != want {
		t.Errorf("FED-FP R_A = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
	if got, want := res.WCRT[1], 20*rt.Microsecond; got != want {
		t.Errorf("FED-FP R_B = %s, want %s", rt.FormatTime(got), rt.FormatTime(want))
	}
}

// resourceFreeSet builds tasks with no shared resources at all.
func resourceFreeSet(t *testing.T) *model.Taskset {
	t.Helper()
	ts := model.NewTaskset(8, 0)
	for id := 0; id < 2; id++ {
		task := model.NewTask(rt.TaskID(id), rt.Time(100+100*id)*rt.Microsecond,
			rt.Time(100+100*id)*rt.Microsecond)
		head := task.AddVertex(10 * rt.Microsecond)
		for i := 0; i < 6; i++ {
			v := task.AddVertex(rt.Time(10+i) * rt.Microsecond)
			task.AddEdge(head, v)
		}
		ts.Add(task)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestDPCPpWithoutResourcesEqualsFedFP(t *testing.T) {
	ts := resourceFreeSet(t)
	dp := Test(DPCPpEP, ts, Options{})
	fp := Test(FEDFP, ts, Options{})
	if !dp.Schedulable || !fp.Schedulable {
		t.Fatalf("resource-free set must be schedulable: dpcp=%v fed=%v",
			dp.Schedulable, fp.Schedulable)
	}
	for id := range dp.WCRT {
		if dp.WCRT[id] != fp.WCRT[id] {
			t.Errorf("task %d: DPCP-p=%s FED-FP=%s (must match with no resources)",
				id, rt.FormatTime(dp.WCRT[id]), rt.FormatTime(fp.WCRT[id]))
		}
	}
}

// TestEPDominatesENPerPartition verifies the paper's core analytical
// relationship: on the same partition, the per-task EP bound never exceeds
// the EN bound (EP dominates EN in Tables 2-3).
func TestEPDominatesENPerPartition(t *testing.T) {
	g := taskgen.NewGenerator(taskgen.Scenario{
		M: 16, NumRes: taskgen.IntRange{Lo: 4, Hi: 8}, UAvg: 1.5, PAccess: 0.5,
		NReq:  taskgen.IntRange{Lo: 1, Hi: 25},
		CSLen: taskgen.TimeRange{Lo: 15 * rt.Microsecond, Hi: 50 * rt.Microsecond},
	})
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		ts, err := g.Taskset(r, 4.0+r.Float64()*6)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ep := NewDPCPp(ts, DefaultPathCap, false)
		res := partition.Algorithm1(ts, ep, partition.WFD)
		if res.Partition == nil || res.Partition.Unassigned() == res.Partition.TS.NumProcs {
			continue
		}
		// Compare both analyzers on the final partition of the EP run.
		epW := ep.WCRTs(res.Partition)
		enW := NewDPCPp(ts, DefaultPathCap, true).WCRTs(res.Partition)
		for id, w := range epW {
			if w > enW[id] {
				t.Errorf("seed %d task %d: EP bound %s exceeds EN bound %s",
					seed, id, rt.FormatTime(w), rt.FormatTime(enW[id]))
			}
		}
	}
}

// TestFedFPDominatesAll verifies FED-FP (resources ignored) is an upper
// envelope: whenever any method schedules a set, FED-FP does too.
func TestFedFPDominatesAll(t *testing.T) {
	g := taskgen.NewGenerator(taskgen.Scenario{
		M: 8, NumRes: taskgen.IntRange{Lo: 2, Hi: 4}, UAvg: 1.5, PAccess: 0.5,
		NReq:  taskgen.IntRange{Lo: 1, Hi: 25},
		CSLen: taskgen.TimeRange{Lo: 15 * rt.Microsecond, Hi: 50 * rt.Microsecond},
	})
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		ts, err := g.Taskset(r, 2.0+r.Float64()*5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fed := Schedulable(FEDFP, ts, Options{})
		for _, m := range []Method{DPCPpEP, DPCPpEN, SPIN, LPP} {
			if Schedulable(m, ts, Options{}) && !fed {
				t.Errorf("seed %d: %s schedulable but FED-FP not", seed, m)
			}
		}
	}
}

// TestWCRTsDecreaseWithMoreProcessors: giving a task extra processors must
// never increase its own DPCP-p bound.
func TestWCRTsDecreaseWithMoreProcessors(t *testing.T) {
	ts := handSet(t)
	a := NewDPCPp(ts, DefaultPathCap, false)

	small := partition.New(ts)
	small.Assign(0, 1)
	small.Assign(1, 1)
	small.PlaceResource(0, 0)
	wSmall := a.WCRTs(small)

	big := partition.New(ts)
	big.Assign(0, 2)
	big.Assign(1, 2)
	big.PlaceResource(0, 0)
	wBig := a.WCRTs(big)

	for id := range wSmall {
		if wBig[id] > wSmall[id] {
			t.Errorf("task %d: bound grew from %s to %s with more processors",
				id, rt.FormatTime(wSmall[id]), rt.FormatTime(wBig[id]))
		}
	}
}

// TestLowerPriorityBlockingBoundedOnce: construct a case with two
// lower-priority tasks sharing the resource; beta must reflect only the
// single longest lower-priority critical section (Lemma 1 / Lemma 2).
func TestLowerPriorityBlockingBoundedOnce(t *testing.T) {
	ts := model.NewTaskset(6, 1)
	hi := model.NewTask(0, 100*rt.Microsecond, 100*rt.Microsecond)
	v := hi.AddVertex(10 * rt.Microsecond)
	hi.AddRequest(v, 0, 1, 2*rt.Microsecond)
	ts.Add(hi)
	for id := 1; id <= 2; id++ {
		lo := model.NewTask(rt.TaskID(id), rt.Time(200+10*id)*rt.Microsecond,
			rt.Time(200+10*id)*rt.Microsecond)
		vl := lo.AddVertex(20 * rt.Microsecond)
		lo.AddRequest(vl, 0, 1, rt.Time(3+id)*rt.Microsecond) // CS 4us and 5us
		ts.Add(lo)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := Test(DPCPpEP, ts, Options{})
	if !res.Schedulable {
		t.Fatalf("unschedulable: %s", res.Reason)
	}
	// WFD places l0 on the max-slack cluster, which is task 2's (slack
	// 1 - 20/220), so hi suffers no agent interference on its own cluster.
	// R_hi = 10 (path) + min(eps, zeta) where eps = beta = 5us — the
	// longest single lower-priority CS, NOT 4+5=9 (that sum is exactly
	// what zeta would charge). Total: 15us.
	if got, want := res.WCRT[0], 15*rt.Microsecond; got != want {
		t.Errorf("R_hi = %s, want %s (beta must count one lower-priority CS)",
			rt.FormatTime(got), rt.FormatTime(want))
	}
}

func TestPathCapFallbackIsSound(t *testing.T) {
	// A DAG with 2^10 paths analyzed with a tiny cap must fall back to EN
	// and still produce a bound >= the EP bound with a large cap.
	ts := model.NewTaskset(4, 1)
	task := model.NewTask(0, 10*rt.Millisecond, 10*rt.Millisecond)
	prev := task.AddVertex(10 * rt.Microsecond)
	for i := 0; i < 10; i++ {
		a := task.AddVertex(20 * rt.Microsecond)
		b := task.AddVertex(30 * rt.Microsecond)
		join := task.AddVertex(10 * rt.Microsecond)
		task.AddEdge(prev, a)
		task.AddEdge(prev, b)
		task.AddEdge(a, join)
		task.AddEdge(b, join)
		prev = join
	}
	task.AddRequest(0, 0, 2, 5*rt.Microsecond)
	ts.Add(task)
	other := model.NewTask(1, 5*rt.Millisecond, 5*rt.Millisecond)
	vo := other.AddVertex(100 * rt.Microsecond)
	other.AddRequest(vo, 0, 1, 5*rt.Microsecond)
	ts.Add(other)
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}

	exact := Test(DPCPpEP, ts, Options{PathCap: 1 << 12})
	capped := Test(DPCPpEP, ts, Options{PathCap: 4})
	if !exact.Schedulable || !capped.Schedulable {
		t.Fatalf("both runs should schedule: exact=%v capped=%v",
			exact.Schedulable, capped.Schedulable)
	}
	for id := range exact.WCRT {
		if capped.WCRT[id] < exact.WCRT[id] {
			t.Errorf("task %d: capped fallback bound %s below exact EP bound %s",
				id, rt.FormatTime(capped.WCRT[id]), rt.FormatTime(exact.WCRT[id]))
		}
	}
}

func TestMethodsList(t *testing.T) {
	ms := Methods()
	if len(ms) != 5 {
		t.Fatalf("Methods() = %v", ms)
	}
	if ms[0] != DPCPpEP || ms[4] != FEDFP {
		t.Errorf("unexpected order: %v", ms)
	}
}

func TestTestPanicsOnUnknownMethod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Test with unknown method did not panic")
		}
	}()
	Test(Method("bogus"), handSet(t), Options{})
}
