package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) { RunTest(t, Determinism, "determinism") }

// TestDeterminismNoDirective: without //schedlint:deterministic the
// clock/RNG rule is off but map order feeding output is still flagged.
func TestDeterminismNoDirective(t *testing.T) { RunTest(t, Determinism, "detplain") }

func TestHotpath(t *testing.T) { RunTest(t, Hotpath, "hotpath") }

func TestCtxflow(t *testing.T) { RunTest(t, Ctxflow, "ctxflow") }

func TestLockcheck(t *testing.T) { RunTest(t, Lockcheck, "lockcheck") }

// TestDirectiveGrammar checks that malformed //schedlint: comments are
// findings: a typo must fail the gate, not silently suppress nothing.
// (The want-comment harness cannot express these — the finding lands on
// the directive's own line — so they are asserted directly.)
func TestDirectiveGrammar(t *testing.T) {
	prog, err := LoadDir("testdata/src/directives")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(prog, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"//schedlint:hotpath must appear in a function's doc comment",
		"//schedlint:deterministic must appear in a package doc comment",
		`malformed ignore "//schedlint:ignore bogus not a real analyzer"`,
		`malformed ignore "//schedlint:ignore hotpath"`,
		`unknown schedlint directive "//schedlint:frobnicate"`,
	}
	if len(findings) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(wants), findings)
	}
	for _, want := range wants {
		found := false
		for _, f := range findings {
			if f.Analyzer == "schedlint" && strings.Contains(f.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no schedlint finding contains %q; got %v", want, findings)
		}
	}
}

// TestRepoClean is the in-process version of the CI gate: the whole
// module must produce zero findings.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the entire module")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(prog, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings serialize to %q, want []", got)
	}

	buf.Reset()
	in := []Finding{{File: "a.go", Line: 3, Col: 7, Analyzer: "hotpath", Message: "make allocates"}}
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Finding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}
