// Package directives exercises //schedlint: grammar validation: every
// comment below is malformed and must surface as a finding of the
// pseudo-analyzer "schedlint".
package directives

//schedlint:hotpath
var notAFunc = 1

func misplacedDeterministic() int {
	//schedlint:deterministic
	return notAFunc
}

//schedlint:ignore bogus not a real analyzer
var unknownAnalyzer = 2

//schedlint:ignore hotpath
var missingReason = 3

//schedlint:frobnicate
var unknownDirective = 4
