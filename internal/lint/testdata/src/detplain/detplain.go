// Package detplain has no //schedlint:deterministic directive: the
// clock/RNG rule is off, but the map-order rule applies everywhere.
package detplain

import (
	"fmt"
	"math/rand"
	"time"
)

func clocksAllowed() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}

func mapOrderStillChecked(m map[string]int) string {
	var out string
	for k := range m { // want "map iteration order reaches serialized output via fmt.Sprint"
		out += fmt.Sprint(k)
	}
	return out
}
