// Package lockcheck is the lockcheck analyzer fixture.
package lockcheck

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) bad() int {
	return c.n // want "n is guarded by mu, which is not held here"
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// nLocked declares the caller-holds convention with its name suffix.
func (c *counter) nLocked() int {
	return c.n
}

// fresh values have not escaped to other goroutines; no lock needed.
func fresh() int {
	c := &counter{}
	c.n = 7
	return c.n
}

func external(c *counter) int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

func externalBad(c *counter) int {
	return c.n // want "n is guarded by mu, which is not held here"
}

func ignoredAccess(c *counter) int {
	//schedlint:ignore lockcheck fixture demonstrating suppression
	return c.n
}

type stats struct {
	hits int64
}

func (s *stats) inc() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) loadAtomic() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) loadPlain() int64 {
	return s.hits // want "hits is accessed with sync/atomic elsewhere; this plain access is a data race"
}
