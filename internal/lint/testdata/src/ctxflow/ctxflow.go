// Package ctxflow is the ctxflow analyzer fixture.
package ctxflow

import (
	"context"
	"time"
)

func severs(ctx context.Context) error {
	return work(context.Background()) // want "context.Background severs the cancellation chain; thread ctx instead"
}

func todo(ctx context.Context) error {
	return work(context.TODO()) // want "context.TODO severs the cancellation chain; thread ctx instead"
}

func sleeps(ctx context.Context) {
	time.Sleep(time.Second) // want "time.Sleep ignores cancellation; select on ctx.Done\\(\\) and a timer instead"
}

// nilGuard is the sanctioned fallback idiom: assigning Background to the
// parameter itself severs nothing.
func nilGuard(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx)
}

// noCtx takes no context, so there is no chain to sever.
func noCtx() error {
	return work(context.Background())
}

// discarded explicitly drops its context; that visible decision is not
// second-guessed.
func discarded(_ context.Context) error {
	return work(context.Background())
}

func ignored(ctx context.Context) error {
	//schedlint:ignore ctxflow fixture demonstrating suppression
	return work(context.Background())
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
