// Package determinism is the determinism analyzer fixture: a package
// declared deterministic, exercising both the map-order-to-sink rule and
// the clock/RNG rule.
//
//schedlint:deterministic
package determinism

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// -- rule 1: map iteration order reaching serialized output --

func sprintLoop(m map[string]int) string {
	var out string
	for k, v := range m { // want "map iteration order reaches serialized output via fmt.Sprintf"
		out += fmt.Sprintf("%s=%d;", k, v)
	}
	return out
}

func builderLoop(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "map iteration order reaches serialized output"
		b.WriteString(k)
	}
	return b.String()
}

func appendBytesLoop(m map[int]int) []byte {
	var buf []byte
	for k := range m { // want "map iteration order reaches serialized output via append to a \\[\\]byte buffer"
		buf = append(buf, byte(k))
	}
	return buf
}

func marshalLoop(m map[string]int) [][]byte {
	var rows [][]byte
	for _, v := range m { // want "map iteration order reaches serialized output via json.Marshal"
		row, _ := json.Marshal(v)
		rows = append(rows, row)
	}
	return rows
}

// report wraps fmt; the sink search follows module callees one level deep.
func report(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

func helperLoop(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order reaches serialized output via report \\(which reaches fmt.Sprintf\\)"
		out = append(out, report("%s", k))
	}
	return out
}

// sortedKeys is the sanctioned idiom: collect, sort, iterate.
func sortedKeys(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
	}
	return b.String()
}

// guardedCollect keeps the idiom valid under a single guarding if.
func guardedCollect(m map[int]int) []int {
	var keys []int
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

// commutative folds are order-independent: no sink, no finding.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func ignored(m map[string]int) string {
	var out string
	//schedlint:ignore determinism fixture demonstrating suppression
	for k := range m {
		out += fmt.Sprint(k)
	}
	return out
}

// -- rule 2: clocks and the ambient RNG --

func stamp() time.Time {
	return time.Now() // want "time.Now in a deterministic package"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in a deterministic package"
}

func draw() int {
	return rand.Intn(10) // want "global math/rand RNG \\(rand.Intn\\) in a deterministic package"
}

// seeded generators are the sanctioned replacement: constructors and
// method calls on an explicit *rand.Rand are allowed.
func drawSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
