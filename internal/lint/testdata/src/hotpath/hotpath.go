// Package hotpath is the hotpath analyzer fixture: one annotated seed,
// one transitively-reached helper, and one cold function that shows the
// closure is seeded, not package-wide.
package hotpath

import "fmt"

type point struct{ x, y int }

var holder struct{ p *point }

// hot is the seed; everything statically reachable from it is checked.
//
//schedlint:hotpath
func hot(n int, a, b string) {
	_ = fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates"
	_ = a + b                // want "string concatenation allocates"
	_ = make([]int, n)       // want "make allocates"
	_ = new(point)           // want "new allocates"
	_ = map[int]int{1: 2}    // want "map literal allocates"
	_ = []int{1, 2, 3}       // want "slice literal allocates its backing array"

	holder.p = &point{x: n} // want "&-composite literal escapes to the heap \\(stored into a field, element, or dereference\\)"

	var sink any
	sink = n // want "assignment boxes a int into"
	_ = sink

	k := n
	f := func() int { return k } // want "closure captures \"k\" and allocates"
	_ = f()

	helper(n)
	//schedlint:ignore hotpath fixture demonstrating suppression
	_ = make([]byte, n)

	// Negatives: value literals, non-escaping address, static closures,
	// constant folding, and panic arguments are all allocation-free or cold.
	p := point{x: n, y: n} // a plain value copy
	q := &point{}          // stays local by the structural approximation
	q.x = p.x
	_ = "a" + "b" // constant concatenation
	g := func() int { return 0 }
	_ = g()
	if n < 0 {
		panic(fmt.Sprintf("negative n %d", n))
	}
}

// helper is not annotated, but hot calls it: the closure propagates one
// call edge and attributes findings to the seed.
func helper(n int) []int {
	return make([]int, n) // want "make allocates; reuse a scratch arena, pooled buffer, or preallocated slice in the zero-alloc hot path \\(reachable from hot\\)"
}

// cold is unreachable from any seed: identical constructs, no findings.
func cold(n int) []int {
	_ = fmt.Sprintf("%d", n)
	return make([]int, n)
}

func escapesByReturn(n int) *point {
	return &point{x: n} // want "&-composite literal escapes to the heap \\(returned\\)"
}

//schedlint:hotpath
func seedReturn(n int) *point {
	return escapesByReturn(n)
}
