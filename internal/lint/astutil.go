package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the static callee of a call: a package function,
// method, or generic instantiation thereof. Calls through function values
// and interface methods resolve too (to the interface method object);
// calls of builtins and type conversions return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is a package-level function of the package
// with the given import path. Methods do not qualify.
func isPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// builtinName returns the name of the builtin being called ("make",
// "append", ...) or "" if the call is not a builtin.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// rootIdent peels selectors, indexing, derefs, and parens off an
// expression and returns the identifier at its base, or nil (e.g. when the
// base is a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcDecls visits every function declaration with a body in the package.
func funcDecls(pkg *Package, visit func(fd *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}

// isMapRange reports whether rs ranges over a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// localObj reports whether id resolves to a variable declared inside the
// function declaration fd (as opposed to a parameter, receiver, package
// variable, or free variable of an enclosing scope).
func localVarWithin(info *types.Info, id *ast.Ident, body *ast.BlockStmt) bool {
	obj := info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() >= body.Pos() && v.Pos() < body.End()
}
