// Package lint: invariant catalogue and annotation grammar.
//
// schedlint exists because three of this repository's load-bearing
// properties are invisible to the compiler and expensive to catch at
// runtime:
//
//   - Byte-determinism. Content-addressed caching (Taskset.Hash), golden
//     fixtures, and distributed sweeps all assume identical inputs
//     produce identical bytes. Go randomizes map iteration order per
//     process, so one unsorted map range feeding a serializer silently
//     breaks all three. The runtime byte-identity tests catch a given
//     flow only if a test exercises it; the determinism analyzer catches
//     the construct itself.
//
//   - Zero allocation on the analysis hot path. The scratch-arena work
//     (TestWCRTsZeroAllocEN/EP, the benchgate CI gate) holds the
//     steady-state response-time iteration to 0 allocs/op. Those gates
//     measure; the hotpath analyzer explains — it names the construct and
//     the line that would allocate, before a benchmark has to regress.
//
//   - Concurrency discipline. Request contexts must be threaded (server
//     deadlines, PR4) and shared state must honor its declared locking
//     (the store, the singleflight, the obs registry). The ctxflow and
//     lockcheck analyzers enforce the conventions the code comments
//     already state.
//
// # Analyzers
//
//   - determinism: map iteration order reaching serialized output
//     (everywhere), and wall clocks / the global math/rand RNG inside
//     //schedlint:deterministic packages. See Determinism.
//   - hotpath: allocation-inducing constructs in functions transitively
//     reachable from //schedlint:hotpath seeds. See Hotpath.
//   - ctxflow: context.Background/TODO and uncancellable waits inside
//     functions that already take a context. See Ctxflow.
//   - lockcheck: `// guarded by mu` fields accessed without the lock, and
//     mixed atomic/non-atomic access to the same field. See Lockcheck.
//
// # Annotation grammar
//
// Three directives, all written as //schedlint:... comments (no space
// after //, like //go:build):
//
//	//schedlint:deterministic
//
// Package-level, in any file's package doc comment. Declares that every
// result computed by the package must be a pure function of its inputs;
// the determinism analyzer then forbids time.Now/Since/Until and the
// implicitly seeded global math/rand RNG (explicitly seeded *rand.Rand
// constructors remain allowed). Declared by: model, analysis, rta,
// partition, experiments, taskgen.
//
//	//schedlint:hotpath
//
// Function-level, in the function's doc comment. Seeds the hotpath
// analyzer's call-graph closure: the function and everything statically
// reachable from it must not allocate. Annotate the zero-alloc entry
// points (EnumerateViewsScratch, FixPointBatch, taskWCRT, the scratch
// methods), not every function they call.
//
//	//schedlint:ignore <analyzer> <reason>
//
// Line-level escape hatch. Suppresses findings from the named analyzer on
// the comment's own line and the line below it. The reason is mandatory
// and should say why the invariant is not actually violated ("amortized
// arena growth", "detached by design", ...) — an ignore without a reason,
// an unknown analyzer name, or any other malformed //schedlint: comment
// is itself reported as a finding, so annotations cannot rot silently.
//
// # Running
//
//	go run ./cmd/schedlint ./...          # human-readable, exit 1 on findings
//	go run ./cmd/schedlint -json ./...    # machine-readable finding array
//
// CI runs schedlint as a hard gate before the test, bench, race, and
// chaos jobs; a finding fails the build. The analyzers are deliberately
// structural approximations — predictable and annotatable rather than
// clever — and the runtime gates (byte-identity tests, AllocsPerRun, the
// race detector) remain the ground truth they approximate.
package lint
