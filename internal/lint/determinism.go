package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces byte-determinism of everything the system
// serializes, hashes, or streams. Two rules:
//
//  1. Everywhere: a `range` over a map whose body reaches serialization,
//     hashing, or output (io/buffer writes, strconv.Append*, canonical
//     []byte accumulation, JSON encoding, fmt printing) is flagged unless
//     it is the sorted-keys idiom — a body that only collects keys into
//     local slices which are subsequently passed to sort.*/slices.Sort*.
//     Go randomizes map iteration order per run, so such a loop produces
//     different bytes for identical inputs, which breaks content-addressed
//     caching (Taskset.Hash), golden files, and any-node-identical
//     distributed sweeps.
//
//  2. In packages declared //schedlint:deterministic: calls to wall clocks
//     (time.Now/Since/Until) and to the implicitly-seeded global math/rand
//     RNG are flagged. Analysis results must be pure functions of their
//     inputs; a clock or ambient RNG read makes the verdict depend on when
//     and where it ran.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags map-iteration order reaching serialized output, and wall clocks / global RNG in deterministic packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pass.Pkg.Deterministic {
					checkNondeterministicSource(pass, info, n)
				}
			case *ast.RangeStmt:
				if isMapRange(info, n) && !isSortedKeyCollection(info, fd, n) {
					if sink := findSerializationSink(pass.Prog, info, n.Body, true); sink != "" {
						pass.Reportf(n.Pos(), "map iteration order reaches serialized output via %s; collect the keys, sort them, and iterate the sorted slice", sink)
					}
				}
			}
			return true
		})
	})
	return nil
}

// checkNondeterministicSource flags wall-clock and global-RNG reads inside
// a //schedlint:deterministic package.
func checkNondeterministicSource(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	switch {
	case isPkgFunc(fn, "time"):
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in a deterministic package: results must be pure functions of their inputs", fn.Name())
		}
	case isPkgFunc(fn, "math/rand"), isPkgFunc(fn, "math/rand/v2"):
		// Constructors (rand.New, rand.NewPCG, ...) build explicitly
		// seeded generators and are the sanctioned replacement; everything
		// else package-level draws from the ambient, randomly-seeded RNG.
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "global math/rand RNG (%s.%s) in a deterministic package: use an explicitly seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
		}
	}
}

// isSortedKeyCollection recognizes the sanctioned sorted-keys idiom: every
// statement of the range body (optionally inside one guarding if, as in
// dropping zero counts) appends range-derived values to local slices, and
// every such slice is later passed to a sort function in the same
// function, after the loop.
func isSortedKeyCollection(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	targets := collectAppendTargets(info, rs.Body)
	if len(targets) == 0 {
		return false
	}
	// Every collected slice must be sorted after the loop.
	for _, target := range targets {
		if !sortedAfter(info, fd, rs, target) {
			return false
		}
	}
	return true
}

// collectAppendTargets returns the local variables appended to if the
// block consists solely of `x = append(x, ...)` statements, possibly
// inside a single if statement; it returns nil for any other body shape.
func collectAppendTargets(info *types.Info, block *ast.BlockStmt) []*types.Var {
	var targets []*types.Var
	for _, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if s.Else != nil || s.Init != nil {
				return nil
			}
			inner := collectAppendTargets(info, s.Body)
			if inner == nil {
				return nil
			}
			targets = append(targets, inner...)
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return nil
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return nil
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || builtinName(info, call) != "append" {
				return nil
			}
			v, ok := info.ObjectOf(id).(*types.Var)
			if !ok {
				return nil
			}
			targets = append(targets, v)
		default:
			return nil
		}
	}
	return targets
}

// sortedAfter reports whether v is passed to a sort.* or slices.Sort*
// call after the range statement within fd.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Sort") && !isSortHelper(pkg, fn.Name()) {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && info.ObjectOf(id) == v {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

func isSortHelper(pkg, name string) bool {
	if pkg != "sort" {
		return false
	}
	switch name {
	case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Stable", "Sort":
		return true
	}
	return false
}

// serialization sinks: method names whose call inside a map-range body
// means iteration order reached an output stream, hash, or buffer.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true, "Sum": true,
}

// findSerializationSink scans a map-range body for the first call that
// emits bytes whose order follows the iteration, returning a description
// of the sink ("" if none). Module-internal callees are followed one call
// deep (so a logging/reporting helper that wraps fmt still counts); the
// search is deliberately not transitive beyond that — deeper flows are the
// runtime byte-identity tests' job.
func findSerializationSink(prog *Program, info *types.Info, body *ast.BlockStmt, follow bool) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Canonical-bytes accumulation: append to a []byte.
		if builtinName(info, call) == "append" && len(call.Args) > 0 {
			if tv, ok := info.Types[call.Args[0]]; ok && isByteSlice(tv.Type) {
				sink = "append to a []byte buffer"
				return false
			}
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if follow && sink == "" {
			if fd := prog.FuncDecl(fn.Origin()); fd != nil && fd.Body != nil {
				if inner := findSerializationSink(prog, prog.declPkg[fn.Origin()].Info, fd.Body, false); inner != "" {
					sink = fn.Name() + " (which reaches " + inner + ")"
					return false
				}
			}
		}
		if fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "strconv":
				if strings.HasPrefix(fn.Name(), "Append") {
					sink = "strconv." + fn.Name()
					return false
				}
			case "fmt":
				if strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Sprint") {
					sink = "fmt." + fn.Name()
					return false
				}
			case "encoding/json":
				if fn.Name() == "Marshal" || fn.Name() == "MarshalIndent" {
					sink = "json." + fn.Name()
					return false
				}
			}
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && sinkMethods[fn.Name()] {
			sink = "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(nil)) + ")." + fn.Name()
			return false
		}
		return true
	})
	return sink
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
