package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// This file is the repository's stand-in for
// golang.org/x/tools/go/analysis/analysistest: testdata packages under
// testdata/src/<name> annotated with `// want "regexp"` comments, loaded
// and analyzed exactly like real packages (same driver, same ignore
// filtering), with diagnostics matched one-to-one against expectations.

// stdExports lazily builds the stdlib export-data index used to typecheck
// testdata packages (which may import anything in std, but nothing else).
var stdExports = sync.OnceValues(func() (map[string]string, error) {
	pkgs, err := goList(".", "std")
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
})

// LoadDir typechecks a single directory of Go files as the package named
// by its base name, resolving imports from the standard library only.
// It exists for analysistest-style testdata, which lives outside the
// module proper.
func LoadDir(dir string) (*Program, error) {
	exports, err := stdExports()
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &listPkg{ImportPath: filepath.Base(dir), Name: filepath.Base(dir), Dir: dir}
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
			p.GoFiles = append(p.GoFiles, ent.Name())
		}
	}
	if len(p.GoFiles) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	prog := newProgram()
	if err := prog.addPackage(p, newImporter(prog, exports)); err != nil {
		return nil, err
	}
	return prog, nil
}

// expectation is one `// want "re"` clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

var wantRe = regexp.MustCompile(`//\s*want\b(.*)$`)

// RunTest loads testdata/src/<pkg>, applies the analyzer through the
// standard driver (so //schedlint:ignore suppression is exercised), and
// checks findings against `// want` expectations: each expectation must be
// matched by exactly one finding on its line, and no unexpected findings
// may remain. Multiple clauses on one line (`// want "a" "b"`) expect
// multiple findings.
func RunTest(t *testing.T, a *Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	prog, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := Run(prog, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}
	expectations := parseWants(t, prog)

	matched := make([]bool, len(expectations))
finding:
	for _, f := range findings {
		for i, exp := range expectations {
			if !matched[i] && exp.file == f.File && exp.line == f.Line && exp.re.MatchString(f.Message) {
				matched[i] = true
				continue finding
			}
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for i, exp := range expectations {
		if !matched[i] {
			t.Errorf("%s:%d: no finding matched %q", exp.file, exp.line, exp.raw)
		}
	}
}

func parseWants(t *testing.T, prog *Program) []expectation {
	t.Helper()
	var exps []expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, raw := range splitQuoted(t, pos, m[1]) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
						}
						exps = append(exps, expectation{pos.Filename, pos.Line, re, raw})
					}
				}
			}
		}
	}
	sort.Slice(exps, func(i, j int) bool {
		if exps[i].file != exps[j].file {
			return exps[i].file < exps[j].file
		}
		return exps[i].line < exps[j].line
	})
	return exps
}

// splitQuoted extracts the quoted clauses of a want comment tail.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: malformed want clause at %q (expected quoted regexp)", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want regexp %q", pos, s)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, s[:end+1], err)
		}
		out = append(out, raw)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
