package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockcheck enforces the repository's shared-state disciplines:
//
//  1. Guarded fields. A struct field annotated `// guarded by mu` (any
//     mutex field name) may only be accessed in functions that acquire
//     that mutex on the same instance first. The check is an intentional
//     position-based approximation: an acquire of <base>.<mu>.Lock() or
//     .RLock() textually preceding the access in the same function counts
//     as held (release-then-access gaps are not modeled). Functions whose
//     names end in "Locked" declare the caller-holds convention and are
//     exempt, as are accesses on instances created inside the function —
//     an unshared value needs no lock.
//
//  2. Atomic consistency. A plain field whose address is passed to
//     sync/atomic functions anywhere in the module must be accessed
//     atomically everywhere: one stray non-atomic read or write is a data
//     race the race detector only catches if a test happens to interleave
//     it. (Fields of the atomic.Int64-style wrapper types used by the obs
//     histograms are method-only and safe by construction; this rule
//     covers the raw atomic.AddInt64(&x)-style pattern.)
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flags guarded-field access without the lock held and mixed atomic/non-atomic field access",
	Run:  runLockcheck,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedFields maps a struct field object to the name of the mutex field
// guarding it, per its `// guarded by mu` annotation. Collected
// program-wide so exported guarded fields are enforced across packages.
func (prog *Program) guardedFields() map[*types.Var]string {
	guarded := make(map[*types.Var]string)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					mu := guardAnnotation(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							guarded[v] = mu
						}
					}
				}
				return true
			})
		}
	}
	return guarded
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// atomicFields collects, program-wide, every struct field whose address
// is passed to a sync/atomic package function.
func (prog *Program) atomicFields() map[*types.Var]bool {
	fields := make(map[*types.Var]bool)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if !isPkgFunc(fn, "sync/atomic") {
					return true
				}
				for _, arg := range call.Args {
					if v := addressedField(pkg.Info, arg); v != nil {
						fields[v] = true
					}
				}
				return true
			})
		}
	}
	return fields
}

// addressedField returns the field object when expr is &x.f for a struct
// field f, else nil.
func addressedField(info *types.Info, expr ast.Expr) *types.Var {
	ue, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

func runLockcheck(pass *Pass) error {
	guarded := pass.Prog.lockState().guarded
	atomics := pass.Prog.lockState().atomics
	info := pass.Pkg.Info
	funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
		callerHolds := strings.HasSuffix(fd.Name.Name, "Locked")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			base := rootIdent(sel.X)
			if mu, isGuarded := guarded[field]; isGuarded && !callerHolds {
				if !freshInstance(info, base, fd) && !lockHeldBefore(info, fd, base, mu, sel.Pos()) {
					pass.Reportf(sel.Pos(), "%s is guarded by %s, which is not held here (no preceding %s.Lock/RLock in this function; suffix the function name with Locked if the caller holds it)", field.Name(), mu, mu)
				}
			}
			if atomics[field] && !atomicUse(info, fd, sel) && !freshInstance(info, base, fd) {
				pass.Reportf(sel.Pos(), "%s is accessed with sync/atomic elsewhere; this plain access is a data race — use the atomic API here too", field.Name())
			}
			return true
		})
	})
	return nil
}

// lockState caches the program-wide guarded/atomic field censuses.
type lockInfo struct {
	guarded map[*types.Var]string
	atomics map[*types.Var]bool
}

func (prog *Program) lockState() *lockInfo {
	prog.lockOnce.Do(func() {
		prog.locks = &lockInfo{guarded: prog.guardedFields(), atomics: prog.atomicFields()}
	})
	return prog.locks
}

// freshInstance reports whether the access base is a variable declared
// inside this function body: a value that has not escaped to other
// goroutines yet needs no synchronization. (Aliases of shared state bound
// to locals defeat this heuristic; the annotation grammar exists for the
// residue.)
func freshInstance(info *types.Info, base *ast.Ident, fd *ast.FuncDecl) bool {
	if base == nil {
		return false
	}
	return localVarWithin(info, base, fd.Body)
}

// lockHeldBefore reports whether <base>.<mu>.Lock() or .RLock() is called
// before pos in the function.
func lockHeldBefore(info *types.Info, fd *ast.FuncDecl, base *ast.Ident, mu string, pos token.Pos) bool {
	if base == nil {
		return false
	}
	baseObj := info.ObjectOf(base)
	held := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != mu {
			// Locking the mutex directly (mu is the receiver or a local).
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == mu {
				held = true
			}
			return true
		}
		muBase := rootIdent(muSel.X)
		if muBase != nil && baseObj != nil && info.ObjectOf(muBase) == baseObj {
			held = true
		}
		return true
	})
	return held
}

// atomicUse reports whether this selector occurrence is itself part of a
// sanctioned atomic access: the &x.f argument of a sync/atomic call.
func atomicUse(info *types.Info, fd *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	use := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if use {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if !isPkgFunc(fn, "sync/atomic") {
			return true
		}
		for _, arg := range call.Args {
			ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok {
				continue
			}
			if inner, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok && inner == sel {
				use = true
			}
		}
		return true
	})
	return use
}
