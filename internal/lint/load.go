package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// A Package is one typechecked module package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Target marks packages named by the load patterns; dependencies are
	// typechecked (so cross-package analyses see their bodies) but only
	// targets are analyzed and reported on.
	Target bool

	// Deterministic is set by a //schedlint:deterministic directive in any
	// file's package doc comment. The determinism analyzer forbids wall
	// clocks and the global math/rand RNG in such packages.
	Deterministic bool

	// ignores maps file:line to the analyzer names suppressed there by
	// //schedlint:ignore comments. An ignore covers its own line and the
	// next line, so it works both as a trailing comment and on the line
	// above the finding.
	ignores map[ignoreKey]map[string]bool

	// badDirectives are malformed //schedlint: comments, reported as
	// findings of the pseudo-analyzer "schedlint".
	badDirectives []Finding
}

type ignoreKey struct {
	file string
	line int
}

func (p *Package) ignored(analyzer string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set := p.ignores[ignoreKey{pos.Filename, line}]; set[analyzer] || set["*"] {
			return true
		}
	}
	return false
}

// A Program is a load result: the module packages of interest plus every
// module dependency, all sharing one FileSet and one types universe, so a
// *types.Func resolved in one package is the same object in every other.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // dependency order: imports precede importers

	byPath map[string]*Package

	// hotpath annotation seeds: functions whose declaration carries
	// //schedlint:hotpath.
	hotSeeds map[*types.Func]bool

	// funcDecls maps every module function/method object to its
	// declaration, for call-graph walks.
	funcDecls map[*types.Func]*ast.FuncDecl
	declPkg   map[*types.Func]*Package

	hotOnce sync.Once
	hot     map[*types.Func]string // func -> name of the seed that reaches it

	lockOnce sync.Once
	locks    *lockInfo
}

// Package returns the loaded package with the given import path, or nil.
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// FuncDecl returns the declaration of fn if fn is a module function loaded
// into the program, else nil.
func (prog *Program) FuncDecl(fn *types.Func) *ast.FuncDecl { return prog.funcDecls[fn] }

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

const listFields = "ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles"

func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps", "-json=" + listFields}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load typechecks the packages matched by patterns (plus their in-module
// dependencies) rooted at dir, using `go list -export` for import
// resolution: stdlib dependencies are imported from compiler export data,
// module packages from source, in dependency order, so all packages share
// one types universe.
func Load(dir string, patterns ...string) (*Program, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	prog := newProgram()
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := newImporter(prog, exports)
	for _, p := range pkgs {
		if p.Standard || p.Name == "" {
			continue
		}
		if err := prog.addPackage(p, imp); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func newProgram() *Program {
	return &Program{
		Fset:      token.NewFileSet(),
		byPath:    make(map[string]*Package),
		hotSeeds:  make(map[*types.Func]bool),
		funcDecls: make(map[*types.Func]*ast.FuncDecl),
		declPkg:   make(map[*types.Func]*Package),
	}
}

// addPackage parses, typechecks, and directive-scans one package. Its
// in-module imports must already have been added (dependency order).
func (prog *Program) addPackage(p *listPkg, imp types.Importer) error {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, prog.Fset, files, info)
	if err != nil {
		return fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	pkg := &Package{
		Path:    p.ImportPath,
		Name:    tpkg.Name(),
		Dir:     p.Dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Target:  !p.DepOnly,
		ignores: make(map[ignoreKey]map[string]bool),
	}
	prog.Pkgs = append(prog.Pkgs, pkg)
	prog.byPath[p.ImportPath] = pkg
	prog.scanDirectives(pkg)
	prog.indexFuncs(pkg)
	return nil
}

// indexFuncs records every function and method declaration of the package
// and collects //schedlint:hotpath seeds.
func (prog *Program) indexFuncs(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			prog.funcDecls[fn] = fd
			prog.declPkg[fn] = pkg
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == "//schedlint:hotpath" {
						prog.hotSeeds[fn] = true
					}
				}
			}
		}
	}
}

var knownAnalyzers = map[string]bool{
	"determinism": true,
	"hotpath":     true,
	"ctxflow":     true,
	"lockcheck":   true,
}

// scanDirectives processes every //schedlint: comment in the package:
// package-level determinism declarations, ignore suppressions, and — for
// anything malformed — findings against the pseudo-analyzer "schedlint".
func (prog *Program) scanDirectives(pkg *Package) {
	for _, f := range pkg.Files {
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if strings.TrimSpace(c.Text) == "//schedlint:deterministic" {
					pkg.Deterministic = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//schedlint:") {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				directive := strings.TrimPrefix(text, "//schedlint:")
				switch {
				case directive == "deterministic":
					if !inGroup(f.Doc, c) {
						pkg.badDirective(pos, "//schedlint:deterministic must appear in a package doc comment")
					}
				case directive == "hotpath":
					// Validated against function docs in indexFuncs; a
					// stray hotpath directive seeds nothing, which is
					// worth failing loudly over.
					if !isFuncDoc(f, c) {
						pkg.badDirective(pos, "//schedlint:hotpath must appear in a function's doc comment")
					}
				case strings.HasPrefix(directive, "ignore"):
					rest := strings.TrimPrefix(directive, "ignore")
					fields := strings.Fields(rest)
					if len(fields) < 2 || !knownAnalyzers[fields[0]] {
						pkg.badDirective(pos, "malformed ignore %q: want //schedlint:ignore <analyzer> <reason>, analyzer one of determinism|hotpath|ctxflow|lockcheck", text)
						continue
					}
					key := ignoreKey{pos.Filename, pos.Line}
					if pkg.ignores[key] == nil {
						pkg.ignores[key] = make(map[string]bool)
					}
					pkg.ignores[key][fields[0]] = true
				default:
					pkg.badDirective(pos, "unknown schedlint directive %q: want deterministic, hotpath, or ignore", text)
				}
			}
		}
	}
}

func (pkg *Package) badDirective(pos token.Position, format string, args ...any) {
	pkg.badDirectives = append(pkg.badDirectives, Finding{
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: "schedlint",
		Message:  fmt.Sprintf(format, args...),
	})
}

func inGroup(cg *ast.CommentGroup, c *ast.Comment) bool {
	if cg == nil {
		return false
	}
	for _, cc := range cg.List {
		if cc == c {
			return true
		}
	}
	return false
}

func isFuncDoc(f *ast.File, c *ast.Comment) bool {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && inGroup(fd.Doc, c) {
			return true
		}
	}
	return false
}

// newImporter builds the loader's import resolver: module packages come
// from the program (already typechecked from source), the stdlib from gc
// export data produced by `go list -export`.
func newImporter(prog *Program, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if p, ok := prog.byPath[path]; ok {
			return p.Types, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
