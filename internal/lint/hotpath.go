package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Hotpath enforces the zero-allocation discipline of the analysis hot
// path. Functions annotated //schedlint:hotpath seed a transitive closure
// over the module's static call graph (interface dispatch and function
// values are not followed — keep hot-path indirections behind word-sized,
// nil-checked hooks, as StageRecorder does). Inside every function of the
// closure the analyzer flags constructs that allocate:
//
//   - calls into fmt (formatting always allocates),
//   - non-constant string concatenation,
//   - make and new (reuse a scratch arena or sync.Pool instead),
//   - slice and map literals (their backings are heap-allocated) and
//     &-composite literals that escape (returned, passed as arguments,
//     stored into fields/elements, or sent on channels),
//   - boxing non-pointer values into interfaces (arguments, assignments,
//     returns, and variadic ...any expansion),
//   - closures that capture variables.
//
// Arguments of panic are exempt: a panicking invocation is by definition
// not the steady-state hot path, so panic(fmt.Sprintf(...)) on an
// invariant violation needs no annotation.
//
// The escape rules are a deliberately structural approximation of the
// compiler's escape analysis: predictable, annotatable, and strict enough
// that the TestWCRTsZeroAllocEN/EP runtime gates and this static gate
// cover the same surface. Cold paths inside hot functions (growth slopes,
// panics on invariant violations) carry //schedlint:ignore hotpath
// annotations with the reason they are allowed to allocate.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flags allocation-inducing constructs in functions transitively reachable from //schedlint:hotpath annotations",
	Run:  runHotpath,
}

// hotFuncs computes (once per program) the set of functions transitively
// reachable from //schedlint:hotpath seeds, mapping each to the seed that
// reaches it for diagnostics.
func (prog *Program) hotFuncs() map[*types.Func]string {
	prog.hotOnce.Do(func() {
		prog.hot = make(map[*types.Func]string)
		// Deterministic BFS: seeds sorted by position.
		seeds := make([]*types.Func, 0, len(prog.hotSeeds))
		for fn := range prog.hotSeeds {
			seeds = append(seeds, fn)
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i].Pos() < seeds[j].Pos() })
		queue := make([]*types.Func, 0, len(seeds))
		for _, fn := range seeds {
			prog.hot[fn] = fn.Name()
			queue = append(queue, fn)
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			fd := prog.funcDecls[fn]
			if fd == nil || fd.Body == nil {
				continue
			}
			info := prog.declPkg[fn].Info
			root := prog.hot[fn]
			var callees []*types.Func
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(info, call)
				if callee == nil {
					return true
				}
				callee = callee.Origin() // generic instantiations share one decl
				if _, seen := prog.hot[callee]; !seen && prog.funcDecls[callee] != nil {
					callees = append(callees, callee)
				}
				return true
			})
			sort.Slice(callees, func(i, j int) bool { return callees[i].Pos() < callees[j].Pos() })
			for _, callee := range callees {
				if _, seen := prog.hot[callee]; !seen {
					prog.hot[callee] = root
					queue = append(queue, callee)
				}
			}
		}
	})
	return prog.hot
}

func runHotpath(pass *Pass) error {
	hot := pass.Prog.hotFuncs()
	funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
		fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		if root, isHot := hot[fn]; isHot {
			checkHotFunc(pass, fd, root)
		}
	})
	return nil
}

// hotReporter dedupes per (line, kind) so a chain like a+b+c or a
// multi-argument boxing call yields one finding per line, matching how
// //schedlint:ignore suppression is scoped.
type hotReporter struct {
	pass *Pass
	root string
	seen map[lineKind]bool
}

type lineKind struct {
	line int
	kind string
}

func (r *hotReporter) reportf(pos token.Pos, kind, format string, args ...any) {
	key := lineKind{r.pass.Prog.Fset.Position(pos).Line, kind}
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	args = append(args, r.root)
	r.pass.Reportf(pos, format+" in the zero-alloc hot path (reachable from %s)", args...)
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl, root string) {
	info := pass.Pkg.Info
	r := &hotReporter{pass: pass, root: root, seen: make(map[lineKind]bool)}
	parent := parentMap(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if builtinName(info, n) == "panic" {
				return false // a panicking path is not the hot path
			}
			checkHotCall(r, info, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n) && !isConstant(info, n) {
				r.reportf(n.Pos(), "concat", "string concatenation allocates")
			}
		case *ast.CompositeLit:
			checkCompositeLit(r, info, parent, n)
		case *ast.FuncLit:
			if capt := capturedVar(info, fd, n); capt != "" {
				r.reportf(n.Pos(), "closure", "closure captures %q and allocates", capt)
			}
		case *ast.AssignStmt:
			checkBoxingAssign(r, info, n)
		case *ast.ValueSpec:
			checkBoxingValueSpec(r, info, n)
		case *ast.ReturnStmt:
			checkBoxingReturn(r, info, fd, n)
		}
		return true
	})
}

func checkHotCall(r *hotReporter, info *types.Info, call *ast.CallExpr) {
	switch builtinName(info, call) {
	case "make":
		r.reportf(call.Pos(), "make", "make allocates; reuse a scratch arena, pooled buffer, or preallocated slice")
		return
	case "new":
		r.reportf(call.Pos(), "new", "new allocates; reuse scratch-owned memory")
		return
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		r.reportf(call.Pos(), "fmt", "fmt.%s allocates (formatting boxes its operands)", fn.Name())
		return
	}
	// Boxing of arguments into interface parameters, including variadic
	// ...any expansion.
	sig := callSignature(info, call)
	if sig == nil || call.Ellipsis != token.NoPos {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt != nil && boxes(info, arg, pt) {
			r.reportf(arg.Pos(), "box", "argument boxes a %s into %s and allocates", info.Types[arg].Type, pt)
		}
	}
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// boxes reports whether assigning the expression to a target of type dst
// converts a non-pointer-shaped value to an interface, which allocates.
// Pointer-shaped values (pointers, channels, maps, funcs, unsafe.Pointer)
// are stored directly in the interface word; constants are materialized
// at compile time.
func boxes(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func checkBoxingAssign(r *hotReporter, info *types.Info, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		ltv, ok := info.Types[lhs]
		if !ok {
			continue
		}
		if boxes(info, as.Rhs[i], ltv.Type) {
			r.reportf(as.Rhs[i].Pos(), "box", "assignment boxes a %s into %s and allocates", info.Types[as.Rhs[i]].Type, ltv.Type)
		}
	}
}

func checkBoxingValueSpec(r *hotReporter, info *types.Info, vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		obj := info.ObjectOf(name)
		if obj == nil {
			continue
		}
		if boxes(info, vs.Values[i], obj.Type()) {
			r.reportf(vs.Values[i].Pos(), "box", "declaration boxes a %s into %s and allocates", info.Types[vs.Values[i]].Type, obj.Type())
		}
	}
}

func checkBoxingReturn(r *hotReporter, info *types.Info, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	sig, ok := info.Defs[fd.Name].Type().(*types.Signature)
	if !ok || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		if boxes(info, res, sig.Results().At(i).Type()) {
			r.reportf(res.Pos(), "box", "return boxes a %s into %s and allocates", info.Types[res].Type, sig.Results().At(i).Type())
		}
	}
}

// checkCompositeLit flags the composite literals that actually allocate:
// map literals and slice literals allocate their backing uncondition-
// ally; a struct or array literal is a plain value and only allocates
// when its address is taken and escapes per the structural heuristic
// (boxing into interfaces is the boxing check's job).
func checkCompositeLit(r *hotReporter, info *types.Info, parent map[ast.Node]ast.Node, cl *ast.CompositeLit) {
	tv, ok := info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		r.reportf(cl.Pos(), "lit", "map literal allocates")
		return
	case *types.Slice:
		if nested(parent, cl) {
			return // counted once, at the outermost allocating literal
		}
		r.reportf(cl.Pos(), "lit", "slice literal allocates its backing array")
		return
	}
	ue, ok := parent[cl].(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return
	}
	if where := escapes(info, parent, ue); where != "" {
		r.reportf(cl.Pos(), "lit", "&-composite literal escapes to the heap (%s)", where)
	}
}

// nested reports whether the literal sits inside another composite
// literal (whose own backing allocation subsumes it).
func nested(parent map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parent[n]; p != nil; p = parent[p] {
		if _, ok := p.(*ast.CompositeLit); ok {
			return true
		}
	}
	return false
}

// escapes walks up from a composite literal to decide, structurally,
// whether its value leaves the frame: returned, passed to a call, stored
// through a pointer/field/index, sent on a channel, or folded into an
// enclosing literal that itself escapes. A literal assigned to a fresh
// local stays, by this approximation, on the stack.
func escapes(info *types.Info, parent map[ast.Node]ast.Node, n ast.Node) string {
	for {
		p := parent[n]
		switch pp := p.(type) {
		case *ast.ParenExpr, *ast.KeyValueExpr, *ast.CompositeLit:
			n = p
			continue
		case *ast.UnaryExpr:
			if pp.Op == token.AND {
				n = p
				continue
			}
			return ""
		case *ast.ReturnStmt:
			return "returned"
		case *ast.CallExpr:
			for _, arg := range pp.Args {
				if arg == n {
					return "passed as an argument"
				}
			}
			return ""
		case *ast.SendStmt:
			if pp.Value == n {
				return "sent on a channel"
			}
			return ""
		case *ast.AssignStmt:
			for i, rhs := range pp.Rhs {
				if rhs != n || i >= len(pp.Lhs) {
					continue
				}
				switch ast.Unparen(pp.Lhs[i]).(type) {
				case *ast.Ident:
					return "" // fresh or local rebinding: stack by approximation
				default:
					return "stored into a field, element, or dereference"
				}
			}
			return ""
		default:
			return ""
		}
	}
}

// capturedVar returns the name of a variable the function literal captures
// from its enclosing function, or "" if it captures nothing (a static,
// allocation-free closure).
func capturedVar(info *types.Info, fd *ast.FuncDecl, fl *ast.FuncLit) string {
	captured := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing declaration (receiver,
		// parameter, or body) but outside the literal itself.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < fl.Pos() || v.Pos() >= fl.End()) {
			captured = v.Name()
		}
		return true
	})
	return captured
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// parentMap builds a child-to-parent index for one function body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
