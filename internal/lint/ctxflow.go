package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces context threading on request paths. In any function
// that accepts a context.Context parameter:
//
//   - a call to context.Background() or context.TODO() is flagged — it
//     severs the caller's cancellation and deadline chain, so a request
//     the client abandoned keeps consuming worker slots, store I/O, and
//     analysis time (deliberate detachment, like the refcounted
//     singleflight that outlives any one request, must be annotated);
//   - a call to time.Sleep is flagged — it ignores cancellation entirely;
//     select on the context's Done channel and a timer instead.
//
// The nil-guard idiom `if ctx == nil { ctx = context.Background() }` is
// exempt: assigning Background to the context parameter itself does not
// sever a chain — there was none — and every later use still threads the
// same variable.
//
// Functions without a ctx parameter are not checked: the invariant is
// "thread what you were given", not "take a context everywhere".
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background/TODO and uncancellable waits inside functions that already have a context",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) error {
	info := pass.Pkg.Info
	funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
		ctxVar := contextParam(info, fd)
		if ctxVar == nil {
			return
		}
		ctxName := ctxVar.Name()
		guarded := nilGuardAssigns(info, fd.Body, ctxVar)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "context") && (fn.Name() == "Background" || fn.Name() == "TODO"):
				if guarded[call] {
					return true // nil-guard fallback onto the parameter itself
				}
				pass.Reportf(call.Pos(), "context.%s severs the cancellation chain; thread %s instead", fn.Name(), ctxName)
			case isPkgFunc(fn, "time") && fn.Name() == "Sleep":
				pass.Reportf(call.Pos(), "time.Sleep ignores cancellation; select on %s.Done() and a timer instead", ctxName)
			}
			return true
		})
	})
	return nil
}

// nilGuardAssigns returns the set of call expressions whose result is
// assigned to the context parameter itself (`ctx = context.Background()`).
// Such an assignment is the nil-guard fallback idiom, not a severed chain.
func nilGuardAssigns(info *types.Info, body *ast.BlockStmt, ctxVar *types.Var) map[*ast.CallExpr]bool {
	guarded := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || info.ObjectOf(id) != ctxVar {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				guarded[call] = true
			}
		}
		return true
	})
	return guarded
}

// contextParam returns fd's context.Context parameter, or nil if it has
// none. An unnamed (_) context does not count: it cannot be threaded, and
// discarding it is its own, visible decision.
func contextParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				if v, ok := info.ObjectOf(name).(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
