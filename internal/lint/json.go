package lint

import (
	"encoding/json"
	"io"
)

// WriteJSON emits findings in the machine-readable -json format: a JSON
// array (never null) of {file, line, col, analyzer, message} objects,
// sorted, one parseable document — so CI logs and future tooling can diff
// finding counts between runs.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
