// This file is the analyzer framework (doc.go holds the package doc).
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API (Analyzer / Pass / Diagnostic) so the analyzers read like standard
// vet passes and could be ported to a multichecker verbatim. It is a
// stdlib-only reimplementation because this module carries zero external
// dependencies: packages are loaded with `go list -export` plus the
// go/importer gc importer instead of go/packages (see load.go). One
// deliberate deviation: a Pass sees the whole loaded Program, not just its
// package — the hotpath and lockcheck analyzers need a module-wide call
// graph and field census, which x/tools would express through Facts.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer describes one schedlint analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -json output, and
	// //schedlint:ignore comments. It must be a single lowercase word.
	Name string

	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Reportf and returns an error only for internal failures (a
	// finding is never an error).
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run over one package with the information
// it needs: the package's syntax and types, plus the whole loaded program
// for cross-package analyses.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one raw finding, before ignore-comment filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is one filtered, position-resolved diagnostic — the unit of
// schedlint's text and -json output.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzers returns the full schedlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, Hotpath, Ctxflow, Lockcheck}
}

// Run applies the analyzers to every target package of the program (loaded
// dependencies that were not named by the load patterns are typechecked
// but not analyzed), filters findings through //schedlint:ignore comments,
// reports malformed ignore comments, and returns the findings sorted by
// position. Run itself must be deterministic — schedlint lints for
// map-iteration order, so it cannot depend on one.
func Run(prog *Program, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range prog.Pkgs {
		if !pkg.Target {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg}
			pass.report = func(d Diagnostic) {
				pos := prog.Fset.Position(d.Pos)
				if pkg.ignored(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		// Malformed //schedlint: comments are findings themselves: a typo
		// in an ignore must fail the gate, not silently suppress nothing.
		findings = append(findings, pkg.badDirectives...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
