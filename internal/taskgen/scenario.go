package taskgen

import (
	"fmt"

	"dpcpp/internal/rt"
)

// IntRange is an inclusive integer range [Lo, Hi].
type IntRange struct {
	Lo, Hi int
}

func (r IntRange) String() string { return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi) }

// TimeRange is an inclusive duration range [Lo, Hi].
type TimeRange struct {
	Lo, Hi rt.Time
}

func (r TimeRange) String() string {
	return fmt.Sprintf("[%s,%s]", rt.FormatTime(r.Lo), rt.FormatTime(r.Hi))
}

// Scenario is one experimental configuration of the paper's Sec. VII-A.
// The full grid of Table 2/3 is the cross product of:
//
//	M       ∈ {8, 16, 32}
//	NumRes  ∈ {[2,4], [4,8], [8,16]}
//	UAvg    ∈ {1.5, 2}
//	PAccess ∈ {0.5, 0.75, 1}
//	NReq    ∈ {[1,25], [1,50]}
//	CSLen   ∈ {[15µs,50µs], [50µs,100µs]}
//
// which yields 3·3·2·3·2·2 = 216 scenarios.
type Scenario struct {
	M       int       // number of processors
	NumRes  IntRange  // number of shared resources n_r
	UAvg    float64   // average task utilization U^avg
	PAccess float64   // probability p_r that a task uses each resource
	NReq    IntRange  // per-task request count N_{i,q} range
	CSLen   TimeRange // critical-section length L_{i,q} range

	// Structure parameters (fixed by the paper).
	VertsRange IntRange // |V_i| uniform in [10, 100]
	EdgeProb   float64  // Erdős–Rényi edge probability, 0.1
	PeriodLo   rt.Time  // log-uniform period range, [10ms, 1000ms]
	PeriodHi   rt.Time
}

// DefaultStructure fills the structure parameters the paper fixes for every
// scenario.
func (s Scenario) DefaultStructure() Scenario {
	if s.VertsRange == (IntRange{}) {
		s.VertsRange = IntRange{10, 100}
	}
	if s.EdgeProb == 0 {
		s.EdgeProb = 0.1
	}
	if s.PeriodLo == 0 {
		s.PeriodLo = 10 * rt.Millisecond
	}
	if s.PeriodHi == 0 {
		s.PeriodHi = 1000 * rt.Millisecond
	}
	return s
}

// Name returns a compact scenario identifier used in reports and CSV files.
func (s Scenario) Name() string {
	return fmt.Sprintf("m%d_nr%d-%d_u%g_pr%g_n%d-%d_cs%d-%dus",
		s.M, s.NumRes.Lo, s.NumRes.Hi, s.UAvg, s.PAccess,
		s.NReq.Lo, s.NReq.Hi,
		s.CSLen.Lo/rt.Microsecond, s.CSLen.Hi/rt.Microsecond)
}

// Grid returns the paper's full 216-scenario grid in deterministic order.
func Grid() []Scenario {
	var out []Scenario
	for _, m := range []int{8, 16, 32} {
		for _, nr := range []IntRange{{2, 4}, {4, 8}, {8, 16}} {
			for _, uavg := range []float64{1.5, 2} {
				for _, pr := range []float64{0.5, 0.75, 1} {
					for _, nq := range []IntRange{{1, 25}, {1, 50}} {
						for _, cs := range []TimeRange{
							{15 * rt.Microsecond, 50 * rt.Microsecond},
							{50 * rt.Microsecond, 100 * rt.Microsecond},
						} {
							out = append(out, Scenario{
								M: m, NumRes: nr, UAvg: uavg, PAccess: pr,
								NReq: nq, CSLen: cs,
							}.DefaultStructure())
						}
					}
				}
			}
		}
	}
	return out
}

// Fig2Scenario returns the configuration of one of the paper's Fig. 2
// subplots ("2a", "2b", "2c" or "2d"). All four use N ∈ [1,50] and
// L ∈ [50µs, 100µs].
func Fig2Scenario(sub string) (Scenario, error) {
	base := Scenario{
		NReq:  IntRange{1, 50},
		CSLen: TimeRange{50 * rt.Microsecond, 100 * rt.Microsecond},
	}
	switch sub {
	case "2a":
		base.UAvg, base.M, base.NumRes, base.PAccess = 1.5, 16, IntRange{4, 8}, 0.5
	case "2b":
		base.UAvg, base.M, base.NumRes, base.PAccess = 1.5, 32, IntRange{8, 16}, 1
	case "2c":
		base.UAvg, base.M, base.NumRes, base.PAccess = 2, 16, IntRange{4, 8}, 0.5
	case "2d":
		base.UAvg, base.M, base.NumRes, base.PAccess = 2, 32, IntRange{8, 16}, 1
	default:
		return Scenario{}, fmt.Errorf("taskgen: unknown Fig. 2 subplot %q", sub)
	}
	return base.DefaultStructure(), nil
}

// UtilizationPoints returns the paper's sweep of total utilizations for m
// processors: 1 to m in steps of 0.05*m, with the endpoint m always
// included so the normalized axis reaches 1.0 as in Fig. 2.
func UtilizationPoints(m int) []float64 {
	var out []float64
	step := 0.05 * float64(m)
	for u := 1.0; u <= float64(m)+1e-9; u += step {
		out = append(out, u)
	}
	if last := out[len(out)-1]; last < float64(m)-1e-9 {
		out = append(out, float64(m))
	}
	return out
}
