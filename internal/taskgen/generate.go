package taskgen

import (
	"fmt"
	"math"
	"math/rand"

	"dpcpp/internal/model"
	"dpcpp/internal/rt"
)

// Generator synthesizes tasksets for one scenario. It is deterministic
// given the *rand.Rand it is handed.
type Generator struct {
	Scenario Scenario

	// MaxCSFraction caps the total critical-section workload of a task at
	// this fraction of its WCET; request counts are reduced when the drawn
	// parameters would exceed it (the paper enforces the same through its
	// "C_{i,x} >= sum N_{i,x,q} L_{i,q}" plausibility rule). Default 0.5.
	MaxCSFraction float64

	// StructRetries bounds how many DAG structures are attempted per task
	// before giving up (the edge probability decays on every retry, which
	// widens the DAG and always converges). Default 64.
	StructRetries int
}

// NewGenerator returns a Generator with the paper's defaults.
func NewGenerator(s Scenario) *Generator {
	return &Generator{Scenario: s.DefaultStructure(), MaxCSFraction: 0.5, StructRetries: 64}
}

// Taskset generates one taskset with the given total utilization.
func (g *Generator) Taskset(r *rand.Rand, totalUtil float64) (*model.Taskset, error) {
	s := g.Scenario
	nr := UniformInt(r, s.NumRes.Lo, s.NumRes.Hi)
	utils, err := g.splitUtilization(r, totalUtil)
	if err != nil {
		return nil, err
	}

	ts := model.NewTaskset(s.M, nr)
	for i, u := range utils {
		task, err := g.task(r, rt.TaskID(i), u, nr)
		if err != nil {
			return nil, fmt.Errorf("taskgen: task %d (U=%.3f): %w", i, u, err)
		}
		ts.Add(task)
	}
	if err := ts.Finalize(); err != nil {
		return nil, err
	}
	return ts, nil
}

// splitUtilization draws per-task utilizations in (1, 2*UAvg] summing to
// totalUtil via RandFixedSum. The number of tasks follows the paper: it is
// determined by UAvg and the total utilization. Totals at or below 1 yield
// a single task with exactly that utilization.
func (g *Generator) splitUtilization(r *rand.Rand, totalUtil float64) ([]float64, error) {
	if totalUtil <= 0 {
		return nil, fmt.Errorf("taskgen: non-positive total utilization %g", totalUtil)
	}
	lo := 1.0 + 1e-6
	hi := 2 * g.Scenario.UAvg
	if hi <= lo {
		return nil, fmt.Errorf("taskgen: UAvg %g leaves empty utilization range", g.Scenario.UAvg)
	}
	if totalUtil <= lo {
		return []float64{totalUtil}, nil
	}
	n := int(math.Round(totalUtil / g.Scenario.UAvg))
	nMin := int(math.Ceil(totalUtil / hi))
	nMax := int(math.Floor(totalUtil / lo))
	if n < nMin {
		n = nMin
	}
	if n > nMax {
		n = nMax
	}
	if n < 1 {
		n = 1
	}
	if n == 1 {
		return []float64{totalUtil}, nil
	}
	return RandFixedSum(r, n, totalUtil, lo, hi)
}

// resourceDraw is the per-task resource parameterization before placement.
type resourceDraw struct {
	q  rt.ResourceID
	n  int64   // N_{i,q}
	cs rt.Time // L_{i,q}
}

// task generates one DAG task with utilization u.
func (g *Generator) task(r *rand.Rand, id rt.TaskID, u float64, nr int) (*model.Task, error) {
	s := g.Scenario
	periodMS := LogUniform(r, float64(s.PeriodLo)/float64(rt.Millisecond),
		float64(s.PeriodHi)/float64(rt.Millisecond))
	period := rt.Time(math.Round(periodMS * float64(rt.Millisecond)))
	deadline := period
	wcet := rt.Time(math.Round(u * float64(period)))
	nVerts := UniformInt(r, s.VertsRange.Lo, s.VertsRange.Hi)

	draws := g.drawResources(r, nr, wcet, deadline, nVerts)

	p := s.EdgeProb
	var lastErr error
	for attempt := 0; attempt < g.StructRetries; attempt++ {
		task, err := g.buildDAG(r, id, period, deadline, wcet, nVerts, p, draws, nr)
		if err == nil {
			return task, nil
		}
		lastErr = err
		p *= 0.7 // widen the DAG; h[x] -> 1 as p -> 0, which is always feasible
	}
	return nil, fmt.Errorf("no feasible DAG structure after %d attempts: %w",
		g.StructRetries, lastErr)
}

// drawResources draws which resources the task uses and with what
// parameters, then scales the request counts down so the total
// critical-section workload fits within MaxCSFraction of the WCET and
// within a quarter of the deadline (so that the longest path can always
// stay below D/2 even when requests concentrate).
func (g *Generator) drawResources(r *rand.Rand, nr int, wcet, deadline rt.Time, nVerts int) []resourceDraw {
	s := g.Scenario
	var draws []resourceDraw
	for q := 0; q < nr; q++ {
		if r.Float64() >= s.PAccess {
			continue
		}
		n := int64(UniformInt(r, s.NReq.Lo, s.NReq.Hi))
		cs := s.CSLen.Lo + rt.Time(r.Int63n(int64(s.CSLen.Hi-s.CSLen.Lo)+1))
		draws = append(draws, resourceDraw{q: rt.ResourceID(q), n: n, cs: cs})
	}

	budget := rt.Time(g.MaxCSFraction * float64(wcet))
	if q := deadline / 4; q < budget {
		budget = q
	}
	total := func() rt.Time {
		var t rt.Time
		for _, d := range draws {
			t += rt.SatMul(d.n, d.cs)
		}
		return t
	}
	// Proportional reduction of request counts, keeping each N >= 1.
	if tot := total(); tot > budget && tot > 0 {
		ratio := float64(budget) / float64(tot)
		for i := range draws {
			n := int64(math.Floor(float64(draws[i].n) * ratio))
			if n < 1 {
				n = 1
			}
			draws[i].n = n
		}
	}
	// If even one request per resource exceeds the budget, drop resources
	// (random victims) until it fits.
	for total() > budget && len(draws) > 0 {
		i := r.Intn(len(draws))
		draws = append(draws[:i], draws[i+1:]...)
	}
	return draws
}

// diEdge is a directed precedence edge between vertex indices; from < to,
// so vertex indices always form a topological order.
type diEdge struct{ from, to int }

// buildDAG builds the Erdős–Rényi structure and hands it to assembleTask.
func (g *Generator) buildDAG(r *rand.Rand, id rt.TaskID, period, deadline, wcet rt.Time,
	nVerts int, edgeProb float64, draws []resourceDraw, nr int) (*model.Task, error) {

	var edges []diEdge
	for i := 0; i < nVerts; i++ {
		for j := i + 1; j < nVerts; j++ {
			if r.Float64() < edgeProb {
				edges = append(edges, diEdge{i, j})
			}
		}
	}
	return assembleTask(r, id, period, deadline, wcet, nVerts, edges, draws, nr)
}

// chainHeights returns h[x] = the maximum number of vertices on any chain
// through x, for a DAG whose edges go from lower to higher vertex index.
func chainHeights(nVerts int, edges []diEdge) []int {
	succ := make([][]int, nVerts)
	pred := make([][]int, nVerts)
	for _, e := range edges {
		succ[e.from] = append(succ[e.from], e.to)
		pred[e.to] = append(pred[e.to], e.from)
	}
	fwd := make([]int, nVerts) // longest hop chain ending at x (inclusive)
	bwd := make([]int, nVerts) // longest hop chain starting at x (inclusive)
	for x := 0; x < nVerts; x++ {
		fwd[x] = 1
		for _, p := range pred[x] {
			if fwd[p]+1 > fwd[x] {
				fwd[x] = fwd[p] + 1
			}
		}
	}
	h := make([]int, nVerts)
	for x := nVerts - 1; x >= 0; x-- {
		bwd[x] = 1
		for _, s := range succ[x] {
			if bwd[s]+1 > bwd[x] {
				bwd[x] = bwd[s] + 1
			}
		}
		h[x] = fwd[x] + bwd[x] - 1
	}
	return h
}

// vertexCaps returns the per-vertex WCET caps (D/2 - margin)/h[x] and their
// sum; a non-positive cap base yields nil.
func vertexCaps(nVerts int, edges []diEdge, deadline rt.Time) (caps []rt.Time, capSum rt.Time) {
	margin := rt.Time(2 * nVerts) // nanoseconds of slack for rounding fixes
	capBase := deadline/2 - margin
	if capBase <= 0 {
		return nil, 0
	}
	h := chainHeights(nVerts, edges)
	caps = make([]rt.Time, nVerts)
	for x := 0; x < nVerts; x++ {
		caps[x] = capBase / rt.Time(h[x])
		capSum += caps[x]
	}
	return caps, capSum
}

// assembleTask distributes WCET and requests over a fixed DAG structure
// subject to the plausibility constraints. The construction is correct by
// design:
//
//   - h[x] = the maximum number of vertices on any chain through x. Every
//     vertex WCET is capped at (D/2 - margin)/h[x], so any complete path
//     lambda satisfies L(lambda) <= sum (D/2 - margin)/h[x] < D/2 because
//     h[x] >= |lambda| for every x on lambda.
//   - Request units are only placed on vertices whose remaining cap can
//     absorb the critical section, so C_{i,x} >= sum_q N_{i,x,q} L_{i,q}.
//
// Edges must go from lower to higher vertex index. Both the paper-grid
// Generator and the adversarial generators build on this assembly.
func assembleTask(r *rand.Rand, id rt.TaskID, period, deadline, wcet rt.Time,
	nVerts int, edges []diEdge, draws []resourceDraw, nr int) (*model.Task, error) {

	caps, capSum := vertexCaps(nVerts, edges, deadline)
	if caps == nil {
		return nil, fmt.Errorf("deadline %d too short for %d vertices", deadline, nVerts)
	}
	if capSum < wcet {
		return nil, fmt.Errorf("vertex caps sum %d < WCET %d (chains too long)", capSum, wcet)
	}

	// Place request units on vertices with room for the critical section.
	csNeed := make([]rt.Time, nVerts)
	placed := make([]map[rt.ResourceID]int, nVerts)
	for _, d := range draws {
		for unit := int64(0); unit < d.n; unit++ {
			x, ok := pickWithRoom(r, caps, csNeed, d.cs)
			if !ok {
				break // drop remaining units of this resource
			}
			csNeed[x] += d.cs
			if placed[x] == nil {
				placed[x] = make(map[rt.ResourceID]int)
			}
			placed[x][d.q]++
		}
	}
	var totalCS rt.Time
	for _, c := range csNeed {
		totalCS += c
	}
	if totalCS > wcet {
		return nil, fmt.Errorf("placed CS workload %d exceeds WCET %d", totalCS, wcet)
	}

	// Waterfill the non-critical budget under the per-vertex caps.
	alloc := waterfill(r, caps, csNeed, wcet-totalCS)
	if alloc == nil {
		return nil, fmt.Errorf("waterfill failed: insufficient slack")
	}

	task := model.NewTask(id, period, deadline)
	for x := 0; x < nVerts; x++ {
		w := csNeed[x] + alloc[x]
		if w <= 0 {
			w = 1 // the cap margin guarantees room for this
		}
		task.AddVertex(w)
	}
	for _, e := range edges {
		task.AddEdge(rt.VertexID(e.from), rt.VertexID(e.to))
	}
	for x, reqs := range placed {
		for q, n := range reqs {
			cs := rt.Time(0)
			for _, d := range draws {
				if d.q == q {
					cs = d.cs
					break
				}
			}
			task.AddRequest(rt.VertexID(x), q, n, cs)
		}
	}
	if err := task.Finalize(nr); err != nil {
		return nil, err
	}
	if task.LongestPath() >= deadline/2 {
		return nil, fmt.Errorf("L*=%d >= D/2=%d despite caps", task.LongestPath(), deadline/2)
	}
	return task, nil
}

// pickWithRoom picks a uniformly random vertex whose cap can absorb one more
// critical section of length cs.
func pickWithRoom(r *rand.Rand, caps, csNeed []rt.Time, cs rt.Time) (int, bool) {
	var candidates []int
	for x := range caps {
		if csNeed[x]+cs <= caps[x] {
			candidates = append(candidates, x)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[r.Intn(len(candidates))], true
}

// waterfill distributes budget across vertices with random proportions,
// clamping each vertex at caps[x]-csNeed[x] and redistributing the excess
// until the budget is exhausted. Returns nil if the total slack cannot
// absorb the budget.
func waterfill(r *rand.Rand, caps, csNeed []rt.Time, budget rt.Time) []rt.Time {
	n := len(caps)
	alloc := make([]rt.Time, n)
	slack := func(x int) rt.Time { return caps[x] - csNeed[x] - alloc[x] }

	var totalSlack rt.Time
	for x := 0; x < n; x++ {
		totalSlack += slack(x)
	}
	if totalSlack < budget {
		return nil
	}

	pool := budget
	for pool > 0 {
		var active []int
		for x := 0; x < n; x++ {
			if slack(x) > 0 {
				active = append(active, x)
			}
		}
		if len(active) == 0 {
			return nil // cannot happen given the slack check above
		}
		weights := make([]float64, len(active))
		var wsum float64
		for i := range active {
			weights[i] = r.ExpFloat64() + 0.1
			wsum += weights[i]
		}
		assigned := rt.Time(0)
		for i, x := range active {
			share := rt.Time(float64(pool) * weights[i] / wsum)
			if i == len(active)-1 {
				share = pool - assigned
			}
			if s := slack(x); share > s {
				share = s
			}
			alloc[x] += share
			assigned += share
		}
		pool -= assigned
		if assigned == 0 {
			// Degenerate rounding: push the remainder one nanosecond at a
			// time into the first vertices with slack.
			for x := 0; x < n && pool > 0; x++ {
				d := slack(x)
				if d > pool {
					d = pool
				}
				alloc[x] += d
				pool -= d
			}
		}
	}
	return alloc
}
