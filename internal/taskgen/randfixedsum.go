// Package taskgen synthesizes random tasksets following the experimental
// setup of the DPCP-p paper (Sec. VII-A): task utilizations drawn with the
// RandFixedSum algorithm, DAG structures from the Erdős–Rényi method of
// Cordeiro et al., log-uniform periods, and per-resource request parameters
// drawn from the paper's ranges.
//
//schedlint:deterministic
package taskgen

import (
	"fmt"
	"math"
	"math/rand"
)

// RandFixedSum draws n values, each in [lo, hi], whose sum is total, using
// Roger Stafford's randfixedsum algorithm (the generator recommended by
// Emberson, Stafford and Davis, WATERS 2010, and cited by the paper).
// The returned slice is randomly permuted so that no position is biased.
func RandFixedSum(r *rand.Rand, n int, total, lo, hi float64) ([]float64, error) {
	switch {
	case n <= 0:
		return nil, fmt.Errorf("taskgen: RandFixedSum needs n > 0, got %d", n)
	case hi < lo:
		return nil, fmt.Errorf("taskgen: RandFixedSum needs hi >= lo, got [%g, %g]", lo, hi)
	case total < lo*float64(n)-1e-9 || total > hi*float64(n)+1e-9:
		return nil, fmt.Errorf("taskgen: sum %g infeasible for %d values in [%g, %g]",
			total, n, lo, hi)
	}
	if n == 1 {
		return []float64{total}, nil
	}
	if hi == lo {
		out := make([]float64, n)
		for i := range out {
			out[i] = lo
		}
		return out, nil
	}

	s := (total - float64(n)*lo) / (hi - lo) // normalized target in [0, n]
	x := randFixedSum01(r, n, s)
	for i := range x {
		x[i] = lo + x[i]*(hi-lo)
	}
	r.Shuffle(n, func(i, j int) { x[i], x[j] = x[j], x[i] })
	return x, nil
}

// randFixedSum01 draws n values in [0,1] summing to s (0 <= s <= n),
// uniformly over that section of the unit hypercube. Port of Stafford's
// MATLAB randfixedsum with per-row renormalization of the probability
// table to avoid overflow/underflow for large n.
func randFixedSum01(r *rand.Rand, n int, s float64) []float64 {
	s = math.Max(math.Min(s, float64(n)), 0)
	k := int(math.Floor(s))
	if k > n-1 {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	s = math.Max(math.Min(s, float64(k+1)), float64(k))

	s1 := make([]float64, n)
	s2 := make([]float64, n)
	for i := 0; i < n; i++ {
		s1[i] = s - float64(k-i)
		s2[i] = float64(k+n-i) - s
	}

	const tiny = math.SmallestNonzeroFloat64
	w := make([][]float64, n+1)
	for i := range w {
		w[i] = make([]float64, n+2)
	}
	w[1][1+1] = 1 // the MATLAB original seeds with realmax; scale is arbitrary
	tbl := make([][]float64, n)
	for i := range tbl {
		tbl[i] = make([]float64, n+1)
	}

	for i := 2; i <= n; i++ {
		rowMax := 0.0
		for j := 1; j <= i; j++ {
			tmp1 := w[i-1][j+1] * s1[j-1] / float64(i)
			tmp2 := w[i-1][j] * s2[n-i+j-1] / float64(i)
			w[i][j+1] = tmp1 + tmp2
			tmp3 := w[i][j+1] + tiny
			if s2[n-i+j-1] > s1[j-1] {
				tbl[i-1][j] = tmp2 / tmp3
			} else {
				tbl[i-1][j] = 1 - tmp1/tmp3
			}
			if w[i][j+1] > rowMax {
				rowMax = w[i][j+1]
			}
		}
		if rowMax > 0 {
			for j := 1; j <= i; j++ {
				w[i][j+1] /= rowMax
			}
		}
	}

	x := make([]float64, n)
	sv := s
	j := k + 1
	sm, pr := 0.0, 1.0
	for i := n - 1; i >= 1; i-- {
		var e float64
		if j <= len(tbl[i])-1 && j >= 1 && r.Float64() <= tbl[i][j] {
			e = 1
		}
		sx := math.Pow(r.Float64(), 1/float64(i))
		sm += (1 - sx) * pr * sv / float64(i+1)
		pr *= sx
		x[n-i-1] = sm + pr*e
		sv -= e
		j -= int(e)
	}
	x[n-1] = sm + pr*sv
	return x
}

// LogUniform draws a value log-uniformly from [lo, hi].
func LogUniform(r *rand.Rand, lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic(fmt.Sprintf("taskgen: LogUniform needs 0 < lo <= hi, got [%g, %g]", lo, hi))
	}
	if lo == hi {
		return lo
	}
	return math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
}

// UniformInt draws an integer uniformly from [lo, hi] inclusive.
func UniformInt(r *rand.Rand, lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("taskgen: UniformInt needs hi >= lo, got [%d, %d]", lo, hi))
	}
	return lo + r.Intn(hi-lo+1)
}
