package taskgen

import (
	"math"
	"math/rand"
	"testing"

	"dpcpp/internal/rt"
)

func testScenario() Scenario {
	return Scenario{
		M:       16,
		NumRes:  IntRange{4, 8},
		UAvg:    1.5,
		PAccess: 0.5,
		NReq:    IntRange{1, 50},
		CSLen:   TimeRange{50 * rt.Microsecond, 100 * rt.Microsecond},
	}.DefaultStructure()
}

func TestGenerateTasksetBasics(t *testing.T) {
	g := NewGenerator(testScenario())
	r := rand.New(rand.NewSource(42))
	ts, err := g.Taskset(r, 6.0)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumProcs != 16 {
		t.Errorf("NumProcs = %d, want 16", ts.NumProcs)
	}
	if ts.NumResources < 4 || ts.NumResources > 8 {
		t.Errorf("NumResources = %d, want in [4,8]", ts.NumResources)
	}
	got := ts.TotalUtilization()
	if math.Abs(got-6.0) > 0.01 {
		t.Errorf("TotalUtilization = %g, want ~6.0", got)
	}
}

func TestGeneratedTasksSatisfyPlausibility(t *testing.T) {
	g := NewGenerator(testScenario())
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		total := 2.0 + r.Float64()*10
		ts, err := g.Taskset(r, total)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, task := range ts.Tasks {
			// L* < D/2 (paper Sec. VII-A).
			if task.LongestPath() >= task.Deadline/2 {
				t.Errorf("seed %d task %d: L*=%v >= D/2=%v",
					seed, task.ID, task.LongestPath(), task.Deadline/2)
			}
			// C_{i,x} >= sum_q N_{i,x,q} L_{i,q} holds because Finalize
			// validated it; also check non-critical WCET is non-negative.
			if task.NonCritWCET() < 0 {
				t.Errorf("seed %d task %d: negative non-critical WCET", seed, task.ID)
			}
			// Vertex count within the scenario range.
			if n := len(task.Vertices); n < 10 || n > 100 {
				t.Errorf("seed %d task %d: |V|=%d outside [10,100]", seed, task.ID, n)
			}
			// Period within the log-uniform range.
			if task.Period < 10*rt.Millisecond || task.Period > 1000*rt.Millisecond {
				t.Errorf("seed %d task %d: period %v outside [10ms,1s]",
					seed, task.ID, task.Period)
			}
			if task.Deadline != task.Period {
				t.Errorf("seed %d task %d: implicit deadline expected", seed, task.ID)
			}
		}
	}
}

func TestGeneratedUtilizationsInRange(t *testing.T) {
	g := NewGenerator(testScenario())
	for seed := int64(100); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		ts, err := g.Taskset(r, 8.0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(ts.Tasks) < 2 {
			continue
		}
		for _, task := range ts.Tasks {
			u := task.Utilization()
			// Allow a small tolerance: WCET rounding to whole nanoseconds
			// and the +1ns floor on empty vertices shift utilization by
			// O(1e-9) relative.
			if u <= 1.0-1e-6 || u > 2*g.Scenario.UAvg+1e-6 {
				t.Errorf("seed %d task %d: utilization %g outside (1, %g]",
					seed, task.ID, u, 2*g.Scenario.UAvg)
			}
		}
	}
}

func TestGeneratedCSWorkloadBudget(t *testing.T) {
	g := NewGenerator(testScenario())
	for seed := int64(200); seed < 215; seed++ {
		r := rand.New(rand.NewSource(seed))
		ts, err := g.Taskset(r, 10.0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, task := range ts.Tasks {
			var cs rt.Time
			for q := 0; q < ts.NumResources; q++ {
				cs += task.CSWork(rt.ResourceID(q))
			}
			if float64(cs) > g.MaxCSFraction*float64(task.WCET())+1 {
				t.Errorf("seed %d task %d: CS workload %v exceeds %g of WCET %v",
					seed, task.ID, cs, g.MaxCSFraction, task.WCET())
			}
			if cs > task.Deadline/4 {
				t.Errorf("seed %d task %d: CS workload %v exceeds D/4=%v",
					seed, task.ID, cs, task.Deadline/4)
			}
		}
	}
}

func TestGenerateSingleTaskForLowUtilization(t *testing.T) {
	g := NewGenerator(testScenario())
	r := rand.New(rand.NewSource(9))
	ts, err := g.Taskset(r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Tasks) != 1 {
		t.Errorf("total=1.0 generated %d tasks, want 1", len(ts.Tasks))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := NewGenerator(testScenario())
	a, err := g.Taskset(rand.New(rand.NewSource(77)), 5.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Taskset(rand.New(rand.NewSource(77)), 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("nondeterministic task count: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		x, y := a.Tasks[i], b.Tasks[i]
		if x.Period != y.Period || x.WCET() != y.WCET() || len(x.Vertices) != len(y.Vertices) {
			t.Errorf("task %d differs between identical seeds", i)
		}
	}
}

func TestGridHas216Scenarios(t *testing.T) {
	grid := Grid()
	if len(grid) != 216 {
		t.Fatalf("Grid() returned %d scenarios, want 216", len(grid))
	}
	names := map[string]bool{}
	for _, s := range grid {
		if names[s.Name()] {
			t.Errorf("duplicate scenario %s", s.Name())
		}
		names[s.Name()] = true
		if s.EdgeProb != 0.1 || s.VertsRange != (IntRange{10, 100}) {
			t.Errorf("scenario %s missing default structure", s.Name())
		}
	}
}

func TestFig2Scenarios(t *testing.T) {
	for _, sub := range []string{"2a", "2b", "2c", "2d"} {
		s, err := Fig2Scenario(sub)
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		if s.NReq != (IntRange{1, 50}) {
			t.Errorf("%s: NReq = %v", sub, s.NReq)
		}
		if s.CSLen.Lo != 50*rt.Microsecond || s.CSLen.Hi != 100*rt.Microsecond {
			t.Errorf("%s: CSLen = %v", sub, s.CSLen)
		}
	}
	a, _ := Fig2Scenario("2a")
	if a.M != 16 || a.PAccess != 0.5 || a.UAvg != 1.5 {
		t.Errorf("2a misconfigured: %+v", a)
	}
	d, _ := Fig2Scenario("2d")
	if d.M != 32 || d.PAccess != 1 || d.UAvg != 2 {
		t.Errorf("2d misconfigured: %+v", d)
	}
	if _, err := Fig2Scenario("2z"); err == nil {
		t.Error("unknown subplot accepted")
	}
}

func TestUtilizationPoints(t *testing.T) {
	pts := UtilizationPoints(16)
	if pts[0] != 1.0 {
		t.Errorf("first point = %g, want 1.0", pts[0])
	}
	if last := pts[len(pts)-1]; math.Abs(last-16.0) > 1e-9 {
		t.Errorf("last point = %g, want 16.0", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Errorf("points not strictly increasing at %d: %g, %g", i, pts[i-1], pts[i])
		}
		if step := pts[i] - pts[i-1]; step > 0.8+1e-9 {
			t.Errorf("step at %d = %g, want <= 0.8", i, step)
		}
	}
}

func TestGenerateHeavyContentionScenario(t *testing.T) {
	// The paper's hardest configuration: m=32, nr in [8,16], pr=1.
	s, err := Fig2Scenario("2d")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(s)
	r := rand.New(rand.NewSource(11))
	ts, err := g.Taskset(r, 20.0)
	if err != nil {
		t.Fatal(err)
	}
	// With pr=1 every task uses every resource unless budget pruning
	// dropped some; verify at least substantial sharing happened.
	shared := 0
	for q := 0; q < ts.NumResources; q++ {
		if len(ts.SharedBy(rt.ResourceID(q))) >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("heavy-contention scenario produced no shared resources")
	}
}
