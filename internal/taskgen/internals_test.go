package taskgen

import (
	"math/rand"
	"testing"

	"dpcpp/internal/rt"
)

func TestWaterfillRespectsCapsAndBudget(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	caps := []rt.Time{100, 50, 200, 10}
	csNeed := []rt.Time{20, 0, 50, 10}
	budget := rt.Time(200)
	alloc := waterfill(r, caps, csNeed, budget)
	if alloc == nil {
		t.Fatal("waterfill failed on feasible input")
	}
	var total rt.Time
	for x := range alloc {
		if alloc[x] < 0 {
			t.Errorf("negative allocation at %d", x)
		}
		if csNeed[x]+alloc[x] > caps[x] {
			t.Errorf("vertex %d exceeds cap: %d + %d > %d", x, csNeed[x], alloc[x], caps[x])
		}
		total += alloc[x]
	}
	if total != budget {
		t.Errorf("allocated %d, want %d", total, budget)
	}
}

func TestWaterfillRejectsInfeasible(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	caps := []rt.Time{10, 10}
	csNeed := []rt.Time{5, 5}
	if alloc := waterfill(r, caps, csNeed, 11); alloc != nil {
		t.Error("waterfill accepted budget beyond total slack")
	}
	if alloc := waterfill(r, caps, csNeed, 10); alloc == nil {
		t.Error("waterfill rejected exactly-fitting budget")
	}
}

func TestPickWithRoom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	caps := []rt.Time{10, 3, 20}
	csNeed := []rt.Time{8, 0, 20}
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		x, ok := pickWithRoom(r, caps, csNeed, 3)
		if !ok {
			t.Fatal("pickWithRoom failed with a viable vertex available")
		}
		counts[x]++
	}
	// Only vertex 1 has room for a 3-unit CS (0 has 2 slack, 2 has 0).
	if counts[0] != 0 || counts[2] != 0 || counts[1] != 200 {
		t.Errorf("pickWithRoom distribution = %v, want only vertex 1", counts)
	}
	if _, ok := pickWithRoom(r, caps, csNeed, 30); ok {
		t.Error("pickWithRoom found room for an oversized CS")
	}
}

func TestDrawResourcesBudget(t *testing.T) {
	g := NewGenerator(testScenario())
	r := rand.New(rand.NewSource(4))
	wcet := rt.Time(10 * rt.Millisecond)
	deadline := rt.Time(20 * rt.Millisecond)
	for i := 0; i < 50; i++ {
		draws := g.drawResources(r, 8, wcet, deadline, 20)
		var total rt.Time
		for _, d := range draws {
			if d.n < 1 {
				t.Fatalf("draw with n < 1: %+v", d)
			}
			if d.cs < g.Scenario.CSLen.Lo || d.cs > g.Scenario.CSLen.Hi {
				t.Fatalf("CS length %d outside scenario range", d.cs)
			}
			total += rt.Time(d.n) * d.cs
		}
		budget := rt.Time(g.MaxCSFraction * float64(wcet))
		if q := deadline / 4; q < budget {
			budget = q
		}
		if total > budget {
			t.Fatalf("CS total %d exceeds budget %d", total, budget)
		}
	}
}

func TestGeneratorEdgeProbDecaysToFeasible(t *testing.T) {
	// A scenario that is nearly infeasible at p=0.1 (huge utilization over
	// a short period forces flat DAGs); the retry loop must find a
	// feasible structure by decaying the edge probability.
	s := Scenario{
		M:          8,
		NumRes:     IntRange{0, 0},
		UAvg:       2,
		PAccess:    0,
		NReq:       IntRange{1, 1},
		CSLen:      TimeRange{rt.Microsecond, rt.Microsecond},
		VertsRange: IntRange{10, 10},
		EdgeProb:   0.9, // extremely chain-y; caps will fail until decayed
		PeriodLo:   10 * rt.Millisecond,
		PeriodHi:   10 * rt.Millisecond,
	}
	g := NewGenerator(s)
	r := rand.New(rand.NewSource(5))
	ts, err := g.Taskset(r, 3.9) // single task with U=3.9 (hi = 2*UAvg = 4)
	if err != nil {
		t.Fatalf("generator failed to decay to a feasible structure: %v", err)
	}
	for _, task := range ts.Tasks {
		if task.LongestPath() >= task.Deadline/2 {
			t.Errorf("task %d: L* constraint violated", task.ID)
		}
	}
}
