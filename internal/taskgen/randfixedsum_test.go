package taskgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandFixedSumSumAndBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(12)
		lo := 1.0
		hi := 4.0
		minSum, maxSum := lo*float64(n), hi*float64(n)
		total := minSum + r.Float64()*(maxSum-minSum)
		xs, err := RandFixedSum(r, n, total, lo, hi)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sum := 0.0
		for _, x := range xs {
			if x < lo-1e-9 || x > hi+1e-9 {
				t.Fatalf("trial %d: value %g outside [%g,%g]", trial, x, lo, hi)
			}
			sum += x
		}
		if math.Abs(sum-total) > 1e-6*math.Max(1, total) {
			t.Fatalf("trial %d: sum %g != total %g", trial, sum, total)
		}
	}
}

func TestRandFixedSumEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(2))

	xs, err := RandFixedSum(r, 1, 3.7, 1, 4)
	if err != nil || len(xs) != 1 || xs[0] != 3.7 {
		t.Errorf("n=1: got %v, %v", xs, err)
	}

	xs, err = RandFixedSum(r, 5, 10, 2, 2)
	if err != nil {
		t.Fatalf("degenerate range: %v", err)
	}
	for _, x := range xs {
		if x != 2 {
			t.Errorf("degenerate range: got %v", xs)
			break
		}
	}

	if _, err := RandFixedSum(r, 0, 1, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandFixedSum(r, 3, 100, 1, 4); err == nil {
		t.Error("infeasible total accepted")
	}
	if _, err := RandFixedSum(r, 3, 2, 4, 1); err == nil {
		t.Error("hi < lo accepted")
	}
}

func TestRandFixedSumExtremeTotals(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Total at the very bottom and very top of the feasible interval.
	for _, total := range []float64{5.000001, 19.999999} {
		xs, err := RandFixedSum(r, 5, total, 1, 4)
		if err != nil {
			t.Fatalf("total=%g: %v", total, err)
		}
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		if math.Abs(sum-total) > 1e-6 {
			t.Errorf("total=%g: sum=%g", total, sum)
		}
	}
}

func TestRandFixedSumLargeN(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 64
	total := 96.0
	xs, err := RandFixedSum(r, n, total, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range xs {
		if x < 1-1e-9 || x > 4+1e-9 {
			t.Fatalf("value %g out of range", x)
		}
		sum += x
	}
	if math.Abs(sum-total) > 1e-5 {
		t.Errorf("sum = %g, want %g", sum, total)
	}
}

func TestRandFixedSumMeanIsUnbiased(t *testing.T) {
	// The marginal mean of each position must be total/n (the shuffle alone
	// guarantees exchangeability; this checks the whole pipeline).
	r := rand.New(rand.NewSource(5))
	const trials = 4000
	n := 4
	total := 10.0
	means := make([]float64, n)
	for i := 0; i < trials; i++ {
		xs, err := RandFixedSum(r, n, total, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		for j, x := range xs {
			means[j] += x
		}
	}
	for j := range means {
		means[j] /= trials
		if math.Abs(means[j]-total/float64(n)) > 0.1 {
			t.Errorf("position %d mean = %g, want %g", j, means[j], total/float64(n))
		}
	}
}

func TestRandFixedSumProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, frac float64) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		frac = math.Abs(frac)
		frac -= math.Floor(frac)
		lo, hi := 1.0, 4.0
		total := lo*float64(n) + frac*(hi-lo)*float64(n)
		xs, err := RandFixedSum(r, n, total, lo, hi)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, x := range xs {
			if x < lo-1e-9 || x > hi+1e-9 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-total) < 1e-6*math.Max(1, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogUniformBounds(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		v := LogUniform(r, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("LogUniform out of range: %g", v)
		}
	}
	if v := LogUniform(r, 7, 7); v != 7 {
		t.Errorf("LogUniform degenerate = %g, want 7", v)
	}
}

func TestLogUniformMedian(t *testing.T) {
	// The median of log-uniform [10, 1000] is 100 (geometric midpoint).
	r := rand.New(rand.NewSource(7))
	const trials = 20000
	below := 0
	for i := 0; i < trials; i++ {
		if LogUniform(r, 10, 1000) < 100 {
			below++
		}
	}
	frac := float64(below) / trials
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("fraction below geometric midpoint = %g, want ~0.5", frac)
	}
}

func TestUniformIntBounds(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := UniformInt(r, 3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn", v)
		}
	}
	if v := UniformInt(r, 5, 5); v != 5 {
		t.Errorf("UniformInt degenerate = %d", v)
	}
}
